// Shared helpers for the operator-side monitoring tools (fgad_top,
// fgad_mon, fgad's --stitch): a one-shot HTTP GET against a metrics
// endpoint and a purpose-built scanner for the flat /vars.json shape
// (DESIGN.md §17). This is deliberately not a general JSON library —
// names are taken verbatim from the document, numeric fields via strtod.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace fgad::montool {

/// One-shot HTTP GET; returns the response body or "" on error.
inline std::string http_get(const std::string& host, std::uint16_t port,
                            const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return "";
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t w = ::send(fd, req.data() + off, req.size() - off, 0);
    if (w <= 0) {
      ::close(fd);
      return "";
    }
    off += static_cast<std::size_t>(w);
  }
  std::string resp;
  char buf[4096];
  ssize_t r;
  while ((r = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  const std::size_t body = resp.find("\r\n\r\n");
  return body == std::string::npos ? "" : resp.substr(body + 4);
}

/// Substring covering the {...} that follows `"key":` (empty if absent).
inline std::string object_after(const std::string& body,
                                const std::string& key) {
  const std::string needle = "\"" + key + "\":{";
  const std::size_t start = body.find(needle);
  if (start == std::string::npos) {
    return "";
  }
  std::size_t pos = start + needle.size() - 1;
  int depth = 0;
  for (std::size_t i = pos; i < body.size(); ++i) {
    if (body[i] == '{') {
      ++depth;
    } else if (body[i] == '}') {
      if (--depth == 0) {
        return body.substr(pos, i - pos + 1);
      }
    }
  }
  return "";
}

/// Value of `"field":<number>` inside one instrument's object.
inline double number_field(const std::string& obj, const char* field) {
  const std::string needle = std::string("\"") + field + "\":";
  const std::size_t pos = obj.find(needle);
  if (pos == std::string::npos) {
    return 0;
  }
  return std::strtod(obj.c_str() + pos + needle.size(), nullptr);
}

struct Entry {
  std::string name;
  std::string obj;  // the instrument's own {...}
};

/// Splits a {"name":{...},"name":{...}} object into entries.
inline std::vector<Entry> entries_of(const std::string& obj) {
  std::vector<Entry> out;
  std::size_t pos = 1;  // skip outer '{'
  while (pos < obj.size()) {
    const std::size_t q1 = obj.find('"', pos);
    if (q1 == std::string::npos) {
      break;
    }
    const std::size_t q2 = obj.find('"', q1 + 1);
    if (q2 == std::string::npos || q2 + 1 >= obj.size() ||
        obj[q2 + 1] != ':') {
      break;
    }
    if (obj[q2 + 2] != '{') {
      break;
    }
    int depth = 0;
    std::size_t end = q2 + 2;
    for (std::size_t i = q2 + 2; i < obj.size(); ++i) {
      if (obj[i] == '{') {
        ++depth;
      } else if (obj[i] == '}') {
        if (--depth == 0) {
          end = i;
          break;
        }
      }
    }
    out.push_back(Entry{obj.substr(q1 + 1, q2 - q1 - 1),
                        obj.substr(q2 + 2, end - q2 - 1)});
    pos = end + 1;
  }
  return out;
}

/// "host:port" -> pair; port 0 on parse failure.
inline std::pair<std::string, std::uint16_t> split_host_port(
    const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) {
    return {"", 0};
  }
  return {spec.substr(0, colon),
          static_cast<std::uint16_t>(std::atoi(spec.c_str() + colon + 1))};
}

}  // namespace fgad::montool
