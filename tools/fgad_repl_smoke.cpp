// fgad_repl_smoke — two-process primary–backup failover smoke test.
//
//   fgad_repl_smoke [--server PATH] [--dir DIR] [--items N]
//
// Orchestrates the full DESIGN.md §18 failure drill against two real
// fgad_server processes on loopback:
//
//   1. start a backup, then a primary replicating to it in SYNC ack mode;
//   2. outsource a file and assuredly delete items one at a time through
//      a net::FailoverChannel pointed at both endpoints;
//   3. kill -9 the primary mid-load and SIGHUP the backup to promote it;
//      the deletion loop must ride through on the failover channel;
//   4. verify ZERO ACKED LOSS: every deletion acknowledged before or
//      after the kill is observed on the survivor, and every surviving
//      item still decrypts to its original bytes (the replicated state
//      passed recovery + fsck on the backup's open path);
//   5. restart the dead primary from its state dir, still configured as
//      a primary of the old term: its first replication message must be
//      fenced with STALE_TERM, after which it demotes itself and answers
//      clients with NOT_PRIMARY (verified via a direct channel).
//
// Exit code 0 = all checks passed. Used by the CI failover smoke job.
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "crypto/random.h"
#include "net/failover.h"
#include "net/tcp.h"
#include "proto/messages.h"

namespace {

using namespace fgad;

int g_failures = 0;

void check(bool ok, const std::string& what) {
  std::printf("%s %s\n", ok ? "PASS" : "FAIL", what.c_str());
  if (!ok) {
    ++g_failures;
  }
}

Bytes payload(std::size_t i) {
  std::string s = "replicated item payload #" + std::to_string(i);
  return Bytes(s.begin(), s.end());
}

/// Asks the kernel for a currently free loopback port. Racy in principle,
/// fine for a smoke test that owns the machine's test namespace.
std::uint16_t free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

struct Proc {
  pid_t pid = -1;
  int stdin_w = -1;  // held open: fgad_server parks until stdin EOF
};

Proc spawn(const std::vector<std::string>& args) {
  int fds[2];
  if (::pipe(fds) != 0) {
    return {};
  }
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(fds[0], STDIN_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "execv %s: %s\n", argv[0], std::strerror(errno));
    ::_exit(127);
  }
  ::close(fds[0]);
  return {pid, fds[1]};
}

void reap(Proc& p, int sig) {
  if (p.pid <= 0) {
    return;
  }
  ::kill(p.pid, sig);
  if (p.stdin_w >= 0) {
    ::close(p.stdin_w);
    p.stdin_w = -1;
  }
  int status = 0;
  ::waitpid(p.pid, &status, 0);
  p.pid = -1;
}

bool wait_for_listen(std::uint16_t port, int deadline_ms) {
  net::TcpChannel::Options copts;
  copts.connect_timeout_ms = 250;
  for (int waited = 0; waited < deadline_ms; waited += 100) {
    // fgad_server binds its RPC port only after recovery completes, so a
    // successful connect doubles as a readiness probe.
    if (net::TcpChannel::connect("127.0.0.1", port, copts)) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

/// Assured-deletes one item, riding out a failover: a mid-protocol
/// transport loss can poison the handle (indeterminate key-rotating
/// commit); resync() resolves which epoch the survivor is in, after
/// which the item is either already gone (the commit had landed and the
/// resend hit the replicated dedup) or still present (retry).
bool erase_with_failover(client::Client& c, client::Client::FileHandle& fh,
                         std::uint64_t item_id) {
  for (int attempt = 0; attempt < 40; ++attempt) {
    if (fh.poisoned) {
      if (!c.resync(fh)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        continue;
      }
    }
    auto st = c.erase_item(fh, proto::ItemRef::id(item_id));
    if (st) {
      return true;
    }
    if (st.code() == Errc::kNotFound) {
      return true;  // earlier (resent) attempt already deleted it
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string server = "./build/tools/fgad_server";
  std::string dir = "/tmp/fgad_repl_smoke." + std::to_string(::getpid());
  std::size_t n_items = 48;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--server" && i + 1 < argc) {
      server = argv[++i];
    } else if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--items" && i + 1 < argc) {
      n_items = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: fgad_repl_smoke [--server PATH] [--dir DIR] "
                   "[--items N]\n");
      return 2;
    }
  }
  const std::string dir_a = dir + "/primary";
  const std::string dir_b = dir + "/backup";
  ::mkdir(dir.c_str(), 0755);
  ::mkdir(dir_a.c_str(), 0755);
  ::mkdir(dir_b.c_str(), 0755);

  const std::uint16_t port_a = free_port();
  const std::uint16_t port_b = free_port();
  std::printf("primary 127.0.0.1:%u (%s)  backup 127.0.0.1:%u (%s)\n", port_a,
              dir_a.c_str(), port_b, dir_b.c_str());

  // 1. Backup first (the primary's replicator redials until it appears,
  // but starting in order keeps the log readable), then the primary in
  // sync ack mode: no client ACK until the backup's WAL has the record.
  Proc backup = spawn({server, "--state-dir", dir_b, "--role", "backup",
                       "--port", std::to_string(port_b), "--log-level",
                       "warn"});
  Proc primary = spawn({server, "--state-dir", dir_a, "--role", "primary",
                        "--port", std::to_string(port_a), "--replicate-to",
                        "127.0.0.1:" + std::to_string(port_b), "--repl-ack",
                        "sync", "--repl-heartbeat-ms", "100", "--log-level",
                        "warn"});
  check(wait_for_listen(port_b, 10000), "backup accepting connections");
  check(wait_for_listen(port_a, 10000), "primary accepting connections");
  if (g_failures != 0) {
    reap(primary, SIGKILL);
    reap(backup, SIGKILL);
    return 1;
  }

  // 2. Client over a failover channel spanning both endpoints. Tagged
  // mutations make every resend exactly-once against the (replicated)
  // rid dedup table.
  net::FailoverChannel::Options fopts;
  fopts.max_attempts = 10;
  fopts.base_backoff_ms = 50;
  fopts.max_backoff_ms = 500;
  fopts.retryable = [](BytesView req) { return proto::retryable_request(req); };
  net::FailoverChannel channel(
      net::static_endpoints(
          {{"127.0.0.1", port_a}, {"127.0.0.1", port_b}}),
      net::tcp_endpoint_dial(), fopts);
  crypto::SystemRandom rnd;
  client::Client::Options copts;
  copts.tag_mutations = true;
  client::Client client(channel, rnd, copts);

  auto fh = client.outsource(1, n_items,
                             [](std::size_t i) { return payload(i); });
  check(fh.is_ok(), "outsource through failover channel");
  if (!fh) {
    reap(primary, SIGKILL);
    reap(backup, SIGKILL);
    return 1;
  }

  // 3. Deletion load with a kill -9 + promotion in the middle. Every id
  // that erase_with_failover() reports deleted goes into `acked` — the
  // zero-acked-loss ledger the survivor is audited against.
  const std::size_t n_delete = n_items / 2;
  const std::size_t kill_at = n_delete / 2;
  std::set<std::uint64_t> acked;
  bool deletes_ok = true;
  for (std::size_t i = 0; i < n_delete; ++i) {
    if (i == kill_at) {
      std::printf("kill -9 primary (pid %d), SIGHUP backup (pid %d)\n",
                  primary.pid, backup.pid);
      ::kill(primary.pid, SIGKILL);
      ::kill(backup.pid, SIGHUP);  // promote: term 1 -> 2
    }
    if (!erase_with_failover(client, fh.value(), i)) {
      deletes_ok = false;
      std::fprintf(stderr, "delete of item %zu did not converge\n", i);
      break;
    }
    acked.insert(i);
  }
  check(deletes_ok, "pipelined deletion load survived the failover");
  check(channel.failovers() > 0, "failover channel re-routed at least once");

  // 4. Zero acked loss + surviving items intact, audited on the promoted
  // backup. A deleted item must be unrecoverable (the paper's assured-
  // deletion contract), an untouched one byte-identical.
  bool deleted_gone = true;
  bool survivors_intact = true;
  for (std::size_t i = 0; i < n_items; ++i) {
    auto got = client.access(fh.value(), proto::ItemRef::id(i));
    if (acked.count(i) != 0) {
      deleted_gone = deleted_gone && !got.is_ok();
    } else {
      survivors_intact =
          survivors_intact && got.is_ok() && got.value() == payload(i);
    }
  }
  check(deleted_gone, "every acked deletion present on the survivor");
  check(survivors_intact, "surviving items decrypt to original bytes");

  // 5. Resurrect the old primary unchanged: same state dir, still told
  // it is a primary replicating to the (now-promoted) backup. Its term-1
  // stream must bounce off the term-2 survivor with STALE_TERM, after
  // which it demotes and refuses clients with NOT_PRIMARY.
  Proc zombie = spawn({server, "--state-dir", dir_a, "--role", "primary",
                       "--port", std::to_string(port_a), "--replicate-to",
                       "127.0.0.1:" + std::to_string(port_b), "--repl-ack",
                       "sync", "--repl-heartbeat-ms", "100", "--log-level",
                       "warn"});
  check(wait_for_listen(port_a, 10000), "old primary restarted");
  bool fenced = false;
  for (int waited = 0; waited < 10000 && !fenced; waited += 200) {
    auto direct = net::TcpChannel::connect("127.0.0.1", port_a);
    if (direct) {
      client::Client probe(*direct.value(), rnd, copts);
      auto got = probe.access(fh.value(), proto::ItemRef::id(n_items - 1));
      fenced = !got.is_ok() && got.code() == Errc::kNotPrimary;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  check(fenced, "stale-term primary demoted itself (NOT_PRIMARY to clients)");

  // The promoted node must be unaffected by the zombie's fencing bounce.
  auto still = client.access(fh.value(), proto::ItemRef::id(n_items - 1));
  check(still.is_ok(), "promoted primary still serving after fencing");

  reap(zombie, SIGTERM);
  reap(backup, SIGTERM);
  reap(primary, SIGKILL);  // already dead; reap the zombie entry

  if (g_failures == 0) {
    std::printf("fgad_repl_smoke: all checks passed\n");
    return 0;
  }
  std::fprintf(stderr, "fgad_repl_smoke: %d check(s) FAILED\n", g_failures);
  return 1;
}
