// fgad_server — run the cloud side as a standalone TCP daemon.
//
//   fgad_server [--port N] [--image PATH] [--no-integrity]
//               [--state-dir DIR] [--checkpoint-every-n N] [--wal-sync-ms N]
//               [--max-connections N] [--io-workers N] [--idle-timeout-ms N]
//               [--metrics-port N] [--audit-log PATH]
//               [--log-level LVL] [--slow-op-ms N]
//               [--flight-recorder-size N] [--flight-recorder-dir DIR]
//               [--trace-capture N]
//
// Listens on 127.0.0.1:N (default 4270; 0 picks an ephemeral port, printed
// on startup). The process runs until stdin reaches EOF or SIGTERM/SIGINT
// arrives; SIGTERM triggers a clean final checkpoint before exit.
//
// Durability (DESIGN.md §13):
//   --state-dir DIR         crash-consistent operation: every mutating RPC
//                           is WAL-logged (fsync before ACK) and the full
//                           image is checkpointed atomically; startup
//                           recovers from the newest valid checkpoint +
//                           WAL tail and runs the fsck invariant verifier
//   --checkpoint-every-n N  mutations between automatic checkpoints
//                           (default 1024; 0 = only on SIGTERM/shutdown)
//   --wal-sync-ms N         group-commit window in ms (default 0 =
//                           fsync per mutation; -1 = never fsync, unsafe)
//   FGAD_CRASH_AT=site[:n]  kill the process (exit 42) the n-th time the
//                           named crash site is reached (before-wal,
//                           after-wal-pre-ack, mid-checkpoint,
//                           post-rename) — crash-recovery test hook
//
// Replication (DESIGN.md §18) — requires --state-dir with the WAL on:
//   --role primary|backup   this node's starting role (default primary).
//                           A backup answers every client RPC with
//                           NOT_PRIMARY and applies its primary's stream
//   --replicate-to H:P      primary only: ship every WAL record to the
//                           backup's RPC port at H:P (the host is
//                           re-resolved on every redial)
//   --repl-ack MODE         sync (client ACK waits for the backup's
//                           durable ack) | async (default; ship in the
//                           background) | off
//   --repl-heartbeat-ms N   idle heartbeat cadence (default 500)
//   SIGHUP                  promote a backup to primary: bumps the
//                           fencing term, checkpoints it durably, starts
//                           serving; the old primary gets STALE_TERM and
//                           demotes itself
//
// --image PATH is the legacy whole-image mode: state is loaded from PATH
// at startup and saved back only on clean shutdown (no crash safety).
//
// Server core (DESIGN.md §15): an epoll reactor with request pipelining.
// --max-connections bounds concurrent connections (overflow queues in the
// listen backlog; --max-workers is the legacy spelling), --io-workers sets
// the number of event-loop threads (0 = auto), and --idle-timeout-ms
// evicts connections with no traffic. With --state-dir, mutations from
// all connections are acknowledged through the cross-connection WAL group
// committer: one fsync covers every mutation staged while the previous
// fsync ran.
//
// Observability (DESIGN.md §12, §17):
//   --metrics-port N   serve GET /metrics, /metrics.json, /vars.json,
//                      /healthz, /readyz and /profile on 127.0.0.1:N
//                      (0 = ephemeral, printed on startup)
//   --vars-interval-ms N  time-series rotation interval for /vars.json
//                      windows and SLO burn rates (default 1000; 0
//                      disables windowed telemetry)
//   --slo SPEC         add an SLO objective (repeatable); SPEC is
//                      name:latency:<hist>:<quantile>:<threshold_ns>[:burn],
//                      name:error_ratio:<err>:<total>:<max_rate>[:burn], or
//                      name:gauge_above:<gauge>:<threshold>[:burn]
//   --no-default-slos  start with only the --slo objectives (default: the
//                      stock delete/access p99 + error-ratio +
//                      backpressure set is installed)
//   --audit-log PATH   append the deletion audit log to PATH (default:
//                      stderr)
//   --peer-metrics H:P metrics endpoint of the replication peer; makes
//                      GET /trace.json?rid=... splice the peer's span
//                      segment into the reply, clock-offset corrected
//                      (DESIGN.md §19)
//   --log-level LVL    debug|info|warn|error|off (default info, to stderr)
//   --slow-op-ms N     warn about RPCs slower than N ms (0 disables)
//   SIGUSR1            dump the metrics registry to stderr
//
// Forensics (DESIGN.md §14):
//   --flight-recorder-size N   ring capacity in events (default 4096,
//                              rounded up to a power of two)
//   --flight-recorder-dir DIR  where crash/SIGUSR2 dumps land (default:
//                              the state dir, else ".")
//   --trace-capture N          keep the last N per-request span trees,
//                              served at /trace.json?rid=... (default 0)
//   SIGUSR2                    dump the flight recorder ring to a file
//   SIGSEGV/SIGABRT/SIGBUS     dump the ring on the way down (the dump
//                              path is written to stderr), then re-raise
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cloud/recovery.h"
#include "cloud/replica.h"
#include "cloud/server.h"
#include "mon_util.h"
#include "net/failover.h"
#include "net/tcp.h"
#include "obs/cost.h"
#include "obs/flight_recorder.h"
#include "obs/http.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace {
std::atomic<bool> g_dump_requested{false};
std::atomic<bool> g_terminate{false};
std::atomic<bool> g_promote_requested{false};

void on_sigusr1(int) { g_dump_requested.store(true); }
void on_sigterm(int) { g_terminate.store(true); }
void on_sighup(int) { g_promote_requested.store(true); }
}  // namespace

int main(int argc, char** argv) {
  using namespace fgad;

  std::uint16_t port = 4270;
  bool metrics_enabled = false;
  std::uint16_t metrics_port = 0;
  std::string image;
  std::string audit_path;
  std::string log_level = "info";
  int slow_op_ms = 0;
  std::size_t flight_recorder_size = obs::FlightRecorder::kDefaultCapacity;
  std::string flight_recorder_dir;
  std::size_t trace_capture = 0;
  std::uint64_t vars_interval_ms = 1000;
  bool default_slos = true;
  std::vector<std::string> slo_specs;
  std::string peer_metrics;  // "host:port" of the peer's metrics endpoint
  std::string replicate_to;  // "host:port" of the backup's RPC listener
  std::string repl_ack = "async";
  int repl_heartbeat_ms = 500;
  cloud::CloudServer::Options opts;
  cloud::DurableServer::Options dur_opts;
  net::TcpServer::Options net_opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--image" && i + 1 < argc) {
      image = argv[++i];
    } else if (arg == "--state-dir" && i + 1 < argc) {
      dur_opts.dir = argv[++i];
    } else if (arg == "--checkpoint-every-n" && i + 1 < argc) {
      dur_opts.checkpoint_every_n =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--wal-sync-ms" && i + 1 < argc) {
      dur_opts.wal_sync_ms = std::atoi(argv[++i]);
    } else if (arg == "--no-integrity") {
      opts.enable_integrity = false;
    } else if ((arg == "--max-workers" || arg == "--max-connections") &&
               i + 1 < argc) {
      net_opts.max_workers =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--io-workers" && i + 1 < argc) {
      net_opts.io_workers =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--idle-timeout-ms" && i + 1 < argc) {
      net_opts.idle_timeout_ms = std::atoi(argv[++i]);
    } else if (arg == "--metrics-port" && i + 1 < argc) {
      metrics_enabled = true;
      metrics_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--audit-log" && i + 1 < argc) {
      audit_path = argv[++i];
    } else if (arg == "--log-level" && i + 1 < argc) {
      log_level = argv[++i];
    } else if (arg == "--slow-op-ms" && i + 1 < argc) {
      slow_op_ms = std::atoi(argv[++i]);
    } else if (arg == "--flight-recorder-size" && i + 1 < argc) {
      flight_recorder_size =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--flight-recorder-dir" && i + 1 < argc) {
      flight_recorder_dir = argv[++i];
    } else if (arg == "--trace-capture" && i + 1 < argc) {
      trace_capture =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--peer-metrics" && i + 1 < argc) {
      peer_metrics = argv[++i];
    } else if (arg == "--vars-interval-ms" && i + 1 < argc) {
      vars_interval_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--slo" && i + 1 < argc) {
      slo_specs.emplace_back(argv[++i]);
    } else if (arg == "--no-default-slos") {
      default_slos = false;
    } else if (arg == "--role" && i + 1 < argc) {
      const std::string role = argv[++i];
      if (role == "primary") {
        dur_opts.role = cloud::ReplRole::kPrimary;
      } else if (role == "backup") {
        dur_opts.role = cloud::ReplRole::kBackup;
      } else {
        std::fprintf(stderr, "--role must be primary|backup\n");
        return 2;
      }
    } else if (arg == "--replicate-to" && i + 1 < argc) {
      replicate_to = argv[++i];
    } else if (arg == "--repl-ack" && i + 1 < argc) {
      repl_ack = argv[++i];
      if (repl_ack != "sync" && repl_ack != "async" && repl_ack != "off") {
        std::fprintf(stderr, "--repl-ack must be sync|async|off\n");
        return 2;
      }
    } else if (arg == "--repl-heartbeat-ms" && i + 1 < argc) {
      repl_heartbeat_ms = std::atoi(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: fgad_server [--port N] [--image PATH] [--state-dir DIR]\n"
          "                   [--checkpoint-every-n N] [--wal-sync-ms N]\n"
          "                   [--no-integrity] [--max-connections N] "
          "[--io-workers N] [--idle-timeout-ms N]\n"
          "                   [--metrics-port N] [--audit-log PATH] "
          "[--log-level LVL] [--slow-op-ms N]\n"
          "                   [--flight-recorder-size N] "
          "[--flight-recorder-dir DIR] [--trace-capture N]\n"
          "                   [--vars-interval-ms N] [--slo SPEC]... "
          "[--no-default-slos] [--peer-metrics H:P]\n"
          "                   [--role primary|backup] [--replicate-to H:P] "
          "[--repl-ack sync|async|off]\n"
          "                   [--repl-heartbeat-ms N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (!image.empty() && !dur_opts.dir.empty()) {
    std::fprintf(stderr, "--image and --state-dir are mutually exclusive\n");
    return 2;
  }
  if ((!replicate_to.empty() || dur_opts.role == cloud::ReplRole::kBackup) &&
      dur_opts.dir.empty()) {
    std::fprintf(stderr, "replication requires --state-dir\n");
    return 2;
  }
  if (!replicate_to.empty() && !dur_opts.enable_wal) {
    std::fprintf(stderr, "replication requires the WAL\n");
    return 2;
  }
  if (!replicate_to.empty() && dur_opts.role == cloud::ReplRole::kBackup) {
    std::fprintf(stderr, "--replicate-to is a primary-side flag\n");
    return 2;
  }
  if (!peer_metrics.empty() && !metrics_enabled) {
    std::fprintf(stderr, "--peer-metrics requires --metrics-port\n");
    return 2;
  }

  // Structured logging + deletion audit log. The library defaults to
  // silent; the daemon is where the sinks come alive.
  obs::Logger::instance().set_sink(stderr);
  obs::Logger::instance().set_level(obs::parse_level(log_level));
  obs::Logger::instance().set_slow_op_threshold_ns(
      static_cast<std::uint64_t>(slow_op_ms) * 1000000ull);
  std::FILE* audit_file = nullptr;
  if (audit_path.empty()) {
    obs::AuditLog::instance().set_sink(stderr);
  } else {
    audit_file = std::fopen(audit_path.c_str(), "ae");
    if (audit_file == nullptr) {
      std::fprintf(stderr, "cannot open audit log %s: %s\n",
                   audit_path.c_str(), std::strerror(errno));
      return 1;
    }
    obs::AuditLog::instance().set_sink(audit_file);
  }

  // Forensic flight recorder: ring + crash-signal/SIGUSR2 dump handlers.
  // Configured before the durability layer opens so recovery events land
  // in the ring and a crash during recovery already dumps.
  {
    obs::FlightRecorder& fr = obs::FlightRecorder::instance();
    fr.configure(flight_recorder_size);
    if (flight_recorder_dir.empty()) {
      flight_recorder_dir = dur_opts.dir.empty() ? "." : dur_opts.dir;
    }
    if (auto st = fr.set_dump_dir(flight_recorder_dir); !st) {
      std::fprintf(stderr, "flight recorder dir %s: %s\n",
                   flight_recorder_dir.c_str(), st.to_string().c_str());
      return 2;
    }
    obs::FlightRecorder::install_crash_handlers();
  }
  obs::TraceStore::instance().set_capacity(trace_capture);
  // Per-request cost accounting (DESIGN.md §19) is cheap enough to keep
  // always-on in the daemon: a breakdown is only assembled — and shipped
  // as a server-timing trailer — for V2-tagged requests.
  obs::CostLedger::instance().set_enabled(true);

  // Deterministic crash injection for recovery integration tests.
  if (const char* crash_at = std::getenv("FGAD_CRASH_AT");
      crash_at != nullptr && *crash_at != '\0') {
    if (auto st = cloud::CrashPoint::instance().arm_process_exit(crash_at);
        !st) {
      std::fprintf(stderr, "FGAD_CRASH_AT: %s\n", st.to_string().c_str());
      return 2;
    }
    std::fprintf(stderr, "armed crash point: %s\n", crash_at);
  }

  std::unique_ptr<cloud::DurableServer> durable;
  std::unique_ptr<cloud::CloudServer> server;
  if (!dur_opts.dir.empty()) {
    dur_opts.server = opts;
    auto opened = cloud::DurableServer::open(dur_opts);
    if (!opened) {
      std::fprintf(stderr, "recovery from %s failed: %s\n",
                   dur_opts.dir.c_str(),
                   opened.status().to_string().c_str());
      return 1;
    }
    durable = std::move(opened).value();
    const auto& info = durable->recovery_info();
    std::printf(
        "recovered state from %s (checkpoint epoch %llu, %llu WAL records "
        "replayed%s)\n",
        dur_opts.dir.c_str(),
        static_cast<unsigned long long>(info.checkpoint_epoch),
        static_cast<unsigned long long>(info.replayed),
        info.torn_tail ? ", torn tail truncated" : "");
    if (!replicate_to.empty()) {
      const auto colon = replicate_to.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= replicate_to.size()) {
        std::fprintf(stderr, "--replicate-to wants HOST:PORT, got %s\n",
                     replicate_to.c_str());
        return 2;
      }
      net::Endpoint backup{replicate_to.substr(0, colon),
                           static_cast<std::uint16_t>(std::atoi(
                               replicate_to.c_str() + colon + 1))};
      cloud::Replicator::Options ropts;
      ropts.mode = repl_ack == "sync"    ? cloud::ReplAckMode::kSync
                   : repl_ack == "async" ? cloud::ReplAckMode::kAsync
                                         : cloud::ReplAckMode::kOff;
      ropts.heartbeat_ms = repl_heartbeat_ms;
      // The dial re-resolves backup.host every time (net::failover.h) —
      // repointing the backup's DNS record works without a restart.
      auto dial = net::tcp_endpoint_dial();
      auto repl = std::make_shared<cloud::Replicator>(
          [dial, backup] { return dial(backup); }, ropts);
      durable->attach_replicator(repl, ropts.mode);
      std::printf("replicating to %s (%s ack mode, term %llu)\n",
                  replicate_to.c_str(), repl_ack.c_str(),
                  static_cast<unsigned long long>(durable->term()));
    }
    std::printf("replication role: %s (term %llu)\n",
                cloud::repl_role_name(durable->role()),
                static_cast<unsigned long long>(durable->term()));
    // Names this process's lane in captured trace documents so a
    // stitched view reads client / primary / backup, not pid numbers.
    obs::trace_set_process_label(
        durable->role() == cloud::ReplRole::kBackup ? "backup" : "primary");
  } else if (!image.empty()) {
    auto loaded = cloud::CloudServer::load_from_file(image, opts);
    if (loaded) {
      server = std::move(loaded).value();
      std::printf("loaded server image from %s\n", image.c_str());
    } else if (loaded.code() == Errc::kIoError) {
      std::printf("no image at %s yet; starting fresh\n", image.c_str());
    } else {
      std::fprintf(stderr, "refusing corrupt image %s: %s\n", image.c_str(),
                   loaded.status().to_string().c_str());
      return 1;
    }
  }
  if (!durable && !server) {
    server = std::make_unique<cloud::CloudServer>(opts);
  }

  // The async path lets the durable layer park pipelined mutations on the
  // cross-connection group committer (one fsync per batch) instead of
  // paying fsync-per-ACK; a plain in-memory server just answers inline.
  const auto handler = [&](Bytes req, net::TcpServer::Respond respond) {
    if (durable) {
      durable->handle_async(std::move(req),
                            [respond = std::move(respond)](Bytes resp) {
                              respond(std::move(resp));
                            });
    } else {
      respond(server->handle(req));
    }
  };
  auto tcp_result =
      net::TcpServer::create(port, net::TcpServer::AsyncHandler(handler),
                             net_opts);
  if (!tcp_result) {
    std::fprintf(stderr, "failed to bind 127.0.0.1:%u: %s\n", port,
                 tcp_result.status().to_string().c_str());
    return 1;
  }
  net::TcpServer& tcp = *tcp_result.value();

  std::unique_ptr<obs::MetricsHttpServer> metrics;
  if (metrics_enabled) {
    auto m = obs::MetricsHttpServer::create(metrics_port);
    if (!m) {
      std::fprintf(stderr, "failed to start metrics endpoint on port %u: %s\n",
                   metrics_port, m.status().to_string().c_str());
      return 1;
    }
    metrics = std::move(m).value();
    std::printf("metrics on http://127.0.0.1:%u/metrics\n", metrics->port());
    if (!peer_metrics.empty()) {
      const auto hp = montool::split_host_port(peer_metrics);
      if (hp.second == 0) {
        std::fprintf(stderr, "--peer-metrics wants HOST:PORT, got %s\n",
                     peer_metrics.c_str());
        return 2;
      }
      metrics->set_stitch_peer(hp.first, hp.second);
      std::printf("stitching /trace.json against peer %s\n",
                  peer_metrics.c_str());
    }
  }

  // Windowed telemetry + SLO burn-rate tracking (DESIGN.md §17): a 1s
  // rotation tick feeds /vars.json windows; the SLO tracker evaluates
  // after every tick and flips the "overloaded" readiness condition on
  // sustained breach.
  if (vars_interval_ms > 0) {
    obs::WindowedRegistry::Options wopts;
    wopts.interval_ns = vars_interval_ms * 1'000'000ull;
    obs::WindowedRegistry::instance().configure(wopts);
    std::vector<obs::SloTracker::Objective> objectives;
    if (default_slos) {
      objectives = obs::SloTracker::default_server_objectives();
    }
    for (const std::string& spec : slo_specs) {
      auto parsed = obs::SloTracker::parse(spec);
      if (!parsed) {
        std::fprintf(stderr, "%s\n", parsed.status().to_string().c_str());
        return 2;
      }
      objectives.push_back(std::move(parsed).value());
    }
    const std::size_t n_objectives = objectives.size();
    obs::SloTracker::instance().configure(std::move(objectives));
    obs::SloTracker::instance().attach();
    obs::WindowedRegistry::instance().start();
    std::printf("windowed telemetry: %llums rotation, %zu SLO objectives\n",
                static_cast<unsigned long long>(vars_interval_ms),
                n_objectives);
  }

  std::printf("flight recorder: %zu events, dumps to %s (SIGUSR2 dumps on "
              "demand)\n",
              obs::FlightRecorder::instance().capacity(),
              flight_recorder_dir.c_str());
  std::printf("fgad cloud server listening on 127.0.0.1:%u "
              "(integrity %s, durability %s, max %zu connections over "
              "%zu io workers); EOF on stdin or SIGTERM stops it\n",
              tcp.port(), opts.enable_integrity ? "on" : "off",
              durable ? dur_opts.dir.c_str() : "off",
              net_opts.max_workers, tcp.io_worker_count());
  std::fflush(stdout);

  // SIGUSR1 -> dump the registry to stderr (SA_RESTART: only sets a flag,
  // a watcher thread prints). SIGTERM/SIGINT -> clean shutdown with a
  // final checkpoint; *no* SA_RESTART so the getchar park loop below is
  // interrupted and observes the flag.
  {
    struct sigaction sa {};
    sa.sa_handler = on_sigusr1;
    sa.sa_flags = SA_RESTART;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGUSR1, &sa, nullptr);
    struct sigaction st {};
    st.sa_handler = on_sigterm;
    st.sa_flags = 0;
    sigemptyset(&st.sa_mask);
    sigaction(SIGTERM, &st, nullptr);
    sigaction(SIGINT, &st, nullptr);
    // SIGHUP -> promote (flag only; the watcher thread does the work).
    struct sigaction sh {};
    sh.sa_handler = on_sighup;
    sh.sa_flags = SA_RESTART;
    sigemptyset(&sh.sa_mask);
    sigaction(SIGHUP, &sh, nullptr);
  }
  std::atomic<bool> stopping{false};
  std::thread dump_watcher([&stopping, &durable] {
    while (!stopping.load()) {
      if (g_dump_requested.exchange(false)) {
        const std::string text = obs::Registry::instance().render_text();
        std::fwrite(text.data(), 1, text.size(), stderr);
        std::fflush(stderr);
      }
      if (g_promote_requested.exchange(false)) {
        if (durable) {
          if (auto st = durable->promote(); st) {
            std::fprintf(stderr, "promoted to primary (term %llu)\n",
                         static_cast<unsigned long long>(durable->term()));
          } else {
            std::fprintf(stderr, "promote failed: %s\n",
                         st.to_string().c_str());
          }
        } else {
          std::fprintf(stderr, "SIGHUP ignored: not a durable server\n");
        }
        std::fflush(stderr);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  });

  // Park until stdin closes or a termination signal arrives.
  while (!g_terminate.load()) {
    const int c = std::getchar();
    if (c == EOF) {
      if (errno == EINTR && !g_terminate.load()) {
        clearerr(stdin);
        continue;
      }
      break;
    }
  }

  stopping.store(true);
  dump_watcher.join();
  obs::WindowedRegistry::instance().stop();
  tcp.stop();
  // The metrics endpoint outlives the RPC listener so /readyz reports
  // 503 "shutdown" while the final checkpoint is mid-flight.
  if (durable) {
    obs::Readiness::Block not_ready("shutdown",
                                    "final checkpoint in progress");
    if (auto st = durable->checkpoint(); st) {
      std::printf("final checkpoint written to %s\n", dur_opts.dir.c_str());
    } else {
      std::fprintf(stderr, "final checkpoint failed: %s\n",
                   st.to_string().c_str());
      return 1;
    }
  } else if (!image.empty()) {
    if (auto st = server->save_to_file(image); st) {
      std::printf("saved server image to %s\n", image.c_str());
    } else {
      std::fprintf(stderr, "image save failed: %s\n",
                   st.to_string().c_str());
      return 1;
    }
  }
  if (metrics) {
    metrics->stop();
  }
  if (audit_file != nullptr) {
    obs::AuditLog::instance().set_sink(nullptr);
    std::fclose(audit_file);
  }
  std::printf("bye\n");
  return 0;
}
