// fgad_server — run the cloud side as a standalone TCP daemon.
//
//   fgad_server [--port N] [--image PATH] [--no-integrity]
//               [--max-workers N] [--idle-timeout-ms N]
//
// Listens on 127.0.0.1:N (default 4270; 0 picks an ephemeral port, printed
// on startup). With --image, server state is loaded from PATH at startup
// (if it exists) and saved back on clean shutdown. The process runs until
// stdin reaches EOF or the user presses Ctrl-D / sends SIGINT via the
// terminal driver closing stdin.
//
// --max-workers bounds concurrent connections (overflow queues in the
// listen backlog); --idle-timeout-ms evicts connections with no traffic.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "cloud/server.h"
#include "net/tcp.h"

int main(int argc, char** argv) {
  using namespace fgad;

  std::uint16_t port = 4270;
  std::string image;
  cloud::CloudServer::Options opts;
  net::TcpServer::Options net_opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--image" && i + 1 < argc) {
      image = argv[++i];
    } else if (arg == "--no-integrity") {
      opts.enable_integrity = false;
    } else if (arg == "--max-workers" && i + 1 < argc) {
      net_opts.max_workers =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--idle-timeout-ms" && i + 1 < argc) {
      net_opts.idle_timeout_ms = std::atoi(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: fgad_server [--port N] [--image PATH] "
                  "[--no-integrity] [--max-workers N] [--idle-timeout-ms N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  std::unique_ptr<cloud::CloudServer> server;
  if (!image.empty()) {
    auto loaded = cloud::CloudServer::load_from_file(image, opts);
    if (loaded) {
      server = std::move(loaded).value();
      std::printf("loaded server image from %s\n", image.c_str());
    } else if (loaded.code() == Errc::kIoError) {
      std::printf("no image at %s yet; starting fresh\n", image.c_str());
    } else {
      std::fprintf(stderr, "refusing corrupt image %s: %s\n", image.c_str(),
                   loaded.status().to_string().c_str());
      return 1;
    }
  }
  if (!server) {
    server = std::make_unique<cloud::CloudServer>(opts);
  }

  auto tcp_result = net::TcpServer::create(
      port, [&server](BytesView req) { return server->handle(req); },
      net_opts);
  if (!tcp_result) {
    std::fprintf(stderr, "failed to bind 127.0.0.1:%u: %s\n", port,
                 tcp_result.status().to_string().c_str());
    return 1;
  }
  net::TcpServer& tcp = *tcp_result.value();
  std::printf("fgad cloud server listening on 127.0.0.1:%u "
              "(integrity %s, max %zu workers); EOF on stdin stops it\n",
              tcp.port(), opts.enable_integrity ? "on" : "off",
              net_opts.max_workers);
  std::fflush(stdout);

  // Park until stdin closes.
  for (int c = std::getchar(); c != EOF; c = std::getchar()) {
  }

  tcp.stop();
  if (!image.empty()) {
    if (auto st = server->save_to_file(image); st) {
      std::printf("saved server image to %s\n", image.c_str());
    } else {
      std::fprintf(stderr, "image save failed: %s\n",
                   st.to_string().c_str());
      return 1;
    }
  }
  std::printf("bye\n");
  return 0;
}
