// fgad_mon — fleet aggregator for a set of fgad_server metrics endpoints.
//
//   fgad_mon --endpoints H:P[,H:P...] [--window 60] [--interval-ms 2000]
//            [--lag-records N] [--once] [--json]
//
// Polls every endpoint's GET /vars.json?window=<W> and GET /readyz,
// extracts the windowed RPC/error rates, handle latency quantiles, and
// the replication role/term/lag gauges (DESIGN.md §18), and merges them
// into one cluster view: total qps, cluster error rate, who is primary,
// and the worst follower lag. Between polls it diffs each node's
// role/term and flags transitions loudly — a failover shows up as one
// line naming the node, the role flip, and the term bump, without
// grepping two servers' logs.
//
// Flagged conditions:
//   FAILOVER   a node's role or fencing term changed between polls
//   NOT-READY  /readyz reports 503 (recovery replay, shutdown, overload)
//   OVERLOAD   the node's SLO tracker reports burn-rate overload
//   LAG        follower lag exceeds --lag-records (default 1024)
//   SPLIT      more than one node claims primary (fencing in progress)
//   DOWN       endpoint unreachable
//
// --once prints a single snapshot and exits non-zero if any endpoint is
// down (CI smoke / scripting); --json emits the merged cluster view as
// one JSON document instead of the table.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "mon_util.h"

namespace {

using fgad::montool::Entry;
using fgad::montool::entries_of;
using fgad::montool::http_get;
using fgad::montool::number_field;
using fgad::montool::object_after;
using fgad::montool::split_host_port;

volatile std::sig_atomic_t g_stop = 0;
void on_sigint(int) { g_stop = 1; }

struct NodeState {
  std::string endpoint;
  std::string host;
  std::uint16_t port = 0;

  bool up = false;
  bool ready = false;
  bool overloaded = false;
  bool has_role = false;
  bool primary = false;
  double term = 0;
  double lag_records = 0;
  double lag_bytes = 0;
  double rpc_per_s = 0;
  double err_per_s = 0;
  double p99_ms = 0;
  double covered_s = 0;

  // previous poll, for transition detection
  bool seen_before = false;
  bool prev_primary = false;
  double prev_term = 0;
};

/// One poll of one node; returns false when the endpoint is unreachable.
bool poll(NodeState& n, unsigned window_s) {
  n.up = false;
  const std::string vars = http_get(
      n.host, n.port, "/vars.json?window=" + std::to_string(window_s) + "s");
  if (vars.empty()) {
    return false;
  }
  n.up = true;
  n.covered_s = number_field(vars, "covered_s");
  for (const Entry& e : entries_of(object_after(vars, "counters"))) {
    if (e.name == "fgad_server_rpcs_total") {
      n.rpc_per_s = number_field(e.obj, "rate_per_s");
    } else if (e.name == "fgad_server_rpc_errors_total") {
      n.err_per_s = number_field(e.obj, "rate_per_s");
    }
  }
  n.has_role = false;
  for (const Entry& e : entries_of(object_after(vars, "gauges"))) {
    if (e.name == "fgad_repl_role") {
      n.has_role = true;
      n.primary = number_field(e.obj, "value") != 0;
    } else if (e.name == "fgad_repl_term") {
      n.term = number_field(e.obj, "value");
    } else if (e.name == "fgad_repl_lag_records") {
      n.lag_records = number_field(e.obj, "value");
    } else if (e.name == "fgad_repl_lag_bytes") {
      n.lag_bytes = number_field(e.obj, "value");
    }
  }
  for (const Entry& e : entries_of(object_after(vars, "histograms"))) {
    if (e.name == "fgad_server_handle_ns") {
      n.p99_ms = number_field(e.obj, "p99_ns") / 1e6;
    }
  }
  if (!n.has_role) {
    // A freshly started node has not finished its first windowed tick,
    // so /vars.json carries no gauges yet — but a failover monitor is
    // most useful exactly around restarts. Fall back to the
    // instantaneous gauge values in /metrics.json.
    const std::string gauges =
        object_after(http_get(n.host, n.port, "/metrics.json"), "gauges");
    if (gauges.find("\"fgad_repl_role\"") != std::string::npos) {
      n.has_role = true;
      n.primary = number_field(gauges, "fgad_repl_role") != 0;
      n.term = number_field(gauges, "fgad_repl_term");
      n.lag_records = number_field(gauges, "fgad_repl_lag_records");
      n.lag_bytes = number_field(gauges, "fgad_repl_lag_bytes");
    }
  }
  const std::string slo = object_after(vars, "slo");
  n.overloaded = slo.find("\"overloaded\":true") != std::string::npos;
  // /readyz answers {"ready":true,...} with 200, or the blocking
  // reasons with 503 — the body carries the verdict either way.
  const std::string readyz = http_get(n.host, n.port, "/readyz");
  n.ready = readyz.find("\"ready\":true") != std::string::npos;
  return true;
}

void emit_transitions(NodeState& n) {
  if (n.up && n.seen_before &&
      (n.prev_primary != n.primary || n.prev_term != n.term) && n.has_role) {
    std::printf("*** FAILOVER %s: %s -> %s, term %.0f -> %.0f\n",
                n.endpoint.c_str(), n.prev_primary ? "primary" : "backup",
                n.primary ? "primary" : "backup", n.prev_term, n.term);
  }
  if (n.up) {
    n.seen_before = true;
    n.prev_primary = n.primary;
    n.prev_term = n.term;
  }
}

std::string flags_of(const NodeState& n, double lag_threshold) {
  if (!n.up) {
    return "DOWN";
  }
  std::string f;
  const auto add = [&f](const char* s) {
    if (!f.empty()) {
      f += ",";
    }
    f += s;
  };
  if (!n.ready) add("NOT-READY");
  if (n.overloaded) add("OVERLOAD");
  if (n.has_role && !n.primary && n.lag_records > lag_threshold) add("LAG");
  return f.empty() ? "-" : f;
}

void render_table(std::vector<NodeState>& nodes, double lag_threshold,
                  bool clear) {
  if (clear) {
    std::printf("\x1b[H\x1b[2J");
  }
  double total_rpc = 0, total_err = 0, max_lag = 0;
  int primaries = 0, down = 0;
  std::printf("%-22s %-8s %6s %5s %10s %10s %10s  %s\n", "endpoint", "role",
              "term", "ready", "rpc/s", "err/s", "p99(ms)", "flags");
  for (NodeState& n : nodes) {
    emit_transitions(n);
    total_rpc += n.rpc_per_s;
    total_err += n.err_per_s;
    if (n.up && n.has_role && n.primary) {
      ++primaries;
    }
    if (n.up && n.has_role && !n.primary) {
      max_lag = std::max(max_lag, n.lag_records);
    }
    if (!n.up) {
      ++down;
    }
    std::printf("%-22s %-8s %6.0f %5s %10.1f %10.3f %10.3f  %s\n",
                n.endpoint.c_str(),
                !n.up ? "?" : (n.has_role ? (n.primary ? "primary" : "backup")
                                          : "single"),
                n.term, n.up ? (n.ready ? "yes" : "NO") : "?", n.rpc_per_s,
                n.err_per_s, n.p99_ms, flags_of(n, lag_threshold).c_str());
  }
  std::printf("\ncluster: %.1f rpc/s  %.3f err/s  %d primar%s  max lag %.0f "
              "records  %d down\n",
              total_rpc, total_err, primaries, primaries == 1 ? "y" : "ies",
              max_lag, down);
  if (primaries > 1) {
    std::printf("*** SPLIT: %d nodes claim primary — fencing in progress\n",
                primaries);
  }
  std::fflush(stdout);
}

void render_json(std::vector<NodeState>& nodes, double lag_threshold) {
  double total_rpc = 0, total_err = 0, max_lag = 0;
  int primaries = 0, down = 0;
  std::printf("{\"nodes\":[");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    NodeState& n = nodes[i];
    total_rpc += n.rpc_per_s;
    total_err += n.err_per_s;
    if (n.up && n.has_role && n.primary) {
      ++primaries;
    }
    if (n.up && n.has_role && !n.primary) {
      max_lag = std::max(max_lag, n.lag_records);
    }
    if (!n.up) {
      ++down;
    }
    std::printf(
        "%s{\"endpoint\":\"%s\",\"up\":%s,\"ready\":%s,\"role\":\"%s\","
        "\"term\":%.0f,\"lag_records\":%.0f,\"lag_bytes\":%.0f,"
        "\"rpc_per_s\":%.3f,\"err_per_s\":%.3f,\"p99_ms\":%.3f,"
        "\"flags\":\"%s\"}",
        i == 0 ? "" : ",", n.endpoint.c_str(), n.up ? "true" : "false",
        n.ready ? "true" : "false",
        !n.up ? "unknown"
              : (n.has_role ? (n.primary ? "primary" : "backup") : "single"),
        n.term, n.lag_records, n.lag_bytes, n.rpc_per_s, n.err_per_s,
        n.p99_ms, flags_of(n, lag_threshold).c_str());
  }
  std::printf("],\"cluster\":{\"rpc_per_s\":%.3f,\"err_per_s\":%.3f,"
              "\"primaries\":%d,\"max_lag_records\":%.0f,\"down\":%d,"
              "\"split\":%s}}\n",
              total_rpc, total_err, primaries, max_lag, down,
              primaries > 1 ? "true" : "false");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string endpoints;
  unsigned window_s = 60;
  unsigned interval_ms = 2000;
  double lag_threshold = 1024;
  bool once = false;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--endpoints" && i + 1 < argc) {
      endpoints = argv[++i];
    } else if (arg == "--window" && i + 1 < argc) {
      window_s = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--lag-records" && i + 1 < argc) {
      lag_threshold = std::atof(argv[++i]);
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: fgad_mon --endpoints H:P[,H:P...] [--window S]\n"
          "                [--interval-ms N] [--lag-records N] [--once] "
          "[--json]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (endpoints.empty()) {
    std::fprintf(stderr, "fgad_mon: --endpoints is required\n");
    return 2;
  }

  std::vector<NodeState> nodes;
  std::size_t pos = 0;
  while (pos <= endpoints.size()) {
    std::size_t comma = endpoints.find(',', pos);
    if (comma == std::string::npos) {
      comma = endpoints.size();
    }
    const std::string spec = endpoints.substr(pos, comma - pos);
    if (!spec.empty()) {
      NodeState n;
      n.endpoint = spec;
      auto hp = split_host_port(spec);
      if (hp.second == 0) {
        std::fprintf(stderr, "fgad_mon: bad endpoint %s\n", spec.c_str());
        return 2;
      }
      n.host = hp.first;
      n.port = hp.second;
      nodes.push_back(std::move(n));
    }
    pos = comma + 1;
  }
  if (nodes.empty()) {
    std::fprintf(stderr, "fgad_mon: --endpoints is required\n");
    return 2;
  }

  std::signal(SIGINT, on_sigint);
  do {
    int down = 0;
    for (NodeState& n : nodes) {
      if (!poll(n, window_s)) {
        ++down;
      }
    }
    if (json) {
      render_json(nodes, lag_threshold);
    } else {
      render_table(nodes, lag_threshold, /*clear=*/!once);
    }
    if (once) {
      return down > 0 ? 1 : 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  } while (!g_stop);
  return 0;
}
