// bench_compare engine (DESIGN.md §14): parse two BenchJson files (the
// `BENCH_<name>.json` schema from bench/support/bench_util.h, plus
// google-benchmark's native JSON for micro_core), match their rows by the
// non-metric fields, and flag metrics that moved past a relative
// tolerance in the *worse* direction — lower-is-better for latencies,
// higher-is-better for rates.
//
// Header-only so tests/bench_compare_test.cpp can drive the engine
// directly without spawning the binary; tools/bench_compare.cpp is a thin
// CLI around compare() + render_report_json().
//
// Tolerances: 15% by default, 35% for p99 quantiles (a tail quantile of a
// 20-200 sample run is noisy by construction). A metric only counts as a
// regression when it moves beyond tolerance in its bad direction —
// getting faster never fails the gate.
#pragma once

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace fgad::benchcmp {

// ---- minimal JSON ----------------------------------------------------------
//
// Just enough for the bench schema: objects, arrays, strings (no \u
// escapes beyond pass-through), numbers, true/false/null. Anything the
// benches never emit is a parse error, loudly.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;                        // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Result<JsonValue> parse() {
    auto v = value();
    if (!v) {
      return v;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      return fail("trailing garbage");
    }
    return v;
  }

 private:
  Error fail(const std::string& why) const {
    return Error(Errc::kDecodeError,
                 "json at byte " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> value() {
    skip_ws();
    if (pos_ >= s_.size()) {
      return fail("unexpected end");
    }
    const char c = s_[pos_];
    if (c == '{') {
      return object();
    }
    if (c == '[') {
      return array();
    }
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      auto str = string_lit();
      if (!str) {
        return str.error();
      }
      v.str = std::move(str).value();
      return v;
    }
    if (c == 't' || c == 'f') {
      const char* word = c == 't' ? "true" : "false";
      if (s_.compare(pos_, std::strlen(word), word) != 0) {
        return fail("bad literal");
      }
      pos_ += std::strlen(word);
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = c == 't';
      return v;
    }
    if (c == 'n') {
      if (s_.compare(pos_, 4, "null") != 0) {
        return fail("bad literal");
      }
      pos_ += 4;
      return JsonValue{};
    }
    return number();
  }

  Result<JsonValue> number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return fail("expected number");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return fail("bad number: " + s_.substr(start, pos_ - start));
    }
    return v;
  }

  Result<std::string> string_lit() {
    if (!eat('"')) {
      return fail("expected string");
    }
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) {
          return fail("bad escape");
        }
        const char e = s_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          default:
            return fail(std::string("unsupported escape \\") + e);
        }
      }
      out.push_back(c);
    }
    if (!eat('"')) {
      return fail("unterminated string");
    }
    return out;
  }

  Result<JsonValue> array() {
    if (!eat('[')) {
      return fail("expected array");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (eat(']')) {
      return v;
    }
    for (;;) {
      auto item = value();
      if (!item) {
        return item;
      }
      v.items.push_back(std::move(item).value());
      if (eat(']')) {
        return v;
      }
      if (!eat(',')) {
        return fail("expected , or ]");
      }
    }
  }

  Result<JsonValue> object() {
    if (!eat('{')) {
      return fail("expected object");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (eat('}')) {
      return v;
    }
    for (;;) {
      auto key = string_lit();
      if (!key) {
        return key.error();
      }
      if (!eat(':')) {
        return fail("expected :");
      }
      auto val = value();
      if (!val) {
        return val;
      }
      v.members.emplace_back(std::move(key).value(), std::move(val).value());
      if (eat('}')) {
        return v;
      }
      if (!eat(',')) {
        return fail("expected , or }");
      }
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---- metric classification -------------------------------------------------

inline bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Sample-count bookkeeping, never compared.
inline bool is_count_key(const std::string& key) {
  return ends_with(key, "_samples") || key == "samples" || key == "pairs" ||
         key == "reps" || key == "iterations" || key == "repetitions";
}

/// Higher is better: rates and throughputs.
inline bool is_rate_key(const std::string& key) {
  return ends_with(key, "_per_s") || ends_with(key, "per_second") ||
         ends_with(key, "_mbps") || ends_with(key, "_ops");
}

/// Lower is better: latencies, per-op costs, overheads, sizes.
inline bool is_latency_key(const std::string& key) {
  return ends_with(key, "_ns") || ends_with(key, "_us") ||
         ends_with(key, "_ms") || ends_with(key, "ns_per_op") ||
         ends_with(key, "us_per_op") || ends_with(key, "_pct") ||
         ends_with(key, "_bytes_per_item") || key == "real_time" ||
         key == "cpu_time";
}

inline bool is_metric_key(const std::string& key) {
  return !is_count_key(key) && (is_rate_key(key) || is_latency_key(key));
}

// ---- parsed bench file -----------------------------------------------------

struct Row {
  std::string key;  // identity: every non-metric field, "k=v|k=v|..."
  std::map<std::string, double> metrics;
};

struct BenchFile {
  std::string bench;
  std::vector<Row> rows;
};

/// Flattens one row object into identity key + metric map.
inline Row flatten_row(const JsonValue& obj) {
  Row row;
  std::string key;
  for (const auto& [k, v] : obj.members) {
    const bool numeric = v.kind == JsonValue::Kind::kNumber;
    if (numeric && is_metric_key(k)) {
      row.metrics[k] = v.number;
      continue;
    }
    if (numeric && is_count_key(k)) {
      continue;  // bookkeeping: not identity, not compared
    }
    if (!key.empty()) {
      key += "|";
    }
    if (v.kind == JsonValue::Kind::kString) {
      key += k + "=" + v.str;
    } else if (numeric) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%s=%.17g", k.c_str(), v.number);
      key += buf;
    } else if (v.kind == JsonValue::Kind::kBool) {
      key += k + "=" + (v.boolean ? "true" : "false");
    }
    // arrays/objects/null inside a row are ignored for identity
  }
  row.key = key;
  return row;
}

/// Parses either schema: fgad BenchJson ({"bench","rows":[...]}) or
/// google-benchmark native JSON ({"context","benchmarks":[...]}).
inline Result<BenchFile> parse_bench_json(const std::string& text) {
  auto parsed = JsonParser(text).parse();
  if (!parsed) {
    return parsed.error();
  }
  const JsonValue root = std::move(parsed).value();
  if (root.kind != JsonValue::Kind::kObject) {
    return Error(Errc::kDecodeError, "bench json: top level is not an object");
  }
  BenchFile out;
  const JsonValue* rows = root.find("rows");
  if (rows == nullptr) {
    rows = root.find("benchmarks");  // google-benchmark native
  }
  if (const JsonValue* name = root.find("bench");
      name != nullptr && name->kind == JsonValue::Kind::kString) {
    out.bench = name->str;
  } else if (rows != nullptr && root.find("benchmarks") != nullptr) {
    out.bench = "micro_core";
  }
  if (rows == nullptr || rows->kind != JsonValue::Kind::kArray) {
    return Error(Errc::kDecodeError, "bench json: no rows/benchmarks array");
  }
  for (const JsonValue& r : rows->items) {
    if (r.kind != JsonValue::Kind::kObject) {
      return Error(Errc::kDecodeError, "bench json: row is not an object");
    }
    out.rows.push_back(flatten_row(r));
  }
  return out;
}

// ---- comparison ------------------------------------------------------------

struct MetricDiff {
  std::string row_key;
  std::string metric;
  double old_value = 0;
  double new_value = 0;
  /// Signed relative change in the metric's *bad* direction: positive
  /// means worse (slower / lower-throughput), negative means better.
  double worse_by = 0;
  double tolerance = 0;
  bool regression = false;
};

struct CompareOptions {
  double tolerance = 0.15;       // default relative tolerance
  double p99_tolerance = 0.35;   // tail quantiles are noisy
  /// Exact-metric-name overrides (beats the defaults above).
  std::map<std::string, double> per_metric;

  double tolerance_for(const std::string& metric) const {
    if (const auto it = per_metric.find(metric); it != per_metric.end()) {
      return it->second;
    }
    if (ends_with(metric, "_p99_us") || ends_with(metric, "_p99_ns")) {
      return p99_tolerance;
    }
    return tolerance;
  }
};

struct CompareResult {
  std::vector<MetricDiff> diffs;       // every matched metric, worst first
  std::size_t regressions = 0;
  std::size_t metrics_compared = 0;
  std::size_t rows_matched = 0;
  std::vector<std::string> unmatched_old;  // row keys without a new-side twin
  std::vector<std::string> unmatched_new;

  bool ok() const { return regressions == 0; }
};

inline CompareResult compare(const BenchFile& oldf, const BenchFile& newf,
                             const CompareOptions& opts = {}) {
  CompareResult out;
  std::map<std::string, const Row*> new_by_key;
  for (const Row& r : newf.rows) {
    new_by_key[r.key] = &r;  // duplicate keys: last row wins
  }
  std::map<std::string, bool> new_seen;
  for (const Row& oldr : oldf.rows) {
    const auto it = new_by_key.find(oldr.key);
    if (it == new_by_key.end()) {
      out.unmatched_old.push_back(oldr.key);
      continue;
    }
    new_seen[oldr.key] = true;
    ++out.rows_matched;
    for (const auto& [metric, old_v] : oldr.metrics) {
      const auto mit = it->second->metrics.find(metric);
      if (mit == it->second->metrics.end()) {
        continue;  // metric added/removed between versions: not comparable
      }
      const double new_v = mit->second;
      if (!(std::isfinite(old_v) && std::isfinite(new_v)) || old_v <= 0) {
        continue;  // zero/negative baselines have no meaningful ratio
      }
      MetricDiff d;
      d.row_key = oldr.key;
      d.metric = metric;
      d.old_value = old_v;
      d.new_value = new_v;
      const double rel = (new_v - old_v) / old_v;
      d.worse_by = is_rate_key(metric) ? -rel : rel;
      d.tolerance = opts.tolerance_for(metric);
      d.regression = d.worse_by > d.tolerance;
      ++out.metrics_compared;
      if (d.regression) {
        ++out.regressions;
      }
      out.diffs.push_back(std::move(d));
    }
  }
  for (const Row& r : newf.rows) {
    if (new_seen.find(r.key) == new_seen.end()) {
      out.unmatched_new.push_back(r.key);
    }
  }
  std::stable_sort(out.diffs.begin(), out.diffs.end(),
                   [](const MetricDiff& a, const MetricDiff& b) {
                     return a.worse_by > b.worse_by;
                   });
  return out;
}

// ---- report rendering ------------------------------------------------------

inline std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Machine-readable verdict for one bench comparison; CI parses `.verdict`.
inline std::string render_report_json(const std::string& bench,
                                      const CompareResult& r) {
  char buf[256];
  std::string out = "{\"bench\":\"" + json_escape(bench) + "\",";
  out += "\"verdict\":\"" + std::string(r.ok() ? "ok" : "regression") + "\",";
  std::snprintf(buf, sizeof(buf),
                "\"regressions\":%zu,\"metrics_compared\":%zu,"
                "\"rows_matched\":%zu,",
                r.regressions, r.metrics_compared, r.rows_matched);
  out += buf;
  out += "\"diffs\":[";
  bool first = true;
  for (const MetricDiff& d : r.diffs) {
    if (!d.regression && d.worse_by <= d.tolerance * 0.5) {
      continue;  // keep the report small: only notable movement
    }
    std::snprintf(buf, sizeof(buf),
                  "%s{\"row\":\"%s\",\"metric\":\"%s\",\"old\":%.6g,"
                  "\"new\":%.6g,\"worse_by_pct\":%.2f,"
                  "\"tolerance_pct\":%.2f,\"regression\":%s}",
                  first ? "" : ",", json_escape(d.row_key).c_str(),
                  json_escape(d.metric).c_str(), d.old_value, d.new_value,
                  d.worse_by * 100.0, d.tolerance * 100.0,
                  d.regression ? "true" : "false");
    out += buf;
    first = false;
  }
  out += "],\"unmatched_old\":" + std::to_string(r.unmatched_old.size());
  out += ",\"unmatched_new\":" + std::to_string(r.unmatched_new.size());
  out += "}";
  return out;
}

/// Human-readable summary for the terminal / CI log.
inline std::string render_report_text(const std::string& bench,
                                      const CompareResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s: %s (%zu regression%s, %zu metrics, %zu rows)\n",
                bench.c_str(), r.ok() ? "OK" : "REGRESSION", r.regressions,
                r.regressions == 1 ? "" : "s", r.metrics_compared,
                r.rows_matched);
  std::string out = buf;
  for (const MetricDiff& d : r.diffs) {
    if (!d.regression) {
      continue;
    }
    std::snprintf(buf, sizeof(buf),
                  "  %s [%s]: %.6g -> %.6g (worse by %.1f%%, tolerance "
                  "%.0f%%)\n",
                  d.metric.c_str(), d.row_key.c_str(), d.old_value,
                  d.new_value, d.worse_by * 100.0, d.tolerance * 100.0);
    out += buf;
  }
  for (const std::string& k : r.unmatched_old) {
    out += "  (old row unmatched: " + k + ")\n";
  }
  return out;
}

}  // namespace fgad::benchcmp
