// fgad_top — live per-RPC telemetry for a running fgad_server.
//
//   fgad_top --port N [--host 127.0.0.1] [--window 60] [--interval-ms 2000]
//            [--filter PREFIX] [--once]
//
// Polls GET /vars.json?window=<W> on the server's metrics port and
// renders a refreshing table of windowed qps and p50/p95/p99 for every
// histogram matching --filter (default fgad_server_), plus the overall
// RPC error rate and the SLO tracker's burn rates. --once prints a
// single snapshot and exits (CI smoke / scripting); without it the
// screen redraws every --interval-ms until SIGINT.
//
// The /vars.json scanner and HTTP GET live in mon_util.h, shared with
// the fleet aggregator (fgad_mon) and fgad's trace stitching.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "mon_util.h"

namespace {

using fgad::montool::Entry;
using fgad::montool::entries_of;
using fgad::montool::http_get;
using fgad::montool::number_field;
using fgad::montool::object_after;

volatile std::sig_atomic_t g_stop = 0;
void on_sigint(int) { g_stop = 1; }

void render(const std::string& body, const std::string& filter, bool clear) {
  if (clear) {
    std::printf("\x1b[H\x1b[2J");  // cursor home + clear screen
  }
  const double covered = number_field(body, "covered_s");
  const std::string counters = object_after(body, "counters");
  const std::string gauges = object_after(body, "gauges");
  const std::string hists = object_after(body, "histograms");
  const std::string slo = object_after(body, "slo");

  double rpcs_rate = 0;
  double errs_rate = 0;
  for (const Entry& e : entries_of(counters)) {
    if (e.name == "fgad_server_rpcs_total") {
      rpcs_rate = number_field(e.obj, "rate_per_s");
    } else if (e.name == "fgad_server_rpc_errors_total") {
      errs_rate = number_field(e.obj, "rate_per_s");
    }
  }
  const double err_pct = rpcs_rate > 0 ? 100.0 * errs_rate / rpcs_rate : 0;
  std::printf("window %.0fs   rpc %.1f/s   errors %.3f%%\n", covered,
              rpcs_rate, err_pct);

  // Replicated nodes expose role/term/lag gauges; keep the line out of
  // the way on single-node deployments (no fgad_repl_role gauge yet).
  bool has_role = false;
  double role = 0, term = 0, lag_bytes = 0, lag_records = 0;
  for (const Entry& e : entries_of(gauges)) {
    if (e.name == "fgad_repl_role") {
      has_role = true;
      role = number_field(e.obj, "value");
    } else if (e.name == "fgad_repl_term") {
      term = number_field(e.obj, "value");
    } else if (e.name == "fgad_repl_lag_bytes") {
      lag_bytes = number_field(e.obj, "value");
    } else if (e.name == "fgad_repl_lag_records") {
      lag_records = number_field(e.obj, "value");
    }
  }
  if (has_role) {
    std::printf("repl   %s   term %.0f   lag %.0f records / %.1f KiB\n",
                role != 0 ? "PRIMARY" : "backup", term, lag_records,
                lag_bytes / 1024.0);
  }
  std::printf("\n");

  std::printf("%-44s %10s %10s %10s %10s\n", "histogram", "qps", "p50(ms)",
              "p95(ms)", "p99(ms)");
  for (const Entry& e : entries_of(hists)) {
    if (!filter.empty() && e.name.compare(0, filter.size(), filter) != 0) {
      continue;
    }
    std::printf("%-44s %10.1f %10.3f %10.3f %10.3f\n", e.name.c_str(),
                number_field(e.obj, "rate_per_s"),
                number_field(e.obj, "p50_ns") / 1e6,
                number_field(e.obj, "p95_ns") / 1e6,
                number_field(e.obj, "p99_ns") / 1e6);
  }

  if (!slo.empty()) {
    std::printf("\n%-28s %12s %12s %10s %9s\n", "slo objective", "burn(short)",
                "burn(long)", "breached", "breaches");
    // Objectives are an array of objects; reuse the entry scanner on a
    // fake wrapping by scanning for "name" fields directly.
    std::size_t pos = 0;
    while ((pos = slo.find("{\"name\":\"", pos)) != std::string::npos) {
      const std::size_t n1 = pos + 9;
      const std::size_t n2 = slo.find('"', n1);
      if (n2 == std::string::npos) {
        break;
      }
      std::size_t end = slo.find('}', n2);
      if (end == std::string::npos) {
        end = slo.size();
      }
      const std::string obj = slo.substr(pos, end - pos + 1);
      const bool breached = obj.find("\"breached\":true") != std::string::npos;
      std::printf("%-28s %12.3f %12.3f %10s %9.0f\n",
                  slo.substr(n1, n2 - n1).c_str(),
                  number_field(obj, "short_burn"),
                  number_field(obj, "long_burn"), breached ? "YES" : "no",
                  number_field(obj, "breaches"));
      pos = end + 1;
    }
    if (slo.find("\"overloaded\":true") != std::string::npos) {
      std::printf("\n*** OVERLOADED: /readyz is reporting 503 ***\n");
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  unsigned window_s = 60;
  unsigned interval_ms = 2000;
  std::string filter = "fgad_server_";
  bool once = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--window" && i + 1 < argc) {
      window_s = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--filter" && i + 1 < argc) {
      filter = argv[++i];
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: fgad_top --port N [--host H] [--window S] "
          "[--interval-ms N] [--filter PREFIX] [--once]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "fgad_top: --port (the metrics port) is required\n");
    return 2;
  }

  std::signal(SIGINT, on_sigint);
  const std::string path =
      "/vars.json?window=" + std::to_string(window_s) + "s";
  do {
    const std::string body = http_get(host, port, path);
    if (body.empty()) {
      std::fprintf(stderr, "fgad_top: no response from %s:%u%s\n",
                   host.c_str(), port, path.c_str());
      return 1;
    }
    render(body, filter, /*clear=*/!once);
    if (once) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  } while (!g_stop);
  return 0;
}
