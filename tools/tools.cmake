# Command-line tools (included from the top-level CMakeLists; binaries land
# in ${CMAKE_BINARY_DIR}/tools).

function(fgad_tool target source output)
  add_executable(${target} ${CMAKE_SOURCE_DIR}/tools/${source})
  target_link_libraries(${target} PRIVATE fgad)
  set_target_properties(${target} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/tools
    OUTPUT_NAME ${output})
endfunction()

fgad_tool(fgad_server_tool fgad_server.cpp fgad_server)
fgad_tool(fgad_cli fgad_cli.cpp fgad)
fgad_tool(bench_compare bench_compare.cpp bench_compare)
