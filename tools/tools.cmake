# Command-line tools (included from the top-level CMakeLists; binaries land
# in ${CMAKE_BINARY_DIR}/tools).

function(fgad_tool target source output)
  add_executable(${target} ${CMAKE_SOURCE_DIR}/tools/${source})
  target_link_libraries(${target} PRIVATE fgad)
  set_target_properties(${target} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/tools
    OUTPUT_NAME ${output})
endfunction()

fgad_tool(fgad_server_tool fgad_server.cpp fgad_server)
# Export symbols so the sampling profiler's dladdr() pass (DESIGN.md §17)
# can name frames in /profile output instead of printing raw addresses.
target_link_options(fgad_server_tool PRIVATE -rdynamic)
fgad_tool(fgad_cli fgad_cli.cpp fgad)
fgad_tool(bench_compare bench_compare.cpp bench_compare)
fgad_tool(fgad_top fgad_top.cpp fgad_top)
fgad_tool(fgad_mon fgad_mon.cpp fgad_mon)
fgad_tool(fgad_repl_smoke fgad_repl_smoke.cpp fgad_repl_smoke)
