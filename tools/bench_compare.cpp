// bench_compare — the perf-regression gate (DESIGN.md §14).
//
//   bench_compare [options] OLD.json NEW.json
//   bench_compare [options] --old-dir DIR --new-dir DIR
//
// Diffs a fresh bench run against a recorded baseline (the
// bench/results/BENCH_*.json snapshots), matching rows by their
// non-metric fields and flagging any metric that moved past its relative
// tolerance in the bad direction. Directory mode compares every
// BENCH_*.json present in both directories.
//
// Options:
//   --tolerance PCT        default relative tolerance (default 15)
//   --p99-tolerance PCT    tolerance for *_p99_* quantiles (default 35)
//   --metric NAME=PCT      per-metric override (repeatable)
//   --report FILE          write the machine-readable JSON verdict here
//   --warn-only            print regressions but exit 0 (shared CI runners,
//                          where a noisy neighbor is not a regression)
//
// Exit codes: 0 = within tolerance (or --warn-only), 1 = regression
// detected, 2 = usage or I/O error.
#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_compare_core.h"
#include "common/fsio.h"

namespace {

using namespace fgad;

Result<benchcmp::BenchFile> load(const std::string& path) {
  auto data = fsio::read_file(path);
  if (!data) {
    return data.error();
  }
  const Bytes& b = data.value();
  auto parsed = benchcmp::parse_bench_json(
      std::string(reinterpret_cast<const char*>(b.data()), b.size()));
  if (!parsed) {
    return Error(parsed.code(), path + ": " + parsed.status().to_string());
  }
  return parsed;
}

std::vector<std::string> list_bench_files(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return out;
  }
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() > 11 && name.compare(0, 6, "BENCH_") == 0 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      out.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare [--tolerance PCT] [--p99-tolerance PCT]\n"
      "                     [--metric NAME=PCT]... [--report FILE]\n"
      "                     [--warn-only] OLD.json NEW.json\n"
      "       bench_compare [options] --old-dir DIR --new-dir DIR\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  benchcmp::CompareOptions opts;
  std::string report_path;
  std::string old_dir;
  std::string new_dir;
  bool warn_only = false;
  std::vector<std::string> positional;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      opts.tolerance = std::atof(argv[++i]) / 100.0;
    } else if (arg == "--p99-tolerance" && i + 1 < argc) {
      opts.p99_tolerance = std::atof(argv[++i]) / 100.0;
    } else if (arg == "--metric" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--metric needs NAME=PCT, got %s\n",
                     spec.c_str());
        return 2;
      }
      opts.per_metric[spec.substr(0, eq)] =
          std::atof(spec.c_str() + eq + 1) / 100.0;
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--old-dir" && i + 1 < argc) {
      old_dir = argv[++i];
    } else if (arg == "--new-dir" && i + 1 < argc) {
      new_dir = argv[++i];
    } else if (arg == "--warn-only") {
      warn_only = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  // Assemble (name, old path, new path) pairs for either mode.
  struct Pair {
    std::string name, old_path, new_path;
  };
  std::vector<Pair> pairs;
  if (!old_dir.empty() || !new_dir.empty()) {
    if (old_dir.empty() || new_dir.empty() || !positional.empty()) {
      return usage();
    }
    const auto old_files = list_bench_files(old_dir);
    for (const std::string& f : old_files) {
      if (fsio::exists(new_dir + "/" + f)) {
        pairs.push_back(Pair{f, old_dir + "/" + f, new_dir + "/" + f});
      } else {
        std::fprintf(stderr, "note: %s has no counterpart in %s (skipped)\n",
                     f.c_str(), new_dir.c_str());
      }
    }
    if (pairs.empty()) {
      std::fprintf(stderr, "no BENCH_*.json pairs between %s and %s\n",
                   old_dir.c_str(), new_dir.c_str());
      return 2;
    }
  } else {
    if (positional.size() != 2) {
      return usage();
    }
    pairs.push_back(Pair{positional[1], positional[0], positional[1]});
  }

  std::string report = "{\"comparisons\":[";
  bool any_regression = false;
  bool io_error = false;
  bool first = true;
  for (const Pair& p : pairs) {
    auto oldf = load(p.old_path);
    auto newf = load(p.new_path);
    if (!oldf || !newf) {
      std::fprintf(stderr, "%s\n",
                   (!oldf ? oldf.status() : newf.status()).to_string().c_str());
      io_error = true;
      continue;
    }
    const auto result =
        benchcmp::compare(oldf.value(), newf.value(), opts);
    const std::string name =
        oldf.value().bench.empty() ? p.name : oldf.value().bench;
    std::fputs(benchcmp::render_report_text(name, result).c_str(), stdout);
    report += (first ? "" : ",") + benchcmp::render_report_json(name, result);
    first = false;
    any_regression = any_regression || !result.ok();
  }
  report += "],\"verdict\":\"";
  report += any_regression ? "regression" : "ok";
  report += "\"}";

  if (!report_path.empty()) {
    if (auto st = fsio::atomic_write_file(
            report_path,
            BytesView(reinterpret_cast<const std::uint8_t*>(report.data()),
                      report.size()));
        !st) {
      std::fprintf(stderr, "cannot write report: %s\n",
                   st.to_string().c_str());
      return 2;
    }
    std::printf("report written to %s\n", report_path.c_str());
  }
  if (io_error) {
    return 2;
  }
  if (any_regression) {
    std::printf("%s\n", warn_only
                            ? "verdict: regression (warn-only mode, exit 0)"
                            : "verdict: regression");
    return warn_only ? 0 : 1;
  }
  std::printf("verdict: ok\n");
  return 0;
}
