// fgad — command-line client for the assured-deletion cloud store.
//
//   fgad --store KS --pass PW [--host H] [--port N] [--timeout-ms N]
//        [--retries N] <command> [args...]
//
// The keystore file KS is the client's entire persistent secret state: the
// global counter plus one master key per outsourced file, sealed under the
// passphrase. Commands:
//
//   init                            create an empty keystore
//   files                           list file ids held in the keystore
//   outsource FILE_ID PATH...       outsource files (each path = one item)
//   ls FILE_ID                      list item ids in file order
//   cat FILE_ID ITEM_ID             decrypt one item to stdout
//   put FILE_ID PATH                insert one item; prints its id
//   edit FILE_ID ITEM_ID PATH       replace an item's content
//   rm FILE_ID ITEM_ID              fine-grained ASSURED deletion
//   drop FILE_ID                    drop the whole file (key destroyed)
//   stats FILE_ID                   server-side size stats for one file
//
// --trace collects a client-side span tree for the command and prints it
// to stderr on exit; every RPC is tagged with the trace's request id, so
// the server's audit-log lines carry the same id (DESIGN.md §12). Traced
// RPCs ride the V2 envelope, so the server returns its per-request cost
// breakdown (WAL append, fsync share, replication wait, apply) as a
// server-timing trailer, printed with the trace. --stitch H:P names the
// server's METRICS endpoint: on exit the CLI samples its /clock for a
// skew estimate, fetches the server-side (and, transitively, backup-
// side) span segments via GET /trace.json?rid=, and merges everything
// into the --trace-json document — one Perfetto timeline spanning
// client, primary, and backup (DESIGN.md §19).
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "client/client.h"
#include "client/keystore.h"
#include "mon_util.h"
#include "net/retry.h"
#include "net/tcp.h"
#include "obs/cost.h"
#include "obs/metrics.h"
#include "obs/stitch.h"
#include "obs/trace.h"
#include "proto/messages.h"

namespace {

using namespace fgad;

Result<Bytes> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error(Errc::kIoError, "cannot open " + path);
  }
  Bytes data;
  std::uint8_t buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + got);
  }
  std::fclose(f);
  return data;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: fgad --store KS --pass PW [--host H] [--port N]\n"
      "            [--timeout-ms N] [--retries N] [--trace]\n"
      "            [--trace-json FILE] [--stitch H:P] CMD [args]\n"
      "commands: init | files | outsource FILE PATH... | ls FILE |\n"
      "          cat FILE ITEM | put FILE PATH | edit FILE ITEM PATH |\n"
      "          rm FILE ITEM... | drop FILE | stats FILE\n");
  return 2;
}

struct Session {
  client::Keystore keystore;
  std::unique_ptr<net::RpcChannel> channel;
  std::unique_ptr<client::Client> client;

  Result<client::Client::FileHandle> handle(std::uint64_t file_id) {
    auto key = keystore.get(file_id);
    if (!key) {
      return key.error();
    }
    client::Client::FileHandle fh;
    fh.id = file_id;
    fh.key = crypto::MasterKey(key.value());
    return fh;
  }
};

/// Exports or prints the span tree on scope exit (any return path) when
/// --trace / --trace-json is active; a no-op otherwise. The JSON flavor
/// wins when both are given: one file, loadable in Perfetto. With a
/// stitch endpoint, the exported document also carries the server-side
/// segments, skew-corrected into the client's timeline.
struct TraceDumper {
  std::string json_path;
  std::string stitch_host;
  std::uint16_t stitch_port = 0;
  std::uint64_t rid = 0;
  // Reads the last V2 response's server-timing trailer; bound to the
  // Session AFTER it is constructed (the dumper is declared later in
  // main, so its destructor runs while the Session is still alive).
  std::function<std::vector<proto::TimingEntry>()> timing_source;

  void print_server_timing() const {
    if (!timing_source) {
      return;
    }
    const auto timings = timing_source();
    if (timings.empty()) {
      return;
    }
    std::fprintf(stderr, "server timing (last traced RPC):\n");
    std::uint64_t parts = 0, total = 0;
    for (const auto& t : timings) {
      const auto k = static_cast<obs::CostKind>(t.kind);
      std::fprintf(stderr, "  %-12s %10.3f ms\n", obs::cost_kind_name(k),
                   static_cast<double>(t.ns) / 1e6);
      if (k == obs::CostKind::kTotal) {
        total = t.ns;
      } else if (k != obs::CostKind::kKeyDerive) {
        parts += t.ns;
      }
    }
    if (total != 0) {
      std::fprintf(stderr, "  parts sum to %.3f ms of %.3f ms total\n",
                   static_cast<double>(parts) / 1e6,
                   static_cast<double>(total) / 1e6);
    }
  }

  /// The server-side document for this rid (already stitched with the
  /// server's own peer, i.e. the backup), merged skew-corrected.
  std::string stitched(std::string doc) const {
    std::vector<obs::ClockSample> samples;
    for (int i = 0; i < 5; ++i) {
      obs::ClockSample cs;
      cs.local_send_ns = obs::now_ns();
      const std::string body =
          montool::http_get(stitch_host, stitch_port, "/clock");
      cs.local_recv_ns = obs::now_ns();
      const std::size_t pos = body.find("\"now_ns\":");
      if (pos == std::string::npos) {
        continue;
      }
      cs.peer_ns = std::strtoull(body.c_str() + pos + 9, nullptr, 10);
      samples.push_back(cs);
    }
    const obs::OffsetEstimate off = obs::best_offset(samples);
    char rid_hex[24];
    std::snprintf(rid_hex, sizeof(rid_hex), "%016llx",
                  static_cast<unsigned long long>(rid));
    const std::string peer = montool::http_get(
        stitch_host, stitch_port, std::string("/trace.json?rid=") + rid_hex);
    if (!off.valid || peer.find("\"t0_ns\":") == std::string::npos) {
      std::fprintf(stderr,
                   "stitch: no server-side trace from %s:%u (local only)\n",
                   stitch_host.c_str(), stitch_port);
      return doc;
    }
    std::fprintf(stderr,
                 "stitch: clock offset %+lld ns (rtt %llu ns) from %s:%u\n",
                 static_cast<long long>(off.offset_ns),
                 static_cast<unsigned long long>(off.rtt_ns),
                 stitch_host.c_str(), stitch_port);
    return obs::trace_stitch(doc, peer, off.offset_ns, /*pid_delta=*/1);
  }

  ~TraceDumper() {
    if (obs::trace_active()) {
      print_server_timing();
      // Costs charged locally under the same rid — today just the
      // client-side item-key derivation chain.
      const auto local = obs::CostLedger::instance().take(rid);
      const std::uint64_t derive =
          local.ns[static_cast<std::size_t>(obs::CostKind::kKeyDerive)];
      if (derive != 0) {
        std::fprintf(stderr, "client timing: key_derive %.3f ms\n",
                     static_cast<double>(derive) / 1e6);
      }
    }
    if (!json_path.empty() && obs::trace_active()) {
      std::string doc = obs::trace_render_chrome_json();
      if (stitch_port != 0 && rid != 0) {
        doc = stitched(std::move(doc));
      }
      std::FILE* f = std::fopen(json_path.c_str(), "wb");
      if (f == nullptr ||
          std::fwrite(doc.data(), 1, doc.size(), f) != doc.size()) {
        std::fprintf(stderr, "trace export failed: cannot write %s\n",
                     json_path.c_str());
      } else {
        std::fprintf(stderr, "trace written to %s\n", json_path.c_str());
      }
      if (f != nullptr) {
        std::fclose(f);
      }
      return;
    }
    obs::trace_dump(stderr);
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string store_path;
  std::string passphrase;
  std::string host = "127.0.0.1";
  std::uint16_t port = 4270;
  int timeout_ms = 30000;
  int retries = 4;
  bool trace = false;
  std::string trace_json;
  std::string stitch;
  std::vector<std::string> args;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--store" && i + 1 < argc) {
      store_path = argv[++i];
    } else if (arg == "--pass" && i + 1 < argc) {
      passphrase = argv[++i];
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      timeout_ms = std::atoi(argv[++i]);
    } else if (arg == "--retries" && i + 1 < argc) {
      retries = std::atoi(argv[++i]);
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--trace-json" && i + 1 < argc) {
      trace = true;
      trace_json = argv[++i];
    } else if (arg == "--stitch" && i + 1 < argc) {
      trace = true;
      stitch = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      args.push_back(arg);
    }
  }
  if (store_path.empty() || passphrase.empty() || args.empty()) {
    return usage();
  }
  const std::string cmd = args[0];
  crypto::SystemRandom rnd;

  // Declared before the dumper so the dumper's destructor (which reads
  // the client's last server-timing trailer) runs while it is alive.
  Session s;
  TraceDumper trace_dumper;
  trace_dumper.json_path = trace_json;
  if (!stitch.empty()) {
    const auto hp = montool::split_host_port(stitch);
    if (hp.second == 0) {
      std::fprintf(stderr, "bad --stitch endpoint: %s\n", stitch.c_str());
      return 2;
    }
    trace_dumper.stitch_host = hp.first;
    trace_dumper.stitch_port = hp.second;
  }
  if (trace) {
    const std::uint64_t rid = obs::generate_request_id();
    std::fprintf(stderr, "trace: request id %016llx\n",
                 static_cast<unsigned long long>(rid));
    obs::trace_set_process_label("client");
    obs::trace_begin(rid);
    obs::CostLedger::instance().set_enabled(true);
    trace_dumper.rid = rid;
    trace_dumper.timing_source = [&s]() {
      return s.client ? s.client->last_server_timing()
                      : std::vector<proto::TimingEntry>{};
    };
  }

  // `init` needs no connection.
  if (cmd == "init") {
    client::Keystore ks;
    if (auto st = ks.save_to_file(store_path, passphrase, rnd); !st) {
      std::fprintf(stderr, "%s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("created keystore %s\n", store_path.c_str());
    return 0;
  }

  {
    auto ks = client::Keystore::load_from_file(store_path, passphrase);
    if (!ks) {
      std::fprintf(stderr, "keystore: %s\n",
                   ks.status().to_string().c_str());
      return 1;
    }
    s.keystore = std::move(ks).value();
  }

  if (cmd == "files") {
    for (std::uint64_t id : s.keystore.file_ids()) {
      std::printf("%llu\n", static_cast<unsigned long long>(id));
    }
    return 0;
  }

  // Everything else talks to the server — through a reconnecting retry
  // channel, so transient stalls/resets only fail read-style commands
  // after the bounded backoff budget, and mutating commands (put/rm/...)
  // surface a typed error instead of being resent blind.
  {
    net::TcpChannel::Options tcp_opts;
    tcp_opts.connect_timeout_ms = timeout_ms;
    tcp_opts.io_timeout_ms = timeout_ms;
    net::RetryChannel::Options retry_opts;
    retry_opts.max_attempts = retries;
    retry_opts.retryable = [](BytesView frame) {
      return proto::retryable_request(frame);
    };
    auto retry = std::make_unique<net::RetryChannel>(
        net::tcp_dialer(host, port, tcp_opts), retry_opts);
    // Dial eagerly so an unreachable server fails fast and obviously.
    auto probe = net::TcpChannel::connect(host, port, tcp_opts);
    if (!probe) {
      std::fprintf(stderr, "connect %s:%u failed: %s\n", host.c_str(), port,
                   probe.status().to_string().c_str());
      return 1;
    }
    s.channel = std::move(retry);
    s.client = std::make_unique<client::Client>(*s.channel, rnd);
    s.client->set_counter(s.keystore.counter());
  }

  const auto persist = [&]() -> int {
    s.keystore.set_counter(s.client->counter());
    if (auto st = s.keystore.save_to_file(store_path, passphrase, rnd); !st) {
      std::fprintf(stderr, "keystore save failed: %s\n",
                   st.to_string().c_str());
      return 1;
    }
    return 0;
  };

  if (cmd == "outsource" && args.size() >= 3) {
    const std::uint64_t file_id = std::strtoull(args[1].c_str(), nullptr, 10);
    if (s.keystore.contains(file_id)) {
      std::fprintf(stderr, "file %llu already in keystore\n",
                   static_cast<unsigned long long>(file_id));
      return 1;
    }
    std::vector<Bytes> items;
    for (std::size_t i = 2; i < args.size(); ++i) {
      auto data = read_file(args[i]);
      if (!data) {
        std::fprintf(stderr, "%s\n", data.status().to_string().c_str());
        return 1;
      }
      items.push_back(std::move(data).value());
    }
    auto fh = s.client->outsource(file_id, items);
    if (!fh) {
      std::fprintf(stderr, "outsource failed: %s\n",
                   fh.status().to_string().c_str());
      return 1;
    }
    s.keystore.put(file_id, fh.value().key.value());
    std::printf("outsourced %zu items as file %llu\n", items.size(),
                static_cast<unsigned long long>(file_id));
    return persist();
  }

  if (cmd == "ls" && args.size() == 2) {
    auto fh = s.handle(std::strtoull(args[1].c_str(), nullptr, 10));
    if (!fh) {
      std::fprintf(stderr, "%s\n", fh.status().to_string().c_str());
      return 1;
    }
    auto ids = s.client->list_items(fh.value());
    if (!ids) {
      std::fprintf(stderr, "%s\n", ids.status().to_string().c_str());
      return 1;
    }
    for (std::uint64_t id : ids.value()) {
      std::printf("%llu\n", static_cast<unsigned long long>(id));
    }
    return 0;
  }

  if (cmd == "cat" && args.size() == 3) {
    auto fh = s.handle(std::strtoull(args[1].c_str(), nullptr, 10));
    if (!fh) {
      std::fprintf(stderr, "%s\n", fh.status().to_string().c_str());
      return 1;
    }
    auto item = s.client->access(
        fh.value(),
        proto::ItemRef::id(std::strtoull(args[2].c_str(), nullptr, 10)));
    if (!item) {
      std::fprintf(stderr, "%s\n", item.status().to_string().c_str());
      return 1;
    }
    std::fwrite(item.value().data(), 1, item.value().size(), stdout);
    return 0;
  }

  if (cmd == "put" && args.size() == 3) {
    auto fh = s.handle(std::strtoull(args[1].c_str(), nullptr, 10));
    if (!fh) {
      std::fprintf(stderr, "%s\n", fh.status().to_string().c_str());
      return 1;
    }
    auto data = read_file(args[2]);
    if (!data) {
      std::fprintf(stderr, "%s\n", data.status().to_string().c_str());
      return 1;
    }
    auto id = s.client->insert(fh.value(), data.value());
    if (!id) {
      std::fprintf(stderr, "insert failed: %s\n",
                   id.status().to_string().c_str());
      return 1;
    }
    std::printf("%llu\n", static_cast<unsigned long long>(id.value()));
    return persist();
  }

  if (cmd == "edit" && args.size() == 4) {
    auto fh = s.handle(std::strtoull(args[1].c_str(), nullptr, 10));
    if (!fh) {
      std::fprintf(stderr, "%s\n", fh.status().to_string().c_str());
      return 1;
    }
    auto data = read_file(args[3]);
    if (!data) {
      std::fprintf(stderr, "%s\n", data.status().to_string().c_str());
      return 1;
    }
    auto st = s.client->modify(
        fh.value(), std::strtoull(args[2].c_str(), nullptr, 10),
        data.value());
    if (!st) {
      std::fprintf(stderr, "modify failed: %s\n", st.to_string().c_str());
      return 1;
    }
    return persist();
  }

  if (cmd == "rm" && args.size() >= 3) {
    auto fh = s.handle(std::strtoull(args[1].c_str(), nullptr, 10));
    if (!fh) {
      std::fprintf(stderr, "%s\n", fh.status().to_string().c_str());
      return 1;
    }
    auto handle = std::move(fh).value();
    Status st = Status::ok();
    if (args.size() == 3) {
      st = s.client->erase_item(
          handle, proto::ItemRef::id(std::strtoull(args[2].c_str(), nullptr,
                                                   10)));
    } else {
      // Several items: merged-cut bulk deletion — one round trip, ONE key
      // rotation for the whole batch (DESIGN.md §16).
      std::vector<proto::ItemRef> refs;
      for (std::size_t i = 2; i < args.size(); ++i) {
        refs.push_back(
            proto::ItemRef::id(std::strtoull(args[i].c_str(), nullptr, 10)));
      }
      st = s.client->erase_items(handle, refs);
    }
    if (!st) {
      std::fprintf(stderr, "assured delete failed: %s\n",
                   st.to_string().c_str());
      if (st.error().code == Errc::kIndeterminate) {
        // Commit outcome unknown; the handle is poisoned. Try to prove the
        // server's epoch so the keystore ends up with the live key.
        if (auto re = s.client->resync(handle); re) {
          s.keystore.put(handle.id, handle.key.value());
          persist();
          std::fprintf(stderr, "resynced: keystore now holds the live key\n");
        }
      }
      return 1;
    }
    // The master key rotated: persist the new one, destroying the old.
    s.keystore.put(handle.id, handle.key.value());
    if (args.size() == 3) {
      std::printf("item assuredly deleted; master key rotated\n");
    } else {
      std::printf("%zu items assuredly deleted; master key rotated once\n",
                  args.size() - 2);
    }
    return persist();
  }

  if (cmd == "stats" && args.size() == 2) {
    const std::uint64_t file_id = std::strtoull(args[1].c_str(), nullptr, 10);
    auto st = s.client->stat(file_id);
    if (!st) {
      std::fprintf(stderr, "stats failed: %s\n",
                   st.status().to_string().c_str());
      return 1;
    }
    std::printf("file %llu: %llu items, %llu tree nodes, %llu tree bytes\n",
                static_cast<unsigned long long>(file_id),
                static_cast<unsigned long long>(st.value().n_items),
                static_cast<unsigned long long>(st.value().node_count),
                static_cast<unsigned long long>(st.value().tree_bytes));
    return 0;
  }

  if (cmd == "drop" && args.size() == 2) {
    auto fh = s.handle(std::strtoull(args[1].c_str(), nullptr, 10));
    if (!fh) {
      std::fprintf(stderr, "%s\n", fh.status().to_string().c_str());
      return 1;
    }
    auto handle = std::move(fh).value();
    if (auto st = s.client->drop_file(handle); !st) {
      std::fprintf(stderr, "drop failed: %s\n", st.to_string().c_str());
      return 1;
    }
    (void)s.keystore.remove(handle.id);
    std::printf("file dropped and key destroyed\n");
    return persist();
  }

  return usage();
}
