# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/chain_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/item_codec_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/delete_test[1]_include.cmake")
include("/root/repo/build/tests/insert_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_model_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/item_store_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/client_integration_test[1]_include.cmake")
include("/root/repo/build/tests/adversary_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/fskeys_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/groups_proxy_test[1]_include.cmake")
include("/root/repo/build/tests/integrity_test[1]_include.cmake")
include("/root/repo/build/tests/tamper_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/keystore_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
include("/root/repo/build/tests/decode_fuzz_test[1]_include.cmake")
