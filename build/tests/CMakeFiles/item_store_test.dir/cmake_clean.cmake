file(REMOVE_RECURSE
  "CMakeFiles/item_store_test.dir/item_store_test.cpp.o"
  "CMakeFiles/item_store_test.dir/item_store_test.cpp.o.d"
  "item_store_test"
  "item_store_test.pdb"
  "item_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/item_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
