file(REMOVE_RECURSE
  "CMakeFiles/item_codec_test.dir/item_codec_test.cpp.o"
  "CMakeFiles/item_codec_test.dir/item_codec_test.cpp.o.d"
  "item_codec_test"
  "item_codec_test.pdb"
  "item_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/item_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
