# Empty dependencies file for decode_fuzz_test.
# This may be replaced when dependencies are built.
