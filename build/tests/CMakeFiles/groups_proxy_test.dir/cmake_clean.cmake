file(REMOVE_RECURSE
  "CMakeFiles/groups_proxy_test.dir/groups_proxy_test.cpp.o"
  "CMakeFiles/groups_proxy_test.dir/groups_proxy_test.cpp.o.d"
  "groups_proxy_test"
  "groups_proxy_test.pdb"
  "groups_proxy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groups_proxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
