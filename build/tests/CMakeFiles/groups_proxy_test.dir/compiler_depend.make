# Empty compiler generated dependencies file for groups_proxy_test.
# This may be replaced when dependencies are built.
