# Empty compiler generated dependencies file for insert_test.
# This may be replaced when dependencies are built.
