file(REMOVE_RECURSE
  "CMakeFiles/insert_test.dir/insert_test.cpp.o"
  "CMakeFiles/insert_test.dir/insert_test.cpp.o.d"
  "insert_test"
  "insert_test.pdb"
  "insert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
