# Empty dependencies file for tamper_fuzz_test.
# This may be replaced when dependencies are built.
