file(REMOVE_RECURSE
  "CMakeFiles/tamper_fuzz_test.dir/tamper_fuzz_test.cpp.o"
  "CMakeFiles/tamper_fuzz_test.dir/tamper_fuzz_test.cpp.o.d"
  "tamper_fuzz_test"
  "tamper_fuzz_test.pdb"
  "tamper_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamper_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
