file(REMOVE_RECURSE
  "CMakeFiles/fskeys_test.dir/fskeys_test.cpp.o"
  "CMakeFiles/fskeys_test.dir/fskeys_test.cpp.o.d"
  "fskeys_test"
  "fskeys_test.pdb"
  "fskeys_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fskeys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
