# Empty dependencies file for fskeys_test.
# This may be replaced when dependencies are built.
