# Empty dependencies file for fgad.
# This may be replaced when dependencies are built.
