file(REMOVE_RECURSE
  "libfgad.a"
)
