
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/individual_key.cpp" "src/CMakeFiles/fgad.dir/baselines/individual_key.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/baselines/individual_key.cpp.o.d"
  "/root/repo/src/baselines/master_key.cpp" "src/CMakeFiles/fgad.dir/baselines/master_key.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/baselines/master_key.cpp.o.d"
  "/root/repo/src/client/client.cpp" "src/CMakeFiles/fgad.dir/client/client.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/client/client.cpp.o.d"
  "/root/repo/src/client/keystore.cpp" "src/CMakeFiles/fgad.dir/client/keystore.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/client/keystore.cpp.o.d"
  "/root/repo/src/cloud/file_store.cpp" "src/CMakeFiles/fgad.dir/cloud/file_store.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/cloud/file_store.cpp.o.d"
  "/root/repo/src/cloud/item_store.cpp" "src/CMakeFiles/fgad.dir/cloud/item_store.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/cloud/item_store.cpp.o.d"
  "/root/repo/src/cloud/server.cpp" "src/CMakeFiles/fgad.dir/cloud/server.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/cloud/server.cpp.o.d"
  "/root/repo/src/common/bytes.cpp" "src/CMakeFiles/fgad.dir/common/bytes.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/common/bytes.cpp.o.d"
  "/root/repo/src/common/result.cpp" "src/CMakeFiles/fgad.dir/common/result.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/common/result.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/fgad.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/common/rng.cpp.o.d"
  "/root/repo/src/core/chain.cpp" "src/CMakeFiles/fgad.dir/core/chain.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/core/chain.cpp.o.d"
  "/root/repo/src/core/client_math.cpp" "src/CMakeFiles/fgad.dir/core/client_math.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/core/client_math.cpp.o.d"
  "/root/repo/src/core/item_codec.cpp" "src/CMakeFiles/fgad.dir/core/item_codec.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/core/item_codec.cpp.o.d"
  "/root/repo/src/core/outsource.cpp" "src/CMakeFiles/fgad.dir/core/outsource.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/core/outsource.cpp.o.d"
  "/root/repo/src/core/tree.cpp" "src/CMakeFiles/fgad.dir/core/tree.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/core/tree.cpp.o.d"
  "/root/repo/src/core/views.cpp" "src/CMakeFiles/fgad.dir/core/views.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/core/views.cpp.o.d"
  "/root/repo/src/crypto/aes.cpp" "src/CMakeFiles/fgad.dir/crypto/aes.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/crypto/aes.cpp.o.d"
  "/root/repo/src/crypto/digest.cpp" "src/CMakeFiles/fgad.dir/crypto/digest.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/crypto/digest.cpp.o.d"
  "/root/repo/src/crypto/hasher.cpp" "src/CMakeFiles/fgad.dir/crypto/hasher.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/crypto/hasher.cpp.o.d"
  "/root/repo/src/crypto/prf.cpp" "src/CMakeFiles/fgad.dir/crypto/prf.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/crypto/prf.cpp.o.d"
  "/root/repo/src/crypto/random.cpp" "src/CMakeFiles/fgad.dir/crypto/random.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/crypto/random.cpp.o.d"
  "/root/repo/src/crypto/secure_buffer.cpp" "src/CMakeFiles/fgad.dir/crypto/secure_buffer.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/crypto/secure_buffer.cpp.o.d"
  "/root/repo/src/fskeys/groups.cpp" "src/CMakeFiles/fgad.dir/fskeys/groups.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/fskeys/groups.cpp.o.d"
  "/root/repo/src/fskeys/meta.cpp" "src/CMakeFiles/fgad.dir/fskeys/meta.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/fskeys/meta.cpp.o.d"
  "/root/repo/src/fskeys/proxy.cpp" "src/CMakeFiles/fgad.dir/fskeys/proxy.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/fskeys/proxy.cpp.o.d"
  "/root/repo/src/integrity/audit.cpp" "src/CMakeFiles/fgad.dir/integrity/audit.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/integrity/audit.cpp.o.d"
  "/root/repo/src/integrity/merkle.cpp" "src/CMakeFiles/fgad.dir/integrity/merkle.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/integrity/merkle.cpp.o.d"
  "/root/repo/src/net/inmemory.cpp" "src/CMakeFiles/fgad.dir/net/inmemory.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/net/inmemory.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/CMakeFiles/fgad.dir/net/tcp.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/net/tcp.cpp.o.d"
  "/root/repo/src/net/transport.cpp" "src/CMakeFiles/fgad.dir/net/transport.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/net/transport.cpp.o.d"
  "/root/repo/src/proto/messages.cpp" "src/CMakeFiles/fgad.dir/proto/messages.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/proto/messages.cpp.o.d"
  "/root/repo/src/proto/wire.cpp" "src/CMakeFiles/fgad.dir/proto/wire.cpp.o" "gcc" "src/CMakeFiles/fgad.dir/proto/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
