file(REMOVE_RECURSE
  "CMakeFiles/mail_archive.dir/mail_archive.cpp.o"
  "CMakeFiles/mail_archive.dir/mail_archive.cpp.o.d"
  "mail_archive"
  "mail_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mail_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
