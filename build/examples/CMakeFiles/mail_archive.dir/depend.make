# Empty dependencies file for mail_archive.
# This may be replaced when dependencies are built.
