file(REMOVE_RECURSE
  "CMakeFiles/audited_vault.dir/audited_vault.cpp.o"
  "CMakeFiles/audited_vault.dir/audited_vault.cpp.o.d"
  "audited_vault"
  "audited_vault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audited_vault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
