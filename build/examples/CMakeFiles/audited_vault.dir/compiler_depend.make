# Empty compiler generated dependencies file for audited_vault.
# This may be replaced when dependencies are built.
