# Empty compiler generated dependencies file for employee_roster.
# This may be replaced when dependencies are built.
