# Empty dependencies file for employee_roster.
# This may be replaced when dependencies are built.
