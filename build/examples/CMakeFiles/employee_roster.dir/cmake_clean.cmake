file(REMOVE_RECURSE
  "CMakeFiles/employee_roster.dir/employee_roster.cpp.o"
  "CMakeFiles/employee_roster.dir/employee_roster.cpp.o.d"
  "employee_roster"
  "employee_roster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/employee_roster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
