file(REMOVE_RECURSE
  "CMakeFiles/fig6_comp_overhead.dir/bench/fig6_comp_overhead.cpp.o"
  "CMakeFiles/fig6_comp_overhead.dir/bench/fig6_comp_overhead.cpp.o.d"
  "bench/fig6_comp_overhead"
  "bench/fig6_comp_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_comp_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
