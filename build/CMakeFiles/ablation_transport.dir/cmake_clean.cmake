file(REMOVE_RECURSE
  "CMakeFiles/ablation_transport.dir/bench/ablation_transport.cpp.o"
  "CMakeFiles/ablation_transport.dir/bench/ablation_transport.cpp.o.d"
  "bench/ablation_transport"
  "bench/ablation_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
