file(REMOVE_RECURSE
  "CMakeFiles/ablation_integrity.dir/bench/ablation_integrity.cpp.o"
  "CMakeFiles/ablation_integrity.dir/bench/ablation_integrity.cpp.o.d"
  "bench/ablation_integrity"
  "bench/ablation_integrity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_integrity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
