# Empty dependencies file for ablation_integrity.
# This may be replaced when dependencies are built.
