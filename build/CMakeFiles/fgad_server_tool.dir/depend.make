# Empty dependencies file for fgad_server_tool.
# This may be replaced when dependencies are built.
