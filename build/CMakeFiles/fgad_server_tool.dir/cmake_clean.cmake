file(REMOVE_RECURSE
  "CMakeFiles/fgad_server_tool.dir/tools/fgad_server.cpp.o"
  "CMakeFiles/fgad_server_tool.dir/tools/fgad_server.cpp.o.d"
  "tools/fgad_server"
  "tools/fgad_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgad_server_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
