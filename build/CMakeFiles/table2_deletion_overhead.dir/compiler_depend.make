# Empty compiler generated dependencies file for table2_deletion_overhead.
# This may be replaced when dependencies are built.
