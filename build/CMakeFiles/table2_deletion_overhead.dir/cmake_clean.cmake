file(REMOVE_RECURSE
  "CMakeFiles/table2_deletion_overhead.dir/bench/table2_deletion_overhead.cpp.o"
  "CMakeFiles/table2_deletion_overhead.dir/bench/table2_deletion_overhead.cpp.o.d"
  "bench/table2_deletion_overhead"
  "bench/table2_deletion_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_deletion_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
