file(REMOVE_RECURSE
  "CMakeFiles/fgad_cli.dir/tools/fgad_cli.cpp.o"
  "CMakeFiles/fgad_cli.dir/tools/fgad_cli.cpp.o.d"
  "tools/fgad"
  "tools/fgad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fgad_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
