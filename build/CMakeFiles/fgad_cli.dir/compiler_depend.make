# Empty compiler generated dependencies file for fgad_cli.
# This may be replaced when dependencies are built.
