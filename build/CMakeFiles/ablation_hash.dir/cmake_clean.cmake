file(REMOVE_RECURSE
  "CMakeFiles/ablation_hash.dir/bench/ablation_hash.cpp.o"
  "CMakeFiles/ablation_hash.dir/bench/ablation_hash.cpp.o.d"
  "bench/ablation_hash"
  "bench/ablation_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
