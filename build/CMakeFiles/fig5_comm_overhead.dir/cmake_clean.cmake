file(REMOVE_RECURSE
  "CMakeFiles/fig5_comm_overhead.dir/bench/fig5_comm_overhead.cpp.o"
  "CMakeFiles/fig5_comm_overhead.dir/bench/fig5_comm_overhead.cpp.o.d"
  "bench/fig5_comm_overhead"
  "bench/fig5_comm_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_comm_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
