file(REMOVE_RECURSE
  "CMakeFiles/ablation_two_level.dir/bench/ablation_two_level.cpp.o"
  "CMakeFiles/ablation_two_level.dir/bench/ablation_two_level.cpp.o.d"
  "bench/ablation_two_level"
  "bench/ablation_two_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_two_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
