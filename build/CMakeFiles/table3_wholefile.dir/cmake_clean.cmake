file(REMOVE_RECURSE
  "CMakeFiles/table3_wholefile.dir/bench/table3_wholefile.cpp.o"
  "CMakeFiles/table3_wholefile.dir/bench/table3_wholefile.cpp.o.d"
  "bench/table3_wholefile"
  "bench/table3_wholefile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_wholefile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
