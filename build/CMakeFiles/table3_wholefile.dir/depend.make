# Empty dependencies file for table3_wholefile.
# This may be replaced when dependencies are built.
