// Span propagation over the V2 tagged envelope, clock-offset estimation,
// and cross-process trace stitching (DESIGN.md §19).
//
// Three layers under test:
//   * wire — seal_tagged_v2 / open_tagged roundtrips, and the backward-
//     compatibility guarantee: untagged and V1-tagged frames are
//     byte-identical to the pre-§19 protocol;
//   * math — the NTP-style midpoint offset estimate and the stitched
//     timestamp rewrite, against hand-computed fixtures;
//   * system — an in-process client / primary / backup trio where one
//     traced deletion produces correlated span segments on all three
//     parties under a single request id.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "cloud/recovery.h"
#include "cloud/replica.h"
#include "net/transport.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/stitch.h"
#include "obs/trace.h"
#include "proto/messages.h"

namespace fgad {
namespace {

using client::Client;

// ---- wire: envelope compatibility ------------------------------------------

Bytes inner_frame() {
  proto::StatReq req;
  req.file_id = 7;
  return req.to_frame();
}

TEST(TraceProp, UntaggedFramesAreNotTagged) {
  const Bytes frame = inner_frame();
  EXPECT_FALSE(proto::open_tagged(frame).has_value());
  EXPECT_FALSE(proto::split_tagged(frame).has_value());
  ASSERT_TRUE(proto::peek_type(frame).has_value());
  EXPECT_EQ(*proto::peek_type(frame), proto::MsgType::kStatReq);
}

TEST(TraceProp, V1EnvelopeLayoutUnchanged) {
  // The pre-§19 envelope: exactly u16 tag + u64 rid prepended. Nothing
  // about the V2 extension may change these bytes.
  const Bytes frame = inner_frame();
  const Bytes tagged = proto::seal_tagged(0x1122334455667788ull, frame);
  ASSERT_EQ(tagged.size(), frame.size() + 10);
  EXPECT_TRUE(std::equal(frame.begin(), frame.end(), tagged.begin() + 10));

  const auto tag = proto::open_tagged(tagged);
  ASSERT_TRUE(tag.has_value());
  EXPECT_EQ(tag->request_id, 0x1122334455667788ull);
  EXPECT_FALSE(tag->v2);
  EXPECT_EQ(tag->span_id, 0u);
  EXPECT_EQ(tag->parent_span_id, 0u);
  EXPECT_TRUE(tag->timings.empty());
  EXPECT_EQ(tag->inner.size(), frame.size());
}

TEST(TraceProp, V2SealOpenRoundtrip) {
  const Bytes frame = inner_frame();
  std::vector<proto::TimingEntry> timings;
  timings.push_back({1, 1111});
  timings.push_back({4, 444444});
  const Bytes tagged =
      proto::seal_tagged_v2(0xAAu, 0xBBu, 0xCCu, timings, frame);

  const auto tag = proto::open_tagged(tagged);
  ASSERT_TRUE(tag.has_value());
  EXPECT_TRUE(tag->v2);
  EXPECT_EQ(tag->request_id, 0xAAu);
  EXPECT_EQ(tag->span_id, 0xBBu);
  EXPECT_EQ(tag->parent_span_id, 0xCCu);
  ASSERT_EQ(tag->timings.size(), 2u);
  EXPECT_EQ(tag->timings[0].kind, 1);
  EXPECT_EQ(tag->timings[0].ns, 1111u);
  EXPECT_EQ(tag->timings[1].kind, 4);
  EXPECT_EQ(tag->timings[1].ns, 444444u);
  ASSERT_EQ(tag->inner.size(), frame.size());
  EXPECT_TRUE(std::equal(frame.begin(), frame.end(), tag->inner.begin()));

  // split_tagged and peek_type look through both envelope versions.
  const auto split = proto::split_tagged(tagged);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->first, 0xAAu);
  EXPECT_EQ(split->second.size(), frame.size());
  ASSERT_TRUE(proto::peek_type(tagged).has_value());
  EXPECT_EQ(*proto::peek_type(tagged), proto::MsgType::kStatReq);
}

TEST(TraceProp, V2RejectsTruncatedAndOverrunningFrames) {
  const Bytes tagged =
      proto::seal_tagged_v2(1, 2, 3, {{1, 10}, {2, 20}}, inner_frame());
  // Every truncation of the header region must be rejected, not read
  // out of bounds.
  for (std::size_t len = 0; len < 29; ++len) {
    EXPECT_FALSE(
        proto::open_tagged(BytesView(tagged.data(), len)).has_value())
        << "len=" << len;
  }
  // A timing count that overruns the frame is rejected.
  Bytes corrupt = tagged;
  corrupt[26] = 0xFF;  // n_timing byte
  EXPECT_FALSE(proto::open_tagged(corrupt).has_value());
}

// ---- math: offset estimation -----------------------------------------------

TEST(TraceProp, OffsetFromSampleIsMidpointEstimate) {
  // Hand-computed: request sent at 1000, answered with peer clock 5000,
  // received at 2000. Midpoint 1500, so offset = 5000 - 1500 = 3500.
  obs::ClockSample s;
  s.local_send_ns = 1000;
  s.peer_ns = 5000;
  s.local_recv_ns = 2000;
  EXPECT_EQ(obs::offset_from_sample(s), 3500);

  // A peer clock far *behind* the local clock gives a negative offset:
  // sent 10000, peer 400, received 11000 -> 400 - 10500 = -10100.
  s.local_send_ns = 10000;
  s.peer_ns = 400;
  s.local_recv_ns = 11000;
  EXPECT_EQ(obs::offset_from_sample(s), -10100);
}

TEST(TraceProp, BestOffsetPrefersMinimumRtt) {
  std::vector<obs::ClockSample> samples;
  samples.push_back({1000, 9000, 9000});  // rtt 8000, offset 4000
  samples.push_back({1000, 6000, 3000});  // rtt 2000, offset 4000
  samples.push_back({1000, 7000, 5000});  // rtt 4000, offset 4000
  const auto est = obs::best_offset(samples);
  ASSERT_TRUE(est.valid);
  EXPECT_EQ(est.rtt_ns, 2000u);
  EXPECT_EQ(est.offset_ns, 4000);
}

TEST(TraceProp, BestOffsetDiscardsNonCausalSamples) {
  std::vector<obs::ClockSample> samples;
  samples.push_back({5000, 1, 4000});  // recv before send: clock bug
  EXPECT_FALSE(obs::best_offset(samples).valid);
  EXPECT_FALSE(obs::best_offset({}).valid);

  samples.push_back({5000, 9000, 6000});
  const auto est = obs::best_offset(samples);
  ASSERT_TRUE(est.valid);
  EXPECT_EQ(est.offset_ns, 9000 - 5500);
}

// ---- math: stitching -------------------------------------------------------

/// A minimal but well-formed trace document in the renderer's shape.
std::string doc_with(std::uint64_t t0_ns, double ts_us, int pid,
                     const char* name) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"displayTimeUnit\":\"ms\",\"meta\":{\"rid\":\"%016x\","
      "\"t0_ns\":%llu,\"proc\":\"test\"},\"traceEvents\":["
      "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":1.000,"
      "\"pid\":%d,\"tid\":1}]}",
      1, static_cast<unsigned long long>(t0_ns), name, ts_us, pid);
  return buf;
}

TEST(TraceProp, StitchDocT0Parses) {
  EXPECT_EQ(obs::trace_doc_t0_ns(doc_with(123456789, 0, 1, "a")),
            123456789u);
  EXPECT_EQ(obs::trace_doc_t0_ns("{}"), 0u);
}

TEST(TraceProp, StitchRewritesPeerTimestampsAndPid) {
  // Base trace began at absolute local time 1'000'000 ns. The peer's
  // trace began at peer-absolute 2'000'000 ns, and the peer clock runs
  // 500'000 ns ahead of ours. A peer event at ts=100 µs therefore
  // happened at local-absolute 2'000'000 + 100'000 - 500'000 ns
  // = 1'600'000 ns, i.e. ts=600 µs in the base timeline.
  const std::string base = doc_with(1'000'000, 10.0, 1, "local_span");
  const std::string peer = doc_with(2'000'000, 100.0, 1, "peer_span");
  const std::string merged =
      obs::trace_stitch(base, peer, /*offset_ns=*/500'000, /*pid_delta=*/1);

  // Both events present; the local one untouched.
  EXPECT_NE(merged.find("local_span"), std::string::npos);
  EXPECT_NE(merged.find("\"ts\":10.000"), std::string::npos);
  // The peer event lands at 600 µs on pid lane 2.
  const std::size_t peer_pos = merged.find("peer_span");
  ASSERT_NE(peer_pos, std::string::npos);
  const std::string peer_part = merged.substr(peer_pos);
  EXPECT_NE(peer_part.find("\"ts\":600.000"), std::string::npos);
  EXPECT_NE(peer_part.find("\"pid\":2"), std::string::npos);
  // The merged document keeps the base meta (one t0 per document).
  EXPECT_EQ(obs::trace_doc_t0_ns(merged), 1'000'000u);
}

TEST(TraceProp, StitchPreservesCausalOrderAcrossSkew) {
  // Whatever the skew, events that happened in a causal request order
  // (peer handled the RPC *inside* the client's send/recv window) must
  // render in that order after correction. Client span 100..300 µs;
  // peer handled it 50 µs after the client sent, on a clock 2 ms ahead.
  const std::uint64_t base_t0 = 5'000'000;
  const std::int64_t offset = 2'000'000;  // peer ahead 2 ms
  // Peer trace began when the client was at 150 µs into its trace:
  // peer_t0 = base_t0 + 150'000 + offset.
  const std::uint64_t peer_t0 = base_t0 + 150'000 + offset;
  const std::string base = doc_with(base_t0, 100.0, 1, "client_rpc");
  const std::string peer = doc_with(peer_t0, 0.0, 1, "server_handle");
  const std::string merged = obs::trace_stitch(base, peer, offset, 1);
  const std::size_t pos = merged.find("server_handle");
  ASSERT_NE(pos, std::string::npos);
  // ts_local = (peer_t0 + 0 - offset - base_t0) / 1e3 = 150 µs — inside
  // the client RPC span, after its start.
  EXPECT_NE(merged.substr(pos).find("\"ts\":150.000"), std::string::npos);
}

TEST(TraceProp, StitchLeavesBaseAloneOnGarbagePeer) {
  const std::string base = doc_with(1000, 1.0, 1, "keep_me");
  EXPECT_EQ(obs::trace_stitch(base, "not json at all", 0, 1), base);
  EXPECT_EQ(obs::trace_stitch(base, "", 0, 1), base);
}

// ---- TraceStore eviction forensics -----------------------------------------

TEST(TraceProp, EvictionRecordsSpanDroppedEvent) {
  obs::FlightRecorder& fr = obs::FlightRecorder::instance();
  fr.configure(64);
  obs::Counter& dropped =
      obs::Registry::instance().counter("fgad_trace_dropped_total");
  const std::uint64_t dropped_before = dropped.value();

  obs::TraceStore& store = obs::TraceStore::instance();
  store.set_capacity(2);
  store.put(0x1001, "{\"traceEvents\":[]}");
  store.put(0x1002, "{\"traceEvents\":[]}");
  store.put(0x1003, "{\"traceEvents\":[]}");  // evicts 0x1001

  EXPECT_EQ(store.get(0x1001), "");
  EXPECT_NE(store.get(0x1003), "");
  EXPECT_EQ(store.rids().size(), 2u);
  EXPECT_EQ(dropped.value(), dropped_before + 1);

  bool saw_drop = false;
  for (const auto& e : fr.snapshot()) {
    if (e.type == obs::FrEvent::kSpanDropped && e.rid == 0x1001) {
      saw_drop = true;
    }
  }
  EXPECT_TRUE(saw_drop);
  store.set_capacity(0);
}

// ---- system: client / primary / backup correlation -------------------------

std::string fresh_state_dir(const std::string& name) {
  static std::atomic<int> counter{0};
  const std::string d = ::testing::TempDir() + "/" + name + "." +
                        std::to_string(::getpid()) + "." +
                        std::to_string(counter.fetch_add(1));
  ::mkdir(d.c_str(), 0755);
  return d;
}

TEST(TraceProp, TrioCorrelatesOneRidAcrossAllParties) {
  using cloud::DurableServer;
  using cloud::ReplAckMode;
  using cloud::Replicator;
  using cloud::ReplRole;

  DurableServer::Options popts;
  popts.dir = fresh_state_dir("traceprop_primary");
  popts.role = ReplRole::kPrimary;
  auto p = DurableServer::open(popts);
  ASSERT_TRUE(p.is_ok()) << p.status().to_string();
  auto primary = std::move(p).value();

  DurableServer::Options bopts;
  bopts.dir = fresh_state_dir("traceprop_backup");
  bopts.role = ReplRole::kBackup;
  auto b = DurableServer::open(bopts);
  ASSERT_TRUE(b.is_ok()) << b.status().to_string();
  auto backup = std::move(b).value();

  // Async ship mode: records reach the backup on the replicator's ship
  // thread. (Sync mode would let wait_acked donate the *client's* thread
  // as the shipper — an in-process-only situation where the backup's
  // handler would see the client's active trace; a real backup is its
  // own process.)
  Replicator::Options ropts;
  ropts.mode = ReplAckMode::kAsync;
  ropts.heartbeat_ms = 50;
  auto repl = std::make_shared<Replicator>(
      [&backup]() -> Result<std::unique_ptr<net::RpcChannel>> {
        return std::unique_ptr<net::RpcChannel>(new net::DirectChannel(
            [&backup](BytesView req) { return backup->handle(req); }));
      },
      ropts);
  primary->attach_replicator(repl, ropts.mode);

  // The backup applies shipped records on the replicator's ship thread,
  // where no client trace is active — exactly like a separate process —
  // so its capture lands in the TraceStore keyed by the wire-carried rid.
  obs::TraceStore& store = obs::TraceStore::instance();
  store.set_capacity(16);

  net::DirectChannel ch(
      [&primary](BytesView req) { return primary->handle(req); });
  crypto::DeterministicRandom rnd{99};
  Client::Options copts;
  copts.tag_mutations = true;
  Client client(ch, rnd, copts);

  auto fh = client.outsource(3, 8, [](std::size_t i) {
    return Bytes(16, static_cast<std::uint8_t>(i));
  });
  ASSERT_TRUE(fh.is_ok()) << fh.status().to_string();
  auto ids = client.list_items(fh.value());
  ASSERT_TRUE(ids.is_ok());
  ASSERT_FALSE(ids.value().empty());

  // One traced user operation = one rid: the dedup table treats a second
  // mutating RPC under the same rid as a resend, so (like fgad --trace)
  // the trace covers exactly one deletion.
  const std::uint64_t rid = obs::generate_request_id();
  obs::trace_begin(rid);
  ASSERT_TRUE(client.erase_item(fh.value(),
                                proto::ItemRef::id(ids.value().front())));

  // Client-side document: the whole traced operation, with the primary's
  // spans (same thread through the DirectChannel) nested inline.
  const std::string client_doc = obs::trace_render_chrome_json();
  EXPECT_NE(client_doc.find("wal_append"), std::string::npos);
  EXPECT_NE(client_doc.find("fsync"), std::string::npos);

  // Backup-side segment: captured under the same rid, containing the
  // repl_apply span, once the ship thread has delivered the record.
  std::string backup_doc;
  for (int waited = 0; waited < 5000 && backup_doc.empty(); waited += 10) {
    backup_doc = store.get(rid);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_NE(backup_doc, "") << "backup did not capture a segment for rid";
  EXPECT_NE(backup_doc.find("repl_apply"), std::string::npos);
  EXPECT_GT(obs::trace_doc_t0_ns(backup_doc), 0u);

  // Stitched (same process, so offset 0): one document, both segments.
  const std::string merged = obs::trace_stitch(client_doc, backup_doc, 0, 1);
  EXPECT_NE(merged.find("repl_apply"), std::string::npos);
  EXPECT_NE(merged.find("wal_append"), std::string::npos);

  obs::trace_stop();
  store.set_capacity(0);
  repl->stop();
}

}  // namespace
}  // namespace fgad
