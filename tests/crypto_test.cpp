// Crypto substrate: digests, hashing (with known vectors), AES, PRF,
// secure buffers, random sources.
#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "crypto/digest.h"
#include "crypto/hasher.h"
#include "crypto/prf.h"
#include "crypto/random.h"
#include "crypto/secure_buffer.h"

namespace fgad::crypto {
namespace {

TEST(Digest, Sizes) {
  EXPECT_EQ(digest_size(HashAlg::kSha1), 20u);
  EXPECT_EQ(digest_size(HashAlg::kSha256), 32u);
  EXPECT_STREQ(hash_alg_name(HashAlg::kSha1), "SHA-1");
  EXPECT_STREQ(hash_alg_name(HashAlg::kSha256), "SHA-256");
}

TEST(Md, ConstructAndCompare) {
  const Md a(to_bytes("0123456789abcdefghij"));
  EXPECT_EQ(a.size(), 20u);
  const Md b(to_bytes("0123456789abcdefghij"));
  EXPECT_EQ(a, b);
  const Md c(to_bytes("0123456789abcdefghiX"));
  EXPECT_NE(a, c);
  EXPECT_TRUE(c < a || a < c);
}

TEST(Md, EmptyAndZero) {
  const Md empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  const Md z = Md::zero(20);
  EXPECT_EQ(z.size(), 20u);
  for (auto byte : z.bytes()) {
    EXPECT_EQ(byte, 0);
  }
  EXPECT_NE(empty, z);  // differing sizes are not equal
}

TEST(Md, XorIsInvolution) {
  DeterministicRandom rnd(1);
  const Md a = rnd.random_md(20);
  const Md b = rnd.random_md(20);
  Md x = a;
  x ^= b;
  EXPECT_NE(x, a);
  x ^= b;
  EXPECT_EQ(x, a);
}

TEST(Md, XorSizeMismatchThrows) {
  Md a = Md::zero(20);
  const Md b = Md::zero(32);
  EXPECT_THROW(a ^= b, std::invalid_argument);
}

TEST(Md, CapacityEnforced) {
  const Bytes too_big(33, 1);
  EXPECT_THROW(Md m(too_big), std::invalid_argument);
  EXPECT_THROW(Md::zero(33), std::invalid_argument);
}

TEST(Md, HasherDistinguishes) {
  DeterministicRandom rnd(2);
  Md::Hasher h;
  const Md a = rnd.random_md(20);
  const Md b = rnd.random_md(20);
  EXPECT_NE(h(a), h(b));  // overwhelmingly likely
  EXPECT_EQ(h(a), h(a));
}

TEST(Md, CleanseZeroizes) {
  Md a(to_bytes("secretsecretsecreets"));
  a.cleanse();
  for (auto byte : a.bytes()) {
    EXPECT_EQ(byte, 0);
  }
  EXPECT_EQ(a.size(), 20u);  // width preserved, contents gone
}

TEST(Hasher, Sha1KnownVector) {
  // SHA-1("abc") = a9993e364706816aba3e25717850c26c9cd0d89d
  Hasher h(HashAlg::kSha1);
  EXPECT_EQ(h.hash(to_bytes("abc")).hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Hasher, Sha256KnownVector) {
  // SHA-256("abc")
  Hasher h(HashAlg::kSha256);
  EXPECT_EQ(h.hash(to_bytes("abc")).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Hasher, EmptyInput) {
  Hasher h(HashAlg::kSha1);
  EXPECT_EQ(h.hash({}).hex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Hasher, Hash2EqualsConcatenation) {
  Hasher h(HashAlg::kSha256);
  const Bytes a = to_bytes("hello ");
  const Bytes b = to_bytes("world");
  EXPECT_EQ(h.hash2(a, b), h.hash(to_bytes("hello world")));
}

TEST(Hasher, ContextReuseIsConsistent) {
  Hasher h(HashAlg::kSha1);
  const Md first = h.hash(to_bytes("x"));
  h.hash(to_bytes("something else"));
  EXPECT_EQ(h.hash(to_bytes("x")), first);
}

TEST(Aes, EncryptDecryptRoundtrip) {
  AesCbc aes;
  std::array<std::uint8_t, kAesKeySize> key{};
  key.fill(0x42);
  const Bytes iv(kAesBlockSize, 0x07);
  for (std::size_t n : {0u, 1u, 15u, 16u, 17u, 100u, 4096u}) {
    const Bytes pt(n, 0x5a);
    const Bytes ct = aes.encrypt(key, iv, pt);
    EXPECT_EQ(ct.size(), AesCbc::ciphertext_size(n));
    auto back = aes.decrypt(key, iv, ct);
    ASSERT_TRUE(back.is_ok()) << "n=" << n;
    EXPECT_EQ(back.value(), pt);
  }
}

TEST(Aes, WrongKeyFails) {
  AesCbc aes;
  std::array<std::uint8_t, kAesKeySize> key{};
  key.fill(1);
  const Bytes iv(kAesBlockSize, 2);
  const Bytes ct = aes.encrypt(key, iv, to_bytes("some plaintext data"));
  key.fill(3);
  auto out = aes.decrypt(key, iv, ct);
  // Wrong key: either padding fails or garbage comes back; CBC guarantees
  // the *first* block is garbage, so equality would be miraculous.
  if (out.is_ok()) {
    EXPECT_NE(out.value(), to_bytes("some plaintext data"));
  }
}

TEST(Aes, TruncatedCiphertextFails) {
  AesCbc aes;
  std::array<std::uint8_t, kAesKeySize> key{};
  const Bytes iv(kAesBlockSize, 0);
  EXPECT_FALSE(aes.decrypt(key, iv, Bytes{}).is_ok());
  EXPECT_FALSE(aes.decrypt(key, iv, Bytes(15, 0)).is_ok());
}

TEST(Aes, KeyFromChainOutput) {
  DeterministicRandom rnd(3);
  const Md chain_out = rnd.random_md(20);
  const auto key = aes_key_from(chain_out);
  EXPECT_TRUE(std::equal(key.begin(), key.end(), chain_out.bytes().begin()));
  EXPECT_THROW(aes_key_from(Md::zero(8)), std::invalid_argument);
}

TEST(Prf, DeterministicPerIndex) {
  const Bytes key = to_bytes("0123456789abcdef");
  Prf prf(HashAlg::kSha1, key);
  EXPECT_EQ(prf.derive(0), prf.derive(0));
  EXPECT_NE(prf.derive(0), prf.derive(1));
  EXPECT_EQ(prf.derive(7).size(), 20u);
}

TEST(Prf, KeySeparation) {
  Prf a(HashAlg::kSha1, to_bytes("key-a-key-a-key-a"));
  Prf b(HashAlg::kSha1, to_bytes("key-b-key-b-key-b"));
  EXPECT_NE(a.derive(5), b.derive(5));
}

TEST(Prf, Sha256Width) {
  Prf prf(HashAlg::kSha256, to_bytes("k"));
  EXPECT_EQ(prf.derive(1).size(), 32u);
}

TEST(SecureBuffer, WipeClears) {
  SecureBuffer buf(to_bytes("top-secret"));
  EXPECT_EQ(buf.size(), 10u);
  buf.wipe();
  EXPECT_TRUE(buf.empty());
}

TEST(SecureBuffer, MoveTransfersAndClearsSource) {
  SecureBuffer a(to_bytes("payload"));
  SecureBuffer b = std::move(a);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(to_string(b.view()), "payload");
}

TEST(MasterKey, GenerateAndRotate) {
  DeterministicRandom rnd(4);
  MasterKey k = MasterKey::generate(rnd, 20);
  EXPECT_FALSE(k.empty());
  const Md before = k.value();
  k.rotate(rnd.random_md(20));
  EXPECT_NE(k.value(), before);
}

TEST(MasterKey, EraseWipes) {
  DeterministicRandom rnd(5);
  MasterKey k = MasterKey::generate(rnd, 20);
  k.erase();
  EXPECT_TRUE(k.empty());
}

TEST(MasterKey, MoveClearsSource) {
  DeterministicRandom rnd(6);
  MasterKey a = MasterKey::generate(rnd, 20);
  const Md v = a.value();
  MasterKey b = std::move(a);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(b.value(), v);
}

TEST(MasterKey, CloneDuplicates) {
  DeterministicRandom rnd(7);
  MasterKey a = MasterKey::generate(rnd, 20);
  MasterKey b = a.clone();
  EXPECT_EQ(a.value(), b.value());
}

TEST(Random, SystemRandomProducesEntropy) {
  SystemRandom rnd;
  const Md a = rnd.random_md(20);
  const Md b = rnd.random_md(20);
  EXPECT_NE(a, b);
  EXPECT_NE(rnd.random_u64(), rnd.random_u64());
}

TEST(Random, DeterministicRandomReproducible) {
  DeterministicRandom a(11);
  DeterministicRandom b(11);
  EXPECT_EQ(a.random_md(20), b.random_md(20));
  EXPECT_EQ(a.random_u64(), b.random_u64());
}

}  // namespace
}  // namespace fgad::crypto
