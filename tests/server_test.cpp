// CloudServer: native API, wire dispatcher, file lifecycle, kv tables.
#include <gtest/gtest.h>

#include "cloud/server.h"
#include "core/outsource.h"
#include "crypto/secure_buffer.h"
#include "support/harness.h"

namespace fgad::cloud {
namespace {

using core::Outsourcer;
using crypto::DeterministicRandom;
using crypto::HashAlg;
using crypto::MasterKey;

struct Outsourced {
  MasterKey key;
  std::uint64_t counter = 0;
};

Outsourced outsource_native(CloudServer& server, std::uint64_t file_id,
                            std::size_t n, std::uint64_t seed = 1) {
  DeterministicRandom rnd(seed);
  Outsourced out;
  out.key = MasterKey::generate(rnd, 20);
  Outsourcer builder(HashAlg::kSha1, true);
  auto built = builder.build(
      out.key, n, [](std::size_t i) { return test::payload_for(i); },
      out.counter, rnd);
  std::vector<FileStore::IngestItem> items;
  for (auto& it : built.items) {
    items.push_back(FileStore::IngestItem{it.item_id,
                                          std::move(it.ciphertext),
                                          it.plain_size});
  }
  EXPECT_TRUE(server.outsource(file_id, std::move(built.tree),
                               std::move(items)));
  return out;
}

TEST(Server, OutsourceAndStat) {
  CloudServer server;
  outsource_native(server, 1, 10);
  EXPECT_TRUE(server.has_file(1));
  EXPECT_FALSE(server.has_file(2));
  const FileStore* f = server.file(1);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->item_count(), 10u);
  EXPECT_EQ(f->tree().node_count(), 19u);
}

TEST(Server, DuplicateFileIdRejected) {
  CloudServer server;
  outsource_native(server, 1, 4);
  DeterministicRandom rnd(2);
  core::ModulationTree tree;
  EXPECT_EQ(server.outsource(1, std::move(tree), {}).code(),
            Errc::kInvalidArgument);
}

TEST(Server, AccessByIdOrdinalAndOffset) {
  CloudServer server;
  outsource_native(server, 1, 6);
  auto by_id = server.access(1, proto::ItemRef::id(3));
  ASSERT_TRUE(by_id.is_ok());
  EXPECT_EQ(by_id.value().item_id, 3u);
  auto by_ord = server.access(1, proto::ItemRef::ordinal(3));
  ASSERT_TRUE(by_ord.is_ok());
  EXPECT_EQ(by_ord.value().item_id, 3u);  // ids assigned in order
  // Byte offsets: items are 24-byte payloads, so offset 3*24+5 is item 3.
  auto by_off = server.access(1, proto::ItemRef::byte_offset(3 * 24 + 5));
  ASSERT_TRUE(by_off.is_ok());
  EXPECT_EQ(by_off.value().item_id, 3u);
  EXPECT_EQ(server.access(1, proto::ItemRef::id(77)).code(), Errc::kNotFound);
  EXPECT_EQ(server.access(1, proto::ItemRef::byte_offset(6 * 24)).code(),
            Errc::kNotFound);
  EXPECT_EQ(server.access(9, proto::ItemRef::id(0)).code(), Errc::kNotFound);
}

TEST(Server, DropFile) {
  CloudServer server;
  outsource_native(server, 5, 3);
  EXPECT_TRUE(server.drop_file(5));
  EXPECT_FALSE(server.has_file(5));
  EXPECT_EQ(server.drop_file(5).code(), Errc::kNotFound);
}

TEST(Server, FetchTreeMatchesSerializedSize) {
  CloudServer server;
  outsource_native(server, 2, 16);
  auto blob = server.fetch_tree(2);
  ASSERT_TRUE(blob.is_ok());
  EXPECT_EQ(blob.value().size(), server.file(2)->tree_bytes());
}

TEST(Server, KvTable) {
  CloudServer server;
  server.kv_put(1, 10, to_bytes("ten"));
  server.kv_put(1, 20, to_bytes("twenty"));
  server.kv_put(2, 10, to_bytes("other-table"));
  EXPECT_EQ(to_string(server.kv_get(1, 10).value()), "ten");
  EXPECT_EQ(to_string(server.kv_get(2, 10).value()), "other-table");
  EXPECT_EQ(server.kv_get(1, 30).code(), Errc::kNotFound);
  EXPECT_EQ(server.kv_size(1), 2u);
  EXPECT_TRUE(server.kv_delete(1, 10));
  EXPECT_EQ(server.kv_size(1), 1u);
  EXPECT_EQ(server.kv_delete(1, 10).code(), Errc::kNotFound);
}

// Wire dispatcher: a full access through framed messages.
TEST(ServerWire, AccessRoundtrip) {
  CloudServer server;
  outsource_native(server, 1, 5);
  proto::AccessReq req;
  req.file_id = 1;
  req.ref = proto::ItemRef::id(2);
  const Bytes resp = server.handle(req.to_frame());
  auto env = proto::open_message(resp);
  ASSERT_TRUE(env.is_ok());
  ASSERT_EQ(env.value().type, proto::MsgType::kAccessResp);
  proto::Reader r(env.value().payload);
  auto access = proto::AccessResp::from(r);
  ASSERT_TRUE(access.is_ok());
  EXPECT_EQ(access.value().info.item_id, 2u);
  EXPECT_TRUE(access.value().info.path.well_formed());
}

TEST(ServerWire, ErrorsAreFramed) {
  CloudServer server;
  proto::AccessReq req;
  req.file_id = 42;  // no such file
  req.ref = proto::ItemRef::id(0);
  const Bytes resp = server.handle(req.to_frame());
  auto env = proto::open_message(resp);
  ASSERT_TRUE(env.is_ok());
  ASSERT_EQ(env.value().type, proto::MsgType::kError);
  proto::Reader r(env.value().payload);
  auto err = proto::ErrorMsg::from(r);
  ASSERT_TRUE(err.is_ok());
  EXPECT_EQ(err.value().code, Errc::kNotFound);
}

TEST(ServerWire, GarbageRequestRejected) {
  CloudServer server;
  auto env = proto::open_message(server.handle(Bytes{0x01}));
  ASSERT_TRUE(env.is_ok());
  EXPECT_EQ(env.value().type, proto::MsgType::kError);
}

TEST(ServerWire, UnknownTypeRejected) {
  CloudServer server;
  const Bytes frame = proto::seal_message(static_cast<proto::MsgType>(999),
                                          to_bytes("x"));
  auto env = proto::open_message(server.handle(frame));
  ASSERT_TRUE(env.is_ok());
  EXPECT_EQ(env.value().type, proto::MsgType::kError);
}

TEST(ServerWire, TruncatedPayloadRejected) {
  CloudServer server;
  outsource_native(server, 1, 4);
  proto::AccessReq req;
  req.file_id = 1;
  req.ref = proto::ItemRef::id(1);
  Bytes frame = req.to_frame();
  frame.resize(frame.size() - 3);
  auto env = proto::open_message(server.handle(frame));
  ASSERT_TRUE(env.is_ok());
  EXPECT_EQ(env.value().type, proto::MsgType::kError);
}

TEST(ServerWire, KvThroughDispatcher) {
  CloudServer server;
  proto::KvPutReq put;
  put.table = 7;
  put.key = 1;
  put.value = to_bytes("v");
  auto env = proto::open_message(server.handle(put.to_frame()));
  ASSERT_EQ(env.value().type, proto::MsgType::kKvPutResp);

  proto::KvGetReq get;
  get.table = 7;
  get.key = 1;
  env = proto::open_message(server.handle(get.to_frame()));
  ASSERT_EQ(env.value().type, proto::MsgType::kKvGetResp);
  proto::Reader r(env.value().payload);
  auto resp = proto::KvGetResp::from(r);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_TRUE(resp.value().found);
  EXPECT_EQ(to_string(resp.value().value), "v");
}

TEST(ServerWire, ListItems) {
  CloudServer server;
  outsource_native(server, 1, 4);
  proto::ListItemsReq req;
  req.file_id = 1;
  auto env = proto::open_message(server.handle(req.to_frame()));
  ASSERT_EQ(env.value().type, proto::MsgType::kListItemsResp);
  proto::Reader r(env.value().payload);
  auto resp = proto::ListItemsResp::from(r);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp.value().ids, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(ServerWire, StatThroughDispatcher) {
  CloudServer server;
  outsource_native(server, 3, 8);
  proto::StatReq req;
  req.file_id = 3;
  auto env = proto::open_message(server.handle(req.to_frame()));
  ASSERT_EQ(env.value().type, proto::MsgType::kStatResp);
  proto::Reader r(env.value().payload);
  auto resp = proto::StatResp::from(r);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp.value().n_items, 8u);
  EXPECT_EQ(resp.value().node_count, 15u);
  EXPECT_GT(resp.value().tree_bytes, 0u);
}

}  // namespace
}  // namespace fgad::cloud
