// Randomized tamper fuzzing of the deletion exchange.
//
// Theorem 2's guarantee, as a fuzzable invariant: whatever a malicious
// server does to the DeleteInfo response, either (a) the client rejects and
// the file is untouched, or (b) the deletion commits — and then the deleted
// item is unrecoverable from the post-deletion server state plus the
// post-deletion master key. Corrupting *other* items' availability is
// explicitly allowed by the threat model (a hostile server can always erase
// data); leaking the deleted item is not.
#include <gtest/gtest.h>

#include "client/client.h"
#include "cloud/server.h"
#include "support/harness.h"

namespace fgad {
namespace {

using client::Client;
using cloud::CloudServer;
using crypto::Md;
using crypto::SystemRandom;
using test::payload_for;

// Applies one random single-point mutation to a DeleteInfo.
void mutate(core::DeleteInfo& info, Xoshiro256& rng) {
  const auto flip_md = [&](Md& m) {
    if (m.size() == 0) return;
    m.mutable_bytes()[rng.next_below(m.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
  };
  switch (rng.next_below(12)) {
    case 0:
      if (!info.path.links.empty()) {
        flip_md(info.path.links[rng.next_below(info.path.links.size())]);
      }
      break;
    case 1:
      flip_md(info.leaf_mod);
      break;
    case 2:
      if (!info.cut.empty()) {
        flip_md(info.cut[rng.next_below(info.cut.size())].link);
      }
      break;
    case 3:
      if (!info.cut.empty()) {
        auto& e = info.cut[rng.next_below(info.cut.size())];
        if (e.is_leaf) flip_md(e.leaf_mod);
      }
      break;
    case 4:
      if (info.has_balance && !info.t_path.links.empty()) {
        flip_md(info.t_path.links[rng.next_below(info.t_path.links.size())]);
      }
      break;
    case 5:
      if (info.has_balance) flip_md(info.t_leaf_mod);
      break;
    case 6:
      if (info.has_balance) flip_md(info.s_link);
      break;
    case 7:
      if (info.has_balance) flip_md(info.s_leaf_mod);
      break;
    case 8:
      if (!info.ciphertext.empty()) {
        info.ciphertext[rng.next_below(info.ciphertext.size())] ^= 0x20;
      }
      break;
    case 9:
      info.item_id ^= 1 + rng.next_below(1000);
      break;
    case 10:
      if (info.path.nodes.size() > 1) {
        info.path.nodes[rng.next_below(info.path.nodes.size())] += 1;
      }
      break;
    case 11:
      if (!info.cut.empty()) {
        info.cut[rng.next_below(info.cut.size())].node += 1;
      }
      break;
  }
}

// Tries to recover `victim_ct` with every key derivable from the CURRENT
// server tree under `master` (the strongest post-compromise adversary).
bool recoverable(const CloudServer& server, const core::ClientMath& math,
                 const core::ItemCodec& codec, const Md& master,
                 const Bytes& victim_ct) {
  const auto* file = server.file(1);
  if (file == nullptr) return false;
  const auto& tree = file->tree();
  for (core::NodeId v = 0; v < tree.node_count(); ++v) {
    if (!tree.is_leaf(v)) continue;
    const Md key = math.derive_key(master, tree.path_to(v), tree.leaf_mod(v));
    if (codec.open(key, victim_ct).is_ok()) {
      return true;
    }
  }
  return false;
}

class TamperFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TamperFuzz, DeletedItemNeverRecoverable) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);

  for (int round = 0; round < 40; ++round) {
    CloudServer server{
        cloud::CloudServer::Options{/*track_duplicates=*/false,
                                    /*enable_integrity=*/false}};
    net::DirectChannel channel(
        [&server](BytesView req) { return server.handle(req); });
    SystemRandom rnd;
    Client client(channel, rnd);

    const std::size_t n = 2 + rng.next_below(20);
    auto fh = client.outsource(
        1, n, [](std::size_t i) { return payload_for(i); });
    ASSERT_TRUE(fh.is_ok());

    const std::uint64_t victim = rng.next_below(n);
    Bytes victim_ct;
    {
      const auto* file = server.file(1);
      victim_ct = file->items().at(*file->items().find(victim)).ciphertext;
    }

    bool tampered = false;
    server.tamper_delete_info = [&](core::DeleteInfo& info) {
      tampered = true;
      mutate(info, rng);
    };
    const Status st = client.erase_item(fh.value(), proto::ItemRef::id(victim));
    server.tamper_delete_info = nullptr;
    ASSERT_TRUE(tampered);

    if (st.is_ok()) {
      // (b) The deletion committed despite the tampering (e.g. the mutation
      // hit an unused field): the deleted item must be dead.
      EXPECT_FALSE(recoverable(server, client.math(), client.codec(),
                               fh.value().key.value(), victim_ct))
          << "seed " << seed << " round " << round;
    } else {
      // (a) Rejected: nothing changed; every item is still readable.
      for (std::uint64_t i = 0; i < n; ++i) {
        EXPECT_TRUE(client.access(fh.value(), proto::ItemRef::id(i)).is_ok())
            << "seed " << seed << " round " << round << " item " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TamperFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Byte-offset addressing end to end: delete the record covering a given
// plaintext offset (the paper's "byte offset in the file" indexing).
TEST(ByteOffsetIntegration, DeleteByOffset) {
  CloudServer server;
  net::DirectChannel channel(
      [&server](BytesView req) { return server.handle(req); });
  SystemRandom rnd;
  Client client(channel, rnd);

  // Variable-size records: 10, 20, 30, 40 bytes.
  std::vector<Bytes> items;
  for (std::size_t i = 1; i <= 4; ++i) {
    items.push_back(Bytes(i * 10, static_cast<std::uint8_t>(i)));
  }
  auto fh = client.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());

  // Offset 35 lands inside record 2 (bytes [30, 60)).
  auto got = client.access(fh.value(), proto::ItemRef::byte_offset(35));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().size(), 30u);

  ASSERT_TRUE(
      client.erase_item(fh.value(), proto::ItemRef::byte_offset(35)));
  // Offsets re-pack: [30, 70) is now record 3 (40 bytes).
  got = client.access(fh.value(), proto::ItemRef::byte_offset(35));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().size(), 40u);
  // Total addressable range shrank by 30.
  EXPECT_FALSE(
      client.access(fh.value(), proto::ItemRef::byte_offset(70)).is_ok());
}

}  // namespace
}  // namespace fgad
