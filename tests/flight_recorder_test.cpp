// Flight recorder (DESIGN.md §14): ring accounting across wraparound,
// lock-free concurrent writers, the signal-safe dump format, and the
// acceptance-criterion forensics path — a crash-point firing mid-mutation
// leaves a parseable dump whose tail names the in-flight request (rid)
// and the WAL LSN it had just made durable. Both crash flavors are
// covered: the throw-based harness and the fgad_server-style _exit(42).
#include <gtest/gtest.h>

#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cloud/recovery.h"
#include "cloud/wal.h"
#include "obs/flight_recorder.h"
#include "obs/http.h"
#include "obs/metrics.h"
#include "proto/messages.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FGAD_TSAN 1
#endif
#endif
#if !defined(FGAD_TSAN) && defined(__SANITIZE_THREAD__)
#define FGAD_TSAN 1
#endif

namespace fgad {
namespace {

using obs::FlightRecorder;
using obs::FrEvent;

std::string fresh_dir(const std::string& name) {
  static std::atomic<int> counter{0};
  const std::string d = ::testing::TempDir() + "/" + name + "." +
                        std::to_string(::getpid()) + "." +
                        std::to_string(counter.fetch_add(1));
  ::mkdir(d.c_str(), 0755);
  return d;
}

std::string rid_hex(std::uint64_t rid) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, rid);
  return buf;
}

/// Files in `dir` whose names start with `prefix`, sorted.
std::vector<std::string> dir_matches(const std::string& dir,
                                     const std::string& prefix) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return out;
  }
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.compare(0, prefix.size(), prefix) == 0) {
      out.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string text;
  if (f != nullptr) {
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, n);
    }
    std::fclose(f);
  }
  return text;
}

/// One parsed `key=value ...` dump line.
using DumpLine = std::map<std::string, std::string>;

/// Parses a dump into (header-comment count, event lines). Every
/// non-comment line must tokenize as key=value fields.
std::vector<DumpLine> parse_dump(const std::string& text,
                                 std::string* header = nullptr) {
  std::vector<DumpLine> events;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      if (header != nullptr && header->empty()) {
        *header = line;
      }
      continue;
    }
    DumpLine fields;
    std::size_t tok = 0;
    while (tok < line.size()) {
      std::size_t sp = line.find(' ', tok);
      if (sp == std::string::npos) {
        sp = line.size();
      }
      const std::string kv = line.substr(tok, sp - tok);
      tok = sp + 1;
      if (kv.empty()) {
        continue;
      }
      const std::size_t eq = kv.find('=');
      EXPECT_NE(eq, std::string::npos) << "bad token: " << kv;
      if (eq != std::string::npos) {
        fields[kv.substr(0, eq)] = kv.substr(eq + 1);
      }
    }
    events.push_back(std::move(fields));
  }
  return events;
}

TEST(FlightRecorder, ConfigureRoundsUpToPowerOfTwo) {
  auto& fr = FlightRecorder::instance();
  fr.configure(10);
  EXPECT_EQ(fr.capacity(), 16u);
  fr.configure(1);
  EXPECT_EQ(fr.capacity(), 8u);  // floor
  fr.configure(64);
  EXPECT_EQ(fr.capacity(), 64u);
  EXPECT_EQ(fr.recorded(), 0u);
  EXPECT_EQ(fr.dropped(), 0u);
}

TEST(FlightRecorder, WraparoundKeepsNewestAndCountsDropped) {
  auto& fr = FlightRecorder::instance();
  fr.configure(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    fr.record(FrEvent::kMark, /*rid=*/i, /*a=*/i * 10, /*b=*/i * 100);
  }
  EXPECT_EQ(fr.recorded(), 20u);
  EXPECT_EQ(fr.dropped(), 12u);

  const auto events = fr.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest first, and only the newest 8 survive.
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::uint64_t want = 12 + i;
    EXPECT_EQ(events[i].seq, want);
    EXPECT_EQ(events[i].rid, want);
    EXPECT_EQ(events[i].a, want * 10);
    EXPECT_EQ(events[i].b, want * 100);
    EXPECT_EQ(events[i].type, FrEvent::kMark);
    if (i > 0) {
      EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
    }
  }
}

TEST(FlightRecorder, DumpFileIsParseable) {
  auto& fr = FlightRecorder::instance();
  fr.configure(16);
  fr.record(FrEvent::kWalAppend, 0xABCDEF0123456789ull, /*a=*/17, /*b=*/96);
  fr.record(FrEvent::kCheckpointCommit, 0, /*a=*/3, /*b=*/4096);

  const std::string path = fresh_dir("fr_dump") + "/manual.dump";
  ASSERT_TRUE(fr.dump_to_path(path.c_str(), "test"));

  std::string header;
  const auto lines = parse_dump(slurp(path), &header);
  EXPECT_NE(header.find("fgad-flight-recorder v1"), std::string::npos);
  EXPECT_NE(header.find("reason=test"), std::string::npos);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].at("type"), "wal-append");
  EXPECT_EQ(lines[0].at("rid"), "abcdef0123456789");
  EXPECT_EQ(lines[0].at("a"), "17");
  EXPECT_EQ(lines[0].at("b"), "96");
  EXPECT_EQ(lines[1].at("type"), "checkpoint-commit");
  EXPECT_EQ(lines[1].at("a"), "3");
}

TEST(FlightRecorder, RenderJsonAndMetricsGauges) {
  auto& fr = FlightRecorder::instance();
  fr.configure(8);
  fr.record(FrEvent::kRetryDial, 7, /*a=*/2);
  const std::string json = fr.render_json();
  EXPECT_NE(json.find("\"capacity\":8"), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":1"), std::string::npos);
  EXPECT_NE(json.find("\"retry-dial\""), std::string::npos);
  EXPECT_NE(json.find(rid_hex(7)), std::string::npos);

  fr.publish_metrics();
  const std::string text = obs::Registry::instance().render_text();
  EXPECT_NE(text.find("fgad_flight_recorder_capacity 8"), std::string::npos);
  EXPECT_NE(text.find("fgad_flight_recorder_recorded"), std::string::npos);
  EXPECT_NE(text.find("fgad_flight_recorder_dropped"), std::string::npos);
}

TEST(FlightRecorder, ConcurrentWritersLoseNothing) {
  // The TSan hammer: writers race each other and a snapshotting reader.
  auto& fr = FlightRecorder::instance();
  fr.configure(1024);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto events = fr.snapshot();
      // Published slots must always read back internally consistent.
      for (const auto& e : events) {
        ASSERT_EQ(e.a, e.rid * 2);
      }
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&fr, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t rid =
            (static_cast<std::uint64_t>(t) << 32) | i;
        fr.record(FrEvent::kMark, rid, rid * 2);
      }
    });
  }
  for (auto& w : writers) {
    w.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(fr.recorded(), kThreads * kPerThread);
  EXPECT_EQ(fr.dropped(), kThreads * kPerThread - fr.capacity());
  EXPECT_EQ(fr.snapshot().size(), fr.capacity());
}

TEST(FlightRecorder, ConfigureRacesRecordSafely) {
  // Resizing mid-flight must never crash or tear: retired rings stay
  // alive for any writer still holding them.
  auto& fr = FlightRecorder::instance();
  fr.configure(64);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      fr.record(FrEvent::kMark, ++i);
    }
  });
  for (int i = 0; i < 50; ++i) {
    fr.configure(8u << (i % 5));
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  fr.configure(64);  // leave a sane state for later tests
}

/// Applies one tagged KvPut mutation against a DurableServer and expects
/// the armed crash site to fire (throw flavor).
void mutate_until_crash(cloud::DurableServer& ds, std::uint64_t rid) {
  proto::KvPutReq put;
  put.table = 1;
  put.key = 7;
  put.value = to_bytes("forensics");
  const Bytes tagged = proto::seal_tagged(rid, put.to_frame());
  EXPECT_THROW(ds.handle(tagged), cloud::CrashError);
}

TEST(FlightRecorder, CrashPointDumpTailMatchesInFlightMutation) {
  // The acceptance criterion: kill the durability path mid-mutation and
  // the dump's tail must reconstruct the in-flight request — the WAL
  // append carrying this rid and its LSN, then the crash-point firing.
  auto& fr = FlightRecorder::instance();
  fr.configure(256);
  const std::string dump_dir = fresh_dir("fr_crash_throw");
  ASSERT_TRUE(fr.set_dump_dir(dump_dir));

  cloud::DurableServer::Options dopts;
  dopts.dir = fresh_dir("fr_crash_state");
  dopts.checkpoint_every_n = 0;
  auto opened = cloud::DurableServer::open(dopts);
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();

  constexpr std::uint64_t kRid = 0x00C0FFEE12345678ull;
  cloud::CrashPoint::instance().arm_throw(cloud::CrashSite::kAfterWalPreAck);
  mutate_until_crash(*opened.value(), kRid);
  cloud::CrashPoint::instance().reset();
  const std::uint64_t lsn = opened.value()->last_lsn();
  ASSERT_GT(lsn, 0u);

  const auto dumps = dir_matches(dump_dir, "flightrecorder-crashpoint-");
  ASSERT_EQ(dumps.size(), 1u);
  const auto lines = parse_dump(slurp(dumps[0]));
  ASSERT_GE(lines.size(), 2u);

  // Tail event: the crash-point itself, attributed to our request.
  const DumpLine& last = lines.back();
  EXPECT_EQ(last.at("type"), "crash-point");
  EXPECT_EQ(last.at("rid"), rid_hex(kRid));
  EXPECT_EQ(last.at("a"),
            std::to_string(
                static_cast<int>(cloud::CrashSite::kAfterWalPreAck)));

  // Preceded by the WAL append of the same request with the right LSN.
  bool saw_append = false;
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    if (lines[i].at("type") == "wal-append" &&
        lines[i].at("rid") == rid_hex(kRid)) {
      saw_append = true;
      EXPECT_EQ(lines[i].at("a"), std::to_string(lsn));
    }
  }
  EXPECT_TRUE(saw_append) << "no wal-append for rid in dump";

  fr.set_dump_dir("");
}

TEST(FlightRecorder, ProcessExitFlavorLeavesDumpBehind) {
#ifdef FGAD_TSAN
  GTEST_SKIP() << "fork-based crash flavor is not TSan-compatible";
#else
  // The fgad_server FGAD_CRASH_AT flavor: the armed site _exit(42)s the
  // process. Run it in a forked child and assert the dump survives.
  const std::string dump_dir = fresh_dir("fr_crash_exit");
  const std::string state_dir = fresh_dir("fr_crash_exit_state");

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: mirror fgad_server's startup, then crash mid-mutation.
    auto& fr = FlightRecorder::instance();
    fr.configure(256);
    if (!fr.set_dump_dir(dump_dir)) {
      ::_exit(3);
    }
    cloud::CrashPoint::instance().reset();
    if (!cloud::CrashPoint::instance().arm_process_exit(
            "after-wal-pre-ack")) {
      ::_exit(4);
    }
    cloud::DurableServer::Options dopts;
    dopts.dir = state_dir;
    dopts.checkpoint_every_n = 0;
    auto opened = cloud::DurableServer::open(dopts);
    if (!opened.is_ok()) {
      ::_exit(5);
    }
    proto::KvPutReq put;
    put.table = 1;
    put.key = 7;
    put.value = to_bytes("forensics");
    opened.value()->handle(proto::seal_tagged(0xDEAD0001ull, put.to_frame()));
    ::_exit(6);  // the crash site should have exited already
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 42);

  const auto dumps = dir_matches(dump_dir, "flightrecorder-crashpoint-");
  ASSERT_EQ(dumps.size(), 1u);
  const auto lines = parse_dump(slurp(dumps[0]));
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back().at("type"), "crash-point");
  EXPECT_EQ(lines.back().at("rid"), rid_hex(0xDEAD0001ull));
#endif
}

TEST(FlightRecorder, Sigusr2DumpsOnDemand) {
  auto& fr = FlightRecorder::instance();
  fr.configure(32);
  const std::string dump_dir = fresh_dir("fr_sigusr2");
  ASSERT_TRUE(fr.set_dump_dir(dump_dir));
  fr.record(FrEvent::kMark, 0x51u, /*a=*/1);

  FlightRecorder::install_crash_handlers();
  ASSERT_EQ(::raise(SIGUSR2), 0);

  const auto dumps = dir_matches(dump_dir, "flightrecorder-sigusr2-");
  ASSERT_EQ(dumps.size(), 1u);
  const auto lines = parse_dump(slurp(dumps[0]));
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back().at("type"), "mark");
  EXPECT_EQ(lines.back().at("rid"), rid_hex(0x51u));
  fr.set_dump_dir("");
}

std::string http_get(std::uint16_t port, const std::string& request);

TEST(FlightRecorder, ServedOverHttp) {
  auto& fr = FlightRecorder::instance();
  fr.configure(16);
  fr.record(FrEvent::kFaultInjected, 0x77u, /*a=*/4);

  auto server = obs::MetricsHttpServer::create(0);
  ASSERT_TRUE(server.is_ok()) << server.status().to_string();
  const std::uint16_t port = server.value()->port();

  const std::string resp = http_get(
      port, "GET /flightrecorder.json HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  EXPECT_NE(resp.find("\"fault-injected\""), std::string::npos);
  EXPECT_NE(resp.find(rid_hex(0x77u)), std::string::npos);

  // The recorder's status gauges ride along on every metrics scrape.
  const std::string metrics =
      http_get(port, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(metrics.find("fgad_flight_recorder_capacity 16"),
            std::string::npos);
  server.value()->stop();
}

// Raw-socket GET helper (same shape as obs_test's).
std::string http_get(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) {
      break;
    }
    resp.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  return resp;
}

}  // namespace
}  // namespace fgad
