// Server persistence: save/load the full cloud image (files + blob tables)
// and continue operating across the "restart" — plus the crash-consistency
// suite for the durable server (DESIGN.md §13): a crash-point matrix over
// every CrashSite x mutation, WAL-tail corruption recovery, and rid-keyed
// exactly-once retry convergence.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <utility>

#include "client/client.h"
#include "cloud/recovery.h"
#include "cloud/server.h"
#include "cloud/wal.h"
#include "common/fsio.h"
#include "net/retry.h"
#include "net/tcp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/harness.h"

namespace fgad::cloud {
namespace {

using client::Client;
using crypto::SystemRandom;
using test::payload_for;

TEST(Persistence, FileStoreRoundtrip) {
  test::Harness h(crypto::HashAlg::kSha1, 5);
  h.outsource(17);
  ASSERT_TRUE(h.erase(4));
  ASSERT_TRUE(h.insert(payload_for(99)).is_ok());

  proto::Writer w;
  h.store().serialize(w);
  proto::Reader r(w.data());
  auto restored = FileStore::deserialize(r, /*track_duplicates=*/true);
  ASSERT_TRUE(restored.is_ok());
  ASSERT_TRUE(r.finish());

  const FileStore& a = h.store();
  const FileStore& b = restored.value();
  ASSERT_EQ(b.item_count(), a.item_count());
  ASSERT_EQ(b.tree().node_count(), a.tree().node_count());
  EXPECT_EQ(b.items().ids_in_order(), a.items().ids_in_order());
  // Every leaf's modulators and item linkage survive.
  for (core::NodeId v = 0; v < a.tree().node_count(); ++v) {
    if (v != 0) {
      EXPECT_EQ(b.tree().link_mod(v), a.tree().link_mod(v));
    }
    if (a.tree().is_leaf(v)) {
      EXPECT_EQ(b.tree().leaf_mod(v), a.tree().leaf_mod(v));
      const auto slot_b = static_cast<std::uint32_t>(b.tree().item_slot(v));
      EXPECT_EQ(b.items().at(slot_b).leaf, v);
    }
  }
}

TEST(Persistence, ServerImageRoundtripAndContinue) {
  CloudServer server;
  SystemRandom rnd;
  net::DirectChannel ch([&server](BytesView req) { return server.handle(req); });
  Client client(ch, rnd);

  std::vector<Bytes> items;
  for (int i = 0; i < 20; ++i) items.push_back(payload_for(i));
  auto fh = client.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());
  ASSERT_TRUE(client.erase_item(fh.value(), proto::ItemRef::id(3)));
  server.kv_put(7, 1, to_bytes("blob"));

  // "Crash": serialize, drop, reload.
  proto::Writer w;
  server.save(w);
  proto::Reader image_reader(w.data());
  auto reloaded = CloudServer::load(image_reader, CloudServer::Options{true});
  ASSERT_TRUE(reloaded.is_ok());
  CloudServer& server2 = *reloaded.value();

  // The client's master key is its own state; it continues seamlessly
  // against the restarted server.
  net::DirectChannel ch2(
      [&server2](BytesView req) { return server2.handle(req); });
  Client client2(ch2, rnd);
  client2.set_counter(client.counter());
  Client::FileHandle fh2;
  fh2.id = 1;
  fh2.key = fh.value().key.clone();

  for (std::uint64_t i = 0; i < 20; ++i) {
    if (i == 3) continue;
    auto got = client2.access(fh2, proto::ItemRef::id(i));
    ASSERT_TRUE(got.is_ok()) << i;
    EXPECT_EQ(got.value(), items[i]);
  }
  EXPECT_EQ(to_string(server2.kv_get(7, 1).value()), "blob");

  // Mutations continue to work after the restart.
  ASSERT_TRUE(client2.erase_item(fh2, proto::ItemRef::id(10)));
  auto id = client2.insert(fh2, payload_for(500));
  ASSERT_TRUE(id.is_ok());
  EXPECT_TRUE(client2.access(fh2, proto::ItemRef::id(id.value())).is_ok());
}

TEST(Persistence, FileRoundtripOnDisk) {
  CloudServer server;
  SystemRandom rnd;
  net::DirectChannel ch([&server](BytesView req) { return server.handle(req); });
  Client client(ch, rnd);
  auto fh = client.outsource(1, 8, [](std::size_t i) { return payload_for(i); });
  ASSERT_TRUE(fh.is_ok());

  const std::string path = ::testing::TempDir() + "/fgad_server_image.bin";
  ASSERT_TRUE(server.save_to_file(path));
  auto reloaded = CloudServer::load_from_file(path, CloudServer::Options{true});
  ASSERT_TRUE(reloaded.is_ok());
  EXPECT_TRUE(reloaded.value()->has_file(1));
  EXPECT_EQ(reloaded.value()->file(1)->item_count(), 8u);
  std::remove(path.c_str());
}

TEST(Persistence, CorruptImageRejected) {
  CloudServer server;
  proto::Writer w;
  server.save(w);
  Bytes img = w.data();

  // Bad magic.
  Bytes bad = img;
  bad[0] ^= 0xff;
  {
    proto::Reader r(bad);
    EXPECT_FALSE(CloudServer::load(r, {}).is_ok());
  }
  // Truncation at every 7th byte must fail, not crash.
  for (std::size_t keep = 0; keep < img.size(); keep += 7) {
    proto::Reader r(BytesView(img.data(), keep));
    EXPECT_FALSE(CloudServer::load(r, {}).is_ok()) << keep;
  }
}

TEST(Persistence, EmptyServerImage) {
  CloudServer server;
  proto::Writer w;
  server.save(w);
  proto::Reader r(w.data());
  auto reloaded = CloudServer::load(r, {});
  ASSERT_TRUE(reloaded.is_ok());
  EXPECT_TRUE(r.finish());
}

// ---- durable server: crash matrix + recovery -------------------------------

std::string fresh_state_dir(const std::string& name) {
  static std::atomic<int> counter{0};
  const std::string d = ::testing::TempDir() + "/" + name + "." +
                        std::to_string(::getpid()) + "." +
                        std::to_string(counter.fetch_add(1));
  ::mkdir(d.c_str(), 0755);
  return d;
}

Bytes image_of(CloudServer& s) {
  proto::Writer w;
  s.save(w);
  return std::move(w).take();
}

/// Drives a tagged client against a DurableServer through a crash-catching
/// channel, recording every request frame so a never-crashed reference
/// server can be fed the identical history.
struct DurableRig {
  explicit DurableRig(DurableServer::Options dopts, std::uint64_t seed = 1234)
      : opts(std::move(dopts)), rnd(seed) {
    auto opened = DurableServer::open(opts);
    EXPECT_TRUE(opened.is_ok()) << opened.status().to_string();
    ds = std::move(opened).value();
    ch = std::make_unique<net::DirectChannel>([this](BytesView req) -> Bytes {
      frames.emplace_back(req.data(), req.data() + req.size());
      try {
        Bytes resp = ds->handle(req);
        responses.push_back(resp);
        return resp;
      } catch (const CrashError&) {
        crashed = true;
        proto::ErrorMsg e;
        e.code = Errc::kConnReset;
        e.message = "server crashed";
        return e.to_frame();
      }
    });
    Client::Options copts;
    copts.tag_mutations = true;
    client = std::make_unique<Client>(*ch, rnd, copts);
  }

  /// Simulates the kill -9 + restart: drops the in-memory server and
  /// recovers purely from the state directory.
  Result<std::unique_ptr<DurableServer>> restart() {
    ds.reset();
    return DurableServer::open(opts);
  }

  DurableServer::Options opts;
  crypto::DeterministicRandom rnd;
  std::unique_ptr<DurableServer> ds;
  std::unique_ptr<net::DirectChannel> ch;
  std::unique_ptr<Client> client;
  std::vector<Bytes> frames;
  std::vector<Bytes> responses;
  bool crashed = false;
};

enum class MutOp { kDelete, kInsert, kOutsource };

const char* mut_op_name(MutOp op) {
  switch (op) {
    case MutOp::kDelete:
      return "delete";
    case MutOp::kInsert:
      return "insert";
    default:
      return "outsource";
  }
}

/// One cell of the crash matrix: build base state, crash the target
/// mutation at `site`, recover, and require (a) the recovered image is
/// byte-identical to a never-crashed reference fed the same frames and
/// (b) resending the crashed frame converges to exactly-once.
void run_crash_case(CrashSite site, MutOp op) {
  SCOPED_TRACE(std::string(crash_site_name(site)) + " x " + mut_op_name(op));
  DurableServer::Options dopts;
  dopts.dir = fresh_state_dir("crash_matrix");
  dopts.wal_sync_ms = 0;
  // The checkpoint sites only fire inside a checkpoint, so those cells
  // checkpoint on every mutation; the WAL sites keep checkpoints out of
  // the way entirely (0 = only explicit/shutdown checkpoints).
  const bool ckpt_site =
      site == CrashSite::kMidCheckpoint || site == CrashSite::kPostRename;
  dopts.checkpoint_every_n = ckpt_site ? 1 : 0;
  DurableRig rig(dopts);

  // Base history: outsource + one delete + one insert, all committed.
  std::vector<Bytes> items;
  for (int i = 0; i < 12; ++i) items.push_back(payload_for(i));
  auto fh = rig.client->outsource(1, items);
  ASSERT_TRUE(fh.is_ok());
  ASSERT_TRUE(rig.client->erase_item(fh.value(), proto::ItemRef::id(2)));
  ASSERT_TRUE(rig.client->insert(fh.value(), payload_for(77)).is_ok());
  ASSERT_FALSE(rig.crashed);

  // Crash the next mutating RPC at `site`. The client sees a transport-
  // style error, exactly as if the server died before responding.
  CrashPoint::instance().arm_throw(site);
  switch (op) {
    case MutOp::kDelete:
      EXPECT_FALSE(rig.client->erase_item(fh.value(), proto::ItemRef::id(5)));
      break;
    case MutOp::kInsert:
      EXPECT_FALSE(rig.client->insert(fh.value(), payload_for(88)).is_ok());
      break;
    case MutOp::kOutsource: {
      std::vector<Bytes> more{payload_for(200), payload_for(201),
                              payload_for(202)};
      EXPECT_FALSE(rig.client->outsource(2, more).is_ok());
      break;
    }
  }
  CrashPoint::instance().reset();
  ASSERT_TRUE(rig.crashed);
  const Bytes crashed_frame = rig.frames.back();
  ASSERT_TRUE(proto::split_tagged(crashed_frame).has_value());
  ASSERT_TRUE(proto::retryable_request(crashed_frame));

  // Recover from disk alone; open() runs fsck before serving.
  auto reopened = rig.restart();
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  DurableServer& ds2 = *reopened.value();

  // Reference: a pristine server fed the identical frame history. Only
  // kBeforeWalAppend loses the in-flight mutation; at every later site it
  // was logged durably (and applied) before the crash.
  const bool applied = site != CrashSite::kBeforeWalAppend;
  CloudServer ref;
  for (std::size_t i = 0; i + 1 < rig.frames.size(); ++i) {
    ref.handle(rig.frames[i]);
  }
  if (applied) {
    ref.handle(crashed_frame);
  }
  EXPECT_EQ(image_of(ds2.server()), image_of(ref));

  // Exactly-once retry: the client's resend either applies the mutation
  // for the first time or hits the rid-dedup table; a second resend is
  // always a dedup hit. State never double-applies.
  const Bytes r1 = ds2.handle(crashed_frame);
  if (!applied) {
    ref.handle(crashed_frame);
  }
  EXPECT_EQ(image_of(ds2.server()), image_of(ref));
  const Bytes r2 = ds2.handle(crashed_frame);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(image_of(ds2.server()), image_of(ref));
  EXPECT_TRUE(fsck(ds2.server()));
}

TEST(CrashMatrix, BeforeWalAppend) {
  for (MutOp op : {MutOp::kDelete, MutOp::kInsert, MutOp::kOutsource}) {
    run_crash_case(CrashSite::kBeforeWalAppend, op);
  }
}

TEST(CrashMatrix, AfterWalPreAck) {
  for (MutOp op : {MutOp::kDelete, MutOp::kInsert, MutOp::kOutsource}) {
    run_crash_case(CrashSite::kAfterWalPreAck, op);
  }
}

TEST(CrashMatrix, MidCheckpoint) {
  for (MutOp op : {MutOp::kDelete, MutOp::kInsert, MutOp::kOutsource}) {
    run_crash_case(CrashSite::kMidCheckpoint, op);
  }
}

TEST(CrashMatrix, PostRename) {
  for (MutOp op : {MutOp::kDelete, MutOp::kInsert, MutOp::kOutsource}) {
    run_crash_case(CrashSite::kPostRename, op);
  }
}

TEST(DurableRecovery, CleanRestartReplaysWal) {
  DurableServer::Options dopts;
  dopts.dir = fresh_state_dir("durable_clean");
  dopts.checkpoint_every_n = 0;  // everything lives in the WAL
  DurableRig rig(dopts);

  std::vector<Bytes> items;
  for (int i = 0; i < 10; ++i) items.push_back(payload_for(i));
  auto fh = rig.client->outsource(1, items);
  ASSERT_TRUE(fh.is_ok());
  ASSERT_TRUE(rig.client->erase_item(fh.value(), proto::ItemRef::id(4)));
  auto inserted = rig.client->insert(fh.value(), payload_for(55));
  ASSERT_TRUE(inserted.is_ok());
  const Bytes before = image_of(rig.ds->server());

  auto reopened = rig.restart();
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  DurableServer& ds2 = *reopened.value();
  EXPECT_EQ(image_of(ds2.server()), before);
  EXPECT_EQ(ds2.recovery_info().checkpoint_epoch, 0u);
  EXPECT_EQ(ds2.recovery_info().replayed, 3u);  // outsource, delete, insert
  EXPECT_FALSE(ds2.recovery_info().torn_tail);

  // The surviving client continues seamlessly against the recovered state.
  net::DirectChannel ch2([&ds2](BytesView req) { return ds2.handle(req); });
  Client client2(ch2, rig.rnd);
  client2.set_counter(rig.client->counter());
  Client::FileHandle fh2;
  fh2.id = 1;
  fh2.key = fh.value().key.clone();
  for (std::uint64_t i = 0; i < 10; ++i) {
    if (i == 4) continue;
    auto got = client2.access(fh2, proto::ItemRef::id(i));
    ASSERT_TRUE(got.is_ok()) << i;
    EXPECT_EQ(got.value(), items[i]);
  }
  EXPECT_EQ(client2.access(fh2, proto::ItemRef::id(inserted.value())).value(),
            payload_for(55));
}

TEST(DurableRecovery, CheckpointTruncatesLogAndPrunes) {
  DurableServer::Options dopts;
  dopts.dir = fresh_state_dir("durable_ckpt");
  dopts.checkpoint_every_n = 0;
  DurableRig rig(dopts);

  std::vector<Bytes> items{payload_for(0), payload_for(1), payload_for(2)};
  auto fh = rig.client->outsource(1, items);
  ASSERT_TRUE(fh.is_ok());
  ASSERT_TRUE(rig.ds->checkpoint());
  ASSERT_TRUE(rig.client->erase_item(fh.value(), proto::ItemRef::id(1)));
  ASSERT_TRUE(rig.ds->checkpoint());
  ASSERT_TRUE(rig.ds->checkpoint());

  // Keep newest + one fallback checkpoint; only the newest epoch's WAL.
  EXPECT_TRUE(fsio::exists(dopts.dir + "/checkpoint-000003.ckpt"));
  EXPECT_TRUE(fsio::exists(dopts.dir + "/checkpoint-000002.ckpt"));
  EXPECT_FALSE(fsio::exists(dopts.dir + "/checkpoint-000001.ckpt"));
  EXPECT_TRUE(fsio::exists(dopts.dir + "/wal-000003.log"));
  EXPECT_FALSE(fsio::exists(dopts.dir + "/wal-000002.log"));
  EXPECT_FALSE(fsio::exists(dopts.dir + "/wal-000000.log"));

  const Bytes before = image_of(rig.ds->server());
  auto reopened = rig.restart();
  ASSERT_TRUE(reopened.is_ok());
  EXPECT_EQ(image_of(reopened.value()->server()), before);
  EXPECT_EQ(reopened.value()->recovery_info().checkpoint_epoch, 3u);
  EXPECT_EQ(reopened.value()->recovery_info().replayed, 0u);
}

TEST(DurableRecovery, TornWalTailTruncatedOnRecovery) {
  DurableServer::Options dopts;
  dopts.dir = fresh_state_dir("durable_torn");
  dopts.checkpoint_every_n = 0;
  DurableRig rig(dopts);

  std::vector<Bytes> items{payload_for(0), payload_for(1), payload_for(2),
                           payload_for(3)};
  auto fh = rig.client->outsource(1, items);
  ASSERT_TRUE(fh.is_ok());
  ASSERT_TRUE(rig.client->erase_item(fh.value(), proto::ItemRef::id(0)));
  const Bytes before = image_of(rig.ds->server());
  rig.ds.reset();

  // A torn final append: garbage that looks like the start of a frame.
  const std::string wal = dopts.dir + "/wal-000000.log";
  {
    std::FILE* f = std::fopen(wal.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const Bytes junk = {0x40, 0x00, 0x00, 0x00, 't', 'o', 'r', 'n', '!'};
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
  }

  auto reopened = DurableServer::open(dopts);
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  EXPECT_TRUE(reopened.value()->recovery_info().torn_tail);
  EXPECT_EQ(image_of(reopened.value()->server()), before);
  EXPECT_TRUE(fsck(reopened.value()->server()));

  // The torn tail was truncated away: appends after recovery land on a
  // clean boundary and a second recovery sees a clean log.
  proto::KvPutReq put;
  put.table = 9;
  put.key = 1;
  put.value = to_bytes("post-recovery");
  reopened.value()->handle(put.to_frame());
  reopened.value().reset();
  auto again = DurableServer::open(dopts);
  ASSERT_TRUE(again.is_ok());
  EXPECT_FALSE(again.value()->recovery_info().torn_tail);
  EXPECT_EQ(to_string(again.value()->server().kv_get(9, 1).value()),
            "post-recovery");
}

TEST(DurableRecovery, BitflippedWalRecordDropsUnackedSuffix) {
  DurableServer::Options dopts;
  dopts.dir = fresh_state_dir("durable_bitflip");
  dopts.checkpoint_every_n = 0;
  DurableRig rig(dopts);

  std::vector<Bytes> items{payload_for(0), payload_for(1), payload_for(2),
                           payload_for(3), payload_for(4)};
  auto fh = rig.client->outsource(1, items);
  ASSERT_TRUE(fh.is_ok());
  ASSERT_TRUE(rig.client->insert(fh.value(), payload_for(90)).is_ok());
  rig.ds.reset();

  // Flip one bit inside the last record's payload: its CRC fails, the
  // record is dropped, and recovery falls back to the state before it.
  const std::string wal = dopts.dir + "/wal-000000.log";
  auto data = fsio::read_file(wal);
  ASSERT_TRUE(data.is_ok());
  Bytes bad = data.value();
  bad[bad.size() - 3] ^= 0x10;
  {
    std::FILE* f = std::fopen(wal.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bad.data(), 1, bad.size(), f);
    std::fclose(f);
  }

  auto reopened = DurableServer::open(dopts);
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  EXPECT_TRUE(reopened.value()->recovery_info().torn_tail);
  EXPECT_TRUE(fsck(reopened.value()->server()));

  // Reference = all frames except the final (insert-commit) mutation.
  CloudServer ref;
  for (std::size_t i = 0; i + 1 < rig.frames.size(); ++i) {
    ref.handle(rig.frames[i]);
  }
  EXPECT_EQ(image_of(reopened.value()->server()), image_of(ref));
}

TEST(DurableRecovery, RidDedupSurvivesRestart) {
  DurableServer::Options dopts;
  dopts.dir = fresh_state_dir("durable_dedup");
  dopts.checkpoint_every_n = 0;
  DurableRig rig(dopts);

  std::vector<Bytes> items{payload_for(0), payload_for(1), payload_for(2)};
  auto fh = rig.client->outsource(1, items);
  ASSERT_TRUE(fh.is_ok());
  ASSERT_TRUE(rig.client->erase_item(fh.value(), proto::ItemRef::id(1)));

  // The delete-commit is the last mutating exchange.
  const Bytes frame = rig.frames.back();
  const Bytes original_resp = rig.responses.back();
  ASSERT_TRUE(proto::split_tagged(frame).has_value());
  const Bytes before = image_of(rig.ds->server());

  auto reopened = rig.restart();
  ASSERT_TRUE(reopened.is_ok());
  DurableServer& ds2 = *reopened.value();
  // Replay rebuilt the dedup table: resending the already-applied delete
  // returns the original response bytes and folds no deltas twice.
  EXPECT_EQ(ds2.handle(frame), original_resp);
  EXPECT_EQ(image_of(ds2.server()), before);
  EXPECT_EQ(ds2.handle(frame), original_resp);
  EXPECT_EQ(image_of(ds2.server()), before);
}

TEST(DurableRecovery, UntaggedMutationsAreNotRetryable) {
  // The retry predicate only approves mutations carrying an idempotency
  // token; bare frames keep the seed's never-resend behavior.
  proto::KvPutReq put;
  put.table = 1;
  put.key = 2;
  put.value = to_bytes("v");
  const Bytes untagged = put.to_frame();
  EXPECT_FALSE(proto::retryable_request(untagged));
  EXPECT_TRUE(proto::retryable_request(proto::seal_tagged(7, untagged)));
  // Read-only requests retry either way.
  proto::KvGetReq get;
  get.table = 1;
  get.key = 2;
  EXPECT_TRUE(proto::retryable_request(get.to_frame()));
}

/// Executes the request server-side but reports a lost response for the
/// first `drops` delete-commits — the classic ack-lost retry hazard.
class AckDropChannel final : public net::RpcChannel {
 public:
  AckDropChannel(DurableServer& ds, std::atomic<int>& drops)
      : ds_(ds), drops_(drops) {}

  Result<Bytes> roundtrip(BytesView req) override {
    Bytes resp = ds_.handle(req);
    const auto t = proto::peek_type(req);
    if (t == proto::MsgType::kDeleteCommitReq &&
        drops_.fetch_sub(1) > 0) {
      return Error(Errc::kTimeout, "injected: response lost");
    }
    return resp;
  }

 private:
  DurableServer& ds_;
  std::atomic<int>& drops_;
};

TEST(DurableRecovery, RetryChannelConvergesExactlyOnce) {
  DurableServer::Options dopts;
  dopts.dir = fresh_state_dir("durable_retry");
  dopts.checkpoint_every_n = 0;
  auto opened = DurableServer::open(dopts);
  ASSERT_TRUE(opened.is_ok());
  DurableServer& ds = *opened.value();

  std::atomic<int> drops{1};
  net::RetryChannel::Options ropts;
  ropts.base_backoff_ms = 1;
  ropts.retryable = [](BytesView f) { return proto::retryable_request(f); };
  net::RetryChannel retry(
      [&]() -> Result<std::unique_ptr<net::RpcChannel>> {
        return std::unique_ptr<net::RpcChannel>(
            new AckDropChannel(ds, drops));
      },
      ropts);

  SystemRandom rnd;
  Client::Options copts;
  copts.tag_mutations = true;  // mutations carry the idempotency token
  Client client(retry, rnd, copts);

  std::vector<Bytes> items;
  for (int i = 0; i < 8; ++i) items.push_back(payload_for(i));
  auto fh = client.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());

  // The commit's ACK is dropped once; RetryChannel resends, the dedup
  // table returns the original response, and the client's key rotation
  // completes as if nothing happened.
  ASSERT_TRUE(client.erase_item(fh.value(), proto::ItemRef::id(3)));
  EXPECT_GE(retry.resends(), 1u);
  EXPECT_EQ(ds.server().file(1)->item_count(), 7u);
  EXPECT_TRUE(fsck(ds.server()));

  // Every surviving item still decrypts under the rotated master key —
  // a double-applied delete would have corrupted the modulators.
  for (std::uint64_t i = 0; i < 8; ++i) {
    if (i == 3) continue;
    auto got = client.access(fh.value(), proto::ItemRef::id(i));
    ASSERT_TRUE(got.is_ok()) << i;
    EXPECT_EQ(got.value(), items[i]);
  }
}

TEST(DurableRecovery, RecoveryMetricsPopulatedAfterRestart) {
  // The durability instrumentation (DESIGN.md §14) must survive the same
  // kill-and-recover cycle the crash matrix exercises: after a restart
  // the recovery pass reports its duration and the registry counters
  // reflect the replayed WAL tail.
  DurableServer::Options dopts;
  dopts.dir = fresh_state_dir("durable_metrics");
  dopts.checkpoint_every_n = 0;  // keep every mutation in the WAL tail
  DurableRig rig(dopts);

  std::vector<Bytes> items{payload_for(0), payload_for(1), payload_for(2)};
  auto fh = rig.client->outsource(1, items);
  ASSERT_TRUE(fh.is_ok());
  ASSERT_TRUE(rig.client->erase_item(fh.value(), proto::ItemRef::id(1)));

  auto& replayed_total =
      obs::Registry::instance().counter("fgad_recovery_replayed_total");
  auto& recovery_hist =
      obs::Registry::instance().histogram("fgad_recovery_duration_ns");
  const std::uint64_t replayed_before = replayed_total.value();
  const std::uint64_t recoveries_before = recovery_hist.count();

  auto reopened = rig.restart();
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  const auto& info = reopened.value()->recovery_info();
  EXPECT_GT(info.replayed, 0u);
  EXPECT_GT(info.duration_ns, 0u);

  // The registry saw the same recovery: replayed counter advanced by
  // exactly the per-instance count and one more duration sample landed.
  EXPECT_EQ(replayed_total.value(), replayed_before + info.replayed);
  EXPECT_EQ(recovery_hist.count(), recoveries_before + 1);
  // WAL instrumentation from the pre-restart mutations is present too.
  EXPECT_GT(
      obs::Registry::instance().histogram("fgad_wal_fsync_ns").count(), 0u);
  EXPECT_GT(
      obs::Registry::instance().counter("fgad_wal_appends_total").value(),
      0u);
}

// ---- cross-connection group commit (DESIGN.md §15) -------------------------

Bytes tagged_kv_put(std::uint64_t rid, std::uint64_t key, BytesView value) {
  proto::KvPutReq put;
  put.table = 1;
  put.key = key;
  put.value = Bytes(value.begin(), value.end());
  return proto::seal_tagged(rid, put.to_frame());
}

TEST(GroupCommit, AsyncMutationsShareFsyncsAndSurviveRestart) {
  DurableServer::Options dopts;
  dopts.dir = fresh_state_dir("group_commit");
  dopts.checkpoint_every_n = 0;
  auto opened = DurableServer::open(dopts);
  ASSERT_TRUE(opened.is_ok());
  auto ds = std::move(opened).value();

  auto& commits =
      obs::Registry::instance().counter("fgad_wal_group_commits_total");
  auto& hist =
      obs::Registry::instance().histogram("fgad_wal_commit_batch_size");
  const std::uint64_t commits_before = commits.value();
  const std::uint64_t hist_sum_before = hist.sum();

  constexpr int kN = 24;
  std::atomic<int> acked{0};
  std::mutex mu;
  std::vector<Bytes> responses(kN);
  for (int i = 0; i < kN; ++i) {
    ds->handle_async(
        tagged_kv_put(1000 + i, static_cast<std::uint64_t>(i), payload_for(i)),
        [&, i](Bytes resp) {
          std::lock_guard<std::mutex> lock(mu);
          responses[i] = std::move(resp);
          acked.fetch_add(1);
        });
  }
  for (int spin = 0; spin < 5000 && acked.load() < kN; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(acked.load(), kN);

  // Every staged mutation landed in exactly one commit batch; the number
  // of fsyncs can be anything from 1 (all batched) to kN (fully serial),
  // but the histogram's sum accounts for each mutation exactly once.
  EXPECT_EQ(hist.sum() - hist_sum_before, static_cast<std::uint64_t>(kN));
  const std::uint64_t flushes = commits.value() - commits_before;
  EXPECT_GE(flushes, 1u);
  EXPECT_LE(flushes, static_cast<std::uint64_t>(kN));

  // Re-sending an acknowledged mutation answers inline from the rid
  // table with the original bytes — no second WAL append, no new fsync.
  Bytes again;
  ds->handle_async(tagged_kv_put(1000, 0, payload_for(0)),
                   [&again](Bytes resp) { again = std::move(resp); });
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(again, responses[0]);
  }

  // The ACKs were honest: a cold restart recovers every mutation.
  ds.reset();
  auto reopened = DurableServer::open(dopts);
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  for (int i = 0; i < kN; ++i) {
    auto got = reopened.value()->server().kv_get(1, i);
    ASSERT_TRUE(got.is_ok()) << i;
    EXPECT_EQ(got.value(), payload_for(i));
  }
}

TEST(GroupCommit, CrashBeforeFsyncLosesWholeBatchThenResendsExactlyOnce) {
  DurableServer::Options dopts;
  dopts.dir = fresh_state_dir("group_atomic");
  dopts.checkpoint_every_n = 0;
  auto opened = DurableServer::open(dopts);
  ASSERT_TRUE(opened.is_ok());
  auto ds = std::move(opened).value();

  // Durable base state through the synchronous fsync-per-ACK path.
  for (std::uint64_t k = 0; k < 3; ++k) {
    ds->handle(tagged_kv_put(100 + k, k, to_bytes("base")));
  }
  // Snapshot the durable WAL prefix: everything so far is fsynced.
  const std::string wal = dopts.dir + "/wal-000000.log";
  auto durable_prefix = fsio::read_file(wal);
  ASSERT_TRUE(durable_prefix.is_ok());

  // Arm the pre-fsync crash site: every commit flush now dies before
  // syncing, so the whole pipelined batch must stay unacknowledged —
  // a torn partial-batch ACK would be a durability lie.
  CrashPoint::instance().arm_throw(CrashSite::kBeforeGroupFsync);
  constexpr std::uint64_t kBatch = 6;
  std::vector<Bytes> batch_frames;
  std::atomic<int> acked{0};
  for (std::uint64_t k = 0; k < kBatch; ++k) {
    batch_frames.push_back(tagged_kv_put(200 + k, 50 + k, to_bytes("batch")));
    ds->handle_async(Bytes(batch_frames.back()),
                     [&acked](Bytes) { acked.fetch_add(1); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(acked.load(), 0);

  // "Power loss": rebuild the state directory from the durable prefix
  // alone — the staged-but-unsynced WAL tail vanishes with the page
  // cache, exactly what fsync-after-ACK would have risked.
  DurableServer::Options ropts = dopts;
  ropts.dir = fresh_state_dir("group_atomic_recovered");
  ASSERT_TRUE(fsio::atomic_write_file(ropts.dir + "/wal-000000.log",
                                      durable_prefix.value()));
  CrashPoint::instance().reset();
  ds.reset();

  auto reopened = DurableServer::open(ropts);
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  DurableServer& ds2 = *reopened.value();
  // The base survived; NONE of the unacknowledged batch did.
  for (std::uint64_t k = 0; k < 3; ++k) {
    EXPECT_TRUE(ds2.server().kv_get(1, k).is_ok()) << k;
  }
  for (std::uint64_t k = 0; k < kBatch; ++k) {
    EXPECT_FALSE(ds2.server().kv_get(1, 50 + k).is_ok()) << k;
  }

  // The client saw no ACK, so it resends the whole batch: applied
  // exactly once, and a second resend is pure rid-dedup.
  for (const Bytes& f : batch_frames) {
    ds2.handle(f);
  }
  const Bytes once = image_of(ds2.server());
  for (const Bytes& f : batch_frames) {
    ds2.handle(f);
  }
  EXPECT_EQ(image_of(ds2.server()), once);
  for (std::uint64_t k = 0; k < kBatch; ++k) {
    EXPECT_EQ(to_string(ds2.server().kv_get(1, 50 + k).value()), "batch");
  }
  EXPECT_TRUE(fsck(ds2.server()));
}

TEST(GroupCommit, BulkDeleteCrashBeforeFsyncThenExactlyOnceResend) {
  // A merged-cut bulk deletion is ONE WAL record; a crash before its
  // group fsync must lose it atomically (no torn half-applied batch),
  // and the client's resend of the identical tagged frame must apply it
  // exactly once via rid-dedup.
  DurableServer::Options dopts;
  dopts.dir = fresh_state_dir("group_bulk_delete");
  dopts.checkpoint_every_n = 0;
  auto opened = DurableServer::open(dopts);
  ASSERT_TRUE(opened.is_ok());
  auto ds = std::move(opened).value();

  SystemRandom rnd;
  net::DirectChannel ch([&ds](BytesView req) { return ds->handle(req); });
  Client::Options copts;
  copts.tag_mutations = true;
  Client client(ch, rnd, copts);
  std::vector<Bytes> items;
  for (int i = 0; i < 16; ++i) items.push_back(payload_for(i));
  auto fh = client.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());

  // Snapshot the durable WAL prefix: the outsource is fsynced.
  const std::string wal = dopts.dir + "/wal-000000.log";
  auto durable_prefix = fsio::read_file(wal);
  ASSERT_TRUE(durable_prefix.is_ok());

  // Build the bulk commit by hand so the exact tagged frame can be
  // resent byte-identically after the crash.
  proto::DeleteManyBeginReq breq;
  breq.file_id = 1;
  for (std::uint64_t id : {2u, 3u, 9u}) {
    breq.refs.push_back(proto::ItemRef::id(id));
  }
  auto benv = proto::open_message(ds->handle(breq.to_frame()));
  ASSERT_TRUE(benv.is_ok());
  ASSERT_EQ(benv.value().type, proto::MsgType::kDeleteManyBeginResp);
  proto::Reader br(benv.value().payload);
  auto bresp = proto::DeleteManyBeginResp::from(br);
  ASSERT_TRUE(bresp.is_ok());

  core::ClientMath math(crypto::HashAlg::kSha1);
  crypto::MasterKey fresh;
  proto::DeleteManyCommitReq creq;
  creq.file_id = 1;
  bool planned = false;
  for (int attempt = 0; attempt < 8 && !planned; ++attempt) {
    fresh = crypto::MasterKey::generate(rnd, math.width());
    auto plan = math.plan_delete_many(bresp.value().info,
                                      fh.value().key.value(), fresh.value(),
                                      rnd);
    if (!plan && plan.error().code == Errc::kInvalidArgument) {
      continue;  // F(K',M_d) collision: pick another K'
    }
    ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
    creq.commit = std::move(plan.value().commit);
    planned = true;
  }
  ASSERT_TRUE(planned);
  const Bytes tagged =
      proto::seal_tagged(obs::generate_request_id(), creq.to_frame());

  // Crash before the group fsync: the staged WAL record vanishes with
  // the page cache, so the commit must not be acknowledged.
  CrashPoint::instance().arm_throw(CrashSite::kBeforeGroupFsync);
  std::atomic<int> acked{0};
  ds->handle_async(Bytes(tagged), [&acked](Bytes) { acked.fetch_add(1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(acked.load(), 0);

  // "Power loss": rebuild from the durable prefix alone.
  DurableServer::Options ropts = dopts;
  ropts.dir = fresh_state_dir("group_bulk_delete_recovered");
  ASSERT_TRUE(fsio::atomic_write_file(ropts.dir + "/wal-000000.log",
                                      durable_prefix.value()));
  CrashPoint::instance().reset();
  ds.reset();

  auto reopened = DurableServer::open(ropts);
  ASSERT_TRUE(reopened.is_ok()) << reopened.status().to_string();
  DurableServer& ds2 = *reopened.value();
  ASSERT_NE(ds2.server().file(1), nullptr);
  // Atomic loss: all 16 items are still there — no torn deletion.
  EXPECT_EQ(ds2.server().file(1)->item_count(), 16u);

  // The unacknowledged client resends the identical frame: applied
  // exactly once; a second resend is pure rid-dedup.
  auto env1 = proto::open_message(ds2.handle(tagged));
  ASSERT_TRUE(env1.is_ok());
  EXPECT_EQ(env1.value().type, proto::MsgType::kDeleteManyCommitResp);
  const Bytes once = image_of(ds2.server());
  auto env2 = proto::open_message(ds2.handle(tagged));
  ASSERT_TRUE(env2.is_ok());
  EXPECT_EQ(env2.value().type, proto::MsgType::kDeleteManyCommitResp);
  EXPECT_EQ(image_of(ds2.server()), once);
  EXPECT_EQ(ds2.server().file(1)->item_count(), 13u);

  // Recovery is byte-exact w.r.t. the rotated key epoch: the fresh key
  // decrypts every survivor, the targets are gone.
  net::DirectChannel ch2([&ds2](BytesView req) { return ds2.handle(req); });
  Client client2(ch2, rnd, copts);
  Client::FileHandle fh2;
  fh2.id = 1;
  fh2.key = std::move(fresh);
  for (std::uint64_t id : {2u, 3u, 9u}) {
    EXPECT_FALSE(client2.access(fh2, proto::ItemRef::id(id)).is_ok()) << id;
  }
  for (std::uint64_t id : {0u, 1u, 8u, 15u}) {
    EXPECT_EQ(client2.access(fh2, proto::ItemRef::id(id)).value(), items[id]);
  }
  EXPECT_TRUE(fsck(ds2.server()));
}

TEST(GroupCommit, PipelinedClientBatchesOverReactorTcp) {
  // Full stack: batched Client API -> pipelined TcpChannel -> reactor
  // TcpServer -> DurableServer::handle_async -> group commit.
  DurableServer::Options dopts;
  dopts.dir = fresh_state_dir("group_tcp");
  auto opened = DurableServer::open(dopts);
  ASSERT_TRUE(opened.is_ok());
  DurableServer& ds = *opened.value();

  auto server = net::TcpServer::create(
      0,
      [&ds](Bytes req, net::TcpServer::Respond respond) {
        ds.handle_async(std::move(req),
                        [respond](Bytes resp) { respond(std::move(resp)); });
      },
      net::TcpServer::Options{});
  ASSERT_TRUE(server.is_ok());
  auto ch = net::TcpChannel::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(ch.is_ok());

  SystemRandom rnd;
  Client::Options copts;
  copts.tag_mutations = true;
  Client client(*ch.value(), rnd, copts);

  std::vector<Bytes> items;
  for (int i = 0; i < 16; ++i) items.push_back(payload_for(i));
  auto fh = client.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());

  // Pipelined bulk modify of one file.
  std::vector<std::pair<std::uint64_t, Bytes>> updates;
  for (std::uint64_t id = 0; id < 8; ++id) {
    updates.emplace_back(id, payload_for(700 + id));
  }
  ASSERT_TRUE(client.modify_batch(fh.value(), updates));
  for (std::uint64_t id = 0; id < 8; ++id) {
    auto got = client.access(fh.value(), proto::ItemRef::id(id));
    ASSERT_TRUE(got.is_ok()) << id;
    EXPECT_EQ(got.value(), payload_for(700 + id));
  }

  // Batched assured deletion across distinct files. Item ids are drawn
  // from the client's global counter, so each file's ids differ — fetch
  // them per file.
  auto fh2 = client.outsource(2, items);
  auto fh3 = client.outsource(3, items);
  ASSERT_TRUE(fh2.is_ok());
  ASSERT_TRUE(fh3.is_ok());
  auto ids2 = client.list_items(fh2.value());
  auto ids3 = client.list_items(fh3.value());
  ASSERT_TRUE(ids2.is_ok());
  ASSERT_TRUE(ids3.is_ok());
  std::vector<Client::FileHandle*> handles{&fh.value(), &fh2.value(),
                                           &fh3.value()};
  std::vector<proto::ItemRef> refs{proto::ItemRef::id(3),
                                   proto::ItemRef::id(ids2.value()[4]),
                                   proto::ItemRef::id(ids3.value()[5])};
  const Status erased = client.erase_batch(handles, refs);
  ASSERT_TRUE(erased) << erased.to_string();
  EXPECT_FALSE(client.access(fh.value(), proto::ItemRef::id(3)).is_ok());
  EXPECT_FALSE(
      client.access(fh2.value(), proto::ItemRef::id(ids2.value()[4])).is_ok());
  EXPECT_FALSE(
      client.access(fh3.value(), proto::ItemRef::id(ids3.value()[5])).is_ok());
  // The rotated keys still decrypt every survivor.
  EXPECT_EQ(client.access(fh2.value(), proto::ItemRef::id(ids2.value()[0]))
                .value(),
            items[0]);
  EXPECT_EQ(client.access(fh3.value(), proto::ItemRef::id(ids3.value()[1]))
                .value(),
            items[1]);

  // Two deletions in one file route through the merged-cut bulk path:
  // one commit, one key rotation, both items gone, survivors intact.
  std::vector<Client::FileHandle*> dup{&fh.value(), &fh.value()};
  std::vector<proto::ItemRef> dup_refs{proto::ItemRef::id(1),
                                       proto::ItemRef::id(2)};
  const Status bulk = client.erase_batch(dup, dup_refs);
  ASSERT_TRUE(bulk) << bulk.to_string();
  EXPECT_FALSE(client.access(fh.value(), proto::ItemRef::id(1)).is_ok());
  EXPECT_FALSE(client.access(fh.value(), proto::ItemRef::id(2)).is_ok());
  EXPECT_EQ(client.access(fh.value(), proto::ItemRef::id(0)).value(),
            payload_for(700));
  EXPECT_TRUE(fsck(ds.server()));
}

}  // namespace
}  // namespace fgad::cloud
