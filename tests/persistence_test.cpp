// Server persistence: save/load the full cloud image (files + blob tables)
// and continue operating across the "restart".
#include <gtest/gtest.h>

#include <cstdio>

#include "client/client.h"
#include "cloud/server.h"
#include "support/harness.h"

namespace fgad::cloud {
namespace {

using client::Client;
using crypto::SystemRandom;
using test::payload_for;

TEST(Persistence, FileStoreRoundtrip) {
  test::Harness h(crypto::HashAlg::kSha1, 5);
  h.outsource(17);
  ASSERT_TRUE(h.erase(4));
  ASSERT_TRUE(h.insert(payload_for(99)).is_ok());

  proto::Writer w;
  h.store().serialize(w);
  proto::Reader r(w.data());
  auto restored = FileStore::deserialize(r, /*track_duplicates=*/true);
  ASSERT_TRUE(restored.is_ok());
  ASSERT_TRUE(r.finish());

  const FileStore& a = h.store();
  const FileStore& b = restored.value();
  ASSERT_EQ(b.item_count(), a.item_count());
  ASSERT_EQ(b.tree().node_count(), a.tree().node_count());
  EXPECT_EQ(b.items().ids_in_order(), a.items().ids_in_order());
  // Every leaf's modulators and item linkage survive.
  for (core::NodeId v = 0; v < a.tree().node_count(); ++v) {
    if (v != 0) {
      EXPECT_EQ(b.tree().link_mod(v), a.tree().link_mod(v));
    }
    if (a.tree().is_leaf(v)) {
      EXPECT_EQ(b.tree().leaf_mod(v), a.tree().leaf_mod(v));
      const auto slot_b = static_cast<std::uint32_t>(b.tree().item_slot(v));
      EXPECT_EQ(b.items().at(slot_b).leaf, v);
    }
  }
}

TEST(Persistence, ServerImageRoundtripAndContinue) {
  CloudServer server;
  SystemRandom rnd;
  net::DirectChannel ch([&server](BytesView req) { return server.handle(req); });
  Client client(ch, rnd);

  std::vector<Bytes> items;
  for (int i = 0; i < 20; ++i) items.push_back(payload_for(i));
  auto fh = client.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());
  ASSERT_TRUE(client.erase_item(fh.value(), proto::ItemRef::id(3)));
  server.kv_put(7, 1, to_bytes("blob"));

  // "Crash": serialize, drop, reload.
  proto::Writer w;
  server.save(w);
  proto::Reader image_reader(w.data());
  auto reloaded = CloudServer::load(image_reader, CloudServer::Options{true});
  ASSERT_TRUE(reloaded.is_ok());
  CloudServer& server2 = *reloaded.value();

  // The client's master key is its own state; it continues seamlessly
  // against the restarted server.
  net::DirectChannel ch2(
      [&server2](BytesView req) { return server2.handle(req); });
  Client client2(ch2, rnd);
  client2.set_counter(client.counter());
  Client::FileHandle fh2;
  fh2.id = 1;
  fh2.key = fh.value().key.clone();

  for (std::uint64_t i = 0; i < 20; ++i) {
    if (i == 3) continue;
    auto got = client2.access(fh2, proto::ItemRef::id(i));
    ASSERT_TRUE(got.is_ok()) << i;
    EXPECT_EQ(got.value(), items[i]);
  }
  EXPECT_EQ(to_string(server2.kv_get(7, 1).value()), "blob");

  // Mutations continue to work after the restart.
  ASSERT_TRUE(client2.erase_item(fh2, proto::ItemRef::id(10)));
  auto id = client2.insert(fh2, payload_for(500));
  ASSERT_TRUE(id.is_ok());
  EXPECT_TRUE(client2.access(fh2, proto::ItemRef::id(id.value())).is_ok());
}

TEST(Persistence, FileRoundtripOnDisk) {
  CloudServer server;
  SystemRandom rnd;
  net::DirectChannel ch([&server](BytesView req) { return server.handle(req); });
  Client client(ch, rnd);
  auto fh = client.outsource(1, 8, [](std::size_t i) { return payload_for(i); });
  ASSERT_TRUE(fh.is_ok());

  const std::string path = ::testing::TempDir() + "/fgad_server_image.bin";
  ASSERT_TRUE(server.save_to_file(path));
  auto reloaded = CloudServer::load_from_file(path, CloudServer::Options{true});
  ASSERT_TRUE(reloaded.is_ok());
  EXPECT_TRUE(reloaded.value()->has_file(1));
  EXPECT_EQ(reloaded.value()->file(1)->item_count(), 8u);
  std::remove(path.c_str());
}

TEST(Persistence, CorruptImageRejected) {
  CloudServer server;
  proto::Writer w;
  server.save(w);
  Bytes img = w.data();

  // Bad magic.
  Bytes bad = img;
  bad[0] ^= 0xff;
  {
    proto::Reader r(bad);
    EXPECT_FALSE(CloudServer::load(r, {}).is_ok());
  }
  // Truncation at every 7th byte must fail, not crash.
  for (std::size_t keep = 0; keep < img.size(); keep += 7) {
    proto::Reader r(BytesView(img.data(), keep));
    EXPECT_FALSE(CloudServer::load(r, {}).is_ok()) << keep;
  }
}

TEST(Persistence, EmptyServerImage) {
  CloudServer server;
  proto::Writer w;
  server.save(w);
  proto::Reader r(w.data());
  auto reloaded = CloudServer::load(r, {});
  ASSERT_TRUE(reloaded.is_ok());
  EXPECT_TRUE(r.finish());
}

}  // namespace
}  // namespace fgad::cloud
