// Windowed time-series layer, SLO burn-rate tracking, and the sampling
// profiler (DESIGN.md §17).
//
// The rotation tick is driven by hand everywhere (never start()), so
// slot boundaries land exactly where each fixture says they do and the
// hand-computed burn rates below are exact, not racy approximations.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/http.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

namespace fgad {
namespace {

using obs::Histogram;
using obs::Registry;
using obs::SloTracker;
using obs::WindowedRegistry;

/// Small deterministic geometry: 1s ticks, 4 fine slots, 2 fine per
/// coarse slot, 3 coarse slots.
WindowedRegistry::Options small_geometry() {
  WindowedRegistry::Options o;
  o.interval_ns = 1'000'000'000;
  o.slots = 4;
  o.coarse_factor = 2;
  o.coarse_slots = 3;
  return o;
}

std::uint64_t slo_breach_events() {
  std::uint64_t n = 0;
  for (const auto& ev : obs::FlightRecorder::instance().snapshot()) {
    if (ev.type == obs::FrEvent::kSloBreach) {
      ++n;
    }
  }
  return n;
}

// ---- Snapshot algebra ------------------------------------------------------

TEST(SnapshotAlgebra, SubtractThenMergeRoundTrips) {
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.observe(1000);
  }
  const Histogram::Snapshot a = h.snapshot(/*with_buckets=*/true);
  for (int i = 0; i < 50; ++i) {
    h.observe(50'000);
  }
  const Histogram::Snapshot b = h.snapshot(/*with_buckets=*/true);

  // delta = b - a holds exactly the second batch.
  Histogram::Snapshot delta = b;
  delta.subtract(a);
  EXPECT_EQ(delta.count, 50u);
  EXPECT_EQ(delta.sum, 50u * 50'000u);

  // a + delta = b, bucket for bucket.
  Histogram::Snapshot merged = a;
  merged.merge(delta);
  EXPECT_EQ(merged.count, b.count);
  EXPECT_EQ(merged.sum, b.sum);
  ASSERT_EQ(merged.buckets.size(), b.buckets.size());
  for (std::size_t i = 0; i < merged.buckets.size(); ++i) {
    EXPECT_EQ(merged.buckets[i], b.buckets[i]) << "bucket " << i;
  }
  merged.recompute_quantiles();
  EXPECT_NEAR(merged.p50, b.p50, 1e-9);
}

TEST(SnapshotAlgebra, SubtractClampsAtZero) {
  Histogram h;
  h.observe(100);
  const Histogram::Snapshot small = h.snapshot(true);
  h.observe(100);
  const Histogram::Snapshot big = h.snapshot(true);

  Histogram::Snapshot s = small;
  s.subtract(big);  // subtracting a superset must clamp, not underflow
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  for (const std::uint64_t c : s.buckets) {
    EXPECT_EQ(c, 0u);
  }
}

TEST(SnapshotAlgebra, MergeWithBucketlessSides) {
  Histogram h;
  h.observe(500);
  Histogram::Snapshot with = h.snapshot(true);
  Histogram::Snapshot without = h.snapshot(false);
  EXPECT_TRUE(without.buckets.empty());

  // bucketless += bucketed adopts the buckets.
  Histogram::Snapshot a;
  a.merge(with);
  EXPECT_EQ(a.count, 1u);
  EXPECT_FALSE(a.buckets.empty());

  // bucketed += bucketless keeps its own buckets and adds the counts.
  with.merge(without);
  EXPECT_EQ(with.count, 2u);
}

// ---- windowed registry -----------------------------------------------------

TEST(WindowedRegistryTest, CounterSlotRotationAcrossBoundaries) {
  WindowedRegistry& w = WindowedRegistry::instance();
  w.configure(small_geometry());
  obs::Counter& c = Registry::instance().counter("fgad_test_ts_rot_total");
  const std::uint64_t base = c.value();
  (void)base;

  w.tick();  // baseline: pre-existing value must not land in any slot
  EXPECT_EQ(w.ticks(), 1u);

  c.inc(5);
  w.tick();  // slot 1: delta 5
  c.inc(3);
  w.tick();  // slot 2: delta 3

  auto w1 = w.counter_window("fgad_test_ts_rot_total", 1);
  ASSERT_TRUE(w1.has_value());
  EXPECT_EQ(w1->delta, 3u);
  EXPECT_DOUBLE_EQ(w1->covered_s, 1.0);
  EXPECT_DOUBLE_EQ(w1->rate_per_s, 3.0);

  auto w2 = w.counter_window("fgad_test_ts_rot_total", 2);
  ASSERT_TRUE(w2.has_value());
  EXPECT_EQ(w2->delta, 8u);

  // Window larger than history: clamped to what the ring has seen.
  auto w4 = w.counter_window("fgad_test_ts_rot_total", 4);
  ASSERT_TRUE(w4.has_value());
  EXPECT_EQ(w4->delta, 8u);
  EXPECT_DOUBLE_EQ(w4->covered_s, 3.0);

  // Wrap the 4-slot ring: old deltas must age out.
  for (int i = 0; i < 4; ++i) {
    w.tick();
  }
  auto w1b = w.counter_window("fgad_test_ts_rot_total", 2);
  ASSERT_TRUE(w1b.has_value());
  EXPECT_EQ(w1b->delta, 0u);
}

TEST(WindowedRegistryTest, CoarseRingServesLongWindows) {
  WindowedRegistry& w = WindowedRegistry::instance();
  w.configure(small_geometry());  // 4 fine slots; >4s must go coarse
  obs::Counter& c = Registry::instance().counter("fgad_test_ts_coarse_total");

  w.tick();  // baseline (tick 1)
  c.inc(5);
  w.tick();  // tick 2 closes coarse group 0 with delta 5
  c.inc(3);
  w.tick();  // tick 3: open coarse group holds 3

  auto big = w.counter_window("fgad_test_ts_coarse_total", 100);
  ASSERT_TRUE(big.has_value());
  // 1 closed coarse group (5) + the open group (3).
  EXPECT_EQ(big->delta, 8u);
  EXPECT_DOUBLE_EQ(big->covered_s, 3.0);  // 1 group × 2s + 1 partial fine

  // Fill enough groups to wrap the 3-slot coarse ring.
  for (int g = 0; g < 4; ++g) {
    c.inc(10);
    w.tick();
    w.tick();
  }
  auto after = w.counter_window("fgad_test_ts_coarse_total", 100);
  ASSERT_TRUE(after.has_value());
  // Only the 3 newest coarse groups survive the wrap.
  EXPECT_LE(after->delta, 40u);
  EXPECT_GT(after->delta, 0u);
}

TEST(WindowedRegistryTest, HistogramWindowQuantilesFromDeltas) {
  WindowedRegistry& w = WindowedRegistry::instance();
  w.configure(small_geometry());
  Histogram& h = Registry::instance().histogram("fgad_test_ts_hist_ns");

  // Pre-baseline samples must not appear in any window.
  for (int i = 0; i < 1000; ++i) {
    h.observe(100);
  }
  w.tick();

  for (int i = 0; i < 200; ++i) {
    h.observe(8000);
  }
  w.tick();

  auto hw = w.histogram_window("fgad_test_ts_hist_ns", 1);
  ASSERT_TRUE(hw.has_value());
  EXPECT_EQ(hw->delta.count, 200u);
  EXPECT_EQ(hw->delta.sum, 200u * 8000u);
  // All window samples are 8000ns; quantile error ≤ 1/16 relative.
  EXPECT_NEAR(hw->delta.p50, 8000, 8000.0 / 8);
  EXPECT_NEAR(hw->delta.p99, 8000, 8000.0 / 8);
  EXPECT_DOUBLE_EQ(hw->rate_per_s, 200.0);
}

TEST(WindowedRegistryTest, GaugeWindowAveragesSlots) {
  WindowedRegistry& w = WindowedRegistry::instance();
  w.configure(small_geometry());
  obs::Gauge& g = Registry::instance().gauge("fgad_test_ts_gauge");

  g.set(10);
  w.tick();
  g.set(20);
  w.tick();
  g.set(40);
  w.tick();

  auto gw = w.gauge_window("fgad_test_ts_gauge", 2);
  ASSERT_TRUE(gw.has_value());
  EXPECT_EQ(gw->last, 40);
  EXPECT_DOUBLE_EQ(gw->avg, 30.0);  // slots hold 20 and 40
}

TEST(WindowedRegistryTest, RenderVarsJsonListsInstruments) {
  WindowedRegistry& w = WindowedRegistry::instance();
  w.configure(small_geometry());
  obs::Counter& c = Registry::instance().counter("fgad_test_ts_json_total");
  Histogram& h = Registry::instance().histogram("fgad_test_ts_json_ns");
  w.tick();
  c.inc(7);
  h.observe(12345);
  w.tick();

  const std::string json = w.render_vars_json(60);
  EXPECT_NE(json.find("\"fgad_test_ts_json_total\":{\"delta\":7"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"fgad_test_ts_json_ns\":{\"count\":1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"window_s\":60"), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\":"), std::string::npos);
}

// ---- SLO burn rates --------------------------------------------------------

TEST(SloTrackerTest, LatencyBurnRateMatchesHandComputedFixture) {
  WindowedRegistry& w = WindowedRegistry::instance();
  w.configure(small_geometry());
  SloTracker& slo = SloTracker::instance();

  SloTracker::Objective o;
  o.name = "fixture_lat";
  o.kind = SloTracker::Kind::kLatency;
  o.metric = "fgad_test_slo_lat_ns";
  o.target_quantile = 0.9;   // budget = 0.1
  o.threshold_ns = 1'000'000;
  o.burn_threshold = 1.5;    // clear margin above the burn-1.0 phase
  o.short_window_s = 2;
  o.long_window_s = 4;
  slo.configure({o});

  Histogram& h = Registry::instance().histogram("fgad_test_slo_lat_ns");
  w.tick();  // baseline

  // 90 good + 10 bad → bad_fraction 0.1 → burn 0.1/0.1 = 1.0, under the
  // 1.5 breach threshold: no breach.
  for (int i = 0; i < 90; ++i) {
    h.observe(100'000);
  }
  for (int i = 0; i < 10; ++i) {
    h.observe(16'000'000);
  }
  w.tick();
  slo.evaluate();
  auto st = slo.status("fixture_lat");
  ASSERT_TRUE(st.has_value());
  EXPECT_NEAR(st->short_burn, 1.0, 1e-9);
  EXPECT_FALSE(st->breached);
  EXPECT_EQ(st->breaches, 0u);

  // 50 more bad samples: window bad_fraction = 60/150 = 0.4 → burn 4.0.
  const std::uint64_t events_before = slo_breach_events();
  obs::Counter& breach_counter =
      Registry::instance().counter("fgad_slo_fixture_lat_breaches_total");
  const std::uint64_t counter_before = breach_counter.value();
  for (int i = 0; i < 50; ++i) {
    h.observe(16'000'000);
  }
  w.tick();
  slo.evaluate();
  st = slo.status("fixture_lat");
  ASSERT_TRUE(st.has_value());
  EXPECT_NEAR(st->short_burn, 4.0, 1e-9);
  EXPECT_TRUE(st->breached);
  EXPECT_EQ(st->breaches, 1u);
  EXPECT_EQ(breach_counter.value(), counter_before + 1);
  EXPECT_EQ(slo_breach_events(), events_before + 1);

  // Still breaching on the next evaluation: the edge counter must not
  // double-count a continuing breach.
  w.tick();
  slo.evaluate();
  st = slo.status("fixture_lat");
  EXPECT_EQ(st->breaches, 1u);
  EXPECT_EQ(slo_breach_events(), events_before + 1);

  // Let the short window age past the spike: breach clears (the long
  // window may still burn, but breach requires BOTH).
  w.tick();
  w.tick();
  slo.evaluate();
  st = slo.status("fixture_lat");
  EXPECT_FALSE(st->breached);
  EXPECT_EQ(st->consecutive, 0u);

  slo.clear();
}

TEST(SloTrackerTest, ErrorRatioBurnFixture) {
  WindowedRegistry& w = WindowedRegistry::instance();
  w.configure(small_geometry());
  SloTracker& slo = SloTracker::instance();

  SloTracker::Objective o;
  o.name = "fixture_err";
  o.kind = SloTracker::Kind::kErrorRatio;
  o.metric = "fgad_test_slo_err_total";
  o.total_metric = "fgad_test_slo_req_total";
  o.max_error_rate = 0.01;  // 1%
  o.short_window_s = 2;
  o.long_window_s = 4;
  o.burn_threshold = 2.0;
  slo.configure({o});

  obs::Counter& err = Registry::instance().counter("fgad_test_slo_err_total");
  obs::Counter& req = Registry::instance().counter("fgad_test_slo_req_total");
  w.tick();  // baseline

  // 4 errors in 100 requests = 4% = burn 4.0 > 2.0 on both windows.
  req.inc(100);
  err.inc(4);
  w.tick();
  slo.evaluate();
  auto st = slo.status("fixture_err");
  ASSERT_TRUE(st.has_value());
  EXPECT_NEAR(st->short_burn, 4.0, 1e-9);
  EXPECT_NEAR(st->long_burn, 4.0, 1e-9);
  EXPECT_TRUE(st->breached);

  slo.clear();
}

TEST(SloTrackerTest, SustainedBreachFlipsOverloadReadiness) {
  WindowedRegistry& w = WindowedRegistry::instance();
  w.configure(small_geometry());
  SloTracker& slo = SloTracker::instance();

  SloTracker::Objective o;
  o.name = "fixture_gauge";
  o.kind = SloTracker::Kind::kGaugeAbove;
  o.metric = "fgad_test_slo_paused";
  o.threshold_ns = 1;  // avg >= 1 paused connection burns
  o.short_window_s = 1;
  o.long_window_s = 2;
  slo.configure({o});
  slo.set_overload_evals(2);

  obs::Gauge& g = Registry::instance().gauge("fgad_test_slo_paused");
  g.set(3);
  w.tick();
  slo.evaluate();
  // One breaching evaluation: not yet sustained.
  EXPECT_FALSE(slo.overloaded());
  EXPECT_TRUE(obs::Readiness::instance().ready());

  w.tick();
  slo.evaluate();
  EXPECT_TRUE(slo.overloaded());
  EXPECT_FALSE(obs::Readiness::instance().ready());
  EXPECT_NE(obs::Readiness::instance().render_json().find("fixture_gauge"),
            std::string::npos);

  // Recovery: gauge drops, the next evaluation clears the condition.
  g.set(0);
  w.tick();
  slo.evaluate();
  EXPECT_FALSE(slo.overloaded());
  EXPECT_TRUE(obs::Readiness::instance().ready());

  slo.clear();
}

TEST(SloTrackerTest, TickHookDrivesEvaluation) {
  WindowedRegistry& w = WindowedRegistry::instance();
  w.configure(small_geometry());
  SloTracker& slo = SloTracker::instance();

  SloTracker::Objective o;
  o.name = "fixture_hook";
  o.kind = SloTracker::Kind::kErrorRatio;
  o.metric = "fgad_test_slo_hook_err_total";
  o.total_metric = "fgad_test_slo_hook_req_total";
  o.max_error_rate = 0.01;
  o.short_window_s = 1;
  o.long_window_s = 2;
  slo.configure({o});
  slo.attach();

  obs::Counter& err =
      Registry::instance().counter("fgad_test_slo_hook_err_total");
  obs::Counter& req =
      Registry::instance().counter("fgad_test_slo_hook_req_total");
  w.tick();
  req.inc(10);
  err.inc(10);
  w.tick();  // hook runs evaluate() with the fresh window
  auto st = slo.status("fixture_hook");
  ASSERT_TRUE(st.has_value());
  EXPECT_TRUE(st->breached);

  w.set_tick_hook({});
  slo.clear();
}

TEST(SloTrackerTest, ParseSpecRoundTrip) {
  auto lat = SloTracker::parse("del_p99:latency:fgad_x_ns:0.99:5000000:2.5");
  ASSERT_TRUE(lat.is_ok()) << lat.status().to_string();
  EXPECT_EQ(lat.value().name, "del_p99");
  EXPECT_EQ(lat.value().kind, SloTracker::Kind::kLatency);
  EXPECT_EQ(lat.value().threshold_ns, 5'000'000u);
  EXPECT_DOUBLE_EQ(lat.value().target_quantile, 0.99);
  EXPECT_DOUBLE_EQ(lat.value().burn_threshold, 2.5);

  auto err = SloTracker::parse("errs:error_ratio:fgad_e_total:fgad_t_total:0.001");
  ASSERT_TRUE(err.is_ok());
  EXPECT_EQ(err.value().total_metric, "fgad_t_total");

  auto gauge = SloTracker::parse("bp:gauge_above:fgad_g:1");
  ASSERT_TRUE(gauge.is_ok());
  EXPECT_EQ(gauge.value().kind, SloTracker::Kind::kGaugeAbove);

  EXPECT_FALSE(SloTracker::parse("nope").is_ok());
  EXPECT_FALSE(SloTracker::parse("x:latency:h:1.5:100").is_ok());
  EXPECT_FALSE(SloTracker::parse("x:latency:h:0.99:zero").is_ok());
  EXPECT_FALSE(SloTracker::parse("x:unknown_kind:h:1").is_ok());

  // The stock server set parses into evaluable objectives.
  EXPECT_GE(SloTracker::default_server_objectives().size(), 3u);
}

// ---- concurrency hammer (TSan target) --------------------------------------

TEST(WindowedHammer, ConcurrentRecordAndRotate) {
  WindowedRegistry& w = WindowedRegistry::instance();
  w.configure(small_geometry());
  obs::Counter& c = Registry::instance().counter("fgad_test_hammer_total");
  Histogram& h = Registry::instance().histogram("fgad_test_hammer_ns");

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.inc();
        h.observe(1000 + (c.value() & 0xFFF));
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)w.counter_window("fgad_test_hammer_total", 2);
      (void)w.histogram_window("fgad_test_hammer_ns", 2);
      (void)w.render_vars_json(3);
    }
  });
  for (int i = 0; i < 200; ++i) {
    w.tick();
  }
  stop.store(true);
  for (auto& t : writers) {
    t.join();
  }
  reader.join();

  // Sanity: total of all per-slot deltas never exceeds the live counter.
  auto win = w.counter_window("fgad_test_hammer_total", 1000);
  ASSERT_TRUE(win.has_value());
  EXPECT_LE(win->delta, c.value());
}

// ---- endpoints -------------------------------------------------------------

std::string http_get_raw(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  (void)!::send(fd, req.data(), req.size(), 0);
  std::string resp;
  char buf[4096];
  ssize_t r;
  while ((r = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  return resp;
}

TEST(VarsEndpoint, VarsJsonAndReadyzServed) {
  WindowedRegistry& w = WindowedRegistry::instance();
  w.configure(small_geometry());
  obs::Counter& c = Registry::instance().counter("fgad_test_ep_total");
  w.tick();
  c.inc(3);
  w.tick();

  auto server = obs::MetricsHttpServer::create(0);
  ASSERT_TRUE(server.is_ok());
  const std::uint16_t port = server.value()->port();

  const std::string vars = http_get_raw(port, "/vars.json?window=60s");
  EXPECT_NE(vars.find("200 OK"), std::string::npos);
  EXPECT_NE(vars.find("\"fgad_test_ep_total\":{\"delta\":3"),
            std::string::npos)
      << vars;
  EXPECT_NE(vars.find("\"slo\":{"), std::string::npos);

  // Liveness stays green while readiness is blocked.
  EXPECT_NE(http_get_raw(port, "/healthz").find("200 OK"), std::string::npos);
  EXPECT_NE(http_get_raw(port, "/readyz").find("200 OK"), std::string::npos);
  {
    obs::Readiness::Block blk("test-block", "unit test in progress");
    const std::string notready = http_get_raw(port, "/readyz");
    EXPECT_NE(notready.find("503"), std::string::npos);
    EXPECT_NE(notready.find("\"test-block\":\"unit test in progress\""),
              std::string::npos)
        << notready;
    EXPECT_NE(http_get_raw(port, "/healthz").find("200 OK"),
              std::string::npos);
  }
  EXPECT_NE(http_get_raw(port, "/readyz").find("200 OK"), std::string::npos);
  server.value()->stop();
}

// ---- profiler --------------------------------------------------------------

// Forked so the SIGPROF timer, handler, and sample ring cannot leak into
// other tests (flight_recorder_test uses the same idiom for its signal
// paths). The child busy-loops one thread, captures 300ms of CPU
// profile, and exits 0 only if the folded output has a counted stack.
TEST(ProfilerSmoke, ForkedCaptureYieldsFoldedStacks) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    std::atomic<bool> stop{false};
    std::thread burner([&] {
      volatile std::uint64_t x = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        x = x * 2862933555777941757ull + 3037000493ull;
      }
    });
    obs::Profiler::Options opts;
    opts.interval_us = 997;
    const std::string folded = obs::Profiler::capture_folded(0.3, opts);
    stop.store(true);
    burner.join();

    // "frame;frame count\n" — at least one line ending in a space-count,
    // and not the error/no-samples comment.
    bool ok = !folded.empty() && folded[0] != '#';
    if (ok) {
      const std::size_t nl = folded.find('\n');
      const std::string line = folded.substr(0, nl);
      const std::size_t sp = line.rfind(' ');
      ok = sp != std::string::npos && sp + 1 < line.size() &&
           std::strtoull(line.c_str() + sp + 1, nullptr, 10) > 0;
    }
    _exit(ok ? 0 : 1);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "child saw no folded stacks";
}

TEST(ProfilerSmoke, StartTwiceRejectedAndStopIdempotent) {
  obs::Profiler& p = obs::Profiler::instance();
  obs::Profiler::Options opts;
  opts.interval_us = 10'000;
  ASSERT_TRUE(p.start(opts).is_ok());
  EXPECT_FALSE(p.start(opts).is_ok());
  p.stop();
  p.stop();
  EXPECT_FALSE(p.running());
}

}  // namespace
}  // namespace fgad
