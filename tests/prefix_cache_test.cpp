// PrefixCache equivalence: cached path-prefix derivation must return exactly
// the key the scalar ClientMath::derive_key returns, across randomized
// outsource → delete → insert → (rebalancing) sequences, provided the cache
// is invalidated whenever the master key or tree structure changes — the same
// rule Client follows. Also regression-tests the invalidation contract: after
// a delete re-keys the file, a stale cache would reproduce old-master chain
// values, so invalidate() must restore correctness.
#include <gtest/gtest.h>

#include <unordered_map>

#include "core/prefix_cache.h"
#include "support/harness.h"

namespace fgad {
namespace {

using core::NodeId;
using core::PrefixCache;
using crypto::HashAlg;
using crypto::Md;

// Checks every live item's key via the cache against the harness's scalar
// derivation (and the key remembered at creation time — Theorem 1).
void expect_cache_matches_scalar(test::Harness& h, PrefixCache& cache) {
  const auto& tree = h.store().tree();
  for (std::uint64_t id : h.live_ids()) {
    auto slot = h.store().items().find(id);
    ASSERT_TRUE(slot.has_value());
    const NodeId leaf = h.store().items().at(*slot).leaf;
    const Md cached = cache.derive_key(h.math().chain(), h.master().value(),
                                       tree.path_to(leaf),
                                       tree.leaf_mod(leaf));
    ASSERT_EQ(cached, h.key_of(leaf)) << "item " << id;
    ASSERT_EQ(cached, h.expected_key(id)) << "item " << id;
  }
}

TEST(PrefixCache, MatchesScalarOnStaticFile) {
  test::Harness h;
  h.outsource(200);
  PrefixCache cache;
  // Two passes: the first populates, the second must hit and still agree.
  expect_cache_matches_scalar(h, cache);
  const std::uint64_t misses = cache.misses();
  expect_cache_matches_scalar(h, cache);
  EXPECT_EQ(cache.misses(), misses) << "second pass should be all hits";
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.hash_steps_saved(), 0u);
}

TEST(PrefixCache, RandomizedDeleteInsertSequence) {
  // Deletions exercise the paper's swap-with-last rebalancing and re-key the
  // whole file; insertions split a leaf. Both restructure paths, so the
  // client invalidates after each mutation — keys must then match the scalar
  // derivation everywhere, every time.
  test::Harness h(HashAlg::kSha1, /*seed=*/1234);
  h.outsource(64);
  PrefixCache cache;
  expect_cache_matches_scalar(h, cache);

  std::uint64_t next_payload = 1000;
  crypto::DeterministicRandom op_rnd(99);
  for (int step = 0; step < 60; ++step) {
    const auto ids = h.live_ids();
    const bool do_delete = !ids.empty() && (op_rnd.random_u64() % 3 != 0);
    if (do_delete) {
      const std::uint64_t victim = ids[op_rnd.random_u64() % ids.size()];
      ASSERT_TRUE(h.erase(victim)) << "step " << step;
    } else {
      ASSERT_TRUE(h.insert(test::payload_for(next_payload++)).is_ok())
          << "step " << step;
    }
    cache.invalidate();
    EXPECT_EQ(cache.size(), 0u);
    expect_cache_matches_scalar(h, cache);
  }
  h.verify_all();
}

TEST(PrefixCache, StaleCacheAfterRekeyIsWrongUntilInvalidated) {
  // Regression for the invalidation contract. Warm the cache, delete an item
  // (which rotates the master key), and derive again WITHOUT invalidating:
  // for an item whose cached ancestor survived, the stale chain value yields
  // the old key, not the new one. invalidate() restores agreement.
  test::Harness h(HashAlg::kSha1, /*seed=*/7);
  h.outsource(128);
  PrefixCache cache;
  expect_cache_matches_scalar(h, cache);

  const auto ids = h.live_ids();
  ASSERT_TRUE(h.erase(ids[3]));

  const auto& tree = h.store().tree();
  bool saw_stale_mismatch = false;
  for (std::uint64_t id : h.live_ids()) {
    auto slot = h.store().items().find(id);
    ASSERT_TRUE(slot.has_value());
    const NodeId leaf = h.store().items().at(*slot).leaf;
    const Md stale = cache.derive_key(h.math().chain(), h.master().value(),
                                      tree.path_to(leaf), tree.leaf_mod(leaf));
    if (stale != h.key_of(leaf)) {
      saw_stale_mismatch = true;
    }
  }
  ASSERT_TRUE(saw_stale_mismatch)
      << "a warm cache must go stale after re-key, or this test is vacuous";

  cache.invalidate();
  expect_cache_matches_scalar(h, cache);
  h.verify_all();
}

TEST(PrefixCache, SingleItemAccessIsAmortizedConstant) {
  // After one warm derivation, re-deriving the same leaf hashes only the
  // final leaf-modulator step: the whole internal path is cached.
  test::Harness h(HashAlg::kSha1, /*seed=*/3);
  h.outsource(1 << 10);
  const auto& tree = h.store().tree();
  auto slot = h.store().items().find(17);
  ASSERT_TRUE(slot.has_value());
  const NodeId leaf = h.store().items().at(*slot).leaf;

  PrefixCache cache;
  (void)cache.derive_key(h.math().chain(), h.master().value(),
                         tree.path_to(leaf), tree.leaf_mod(leaf));
  const std::uint64_t saved_before = cache.hash_steps_saved();
  const Md again = cache.derive_key(h.math().chain(), h.master().value(),
                                    tree.path_to(leaf), tree.leaf_mod(leaf));
  EXPECT_EQ(again, h.key_of(leaf));
  // The repeat walk found the deepest path node cached: it skipped the whole
  // internal path (depth = path length) and performed exactly one hash.
  EXPECT_EQ(cache.hash_steps_saved() - saved_before,
            tree.path_to(leaf).depth());
}

}  // namespace
}  // namespace fgad
