// Decoder robustness fuzzing: random and mutated byte strings fed to every
// wire decoder, the server dispatcher, the proxy, and the persistence
// loaders must fail cleanly (no crash, no hang, no accidental success on
// garbage).
#include <gtest/gtest.h>

#include "cloud/server.h"
#include "fskeys/meta.h"
#include "fskeys/proxy.h"
#include "support/harness.h"

namespace fgad {
namespace {

Bytes random_bytes(Xoshiro256& rng, std::size_t max_len) {
  Bytes b(rng.next_below(max_len + 1));
  rng.fill(b);
  return b;
}

TEST(DecodeFuzz, MessageDecodersSurviveRandomBytes) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 3000; ++i) {
    const Bytes junk = random_bytes(rng, 200);
    proto::Reader r1(junk);
    (void)proto::decode_path(r1);
    proto::Reader r2(junk);
    (void)proto::decode_delete_info(r2);
    proto::Reader r3(junk);
    (void)proto::decode_delete_commit(r3);
    proto::Reader r4(junk);
    (void)proto::decode_insert_commit(r4);
    proto::Reader r5(junk);
    (void)proto::decode_access_info(r5);
    proto::Reader r6(junk);
    (void)proto::AuditResp::from(r6);
    proto::Reader r7(junk);
    (void)proto::OutsourceReq::from(r7);
    proto::Reader r8(junk);
    (void)proto::decode_delete_many_info(r8);
    proto::Reader r9(junk);
    (void)proto::decode_delete_many_commit(r9);
    proto::Reader r10(junk);
    (void)proto::DeleteManyBeginReq::from(r10);
    proto::Reader r11(junk);
    (void)proto::ReplAppend::from(r11);
    proto::Reader r12(junk);
    (void)proto::ReplAck::from(r12);
    proto::Reader r13(junk);
    (void)proto::ReplSnapshot::from(r13);
    proto::Reader r14(junk);
    (void)proto::ReplHeartbeat::from(r14);
  }
  SUCCEED();
}

TEST(DecodeFuzz, ServerDispatcherSurvivesRandomFrames) {
  cloud::CloudServer server;
  Xoshiro256 rng(2);
  for (int i = 0; i < 2000; ++i) {
    Bytes junk = random_bytes(rng, 120);
    const Bytes resp = server.handle(junk);
    // Every response must itself be a well-formed frame.
    EXPECT_TRUE(proto::open_message(resp).is_ok());
  }
}

TEST(DecodeFuzz, ServerSurvivesTypedGarbagePayloads) {
  cloud::CloudServer server;
  Xoshiro256 rng(3);
  // Valid message types with random payloads.
  const proto::MsgType types[] = {
      proto::MsgType::kOutsourceReq,   proto::MsgType::kAccessReq,
      proto::MsgType::kModifyReq,      proto::MsgType::kDeleteBeginReq,
      proto::MsgType::kDeleteCommitReq, proto::MsgType::kInsertBeginReq,
      proto::MsgType::kInsertCommitReq, proto::MsgType::kFetchTreeReq,
      proto::MsgType::kFetchItemsReq,  proto::MsgType::kAuditReq,
      proto::MsgType::kKvPutBatchReq,  proto::MsgType::kStatReq,
      proto::MsgType::kDeleteManyBeginReq,
      proto::MsgType::kDeleteManyCommitReq,
      // Replication control plane: CloudServer answers kUnsupported, but
      // must never crash on a garbage Repl* payload.
      proto::MsgType::kReplAppend,     proto::MsgType::kReplAck,
      proto::MsgType::kReplSnapshot,   proto::MsgType::kReplHeartbeat,
  };
  for (int i = 0; i < 2000; ++i) {
    const auto type = types[rng.next_below(std::size(types))];
    const Bytes frame = proto::seal_message(type, random_bytes(rng, 100));
    const Bytes resp = server.handle(frame);
    auto env = proto::open_message(resp);
    ASSERT_TRUE(env.is_ok());
  }
}

TEST(DecodeFuzz, ProxySurvivesRandomFrames) {
  cloud::CloudServer server;
  net::DirectChannel cloud_ch(
      [&server](BytesView req) { return server.handle(req); });
  crypto::SystemRandom rnd;
  client::Client client(cloud_ch, rnd);
  fskeys::FileSystemClient fs(client, 1);
  ASSERT_TRUE(fs.init());
  fskeys::KeyProxy proxy(fs);
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const Bytes resp = proxy.handle(random_bytes(rng, 100));
    EXPECT_TRUE(proto::open_message(resp).is_ok());
  }
}

TEST(DecodeFuzz, MutatedValidFramesRejectedCleanly) {
  // Take real protocol frames and flip bytes: the server must answer every
  // mutant with a frame (error or success), never crash.
  cloud::CloudServer server;
  net::DirectChannel ch([&server](BytesView req) { return server.handle(req); });
  crypto::SystemRandom rnd;
  client::Client client(ch, rnd);
  auto fh = client.outsource(1, 8,
                             [](std::size_t i) { return test::payload_for(i); });
  ASSERT_TRUE(fh.is_ok());

  proto::AccessReq areq;
  areq.file_id = 1;
  areq.ref = proto::ItemRef::id(2);
  const Bytes base = areq.to_frame();
  Xoshiro256 rng(5);
  for (int i = 0; i < 1500; ++i) {
    Bytes mutant = base;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutant[rng.next_below(mutant.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    const Bytes resp = server.handle(mutant);
    EXPECT_TRUE(proto::open_message(resp).is_ok());
  }
}

TEST(DecodeFuzz, TreeDeserializerSurvivesMutants) {
  test::Harness h(crypto::HashAlg::kSha1, 6);
  h.outsource(20);
  proto::Writer w;
  h.store().tree().serialize(w);
  const Bytes base = w.data();
  Xoshiro256 rng(6);
  int accepted = 0;
  for (int i = 0; i < 800; ++i) {
    Bytes mutant = base;
    if (rng.next_below(4) == 0 && mutant.size() > 2) {
      mutant.resize(rng.next_below(mutant.size()));  // truncate
    } else {
      mutant[rng.next_below(mutant.size())] ^= 0xff;
    }
    proto::Reader r(mutant);
    auto tree = core::ModulationTree::deserialize(
        r, core::ModulationTree::Config{crypto::HashAlg::kSha1, false});
    if (tree.is_ok() && r.finish()) {
      ++accepted;  // flipped a modulator byte: structurally still valid
    }
  }
  // Structural mutations must be rejected; only content flips may pass.
  SUCCEED() << accepted << " content-only mutants accepted";
}

TEST(DecodeFuzz, ServerImageLoaderSurvivesMutants) {
  cloud::CloudServer server;
  crypto::SystemRandom rnd;
  net::DirectChannel ch([&server](BytesView req) { return server.handle(req); });
  client::Client client(ch, rnd);
  ASSERT_TRUE(client
                  .outsource(1, 6,
                             [](std::size_t i) { return test::payload_for(i); })
                  .is_ok());
  server.kv_put(2, 1, to_bytes("blob"));
  proto::Writer w;
  server.save(w);
  const Bytes base = w.data();
  Xoshiro256 rng(7);
  for (int i = 0; i < 400; ++i) {
    Bytes mutant = base;
    if (rng.next_below(3) == 0) {
      mutant.resize(rng.next_below(mutant.size()));
    } else {
      mutant[rng.next_below(mutant.size())] ^= 0x10;
    }
    proto::Reader r(mutant);
    (void)cloud::CloudServer::load(r, {});  // must not crash
  }
  SUCCEED();
}

}  // namespace
}  // namespace fgad
