// Section III baselines: correctness and the complexity trade-offs that
// motivate key modulation (Table I / Table II shapes).
#include <gtest/gtest.h>

#include "baselines/individual_key.h"
#include "baselines/master_key.h"
#include "client/client.h"
#include "cloud/server.h"
#include "support/harness.h"

namespace fgad::baselines {
namespace {

using cloud::CloudServer;
using crypto::HashAlg;
using crypto::SystemRandom;
using test::payload_for;

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest()
      : direct_([this](BytesView req) { return server_.handle(req); }),
        counting_(direct_) {}

  CloudServer server_;
  net::DirectChannel direct_;
  net::CountingChannel counting_;
  SystemRandom rnd_;
};

TEST_F(BaselineTest, MasterKeyRoundtrip) {
  MasterKeySolution sol(counting_, rnd_, HashAlg::kSha1, 1);
  ASSERT_TRUE(sol.outsource(20, [](std::size_t i) { return payload_for(i); }));
  EXPECT_EQ(sol.item_count(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    auto got = sol.access(i);
    ASSERT_TRUE(got.is_ok()) << i;
    EXPECT_EQ(got.value(), payload_for(i));
  }
  EXPECT_EQ(sol.client_storage_bytes(), 16u);
}

TEST_F(BaselineTest, MasterKeyDeleteReindexes) {
  MasterKeySolution sol(counting_, rnd_, HashAlg::kSha1, 1);
  ASSERT_TRUE(sol.outsource(10, [](std::size_t i) { return payload_for(i); }));
  ASSERT_TRUE(sol.erase_item(4));
  EXPECT_EQ(sol.item_count(), 9u);
  // Items after the victim shift down by one.
  for (std::uint64_t i = 0; i < 9; ++i) {
    auto got = sol.access(i);
    ASSERT_TRUE(got.is_ok()) << i;
    EXPECT_EQ(got.value(), payload_for(i < 4 ? i : i + 1));
  }
  EXPECT_EQ(server_.kv_size(1), 9u);
}

TEST_F(BaselineTest, MasterKeyDeleteFirstAndLast) {
  MasterKeySolution sol(counting_, rnd_, HashAlg::kSha1, 1);
  ASSERT_TRUE(sol.outsource(5, [](std::size_t i) { return payload_for(i); }));
  ASSERT_TRUE(sol.erase_item(0));
  ASSERT_TRUE(sol.erase_item(3));  // was item 4
  EXPECT_EQ(sol.item_count(), 3u);
  EXPECT_EQ(sol.access(0).value(), payload_for(1));
  EXPECT_EQ(sol.access(2).value(), payload_for(3));
}

// The defining property: master-key deletion moves O(n) bytes.
TEST_F(BaselineTest, MasterKeyDeleteCommIsLinear) {
  MasterKeySolution sol(counting_, rnd_, HashAlg::kSha1, 1);
  const std::size_t n = 200;
  ASSERT_TRUE(sol.outsource(n, [](std::size_t i) { return payload_for(i); }));
  counting_.reset();
  ASSERT_TRUE(sol.erase_item(n / 2));
  // Roughly 2 * (n-1) * sealed_size(24) bytes; at least n * item size.
  EXPECT_GT(counting_.total_bytes(), n * 24u);
}

TEST_F(BaselineTest, IndividualKeyRoundtrip) {
  IndividualKeySolution sol(counting_, rnd_, HashAlg::kSha1, 2);
  ASSERT_TRUE(sol.outsource(20, [](std::size_t i) { return payload_for(i); }));
  for (std::uint64_t i = 0; i < 20; ++i) {
    auto got = sol.access(i);
    ASSERT_TRUE(got.is_ok()) << i;
    EXPECT_EQ(got.value(), payload_for(i));
  }
  // O(n) client storage: 20 keys of 16 bytes.
  EXPECT_EQ(sol.client_storage_bytes(), 320u);
}

TEST_F(BaselineTest, IndividualKeyDeleteIsO1AndFinal) {
  IndividualKeySolution sol(counting_, rnd_, HashAlg::kSha1, 2);
  ASSERT_TRUE(sol.outsource(50, [](std::size_t i) { return payload_for(i); }));
  counting_.reset();
  ASSERT_TRUE(sol.erase_item(7));
  // O(1): one tiny request/response pair.
  EXPECT_LT(counting_.total_bytes(), 100u);
  EXPECT_FALSE(sol.key_alive(7));
  EXPECT_EQ(sol.access(7).code(), Errc::kNotFound);
  EXPECT_EQ(sol.erase_item(7).code(), Errc::kNotFound);
  // Others unaffected.
  EXPECT_TRUE(sol.access(6).is_ok());
  EXPECT_TRUE(sol.access(8).is_ok());
  EXPECT_EQ(sol.item_count(), 49u);
}

// Key deletion alone kills the data even if the server keeps the blob.
TEST_F(BaselineTest, IndividualKeyDeadWithoutServerCooperation) {
  IndividualKeySolution sol(counting_, rnd_, HashAlg::kSha1, 2);
  ASSERT_TRUE(sol.outsource(5, [](std::size_t i) { return payload_for(i); }));
  // Malicious server: re-insert the ciphertext after the delete request.
  const Bytes kept = server_.kv_get(2, 3).value();
  ASSERT_TRUE(sol.erase_item(3));
  server_.kv_put(2, 3, kept);  // server "undeletes" the blob
  // The key is gone client-side; access refuses.
  EXPECT_EQ(sol.access(3).code(), Errc::kNotFound);
}

// Head-to-head shape of Table II on a small instance: our scheme's deletion
// moves O(log n) bytes, master-key moves O(n), individual-key moves O(1)
// but stores O(n) keys.
TEST_F(BaselineTest, TableTwoShapeHolds) {
  const std::size_t n = 256;
  // Master-key baseline.
  std::uint64_t mk_bytes;
  {
    MasterKeySolution sol(counting_, rnd_, HashAlg::kSha1, 10);
    ASSERT_TRUE(
        sol.outsource(n, [](std::size_t i) { return payload_for(i); }));
    counting_.reset();
    ASSERT_TRUE(sol.erase_item(n / 2));
    mk_bytes = counting_.total_bytes();
    EXPECT_EQ(sol.client_storage_bytes(), 16u);
  }
  // Individual-key baseline.
  std::uint64_t ik_bytes;
  std::size_t ik_storage;
  {
    IndividualKeySolution sol(counting_, rnd_, HashAlg::kSha1, 11);
    ASSERT_TRUE(
        sol.outsource(n, [](std::size_t i) { return payload_for(i); }));
    counting_.reset();
    ASSERT_TRUE(sol.erase_item(n / 2));
    ik_bytes = counting_.total_bytes();
    ik_storage = sol.client_storage_bytes();
  }
  // Our scheme.
  std::uint64_t ours_bytes;
  {
    SystemRandom rnd;
    fgad::client::Client c(counting_, rnd);
    auto fh = c.outsource(99, n, [](std::size_t i) { return payload_for(i); });
    ASSERT_TRUE(fh.is_ok());
    counting_.reset();
    ASSERT_TRUE(c.erase_item(fh.value(), proto::ItemRef::ordinal(n / 2)));
    ours_bytes = counting_.total_bytes();
  }
  // Orderings from Table I/II.
  EXPECT_LT(ik_bytes, ours_bytes);
  EXPECT_LT(ours_bytes, mk_bytes / 4);
  EXPECT_EQ(ik_storage, n * 16u);
}

}  // namespace
}  // namespace fgad::baselines
