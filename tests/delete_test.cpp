// Fine-grained deletion: Theorem 1 (all other keys unchanged) and the
// balancing algorithm, across every tree shape and leaf position.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "support/harness.h"

namespace fgad::test {
namespace {

using ::testing::TestWithParam;

class DeleteEveryPosition : public TestWithParam<std::size_t> {};

// Deleting any single item leaves every other item's key and content
// intact (Theorem 1), for every position in trees of size 1..17.
TEST_P(DeleteEveryPosition, SingleDeletionPreservesOthers) {
  const std::size_t n = GetParam();
  for (std::size_t victim = 0; victim < n; ++victim) {
    Harness h(HashAlg::kSha1, /*seed=*/1000 + victim);
    h.outsource(n);
    ASSERT_TRUE(h.erase(victim)) << "n=" << n << " victim=" << victim;
    h.verify_all();
    if (::testing::Test::HasFailure()) {
      return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSmallSizes, DeleteEveryPosition,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 15,
                                           16, 17));

class DeleteAll : public TestWithParam<std::size_t> {};

// Deleting every item in ascending order drains the tree; invariants hold
// at every intermediate size.
TEST_P(DeleteAll, AscendingOrder) {
  const std::size_t n = GetParam();
  Harness h(HashAlg::kSha1, 7);
  h.outsource(n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(h.erase(i)) << "i=" << i;
    h.verify_all();
    if (::testing::Test::HasFailure()) return;
  }
  EXPECT_EQ(h.store().tree().node_count(), 0u);
  EXPECT_TRUE(h.store().items().empty());
}

TEST_P(DeleteAll, DescendingOrder) {
  const std::size_t n = GetParam();
  Harness h(HashAlg::kSha1, 8);
  h.outsource(n);
  for (std::size_t i = n; i-- > 0;) {
    ASSERT_TRUE(h.erase(i)) << "i=" << i;
    h.verify_all();
    if (::testing::Test::HasFailure()) return;
  }
  EXPECT_EQ(h.store().tree().node_count(), 0u);
}

TEST_P(DeleteAll, RandomOrder) {
  const std::size_t n = GetParam();
  Harness h(HashAlg::kSha1, 9);
  h.outsource(n);
  std::vector<std::uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Xoshiro256 rng(n * 31 + 5);
  std::shuffle(order.begin(), order.end(), rng);
  for (std::uint64_t id : order) {
    ASSERT_TRUE(h.erase(id)) << "id=" << id;
    h.verify_all();
    if (::testing::Test::HasFailure()) return;
  }
  EXPECT_EQ(h.store().tree().node_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeleteAll,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 64));

// The deleted item's key is dead: it differs from every key derivable from
// the post-deletion tree under the new master key.
TEST(DeleteSecurity, DeadKeyNotDerivableFromSurvivingState) {
  const std::size_t n = 32;
  Harness h(HashAlg::kSha1, 77);
  h.outsource(n);
  ASSERT_TRUE(h.erase(11));
  ASSERT_EQ(h.dead_keys().size(), 1u);
  const Md dead = h.dead_keys()[0];
  const auto& tree = h.store().tree();
  for (core::NodeId v = 0; v < tree.node_count(); ++v) {
    if (tree.is_leaf(v)) {
      EXPECT_NE(h.key_of(v), dead);
    }
  }
}

// Repeated deletion keeps shrinking: n -> n-1 leaves, node count -2.
TEST(DeleteShape, NodeCountShrinksByTwo) {
  Harness h(HashAlg::kSha1, 3);
  h.outsource(9);
  std::size_t nodes = h.store().tree().node_count();
  EXPECT_EQ(nodes, 17u);
  ASSERT_TRUE(h.erase(4));
  EXPECT_EQ(h.store().tree().node_count(), nodes - 2);
  ASSERT_TRUE(h.erase(0));
  EXPECT_EQ(h.store().tree().node_count(), nodes - 4);
}

// Master key must rotate on every deletion.
TEST(DeleteSecurity, MasterKeyRotates) {
  Harness h(HashAlg::kSha1, 5);
  h.outsource(8);
  const Md before = h.master().value();
  ASSERT_TRUE(h.erase(3));
  EXPECT_NE(h.master().value(), before);
}

// Deleting a missing item fails cleanly and changes nothing.
TEST(DeleteErrors, MissingItem) {
  Harness h(HashAlg::kSha1, 6);
  h.outsource(4);
  const Status st = h.erase(99);
  EXPECT_EQ(st.code(), Errc::kNotFound);
  h.verify_all();
}

// Double delete: second attempt fails, survivors intact.
TEST(DeleteErrors, DoubleDelete) {
  Harness h(HashAlg::kSha1, 6);
  h.outsource(6);
  ASSERT_TRUE(h.erase(2));
  EXPECT_EQ(h.erase(2).code(), Errc::kNotFound);
  h.verify_all();
}

// Commit validation: server rejects malformed commits.
TEST(DeleteCommitValidation, WrongDeltaCount) {
  Harness h(HashAlg::kSha1, 10);
  h.outsource(8);
  auto slot = h.store().items().find(3);
  ASSERT_TRUE(slot.has_value());
  auto info = h.store().delete_begin(*slot);
  ASSERT_TRUE(info.is_ok());
  MasterKey fresh = MasterKey::generate(h.rnd(), h.math().width());
  auto plan = h.math().plan_delete(info.value(), h.master().value(),
                                   fresh.value(), h.rnd());
  ASSERT_TRUE(plan.is_ok());
  auto commit = plan.value().commit;
  commit.deltas.pop_back();
  EXPECT_EQ(h.store().delete_commit(commit).code(), Errc::kInvalidArgument);
}

TEST(DeleteCommitValidation, NonLeafTarget) {
  Harness h(HashAlg::kSha1, 10);
  h.outsource(8);
  core::DeleteCommit commit;
  commit.leaf = 0;  // root is internal for n=8
  EXPECT_EQ(h.store().delete_commit(commit).code(), Errc::kInvalidArgument);
}

TEST(DeleteCommitValidation, BalanceFlagMismatch) {
  Harness h(HashAlg::kSha1, 11);
  h.outsource(8);
  auto slot = h.store().items().find(1);
  auto info = h.store().delete_begin(slot.value());
  ASSERT_TRUE(info.is_ok());
  MasterKey fresh = MasterKey::generate(h.rnd(), h.math().width());
  auto plan = h.math().plan_delete(info.value(), h.master().value(),
                                   fresh.value(), h.rnd());
  ASSERT_TRUE(plan.is_ok());
  auto commit = plan.value().commit;
  commit.has_balance = false;
  EXPECT_EQ(h.store().delete_commit(commit).code(), Errc::kInvalidArgument);
}

// SHA-256 variant: the scheme is hash-agnostic.
class DeleteSha256 : public TestWithParam<std::size_t> {};

TEST_P(DeleteSha256, WorksWithWiderModulators) {
  const std::size_t n = GetParam();
  Harness h(HashAlg::kSha256, 21);
  h.outsource(n);
  Xoshiro256 rng(n);
  auto ids = h.live_ids();
  for (int round = 0; round < 3 && !ids.empty(); ++round) {
    const std::uint64_t id = ids[rng.next_below(ids.size())];
    ASSERT_TRUE(h.erase(id));
    h.verify_all();
    if (::testing::Test::HasFailure()) return;
    ids = h.live_ids();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeleteSha256, ::testing::Values(2, 5, 16, 33));

}  // namespace
}  // namespace fgad::test
