// Durability primitives (DESIGN.md §13): fsio atomic writes and CRC32, WAL
// framing + torn-tail / bit-flip tolerance, group commit, the CrashPoint
// harness, and the rid-dedup table.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "cloud/recovery.h"
#include "cloud/wal.h"
#include "common/fsio.h"
#include "proto/wire.h"

namespace fgad::cloud {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name + "." +
         std::to_string(::getpid());
}

Bytes file_bytes(const std::string& path) {
  auto data = fsio::read_file(path);
  EXPECT_TRUE(data.is_ok()) << path;
  return data.is_ok() ? data.value() : Bytes{};
}

void write_raw(const std::string& path, BytesView data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
  std::fclose(f);
}

// ---- fsio -------------------------------------------------------------------

TEST(Fsio, Crc32KnownVectors) {
  // IEEE 802.3 check value for "123456789".
  const std::string check = "123456789";
  EXPECT_EQ(fsio::crc32(to_bytes(check)), 0xCBF43926u);
  EXPECT_EQ(fsio::crc32(BytesView()), 0u);
  // Seeded chaining equals one-shot over the concatenation.
  const Bytes a = to_bytes("1234");
  const Bytes b = to_bytes("56789");
  EXPECT_EQ(fsio::crc32(b, fsio::crc32(a)), fsio::crc32(to_bytes(check)));
}

TEST(Fsio, AtomicWriteRoundtripAndOverwrite) {
  const std::string path = temp_path("fsio_atomic");
  ASSERT_TRUE(fsio::atomic_write_file(path, to_bytes("first")));
  EXPECT_EQ(file_bytes(path), to_bytes("first"));
  // Overwrite replaces the content and leaves no temp file behind.
  ASSERT_TRUE(fsio::atomic_write_file(path, to_bytes("second, longer")));
  EXPECT_EQ(file_bytes(path), to_bytes("second, longer"));
  EXPECT_FALSE(fsio::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(Fsio, AtomicWriteFailureLeavesOriginal) {
  const std::string path = temp_path("fsio_orig");
  ASSERT_TRUE(fsio::atomic_write_file(path, to_bytes("keep me")));
  // Writing into a nonexistent directory must fail without touching `path`.
  EXPECT_FALSE(
      fsio::atomic_write_file("/nonexistent-dir-fgad/x", to_bytes("y")));
  EXPECT_EQ(file_bytes(path), to_bytes("keep me"));
  std::remove(path.c_str());
}

// ---- WAL framing ------------------------------------------------------------

Bytes request_frame(std::uint64_t i) {
  proto::Writer w;
  w.u32(0xABCD0000u + static_cast<std::uint32_t>(i));
  w.bytes(to_bytes("request-" + std::to_string(i)));
  return std::move(w).take();
}

TEST(Wal, AppendScanRoundtrip) {
  const std::string path = temp_path("wal_roundtrip");
  {
    auto wal = Wal::create(path, /*epoch=*/7, Wal::Options{0});
    ASSERT_TRUE(wal.is_ok());
    for (std::uint64_t i = 1; i <= 20; ++i) {
      ASSERT_TRUE(wal.value()->append(i, request_frame(i)).is_ok());
    }
  }
  std::vector<Wal::Record> got;
  auto scan = Wal::scan(path, [&](const Wal::Record& r) { got.push_back(r); });
  ASSERT_TRUE(scan.is_ok());
  EXPECT_EQ(scan.value().epoch, 7u);
  EXPECT_EQ(scan.value().records, 20u);
  EXPECT_EQ(scan.value().max_lsn, 20u);
  EXPECT_FALSE(scan.value().torn_tail);
  ASSERT_EQ(got.size(), 20u);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    EXPECT_EQ(got[i - 1].lsn, i);
    EXPECT_EQ(got[i - 1].request, request_frame(i));
  }
}

TEST(Wal, TornTailAtEveryTruncationPoint) {
  const std::string path = temp_path("wal_torn");
  {
    auto wal = Wal::create(path, 1, Wal::Options{0});
    ASSERT_TRUE(wal.is_ok());
    for (std::uint64_t i = 1; i <= 3; ++i) {
      ASSERT_TRUE(wal.value()->append(i, request_frame(i)).is_ok());
    }
  }
  const Bytes full = file_bytes(path);

  // First find where record 2 ends (= the valid_end after dropping rec 3).
  std::uint64_t end_of_two = 0;
  {
    // Scan the intact file truncated record-by-record from the back: the
    // boundary is wherever a 2-record scan says valid_end is.
    for (std::size_t keep = full.size() - 1; keep > 0; --keep) {
      write_raw(path, BytesView(full.data(), keep));
      auto s = Wal::scan(path, [](const Wal::Record&) {});
      ASSERT_TRUE(s.is_ok()) << keep;
      if (s.value().records == 2) {
        end_of_two = s.value().valid_end;
        break;
      }
    }
    ASSERT_GT(end_of_two, 0u);
  }

  // Every truncation point inside record 3 must yield exactly records 1-2,
  // torn_tail set, valid_end at the record-2 boundary.
  for (std::size_t keep = end_of_two + 1; keep < full.size(); ++keep) {
    write_raw(path, BytesView(full.data(), keep));
    std::size_t n = 0;
    auto s = Wal::scan(path, [&](const Wal::Record&) { ++n; });
    ASSERT_TRUE(s.is_ok()) << keep;
    EXPECT_EQ(n, 2u) << keep;
    EXPECT_TRUE(s.value().torn_tail) << keep;
    EXPECT_EQ(s.value().valid_end, end_of_two) << keep;
  }
  std::remove(path.c_str());
}

TEST(Wal, BitflippedRecordEndsScan) {
  const std::string path = temp_path("wal_bitflip");
  {
    auto wal = Wal::create(path, 1, Wal::Options{0});
    ASSERT_TRUE(wal.is_ok());
    for (std::uint64_t i = 1; i <= 3; ++i) {
      ASSERT_TRUE(wal.value()->append(i, request_frame(i)).is_ok());
    }
  }
  const Bytes full = file_bytes(path);
  // Flip one bit in the last ~40 bytes (inside record 3's frame): the CRC
  // must reject it, the scan keeps records 1-2 and flags the tail.
  for (std::size_t back = 1; back <= 40 && back < full.size(); back += 7) {
    Bytes bad = full;
    bad[bad.size() - back] ^= 0x40;
    write_raw(path, bad);
    std::size_t n = 0;
    auto s = Wal::scan(path, [&](const Wal::Record&) { ++n; });
    ASSERT_TRUE(s.is_ok()) << back;
    EXPECT_LE(n, 2u) << back;
    EXPECT_TRUE(s.value().torn_tail) << back;
  }
  std::remove(path.c_str());
}

TEST(Wal, CorruptHeaderRejected) {
  const std::string path = temp_path("wal_badheader");
  {
    auto wal = Wal::create(path, 1, Wal::Options{0});
    ASSERT_TRUE(wal.is_ok());
  }
  Bytes hdr = file_bytes(path);
  hdr[0] ^= 0xFF;
  write_raw(path, hdr);
  auto s = Wal::scan(path, [](const Wal::Record&) {});
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), Errc::kDecodeError);
  // Missing file is an I/O error, not a decode error.
  EXPECT_EQ(Wal::scan(path + ".nope", [](const Wal::Record&) {}).code(),
            Errc::kIoError);
  std::remove(path.c_str());
}

TEST(Wal, ReopenTruncatesTornTailAndContinues) {
  const std::string path = temp_path("wal_reopen");
  {
    auto wal = Wal::create(path, 1, Wal::Options{0});
    ASSERT_TRUE(wal.is_ok());
    for (std::uint64_t i = 1; i <= 3; ++i) {
      ASSERT_TRUE(wal.value()->append(i, request_frame(i)).is_ok());
    }
  }
  // Tear the last record in half.
  Bytes full = file_bytes(path);
  write_raw(path, BytesView(full.data(), full.size() - 5));

  auto scan1 = Wal::scan(path, [](const Wal::Record&) {});
  ASSERT_TRUE(scan1.is_ok());
  ASSERT_TRUE(scan1.value().torn_tail);
  ASSERT_EQ(scan1.value().records, 2u);
  {
    auto wal = Wal::reopen(path, scan1.value(), Wal::Options{0});
    ASSERT_TRUE(wal.is_ok());
    EXPECT_EQ(wal.value()->epoch(), 1u);
    // Appends continue from the truncated boundary with fresh LSNs.
    ASSERT_TRUE(wal.value()->append(3, request_frame(100)).is_ok());
    ASSERT_TRUE(wal.value()->append(4, request_frame(101)).is_ok());
  }
  std::vector<Wal::Record> got;
  auto scan2 = Wal::scan(path, [&](const Wal::Record& r) { got.push_back(r); });
  ASSERT_TRUE(scan2.is_ok());
  EXPECT_FALSE(scan2.value().torn_tail);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[2].request, request_frame(100));
  EXPECT_EQ(got[3].lsn, 4u);
  std::remove(path.c_str());
}

TEST(Wal, GroupCommitSyncThrough) {
  const std::string path = temp_path("wal_group");
  auto wal = Wal::create(path, 1, Wal::Options{/*sync_ms=*/5});
  ASSERT_TRUE(wal.is_ok());
  std::uint64_t last_ticket = 0;
  for (std::uint64_t i = 1; i <= 50; ++i) {
    auto t = wal.value()->append(i, request_frame(i));
    ASSERT_TRUE(t.is_ok());
    last_ticket = t.value();
  }
  // Blocks until the background syncer covers every appended byte.
  ASSERT_TRUE(wal.value()->sync_through(last_ticket));
  EXPECT_EQ(wal.value()->appended_bytes(), last_ticket);
  std::size_t n = 0;
  auto s = Wal::scan(path, [&](const Wal::Record&) { ++n; });
  ASSERT_TRUE(s.is_ok());
  EXPECT_EQ(n, 50u);
  wal.value().reset();
  std::remove(path.c_str());
}

TEST(Wal, NeverSyncModeStillScans) {
  const std::string path = temp_path("wal_nosync");
  {
    auto wal = Wal::create(path, 1, Wal::Options{/*sync_ms=*/-1});
    ASSERT_TRUE(wal.is_ok());
    auto t = wal.value()->append(1, request_frame(1));
    ASSERT_TRUE(t.is_ok());
    ASSERT_TRUE(wal.value()->sync_through(t.value()));  // no-op, no hang
  }
  std::size_t n = 0;
  ASSERT_TRUE(Wal::scan(path, [&](const Wal::Record&) { ++n; }).is_ok());
  EXPECT_EQ(n, 1u);
  std::remove(path.c_str());
}

// ---- CrashPoint -------------------------------------------------------------

TEST(CrashPointTest, ArmThrowFiresOnceArmed) {
  CrashPoint& cp = CrashPoint::instance();
  cp.reset();
  // Unarmed: fire is a no-op.
  cp.fire(CrashSite::kBeforeWalAppend);
  cp.arm_throw(CrashSite::kBeforeWalAppend);
  bool threw = false;
  try {
    cp.fire(CrashSite::kBeforeWalAppend);
  } catch (const CrashError& e) {
    threw = true;
    EXPECT_EQ(e.site, CrashSite::kBeforeWalAppend);
  }
  EXPECT_TRUE(threw);
  // Other sites stay unarmed.
  cp.fire(CrashSite::kMidCheckpoint);
  cp.reset();
  cp.fire(CrashSite::kBeforeWalAppend);
}

TEST(CrashPointTest, SiteNamesRoundtrip) {
  EXPECT_STREQ(crash_site_name(CrashSite::kBeforeWalAppend), "before-wal");
  EXPECT_STREQ(crash_site_name(CrashSite::kAfterWalPreAck),
               "after-wal-pre-ack");
  EXPECT_STREQ(crash_site_name(CrashSite::kMidCheckpoint), "mid-checkpoint");
  EXPECT_STREQ(crash_site_name(CrashSite::kPostRename), "post-rename");
}

TEST(CrashPointTest, ProcessExitSpecValidation) {
  CrashPoint& cp = CrashPoint::instance();
  // Bad specs are rejected without arming anything (we must not _exit here).
  EXPECT_FALSE(cp.arm_process_exit(""));
  EXPECT_FALSE(cp.arm_process_exit("no-such-site"));
  EXPECT_FALSE(cp.arm_process_exit("before-wal:"));
  EXPECT_FALSE(cp.arm_process_exit("before-wal:zero"));
  // A valid spec arms; disarm immediately without firing.
  EXPECT_TRUE(cp.arm_process_exit("mid-checkpoint:3"));
  cp.reset();
}

// ---- RidDedup ---------------------------------------------------------------

TEST(RidDedupTest, PutFindEvict) {
  RidDedup d(3);
  EXPECT_EQ(d.find(1), nullptr);
  d.put(1, to_bytes("one"));
  d.put(2, to_bytes("two"));
  d.put(3, to_bytes("three"));
  ASSERT_NE(d.find(1), nullptr);
  EXPECT_EQ(*d.find(1), to_bytes("one"));
  // Capacity 3: inserting a fourth evicts the oldest (rid 1).
  d.put(4, to_bytes("four"));
  EXPECT_EQ(d.find(1), nullptr);
  EXPECT_NE(d.find(2), nullptr);
  EXPECT_NE(d.find(4), nullptr);
  EXPECT_EQ(d.size(), 3u);
  // rid 0 (untagged) is never stored.
  d.put(0, to_bytes("zero"));
  EXPECT_EQ(d.find(0), nullptr);
  EXPECT_EQ(d.size(), 3u);
}

TEST(RidDedupTest, SerializeRoundtripPreservesOrder) {
  RidDedup d(4);
  for (std::uint64_t rid = 10; rid <= 13; ++rid) {
    d.put(rid, to_bytes("resp-" + std::to_string(rid)));
  }
  proto::Writer w;
  d.serialize(w);

  RidDedup d2(4);
  proto::Reader r(w.data());
  ASSERT_TRUE(d2.deserialize(r));
  ASSERT_TRUE(r.finish());
  EXPECT_EQ(d2.size(), 4u);
  // Eviction order survives the roundtrip: the next put evicts rid 10.
  d2.put(14, to_bytes("resp-14"));
  EXPECT_EQ(d2.find(10), nullptr);
  ASSERT_NE(d2.find(13), nullptr);
  EXPECT_EQ(*d2.find(13), to_bytes("resp-13"));

  // Serializing the copy reproduces the original bytes (determinism the
  // checkpoint image depends on).
  RidDedup d3(4);
  proto::Reader r2(w.data());
  ASSERT_TRUE(d3.deserialize(r2));
  proto::Writer w3;
  d3.serialize(w3);
  EXPECT_EQ(w3.data(), w.data());
}

TEST(RidDedupTest, DeserializeRejectsGarbage) {
  proto::Writer w;
  w.u64(1ull << 40);  // absurd entry count
  RidDedup d(4);
  proto::Reader r(w.data());
  EXPECT_FALSE(d.deserialize(r));
}

}  // namespace
}  // namespace fgad::cloud
