// Wire codec and protocol message round-trips, including malformed-input
// rejection and the decode edge cases of DESIGN.md §11: for every message
// type, a valid payload decodes, every strict prefix is rejected, a trailing
// byte is rejected, and hostile length claims fail without huge allocations.
#include <gtest/gtest.h>

#include "cloud/server.h"
#include "crypto/random.h"
#include "net/tcp.h"
#include "proto/messages.h"

namespace fgad::proto {
namespace {

using core::CutEntry;
using core::DeleteCommit;
using core::DeleteInfo;
using core::InsertCommit;
using core::InsertInfo;
using core::PathView;
using crypto::DeterministicRandom;
using crypto::Md;

TEST(Wire, IntegerRoundtrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_TRUE(r.finish());
}

TEST(Wire, BytesAndStrings) {
  Writer w;
  w.bytes(to_bytes("payload"));
  w.str("name");
  w.bytes({});
  Reader r(w.data());
  EXPECT_EQ(to_string(r.bytes()), "payload");
  EXPECT_EQ(r.str(), "name");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.finish());
}

TEST(Wire, MdRoundtrip) {
  DeterministicRandom rnd(1);
  Writer w;
  const Md a = rnd.random_md(20);
  const Md b = rnd.random_md(32);
  w.md(a);
  w.md(b);
  w.md(Md());
  Reader r(w.data());
  EXPECT_EQ(r.md(), a);
  EXPECT_EQ(r.md(), b);
  EXPECT_EQ(r.md(), Md());
  EXPECT_TRUE(r.finish());
}

TEST(Wire, TruncationDetected) {
  Writer w;
  w.u64(7);
  for (std::size_t keep = 0; keep < 8; ++keep) {
    Reader r(BytesView(w.data().data(), keep));
    r.u64();
    EXPECT_FALSE(r.ok()) << keep;
    EXPECT_FALSE(r.finish());
  }
}

TEST(Wire, TrailingBytesDetected) {
  Writer w;
  w.u32(1);
  w.u8(0);
  Reader r(w.data());
  r.u32();
  EXPECT_FALSE(r.finish());  // one byte left over
}

TEST(Wire, OversizedMdRejected) {
  Bytes raw = {200};  // declares a 200-byte digest
  raw.resize(201, 0);
  Reader r(raw);
  r.md();
  EXPECT_FALSE(r.ok());
}

TEST(Messages, EnvelopeRoundtrip) {
  const Bytes frame = seal_message(MsgType::kStatReq, to_bytes("body"));
  auto env = open_message(frame);
  ASSERT_TRUE(env.is_ok());
  EXPECT_EQ(env.value().type, MsgType::kStatReq);
  EXPECT_EQ(to_string(env.value().payload), "body");
  EXPECT_FALSE(open_message(Bytes{0x01}).is_ok());  // too short
}

PathView sample_path(DeterministicRandom& rnd) {
  PathView p;
  p.nodes = {0, 2, 5, 12};
  p.links = {rnd.random_md(20), rnd.random_md(20), rnd.random_md(20)};
  return p;
}

TEST(Messages, PathRoundtrip) {
  DeterministicRandom rnd(2);
  const PathView p = sample_path(rnd);
  Writer w;
  encode_path(w, p);
  Reader r(w.data());
  auto back = decode_path(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().nodes, p.nodes);
  EXPECT_EQ(back.value().links, p.links);
}

TEST(Messages, DeleteInfoRoundtrip) {
  DeterministicRandom rnd(3);
  DeleteInfo info;
  info.path = sample_path(rnd);
  info.leaf_mod = rnd.random_md(20);
  for (int i = 0; i < 3; ++i) {
    CutEntry e;
    e.node = core::sibling_of(info.path.nodes[i + 1]);
    e.link = rnd.random_md(20);
    e.is_leaf = (i == 2);
    if (e.is_leaf) e.leaf_mod = rnd.random_md(20);
    info.cut.push_back(e);
  }
  info.item_id = 99;
  info.ciphertext = to_bytes("ciphertext-bytes");
  info.has_balance = true;
  info.t_path = sample_path(rnd);
  info.t_leaf_mod = rnd.random_md(20);
  info.s_link = rnd.random_md(20);
  info.s_leaf_mod = rnd.random_md(20);

  Writer w;
  encode_delete_info(w, info);
  Reader r(w.data());
  auto back = decode_delete_info(r);
  ASSERT_TRUE(back.is_ok());
  const DeleteInfo& d = back.value();
  EXPECT_EQ(d.path.nodes, info.path.nodes);
  EXPECT_EQ(d.leaf_mod, info.leaf_mod);
  ASSERT_EQ(d.cut.size(), info.cut.size());
  EXPECT_EQ(d.cut[2].leaf_mod, info.cut[2].leaf_mod);
  EXPECT_EQ(d.item_id, 99u);
  EXPECT_EQ(d.ciphertext, info.ciphertext);
  EXPECT_TRUE(d.has_balance);
  EXPECT_EQ(d.t_path.nodes, info.t_path.nodes);
  EXPECT_EQ(d.s_leaf_mod, info.s_leaf_mod);
}

TEST(Messages, DeleteCommitRoundtrip) {
  DeterministicRandom rnd(4);
  DeleteCommit c;
  c.leaf = 12;
  c.deltas = {rnd.random_md(20), rnd.random_md(20)};
  c.has_balance = true;
  c.promoted_leaf_mod = rnd.random_md(20);
  c.has_step2 = true;
  c.t_new_link = rnd.random_md(20);
  c.t_new_leaf_mod = rnd.random_md(20);

  Writer w;
  encode_delete_commit(w, c);
  Reader r(w.data());
  auto back = decode_delete_commit(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().leaf, 12u);
  EXPECT_EQ(back.value().deltas, c.deltas);
  EXPECT_EQ(back.value().t_new_leaf_mod, c.t_new_leaf_mod);
}

TEST(Messages, InsertRoundtrips) {
  DeterministicRandom rnd(5);
  InsertInfo info;
  info.q_path = sample_path(rnd);
  info.q_leaf_mod = rnd.random_md(20);
  Writer w;
  encode_insert_info(w, info);
  Reader r(w.data());
  auto back = decode_insert_info(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().q_leaf_mod, info.q_leaf_mod);

  InsertCommit c;
  c.q = 5;
  c.left_link = rnd.random_md(20);
  c.right_link = rnd.random_md(20);
  c.moved_leaf_mod = rnd.random_md(20);
  c.new_leaf_mod = rnd.random_md(20);
  c.item_id = 1234;
  c.ciphertext = to_bytes("ct");
  c.after_item_id = 7;
  Writer w2;
  encode_insert_commit(w2, c);
  Reader r2(w2.data());
  auto back2 = decode_insert_commit(r2);
  ASSERT_TRUE(back2.is_ok());
  EXPECT_EQ(back2.value().q, 5u);
  EXPECT_EQ(back2.value().after_item_id, 7u);
  EXPECT_EQ(back2.value().new_leaf_mod, c.new_leaf_mod);
}

TEST(Messages, RequestFramesRoundtrip) {
  {
    OutsourceReq m;
    m.file_id = 3;
    m.tree_blob = to_bytes("tree");
    m.items.push_back({11, to_bytes("aa"), 2});
    m.items.push_back({12, to_bytes("bb"), 2});
    auto env = open_message(m.to_frame());
    ASSERT_TRUE(env.is_ok());
    ASSERT_EQ(env.value().type, MsgType::kOutsourceReq);
    Reader r(env.value().payload);
    auto back = OutsourceReq::from(r);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value().items.size(), 2u);
    EXPECT_EQ(back.value().items[1].item_id, 12u);
  }
  {
    AccessReq m;
    m.file_id = 9;
    m.ref = ItemRef::ordinal(4);
    auto env = open_message(m.to_frame());
    Reader r(env.value().payload);
    auto back = AccessReq::from(r);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value().ref.kind, RefKind::kOrdinal);
    EXPECT_EQ(back.value().ref.value, 4u);
  }
  {
    ErrorMsg m;
    m.code = Errc::kTamperDetected;
    m.message = "nope";
    auto env = open_message(m.to_frame());
    ASSERT_EQ(env.value().type, MsgType::kError);
    Reader r(env.value().payload);
    auto back = ErrorMsg::from(r);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value().code, Errc::kTamperDetected);
    EXPECT_EQ(back.value().message, "nope");
  }
}

TEST(Messages, KvFramesRoundtrip) {
  {
    KvPutBatchReq m;
    m.table = 1;
    m.entries.push_back({5, to_bytes("v5")});
    m.entries.push_back({6, to_bytes("v6")});
    auto env = open_message(m.to_frame());
    Reader r(env.value().payload);
    auto back = KvPutBatchReq::from(r);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value().entries[1].key, 6u);
  }
  {
    KvGetRangeResp m;
    m.entries.push_back({1, to_bytes("a")});
    m.more = true;
    auto env = open_message(m.to_frame());
    Reader r(env.value().payload);
    auto back = KvGetRangeResp::from(r);
    ASSERT_TRUE(back.is_ok());
    EXPECT_TRUE(back.value().more);
  }
}

TEST(Messages, FetchItemsRoundtrip) {
  FetchItemsResp m;
  m.items.push_back({7, 15, to_bytes("ct7")});
  m.more = false;
  auto env = open_message(m.to_frame());
  Reader r(env.value().payload);
  auto back = FetchItemsResp::from(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().items[0].leaf, 15u);
}

TEST(Messages, MalformedPayloadRejected) {
  // A DeleteCommit frame whose payload is cut short must fail to decode.
  DeterministicRandom rnd(6);
  DeleteCommit c;
  c.leaf = 3;
  c.deltas = {rnd.random_md(20)};
  Writer w;
  encode_delete_commit(w, c);
  for (std::size_t keep = 0; keep + 1 < w.size(); keep += 5) {
    Reader r(BytesView(w.data().data(), keep));
    EXPECT_FALSE(decode_delete_commit(r).is_ok()) << keep;
  }
}

TEST(Messages, HostileCountsRejected) {
  // A path claiming 2^30 nodes must be rejected before allocation.
  Writer w;
  w.u32(1u << 30);
  Reader r(w.data());
  EXPECT_FALSE(decode_path(r).is_ok());
}

// ---- decode edge cases, every message type (DESIGN.md §11) -----------------

/// Asserts the decode contract for one message: the genuine payload decodes
/// and consumes everything; every strict prefix fails (truncation is never
/// silently tolerated); one trailing byte fails (no frame smuggling).
template <typename M>
void check_decode_edges(const char* name, const M& m) {
  auto env = open_message(m.to_frame());
  ASSERT_TRUE(env.is_ok()) << name;
  const Bytes& payload = env.value().payload;
  const auto decodes = [](BytesView p) {
    Reader r(p);
    const auto back = M::from(r);
    return back.is_ok() && static_cast<bool>(r.finish());
  };
  EXPECT_TRUE(decodes(payload)) << name;
  for (std::size_t keep = 0; keep < payload.size(); ++keep) {
    EXPECT_FALSE(decodes(BytesView(payload.data(), keep)))
        << name << ": prefix of " << keep << "/" << payload.size();
  }
  Bytes trailing = payload;
  trailing.push_back(0);
  EXPECT_FALSE(decodes(trailing)) << name << ": trailing byte";
}

TEST(MessagesEdge, EveryMessageRejectsTruncationAndTrailingBytes) {
  DeterministicRandom rnd(8);

  ErrorMsg err;
  err.code = Errc::kNotFound;
  err.message = "missing";
  check_decode_edges("ErrorMsg", err);

  OutsourceReq outsource;
  outsource.file_id = 3;
  outsource.tree_blob = to_bytes("tree-bytes");
  outsource.items.push_back({11, to_bytes("ct-a"), 4});
  outsource.items.push_back({12, to_bytes("ct-b"), 4});
  check_decode_edges("OutsourceReq", outsource);

  AccessReq access;
  access.file_id = 9;
  access.ref = ItemRef::byte_offset(100);
  check_decode_edges("AccessReq", access);

  AccessResp access_resp;
  access_resp.info.path = sample_path(rnd);
  access_resp.info.leaf_mod = rnd.random_md(20);
  access_resp.info.item_id = 17;
  access_resp.info.ciphertext = to_bytes("sealed-item");
  check_decode_edges("AccessResp", access_resp);

  ModifyReq modify;
  modify.file_id = 1;
  modify.item_id = 2;
  modify.ciphertext = to_bytes("new-ct");
  modify.plain_size = 6;
  check_decode_edges("ModifyReq", modify);

  InsertBeginReq ib;
  ib.file_id = 4;
  check_decode_edges("InsertBeginReq", ib);

  InsertBeginResp ibr;
  ibr.info.q_path = sample_path(rnd);
  ibr.info.q_leaf_mod = rnd.random_md(20);
  check_decode_edges("InsertBeginResp", ibr);

  InsertCommitReq ic;
  ic.file_id = 4;
  ic.commit.q = 5;
  ic.commit.left_link = rnd.random_md(20);
  ic.commit.right_link = rnd.random_md(20);
  ic.commit.moved_leaf_mod = rnd.random_md(20);
  ic.commit.new_leaf_mod = rnd.random_md(20);
  ic.commit.item_id = 77;
  ic.commit.ciphertext = to_bytes("ct");
  check_decode_edges("InsertCommitReq", ic);

  DeleteBeginReq db;
  db.file_id = 4;
  db.ref = ItemRef::ordinal(2);
  check_decode_edges("DeleteBeginReq", db);

  DeleteBeginResp dbr;
  dbr.info.path = sample_path(rnd);
  dbr.info.leaf_mod = rnd.random_md(20);
  {
    CutEntry e;
    e.node = core::sibling_of(dbr.info.path.nodes[1]);
    e.link = rnd.random_md(20);
    e.is_leaf = true;
    e.leaf_mod = rnd.random_md(20);
    dbr.info.cut.push_back(e);
  }
  dbr.info.item_id = 21;
  dbr.info.ciphertext = to_bytes("target-ct");
  dbr.info.has_balance = true;
  dbr.info.t_path = sample_path(rnd);
  dbr.info.t_leaf_mod = rnd.random_md(20);
  dbr.info.s_link = rnd.random_md(20);
  dbr.info.s_leaf_mod = rnd.random_md(20);
  check_decode_edges("DeleteBeginResp", dbr);

  DeleteCommitReq dc;
  dc.file_id = 4;
  dc.commit.leaf = 12;
  dc.commit.deltas = {rnd.random_md(20), rnd.random_md(20)};
  dc.commit.has_balance = true;
  dc.commit.promoted_leaf_mod = rnd.random_md(20);
  dc.commit.has_step2 = true;
  dc.commit.t_new_link = rnd.random_md(20);
  dc.commit.t_new_leaf_mod = rnd.random_md(20);
  check_decode_edges("DeleteCommitReq", dc);

  FetchTreeReq ft;
  ft.file_id = 8;
  check_decode_edges("FetchTreeReq", ft);

  FetchTreeResp ftr;
  ftr.tree_blob = to_bytes("serialized-tree");
  check_decode_edges("FetchTreeResp", ftr);

  FetchItemsReq fi;
  fi.file_id = 8;
  fi.start_ordinal = 3;
  fi.max_count = 16;
  check_decode_edges("FetchItemsReq", fi);

  FetchItemsResp fir;
  fir.items.push_back({7, 15, to_bytes("ct7")});
  fir.items.push_back({8, 16, to_bytes("ct8")});
  fir.more = true;
  check_decode_edges("FetchItemsResp", fir);

  ListItemsReq li;
  li.file_id = 8;
  check_decode_edges("ListItemsReq", li);

  ListItemsResp lir;
  lir.ids = {4, 8, 15, 16, 23, 42};
  check_decode_edges("ListItemsResp", lir);

  DropFileReq drop;
  drop.file_id = 8;
  check_decode_edges("DropFileReq", drop);

  StatReq stat;
  stat.file_id = 8;
  check_decode_edges("StatReq", stat);

  StatResp stat_resp;
  stat_resp.n_items = 10;
  stat_resp.node_count = 19;
  stat_resp.tree_bytes = 1234;
  check_decode_edges("StatResp", stat_resp);

  AuditReq audit;
  audit.file_id = 8;
  audit.by_leaf = true;
  audit.include_ciphertext = true;
  audit.targets = {1, 2, 3};
  check_decode_edges("AuditReq", audit);

  AuditResp audit_resp;
  audit_resp.root = rnd.random_md(20);
  {
    AuditResp::Entry e;
    e.item_id = 5;
    e.leaf = 9;
    e.has_ciphertext = true;
    e.ciphertext = to_bytes("ct5");
    e.leaf_hash = rnd.random_md(20);
    e.siblings = {rnd.random_md(20), rnd.random_md(20)};
    audit_resp.entries.push_back(std::move(e));
  }
  check_decode_edges("AuditResp", audit_resp);

  KvPutReq kv_put;
  kv_put.table = 1;
  kv_put.key = 2;
  kv_put.value = to_bytes("v");
  check_decode_edges("KvPutReq", kv_put);

  KvGetReq kv_get;
  kv_get.table = 1;
  kv_get.key = 2;
  check_decode_edges("KvGetReq", kv_get);

  KvGetResp kv_get_resp;
  kv_get_resp.found = true;
  kv_get_resp.value = to_bytes("v");
  check_decode_edges("KvGetResp", kv_get_resp);

  KvDeleteReq kv_del;
  kv_del.table = 1;
  kv_del.key = 2;
  check_decode_edges("KvDeleteReq", kv_del);

  KvGetRangeReq kv_range;
  kv_range.table = 1;
  kv_range.start_key = 5;
  kv_range.max_count = 10;
  check_decode_edges("KvGetRangeReq", kv_range);

  KvGetRangeResp kv_range_resp;
  kv_range_resp.entries.push_back({5, to_bytes("v5")});
  kv_range_resp.more = true;
  check_decode_edges("KvGetRangeResp", kv_range_resp);

  KvPutBatchReq kv_batch;
  kv_batch.table = 1;
  kv_batch.entries.push_back({5, to_bytes("v5")});
  kv_batch.entries.push_back({6, to_bytes("v6")});
  check_decode_edges("KvPutBatchReq", kv_batch);

  ReplAppend ra;
  ra.term = 3;
  ra.prev_lsn = 41;
  ra.records.push_back({42, to_bytes("frame-a")});
  ra.records.push_back({43, to_bytes("frame-b")});
  check_decode_edges("ReplAppend", ra);

  ReplAck rack;
  rack.term = 3;
  rack.last_lsn = 43;
  rack.code = ReplAck::Code::kNeedSnapshot;
  check_decode_edges("ReplAck", rack);

  ReplSnapshot rs;
  rs.term = 3;
  rs.last_lsn = 43;
  rs.image = to_bytes("checkpoint-image");
  rs.dedup = to_bytes("dedup-table");
  check_decode_edges("ReplSnapshot", rs);

  ReplHeartbeat rh;
  rh.term = 3;
  rh.last_lsn = 43;
  check_decode_edges("ReplHeartbeat", rh);
}

TEST(MessagesEdge, HostileLengthClaimsFailWithoutAllocation) {
  // A few-byte payload claiming a multi-GiB field must be rejected up
  // front (count bounded by bytes actually present), not alloc-and-crash.
  {
    Writer w;
    w.u32(0xFFFFFFF0u);  // FetchTreeResp::tree_blob length
    Reader r(w.data());
    EXPECT_FALSE(FetchTreeResp::from(r).is_ok());
  }
  {
    Writer w;
    w.u64(0xFFFFFFFFFFull);  // ListItemsResp id count
    Reader r(w.data());
    EXPECT_FALSE(ListItemsResp::from(r).is_ok());
  }
  {
    Writer w;
    w.u64(1);                // file_id
    w.bytes(to_bytes("t"));  // tree_blob
    w.u64(0xFFFFFFFFull);    // OutsourceReq item count
    Reader r(w.data());
    EXPECT_FALSE(OutsourceReq::from(r).is_ok());
  }
  {
    Writer w;
    w.u64(2);  // file_id
    w.u8(0);   // by_leaf
    w.u8(0);   // include_ciphertext
    w.u32(0xFFFFFFF0u);  // AuditReq target count
    Reader r(w.data());
    EXPECT_FALSE(AuditReq::from(r).is_ok());
  }
  {
    Writer w;
    w.u64(0xFFFFFFFFull);  // KvGetRangeResp entry count
    Reader r(w.data());
    EXPECT_FALSE(KvGetRangeResp::from(r).is_ok());
  }
  {
    Writer w;
    w.u64(0xFFFFFFFFull);  // FetchItemsResp entry count
    Reader r(w.data());
    EXPECT_FALSE(FetchItemsResp::from(r).is_ok());
  }
}

TEST(MessagesEdge, MalformedFramesOverRealTcpGetErrorReplies) {
  // End-to-end: garbage frames through a real TCP server must produce a
  // decodable error reply on the same connection — never a hang, crash, or
  // corrupted stream. (Frames the transport itself rejects — oversized
  // length headers — are covered in net_test.)
  fgad::cloud::CloudServer server;
  auto tcp = fgad::net::TcpServer::create(
      0, [&server](BytesView req) { return server.handle(req); });
  ASSERT_TRUE(tcp.is_ok());
  auto ch = fgad::net::TcpChannel::connect("127.0.0.1", tcp.value()->port());
  ASSERT_TRUE(ch.is_ok());

  const auto expect_error_reply = [&](Bytes frame, const char* what) {
    auto resp = ch.value()->roundtrip(frame);
    ASSERT_TRUE(resp.is_ok()) << what << ": " << resp.status().to_string();
    auto env = open_message(resp.value());
    ASSERT_TRUE(env.is_ok()) << what;
    ASSERT_EQ(env.value().type, MsgType::kError) << what;
    Reader r(env.value().payload);
    EXPECT_TRUE(ErrorMsg::from(r).is_ok()) << what;
  };

  // Unknown message type.
  expect_error_reply(seal_message(static_cast<MsgType>(999), to_bytes("x")),
                     "unknown type");
  // Valid type, truncated payload.
  AccessReq access;
  access.file_id = 1;
  access.ref = ItemRef::id(0);
  Bytes truncated = access.to_frame();
  truncated.resize(truncated.size() - 3);
  expect_error_reply(std::move(truncated), "truncated payload");
  // Valid type, trailing garbage.
  Bytes trailing = access.to_frame();
  trailing.push_back(0xee);
  expect_error_reply(std::move(trailing), "trailing byte");
  // Sub-u16 frame: too short to even carry a message type.
  expect_error_reply(Bytes{0x07}, "one-byte frame");

  // The same connection still serves well-formed requests afterwards.
  StatReq stat;
  stat.file_id = 42;
  auto resp = ch.value()->roundtrip(stat.to_frame());
  ASSERT_TRUE(resp.is_ok());
  auto env = open_message(resp.value());
  ASSERT_TRUE(env.is_ok());  // kError "no such file" — but framing is intact
  tcp.value()->stop();
}

}  // namespace
}  // namespace fgad::proto
