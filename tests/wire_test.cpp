// Wire codec and protocol message round-trips, including malformed-input
// rejection.
#include <gtest/gtest.h>

#include "crypto/random.h"
#include "proto/messages.h"

namespace fgad::proto {
namespace {

using core::CutEntry;
using core::DeleteCommit;
using core::DeleteInfo;
using core::InsertCommit;
using core::InsertInfo;
using core::PathView;
using crypto::DeterministicRandom;
using crypto::Md;

TEST(Wire, IntegerRoundtrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_TRUE(r.finish());
}

TEST(Wire, BytesAndStrings) {
  Writer w;
  w.bytes(to_bytes("payload"));
  w.str("name");
  w.bytes({});
  Reader r(w.data());
  EXPECT_EQ(to_string(r.bytes()), "payload");
  EXPECT_EQ(r.str(), "name");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.finish());
}

TEST(Wire, MdRoundtrip) {
  DeterministicRandom rnd(1);
  Writer w;
  const Md a = rnd.random_md(20);
  const Md b = rnd.random_md(32);
  w.md(a);
  w.md(b);
  w.md(Md());
  Reader r(w.data());
  EXPECT_EQ(r.md(), a);
  EXPECT_EQ(r.md(), b);
  EXPECT_EQ(r.md(), Md());
  EXPECT_TRUE(r.finish());
}

TEST(Wire, TruncationDetected) {
  Writer w;
  w.u64(7);
  for (std::size_t keep = 0; keep < 8; ++keep) {
    Reader r(BytesView(w.data().data(), keep));
    r.u64();
    EXPECT_FALSE(r.ok()) << keep;
    EXPECT_FALSE(r.finish());
  }
}

TEST(Wire, TrailingBytesDetected) {
  Writer w;
  w.u32(1);
  w.u8(0);
  Reader r(w.data());
  r.u32();
  EXPECT_FALSE(r.finish());  // one byte left over
}

TEST(Wire, OversizedMdRejected) {
  Bytes raw = {200};  // declares a 200-byte digest
  raw.resize(201, 0);
  Reader r(raw);
  r.md();
  EXPECT_FALSE(r.ok());
}

TEST(Messages, EnvelopeRoundtrip) {
  const Bytes frame = seal_message(MsgType::kStatReq, to_bytes("body"));
  auto env = open_message(frame);
  ASSERT_TRUE(env.is_ok());
  EXPECT_EQ(env.value().type, MsgType::kStatReq);
  EXPECT_EQ(to_string(env.value().payload), "body");
  EXPECT_FALSE(open_message(Bytes{0x01}).is_ok());  // too short
}

PathView sample_path(DeterministicRandom& rnd) {
  PathView p;
  p.nodes = {0, 2, 5, 12};
  p.links = {rnd.random_md(20), rnd.random_md(20), rnd.random_md(20)};
  return p;
}

TEST(Messages, PathRoundtrip) {
  DeterministicRandom rnd(2);
  const PathView p = sample_path(rnd);
  Writer w;
  encode_path(w, p);
  Reader r(w.data());
  auto back = decode_path(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().nodes, p.nodes);
  EXPECT_EQ(back.value().links, p.links);
}

TEST(Messages, DeleteInfoRoundtrip) {
  DeterministicRandom rnd(3);
  DeleteInfo info;
  info.path = sample_path(rnd);
  info.leaf_mod = rnd.random_md(20);
  for (int i = 0; i < 3; ++i) {
    CutEntry e;
    e.node = core::sibling_of(info.path.nodes[i + 1]);
    e.link = rnd.random_md(20);
    e.is_leaf = (i == 2);
    if (e.is_leaf) e.leaf_mod = rnd.random_md(20);
    info.cut.push_back(e);
  }
  info.item_id = 99;
  info.ciphertext = to_bytes("ciphertext-bytes");
  info.has_balance = true;
  info.t_path = sample_path(rnd);
  info.t_leaf_mod = rnd.random_md(20);
  info.s_link = rnd.random_md(20);
  info.s_leaf_mod = rnd.random_md(20);

  Writer w;
  encode_delete_info(w, info);
  Reader r(w.data());
  auto back = decode_delete_info(r);
  ASSERT_TRUE(back.is_ok());
  const DeleteInfo& d = back.value();
  EXPECT_EQ(d.path.nodes, info.path.nodes);
  EXPECT_EQ(d.leaf_mod, info.leaf_mod);
  ASSERT_EQ(d.cut.size(), info.cut.size());
  EXPECT_EQ(d.cut[2].leaf_mod, info.cut[2].leaf_mod);
  EXPECT_EQ(d.item_id, 99u);
  EXPECT_EQ(d.ciphertext, info.ciphertext);
  EXPECT_TRUE(d.has_balance);
  EXPECT_EQ(d.t_path.nodes, info.t_path.nodes);
  EXPECT_EQ(d.s_leaf_mod, info.s_leaf_mod);
}

TEST(Messages, DeleteCommitRoundtrip) {
  DeterministicRandom rnd(4);
  DeleteCommit c;
  c.leaf = 12;
  c.deltas = {rnd.random_md(20), rnd.random_md(20)};
  c.has_balance = true;
  c.promoted_leaf_mod = rnd.random_md(20);
  c.has_step2 = true;
  c.t_new_link = rnd.random_md(20);
  c.t_new_leaf_mod = rnd.random_md(20);

  Writer w;
  encode_delete_commit(w, c);
  Reader r(w.data());
  auto back = decode_delete_commit(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().leaf, 12u);
  EXPECT_EQ(back.value().deltas, c.deltas);
  EXPECT_EQ(back.value().t_new_leaf_mod, c.t_new_leaf_mod);
}

TEST(Messages, InsertRoundtrips) {
  DeterministicRandom rnd(5);
  InsertInfo info;
  info.q_path = sample_path(rnd);
  info.q_leaf_mod = rnd.random_md(20);
  Writer w;
  encode_insert_info(w, info);
  Reader r(w.data());
  auto back = decode_insert_info(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().q_leaf_mod, info.q_leaf_mod);

  InsertCommit c;
  c.q = 5;
  c.left_link = rnd.random_md(20);
  c.right_link = rnd.random_md(20);
  c.moved_leaf_mod = rnd.random_md(20);
  c.new_leaf_mod = rnd.random_md(20);
  c.item_id = 1234;
  c.ciphertext = to_bytes("ct");
  c.after_item_id = 7;
  Writer w2;
  encode_insert_commit(w2, c);
  Reader r2(w2.data());
  auto back2 = decode_insert_commit(r2);
  ASSERT_TRUE(back2.is_ok());
  EXPECT_EQ(back2.value().q, 5u);
  EXPECT_EQ(back2.value().after_item_id, 7u);
  EXPECT_EQ(back2.value().new_leaf_mod, c.new_leaf_mod);
}

TEST(Messages, RequestFramesRoundtrip) {
  {
    OutsourceReq m;
    m.file_id = 3;
    m.tree_blob = to_bytes("tree");
    m.items.push_back({11, to_bytes("aa"), 2});
    m.items.push_back({12, to_bytes("bb"), 2});
    auto env = open_message(m.to_frame());
    ASSERT_TRUE(env.is_ok());
    ASSERT_EQ(env.value().type, MsgType::kOutsourceReq);
    Reader r(env.value().payload);
    auto back = OutsourceReq::from(r);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value().items.size(), 2u);
    EXPECT_EQ(back.value().items[1].item_id, 12u);
  }
  {
    AccessReq m;
    m.file_id = 9;
    m.ref = ItemRef::ordinal(4);
    auto env = open_message(m.to_frame());
    Reader r(env.value().payload);
    auto back = AccessReq::from(r);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value().ref.kind, RefKind::kOrdinal);
    EXPECT_EQ(back.value().ref.value, 4u);
  }
  {
    ErrorMsg m;
    m.code = Errc::kTamperDetected;
    m.message = "nope";
    auto env = open_message(m.to_frame());
    ASSERT_EQ(env.value().type, MsgType::kError);
    Reader r(env.value().payload);
    auto back = ErrorMsg::from(r);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value().code, Errc::kTamperDetected);
    EXPECT_EQ(back.value().message, "nope");
  }
}

TEST(Messages, KvFramesRoundtrip) {
  {
    KvPutBatchReq m;
    m.table = 1;
    m.entries.push_back({5, to_bytes("v5")});
    m.entries.push_back({6, to_bytes("v6")});
    auto env = open_message(m.to_frame());
    Reader r(env.value().payload);
    auto back = KvPutBatchReq::from(r);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value().entries[1].key, 6u);
  }
  {
    KvGetRangeResp m;
    m.entries.push_back({1, to_bytes("a")});
    m.more = true;
    auto env = open_message(m.to_frame());
    Reader r(env.value().payload);
    auto back = KvGetRangeResp::from(r);
    ASSERT_TRUE(back.is_ok());
    EXPECT_TRUE(back.value().more);
  }
}

TEST(Messages, FetchItemsRoundtrip) {
  FetchItemsResp m;
  m.items.push_back({7, 15, to_bytes("ct7")});
  m.more = false;
  auto env = open_message(m.to_frame());
  Reader r(env.value().payload);
  auto back = FetchItemsResp::from(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().items[0].leaf, 15u);
}

TEST(Messages, MalformedPayloadRejected) {
  // A DeleteCommit frame whose payload is cut short must fail to decode.
  DeterministicRandom rnd(6);
  DeleteCommit c;
  c.leaf = 3;
  c.deltas = {rnd.random_md(20)};
  Writer w;
  encode_delete_commit(w, c);
  for (std::size_t keep = 0; keep + 1 < w.size(); keep += 5) {
    Reader r(BytesView(w.data().data(), keep));
    EXPECT_FALSE(decode_delete_commit(r).is_ok()) << keep;
  }
}

TEST(Messages, HostileCountsRejected) {
  // A path claiming 2^30 nodes must be rejected before allocation.
  Writer w;
  w.u32(1u << 30);
  Reader r(w.data());
  EXPECT_FALSE(decode_path(r).is_ok());
}

}  // namespace
}  // namespace fgad::proto
