// Primary–backup WAL replication (DESIGN.md §18): ack-mode semantics,
// stale-term fencing, snapshot catch-up, queue-overflow fallback, and
// exactly-once convergence of tagged mutations resent across a failover.
//
// Everything here is in-process: two DurableServers in one address space,
// the replication link a Result-returning channel whose "wire" can be cut
// by flipping an atomic. The two-process kill -9 drill lives in
// tools/fgad_repl_smoke.cpp (run by the CI failover smoke job).
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>

#include "client/client.h"
#include "cloud/recovery.h"
#include "cloud/replica.h"
#include "cloud/server.h"
#include "net/transport.h"
#include "support/harness.h"

namespace fgad::cloud {
namespace {

using client::Client;
using test::payload_for;

std::string fresh_state_dir(const std::string& name) {
  static std::atomic<int> counter{0};
  const std::string d = ::testing::TempDir() + "/" + name + "." +
                        std::to_string(::getpid()) + "." +
                        std::to_string(counter.fetch_add(1));
  ::mkdir(d.c_str(), 0755);
  return d;
}

/// Replication "wire": invokes the follower's handler in-process, but
/// fails like a dead TCP link while `up` is false.
class LinkChannel final : public net::RpcChannel {
 public:
  LinkChannel(std::function<Bytes(BytesView)> handler, std::atomic<bool>& up)
      : handler_(std::move(handler)), up_(up) {}

  Result<Bytes> roundtrip(BytesView request) override {
    if (!up_.load()) {
      return Error(Errc::kConnReset, "test link down");
    }
    return handler_(request);
  }

 private:
  std::function<Bytes(BytesView)> handler_;
  std::atomic<bool>& up_;
};

bool wait_until(const std::function<bool()>& pred, int deadline_ms = 5000) {
  for (int waited = 0; waited < deadline_ms; waited += 10) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

/// Two durable servers joined by an in-process replication link, plus a
/// tagged client whose channel can be re-pointed at the survivor after a
/// "kill" — the in-memory analogue of the fgad_repl_smoke topology.
struct ReplPair {
  explicit ReplPair(ReplAckMode mode,
                    Replicator::Options ropts = Replicator::Options{},
                    bool attach = true) {
    DurableServer::Options popts;
    popts.dir = fresh_state_dir("repl_primary");
    popts.role = ReplRole::kPrimary;
    auto p = DurableServer::open(popts);
    EXPECT_TRUE(p.is_ok()) << p.status().to_string();
    primary = std::move(p).value();

    DurableServer::Options bopts;
    bopts.dir = fresh_state_dir("repl_backup");
    bopts.role = ReplRole::kBackup;
    auto b = DurableServer::open(bopts);
    EXPECT_TRUE(b.is_ok()) << b.status().to_string();
    backup = std::move(b).value();

    ropts.mode = mode;
    ropts.heartbeat_ms = 50;
    ropts.redial_backoff_ms = 5;
    ropts.max_backoff_ms = 20;
    repl = std::make_shared<Replicator>(
        [this]() -> Result<std::unique_ptr<net::RpcChannel>> {
          if (!link_up.load()) {
            return Error(Errc::kConnReset, "test link down");
          }
          return std::unique_ptr<net::RpcChannel>(new LinkChannel(
              [this](BytesView req) { return backup->handle(req); }, link_up));
        },
        ropts);
    if (attach) {
      primary->attach_replicator(repl, mode);
    }

    // The client talks to whichever node `target` points at; a test
    // "fails over" by re-aiming it. Every mutating frame and its response
    // are recorded so exactly-once can be audited by byte-exact resends.
    target = primary.get();
    ch = std::make_unique<net::DirectChannel>([this](BytesView req) -> Bytes {
      Bytes resp = target->handle(req);
      if (proto::split_tagged(req)) {
        frames.emplace_back(req.begin(), req.end());
        responses.push_back(resp);
      }
      return resp;
    });
    Client::Options copts;
    copts.tag_mutations = true;
    client = std::make_unique<Client>(*ch, rnd, copts);
  }

  ~ReplPair() {
    repl->stop();  // ship thread references backup; stop it first
  }

  /// kill -9 of the primary + SIGHUP promotion of the backup, in-process.
  void failover() {
    repl->stop();
    primary.reset();
    ASSERT_TRUE(backup->promote());
    target = backup.get();
  }

  std::unique_ptr<DurableServer> primary;
  std::unique_ptr<DurableServer> backup;
  std::shared_ptr<Replicator> repl;
  std::atomic<bool> link_up{true};
  DurableServer* target = nullptr;
  std::unique_ptr<net::DirectChannel> ch;
  crypto::DeterministicRandom rnd{1234};
  std::unique_ptr<Client> client;
  std::vector<Bytes> frames;     // tagged mutation frames, client order
  std::vector<Bytes> responses;  // the primary's original responses
};

// ---- role plumbing ---------------------------------------------------------

TEST(Replication, BackupBouncesClientTraffic) {
  DurableServer::Options opts;
  opts.dir = fresh_state_dir("backup_bounce");
  opts.role = ReplRole::kBackup;
  auto ds = DurableServer::open(opts);
  ASSERT_TRUE(ds.is_ok());
  EXPECT_EQ(ds.value()->role(), ReplRole::kBackup);

  // Reads bounce too: a backup may hold a stale, un-deleted view of an
  // item the primary has already assured-deleted, so serving it would
  // break the deletion contract.
  proto::StatReq stat;
  stat.file_id = 1;
  const Bytes resp = ds.value()->handle(stat.to_frame());
  auto env = proto::open_message(resp);
  ASSERT_TRUE(env.is_ok());
  ASSERT_EQ(env.value().type, proto::MsgType::kError);
  proto::Reader r(env.value().payload);
  auto err = proto::ErrorMsg::from(r);
  ASSERT_TRUE(err.is_ok());
  EXPECT_EQ(err.value().code, Errc::kNotPrimary);

  // Replication traffic is what a backup is for.
  proto::ReplHeartbeat hb;
  hb.term = 1;
  hb.last_lsn = 0;
  auto hb_env = proto::open_message(ds.value()->handle(hb.to_frame()));
  ASSERT_TRUE(hb_env.is_ok());
  EXPECT_EQ(hb_env.value().type, proto::MsgType::kReplAck);
}

TEST(Replication, PrimaryBootstrapsFencingTermToOne) {
  DurableServer::Options opts;
  opts.dir = fresh_state_dir("term_bootstrap");
  opts.role = ReplRole::kPrimary;
  auto ds = DurableServer::open(opts);
  ASSERT_TRUE(ds.is_ok());
  // Term 0 never appears on the wire: a fresh primary starts at 1 so a
  // fresh backup (term 0) always accepts its stream.
  EXPECT_EQ(ds.value()->term(), 1u);
}

TEST(Replication, TermSurvivesRestart) {
  DurableServer::Options opts;
  opts.dir = fresh_state_dir("term_restart");
  opts.role = ReplRole::kBackup;
  {
    auto ds = DurableServer::open(opts);
    ASSERT_TRUE(ds.is_ok());
    EXPECT_EQ(ds.value()->term(), 0u);
    ASSERT_TRUE(ds.value()->promote());
    EXPECT_EQ(ds.value()->role(), ReplRole::kPrimary);
    EXPECT_EQ(ds.value()->term(), 1u);
  }  // destructor = clean shutdown; promote() already checkpointed v2+term
  {
    auto ds = DurableServer::open(opts);  // still role=kBackup options
    ASSERT_TRUE(ds.is_ok());
    EXPECT_EQ(ds.value()->term(), 1u) << "fencing term lost across restart";
    EXPECT_EQ(ds.value()->role(), ReplRole::kBackup);
  }
}

// ---- fencing ---------------------------------------------------------------

TEST(Replication, StaleTermRejectedWithStaleTerm) {
  DurableServer::Options opts;
  opts.dir = fresh_state_dir("fence_direct");
  opts.role = ReplRole::kBackup;
  auto ds = DurableServer::open(opts);
  ASSERT_TRUE(ds.is_ok());
  ASSERT_TRUE(ds.value()->promote());  // term 1, primary

  proto::ReplHeartbeat hb;
  hb.term = 0;  // older than the receiver's
  auto env = proto::open_message(ds.value()->handle_repl(hb.to_frame()));
  ASSERT_TRUE(env.is_ok());
  ASSERT_EQ(env.value().type, proto::MsgType::kError);
  proto::Reader r(env.value().payload);
  auto err = proto::ErrorMsg::from(r);
  ASSERT_TRUE(err.is_ok());
  EXPECT_EQ(err.value().code, Errc::kStaleTerm);
}

TEST(Replication, PrimaryHearingNewerTermStepsDown) {
  DurableServer::Options opts;
  opts.dir = fresh_state_dir("fence_stepdown");
  opts.role = ReplRole::kPrimary;
  auto ds = DurableServer::open(opts);
  ASSERT_TRUE(ds.is_ok());
  ASSERT_EQ(ds.value()->term(), 1u);

  proto::ReplHeartbeat hb;
  hb.term = 5;  // a newer primary exists somewhere
  auto env = proto::open_message(ds.value()->handle_repl(hb.to_frame()));
  ASSERT_TRUE(env.is_ok());
  EXPECT_EQ(env.value().type, proto::MsgType::kReplAck);
  EXPECT_EQ(ds.value()->role(), ReplRole::kBackup);
  EXPECT_EQ(ds.value()->term(), 5u);
}

TEST(Replication, SplitBrainSameTermRefused) {
  DurableServer::Options opts;
  opts.dir = fresh_state_dir("fence_split");
  opts.role = ReplRole::kPrimary;
  auto ds = DurableServer::open(opts);
  ASSERT_TRUE(ds.is_ok());  // term 1, primary

  proto::ReplHeartbeat hb;
  hb.term = 1;  // another primary claiming OUR term: refuse, don't guess
  auto env = proto::open_message(ds.value()->handle_repl(hb.to_frame()));
  ASSERT_TRUE(env.is_ok());
  ASSERT_EQ(env.value().type, proto::MsgType::kError);
  proto::Reader r(env.value().payload);
  auto err = proto::ErrorMsg::from(r);
  ASSERT_TRUE(err.is_ok());
  EXPECT_EQ(err.value().code, Errc::kStaleTerm);
  EXPECT_EQ(ds.value()->role(), ReplRole::kPrimary) << "must not step down";
}

TEST(Replication, FencedPrimaryDemotesAndBouncesClients) {
  ReplPair pair(ReplAckMode::kSync);
  auto fh = pair.client->outsource(1, 8,
                                   [](std::size_t i) { return payload_for(i); });
  ASSERT_TRUE(fh.is_ok());

  // Promote the backup while the old primary is still alive — the
  // split-brain scenario fencing exists for. Term goes 1 -> 2.
  ASSERT_TRUE(pair.backup->promote());

  // The old primary's next shipped record (or heartbeat) bounces with
  // kStaleTerm; the replicator's demote hook flips it to backup. In sync
  // ack mode the in-flight mutation itself fails — applied locally but
  // never acknowledged, exactly the divergence a rejoin snapshot erases.
  auto st = pair.client->erase_item(fh.value(), proto::ItemRef::id(3));
  EXPECT_FALSE(st.is_ok());
  EXPECT_TRUE(wait_until([&] { return pair.repl->demoted(); }));
  EXPECT_TRUE(
      wait_until([&] { return pair.primary->role() == ReplRole::kBackup; }));
  // The rejection frame doesn't carry the winner's term, so the demoted
  // node keeps its own until the new primary's stream reaches it...
  EXPECT_EQ(pair.primary->term(), 1u);
  proto::ReplHeartbeat hb;
  hb.term = pair.backup->term();
  hb.last_lsn = 0;
  (void)pair.primary->handle_repl(hb.to_frame());
  EXPECT_EQ(pair.primary->term(), 2u) << "...then adopts it";

  // Once demoted, client traffic bounces without touching state.
  auto st2 = pair.client->erase_item(fh.value(), proto::ItemRef::id(4));
  ASSERT_FALSE(st2.is_ok());
  EXPECT_EQ(st2.code(), Errc::kNotPrimary);
}

// ---- ack modes -------------------------------------------------------------

TEST(Replication, SyncModeAckImpliesFollowerDurability) {
  ReplPair pair(ReplAckMode::kSync);
  auto fh = pair.client->outsource(1, 16,
                                   [](std::size_t i) { return payload_for(i); });
  ASSERT_TRUE(fh.is_ok());
  // The defining invariant of sync mode: the moment a client holds an
  // ack, the follower has durably acknowledged that LSN. No polling.
  EXPECT_EQ(pair.repl->acked_lsn(), pair.primary->last_lsn());

  for (std::uint64_t id = 0; id < 5; ++id) {
    ASSERT_TRUE(pair.client->erase_item(fh.value(), proto::ItemRef::id(id)));
    EXPECT_EQ(pair.repl->acked_lsn(), pair.primary->last_lsn());
  }

  // Kill the primary, promote the backup, re-aim the client: every acked
  // deletion must be present, every survivor byte-identical.
  pair.failover();
  for (std::uint64_t id = 0; id < 16; ++id) {
    auto got = pair.client->access(fh.value(), proto::ItemRef::id(id));
    if (id < 5) {
      EXPECT_FALSE(got.is_ok()) << "acked deletion lost for item " << id;
    } else {
      ASSERT_TRUE(got.is_ok()) << "surviving item " << id;
      EXPECT_EQ(got.value(), payload_for(id));
    }
  }
  EXPECT_TRUE(fsck(pair.backup->server()));
}

TEST(Replication, AsyncModeConvergesAfterTheAck) {
  ReplPair pair(ReplAckMode::kAsync);
  auto fh = pair.client->outsource(1, 16,
                                   [](std::size_t i) { return payload_for(i); });
  ASSERT_TRUE(fh.is_ok());
  for (std::uint64_t id = 0; id < 5; ++id) {
    ASSERT_TRUE(pair.client->erase_item(fh.value(), proto::ItemRef::id(id)));
  }
  // Async mode promises convergence, not ack-coupled durability.
  ASSERT_TRUE(wait_until(
      [&] { return pair.repl->acked_lsn() == pair.primary->last_lsn(); }))
      << "acked " << pair.repl->acked_lsn() << " of "
      << pair.primary->last_lsn();

  pair.failover();
  for (std::uint64_t id = 0; id < 16; ++id) {
    auto got = pair.client->access(fh.value(), proto::ItemRef::id(id));
    if (id < 5) {
      EXPECT_FALSE(got.is_ok());
    } else {
      ASSERT_TRUE(got.is_ok());
      EXPECT_EQ(got.value(), payload_for(id));
    }
  }
}

// ---- catch-up --------------------------------------------------------------

TEST(Replication, LateAttachCatchesUpViaSnapshotShip) {
  // Mutations land on the primary BEFORE the replicator is wired: the
  // follower's log position (0) cannot be bridged by appends, so the
  // first ship must fall back to a full checkpoint image.
  ReplPair pair(ReplAckMode::kSync, Replicator::Options{}, /*attach=*/false);
  auto fh = pair.client->outsource(1, 12,
                                   [](std::size_t i) { return payload_for(i); });
  ASSERT_TRUE(fh.is_ok());
  ASSERT_TRUE(pair.client->erase_item(fh.value(), proto::ItemRef::id(0)));

  pair.primary->attach_replicator(pair.repl, ReplAckMode::kSync);
  // One post-attach mutation: its ReplAppend carries prev_lsn > 0, the
  // fresh follower answers kNeedSnapshot, the image ships, and the sync
  // gate only releases once the follower acks everything.
  ASSERT_TRUE(pair.client->erase_item(fh.value(), proto::ItemRef::id(1)));
  EXPECT_EQ(pair.repl->acked_lsn(), pair.primary->last_lsn());

  pair.failover();
  EXPECT_FALSE(pair.client->access(fh.value(), proto::ItemRef::id(0)).is_ok());
  EXPECT_FALSE(pair.client->access(fh.value(), proto::ItemRef::id(1)).is_ok());
  auto got = pair.client->access(fh.value(), proto::ItemRef::id(5));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), payload_for(5));
}

TEST(Replication, QueueOverflowWhileLinkDownForcesSnapshot) {
  Replicator::Options ropts;
  ropts.max_queue_bytes = 256;  // a handful of records
  ReplPair pair(ReplAckMode::kAsync, ropts);
  pair.link_up.store(false);

  auto fh = pair.client->outsource(1, 16,
                                   [](std::size_t i) { return payload_for(i); });
  ASSERT_TRUE(fh.is_ok());
  for (std::uint64_t id = 0; id < 6; ++id) {
    ASSERT_TRUE(pair.client->erase_item(fh.value(), proto::ItemRef::id(id)));
  }
  // The staged backlog blew past max_queue_bytes: the queue is dropped
  // (bounded memory while the link is down) and a snapshot ship is owed.
  EXPECT_LT(pair.repl->pending_bytes(), ropts.max_queue_bytes);

  pair.link_up.store(true);
  ASSERT_TRUE(wait_until(
      [&] { return pair.repl->acked_lsn() == pair.primary->last_lsn(); }))
      << "acked " << pair.repl->acked_lsn() << " of "
      << pair.primary->last_lsn();

  pair.failover();
  for (std::uint64_t id = 0; id < 16; ++id) {
    auto got = pair.client->access(fh.value(), proto::ItemRef::id(id));
    if (id < 6) {
      EXPECT_FALSE(got.is_ok());
    } else {
      ASSERT_TRUE(got.is_ok());
      EXPECT_EQ(got.value(), payload_for(id));
    }
  }
  EXPECT_TRUE(fsck(pair.backup->server()));
}

// ---- exactly-once across failover ------------------------------------------

TEST(Replication, TaggedResendsConvergeOnThePromotedBackup) {
  // The replicated RidDedup table is what makes a client resend safe
  // after its primary died: replaying every recorded mutation frame —
  // byte-identical, same request ids — against the promoted backup must
  // return the original responses, not double-fold deletion deltas.
  ReplPair pair(ReplAckMode::kSync);
  auto fh = pair.client->outsource(1, 12,
                                   [](std::size_t i) { return payload_for(i); });
  ASSERT_TRUE(fh.is_ok());
  ASSERT_TRUE(pair.client->erase_item(fh.value(), proto::ItemRef::id(2)));
  ASSERT_TRUE(pair.client->erase_item(fh.value(), proto::ItemRef::id(7)));
  ASSERT_FALSE(pair.frames.empty());

  pair.failover();
  for (std::size_t i = 0; i < pair.frames.size(); ++i) {
    const Bytes replay = pair.backup->handle(pair.frames[i]);
    EXPECT_EQ(replay, pair.responses[i])
        << "resend " << i << " diverged from the original response";
  }
  // And the replays really were dedup hits: state is unchanged.
  auto got = pair.client->access(fh.value(), proto::ItemRef::id(5));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), payload_for(5));
  EXPECT_TRUE(fsck(pair.backup->server()));
}

}  // namespace
}  // namespace fgad::cloud
