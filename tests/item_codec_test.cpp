// Item sealing {m . r, H(m . r)}_k: roundtrip, integrity, uniqueness.
#include <gtest/gtest.h>

#include "core/item_codec.h"

namespace fgad::core {
namespace {

using crypto::DeterministicRandom;
using crypto::HashAlg;
using crypto::Md;

class ItemCodecTest : public ::testing::TestWithParam<HashAlg> {};

TEST_P(ItemCodecTest, RoundtripVariousSizes) {
  ItemCodec codec(GetParam());
  DeterministicRandom rnd(1);
  const Md key = rnd.random_md(codec.alg() == HashAlg::kSha1 ? 20 : 32);
  for (std::size_t n : {0u, 1u, 15u, 16u, 64u, 1000u, 4096u}) {
    const Bytes m(n, 0x33);
    const Bytes sealed = codec.seal(key, m, 77, rnd);
    EXPECT_EQ(sealed.size(), codec.sealed_size(n)) << "n=" << n;
    auto opened = codec.open(key, sealed);
    ASSERT_TRUE(opened.is_ok()) << "n=" << n;
    EXPECT_EQ(opened.value().plaintext, m);
    EXPECT_EQ(opened.value().r, 77u);
  }
}

INSTANTIATE_TEST_SUITE_P(Algs, ItemCodecTest,
                         ::testing::Values(HashAlg::kSha1, HashAlg::kSha256));

TEST(ItemCodec, WrongKeyRejected) {
  ItemCodec codec(HashAlg::kSha1);
  DeterministicRandom rnd(2);
  const Md key = rnd.random_md(20);
  const Md other = rnd.random_md(20);
  const Bytes sealed = codec.seal(key, to_bytes("hello"), 1, rnd);
  auto opened = codec.open(other, sealed);
  EXPECT_FALSE(opened.is_ok());
  EXPECT_EQ(opened.code(), Errc::kIntegrityMismatch);
}

TEST(ItemCodec, BitFlipAnywhereRejected) {
  ItemCodec codec(HashAlg::kSha1);
  DeterministicRandom rnd(3);
  const Md key = rnd.random_md(20);
  const Bytes sealed = codec.seal(key, to_bytes("sensitive record"), 9, rnd);
  for (std::size_t i = 0; i < sealed.size(); i += 7) {
    Bytes bad = sealed;
    bad[i] ^= 0x01;
    EXPECT_FALSE(codec.open(key, bad).is_ok()) << "flip at " << i;
  }
}

TEST(ItemCodec, TruncationRejected) {
  ItemCodec codec(HashAlg::kSha1);
  DeterministicRandom rnd(4);
  const Md key = rnd.random_md(20);
  const Bytes sealed = codec.seal(key, to_bytes("data"), 2, rnd);
  for (std::size_t keep : {0u, 1u, 16u, 31u}) {
    const Bytes cut(sealed.begin(),
                    sealed.begin() + static_cast<std::ptrdiff_t>(
                                         std::min(keep, sealed.size())));
    EXPECT_FALSE(codec.open(key, cut).is_ok()) << "keep " << keep;
  }
}

// Same content + same key, different counter => different ciphertexts, and
// each opens to its own r. This is the paper's uniqueness-by-counter rule.
TEST(ItemCodec, CounterMakesIdenticalItemsDistinct) {
  ItemCodec codec(HashAlg::kSha1);
  DeterministicRandom rnd(5);
  const Md key = rnd.random_md(20);
  const Bytes m = to_bytes("duplicate content");
  const Bytes a = codec.seal(key, m, 100, rnd);
  const Bytes b = codec.seal(key, m, 101, rnd);
  EXPECT_NE(a, b);
  EXPECT_EQ(codec.open(key, a).value().r, 100u);
  EXPECT_EQ(codec.open(key, b).value().r, 101u);
}

// Fresh IV every time: sealing the same (m, r) twice differs on the wire.
TEST(ItemCodec, FreshIvPerSeal) {
  ItemCodec codec(HashAlg::kSha1);
  DeterministicRandom rnd(6);
  const Md key = rnd.random_md(20);
  const Bytes a = codec.seal(key, to_bytes("x"), 5, rnd);
  const Bytes b = codec.seal(key, to_bytes("x"), 5, rnd);
  EXPECT_NE(a, b);
  EXPECT_EQ(codec.open(key, a).value().plaintext,
            codec.open(key, b).value().plaintext);
}

TEST(ItemCodec, SealedSizeFormula) {
  ItemCodec codec(HashAlg::kSha1);
  // iv(16) + cbc(m + 8 + 20) rounded up to the next block.
  EXPECT_EQ(codec.sealed_size(0), 16u + 32u);     // 28 -> 32
  EXPECT_EQ(codec.sealed_size(4), 16u + 48u);     // 32 -> 48 (always padded)
  EXPECT_EQ(codec.sealed_size(4096), 16u + 4128u);
}

}  // namespace
}  // namespace fgad::core
