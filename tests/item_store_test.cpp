// Server-side ciphertext store: ordering, addressing, slot reuse.
#include <gtest/gtest.h>

#include "cloud/item_store.h"

namespace fgad::cloud {
namespace {

TEST(ItemStore, InsertBackKeepsOrder) {
  ItemStore s;
  EXPECT_TRUE(s.empty());
  ASSERT_TRUE(s.insert_back(10, to_bytes("a"), 3).is_ok());
  ASSERT_TRUE(s.insert_back(11, to_bytes("b"), 4).is_ok());
  ASSERT_TRUE(s.insert_back(12, to_bytes("c"), 5).is_ok());
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.ids_in_order(), (std::vector<std::uint64_t>{10, 11, 12}));
}

TEST(ItemStore, DuplicateIdRejected) {
  ItemStore s;
  ASSERT_TRUE(s.insert_back(1, {}, 0).is_ok());
  EXPECT_EQ(s.insert_back(1, {}, 0).code(), Errc::kInvalidArgument);
}

TEST(ItemStore, FindAndOrdinal) {
  ItemStore s;
  for (std::uint64_t id : {5u, 6u, 7u, 8u}) {
    ASSERT_TRUE(s.insert_back(id, to_bytes("x"), id).is_ok());
  }
  EXPECT_TRUE(s.find(7).has_value());
  EXPECT_FALSE(s.find(99).has_value());
  EXPECT_EQ(s.at(*s.slot_at(0)).item_id, 5u);
  EXPECT_EQ(s.at(*s.slot_at(3)).item_id, 8u);
  EXPECT_FALSE(s.slot_at(4).has_value());
}

TEST(ItemStore, InsertAfter) {
  ItemStore s;
  ASSERT_TRUE(s.insert_back(1, {}, 0).is_ok());
  ASSERT_TRUE(s.insert_back(3, {}, 0).is_ok());
  ASSERT_TRUE(s.insert_after(1, 2, {}, 0).is_ok());
  EXPECT_EQ(s.ids_in_order(), (std::vector<std::uint64_t>{1, 2, 3}));
  // After the tail.
  ASSERT_TRUE(s.insert_after(3, 4, {}, 0).is_ok());
  EXPECT_EQ(s.ids_in_order(), (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(s.insert_after(42, 5, {}, 0).code(), Errc::kNotFound);
}

TEST(ItemStore, EraseMiddleHeadTail) {
  ItemStore s;
  for (std::uint64_t id = 0; id < 5; ++id) {
    ASSERT_TRUE(s.insert_back(id, to_bytes("v"), id).is_ok());
  }
  ASSERT_TRUE(s.erase(*s.find(2)));
  EXPECT_EQ(s.ids_in_order(), (std::vector<std::uint64_t>{0, 1, 3, 4}));
  ASSERT_TRUE(s.erase(*s.find(0)));
  EXPECT_EQ(s.ids_in_order(), (std::vector<std::uint64_t>{1, 3, 4}));
  ASSERT_TRUE(s.erase(*s.find(4)));
  EXPECT_EQ(s.ids_in_order(), (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(s.size(), 2u);
}

TEST(ItemStore, EraseInvalidSlot) {
  ItemStore s;
  EXPECT_EQ(s.erase(0).code(), Errc::kNotFound);
  ASSERT_TRUE(s.insert_back(1, {}, 0).is_ok());
  const auto slot = *s.find(1);
  ASSERT_TRUE(s.erase(slot));
  EXPECT_EQ(s.erase(slot).code(), Errc::kNotFound);  // already freed
}

TEST(ItemStore, SlotReuse) {
  ItemStore s;
  ASSERT_TRUE(s.insert_back(1, {}, 0).is_ok());
  ASSERT_TRUE(s.insert_back(2, {}, 0).is_ok());
  const auto slot1 = *s.find(1);
  ASSERT_TRUE(s.erase(slot1));
  auto slot3 = s.insert_back(3, {}, 0);
  ASSERT_TRUE(slot3.is_ok());
  EXPECT_EQ(slot3.value(), slot1);  // freed slot reused
  EXPECT_EQ(s.ids_in_order(), (std::vector<std::uint64_t>{2, 3}));
}

TEST(ItemStore, LeafBackpointer) {
  ItemStore s;
  auto slot = s.insert_back(1, to_bytes("v"), 9);
  ASSERT_TRUE(slot.is_ok());
  EXPECT_EQ(s.at(slot.value()).leaf, 9u);
  s.set_leaf(slot.value(), 17);
  EXPECT_EQ(s.at(slot.value()).leaf, 17u);
}

TEST(ItemStore, CiphertextAccounting) {
  ItemStore s;
  ASSERT_TRUE(s.insert_back(1, Bytes(100, 0), 0).is_ok());
  ASSERT_TRUE(s.insert_back(2, Bytes(50, 0), 0).is_ok());
  EXPECT_EQ(s.ciphertext_bytes(), 150u);
  ASSERT_TRUE(s.erase(*s.find(1)));
  EXPECT_EQ(s.ciphertext_bytes(), 50u);
  s.set_ciphertext(*s.find(2), Bytes(10, 0), /*plain_size=*/10);
  EXPECT_EQ(s.at(*s.find(2)).ciphertext.size(), 10u);
  EXPECT_EQ(s.ciphertext_bytes(), 10u);
}

TEST(ItemStore, ByteOffsetLookup) {
  ItemStore s;
  // Variable plaintext sizes: 100, 50, 200 bytes.
  ASSERT_TRUE(s.insert_back(1, Bytes(110, 0), 0, 100).is_ok());
  ASSERT_TRUE(s.insert_back(2, Bytes(60, 0), 0, 50).is_ok());
  ASSERT_TRUE(s.insert_back(3, Bytes(210, 0), 0, 200).is_ok());
  EXPECT_EQ(s.plaintext_bytes(), 350u);
  EXPECT_EQ(s.at(*s.slot_at_offset(0)).item_id, 1u);
  EXPECT_EQ(s.at(*s.slot_at_offset(99)).item_id, 1u);
  EXPECT_EQ(s.at(*s.slot_at_offset(100)).item_id, 2u);
  EXPECT_EQ(s.at(*s.slot_at_offset(149)).item_id, 2u);
  EXPECT_EQ(s.at(*s.slot_at_offset(150)).item_id, 3u);
  EXPECT_EQ(s.at(*s.slot_at_offset(349)).item_id, 3u);
  EXPECT_FALSE(s.slot_at_offset(350).has_value());
}

TEST(ItemStore, ByteOffsetAfterDeleteAndModify) {
  ItemStore s;
  ASSERT_TRUE(s.insert_back(1, Bytes(10, 0), 0, 10).is_ok());
  ASSERT_TRUE(s.insert_back(2, Bytes(10, 0), 0, 10).is_ok());
  ASSERT_TRUE(s.insert_back(3, Bytes(10, 0), 0, 10).is_ok());
  ASSERT_TRUE(s.erase(*s.find(2)));
  // Offsets re-pack: [0,10) -> item 1, [10,20) -> item 3.
  EXPECT_EQ(s.at(*s.slot_at_offset(15)).item_id, 3u);
  EXPECT_EQ(s.plaintext_bytes(), 20u);
  // A modify that grows an item shifts everything after it.
  s.set_ciphertext(*s.find(1), Bytes(40, 0), 35);
  EXPECT_EQ(s.plaintext_bytes(), 45u);
  EXPECT_EQ(s.at(*s.slot_at_offset(34)).item_id, 1u);
  EXPECT_EQ(s.at(*s.slot_at_offset(35)).item_id, 3u);
}

TEST(ItemStore, WalkInOrder) {
  ItemStore s;
  for (std::uint64_t id = 0; id < 4; ++id) {
    ASSERT_TRUE(s.insert_back(id, {}, 0).is_ok());
  }
  std::vector<std::uint64_t> seen;
  for (auto slot = s.first(); slot != ItemStore::kNoSlot;
       slot = s.next_of(slot)) {
    seen.push_back(s.at(slot).item_id);
  }
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace fgad::cloud
