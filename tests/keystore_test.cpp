// Client keystore: sealed persistence of the client's secret state.
#include <gtest/gtest.h>

#include <cstdio>

#include "client/keystore.h"

namespace fgad::client {
namespace {

using crypto::DeterministicRandom;
using crypto::Md;

Md key_of(std::uint64_t seed) {
  DeterministicRandom rnd(seed);
  return rnd.random_md(20);
}

TEST(Keystore, PutGetRemove) {
  Keystore ks;
  EXPECT_EQ(ks.size(), 0u);
  ks.put(1, key_of(1));
  ks.put(2, key_of(2));
  EXPECT_TRUE(ks.contains(1));
  EXPECT_EQ(ks.get(1).value(), key_of(1));
  EXPECT_EQ(ks.get(3).code(), Errc::kNotFound);
  // Replacement.
  ks.put(1, key_of(10));
  EXPECT_EQ(ks.get(1).value(), key_of(10));
  EXPECT_EQ(ks.size(), 2u);
  ASSERT_TRUE(ks.remove(1));
  EXPECT_FALSE(ks.contains(1));
  EXPECT_EQ(ks.remove(1).code(), Errc::kNotFound);
  EXPECT_EQ(ks.file_ids(), (std::vector<std::uint64_t>{2}));
}

TEST(Keystore, SealUnsealRoundtrip) {
  DeterministicRandom rnd(5);
  Keystore ks;
  ks.set_counter(12345);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ks.put(i, key_of(i));
  }
  const Bytes sealed = ks.seal("correct horse battery staple", rnd);
  auto back = Keystore::unseal(sealed, "correct horse battery staple");
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().counter(), 12345u);
  EXPECT_EQ(back.value().size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(back.value().get(i).value(), key_of(i));
  }
}

TEST(Keystore, WrongPassphraseRejected) {
  DeterministicRandom rnd(6);
  Keystore ks;
  ks.put(1, key_of(1));
  const Bytes sealed = ks.seal("right", rnd);
  auto back = Keystore::unseal(sealed, "wrong");
  EXPECT_FALSE(back.is_ok());
  EXPECT_EQ(back.code(), Errc::kIntegrityMismatch);
}

TEST(Keystore, TamperRejected) {
  DeterministicRandom rnd(7);
  Keystore ks;
  ks.put(1, key_of(1));
  ks.put(2, key_of(2));
  const Bytes sealed = ks.seal("pw", rnd);
  for (std::size_t i = 0; i < sealed.size(); i += 11) {
    Bytes bad = sealed;
    bad[i] ^= 0x04;
    EXPECT_FALSE(Keystore::unseal(bad, "pw").is_ok()) << "flip at " << i;
  }
  // Truncation.
  Bytes cut(sealed.begin(), sealed.begin() + 10);
  EXPECT_FALSE(Keystore::unseal(cut, "pw").is_ok());
}

TEST(Keystore, EmptyKeystoreRoundtrip) {
  DeterministicRandom rnd(8);
  Keystore ks;
  const Bytes sealed = ks.seal("pw", rnd);
  auto back = Keystore::unseal(sealed, "pw");
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().size(), 0u);
  EXPECT_EQ(back.value().counter(), 0u);
}

TEST(Keystore, FileRoundtrip) {
  DeterministicRandom rnd(9);
  Keystore ks;
  ks.set_counter(777);
  ks.put(42, key_of(42));
  const std::string path = ::testing::TempDir() + "/fgad_keystore_test.bin";
  ASSERT_TRUE(ks.save_to_file(path, "pw", rnd));
  auto back = Keystore::load_from_file(path, "pw");
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().counter(), 777u);
  EXPECT_EQ(back.value().get(42).value(), key_of(42));
  EXPECT_FALSE(Keystore::load_from_file(path, "other").is_ok());
  EXPECT_FALSE(
      Keystore::load_from_file(path + ".nope", "pw").is_ok());
  std::remove(path.c_str());
}

TEST(Keystore, SaltMakesSealsDistinct) {
  DeterministicRandom rnd(10);
  Keystore ks;
  ks.put(1, key_of(1));
  const Bytes a = ks.seal("pw", rnd);
  const Bytes b = ks.seal("pw", rnd);
  EXPECT_NE(a, b);  // fresh salt + IV every time
  EXPECT_TRUE(Keystore::unseal(a, "pw").is_ok());
  EXPECT_TRUE(Keystore::unseal(b, "pw").is_ok());
}

}  // namespace
}  // namespace fgad::client
