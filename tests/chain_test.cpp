// Modulated hash chain: definition equivalences and Lemma 1.
#include <gtest/gtest.h>

#include "core/chain.h"
#include "crypto/random.h"

namespace fgad::core {
namespace {

using crypto::DeterministicRandom;
using crypto::Md;

ModList random_mods(DeterministicRandom& rnd, std::size_t l, std::size_t w) {
  ModList mods(l);
  for (auto& m : mods) {
    m = rnd.random_md(w);
  }
  return mods;
}

TEST(Chain, EmptyListIsIdentity) {
  ModulatedHashChain chain(HashAlg::kSha1);
  DeterministicRandom rnd(1);
  const Md k = rnd.random_md(20);
  EXPECT_EQ(chain.eval(k, {}), k);  // F(K, <>) = K
}

TEST(Chain, SingleStepMatchesDefinition) {
  ModulatedHashChain chain(HashAlg::kSha1);
  DeterministicRandom rnd(2);
  const Md k = rnd.random_md(20);
  const Md x = rnd.random_md(20);
  // F(K, <x>) = H(K ^ x)
  Md input = k;
  input ^= x;
  EXPECT_EQ(chain.eval(k, std::vector<Md>{x}),
            crypto::hash_oneshot(HashAlg::kSha1, input.bytes()));
}

TEST(Chain, RecursiveAndIterativeAgree) {
  ModulatedHashChain chain(HashAlg::kSha1);
  DeterministicRandom rnd(3);
  const Md k = rnd.random_md(20);
  const ModList mods = random_mods(rnd, 9, 20);
  // Recursive: F(K, M^(i)) = H(F(K, M^(i-1)) ^ x_i)
  Md cur = k;
  for (const Md& x : mods) {
    cur = chain.step(cur, x);
  }
  EXPECT_EQ(chain.eval(k, mods), cur);
}

TEST(Chain, PrefixesMatchEval) {
  ModulatedHashChain chain(HashAlg::kSha256);
  DeterministicRandom rnd(4);
  const Md k = rnd.random_md(32);
  const ModList mods = random_mods(rnd, 7, 32);
  const auto prefixes = chain.prefixes(k, mods);
  ASSERT_EQ(prefixes.size(), mods.size() + 1);
  for (std::size_t i = 0; i <= mods.size(); ++i) {
    EXPECT_EQ(prefixes[i],
              chain.eval(k, std::span<const Md>(mods.data(), i)))
        << "prefix " << i;
  }
}

// Lemma 1: for every position i, substituting
// x_i' = x_i ^ F(K,M^(i-1)) ^ F(K',M^(i-1)) keeps the output unchanged
// under the new master key.
TEST(Chain, Lemma1HoldsAtEveryPosition) {
  for (const HashAlg alg : {HashAlg::kSha1, HashAlg::kSha256}) {
    ModulatedHashChain chain(alg);
    const std::size_t w = chain.width();
    DeterministicRandom rnd(5);
    const Md k_old = rnd.random_md(w);
    const Md k_new = rnd.random_md(w);
    const ModList mods = random_mods(rnd, 8, w);
    const Md target = chain.eval(k_old, mods);
    const auto pre_old = chain.prefixes(k_old, mods);
    const auto pre_new = chain.prefixes(k_new, mods);
    for (std::size_t i = 0; i < mods.size(); ++i) {
      ModList adjusted = mods;
      adjusted[i] = ModulatedHashChain::adjusted_modulator(
          mods[i], pre_old[i], pre_new[i]);
      EXPECT_EQ(chain.eval(k_new, adjusted), target)
          << hash_alg_name(alg) << " position " << i;
      // And the unadjusted list under the new key differs (the dead chain).
      EXPECT_NE(chain.eval(k_new, mods), target);
    }
  }
}

// Changing any single modulator without compensation changes the output.
TEST(Chain, SensitiveToEveryModulator) {
  ModulatedHashChain chain(HashAlg::kSha1);
  DeterministicRandom rnd(6);
  const Md k = rnd.random_md(20);
  const ModList mods = random_mods(rnd, 6, 20);
  const Md base = chain.eval(k, mods);
  for (std::size_t i = 0; i < mods.size(); ++i) {
    ModList tweaked = mods;
    tweaked[i].mutable_bytes()[0] ^= 1;
    EXPECT_NE(chain.eval(k, tweaked), base) << "position " << i;
  }
}

// Chain outputs have the digest width and differ across keys.
TEST(Chain, OutputWidthAndKeySeparation) {
  ModulatedHashChain chain(HashAlg::kSha1);
  DeterministicRandom rnd(7);
  const ModList mods = random_mods(rnd, 4, 20);
  const Md k1 = rnd.random_md(20);
  const Md k2 = rnd.random_md(20);
  EXPECT_EQ(chain.eval(k1, mods).size(), 20u);
  EXPECT_NE(chain.eval(k1, mods), chain.eval(k2, mods));
}

// Order of modulators matters (it is a chain, not a set).
TEST(Chain, OrderSensitive) {
  ModulatedHashChain chain(HashAlg::kSha1);
  DeterministicRandom rnd(8);
  const Md k = rnd.random_md(20);
  ModList mods = random_mods(rnd, 5, 20);
  const Md base = chain.eval(k, mods);
  std::swap(mods[1], mods[3]);
  EXPECT_NE(chain.eval(k, mods), base);
}

}  // namespace
}  // namespace fgad::core
