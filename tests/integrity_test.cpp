// Integrity substrate (PDP/PoR): Merkle tree, audits, verified fetches,
// and trustless root tracking across mutations.
#include <gtest/gtest.h>

#include "client/client.h"
#include "cloud/server.h"
#include "integrity/audit.h"
#include "integrity/merkle.h"
#include "support/harness.h"

namespace fgad::integrity {
namespace {

using client::Client;
using cloud::CloudServer;
using crypto::DeterministicRandom;
using crypto::HashAlg;
using crypto::Md;
using crypto::SystemRandom;
using test::payload_for;

std::vector<Md> make_leaf_hashes(std::size_t n, std::uint64_t seed) {
  DeterministicRandom rnd(seed);
  std::vector<Md> hashes(n);
  for (auto& h : hashes) {
    h = rnd.random_md(20);
  }
  return hashes;
}

TEST(Merkle, EmptyAndSingle) {
  HashTree tree(HashAlg::kSha1);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.root(), Md::zero(20));
  const auto hashes = make_leaf_hashes(1, 1);
  tree.build(hashes);
  EXPECT_EQ(tree.root(), hashes[0]);
  const MerkleProof proof = tree.prove(0);
  crypto::Hasher hasher(HashAlg::kSha1);
  EXPECT_TRUE(verify_proof(hasher, tree.root(), hashes[0], proof));
}

class MerkleProofs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofs, EveryLeafVerifies) {
  const std::size_t n = GetParam();
  const auto hashes = make_leaf_hashes(n, n);
  HashTree tree(HashAlg::kSha1);
  tree.build(hashes);
  crypto::Hasher hasher(HashAlg::kSha1);
  for (std::size_t i = 0; i < n; ++i) {
    const core::NodeId leaf = n - 1 + i;
    const MerkleProof proof = tree.prove(leaf);
    EXPECT_TRUE(verify_proof(hasher, tree.root(), hashes[i], proof)) << i;
    // A different leaf hash must not verify.
    Md other = hashes[i];
    other.mutable_bytes()[0] ^= 1;
    EXPECT_FALSE(verify_proof(hasher, tree.root(), other, proof)) << i;
    // A corrupted sibling must not verify.
    if (!proof.siblings.empty()) {
      MerkleProof bad = proof;
      bad.siblings[0].mutable_bytes()[3] ^= 1;
      EXPECT_FALSE(verify_proof(hasher, tree.root(), hashes[i], bad)) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofs,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 33, 100));

// HashTree mutations mirror a rebuild from scratch.
TEST(Merkle, MutationsMatchRebuild) {
  crypto::Hasher hasher(HashAlg::kSha1);
  DeterministicRandom rnd(9);
  std::vector<Md> hashes = make_leaf_hashes(9, 2);
  HashTree tree(HashAlg::kSha1);
  tree.build(hashes);

  // set_leaf.
  hashes[4] = rnd.random_md(20);
  tree.set_leaf(8 + 4, hashes[4]);
  {
    HashTree fresh(HashAlg::kSha1);
    fresh.build(hashes);
    EXPECT_EQ(tree.root(), fresh.root());
  }

  // append_pair: the old shallowest leaf moves under a new internal node.
  const Md new_h = rnd.random_md(20);
  tree.append_pair(new_h);
  {
    // Leaf order after split: leaf q = (17-1)/2 = 8 (first leaf) moves to
    // the left child, new leaf to the right; rebuilding with the same
    // logical order must agree.
    std::vector<Md> grown = hashes;
    grown.push_back(new_h);
    // Rebuild shape: the heap build assigns leaf i to node n-1+i, which for
    // n=10 puts old leaf 0's hash at node 9 and the new at node 18... the
    // shapes only coincide when the logical order matches the paper's
    // split, so compare against explicit mutations instead:
    HashTree fresh(HashAlg::kSha1);
    fresh.build(hashes);
    fresh.append_pair(new_h);
    EXPECT_EQ(tree.root(), fresh.root());
    EXPECT_EQ(tree.node_count(), 19u);
  }

  // delete_leaf of each kind agrees with an independently mutated copy.
  HashTree copy(HashAlg::kSha1);
  copy.build(hashes);
  copy.append_pair(new_h);
  tree.delete_leaf(12);  // general case
  copy.delete_leaf(12);
  EXPECT_EQ(tree.root(), copy.root());
  tree.delete_leaf(tree.node_count() - 1);  // last leaf
  copy.delete_leaf(copy.node_count() - 1);
  EXPECT_EQ(tree.root(), copy.root());
}

TEST(Merkle, DomainSeparation) {
  crypto::Hasher hasher(HashAlg::kSha1);
  // A leaf hash must not be confusable with an internal hash of the same
  // bytes (0x00 vs 0x01 prefixes).
  const Md a = leaf_hash(hasher, 1, to_bytes("xy"));
  const Md l = Md(to_bytes("0123456789abcdefghij"));
  const Md r = Md(to_bytes("ABCDEFGHIJKLMNOPQRST"));
  EXPECT_NE(internal_hash(hasher, l, r),
            hasher.hash(to_bytes(std::string(1, 0x00))));
  EXPECT_EQ(a, leaf_hash(hasher, 1, to_bytes("xy")));
  EXPECT_NE(a, leaf_hash(hasher, 2, to_bytes("xy")));
}

// ---- end-to-end audits -------------------------------------------------------

class AuditTest : public ::testing::Test {
 protected:
  AuditTest()
      : channel_([this](BytesView req) { return server_.handle(req); }),
        client_(channel_, rnd_),
        auditor_(channel_, HashAlg::kSha1, 1) {}

  void outsource(std::size_t n) {
    // Build via the client, then initialize the auditor trustlessly from
    // the same ciphertexts (fetched through verified bootstrap: here we
    // recompute them from the server for test brevity, then cross-check
    // against an honest rebuild).
    auto fh = client_.outsource(1, n,
                                [](std::size_t i) { return payload_for(i); });
    ASSERT_TRUE(fh.is_ok());
    fh_ = std::move(fh).value();
    std::vector<std::pair<std::uint64_t, BytesView>> items;
    const auto* file = server_.file(1);
    std::vector<const Bytes*> cts;
    for (std::uint64_t i = 0; i < n; ++i) {
      auto slot = file->items().find(i);
      ASSERT_TRUE(slot.has_value());
      cts.push_back(&file->items().at(*slot).ciphertext);
      items.emplace_back(i, BytesView(*cts.back()));
    }
    auditor_.init_from_items(items);
    // Auditor's locally computed root equals the honest server's root.
    ASSERT_EQ(auditor_.expected_root(), file->integrity_root());
  }

  CloudServer server_;
  SystemRandom rnd_;
  net::DirectChannel channel_;
  Client client_;
  integrity::Auditor auditor_;
  Client::FileHandle fh_;
};

TEST_F(AuditTest, HonestAuditsPass) {
  outsource(16);
  const std::uint64_t ids[] = {0, 5, 15};
  EXPECT_TRUE(auditor_.audit_items(ids));
  EXPECT_TRUE(auditor_.audit_random(8, rnd_));
  auto ct = auditor_.fetch_verified(7);
  ASSERT_TRUE(ct.is_ok());
  EXPECT_FALSE(ct.value().empty());
}

TEST_F(AuditTest, SubstitutedCiphertextCaught) {
  outsource(8);
  // Server swaps item 3's ciphertext for item 4's (both are valid records).
  auto* file = server_.mutable_file(1);
  const auto slot3 = *file->items().find(3);
  const auto slot4 = *file->items().find(4);
  const Bytes ct4 = file->items().at(slot4).ciphertext;
  const std::uint64_t keep_plain = file->items().at(slot3).plain_size;
  // Mutate storage behind the hash tree's back (a malicious flip).
  const_cast<cloud::ItemStore&>(file->items())
      .set_ciphertext(slot3, ct4, keep_plain);
  const std::uint64_t ids[] = {3};
  const Status st = auditor_.audit_items(ids);
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::kTamperDetected);
  EXPECT_FALSE(auditor_.fetch_verified(3).is_ok());
}

TEST_F(AuditTest, RollbackCaught) {
  outsource(8);
  // The client commits to a modification (root rolls forward), but the
  // server silently drops it — a rollback/omission attack. Every subsequent
  // proof folds to the stale root and is rejected.
  ASSERT_TRUE(auditor_.before_modify(2, Bytes(64, 0x7)));
  const std::uint64_t ids[] = {2};
  const Status st = auditor_.audit_items(ids);
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::kTamperDetected);
}

TEST_F(AuditTest, RootTracksModify) {
  outsource(10);
  const Bytes new_ct = client_.codec().seal(
      crypto::DeterministicRandom(1).random_md(20), payload_for(99), 4,
      rnd_);
  ASSERT_TRUE(auditor_.before_modify(4, new_ct));
  // Apply the actual modification with the exact ciphertext.
  ASSERT_TRUE(server_.modify(1, 4, new_ct, payload_for(99).size()));
  EXPECT_EQ(auditor_.expected_root(), server_.file(1)->integrity_root());
  const std::uint64_t ids[] = {4};
  EXPECT_TRUE(auditor_.audit_items(ids));
}

TEST_F(AuditTest, RootTracksClientOperations) {
  outsource(9);
  Xoshiro256 rng(77);
  std::vector<std::uint64_t> live;
  for (std::uint64_t i = 0; i < 9; ++i) live.push_back(i);

  for (int round = 0; round < 30; ++round) {
    const bool do_delete = !live.empty() && rng.next_below(2) == 0;
    if (do_delete) {
      const std::size_t idx = rng.next_below(live.size());
      const std::uint64_t id = live[idx];
      ASSERT_TRUE(auditor_.before_delete(id)) << "round " << round;
      ASSERT_TRUE(client_.erase_item(fh_, proto::ItemRef::id(id)));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      // Pre-seal the insertion client-side so the auditor can commit to the
      // exact bytes, then push them through a raw insert exchange.
      const std::uint64_t id = client_.counter();
      auto info = server_.insert_begin(1);
      ASSERT_TRUE(info.is_ok());
      auto plan = client_.math().plan_insert(info.value(),
                                             fh_.key.value(), rnd_);
      ASSERT_TRUE(plan.is_ok());
      plan.value().commit.item_id = id;
      const Bytes payload = payload_for(1000 + round);
      plan.value().commit.ciphertext =
          client_.codec().seal(plan.value().item_key, payload, id, rnd_);
      plan.value().commit.plain_size = payload.size();
      ASSERT_TRUE(auditor_.before_insert(
          id, plan.value().commit.ciphertext));
      ASSERT_TRUE(server_.insert_commit(1, plan.value().commit));
      client_.set_counter(id + 1);
      live.push_back(id);
    }
    ASSERT_EQ(auditor_.expected_root(), server_.file(1)->integrity_root())
        << "round " << round << (do_delete ? " delete" : " insert");
  }
  // Everything still audits.
  EXPECT_TRUE(auditor_.audit_random(6, rnd_));
}

TEST_F(AuditTest, DrainToEmptyAndRefill) {
  outsource(3);
  for (std::uint64_t id : {0u, 1u, 2u}) {
    ASSERT_TRUE(auditor_.before_delete(id));
    ASSERT_TRUE(client_.erase_item(fh_, proto::ItemRef::id(id)));
    ASSERT_EQ(auditor_.expected_root(), server_.file(1)->integrity_root());
  }
  EXPECT_EQ(auditor_.leaf_count(), 0u);
}

TEST_F(AuditTest, ForgedProofRejected) {
  outsource(8);
  // Ask for an audit of item 1 but have a fake server answer with item 2's
  // (valid) entry: positional binding must catch it.
  net::DirectChannel evil([this](BytesView req) {
    auto env = proto::open_message(req);
    if (env && env.value().type == proto::MsgType::kAuditReq) {
      proto::Reader r(env.value().payload);
      auto areq = proto::AuditReq::from(r);
      if (areq && !areq.value().by_leaf && areq.value().targets.size() == 1 &&
          areq.value().targets[0] == 1) {
        areq.value().targets[0] = 2;
        return server_.handle(areq.value().to_frame());
      }
    }
    return server_.handle(req);
  });
  integrity::Auditor evil_auditor(evil, HashAlg::kSha1, 1);
  // Clone expected state from the honest auditor via re-init.
  const auto* file = server_.file(1);
  std::vector<std::pair<std::uint64_t, BytesView>> items;
  std::vector<const Bytes*> keep;
  for (std::uint64_t i = 0; i < 8; ++i) {
    keep.push_back(&file->items().at(*file->items().find(i)).ciphertext);
    items.emplace_back(i, BytesView(*keep.back()));
  }
  evil_auditor.init_from_items(items);
  const std::uint64_t ids[] = {1};
  const Status st = evil_auditor.audit_items(ids);
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::kTamperDetected);
}

TEST_F(AuditTest, IntegrityDisabledReportsUnsupported) {
  CloudServer bare(CloudServer::Options{true, /*enable_integrity=*/false});
  net::DirectChannel ch([&bare](BytesView req) { return bare.handle(req); });
  Client c(ch, rnd_);
  auto fh = c.outsource(1, 4, [](std::size_t i) { return payload_for(i); });
  ASSERT_TRUE(fh.is_ok());
  integrity::Auditor a(ch, HashAlg::kSha1, 1);
  const std::uint64_t ids[] = {0};
  EXPECT_EQ(a.audit_items(ids).code(), Errc::kUnsupported);
}

}  // namespace
}  // namespace fgad::integrity
