// Test harness gluing the client-side math to the server-side state without
// the wire protocol, plus a reference model.
//
// Harness drives the exact production components (FileStore = ModulationTree
// + ItemStore, ClientMath, ItemCodec, Outsourcer) through the paper's
// operations and *remembers every live item's data key from the moment it
// was created*. verify_all() then asserts the two core theorems after any
// sequence of operations:
//   * Theorem 1 — every surviving item's key, re-derived from the current
//     tree under the current master key, equals its original key, and the
//     item still decrypts;
//   * structural — the tree stays left-complete and back-pointers stay
//     consistent.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "cloud/file_store.h"
#include "core/client_math.h"
#include "core/item_codec.h"
#include "core/outsource.h"
#include "crypto/secure_buffer.h"

namespace fgad::test {

using cloud::FileStore;
using core::ClientMath;
using core::ItemCodec;
using core::ModulationTree;
using core::NodeId;
using crypto::HashAlg;
using crypto::MasterKey;
using crypto::Md;

inline Bytes payload_for(std::size_t i, std::size_t size = 24) {
  std::string s = "item-" + std::to_string(i) + "-";
  while (s.size() < size) {
    s.push_back(static_cast<char>('a' + (i + s.size()) % 26));
  }
  s.resize(size);
  return to_bytes(s);
}

class Harness {
 public:
  explicit Harness(HashAlg alg = HashAlg::kSha1, std::uint64_t seed = 42,
                   bool track_duplicates = true)
      : alg_(alg),
        track_(track_duplicates),
        rnd_(seed),
        math_(alg),
        codec_(alg),
        store_(alg, track_duplicates) {}

  void outsource(std::size_t n) {
    core::Outsourcer out(alg_, track_);
    key_ = MasterKey::generate(rnd_, math_.width());
    auto built = out.build(
        key_, n, [&](std::size_t i) { return payload_for(i); }, counter_,
        rnd_);
    std::vector<FileStore::IngestItem> items;
    items.reserve(built.items.size());
    for (auto& it : built.items) {
      items.push_back(FileStore::IngestItem{
          it.item_id, std::move(it.ciphertext), it.plain_size});
    }
    ASSERT_TRUE(store_.ingest(std::move(built.tree), std::move(items)));
    // Record expected plaintext + key per item.
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t id = i;  // counter started at 0
      auto slot = store_.items().find(id);
      ASSERT_TRUE(slot.has_value());
      const NodeId leaf = store_.items().at(*slot).leaf;
      expected_[id] = Expected{payload_for(i), key_of(leaf)};
    }
  }

  /// Full deletion through DeleteInfo -> plan -> apply.
  Status erase(std::uint64_t item_id) {
    auto slot = store_.items().find(item_id);
    if (!slot) {
      return Status(Errc::kNotFound, "harness: no such item");
    }
    auto info = store_.delete_begin(*slot);
    if (!info) return info.status();
    MasterKey fresh = MasterKey::generate(rnd_, math_.width());
    auto plan =
        math_.plan_delete(info.value(), key_.value(), fresh.value(), rnd_);
    if (!plan) return plan.status();
    // Verify the target decrypts (the client's acceptance rule).
    auto opened = codec_.open(plan.value().old_key, info.value().ciphertext);
    if (!opened) {
      return Status(Errc::kTamperDetected, "harness: MT(k) rejected");
    }
    if (auto st = store_.delete_commit(plan.value().commit); !st) {
      return st;
    }
    key_ = std::move(fresh);
    dead_keys_.push_back(plan.value().old_key);
    expected_.erase(item_id);
    return Status::ok();
  }

  /// Merged-cut bulk deletion through DeleteManyInfo -> plan -> apply:
  /// one fresh key covers every target. Also asserts the economics claim
  /// behind the merge — the merged cut never exceeds the sum of the
  /// individual sibling cuts it replaces.
  Status erase_many(const std::vector<std::uint64_t>& ids) {
    std::vector<std::uint32_t> slots;
    slots.reserve(ids.size());
    for (std::uint64_t id : ids) {
      auto slot = store_.items().find(id);
      if (!slot) {
        return Status(Errc::kNotFound, "harness: no such item");
      }
      slots.push_back(*slot);
    }
    std::size_t individual_sum = 0;
    for (std::uint32_t s : slots) {
      auto one = store_.delete_begin(s);
      if (!one) return one.status();
      individual_sum += one.value().cut.size();
    }
    auto info = store_.delete_many_begin(slots);
    if (!info) return info.status();
    EXPECT_LE(info.value().cut.size(), individual_sum);
    MasterKey fresh = MasterKey::generate(rnd_, math_.width());
    auto plan = math_.plan_delete_many(info.value(), key_.value(),
                                       fresh.value(), rnd_);
    if (!plan) return plan.status();
    std::vector<Md> old_keys;
    for (std::size_t i = 0; i < info.value().targets.size(); ++i) {
      auto opened = codec_.open(plan.value().old_keys[i],
                                info.value().targets[i].ciphertext);
      if (!opened || opened.value().r != info.value().targets[i].item_id) {
        return Status(Errc::kTamperDetected, "harness: MT(k) rejected");
      }
      old_keys.push_back(plan.value().old_keys[i]);
    }
    if (auto st = store_.delete_many_commit(plan.value().commit); !st) {
      return st;
    }
    key_ = std::move(fresh);
    for (const Md& k : old_keys) dead_keys_.push_back(k);
    for (std::uint64_t id : ids) expected_.erase(id);
    return Status::ok();
  }

  Result<std::uint64_t> insert(const Bytes& payload) {
    const core::InsertInfo info = store_.insert_begin();
    auto plan = math_.plan_insert(info, key_.value(), rnd_);
    if (!plan) return plan.error();
    const std::uint64_t id = counter_++;
    plan.value().commit.item_id = id;
    plan.value().commit.ciphertext =
        codec_.seal(plan.value().item_key, payload, id, rnd_);
    if (auto st = store_.insert_commit(plan.value().commit); !st) {
      return Error(st.error());
    }
    expected_[id] = Expected{payload, plan.value().item_key};
    return id;
  }

  Result<Bytes> access(std::uint64_t item_id) {
    auto slot = store_.items().find(item_id);
    if (!slot) return Error(Errc::kNotFound, "harness: no such item");
    auto info = store_.access(*slot);
    if (!info) return info.error();
    const Md key =
        math_.derive_key(key_.value(), info.value().path, info.value().leaf_mod);
    auto opened = codec_.open(key, info.value().ciphertext);
    if (!opened) return Error(Errc::kIntegrityMismatch, "harness: bad item");
    return std::move(opened.value().plaintext);
  }

  /// Asserts Theorem 1 + structural invariants for the whole store.
  void verify_all() const {
    const ModulationTree& t = store_.tree();
    ASSERT_EQ(t.leaf_count(), expected_.size());
    ASSERT_EQ(store_.items().size(), expected_.size());
    ASSERT_TRUE(t.node_count() == 0 || t.node_count() % 2 == 1);
    for (const auto& [id, exp] : expected_) {
      auto slot = store_.items().find(id);
      ASSERT_TRUE(slot.has_value()) << "item " << id << " lost";
      const auto& rec = store_.items().at(*slot);
      ASSERT_TRUE(t.is_leaf(rec.leaf)) << "item " << id << " leaf invalid";
      ASSERT_EQ(t.item_slot(rec.leaf), *slot) << "back-pointer broken";
      const Md key = key_of(rec.leaf);
      ASSERT_EQ(key, exp.key) << "Theorem 1 violated for item " << id;
      auto opened = codec_.open(key, rec.ciphertext);
      ASSERT_TRUE(opened.is_ok()) << "item " << id << " undecryptable";
      ASSERT_EQ(opened.value().plaintext, exp.payload);
      ASSERT_EQ(opened.value().r, id);
    }
  }

  /// Derives the current data key of a leaf from server state + master key.
  Md key_of(NodeId leaf) const {
    const ModulationTree& t = store_.tree();
    return math_.derive_key(key_.value(), t.path_to(leaf), t.leaf_mod(leaf));
  }

  FileStore& store() { return store_; }
  const FileStore& store() const { return store_; }
  ClientMath& math() { return math_; }
  ItemCodec& codec() { return codec_; }
  crypto::DeterministicRandom& rnd() { return rnd_; }
  MasterKey& master() { return key_; }
  std::uint64_t& counter() { return counter_; }
  const std::vector<Md>& dead_keys() const { return dead_keys_; }

  std::vector<std::uint64_t> live_ids() const {
    std::vector<std::uint64_t> ids;
    ids.reserve(expected_.size());
    for (const auto& [id, exp] : expected_) {
      ids.push_back(id);
    }
    return ids;
  }

  const Bytes& expected_payload(std::uint64_t id) const {
    return expected_.at(id).payload;
  }
  const Md& expected_key(std::uint64_t id) const {
    return expected_.at(id).key;
  }

 private:
  struct Expected {
    Bytes payload;
    Md key;
  };

  HashAlg alg_;
  bool track_;
  crypto::DeterministicRandom rnd_;
  ClientMath math_;
  ItemCodec codec_;
  FileStore store_;
  MasterKey key_;
  std::uint64_t counter_ = 0;
  std::map<std::uint64_t, Expected> expected_;
  std::vector<Md> dead_keys_;
};

}  // namespace fgad::test
