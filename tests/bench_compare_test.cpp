// Unit tests for the bench_compare engine (tools/bench_compare_core.h):
// JSON parsing of both bench schemas, row matching, tolerance math, and
// the acceptance-criterion behaviors — identical inputs pass, an injected
// >15% p95 regression fails.
#include "tools/bench_compare_core.h"

#include <gtest/gtest.h>

#include <string>

namespace fgad::benchcmp {
namespace {

const char* kBaseline = R"({
  "bench": "wal_overhead",
  "schema": 1,
  "meta": {"max_n": 4096, "samples": 200},
  "rows": [
    {"mode": "off", "wal": 0, "n": 4096, "pairs": 200,
     "mutations_per_s": 36000.0,
     "delete_p50_us": 36.1, "delete_p95_us": 59.2, "delete_p99_us": 154.1,
     "delete_samples": 200},
    {"mode": "fsync", "wal": 1, "n": 4096, "pairs": 200,
     "mutations_per_s": 2600.0,
     "delete_p50_us": 316.0, "delete_p95_us": 960.2, "delete_p99_us": 1642.8,
     "delete_samples": 200}
  ]
})";

/// The baseline with one metric of one row scaled by `factor`.
std::string with_scaled(const std::string& metric, double factor) {
  auto f = parse_bench_json(kBaseline).value();
  std::string out = kBaseline;
  // Rebuild via parse->mutate is overkill for a test fixture; patch the
  // literal: find `"<metric>": <value>` in the fsync row and rescale.
  (void)f;
  const std::string needle = "\"" + metric + "\": ";
  const std::size_t row = out.find("\"mode\": \"fsync\"");
  const std::size_t pos = out.find(needle, row);
  EXPECT_NE(pos, std::string::npos);
  const std::size_t vstart = pos + needle.size();
  std::size_t vend = out.find_first_of(",}\n", vstart);
  const double v = std::stod(out.substr(vstart, vend - vstart));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v * factor);
  out = out.substr(0, vstart) + buf + out.substr(vend);
  return out;
}

TEST(BenchCompareJson, ParsesBenchSchema) {
  auto f = parse_bench_json(kBaseline);
  ASSERT_TRUE(f) << f.status().to_string();
  EXPECT_EQ(f.value().bench, "wal_overhead");
  ASSERT_EQ(f.value().rows.size(), 2u);
  const Row& r0 = f.value().rows[0];
  // Identity excludes metrics and sample counts; includes mode/wal/n.
  EXPECT_NE(r0.key.find("mode=off"), std::string::npos);
  EXPECT_NE(r0.key.find("wal=0"), std::string::npos);
  EXPECT_EQ(r0.key.find("pairs"), std::string::npos);
  EXPECT_EQ(r0.key.find("delete_samples"), std::string::npos);
  EXPECT_EQ(r0.metrics.size(), 4u);
  EXPECT_DOUBLE_EQ(r0.metrics.at("delete_p95_us"), 59.2);
}

TEST(BenchCompareJson, ParsesGoogleBenchmarkSchema) {
  const char* gb = R"({
    "context": {"host_name": "x"},
    "benchmarks": [
      {"name": "BM_DeriveKey/1024", "run_type": "iteration",
       "iterations": 1000, "real_time": 123.4, "cpu_time": 120.1,
       "time_unit": "ns"}
    ]
  })";
  auto f = parse_bench_json(gb);
  ASSERT_TRUE(f) << f.status().to_string();
  EXPECT_EQ(f.value().bench, "micro_core");
  ASSERT_EQ(f.value().rows.size(), 1u);
  EXPECT_DOUBLE_EQ(f.value().rows[0].metrics.at("real_time"), 123.4);
  EXPECT_NE(f.value().rows[0].key.find("BM_DeriveKey/1024"),
            std::string::npos);
}

TEST(BenchCompareJson, RejectsGarbage) {
  EXPECT_FALSE(parse_bench_json("not json"));
  EXPECT_FALSE(parse_bench_json("{\"bench\": \"x\"}"));  // no rows
  EXPECT_FALSE(parse_bench_json("[1,2,3]"));
  EXPECT_FALSE(parse_bench_json("{\"rows\": [1]}"));  // row not an object
  EXPECT_FALSE(parse_bench_json("{\"rows\": []} trailing"));
}

TEST(BenchCompareClassify, MetricKeys) {
  EXPECT_TRUE(is_metric_key("delete_p95_us"));
  EXPECT_TRUE(is_metric_key("wal_fsync_ns"));
  EXPECT_TRUE(is_metric_key("mutations_per_s"));
  EXPECT_TRUE(is_metric_key("throughput_mbps"));
  EXPECT_TRUE(is_metric_key("overhead_pct"));
  EXPECT_FALSE(is_metric_key("delete_samples"));
  EXPECT_FALSE(is_metric_key("pairs"));
  EXPECT_FALSE(is_metric_key("mode"));
  EXPECT_FALSE(is_metric_key("n"));
  // Rates are higher-is-better; latencies lower-is-better.
  EXPECT_TRUE(is_rate_key("mutations_per_s"));
  EXPECT_FALSE(is_rate_key("delete_p95_us"));
  EXPECT_TRUE(is_latency_key("delete_p95_us"));
}

TEST(BenchCompareVerdict, IdenticalInputsPass) {
  auto f = parse_bench_json(kBaseline).value();
  const auto r = compare(f, f);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.regressions, 0u);
  EXPECT_EQ(r.rows_matched, 2u);
  EXPECT_GT(r.metrics_compared, 0u);
  EXPECT_TRUE(r.unmatched_old.empty());
  EXPECT_TRUE(r.unmatched_new.empty());
}

TEST(BenchCompareVerdict, InjectedP95RegressionFails) {
  // The acceptance criterion: >15% p95 regression exits nonzero.
  auto oldf = parse_bench_json(kBaseline).value();
  auto newf = parse_bench_json(with_scaled("delete_p95_us", 1.20)).value();
  const auto r = compare(oldf, newf);
  EXPECT_FALSE(r.ok());
  ASSERT_GE(r.diffs.size(), 1u);
  // Sorted worst-first: the doctored metric leads.
  EXPECT_EQ(r.diffs[0].metric, "delete_p95_us");
  EXPECT_TRUE(r.diffs[0].regression);
  EXPECT_NEAR(r.diffs[0].worse_by, 0.20, 1e-9);
}

TEST(BenchCompareVerdict, WithinToleranceChangePasses) {
  auto oldf = parse_bench_json(kBaseline).value();
  auto newf = parse_bench_json(with_scaled("delete_p95_us", 1.10)).value();
  EXPECT_TRUE(compare(oldf, newf).ok());
}

TEST(BenchCompareVerdict, ImprovementNeverFails) {
  auto oldf = parse_bench_json(kBaseline).value();
  // 2x faster p95 and 2x higher throughput: both good directions.
  auto newf = parse_bench_json(with_scaled("delete_p95_us", 0.5)).value();
  EXPECT_TRUE(compare(oldf, newf).ok());
  auto newf2 = parse_bench_json(with_scaled("mutations_per_s", 2.0)).value();
  EXPECT_TRUE(compare(oldf, newf2).ok());
}

TEST(BenchCompareVerdict, ThroughputDropFails) {
  auto oldf = parse_bench_json(kBaseline).value();
  auto newf = parse_bench_json(with_scaled("mutations_per_s", 0.5)).value();
  const auto r = compare(oldf, newf);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.diffs[0].metric, "mutations_per_s");
  EXPECT_NEAR(r.diffs[0].worse_by, 0.5, 1e-9);
}

TEST(BenchCompareVerdict, P99GetsWiderTolerance) {
  auto oldf = parse_bench_json(kBaseline).value();
  // +30% on p99 is inside the 35% tail tolerance...
  EXPECT_TRUE(
      compare(oldf, parse_bench_json(with_scaled("delete_p99_us", 1.30)).value())
          .ok());
  // ...but +40% is not.
  EXPECT_FALSE(
      compare(oldf, parse_bench_json(with_scaled("delete_p99_us", 1.40)).value())
          .ok());
}

TEST(BenchCompareVerdict, PerMetricOverrideWins) {
  auto oldf = parse_bench_json(kBaseline).value();
  auto newf = parse_bench_json(with_scaled("delete_p95_us", 1.20)).value();
  CompareOptions opts;
  opts.per_metric["delete_p95_us"] = 0.30;
  EXPECT_TRUE(compare(oldf, newf, opts).ok());
  opts.per_metric["delete_p95_us"] = 0.10;
  EXPECT_FALSE(compare(oldf, newf, opts).ok());
}

TEST(BenchCompareVerdict, UnmatchedRowsReportedNotFailed) {
  auto oldf = parse_bench_json(kBaseline).value();
  const char* smaller = R"({
    "bench": "wal_overhead", "schema": 1, "meta": {},
    "rows": [
      {"mode": "off", "wal": 0, "n": 4096,
       "mutations_per_s": 36000.0, "delete_p50_us": 36.1,
       "delete_p95_us": 59.2, "delete_p99_us": 154.1}
    ]
  })";
  auto newf = parse_bench_json(smaller).value();
  const auto r = compare(oldf, newf);
  EXPECT_TRUE(r.ok());  // a missing row is reported, not a perf verdict
  EXPECT_EQ(r.rows_matched, 1u);
  ASSERT_EQ(r.unmatched_old.size(), 1u);
  EXPECT_NE(r.unmatched_old[0].find("mode=fsync"), std::string::npos);
}

TEST(BenchCompareReport, JsonVerdictMachineReadable) {
  auto oldf = parse_bench_json(kBaseline).value();
  auto newf = parse_bench_json(with_scaled("delete_p95_us", 1.20)).value();
  const auto bad = compare(oldf, newf);
  const std::string rep = render_report_json("wal_overhead", bad);
  EXPECT_NE(rep.find("\"verdict\":\"regression\""), std::string::npos);
  EXPECT_NE(rep.find("\"metric\":\"delete_p95_us\""), std::string::npos);
  // The report itself must be parseable JSON.
  EXPECT_TRUE(JsonParser(rep).parse());

  const auto good = compare(oldf, oldf);
  const std::string rep2 = render_report_json("wal_overhead", good);
  EXPECT_NE(rep2.find("\"verdict\":\"ok\""), std::string::npos);
  EXPECT_TRUE(JsonParser(rep2).parse());
}

TEST(BenchCompareReport, TextReportNamesRegressions) {
  auto oldf = parse_bench_json(kBaseline).value();
  auto newf = parse_bench_json(with_scaled("delete_p95_us", 1.20)).value();
  const std::string text =
      render_report_text("wal_overhead", compare(oldf, newf));
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("delete_p95_us"), std::string::npos);
}

TEST(BenchCompareJson, RealSnapshotRoundTrip) {
  // Every committed snapshot must stay parseable and self-compare clean —
  // this is the invariant CI's perf job leans on.
  // (The file may not exist when tests run from an unexpected CWD; skip
  // rather than fail in that case.)
  const char* candidates[] = {
      "../bench/results/BENCH_wal_overhead.json",
      "../../bench/results/BENCH_wal_overhead.json",
      "bench/results/BENCH_wal_overhead.json",
  };
  for (const char* path : candidates) {
    std::FILE* f = std::fopen(path, "rb");
    if (f == nullptr) {
      continue;
    }
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, n);
    }
    std::fclose(f);
    auto parsed = parse_bench_json(text);
    ASSERT_TRUE(parsed) << parsed.status().to_string();
    EXPECT_TRUE(compare(parsed.value(), parsed.value()).ok());
    return;
  }
  GTEST_SKIP() << "snapshot not reachable from test CWD";
}

}  // namespace
}  // namespace fgad::benchcmp
