// Model-based fuzzing: long random operation sequences (delete / insert /
// access / full verification) against the harness's reference model, across
// seeds, hash algorithms, and starting sizes.
#include <gtest/gtest.h>

#include "support/harness.h"

namespace fgad::test {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  std::size_t start_n;
  int ops;
  HashAlg alg;
};

class FuzzModel : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzModel, RandomOpsMatchModel) {
  const FuzzCase c = GetParam();
  Harness h(c.alg, c.seed);
  h.outsource(c.start_n);
  Xoshiro256 rng(c.seed * 7919 + 13);
  int next_payload = 100000;
  for (int op = 0; op < c.ops; ++op) {
    const auto ids = h.live_ids();
    const std::uint64_t dice = rng.next_below(10);
    if (dice < 4 && !ids.empty()) {
      // delete a random live item
      ASSERT_TRUE(h.erase(ids[rng.next_below(ids.size())])) << "op " << op;
    } else if (dice < 7) {
      ASSERT_TRUE(h.insert(payload_for(next_payload++)).is_ok())
          << "op " << op;
    } else if (!ids.empty()) {
      // access a random live item and check its content
      const std::uint64_t id = ids[rng.next_below(ids.size())];
      auto got = h.access(id);
      ASSERT_TRUE(got.is_ok()) << "op " << op;
      EXPECT_EQ(got.value(), h.expected_payload(id)) << "op " << op;
    }
    // Full-state verification every few ops keeps runtime reasonable while
    // still catching corruption close to its source.
    if (op % 5 == 4) {
      h.verify_all();
      if (::testing::Test::HasFailure()) return;
    }
  }
  h.verify_all();
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    cases.push_back(FuzzCase{seed, 1 + seed * 7 % 30, 120, HashAlg::kSha1});
  }
  cases.push_back(FuzzCase{11, 0, 120, HashAlg::kSha1});
  cases.push_back(FuzzCase{12, 200, 80, HashAlg::kSha1});
  cases.push_back(FuzzCase{13, 16, 100, HashAlg::kSha256});
  cases.push_back(FuzzCase{14, 1, 100, HashAlg::kSha256});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzModel, ::testing::ValuesIn(fuzz_cases()));

// Duplicate tracking disabled must behave identically for honest parties.
TEST(FuzzModel, NoDuplicateTrackingSameBehaviour) {
  Harness h(HashAlg::kSha1, 55, /*track_duplicates=*/false);
  h.outsource(25);
  Xoshiro256 rng(55);
  int next_payload = 5000;
  for (int op = 0; op < 60; ++op) {
    const auto ids = h.live_ids();
    if (!ids.empty() && rng.next_below(2) == 0) {
      ASSERT_TRUE(h.erase(ids[rng.next_below(ids.size())]));
    } else {
      ASSERT_TRUE(h.insert(payload_for(next_payload++)).is_ok());
    }
  }
  h.verify_all();
}

}  // namespace
}  // namespace fgad::test
