// ModulationTree: construction, path/cut extraction, serialization,
// duplicate tracking.
#include <gtest/gtest.h>

#include "core/tree.h"
#include "crypto/random.h"

namespace fgad::core {
namespace {

using crypto::DeterministicRandom;
using crypto::Md;

ModulationTree make_tree(std::size_t n, DeterministicRandom& rnd,
                         bool track = true) {
  ModulationTree tree(ModulationTree::Config{HashAlg::kSha1, track});
  tree.build(
      n, [&](NodeId) { return rnd.random_md(20); },
      [&](NodeId v) {
        return std::pair<Md, std::uint64_t>(rnd.random_md(20), v * 10);
      });
  return tree;
}

TEST(Tree, EmptyTree) {
  ModulationTree tree{ModulationTree::Config{HashAlg::kSha1, true}};
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.node_count(), 0u);
  EXPECT_EQ(tree.leaf_count(), 0u);
  EXPECT_FALSE(tree.is_leaf(0));
}

TEST(Tree, BuildShape) {
  DeterministicRandom rnd(1);
  const auto tree = make_tree(6, rnd);
  EXPECT_EQ(tree.node_count(), 11u);
  EXPECT_EQ(tree.leaf_count(), 6u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_FALSE(tree.is_leaf(v)) << v;
  }
  for (NodeId v = 5; v < 11; ++v) {
    EXPECT_TRUE(tree.is_leaf(v)) << v;
    EXPECT_EQ(tree.item_slot(v), v * 10);
  }
}

TEST(Tree, PathGeometry) {
  DeterministicRandom rnd(2);
  const auto tree = make_tree(8, rnd);  // 15 nodes, leaves 7..14
  const PathView p = tree.path_to(12);
  ASSERT_TRUE(p.well_formed());
  EXPECT_EQ(p.nodes.front(), 0u);
  EXPECT_EQ(p.target(), 12u);
  EXPECT_EQ(p.depth(), 3u);
  // Links match the tree's stored modulators.
  for (std::size_t i = 1; i < p.nodes.size(); ++i) {
    EXPECT_EQ(p.links[i - 1], tree.link_mod(p.nodes[i]));
  }
}

TEST(Tree, SingleLeafPath) {
  DeterministicRandom rnd(3);
  const auto tree = make_tree(1, rnd);
  const PathView p = tree.path_to(0);
  EXPECT_TRUE(p.well_formed());
  EXPECT_EQ(p.depth(), 0u);
  EXPECT_TRUE(tree.is_leaf(0));
}

TEST(Tree, CutIsSiblingsTopDown) {
  DeterministicRandom rnd(4);
  const auto tree = make_tree(8, rnd);
  const NodeId k = 11;
  const auto cut = tree.cut_for(k);
  const PathView p = tree.path_to(k);
  ASSERT_EQ(cut.size(), p.depth());
  for (std::size_t i = 0; i < cut.size(); ++i) {
    EXPECT_EQ(cut[i].node, sibling_of(p.nodes[i + 1]));
    EXPECT_EQ(cut[i].link, tree.link_mod(cut[i].node));
    EXPECT_EQ(cut[i].is_leaf, tree.is_leaf(cut[i].node));
  }
}

// The cut separates all other leaves from the root: every other leaf's path
// passes through exactly one cut node.
TEST(Tree, CutSeparatesAllOtherLeaves) {
  DeterministicRandom rnd(5);
  const auto tree = make_tree(13, rnd);
  for (NodeId k = 12; k < 25; ++k) {
    const auto cut = tree.cut_for(k);
    for (NodeId leaf = 12; leaf < 25; ++leaf) {
      if (leaf == k) continue;
      int crossings = 0;
      for (const auto& c : cut) {
        if (is_ancestor_or_self(c.node, leaf)) {
          ++crossings;
        }
      }
      EXPECT_EQ(crossings, 1) << "k=" << k << " leaf=" << leaf;
    }
  }
}

TEST(Tree, DeleteInfoAssembly) {
  DeterministicRandom rnd(6);
  const auto tree = make_tree(9, rnd);
  const DeleteInfo info = tree.delete_info_for(10);
  EXPECT_EQ(info.path.target(), 10u);
  EXPECT_EQ(info.cut.size(), info.path.depth());
  EXPECT_TRUE(info.has_balance);
  EXPECT_EQ(info.t_path.target(), tree.last_leaf());
  EXPECT_EQ(info.s_link, tree.link_mod(sibling_of(tree.last_leaf())));
}

TEST(Tree, DeleteInfoSingleLeafNoBalance) {
  DeterministicRandom rnd(7);
  const auto tree = make_tree(1, rnd);
  const DeleteInfo info = tree.delete_info_for(0);
  EXPECT_FALSE(info.has_balance);
  EXPECT_TRUE(info.cut.empty());
}

TEST(Tree, InsertInfo) {
  DeterministicRandom rnd(8);
  const auto tree = make_tree(5, rnd);  // 9 nodes; insert parent = 4
  const InsertInfo info = tree.insert_info();
  EXPECT_FALSE(info.empty_tree);
  EXPECT_EQ(info.q_path.target(), 4u);
  EXPECT_EQ(info.q_leaf_mod, tree.leaf_mod(4));

  ModulationTree empty{ModulationTree::Config{HashAlg::kSha1, true}};
  EXPECT_TRUE(empty.insert_info().empty_tree);
}

TEST(Tree, SerializeRoundtrip) {
  DeterministicRandom rnd(9);
  for (std::size_t n : {0u, 1u, 2u, 7u, 32u}) {
    const auto tree = make_tree(n, rnd);
    proto::Writer w;
    tree.serialize(w);
    EXPECT_EQ(w.size(), tree.serialized_size()) << "n=" << n;
    proto::Reader r(w.data());
    auto back = ModulationTree::deserialize(
        r, ModulationTree::Config{HashAlg::kSha1, true});
    ASSERT_TRUE(back.is_ok()) << "n=" << n;
    ASSERT_TRUE(r.finish());
    const ModulationTree& t2 = back.value();
    ASSERT_EQ(t2.node_count(), tree.node_count());
    for (NodeId v = 1; v < tree.node_count(); ++v) {
      EXPECT_EQ(t2.link_mod(v), tree.link_mod(v));
    }
    for (NodeId v = (n ? n - 1 : 0); v < tree.node_count(); ++v) {
      EXPECT_EQ(t2.leaf_mod(v), tree.leaf_mod(v));
      EXPECT_EQ(t2.item_slot(v), tree.item_slot(v));
    }
  }
}

TEST(Tree, DeserializeRejectsGarbage) {
  proto::Reader r1(Bytes{});
  EXPECT_FALSE(ModulationTree::deserialize(r1, {}).is_ok());

  proto::Writer w;
  w.u8(99);  // unknown alg
  w.u64(3);
  proto::Reader r2(w.data());
  EXPECT_FALSE(ModulationTree::deserialize(r2, {}).is_ok());

  proto::Writer w2;
  w2.u8(1);
  w2.u64(4);  // even node count is impossible
  proto::Reader r3(w2.data());
  EXPECT_FALSE(ModulationTree::deserialize(r3, {}).is_ok());
}

// Regression: a huge claimed node count must be rejected before any
// allocation happens (found by the decoder fuzzer as a bad_alloc DoS).
TEST(Tree, DeserializeRejectsHugeClaimedCountWithoutAllocating) {
  proto::Writer w;
  w.u8(1);                        // SHA-1
  w.u64((1ull << 38) + 1);        // plausible-looking but absurd, odd count
  w.raw(Bytes(64, 0xab));         // far fewer bytes than the claim implies
  proto::Reader r(w.data());
  auto tree = ModulationTree::deserialize(r, {});
  ASSERT_FALSE(tree.is_ok());
  EXPECT_EQ(tree.code(), Errc::kDecodeError);
}

TEST(Tree, DuplicateTrackingObservesValues) {
  DeterministicRandom rnd(10);
  const auto tree = make_tree(8, rnd);
  EXPECT_TRUE(tree.contains_value(tree.link_mod(3)));
  EXPECT_TRUE(tree.contains_value(tree.leaf_mod(9)));
  EXPECT_FALSE(tree.contains_value(rnd.random_md(20)));
}

TEST(Tree, AccessorsRejectBadNodes) {
  DeterministicRandom rnd(11);
  const auto tree = make_tree(4, rnd);
  EXPECT_THROW(tree.link_mod(0), std::out_of_range);     // root has no link
  EXPECT_THROW(tree.link_mod(100), std::out_of_range);
  EXPECT_THROW(tree.leaf_mod(0), std::out_of_range);     // internal node
  EXPECT_THROW(tree.path_to(100), std::out_of_range);
  EXPECT_THROW(tree.cut_for(0), std::out_of_range);
}

TEST(Tree, SerializedSizeIsLinear) {
  DeterministicRandom rnd(12);
  const auto small = make_tree(10, rnd);
  const auto big = make_tree(100, rnd);
  // 2n-1 links (minus root) * 20 + n * 28 + header.
  EXPECT_GT(big.serialized_size(), 9 * small.serialized_size() / 2);
  EXPECT_LT(big.serialized_size(), 11 * small.serialized_size());
}

}  // namespace
}  // namespace fgad::core
