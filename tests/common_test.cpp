// Common substrate: byte utilities, deterministic RNG, Result/Status.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stopwatch.h"

namespace fgad {
namespace {

TEST(Bytes, HexRoundtrip) {
  const Bytes b = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(b), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), b);
  EXPECT_EQ(from_hex("0001ABFF7F"), b);  // upper-case accepted
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // non-hex
}

TEST(Bytes, XorInto) {
  Bytes a = {0xff, 0x00, 0x55};
  const Bytes b = {0x0f, 0xf0, 0x55};
  xor_into(a, b);
  EXPECT_EQ(a, (Bytes{0xf0, 0xf0, 0x00}));
}

TEST(Bytes, XorIntoLengthMismatchThrows) {
  Bytes a = {1, 2};
  const Bytes b = {1, 2, 3};
  EXPECT_THROW(xor_into(a, b), std::invalid_argument);
}

TEST(Bytes, StringConversion) {
  const Bytes b = to_bytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(to_string(b), "hello");
}

TEST(Bytes, Append) {
  Bytes a = to_bytes("ab");
  append(a, to_bytes("cd"));
  EXPECT_EQ(to_string(a), "abcd");
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.next() == b.next());
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, FillCoversAllLengths) {
  Xoshiro256 rng(9);
  for (std::size_t n = 0; n <= 24; ++n) {
    Bytes buf(n, 0);
    rng.fill(buf);
    if (n >= 8) {
      // Overwhelmingly unlikely to remain all-zero.
      bool nonzero = false;
      for (auto b : buf) nonzero |= (b != 0);
      EXPECT_TRUE(nonzero) << "n=" << n;
    }
  }
}

TEST(Result, StatusOk) {
  const Status st = Status::ok();
  EXPECT_TRUE(st.is_ok());
  EXPECT_TRUE(static_cast<bool>(st));
  EXPECT_EQ(st.code(), Errc::kOk);
  EXPECT_EQ(st.to_string(), "OK");
}

TEST(Result, StatusError) {
  const Status st(Errc::kNotFound, "missing");
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::kNotFound);
  EXPECT_EQ(st.error().message, "missing");
  EXPECT_EQ(st.to_string(), "NOT_FOUND: missing");
}

TEST(Result, ValueAndError) {
  Result<int> ok = 42;
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.code(), Errc::kOk);

  Result<int> bad = Error(Errc::kDecodeError, "nope");
  EXPECT_FALSE(bad.is_ok());
  EXPECT_EQ(bad.code(), Errc::kDecodeError);
  EXPECT_EQ(bad.status().to_string(), "DECODE_ERROR: nope");
}

TEST(Result, MoveValueOut) {
  Result<Bytes> r = to_bytes("payload");
  Bytes b = std::move(r).value();
  EXPECT_EQ(to_string(b), "payload");
}

TEST(Result, ErrcNamesAreStable) {
  EXPECT_STREQ(errc_name(Errc::kTamperDetected), "TAMPER_DETECTED");
  EXPECT_STREQ(errc_name(Errc::kDuplicateModulator), "DUPLICATE_MODULATOR");
  EXPECT_STREQ(errc_name(Errc::kIntegrityMismatch), "INTEGRITY_MISMATCH");
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch sw;
  // Just sanity: time is monotone and non-negative.
  const double t1 = sw.elapsed_seconds();
  const double t2 = sw.elapsed_seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(CumulativeTimer, AccumulatesSections) {
  CumulativeTimer t;
  EXPECT_EQ(t.total_seconds(), 0.0);
  {
    CumulativeTimer::Section s(t);
  }
  {
    CumulativeTimer::Section s(t);
  }
  EXPECT_GT(t.total_seconds(), 0.0);
  t.reset();
  EXPECT_EQ(t.total_seconds(), 0.0);
}

}  // namespace
}  // namespace fgad
