// Protocol suite under injected network faults (DESIGN.md §11).
//
// FaultInjectingChannel sits behind the Transport seam, so the real client
// and server run unmodified while requests are dropped, connections reset
// mid-frame, and response frames truncated or bit-flipped. The properties
// asserted here are the transport-hardening contract:
//   * idempotent RPCs (access, fetches, audit) succeed transparently under
//     retry + redial, within a wall-clock bound;
//   * mutating RPCs (delete, insert) are NEVER resent — they surface the
//     typed transport error and leave server state untouched;
//   * corrupted response frames are detected (decode or integrity error),
//     never silently accepted;
//   * every operation terminates with ok or a typed error — no hangs.
// All fault randomness is seeded, so runs are deterministic.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "client/client.h"
#include "cloud/server.h"
#include "common/stopwatch.h"
#include "net/fault.h"
#include "net/inmemory.h"
#include "net/retry.h"
#include "net/tcp.h"
#include "proto/messages.h"
#include "support/harness.h"

namespace fgad {
namespace {

using client::Client;
using cloud::CloudServer;
using crypto::SystemRandom;
using test::payload_for;

/// RetryChannel dialer producing a fresh fault-injecting channel over an
/// in-process connection to `server`. Each dial gets a distinct seed so a
/// redial does not replay the previous connection's fault pattern.
net::RetryChannel::Dialer faulty_direct_dialer(
    CloudServer& server, net::FaultInjectingChannel::Options opts) {
  auto dial_count = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [&server, opts, dial_count]() mutable
             -> Result<std::unique_ptr<net::RpcChannel>> {
    auto direct = std::make_unique<net::DirectChannel>(
        [&server](BytesView req) { return server.handle(req); });
    net::FaultInjectingChannel::Options per_dial = opts;
    per_dial.seed = opts.seed + dial_count->fetch_add(1);
    return std::unique_ptr<net::RpcChannel>(
        std::make_unique<net::FaultInjectingChannel>(std::move(direct),
                                                     per_dial));
  };
}

net::RetryChannel::Options retry_options(int max_attempts) {
  net::RetryChannel::Options opts;
  opts.max_attempts = max_attempts;
  opts.base_backoff_ms = 1;
  opts.max_backoff_ms = 5;
  opts.retryable = [](BytesView frame) {
    return proto::retryable_request(frame);
  };
  return opts;
}

TEST(FaultInjection, FaultsAreDeterministicAndCounted) {
  net::DirectChannel inner([](BytesView req) {
    return Bytes(req.begin(), req.end());
  });

  // drop_request = 1: every roundtrip times out, server never sees it.
  {
    net::FaultInjectingChannel ch(inner, {.drop_request = 1.0});
    auto resp = ch.roundtrip(to_bytes("x"));
    ASSERT_FALSE(resp.is_ok());
    EXPECT_EQ(resp.error().code, Errc::kTimeout);
    EXPECT_EQ(ch.counters().dropped_requests, 1u);
  }
  // disconnect = 1: first roundtrip resets, channel stays dead until reset().
  {
    net::FaultInjectingChannel ch(inner, {.disconnect = 1.0});
    EXPECT_EQ(ch.roundtrip(to_bytes("x")).code(), Errc::kConnReset);
    EXPECT_TRUE(ch.dead());
    EXPECT_EQ(ch.roundtrip(to_bytes("x")).code(), Errc::kConnReset);
    ch.reset();
    EXPECT_FALSE(ch.dead());
    EXPECT_EQ(ch.roundtrip(to_bytes("x")).code(), Errc::kConnReset);  // redrawn
    EXPECT_EQ(ch.counters().disconnects, 2u);
  }
  // truncate = 1: responses come back shorter, never longer.
  {
    net::FaultInjectingChannel ch(inner, {.truncate_response = 1.0});
    const Bytes req = payload_for(0, 64);
    auto resp = ch.roundtrip(req);
    ASSERT_TRUE(resp.is_ok());
    EXPECT_LT(resp.value().size(), req.size());
    EXPECT_EQ(ch.counters().truncated, 1u);
  }
  // bitflip = 1: same length, exactly one bit differs.
  {
    net::FaultInjectingChannel ch(inner, {.bitflip_response = 1.0});
    const Bytes req = payload_for(0, 64);
    auto resp = ch.roundtrip(req);
    ASSERT_TRUE(resp.is_ok());
    ASSERT_EQ(resp.value().size(), req.size());
    int diff_bits = 0;
    for (std::size_t i = 0; i < req.size(); ++i) {
      diff_bits += __builtin_popcount(resp.value()[i] ^ req[i]);
    }
    EXPECT_EQ(diff_bits, 1);
  }
}

TEST(FaultInjection, IdempotentOpsSucceedUnderDropAndDisconnect) {
  CloudServer server;
  SystemRandom rnd;

  // Clean channel for setup (outsource is mutating, hence not auto-retried).
  net::DirectChannel clean([&server](BytesView req) {
    return server.handle(req);
  });
  Client setup(clean, rnd);
  std::vector<Bytes> items;
  for (int i = 0; i < 16; ++i) items.push_back(payload_for(i));
  auto fh = setup.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());

  net::FaultInjectingChannel::Options faults;
  faults.drop_request = 0.2;
  faults.disconnect = 0.1;
  faults.seed = 7;
  net::RetryChannel retry(faulty_direct_dialer(server, faults),
                          retry_options(/*max_attempts=*/8));
  Client faulty(retry, rnd);

  Stopwatch sw;
  for (std::uint64_t i = 0; i < 16; ++i) {
    auto got = faulty.access(fh.value(), proto::ItemRef::id(i));
    ASSERT_TRUE(got.is_ok()) << "item " << i << ": "
                             << got.status().to_string();
    EXPECT_EQ(got.value(), items[i]);
  }
  auto listed = faulty.list_items(fh.value());
  ASSERT_TRUE(listed.is_ok());
  EXPECT_EQ(listed.value().size(), 16u);
  // ~30% fault rate over dozens of RPCs: redials must have happened, and
  // the loop must finish promptly (backoff is single-digit ms).
  EXPECT_GT(retry.dials(), 1u);
  EXPECT_GT(retry.resends(), 0u);
  EXPECT_LT(sw.elapsed_seconds(), 20.0);
}

TEST(FaultInjection, MutatingOpsAreNeverResent) {
  CloudServer server;
  SystemRandom rnd;
  net::DirectChannel clean([&server](BytesView req) {
    return server.handle(req);
  });
  Client setup(clean, rnd);
  std::vector<Bytes> items = {to_bytes("a"), to_bytes("b"), to_bytes("c")};
  auto fh = setup.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());

  // Every request is dropped on this channel.
  net::FaultInjectingChannel::Options faults;
  faults.drop_request = 1.0;
  net::RetryChannel retry(faulty_direct_dialer(server, faults),
                          retry_options(/*max_attempts=*/3));
  Client faulty(retry, rnd);

  // Idempotent op: retried to exhaustion, then the typed give-up error.
  auto got = faulty.access(fh.value(), proto::ItemRef::id(0));
  ASSERT_FALSE(got.is_ok());
  EXPECT_EQ(got.error().code, Errc::kRetryExhausted);
  const std::uint64_t resends_after_access = retry.resends();
  EXPECT_EQ(resends_after_access, 2u);  // 3 attempts = 1 send + 2 resends

  // Mutating op: fails fast with the underlying transport error and is
  // never resent — an assured-deletion request must not be replayed blind.
  const crypto::Md key_before = fh.value().key.value();
  auto st = faulty.erase_item(fh.value(), proto::ItemRef::id(1));
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::kTimeout);
  EXPECT_EQ(retry.resends(), resends_after_access);
  // The failed delete must not have rotated the client's master key...
  EXPECT_EQ(fh.value().key.value(), key_before);
  // ...and the server still serves the item through a clean channel.
  auto still_there = setup.access(fh.value(), proto::ItemRef::id(1));
  ASSERT_TRUE(still_there.is_ok());
  EXPECT_EQ(still_there.value(), items[1]);
}

TEST(FaultInjection, CorruptedResponsesAreDetectedNotAccepted) {
  CloudServer server;
  SystemRandom rnd;
  net::DirectChannel clean([&server](BytesView req) {
    return server.handle(req);
  });
  Client setup(clean, rnd);
  std::vector<Bytes> items;
  for (int i = 0; i < 8; ++i) items.push_back(payload_for(i, 64));
  auto fh = setup.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());

  // No retry layer: every corruption must surface to the caller.
  net::DirectChannel direct([&server](BytesView req) {
    return server.handle(req);
  });
  for (const bool truncate : {true, false}) {
    net::FaultInjectingChannel::Options faults;
    if (truncate) {
      faults.truncate_response = 1.0;
    } else {
      faults.bitflip_response = 1.0;
    }
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
      faults.seed = seed;
      net::FaultInjectingChannel ch(direct, faults);
      Client c(ch, rnd);
      auto got = c.access(fh.value(), proto::ItemRef::id(seed % 8));
      // A corrupted frame must never be returned as the item's plaintext:
      // either the decoder rejects it or MT(k) integrity catches it. (A
      // bit-flip that lands in the padding the codec discards can still
      // legitimately decode to the right plaintext.)
      if (got.is_ok()) {
        EXPECT_EQ(got.value(), items[seed % 8])
            << (truncate ? "truncate" : "bitflip") << " seed " << seed;
      }
    }
  }
}

TEST(FaultInjection, FullFaultMixOverRealTcpStaysBounded) {
  CloudServer server;
  SystemRandom rnd;
  auto tcp = net::TcpServer::create(
      0, [&server](BytesView req) { return server.handle(req); });
  ASSERT_TRUE(tcp.is_ok());
  const std::uint16_t port = tcp.value()->port();

  // Setup over a clean TCP connection.
  auto clean = net::TcpChannel::connect("127.0.0.1", port);
  ASSERT_TRUE(clean.is_ok());
  Client setup(*clean.value(), rnd);
  std::vector<Bytes> items;
  for (int i = 0; i < 12; ++i) items.push_back(payload_for(i));
  auto fh = setup.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());

  // Dialer: real TCP connect, wrapped in the full fault mix.
  net::TcpChannel::Options tcp_opts;
  tcp_opts.io_timeout_ms = 2000;
  auto dial_count = std::make_shared<std::atomic<std::uint64_t>>(0);
  net::RetryChannel::Dialer dialer =
      [port, tcp_opts, dial_count]() -> Result<std::unique_ptr<net::RpcChannel>> {
    auto ch = net::TcpChannel::connect("127.0.0.1", port, tcp_opts);
    if (!ch) return ch.error();
    net::FaultInjectingChannel::Options faults;
    faults.drop_request = 0.1;
    faults.disconnect = 0.1;
    faults.drop_response = 0.1;
    faults.truncate_response = 0.1;
    faults.bitflip_response = 0.1;
    faults.delay = 0.2;
    faults.delay_ms = 1;
    faults.seed = 100 + dial_count->fetch_add(1);
    return std::unique_ptr<net::RpcChannel>(
        std::make_unique<net::FaultInjectingChannel>(std::move(ch).value(),
                                                     faults));
  };
  net::RetryChannel retry(dialer, retry_options(/*max_attempts=*/8));
  Client faulty(retry, rnd);

  // Every RPC must terminate promptly with ok or a typed error — and a
  // success must return the true plaintext, never a corrupted one.
  Stopwatch sw;
  int ok_count = 0;
  for (int round = 0; round < 30; ++round) {
    const std::uint64_t id = static_cast<std::uint64_t>(round) % 12;
    auto got = faulty.access(fh.value(), proto::ItemRef::id(id));
    if (got.is_ok()) {
      ++ok_count;
      EXPECT_EQ(got.value(), items[id]) << "round " << round;
    } else {
      EXPECT_NE(got.error().code, Errc::kOk) << got.status().to_string();
    }
  }
  // Retry absorbs transport faults; corruption (not retried — the frame
  // arrived) accounts for the rest. Most rounds must still succeed.
  EXPECT_GT(ok_count, 15);
  EXPECT_LT(sw.elapsed_seconds(), 30.0);

  tcp.value()->stop();
}

/// Routes delete-commit frames (single and bulk) through a fault layer
/// while every other frame takes the clean path — the deterministic way
/// to kill exactly the commit phase of a batched deletion.
class CommitFaultRouter final : public net::RpcChannel {
 public:
  CommitFaultRouter(net::RpcChannel& clean, net::RpcChannel& faulty)
      : clean_(clean), faulty_(faulty) {}

  Result<Bytes> roundtrip(BytesView frame) override {
    const auto type = proto::peek_type(frame);
    const bool commit =
        type && (*type == proto::MsgType::kDeleteCommitReq ||
                 *type == proto::MsgType::kDeleteManyCommitReq);
    return commit ? faulty_.roundtrip(frame) : clean_.roundtrip(frame);
  }

 private:
  net::RpcChannel& clean_;
  net::RpcChannel& faulty_;
};

TEST(FaultInjection, EraseBatchCommitDisconnectPoisonsAllStagedHandles) {
  // Satellite scenario: the pipelined commit batch of erase_batch dies in
  // transport. The client cannot know which commits (if any) the server
  // applied, so it must NOT silently keep the old keys — it poisons every
  // staged handle and reports kIndeterminate until resync() settles each.
  CloudServer server;
  SystemRandom rnd;
  net::DirectChannel clean(
      [&server](BytesView req) { return server.handle(req); });
  net::DirectChannel inner(
      [&server](BytesView req) { return server.handle(req); });
  // disconnect = 1: the connection dies BEFORE the server executes, so
  // in truth no commit landed — which resync() must discover.
  net::FaultInjectingChannel faulty(inner, {.disconnect = 1.0});
  CommitFaultRouter router(clean, faulty);
  Client client(router, rnd);

  std::vector<Bytes> items;
  for (int i = 0; i < 10; ++i) items.push_back(payload_for(i));
  auto fh1 = client.outsource(1, items);
  auto fh2 = client.outsource(2, items);
  ASSERT_TRUE(fh1.is_ok());
  ASSERT_TRUE(fh2.is_ok());
  auto ids2 = client.list_items(fh2.value());
  ASSERT_TRUE(ids2.is_ok());

  std::vector<Client::FileHandle*> handles{&fh1.value(), &fh2.value()};
  std::vector<proto::ItemRef> refs{proto::ItemRef::id(3),
                                   proto::ItemRef::id(ids2.value()[4])};
  EXPECT_EQ(client.erase_batch(handles, refs).code(), Errc::kIndeterminate);
  EXPECT_TRUE(fh1.value().poisoned);
  EXPECT_TRUE(fh2.value().poisoned);

  // Every operation fails fast on a poisoned handle...
  EXPECT_EQ(client.access(fh1.value(), proto::ItemRef::id(0)).code(),
            Errc::kIndeterminate);
  EXPECT_EQ(client.erase_item(fh2.value(), refs[1]).code(),
            Errc::kIndeterminate);
  // ...until resync determines the server never applied the commits and
  // re-adopts the OLD keys.
  ASSERT_TRUE(client.resync(fh1.value()));
  ASSERT_TRUE(client.resync(fh2.value()));
  EXPECT_FALSE(fh1.value().poisoned);
  EXPECT_FALSE(fh2.value().poisoned);
  EXPECT_EQ(client.access(fh1.value(), proto::ItemRef::id(3)).value(),
            items[3]);
  EXPECT_EQ(client.access(fh2.value(), proto::ItemRef::id(ids2.value()[4]))
                .value(),
            items[4]);
}

TEST(FaultInjection, EraseItemLostCommitResponseResyncsToNewKey) {
  // The opposite truth: drop_response executes the commit server-side and
  // loses only the ACK. Assuming "it failed" and keeping the old key
  // would permanently desynchronize the client; resync() must detect the
  // rotation and adopt the pending key.
  CloudServer server;
  SystemRandom rnd;
  net::DirectChannel clean(
      [&server](BytesView req) { return server.handle(req); });
  net::DirectChannel inner(
      [&server](BytesView req) { return server.handle(req); });
  net::FaultInjectingChannel faulty(inner, {.drop_response = 1.0});
  CommitFaultRouter router(clean, faulty);
  Client client(router, rnd);

  std::vector<Bytes> items;
  for (int i = 0; i < 10; ++i) items.push_back(payload_for(i));
  auto fh = client.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());

  EXPECT_EQ(client.erase_item(fh.value(), proto::ItemRef::id(2)).code(),
            Errc::kIndeterminate);
  EXPECT_TRUE(fh.value().poisoned);
  ASSERT_TRUE(client.resync(fh.value()));
  EXPECT_FALSE(fh.value().poisoned);
  // The deletion DID land; survivors decrypt under the adopted new key.
  EXPECT_FALSE(client.access(fh.value(), proto::ItemRef::id(2)).is_ok());
  for (std::uint64_t id : {0u, 1u, 3u, 9u}) {
    EXPECT_EQ(client.access(fh.value(), proto::ItemRef::id(id)).value(),
              items[id]);
  }
  // The handle is usable again post-resync.
  ASSERT_TRUE(client.modify(fh.value(), 5, payload_for(55)));
  EXPECT_EQ(client.access(fh.value(), proto::ItemRef::id(5)).value(),
            payload_for(55));
}

TEST(FaultInjection, EraseItemsLostCommitOnEmptiedFileResyncs) {
  // Bulk-delete EVERY item with the commit ACK lost: resync has no
  // surviving item to probe and must conclude from the emptied file that
  // the pending key is live.
  CloudServer server;
  SystemRandom rnd;
  net::DirectChannel clean(
      [&server](BytesView req) { return server.handle(req); });
  net::DirectChannel inner(
      [&server](BytesView req) { return server.handle(req); });
  net::FaultInjectingChannel faulty(inner, {.drop_response = 1.0});
  CommitFaultRouter router(clean, faulty);
  Client client(router, rnd);

  std::vector<Bytes> items;
  for (int i = 0; i < 6; ++i) items.push_back(payload_for(i));
  auto fh = client.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());

  std::vector<proto::ItemRef> all;
  for (std::uint64_t id = 0; id < 6; ++id) {
    all.push_back(proto::ItemRef::id(id));
  }
  EXPECT_EQ(client.erase_items(fh.value(), all).code(), Errc::kIndeterminate);
  EXPECT_TRUE(fh.value().poisoned);
  ASSERT_TRUE(client.resync(fh.value()));
  EXPECT_FALSE(fh.value().poisoned);
  auto left = client.list_items(fh.value());
  ASSERT_TRUE(left.is_ok());
  EXPECT_TRUE(left.value().empty());
}

// ---- one-way partitions & reordering (DESIGN.md §18 failover suite) --------

TEST(FaultInjection, PartitionToServerBlackholesWithoutExecution) {
  std::atomic<int> executed{0};
  net::DirectChannel inner([&executed](BytesView req) {
    ++executed;
    return Bytes(req.begin(), req.end());
  });
  net::FaultInjectingChannel ch(inner, {});
  ASSERT_TRUE(ch.roundtrip(to_bytes("warm")).is_ok());
  ASSERT_EQ(executed.load(), 1);

  ch.partition(net::FaultInjectingChannel::Partition::kToServer);
  EXPECT_EQ(ch.partitioned(), net::FaultInjectingChannel::Partition::kToServer);
  for (int i = 0; i < 3; ++i) {
    auto r = ch.roundtrip(to_bytes("lost"));
    ASSERT_FALSE(r.is_ok());
    // The link looks alive-but-stalled (kTimeout), not failed-fast: the
    // caller cannot tell a partition from a slow peer, by design.
    EXPECT_EQ(r.error().code, Errc::kTimeout);
  }
  // The defining property of the kToServer direction: the server never
  // saw any of it, so nothing was executed — a resend is trivially safe.
  EXPECT_EQ(executed.load(), 1);
  EXPECT_EQ(ch.counters().partitioned_to_server, 3u);

  ch.heal();
  EXPECT_EQ(ch.partitioned(), net::FaultInjectingChannel::Partition::kNone);
  EXPECT_TRUE(ch.roundtrip(to_bytes("back")).is_ok());
  EXPECT_EQ(executed.load(), 2);
}

TEST(FaultInjection, PartitionFromServerExecutesButDropsResponse) {
  std::atomic<int> executed{0};
  net::DirectChannel inner([&executed](BytesView req) {
    ++executed;
    return Bytes(req.begin(), req.end());
  });
  net::FaultInjectingChannel ch(inner, {});
  ch.partition(net::FaultInjectingChannel::Partition::kFromServer);
  auto r = ch.roundtrip(to_bytes("one-way"));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.error().code, Errc::kTimeout);
  // The indeterminate-commit case: the server DID execute, only the
  // acknowledgement is gone. This is what handle poisoning + tagged
  // resends exist for.
  EXPECT_EQ(executed.load(), 1);
  EXPECT_EQ(ch.counters().partitioned_from_server, 1u);
}

TEST(FaultInjection, ReorderServesStaleEarlierResponsePastTheWindow) {
  net::DirectChannel inner(
      [](BytesView req) { return Bytes(req.begin(), req.end()); });
  net::FaultInjectingChannel::Options opts;
  opts.reorder = 1.0;  // every roundtrip fires
  opts.reorder_window = 2;
  net::FaultInjectingChannel ch(inner, opts);

  // While the window fills, responses are merely late (kTimeout)...
  EXPECT_EQ(ch.roundtrip(to_bytes("r1")).error().code, Errc::kTimeout);
  EXPECT_EQ(ch.roundtrip(to_bytes("r2")).error().code, Errc::kTimeout);
  // ...then the channel starts answering with the OLDEST parked response:
  // roundtrip 3 gets roundtrip 1's bytes, out of order. A rid-checking
  // client must reject this as a mismatched response.
  auto r3 = ch.roundtrip(to_bytes("r3"));
  ASSERT_TRUE(r3.is_ok());
  EXPECT_EQ(to_string(r3.value()), "r1");
  auto r4 = ch.roundtrip(to_bytes("r4"));
  ASSERT_TRUE(r4.is_ok());
  EXPECT_EQ(to_string(r4.value()), "r2");
  EXPECT_EQ(ch.counters().reordered, 4u);
  EXPECT_EQ(ch.counters().total_faults(), 4u);
}

TEST(FaultInjection, ClientRidesOutScriptedPartitionAndHeal) {
  // Scripted failover rehearsal: a partition toward the server opens
  // mid-run, every RPC times out, then the partition heals and the
  // protocol continues with exactly-once effects — nothing the server
  // never received got applied.
  CloudServer server;
  net::DirectChannel inner(
      [&server](BytesView req) { return server.handle(req); });
  net::FaultInjectingChannel faulty(inner, {});
  SystemRandom rnd;
  Client client(faulty, rnd);

  auto fh = client.outsource(1, 8,
                             [](std::size_t i) { return payload_for(i); });
  ASSERT_TRUE(fh.is_ok());

  faulty.partition(net::FaultInjectingChannel::Partition::kToServer);
  auto blocked = client.access(fh.value(), proto::ItemRef::id(1));
  ASSERT_FALSE(blocked.is_ok());
  EXPECT_EQ(blocked.code(), Errc::kTimeout);
  // A deletion attempted into the blackhole fails without server effect.
  EXPECT_FALSE(client.erase_item(fh.value(), proto::ItemRef::id(1)));

  faulty.heal();
  // The item the lost deletion targeted is still there (never executed),
  // and deleting it now works normally.
  EXPECT_EQ(client.access(fh.value(), proto::ItemRef::id(1)).value(),
            payload_for(1));
  ASSERT_TRUE(client.erase_item(fh.value(), proto::ItemRef::id(1)));
  EXPECT_FALSE(client.access(fh.value(), proto::ItemRef::id(1)).is_ok());
  EXPECT_EQ(client.access(fh.value(), proto::ItemRef::id(2)).value(),
            payload_for(2));
}

}  // namespace
}  // namespace fgad
