// Section V extensions: grouped control keys and the local key proxy.
#include <gtest/gtest.h>

#include "cloud/server.h"
#include "fskeys/groups.h"
#include "fskeys/proxy.h"
#include "net/inmemory.h"
#include "support/harness.h"

namespace fgad::fskeys {
namespace {

using cloud::CloudServer;
using crypto::SystemRandom;
using test::payload_for;

class GroupsTest : public ::testing::Test {
 protected:
  GroupsTest()
      : channel_([this](BytesView req) { return server_.handle(req); }),
        client_(channel_, rnd_),
        gfs_(client_) {}

  CloudServer server_;
  SystemRandom rnd_;
  net::DirectChannel channel_;
  client::Client client_;
  GroupedFileSystem gfs_;
};

TEST_F(GroupsTest, GroupsAreIndependent) {
  ASSERT_TRUE(gfs_.create_group(1, 100));  // e.g. /home
  ASSERT_TRUE(gfs_.create_group(2, 200));  // e.g. /var
  EXPECT_EQ(gfs_.group_count(), 2u);
  EXPECT_FALSE(gfs_.create_group(1, 300).is_ok());

  ASSERT_TRUE(gfs_.create_file(1, 10, 5,
                               [](std::size_t i) { return payload_for(i); }));
  ASSERT_TRUE(gfs_.create_file(2, 20, 5, [](std::size_t i) {
    return payload_for(100 + i);
  }));

  // Group-2's control key is untouched by group-1 deletions.
  const crypto::Md g2_before = gfs_.group(2).value()->control_key().value();
  const crypto::Md g1_before = gfs_.group(1).value()->control_key().value();
  ASSERT_TRUE(gfs_.erase_item(10, proto::ItemRef::ordinal(2)));
  EXPECT_NE(gfs_.group(1).value()->control_key().value(), g1_before);
  EXPECT_EQ(gfs_.group(2).value()->control_key().value(), g2_before);

  // Both groups still serve reads.
  EXPECT_EQ(gfs_.access(10, proto::ItemRef::ordinal(0)).value(),
            payload_for(0));
  EXPECT_EQ(gfs_.access(20, proto::ItemRef::ordinal(4)).value(),
            payload_for(104));
}

TEST_F(GroupsTest, FileRouting) {
  ASSERT_TRUE(gfs_.create_group(1, 100));
  ASSERT_TRUE(gfs_.create_group(2, 200));
  ASSERT_TRUE(gfs_.create_file(1, 10, 2,
                               [](std::size_t i) { return payload_for(i); }));
  EXPECT_EQ(gfs_.group_of(10).value(), 1u);
  EXPECT_EQ(gfs_.group_of(99).code(), Errc::kNotFound);
  EXPECT_EQ(gfs_.access(99, proto::ItemRef::ordinal(0)).code(),
            Errc::kNotFound);
  // Duplicate file id across groups is rejected.
  EXPECT_FALSE(gfs_.create_file(2, 10, 1,
                                [](std::size_t i) { return payload_for(i); })
                   .is_ok());
}

TEST_F(GroupsTest, InsertModifyDeleteThroughGroups) {
  ASSERT_TRUE(gfs_.create_group(1, 100));
  ASSERT_TRUE(gfs_.create_file(1, 10, 3,
                               [](std::size_t i) { return payload_for(i); }));
  auto id = gfs_.insert(10, to_bytes("added"));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(gfs_.modify(10, id.value(), to_bytes("edited")));
  EXPECT_EQ(to_string(gfs_.access(10, proto::ItemRef::id(id.value())).value()),
            "edited");
  ASSERT_TRUE(gfs_.delete_file(10));
  EXPECT_EQ(gfs_.access(10, proto::ItemRef::ordinal(0)).code(),
            Errc::kNotFound);
}

class ProxyTest : public ::testing::Test {
 protected:
  ProxyTest()
      : cloud_channel_([this](BytesView req) { return server_.handle(req); }),
        client_(cloud_channel_, rnd_),
        fs_(client_, /*meta_file_id=*/1),
        proxy_(fs_),
        user_channel_([this](BytesView req) { return proxy_.handle(req); }),
        user_(user_channel_) {
    EXPECT_TRUE(fs_.init());
  }

  CloudServer server_;
  SystemRandom rnd_;
  net::DirectChannel cloud_channel_;
  client::Client client_;
  FileSystemClient fs_;
  KeyProxy proxy_;
  net::DirectChannel user_channel_;
  ProxyUser user_;
};

TEST_F(ProxyTest, FullLifecycleThroughProxy) {
  std::vector<Bytes> items = {to_bytes("a"), to_bytes("b"), to_bytes("c")};
  ASSERT_TRUE(user_.create_file(10, items));
  EXPECT_EQ(user_.file_count().value(), 1u);

  EXPECT_EQ(to_string(user_.access(10, proto::ItemRef::ordinal(1)).value()),
            "b");

  auto id = user_.insert(10, to_bytes("d"));
  ASSERT_TRUE(id.is_ok());
  EXPECT_EQ(to_string(user_.access(10, proto::ItemRef::id(id.value())).value()),
            "d");

  ASSERT_TRUE(user_.modify(10, id.value(), to_bytes("dd")));
  EXPECT_EQ(to_string(user_.access(10, proto::ItemRef::id(id.value())).value()),
            "dd");

  // Assured deletion via the proxy: the control-key rotation happens inside
  // the proxy; the user never holds any key.
  const crypto::Md control_before = fs_.control_key().value();
  ASSERT_TRUE(user_.erase_item(10, proto::ItemRef::ordinal(0)));
  EXPECT_NE(fs_.control_key().value(), control_before);
  EXPECT_EQ(user_.access(10, proto::ItemRef::id(0)).code(), Errc::kNotFound);
  EXPECT_EQ(to_string(user_.access(10, proto::ItemRef::ordinal(0)).value()),
            "b");

  ASSERT_TRUE(user_.delete_file(10));
  EXPECT_EQ(user_.file_count().value(), 0u);
}

TEST_F(ProxyTest, ErrorsPropagate) {
  EXPECT_EQ(user_.access(42, proto::ItemRef::ordinal(0)).code(),
            Errc::kNotFound);
  EXPECT_EQ(user_.erase_item(42, proto::ItemRef::id(0)).code(),
            Errc::kNotFound);
  EXPECT_FALSE(user_.delete_file(42).is_ok());
}

TEST_F(ProxyTest, MalformedRequestsRejected) {
  auto env = proto::open_message(proxy_.handle(Bytes{0x01}));
  ASSERT_TRUE(env.is_ok());
  EXPECT_EQ(env.value().type, proto::MsgType::kError);

  const Bytes bogus =
      proto::seal_message(static_cast<proto::MsgType>(999), to_bytes("x"));
  env = proto::open_message(proxy_.handle(bogus));
  EXPECT_EQ(env.value().type, proto::MsgType::kError);

  // Truncated access request.
  proto::Writer w;
  w.u64(10);
  const Bytes truncated =
      proto::seal_message(proto::MsgType::kPxAccessReq, w.data());
  env = proto::open_message(proxy_.handle(truncated));
  EXPECT_EQ(env.value().type, proto::MsgType::kError);
}

TEST_F(ProxyTest, TwoUsersOverPipes) {
  // Two user devices reach the proxy through threaded pipes — the deployment
  // shape the paper sketches (shared file system, one key holder).
  std::vector<Bytes> items = {to_bytes("shared-0"), to_bytes("shared-1")};
  ASSERT_TRUE(user_.create_file(10, items));

  net::Pipe pipe_a;
  net::Pipe pipe_b;
  // One pump each; the KeyProxy itself is driven sequentially per request.
  std::mutex proxy_mu;
  auto guarded = [this, &proxy_mu](BytesView req) {
    std::lock_guard<std::mutex> lock(proxy_mu);
    return proxy_.handle(req);
  };
  net::ServerPump pump_a(pipe_a, guarded);
  net::ServerPump pump_b(pipe_b, guarded);
  net::PipeChannel ch_a(pipe_a);
  net::PipeChannel ch_b(pipe_b);
  ProxyUser alice(ch_a);
  ProxyUser bob(ch_b);

  EXPECT_EQ(to_string(alice.access(10, proto::ItemRef::ordinal(0)).value()),
            "shared-0");
  EXPECT_EQ(to_string(bob.access(10, proto::ItemRef::ordinal(1)).value()),
            "shared-1");
  ASSERT_TRUE(alice.erase_item(10, proto::ItemRef::ordinal(0)));
  EXPECT_EQ(to_string(bob.access(10, proto::ItemRef::ordinal(0)).value()),
            "shared-1");
  pump_a.stop();
  pump_b.stop();
}

}  // namespace
}  // namespace fgad::fskeys
