// Transports: direct, counting, in-memory pipe, TCP loopback — plus the
// hardening behaviours of DESIGN.md §11: frame limits, deadlines, bounded
// worker pool, fd lifecycle.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/stopwatch.h"
#include "net/failover.h"
#include "net/inmemory.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "proto/messages.h"

namespace fgad::net {
namespace {

Bytes echo_upper(BytesView req) {
  Bytes out(req.begin(), req.end());
  for (auto& b : out) {
    if (b >= 'a' && b <= 'z') b -= 32;
  }
  return out;
}

TEST(DirectChannel, InvokesHandler) {
  DirectChannel ch(echo_upper);
  auto resp = ch.roundtrip(to_bytes("hello"));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(to_string(resp.value()), "HELLO");
}

TEST(CountingChannel, CountsBothDirections) {
  DirectChannel inner(echo_upper);
  CountingChannel ch(inner);
  ASSERT_TRUE(ch.roundtrip(to_bytes("abcd")).is_ok());
  EXPECT_EQ(ch.bytes_sent(), 4u + kFrameHeaderSize);
  EXPECT_EQ(ch.bytes_received(), 4u + kFrameHeaderSize);
  EXPECT_EQ(ch.total_bytes(), 2 * (4u + kFrameHeaderSize));
  EXPECT_EQ(ch.rpc_count(), 1u);
  ch.reset();
  EXPECT_EQ(ch.total_bytes(), 0u);
}

TEST(ByteQueue, PushPopOrder) {
  ByteQueue q;
  EXPECT_TRUE(q.push(to_bytes("a")));
  EXPECT_TRUE(q.push(to_bytes("b")));
  EXPECT_EQ(to_string(*q.pop()), "a");
  EXPECT_EQ(to_string(*q.pop()), "b");
}

TEST(ByteQueue, CloseWakesAndDrains) {
  ByteQueue q;
  q.push(to_bytes("x"));
  q.close();
  EXPECT_FALSE(q.push(to_bytes("y")));
  EXPECT_EQ(to_string(*q.pop()), "x");  // drained after close
  EXPECT_FALSE(q.pop().has_value());
}

TEST(PipeChannel, RoundtripThroughServerThread) {
  Pipe pipe;
  ServerPump pump(pipe, echo_upper);
  PipeChannel ch(pipe);
  for (int i = 0; i < 10; ++i) {
    auto resp = ch.roundtrip(to_bytes("ping"));
    ASSERT_TRUE(resp.is_ok());
    EXPECT_EQ(to_string(resp.value()), "PING");
  }
  pump.stop();
  EXPECT_FALSE(ch.roundtrip(to_bytes("late")).is_ok());
}

TEST(Tcp, RoundtripOverLoopback) {
  TcpServer server(0, echo_upper);
  ASSERT_TRUE(server.ok());
  ASSERT_NE(server.port(), 0);
  auto ch = TcpChannel::connect("127.0.0.1", server.port());
  ASSERT_TRUE(ch.is_ok());
  for (int i = 0; i < 20; ++i) {
    auto resp = ch.value()->roundtrip(to_bytes("tcp message"));
    ASSERT_TRUE(resp.is_ok());
    EXPECT_EQ(to_string(resp.value()), "TCP MESSAGE");
  }
}

TEST(Tcp, LargeFrames) {
  TcpServer server(0, [](BytesView req) {
    return Bytes(req.begin(), req.end());  // echo
  });
  ASSERT_TRUE(server.ok());
  auto ch = TcpChannel::connect("127.0.0.1", server.port());
  ASSERT_TRUE(ch.is_ok());
  Bytes big(1 << 20, 0xab);
  auto resp = ch.value()->roundtrip(big);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp.value(), big);
}

TEST(Tcp, EmptyFrame) {
  TcpServer server(0, [](BytesView) { return Bytes{}; });
  ASSERT_TRUE(server.ok());
  auto ch = TcpChannel::connect("127.0.0.1", server.port());
  ASSERT_TRUE(ch.is_ok());
  auto resp = ch.value()->roundtrip({});
  ASSERT_TRUE(resp.is_ok());
  EXPECT_TRUE(resp.value().empty());
}

TEST(Tcp, MultipleConcurrentClients) {
  TcpServer server(0, echo_upper);
  ASSERT_TRUE(server.ok());
  auto a = TcpChannel::connect("127.0.0.1", server.port());
  auto b = TcpChannel::connect("127.0.0.1", server.port());
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(to_string(a.value()->roundtrip(to_bytes("one")).value()), "ONE");
  EXPECT_EQ(to_string(b.value()->roundtrip(to_bytes("two")).value()), "TWO");
  EXPECT_EQ(to_string(a.value()->roundtrip(to_bytes("three")).value()),
            "THREE");
}

TEST(Tcp, ConnectToClosedPortFails) {
  // Grab an ephemeral port, close the server, then try to connect.
  std::uint16_t port;
  {
    TcpServer server(0, echo_upper);
    ASSERT_TRUE(server.ok());
    port = server.port();
  }
  auto ch = TcpChannel::connect("127.0.0.1", port);
  EXPECT_FALSE(ch.is_ok());
}

TEST(Tcp, BadHostRejected) {
  EXPECT_FALSE(TcpChannel::connect("not-an-ip", 1).is_ok());
}

// ---- hardening (DESIGN.md §11) ---------------------------------------------

/// Raw loopback TCP connect, bypassing TcpChannel (for malformed-wire and
/// fd-lifecycle tests). Returns -1 on failure.
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  timeval tv{5, 0};  // keep a stuck test bounded
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::size_t open_fd_count() {
  std::size_t n = 0;
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return 0;
  while (::readdir(d) != nullptr) ++n;
  ::closedir(d);
  return n;
}

TEST(TcpHardening, WriteFrameRejectsOversizedPayload) {
  // The size check fires before any byte is read or sent, so a fake-length
  // span over a small buffer is safe — and the only way to test the 4 GiB
  // header-truncation guard without allocating gigabytes.
  Bytes small(1);
  const BytesView fake(small.data(), static_cast<std::size_t>(kMaxFrameSize) + 1);
  const Status st = write_frame(/*fd=*/-1, fake);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::kDecodeError);
  const BytesView fake5g(small.data(), (std::size_t{1} << 32) + 7);
  EXPECT_EQ(write_frame(/*fd=*/-1, fake5g).code(), Errc::kDecodeError);
}

TEST(TcpHardening, RoundtripTimesOutOnSlowHandler) {
  auto server = TcpServer::create(0, [](BytesView req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return Bytes(req.begin(), req.end());
  });
  ASSERT_TRUE(server.is_ok());
  TcpChannel::Options opts;
  opts.io_timeout_ms = 50;
  auto ch = TcpChannel::connect("127.0.0.1", server.value()->port(), opts);
  ASSERT_TRUE(ch.is_ok());
  Stopwatch sw;
  auto resp = ch.value()->roundtrip(to_bytes("slow"));
  ASSERT_FALSE(resp.is_ok());
  EXPECT_EQ(resp.error().code, Errc::kTimeout);
  EXPECT_LT(sw.elapsed_seconds(), 5.0);
}

TEST(TcpHardening, ConnectDeadlineIsBounded) {
  // A listener that never accepts, with a zero backlog: once its accept
  // queue is full the kernel drops further SYNs, so connect() must hit our
  // deadline instead of hanging for the kernel's minutes-long default.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 0), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  // Fill the accept queue with connections nobody will ever accept.
  std::vector<int> fillers;
  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    ASSERT_GE(fd, 0);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    fillers.push_back(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  TcpChannel::Options opts;
  opts.connect_timeout_ms = 200;
  Stopwatch sw;
  auto ch = TcpChannel::connect("127.0.0.1", port, opts);
  ASSERT_FALSE(ch.is_ok());
  EXPECT_EQ(ch.code(), Errc::kTimeout) << ch.status().to_string();
  EXPECT_LT(sw.elapsed_seconds(), 5.0);
  for (int fd : fillers) ::close(fd);
  ::close(lfd);
}

TEST(TcpHardening, ServerClosesConnectionOnOversizedFrameHeader) {
  auto server = TcpServer::create(0, echo_upper);
  ASSERT_TRUE(server.is_ok());
  const int fd = raw_connect(server.value()->port());
  ASSERT_GE(fd, 0);
  // Header claiming a 2 GiB frame: over kMaxFrameSize, under UINT32_MAX.
  const std::uint8_t hdr[4] = {0x00, 0x00, 0x00, 0x80};
  ASSERT_EQ(::send(fd, hdr, sizeof(hdr), MSG_NOSIGNAL), 4);
  std::uint8_t buf[16];
  // The server must drop the connection, not wait for 2 GiB that will
  // never arrive: recv sees EOF (0), not a timeout.
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);
}

TEST(TcpHardening, IdleTimeoutEvictsStalledConnection) {
  TcpServer::Options opts;
  opts.idle_timeout_ms = 100;
  auto server = TcpServer::create(0, echo_upper, opts);
  ASSERT_TRUE(server.is_ok());
  const int fd = raw_connect(server.value()->port());
  ASSERT_GE(fd, 0);
  // A slowloris peer: half a header, then silence.
  const std::uint8_t half[2] = {0x01, 0x00};
  ASSERT_EQ(::send(fd, half, sizeof(half), MSG_NOSIGNAL), 2);
  std::uint8_t buf[16];
  Stopwatch sw;
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);  // evicted, not served
  EXPECT_LT(sw.elapsed_seconds(), 5.0);
  ::close(fd);
}

TEST(TcpHardening, StopWithInflightConnectionsJoinsWorkersAndLeaksNoFds) {
  const std::size_t fds_before = open_fd_count();
  Stopwatch sw;
  {
    auto server = TcpServer::create(0, echo_upper);
    ASSERT_TRUE(server.is_ok());
    // Two well-behaved clients with live connections...
    auto a = TcpChannel::connect("127.0.0.1", server.value()->port());
    auto b = TcpChannel::connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    ASSERT_TRUE(a.value()->roundtrip(to_bytes("x")).is_ok());
    ASSERT_TRUE(b.value()->roundtrip(to_bytes("y")).is_ok());
    // ...and one parked mid-frame (worker blocked in read_frame).
    const int raw = raw_connect(server.value()->port());
    ASSERT_GE(raw, 0);
    const std::uint8_t half[2] = {0x08, 0x00};
    ASSERT_EQ(::send(raw, half, sizeof(half), MSG_NOSIGNAL), 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.value()->stop();  // must unblock + join all three workers
    ::close(raw);
  }
  EXPECT_LT(sw.elapsed_seconds(), 5.0);
  EXPECT_EQ(open_fd_count(), fds_before);
}

TEST(TcpHardening, WorkerPoolBoundAppliesBackpressure) {
  TcpServer::Options opts;
  opts.max_workers = 1;
  auto server = TcpServer::create(0, echo_upper, opts);
  ASSERT_TRUE(server.is_ok());
  auto first = TcpChannel::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(first.value()->roundtrip(to_bytes("one")).is_ok());
  // The second connection queues in the listen backlog until the first
  // client disconnects and its worker is reaped.
  auto second = TcpChannel::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(second.is_ok());
  std::thread t([&] {
    auto resp = second.value()->roundtrip(to_bytes("two"));
    EXPECT_TRUE(resp.is_ok());
    EXPECT_EQ(to_string(resp.value()), "TWO");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  first.value().reset();  // frees the only worker slot
  t.join();
  EXPECT_EQ(server.value()->peak_workers(), 1u);
}

TEST(TcpHardening, SequentialConnectionsAreReapedNotAccumulated) {
  auto server = TcpServer::create(0, echo_upper);
  ASSERT_TRUE(server.is_ok());
  for (int i = 0; i < 10; ++i) {
    {
      auto ch = TcpChannel::connect("127.0.0.1", server.value()->port());
      ASSERT_TRUE(ch.is_ok());
      ASSERT_TRUE(ch.value()->roundtrip(to_bytes("ping")).is_ok());
    }
    // The connection is closed; its worker must deregister promptly.
    for (int spin = 0; spin < 500 && server.value()->active_workers() > 0;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(server.value()->active_workers(), 0u) << "cycle " << i;
  }
  // Strictly sequential connections: never more than one worker alive.
  EXPECT_EQ(server.value()->peak_workers(), 1u);
}

TEST(TcpHardening, CreateSurfacesBindFailure) {
  auto first = TcpServer::create(0, echo_upper);
  ASSERT_TRUE(first.is_ok());
  auto second = TcpServer::create(first.value()->port(), echo_upper);
  ASSERT_FALSE(second.is_ok());
  EXPECT_EQ(second.code(), Errc::kIoError);
  EXPECT_NE(second.error().message.find("bind"), std::string::npos)
      << second.error().message;
}

// ---- pipelining (DESIGN.md §15) --------------------------------------------

/// Appends one u32-LE framed message to `out`.
void append_frame(Bytes& out, BytesView payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<std::uint8_t>(len & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 24) & 0xff));
  out.insert(out.end(), payload.begin(), payload.end());
}

/// Blocking-reads exactly one framed message from `fd`; empty optional on
/// EOF / error.
std::optional<Bytes> recv_frame(int fd) {
  std::uint8_t hdr[4];
  std::size_t got = 0;
  while (got < 4) {
    const ssize_t n = ::recv(fd, hdr + got, 4 - got, 0);
    if (n <= 0) return std::nullopt;
    got += static_cast<std::size_t>(n);
  }
  const std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                            (static_cast<std::uint32_t>(hdr[1]) << 8) |
                            (static_cast<std::uint32_t>(hdr[2]) << 16) |
                            (static_cast<std::uint32_t>(hdr[3]) << 24);
  Bytes payload(len);
  got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, payload.data() + got, len - got, 0);
    if (n <= 0) return std::nullopt;
    got += static_cast<std::size_t>(n);
  }
  return payload;
}

/// AsyncHandler that parks every completion callback for the test to
/// release manually, in any order, from any thread.
struct ParkingHandler {
  std::mutex mu;
  std::vector<std::pair<Bytes, TcpServer::Respond>> parked;
  std::atomic<std::size_t> received{0};

  TcpServer::AsyncHandler handler() {
    return [this](Bytes req, TcpServer::Respond respond) {
      std::lock_guard<std::mutex> lock(mu);
      parked.emplace_back(std::move(req), std::move(respond));
      received.fetch_add(1);
    };
  }

  std::vector<std::pair<Bytes, TcpServer::Respond>> take() {
    std::lock_guard<std::mutex> lock(mu);
    return std::exchange(parked, {});
  }

  bool wait_received(std::size_t n, int ms = 2000) {
    for (int spin = 0; spin < ms && received.load() < n; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return received.load() >= n;
  }
};

TEST(TcpPipelining, InterleavedFramesAnsweredInArrivalOrder) {
  auto server = TcpServer::create(0, echo_upper);
  ASSERT_TRUE(server.is_ok());
  const int fd = raw_connect(server.value()->port());
  ASSERT_GE(fd, 0);
  // All 16 requests in a single send: the server must parse them out of
  // one read buffer and answer each, in order, on the shared connection.
  Bytes wire;
  for (int i = 0; i < 16; ++i) {
    append_frame(wire, to_bytes("msg" + std::to_string(i)));
  }
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  for (int i = 0; i < 16; ++i) {
    auto resp = recv_frame(fd);
    ASSERT_TRUE(resp.has_value()) << "response " << i;
    EXPECT_EQ(to_string(*resp), "MSG" + std::to_string(i));
  }
  ::close(fd);
}

TEST(TcpPipelining, RoundtripBatchKeepsOrderAndContent) {
  auto server = TcpServer::create(0, [](BytesView req) {
    return Bytes(req.begin(), req.end());  // echo
  });
  ASSERT_TRUE(server.is_ok());
  auto ch = TcpChannel::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(ch.is_ok());
  // Mixed sizes, including an empty frame and one big enough to need
  // several reads on both sides.
  std::vector<Bytes> reqs;
  reqs.push_back({});
  reqs.push_back(to_bytes("tiny"));
  reqs.push_back(Bytes(200 * 1024, 0x5a));
  for (int i = 0; i < 40; ++i) {
    reqs.push_back(to_bytes("item" + std::to_string(i)));
  }
  auto resps = ch.value()->roundtrip_batch(reqs);
  ASSERT_TRUE(resps.is_ok()) << resps.status().to_string();
  ASSERT_EQ(resps.value().size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(resps.value()[i], reqs[i]) << "slot " << i;
  }
  // The connection stays usable for ordinary roundtrips afterwards.
  EXPECT_TRUE(ch.value()->roundtrip(to_bytes("after")).is_ok());
}

TEST(TcpPipelining, OutOfOrderCompletionsDeliverInArrivalOrder) {
  ParkingHandler parking;
  auto server = TcpServer::create(0, parking.handler(), TcpServer::Options{});
  ASSERT_TRUE(server.is_ok());
  const int fd = raw_connect(server.value()->port());
  ASSERT_GE(fd, 0);
  Bytes wire;
  for (int i = 0; i < 8; ++i) {
    append_frame(wire, to_bytes("req" + std::to_string(i)));
  }
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  ASSERT_TRUE(parking.wait_received(8));
  // Complete in reverse order, from the test thread (the cross-thread
  // Respond path). The wire order must still be arrival order.
  auto batch = parking.take();
  ASSERT_EQ(batch.size(), 8u);
  for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
    Bytes resp(it->first.begin(), it->first.end());
    resp.push_back('!');
    it->second(std::move(resp));
  }
  for (int i = 0; i < 8; ++i) {
    auto resp = recv_frame(fd);
    ASSERT_TRUE(resp.has_value()) << "response " << i;
    EXPECT_EQ(to_string(*resp), "req" + std::to_string(i) + "!");
  }
  ::close(fd);
}

TEST(TcpPipelining, MaxPipelineAppliesBackpressure) {
  ParkingHandler parking;
  TcpServer::Options opts;
  opts.max_pipeline = 4;
  auto server = TcpServer::create(0, parking.handler(), opts);
  ASSERT_TRUE(server.is_ok());
  const int fd = raw_connect(server.value()->port());
  ASSERT_GE(fd, 0);
  Bytes wire;
  for (int i = 0; i < 32; ++i) {
    append_frame(wire, to_bytes("r" + std::to_string(i)));
  }
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  // The reactor must stop dispatching at the pipeline bound even though
  // all 32 frames sit in its read buffer.
  ASSERT_TRUE(parking.wait_received(4));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(parking.received.load(), 4u);
  // Draining completions un-pauses parsing; keep releasing until all 32
  // requests have been served.
  std::size_t served = 0;
  for (int spin = 0; spin < 2000 && served < 32; ++spin) {
    auto batch = parking.take();
    for (auto& [req, respond] : batch) {
      respond(Bytes(req.begin(), req.end()));
      ++served;
    }
    if (batch.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_EQ(served, 32u);
  for (int i = 0; i < 32; ++i) {
    auto resp = recv_frame(fd);
    ASSERT_TRUE(resp.has_value()) << "response " << i;
    EXPECT_EQ(to_string(*resp), "r" + std::to_string(i));
  }
  ::close(fd);
}

TEST(TcpPipelining, SlowReaderBackpressurePausesReads) {
  // Tiny write-buffer budget + a peer that sends requests but reads
  // nothing: the reactor must park the connection (bounded memory)
  // instead of buffering every response, then drain once the peer reads.
  std::atomic<std::size_t> handled{0};
  TcpServer::Options opts;
  opts.write_buffer_limit = 64 * 1024;
  opts.max_pipeline = 256;
  opts.io_timeout_ms = 10000;  // don't write-stall-evict during the test
  auto server = TcpServer::create(
      0,
      [&handled](BytesView req) {
        handled.fetch_add(1);
        return Bytes(req.begin(), req.end());
      },
      opts);
  ASSERT_TRUE(server.is_ok());
  const int fd = raw_connect(server.value()->port());
  ASSERT_GE(fd, 0);
  constexpr int kFrames = 256;
  const Bytes payload(32 * 1024, 0xcd);  // 8 MiB of responses in total
  std::thread writer([&] {
    Bytes wire;
    append_frame(wire, payload);
    for (int i = 0; i < kFrames; ++i) {
      std::size_t off = 0;
      while (off < wire.size()) {
        const ssize_t n =
            ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
        if (n <= 0) return;
        off += static_cast<std::size_t>(n);
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  // Loopback socket buffers plus the 64 KiB budget hold a bounded number
  // of frames (how many depends on kernel buffer auto-tuning, so no
  // fixed fraction): the real backpressure property is that handling
  // *stalls* while the peer refuses to read — progress between two
  // samples must be (near) zero and the bulk still unprocessed.
  const std::size_t sample1 = handled.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const std::size_t sample2 = handled.load();
  EXPECT_LT(sample2, static_cast<std::size_t>(kFrames));
  EXPECT_LE(sample2 - sample1, 8u);
  for (int i = 0; i < kFrames; ++i) {
    auto resp = recv_frame(fd);
    ASSERT_TRUE(resp.has_value()) << "response " << i;
    ASSERT_EQ(resp->size(), payload.size());
  }
  EXPECT_EQ(handled.load(), static_cast<std::size_t>(kFrames));
  writer.join();
  ::close(fd);
}

TEST(TcpPipelining, InflightRequestDefersIdleEviction) {
  ParkingHandler parking;
  TcpServer::Options opts;
  opts.idle_timeout_ms = 100;
  auto server = TcpServer::create(0, parking.handler(), opts);
  ASSERT_TRUE(server.is_ok());
  const int fd = raw_connect(server.value()->port());
  ASSERT_GE(fd, 0);
  Bytes wire;
  append_frame(wire, to_bytes("slow work"));
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  ASSERT_TRUE(parking.wait_received(1));
  // Well past the idle deadline with the request still in flight: the
  // connection must survive (idleness means *no pending work*).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  auto batch = parking.take();
  ASSERT_EQ(batch.size(), 1u);
  batch[0].second(to_bytes("done"));
  auto resp = recv_frame(fd);
  ASSERT_TRUE(resp.has_value()) << "evicted while a request was in flight";
  EXPECT_EQ(to_string(*resp), "done");
  // With the pipeline drained the idle clock applies again.
  Stopwatch sw;
  std::uint8_t buf[8];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
  EXPECT_LT(sw.elapsed_seconds(), 5.0);
  ::close(fd);
}

TEST(TcpPipelining, MidPipelineStallTimesOutTheBatch) {
  // The second request of the batch never completes; the client's
  // inactivity deadline must fail the batch with kTimeout instead of
  // hanging, even though the first response arrived fine.
  ParkingHandler parking;
  auto server = TcpServer::create(
      0,
      [&parking](Bytes req, TcpServer::Respond respond) {
        if (!req.empty() && req[0] == 'x') {
          parking.handler()(std::move(req), std::move(respond));  // park
          return;
        }
        Bytes resp(req.begin(), req.end());
        respond(std::move(resp));
      },
      TcpServer::Options{});
  ASSERT_TRUE(server.is_ok());
  TcpChannel::Options copts;
  copts.io_timeout_ms = 150;
  auto ch = TcpChannel::connect("127.0.0.1", server.value()->port(), copts);
  ASSERT_TRUE(ch.is_ok());
  Stopwatch sw;
  auto resps = ch.value()->roundtrip_batch(
      {to_bytes("ok-1"), to_bytes("x-stall"), to_bytes("ok-2")});
  ASSERT_FALSE(resps.is_ok());
  EXPECT_EQ(resps.error().code, Errc::kTimeout);
  EXPECT_LT(sw.elapsed_seconds(), 5.0);
}

TEST(TcpHardening, AcceptBacksOffUnderFdExhaustionAndRecovers) {
  struct RlimitGuard {
    rlimit saved{};
    RlimitGuard() { ::getrlimit(RLIMIT_NOFILE, &saved); }
    ~RlimitGuard() { ::setrlimit(RLIMIT_NOFILE, &saved); }
  } guard;

  auto server = TcpServer::create(0, echo_upper);
  ASSERT_TRUE(server.is_ok());
  // Serve one full connection before exhausting the fd table: proves the
  // recovery below restores a previously-working server, and exercises
  // the whole accept/connection machinery once while fds are still
  // available (UBSan's vptr check probes memory through a pipe(2) on a
  // type-cache miss — with zero free fds that probe fails and reports a
  // false "invalid vptr", so the caches must be warm before the window).
  {
    const int warm = raw_connect(server.value()->port());
    ASSERT_GE(warm, 0);
    Bytes wire;
    append_frame(wire, to_bytes("warm"));
    ASSERT_EQ(::send(warm, wire.data(), wire.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(wire.size()));
    auto warm_resp = recv_frame(warm);
    ASSERT_TRUE(warm_resp.has_value());
    EXPECT_EQ(to_string(*warm_resp), "WARM");
    ::close(warm);
    // Wait until the server reaped the connection so its fd does not
    // free up mid-window and skew the exhaustion below.
    for (int i = 0; i < 200 && server.value()->active_workers() > 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(server.value()->active_workers(), 0u);
  }
  // Reserve the client socket *before* exhausting the fd table (it lives
  // in the same process).
  const int cfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(cfd, 0);
  timeval tv{5, 0};
  ::setsockopt(cfd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  // Clamp the fd ceiling just above current usage, then occupy every
  // remaining slot so accept(2) hits EMFILE. Only a process-level
  // EMFILE ends the loop: a neighbor process can momentarily saturate
  // the system-wide table (ENFILE), which would leave free slots here.
  rlimit tight = guard.saved;
  tight.rlim_cur = open_fd_count() + 4;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);
  std::vector<int> hogs;
  for (int spins = 0; spins < 1000; ++spins) {
    const int h = ::open("/dev/null", O_RDONLY);
    if (h < 0) {
      if (errno == EMFILE) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    hogs.push_back(h);
  }
  ASSERT_FALSE(hogs.empty());
  ASSERT_EQ(::open("/dev/null", O_RDONLY), -1);
  ASSERT_EQ(errno, EMFILE);

  const std::uint64_t backoffs_before =
      obs::Registry::instance().counter("fgad_tcp_accept_backoffs_total")
          .value();
  // The TCP handshake completes in the kernel backlog even though the
  // server's accept() cannot get an fd for it yet.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.value()->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(cfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // The accept loop must back off and retry, not die.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_GT(obs::Registry::instance()
                .counter("fgad_tcp_accept_backoffs_total")
                .value(),
            backoffs_before);

  // Free the fd table: the queued connection must now be accepted and
  // served as if nothing had happened.
  for (int h : hogs) ::close(h);
  ::setrlimit(RLIMIT_NOFILE, &guard.saved);
  Bytes wire;
  append_frame(wire, to_bytes("revive"));
  ASSERT_EQ(::send(cfd, wire.data(), wire.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(wire.size()));
  auto resp = recv_frame(cfd);
  ASSERT_TRUE(resp.has_value()) << "connection was not served after recovery";
  EXPECT_EQ(to_string(*resp), "REVIVE");
  ::close(cfd);
}

// ---- FailoverChannel (DESIGN.md §18) ---------------------------------------

/// Channel whose roundtrip fails with kConnReset while `*dead` is set,
/// and otherwise answers "<tag>:<request>".
class FlakyEchoChannel final : public RpcChannel {
 public:
  FlakyEchoChannel(std::string tag, std::shared_ptr<std::atomic<bool>> dead)
      : tag_(std::move(tag)), dead_(std::move(dead)) {}

  Result<Bytes> roundtrip(BytesView request) override {
    if (dead_ && dead_->load()) {
      return Error(Errc::kConnReset, "test: endpoint died");
    }
    Bytes out = to_bytes(tag_ + ":");
    out.insert(out.end(), request.begin(), request.end());
    return out;
  }

 private:
  std::string tag_;
  std::shared_ptr<std::atomic<bool>> dead_;
};

TEST(Failover, RedialReResolvesInsteadOfCachingTheFirstResolution) {
  // Regression: the Resolver must run on EVERY dial. A client that
  // caches the first resolution keeps redialing the dead primary's old
  // address forever after the operator repoints the name.
  auto old_dead = std::make_shared<std::atomic<bool>>(false);
  std::atomic<int> resolutions{0};
  std::mutex mu;
  std::string live_host = "old-host";

  FailoverChannel::Options opts;
  opts.base_backoff_ms = 1;
  opts.max_backoff_ms = 2;
  opts.retryable = [](BytesView) { return true; };
  FailoverChannel ch(
      [&]() -> Result<std::vector<Endpoint>> {
        ++resolutions;
        std::lock_guard<std::mutex> lock(mu);
        return std::vector<Endpoint>{{live_host, 1}};
      },
      [&](const Endpoint& ep) -> Result<std::unique_ptr<RpcChannel>> {
        if (ep.host == "old-host" && old_dead->load()) {
          return Error(Errc::kConnReset, "test: stale address");
        }
        return std::unique_ptr<RpcChannel>(
            std::make_unique<FlakyEchoChannel>(
                ep.host, ep.host == "old-host" ? old_dead : nullptr));
      },
      opts);

  auto first = ch.roundtrip(to_bytes("a"));
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(to_string(first.value()), "old-host:a");
  EXPECT_EQ(resolutions.load(), 1);

  // The primary dies and the name is repointed between dials.
  old_dead->store(true);
  {
    std::lock_guard<std::mutex> lock(mu);
    live_host = "new-host";
  }
  auto second = ch.roundtrip(to_bytes("b"));
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  EXPECT_EQ(to_string(second.value()), "new-host:b")
      << "redial used a cached resolution";
  EXPECT_GE(resolutions.load(), 2);
}

TEST(Failover, NotPrimaryRotatesAndResendsEvenWithoutRetryPredicate) {
  // kNotPrimary is a definitive not-executed signal: the refusing node
  // never touched its WAL. So the failover channel may resend ANY
  // request after rotating — even one the retryable predicate (null
  // here, strictest setting) would refuse after a transport error.
  proto::ErrorMsg bounce;
  bounce.code = Errc::kNotPrimary;
  bounce.message = "backup";
  const Bytes bounce_frame = bounce.to_frame();
  ASSERT_TRUE(is_not_primary_frame(bounce_frame));

  std::atomic<int> backup_hits{0};
  FailoverChannel ch(
      static_endpoints({{"backup", 1}, {"primary", 2}}),
      [&](const Endpoint& ep) -> Result<std::unique_ptr<RpcChannel>> {
        if (ep.host == "backup") {
          ++backup_hits;
          return std::unique_ptr<RpcChannel>(
              std::make_unique<DirectChannel>([bounce_frame](BytesView) {
                return bounce_frame;
              }));
        }
        return std::unique_ptr<RpcChannel>(
            std::make_unique<FlakyEchoChannel>("primary", nullptr));
      },
      FailoverChannel::Options{});  // retryable = null

  auto resp = ch.roundtrip(to_bytes("mutate"));
  ASSERT_TRUE(resp.is_ok()) << resp.status().to_string();
  EXPECT_EQ(to_string(resp.value()), "primary:mutate");
  EXPECT_EQ(backup_hits.load(), 1);
  EXPECT_EQ(ch.failovers(), 1u);
  EXPECT_EQ(ch.dials(), 2u);
}

TEST(Failover, TransportErrorWithoutPredicateIsNotResent) {
  // Without a retryable predicate a transport failure means the request
  // MAY have executed — the channel must surface the error, not replay
  // it against the other endpoint.
  std::atomic<int> sends{0};
  FailoverChannel ch(
      static_endpoints({{"a", 1}, {"b", 2}}),
      [&](const Endpoint&) -> Result<std::unique_ptr<RpcChannel>> {
        auto dead = std::make_shared<std::atomic<bool>>(true);
        ++sends;
        return std::unique_ptr<RpcChannel>(
            std::make_unique<FlakyEchoChannel>("x", dead));
      },
      FailoverChannel::Options{});

  auto resp = ch.roundtrip(to_bytes("mutate"));
  ASSERT_FALSE(resp.is_ok());
  EXPECT_EQ(resp.error().code, Errc::kConnReset);
  EXPECT_EQ(sends.load(), 1) << "must not redial to resend";
}

}  // namespace
}  // namespace fgad::net
