// Transports: direct, counting, in-memory pipe, TCP loopback — plus the
// hardening behaviours of DESIGN.md §11: frame limits, deadlines, bounded
// worker pool, fd lifecycle.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "common/stopwatch.h"
#include "net/inmemory.h"
#include "net/tcp.h"
#include "net/transport.h"

namespace fgad::net {
namespace {

Bytes echo_upper(BytesView req) {
  Bytes out(req.begin(), req.end());
  for (auto& b : out) {
    if (b >= 'a' && b <= 'z') b -= 32;
  }
  return out;
}

TEST(DirectChannel, InvokesHandler) {
  DirectChannel ch(echo_upper);
  auto resp = ch.roundtrip(to_bytes("hello"));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(to_string(resp.value()), "HELLO");
}

TEST(CountingChannel, CountsBothDirections) {
  DirectChannel inner(echo_upper);
  CountingChannel ch(inner);
  ASSERT_TRUE(ch.roundtrip(to_bytes("abcd")).is_ok());
  EXPECT_EQ(ch.bytes_sent(), 4u + kFrameHeaderSize);
  EXPECT_EQ(ch.bytes_received(), 4u + kFrameHeaderSize);
  EXPECT_EQ(ch.total_bytes(), 2 * (4u + kFrameHeaderSize));
  EXPECT_EQ(ch.rpc_count(), 1u);
  ch.reset();
  EXPECT_EQ(ch.total_bytes(), 0u);
}

TEST(ByteQueue, PushPopOrder) {
  ByteQueue q;
  EXPECT_TRUE(q.push(to_bytes("a")));
  EXPECT_TRUE(q.push(to_bytes("b")));
  EXPECT_EQ(to_string(*q.pop()), "a");
  EXPECT_EQ(to_string(*q.pop()), "b");
}

TEST(ByteQueue, CloseWakesAndDrains) {
  ByteQueue q;
  q.push(to_bytes("x"));
  q.close();
  EXPECT_FALSE(q.push(to_bytes("y")));
  EXPECT_EQ(to_string(*q.pop()), "x");  // drained after close
  EXPECT_FALSE(q.pop().has_value());
}

TEST(PipeChannel, RoundtripThroughServerThread) {
  Pipe pipe;
  ServerPump pump(pipe, echo_upper);
  PipeChannel ch(pipe);
  for (int i = 0; i < 10; ++i) {
    auto resp = ch.roundtrip(to_bytes("ping"));
    ASSERT_TRUE(resp.is_ok());
    EXPECT_EQ(to_string(resp.value()), "PING");
  }
  pump.stop();
  EXPECT_FALSE(ch.roundtrip(to_bytes("late")).is_ok());
}

TEST(Tcp, RoundtripOverLoopback) {
  TcpServer server(0, echo_upper);
  ASSERT_TRUE(server.ok());
  ASSERT_NE(server.port(), 0);
  auto ch = TcpChannel::connect("127.0.0.1", server.port());
  ASSERT_TRUE(ch.is_ok());
  for (int i = 0; i < 20; ++i) {
    auto resp = ch.value()->roundtrip(to_bytes("tcp message"));
    ASSERT_TRUE(resp.is_ok());
    EXPECT_EQ(to_string(resp.value()), "TCP MESSAGE");
  }
}

TEST(Tcp, LargeFrames) {
  TcpServer server(0, [](BytesView req) {
    return Bytes(req.begin(), req.end());  // echo
  });
  ASSERT_TRUE(server.ok());
  auto ch = TcpChannel::connect("127.0.0.1", server.port());
  ASSERT_TRUE(ch.is_ok());
  Bytes big(1 << 20, 0xab);
  auto resp = ch.value()->roundtrip(big);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp.value(), big);
}

TEST(Tcp, EmptyFrame) {
  TcpServer server(0, [](BytesView) { return Bytes{}; });
  ASSERT_TRUE(server.ok());
  auto ch = TcpChannel::connect("127.0.0.1", server.port());
  ASSERT_TRUE(ch.is_ok());
  auto resp = ch.value()->roundtrip({});
  ASSERT_TRUE(resp.is_ok());
  EXPECT_TRUE(resp.value().empty());
}

TEST(Tcp, MultipleConcurrentClients) {
  TcpServer server(0, echo_upper);
  ASSERT_TRUE(server.ok());
  auto a = TcpChannel::connect("127.0.0.1", server.port());
  auto b = TcpChannel::connect("127.0.0.1", server.port());
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(to_string(a.value()->roundtrip(to_bytes("one")).value()), "ONE");
  EXPECT_EQ(to_string(b.value()->roundtrip(to_bytes("two")).value()), "TWO");
  EXPECT_EQ(to_string(a.value()->roundtrip(to_bytes("three")).value()),
            "THREE");
}

TEST(Tcp, ConnectToClosedPortFails) {
  // Grab an ephemeral port, close the server, then try to connect.
  std::uint16_t port;
  {
    TcpServer server(0, echo_upper);
    ASSERT_TRUE(server.ok());
    port = server.port();
  }
  auto ch = TcpChannel::connect("127.0.0.1", port);
  EXPECT_FALSE(ch.is_ok());
}

TEST(Tcp, BadHostRejected) {
  EXPECT_FALSE(TcpChannel::connect("not-an-ip", 1).is_ok());
}

// ---- hardening (DESIGN.md §11) ---------------------------------------------

/// Raw loopback TCP connect, bypassing TcpChannel (for malformed-wire and
/// fd-lifecycle tests). Returns -1 on failure.
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  timeval tv{5, 0};  // keep a stuck test bounded
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::size_t open_fd_count() {
  std::size_t n = 0;
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return 0;
  while (::readdir(d) != nullptr) ++n;
  ::closedir(d);
  return n;
}

TEST(TcpHardening, WriteFrameRejectsOversizedPayload) {
  // The size check fires before any byte is read or sent, so a fake-length
  // span over a small buffer is safe — and the only way to test the 4 GiB
  // header-truncation guard without allocating gigabytes.
  Bytes small(1);
  const BytesView fake(small.data(), static_cast<std::size_t>(kMaxFrameSize) + 1);
  const Status st = write_frame(/*fd=*/-1, fake);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::kDecodeError);
  const BytesView fake5g(small.data(), (std::size_t{1} << 32) + 7);
  EXPECT_EQ(write_frame(/*fd=*/-1, fake5g).code(), Errc::kDecodeError);
}

TEST(TcpHardening, RoundtripTimesOutOnSlowHandler) {
  auto server = TcpServer::create(0, [](BytesView req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return Bytes(req.begin(), req.end());
  });
  ASSERT_TRUE(server.is_ok());
  TcpChannel::Options opts;
  opts.io_timeout_ms = 50;
  auto ch = TcpChannel::connect("127.0.0.1", server.value()->port(), opts);
  ASSERT_TRUE(ch.is_ok());
  Stopwatch sw;
  auto resp = ch.value()->roundtrip(to_bytes("slow"));
  ASSERT_FALSE(resp.is_ok());
  EXPECT_EQ(resp.error().code, Errc::kTimeout);
  EXPECT_LT(sw.elapsed_seconds(), 5.0);
}

TEST(TcpHardening, ConnectDeadlineIsBounded) {
  // A listener that never accepts, with a zero backlog: once its accept
  // queue is full the kernel drops further SYNs, so connect() must hit our
  // deadline instead of hanging for the kernel's minutes-long default.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 0), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  // Fill the accept queue with connections nobody will ever accept.
  std::vector<int> fillers;
  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    ASSERT_GE(fd, 0);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    fillers.push_back(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  TcpChannel::Options opts;
  opts.connect_timeout_ms = 200;
  Stopwatch sw;
  auto ch = TcpChannel::connect("127.0.0.1", port, opts);
  ASSERT_FALSE(ch.is_ok());
  EXPECT_EQ(ch.code(), Errc::kTimeout) << ch.status().to_string();
  EXPECT_LT(sw.elapsed_seconds(), 5.0);
  for (int fd : fillers) ::close(fd);
  ::close(lfd);
}

TEST(TcpHardening, ServerClosesConnectionOnOversizedFrameHeader) {
  auto server = TcpServer::create(0, echo_upper);
  ASSERT_TRUE(server.is_ok());
  const int fd = raw_connect(server.value()->port());
  ASSERT_GE(fd, 0);
  // Header claiming a 2 GiB frame: over kMaxFrameSize, under UINT32_MAX.
  const std::uint8_t hdr[4] = {0x00, 0x00, 0x00, 0x80};
  ASSERT_EQ(::send(fd, hdr, sizeof(hdr), MSG_NOSIGNAL), 4);
  std::uint8_t buf[16];
  // The server must drop the connection, not wait for 2 GiB that will
  // never arrive: recv sees EOF (0), not a timeout.
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);
}

TEST(TcpHardening, IdleTimeoutEvictsStalledConnection) {
  TcpServer::Options opts;
  opts.idle_timeout_ms = 100;
  auto server = TcpServer::create(0, echo_upper, opts);
  ASSERT_TRUE(server.is_ok());
  const int fd = raw_connect(server.value()->port());
  ASSERT_GE(fd, 0);
  // A slowloris peer: half a header, then silence.
  const std::uint8_t half[2] = {0x01, 0x00};
  ASSERT_EQ(::send(fd, half, sizeof(half), MSG_NOSIGNAL), 2);
  std::uint8_t buf[16];
  Stopwatch sw;
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);  // evicted, not served
  EXPECT_LT(sw.elapsed_seconds(), 5.0);
  ::close(fd);
}

TEST(TcpHardening, StopWithInflightConnectionsJoinsWorkersAndLeaksNoFds) {
  const std::size_t fds_before = open_fd_count();
  Stopwatch sw;
  {
    auto server = TcpServer::create(0, echo_upper);
    ASSERT_TRUE(server.is_ok());
    // Two well-behaved clients with live connections...
    auto a = TcpChannel::connect("127.0.0.1", server.value()->port());
    auto b = TcpChannel::connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    ASSERT_TRUE(a.value()->roundtrip(to_bytes("x")).is_ok());
    ASSERT_TRUE(b.value()->roundtrip(to_bytes("y")).is_ok());
    // ...and one parked mid-frame (worker blocked in read_frame).
    const int raw = raw_connect(server.value()->port());
    ASSERT_GE(raw, 0);
    const std::uint8_t half[2] = {0x08, 0x00};
    ASSERT_EQ(::send(raw, half, sizeof(half), MSG_NOSIGNAL), 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.value()->stop();  // must unblock + join all three workers
    ::close(raw);
  }
  EXPECT_LT(sw.elapsed_seconds(), 5.0);
  EXPECT_EQ(open_fd_count(), fds_before);
}

TEST(TcpHardening, WorkerPoolBoundAppliesBackpressure) {
  TcpServer::Options opts;
  opts.max_workers = 1;
  auto server = TcpServer::create(0, echo_upper, opts);
  ASSERT_TRUE(server.is_ok());
  auto first = TcpChannel::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(first.value()->roundtrip(to_bytes("one")).is_ok());
  // The second connection queues in the listen backlog until the first
  // client disconnects and its worker is reaped.
  auto second = TcpChannel::connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(second.is_ok());
  std::thread t([&] {
    auto resp = second.value()->roundtrip(to_bytes("two"));
    EXPECT_TRUE(resp.is_ok());
    EXPECT_EQ(to_string(resp.value()), "TWO");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  first.value().reset();  // frees the only worker slot
  t.join();
  EXPECT_EQ(server.value()->peak_workers(), 1u);
}

TEST(TcpHardening, SequentialConnectionsAreReapedNotAccumulated) {
  auto server = TcpServer::create(0, echo_upper);
  ASSERT_TRUE(server.is_ok());
  for (int i = 0; i < 10; ++i) {
    {
      auto ch = TcpChannel::connect("127.0.0.1", server.value()->port());
      ASSERT_TRUE(ch.is_ok());
      ASSERT_TRUE(ch.value()->roundtrip(to_bytes("ping")).is_ok());
    }
    // The connection is closed; its worker must deregister promptly.
    for (int spin = 0; spin < 500 && server.value()->active_workers() > 0;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(server.value()->active_workers(), 0u) << "cycle " << i;
  }
  // Strictly sequential connections: never more than one worker alive.
  EXPECT_EQ(server.value()->peak_workers(), 1u);
}

TEST(TcpHardening, CreateSurfacesBindFailure) {
  auto first = TcpServer::create(0, echo_upper);
  ASSERT_TRUE(first.is_ok());
  auto second = TcpServer::create(first.value()->port(), echo_upper);
  ASSERT_FALSE(second.is_ok());
  EXPECT_EQ(second.code(), Errc::kIoError);
  EXPECT_NE(second.error().message.find("bind"), std::string::npos)
      << second.error().message;
}

}  // namespace
}  // namespace fgad::net
