// Transports: direct, counting, in-memory pipe, TCP loopback.
#include <gtest/gtest.h>

#include "net/inmemory.h"
#include "net/tcp.h"
#include "net/transport.h"

namespace fgad::net {
namespace {

Bytes echo_upper(BytesView req) {
  Bytes out(req.begin(), req.end());
  for (auto& b : out) {
    if (b >= 'a' && b <= 'z') b -= 32;
  }
  return out;
}

TEST(DirectChannel, InvokesHandler) {
  DirectChannel ch(echo_upper);
  auto resp = ch.roundtrip(to_bytes("hello"));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(to_string(resp.value()), "HELLO");
}

TEST(CountingChannel, CountsBothDirections) {
  DirectChannel inner(echo_upper);
  CountingChannel ch(inner);
  ASSERT_TRUE(ch.roundtrip(to_bytes("abcd")).is_ok());
  EXPECT_EQ(ch.bytes_sent(), 4u + kFrameHeaderSize);
  EXPECT_EQ(ch.bytes_received(), 4u + kFrameHeaderSize);
  EXPECT_EQ(ch.total_bytes(), 2 * (4u + kFrameHeaderSize));
  EXPECT_EQ(ch.rpc_count(), 1u);
  ch.reset();
  EXPECT_EQ(ch.total_bytes(), 0u);
}

TEST(ByteQueue, PushPopOrder) {
  ByteQueue q;
  EXPECT_TRUE(q.push(to_bytes("a")));
  EXPECT_TRUE(q.push(to_bytes("b")));
  EXPECT_EQ(to_string(*q.pop()), "a");
  EXPECT_EQ(to_string(*q.pop()), "b");
}

TEST(ByteQueue, CloseWakesAndDrains) {
  ByteQueue q;
  q.push(to_bytes("x"));
  q.close();
  EXPECT_FALSE(q.push(to_bytes("y")));
  EXPECT_EQ(to_string(*q.pop()), "x");  // drained after close
  EXPECT_FALSE(q.pop().has_value());
}

TEST(PipeChannel, RoundtripThroughServerThread) {
  Pipe pipe;
  ServerPump pump(pipe, echo_upper);
  PipeChannel ch(pipe);
  for (int i = 0; i < 10; ++i) {
    auto resp = ch.roundtrip(to_bytes("ping"));
    ASSERT_TRUE(resp.is_ok());
    EXPECT_EQ(to_string(resp.value()), "PING");
  }
  pump.stop();
  EXPECT_FALSE(ch.roundtrip(to_bytes("late")).is_ok());
}

TEST(Tcp, RoundtripOverLoopback) {
  TcpServer server(0, echo_upper);
  ASSERT_TRUE(server.ok());
  ASSERT_NE(server.port(), 0);
  auto ch = TcpChannel::connect("127.0.0.1", server.port());
  ASSERT_TRUE(ch.is_ok());
  for (int i = 0; i < 20; ++i) {
    auto resp = ch.value()->roundtrip(to_bytes("tcp message"));
    ASSERT_TRUE(resp.is_ok());
    EXPECT_EQ(to_string(resp.value()), "TCP MESSAGE");
  }
}

TEST(Tcp, LargeFrames) {
  TcpServer server(0, [](BytesView req) {
    return Bytes(req.begin(), req.end());  // echo
  });
  ASSERT_TRUE(server.ok());
  auto ch = TcpChannel::connect("127.0.0.1", server.port());
  ASSERT_TRUE(ch.is_ok());
  Bytes big(1 << 20, 0xab);
  auto resp = ch.value()->roundtrip(big);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp.value(), big);
}

TEST(Tcp, EmptyFrame) {
  TcpServer server(0, [](BytesView) { return Bytes{}; });
  ASSERT_TRUE(server.ok());
  auto ch = TcpChannel::connect("127.0.0.1", server.port());
  ASSERT_TRUE(ch.is_ok());
  auto resp = ch.value()->roundtrip({});
  ASSERT_TRUE(resp.is_ok());
  EXPECT_TRUE(resp.value().empty());
}

TEST(Tcp, MultipleConcurrentClients) {
  TcpServer server(0, echo_upper);
  ASSERT_TRUE(server.ok());
  auto a = TcpChannel::connect("127.0.0.1", server.port());
  auto b = TcpChannel::connect("127.0.0.1", server.port());
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(to_string(a.value()->roundtrip(to_bytes("one")).value()), "ONE");
  EXPECT_EQ(to_string(b.value()->roundtrip(to_bytes("two")).value()), "TWO");
  EXPECT_EQ(to_string(a.value()->roundtrip(to_bytes("three")).value()),
            "THREE");
}

TEST(Tcp, ConnectToClosedPortFails) {
  // Grab an ephemeral port, close the server, then try to connect.
  std::uint16_t port;
  {
    TcpServer server(0, echo_upper);
    ASSERT_TRUE(server.ok());
    port = server.port();
  }
  auto ch = TcpChannel::connect("127.0.0.1", port);
  EXPECT_FALSE(ch.is_ok());
}

TEST(Tcp, BadHostRejected) {
  EXPECT_FALSE(TcpChannel::connect("not-an-ip", 1).is_ok());
}

}  // namespace
}  // namespace fgad::net
