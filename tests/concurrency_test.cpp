// Concurrency: multiple TCP clients mutating the same server. The wire
// dispatcher serializes requests, so concurrent well-formed operation
// streams must interleave without corrupting any file.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "client/client.h"
#include "cloud/server.h"
#include "net/tcp.h"
#include "support/harness.h"

namespace fgad {
namespace {

using client::Client;
using cloud::CloudServer;
using crypto::SystemRandom;
using test::payload_for;

TEST(Concurrency, ParallelClientsOnSeparateFiles) {
  CloudServer server;
  net::TcpServer tcp(0, [&server](BytesView req) { return server.handle(req); });
  ASSERT_TRUE(tcp.ok());

  constexpr int kClients = 4;
  constexpr int kOpsEach = 30;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto ch = net::TcpChannel::connect("127.0.0.1", tcp.port());
      if (!ch) {
        ++failures;
        return;
      }
      SystemRandom rnd;
      Client client(*ch.value(), rnd);
      // Distinct counter ranges keep item ids globally unique across
      // clients (in a real deployment each client is its own namespace).
      client.set_counter(static_cast<std::uint64_t>(c) << 32);

      const std::uint64_t file_id = 100 + c;
      auto fh = client.outsource(
          file_id, 16, [&](std::size_t i) { return payload_for(c * 100 + i); });
      if (!fh) {
        ++failures;
        return;
      }
      Xoshiro256 rng(c + 1);
      std::vector<std::uint64_t> live = client.list_items(fh.value()).value();
      for (int op = 0; op < kOpsEach; ++op) {
        if (!live.empty() && rng.next_below(2) == 0) {
          const std::size_t idx = rng.next_below(live.size());
          if (!client.erase_item(fh.value(), proto::ItemRef::id(live[idx]))) {
            ++failures;
            return;
          }
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        } else {
          auto id = client.insert(fh.value(), payload_for(c * 1000 + op));
          if (!id) {
            ++failures;
            return;
          }
          live.push_back(id.value());
        }
      }
      // Final consistency check from this client's perspective.
      for (std::uint64_t id : live) {
        if (!client.access(fh.value(), proto::ItemRef::id(id))) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(server.has_file(100 + c));
  }
  tcp.stop();
}

TEST(Concurrency, ParallelReadersOnOneFile) {
  CloudServer server;
  net::TcpServer tcp(0, [&server](BytesView req) { return server.handle(req); });
  ASSERT_TRUE(tcp.ok());

  // One writer outsources; many readers hammer access concurrently.
  SystemRandom rnd;
  auto owner_ch = net::TcpChannel::connect("127.0.0.1", tcp.port());
  ASSERT_TRUE(owner_ch.is_ok());
  Client owner(*owner_ch.value(), rnd);
  auto fh = owner.outsource(1, 64,
                            [](std::size_t i) { return payload_for(i); });
  ASSERT_TRUE(fh.is_ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      auto ch = net::TcpChannel::connect("127.0.0.1", tcp.port());
      if (!ch) {
        ++failures;
        return;
      }
      SystemRandom rrnd;
      Client reader(*ch.value(), rrnd);
      Client::FileHandle handle;
      handle.id = 1;
      handle.key = fh.value().key.clone();
      Xoshiro256 rng(r);
      for (int i = 0; i < 100; ++i) {
        const std::uint64_t id = rng.next_below(64);
        auto got = reader.access(handle, proto::ItemRef::id(id));
        if (!got || got.value() != payload_for(id)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  tcp.stop();
}

}  // namespace
}  // namespace fgad
