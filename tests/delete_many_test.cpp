// Merged-cut bulk deletion (DESIGN.md §16): m items of one file fall in a
// single begin/commit exchange under ONE fresh master key, with one delta
// bundle covering the union of the targets' sibling cuts.
//
// Core-level tests drive FileStore::delete_many_* + ClientMath::
// plan_delete_many through the Harness (which asserts Theorem 1 for every
// survivor after each step and that the merged cut never exceeds the sum
// of the individual cuts). Client-level tests drive Client::erase_items /
// erase_batch over a DirectChannel and pin down the round-trip economics,
// the per-target wrong-leaf defence, and the retry-bound semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "client/client.h"
#include "cloud/server.h"
#include "common/thread_pool.h"
#include "core/bulk_geometry.h"
#include "crypto/random.h"
#include "support/harness.h"

namespace fgad {
namespace {

using client::Client;
using cloud::CloudServer;
using core::NodeId;
using crypto::SystemRandom;
using test::Harness;
using test::payload_for;

Bytes store_image(Harness& h) {
  proto::Writer w;
  h.store().serialize(w);
  return w.data();
}

// ---- geometry unit tests ---------------------------------------------------

TEST(BulkGeometry, MergedCutOfOneLeafIsItsSiblingPath) {
  // 15 nodes = 8 leaves (ids 7..14). The cut of one leaf is the sibling
  // of every node on its root path — depth nodes in ascending id order.
  const std::size_t nodes = 15;
  for (NodeId leaf = 7; leaf < 15; ++leaf) {
    std::vector<NodeId> one{leaf};
    auto cut = core::merged_cut_nodes(nodes, one);
    ASSERT_EQ(cut.size(), 3u) << leaf;
    std::vector<NodeId> expect;
    for (NodeId v = leaf; v != core::root_id(); v = core::parent_of(v)) {
      expect.push_back(core::sibling_of(v));
    }
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(cut, expect) << leaf;
  }
}

TEST(BulkGeometry, SiblingPairSharesTheUpperCut) {
  // Deleting both children of one internal node: the pair contributes no
  // cut node at its own depth (each sibling is itself deleted), so the
  // merged cut is exactly the upper path's siblings.
  const std::size_t nodes = 15;
  std::vector<NodeId> pair{7, 8};  // children of node 3
  auto cut = core::merged_cut_nodes(nodes, pair);
  EXPECT_EQ(cut, (std::vector<NodeId>{2, 4}));
}

TEST(BulkGeometry, AllLeavesYieldEmptyCutAndEmptyTree) {
  const std::size_t nodes = 15;
  std::vector<NodeId> all{7, 8, 9, 10, 11, 12, 13, 14};
  EXPECT_TRUE(core::merged_cut_nodes(nodes, all).empty());
  auto geo = core::bulk_geometry(nodes, all);
  EXPECT_EQ(geo.new_node_count, 0u);
  EXPECT_TRUE(geo.holes.empty());
  EXPECT_TRUE(geo.movers.empty());
}

TEST(BulkGeometry, HolesAndMoversPairUp) {
  // 21 nodes = 11 leaves (10..20). Delete 3: N' = 15, new leaves 7..14.
  const std::size_t nodes = 21;
  std::vector<NodeId> dels{10, 13, 20};
  auto geo = core::bulk_geometry(nodes, dels);
  EXPECT_EQ(geo.new_node_count, 15u);
  ASSERT_EQ(geo.holes.size(), geo.movers.size());
  // Holes: formerly-internal slots [7, 10) plus deleted leaves < 15.
  EXPECT_EQ(geo.holes, (std::vector<NodeId>{7, 8, 9, 10, 13}));
  // Movers: surviving leaves >= 15 in ascending order.
  EXPECT_EQ(geo.movers, (std::vector<NodeId>{15, 16, 17, 18, 19}));
}

// ---- core protocol tests ---------------------------------------------------

TEST(DeleteMany, SingleTargetByteIdenticalToPlanDelete) {
  // m=1 through the merged-cut path must leave the server byte-identical
  // to the classic single plan_delete — same deltas, same relocation,
  // same random draws. Cover the general case and both degenerate
  // promote-only cases (target at / next to the last leaf).
  for (std::uint64_t target : {7u, 0u, 18u, 19u}) {
    Harness single(crypto::HashAlg::kSha1, 1234);
    Harness bulk(crypto::HashAlg::kSha1, 1234);
    single.outsource(20);
    bulk.outsource(20);
    ASSERT_EQ(store_image(single), store_image(bulk));

    ASSERT_TRUE(single.erase(target)) << target;
    ASSERT_TRUE(bulk.erase_many({target})) << target;
    EXPECT_EQ(store_image(single), store_image(bulk)) << target;
    single.verify_all();
    bulk.verify_all();
  }
}

TEST(DeleteMany, AdjacentSiblingLeaves) {
  Harness h(crypto::HashAlg::kSha1, 7);
  h.outsource(16);
  // Items 4 and 5 sit on leaves 19/20 — a sibling pair under node 9.
  ASSERT_TRUE(h.erase_many({4, 5}));
  h.verify_all();
  EXPECT_FALSE(h.access(4).is_ok());
  EXPECT_FALSE(h.access(5).is_ok());
  EXPECT_EQ(h.access(6).value(), payload_for(6));
}

TEST(DeleteMany, OverlappingCutsShareAncestors) {
  Harness h(crypto::HashAlg::kSha1, 8);
  h.outsource(16);
  // Four consecutive leaves span two sibling pairs under one grandparent:
  // their individual cuts overlap heavily and the merge must count each
  // boundary node once.
  ASSERT_TRUE(h.erase_many({0, 1, 2, 3}));
  h.verify_all();
  for (std::uint64_t id : {0u, 1u, 2u, 3u}) {
    EXPECT_FALSE(h.access(id).is_ok()) << id;
  }
}

TEST(DeleteMany, DeleteAllLeaves) {
  Harness h(crypto::HashAlg::kSha1, 9);
  h.outsource(8);
  std::vector<std::uint64_t> all = h.live_ids();
  ASSERT_TRUE(h.erase_many(all));
  h.verify_all();
  EXPECT_EQ(h.store().tree().node_count(), 0u);
  EXPECT_EQ(h.store().item_count(), 0u);
}

TEST(DeleteMany, CutStaysWithinLogBound) {
  Harness h(crypto::HashAlg::kSha1, 10);
  const std::size_t n = 256;
  h.outsource(n);
  // 16 spread-out targets: the merged cut is bounded by m * ceil(log2 n)
  // (each target contributes at most its own root path of siblings).
  std::vector<std::uint64_t> ids;
  std::vector<std::uint32_t> slots;
  for (std::uint64_t id = 0; id < n; id += 16) {
    ids.push_back(id);
    slots.push_back(*h.store().items().find(id));
  }
  auto info = h.store().delete_many_begin(slots);
  ASSERT_TRUE(info.is_ok());
  const std::size_t bound =
      ids.size() *
      static_cast<std::size_t>(std::ceil(std::log2(static_cast<double>(n))));
  EXPECT_LE(info.value().cut.size(), bound);
  ASSERT_TRUE(h.erase_many(ids));
  h.verify_all();
}

TEST(DeleteMany, RandomBatchesUntilEmpty) {
  Harness h(crypto::HashAlg::kSha1, 11);
  h.outsource(64);
  Xoshiro256 rng(99);
  while (h.store().item_count() > 0) {
    std::vector<std::uint64_t> live = h.live_ids();
    const std::size_t m =
        1 + rng.next_below(std::min<std::size_t>(live.size(), 9));
    // Draw m distinct ids.
    std::vector<std::uint64_t> batch;
    for (std::size_t k = 0; k < m; ++k) {
      std::size_t pick = rng.next_below(live.size());
      batch.push_back(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_TRUE(h.erase_many(batch)) << "at size " << h.store().item_count();
    h.verify_all();
  }
  EXPECT_EQ(h.store().tree().node_count(), 0u);
}

TEST(DeleteMany, InterleavesWithInsertAndSingleDelete) {
  Harness h(crypto::HashAlg::kSha1, 12);
  h.outsource(24);
  ASSERT_TRUE(h.erase_many({2, 3, 11}));
  h.verify_all();
  ASSERT_TRUE(h.insert(payload_for(500)).is_ok());
  ASSERT_TRUE(h.erase(7));
  h.verify_all();
  ASSERT_TRUE(h.erase_many({0, 23, 8, 9}));
  h.verify_all();
}

// ---- client-level tests ----------------------------------------------------

struct ClientStack {
  CloudServer server;
  SystemRandom rnd;
  std::size_t rpcs = 0;
  net::DirectChannel ch;
  Client client;

  explicit ClientStack(Client::Options copts = {})
      : ch([this](BytesView req) {
          ++rpcs;
          return server.handle(req);
        }),
        client(ch, rnd, copts) {}
};

TEST(EraseItems, OneRoundTripOneRotationForManyItems) {
  ClientStack s;
  std::vector<Bytes> items;
  for (int i = 0; i < 32; ++i) items.push_back(payload_for(i));
  auto fh = s.client.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());

  std::vector<proto::ItemRef> refs;
  for (std::uint64_t id : {3u, 4u, 10u, 11u, 20u, 31u}) {
    refs.push_back(proto::ItemRef::id(id));
  }
  const std::size_t before = s.rpcs;
  ASSERT_TRUE(s.client.erase_items(fh.value(), refs));
  // The whole bulk deletion is ONE begin + ONE commit.
  EXPECT_EQ(s.rpcs - before, 2u);

  for (std::uint64_t id : {3u, 4u, 10u, 11u, 20u, 31u}) {
    EXPECT_FALSE(s.client.access(fh.value(), proto::ItemRef::id(id)).is_ok());
  }
  // The single rotated key decrypts every survivor.
  for (std::uint64_t id : {0u, 5u, 12u, 30u}) {
    EXPECT_EQ(s.client.access(fh.value(), proto::ItemRef::id(id)).value(),
              payload_for(id));
  }
}

TEST(EraseItems, EmptyAndSingleRefDegenerate) {
  ClientStack s;
  std::vector<Bytes> items;
  for (int i = 0; i < 8; ++i) items.push_back(payload_for(i));
  auto fh = s.client.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());

  ASSERT_TRUE(s.client.erase_items(fh.value(), {}));
  std::vector<proto::ItemRef> one{proto::ItemRef::id(5)};
  ASSERT_TRUE(s.client.erase_items(fh.value(), one));
  EXPECT_FALSE(s.client.access(fh.value(), proto::ItemRef::id(5)).is_ok());
  EXPECT_TRUE(s.client.access(fh.value(), proto::ItemRef::id(0)).is_ok());
}

TEST(EraseItems, DuplicateRefsRejected) {
  ClientStack s;
  std::vector<Bytes> items;
  for (int i = 0; i < 8; ++i) items.push_back(payload_for(i));
  auto fh = s.client.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());

  std::vector<proto::ItemRef> dup{proto::ItemRef::id(2),
                                  proto::ItemRef::id(2)};
  EXPECT_EQ(s.client.erase_items(fh.value(), dup).code(),
            Errc::kInvalidArgument);
  // Nothing was deleted.
  EXPECT_TRUE(s.client.access(fh.value(), proto::ItemRef::id(2)).is_ok());
}

TEST(EraseItems, TamperedTargetCiphertextRejected) {
  ClientStack s;
  std::vector<Bytes> items;
  for (int i = 0; i < 16; ++i) items.push_back(payload_for(i));
  auto fh = s.client.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());

  // A malicious cloud swaps two targets' ciphertexts in the begin
  // response; the per-target decrypt check must reject the bundle
  // before anything is committed (Theorem 2 applied per item).
  s.server.tamper_delete_many_info = [](core::DeleteManyInfo& info) {
    std::swap(info.targets[0].ciphertext, info.targets[1].ciphertext);
  };
  std::vector<proto::ItemRef> refs{proto::ItemRef::id(1),
                                   proto::ItemRef::id(9)};
  EXPECT_EQ(s.client.erase_items(fh.value(), refs).code(),
            Errc::kTamperDetected);
  s.server.tamper_delete_many_info = nullptr;
  EXPECT_TRUE(s.client.access(fh.value(), proto::ItemRef::id(1)).is_ok());
  EXPECT_TRUE(s.client.access(fh.value(), proto::ItemRef::id(9)).is_ok());
}

TEST(EraseBatch, MixedSameFileAndCrossFileRefs) {
  ClientStack s;
  std::vector<Bytes> items;
  for (int i = 0; i < 12; ++i) items.push_back(payload_for(i));
  auto fh1 = s.client.outsource(1, items);
  auto fh2 = s.client.outsource(2, items);
  ASSERT_TRUE(fh1.is_ok());
  ASSERT_TRUE(fh2.is_ok());
  auto ids2 = s.client.list_items(fh2.value());
  ASSERT_TRUE(ids2.is_ok());

  // Two refs into file 1 (bulk path) interleaved with one into file 2
  // (pipelined single path).
  std::vector<Client::FileHandle*> handles{&fh1.value(), &fh2.value(),
                                           &fh1.value()};
  std::vector<proto::ItemRef> refs{proto::ItemRef::id(2),
                                   proto::ItemRef::id(ids2.value()[5]),
                                   proto::ItemRef::id(7)};
  const Status st = s.client.erase_batch(handles, refs);
  ASSERT_TRUE(st) << st.to_string();
  EXPECT_FALSE(s.client.access(fh1.value(), proto::ItemRef::id(2)).is_ok());
  EXPECT_FALSE(s.client.access(fh1.value(), proto::ItemRef::id(7)).is_ok());
  EXPECT_FALSE(
      s.client.access(fh2.value(), proto::ItemRef::id(ids2.value()[5]))
          .is_ok());
  EXPECT_TRUE(s.client.access(fh1.value(), proto::ItemRef::id(0)).is_ok());
  EXPECT_TRUE(
      s.client.access(fh2.value(), proto::ItemRef::id(ids2.value()[0]))
          .is_ok());
}

TEST(EraseBatch, TwoHandlesSharingOneIdRejected) {
  ClientStack s;
  std::vector<Bytes> items;
  for (int i = 0; i < 4; ++i) items.push_back(payload_for(i));
  auto fh1 = s.client.outsource(1, items);
  ASSERT_TRUE(fh1.is_ok());
  Client::FileHandle imposter;
  imposter.id = 1;
  imposter.key = fh1.value().key.clone();
  std::vector<Client::FileHandle*> handles{&fh1.value(), &imposter};
  std::vector<proto::ItemRef> refs{proto::ItemRef::id(0),
                                   proto::ItemRef::id(1)};
  EXPECT_EQ(s.client.erase_batch(handles, refs).code(),
            Errc::kInvalidArgument);
}

TEST(Retries, MaxRetriesZeroStillMakesTheInitialAttempt) {
  // max_retries bounds RE-runs, not runs: 0 means "try exactly once".
  // (The old loop ran `attempt < max_retries` and made zero attempts,
  // reporting retry exhaustion without ever contacting the server.)
  Client::Options copts;
  copts.max_retries = 0;
  ClientStack s(copts);
  std::vector<Bytes> items;
  for (int i = 0; i < 8; ++i) items.push_back(payload_for(i));
  auto fh = s.client.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());

  auto id = s.client.insert(fh.value(), payload_for(100));
  ASSERT_TRUE(id.is_ok()) << id.status().to_string();
  ASSERT_TRUE(s.client.erase_item(fh.value(), proto::ItemRef::id(2)));
  std::vector<proto::ItemRef> refs{proto::ItemRef::id(4),
                                   proto::ItemRef::id(5)};
  ASSERT_TRUE(s.client.erase_items(fh.value(), refs));
  EXPECT_TRUE(s.client.access(fh.value(), proto::ItemRef::id(0)).is_ok());
}

TEST(DeleteManyParallel, PoolAndSequentialPathsAreByteIdentical) {
  // delete_many_info_for and plan_delete_many both take an optional pool
  // and promise identical output with and without it. On a 1-core machine
  // the default pools are size 1 and the parallel branches never run, so
  // force a multi-worker pool and a batch large enough to cross the
  // activation thresholds (cut >= 64, paths >= 64).
  using core::ClientMath;
  using core::ModulationTree;
  using crypto::DeterministicRandom;
  using crypto::HashAlg;
  using crypto::Md;

  ClientMath math(HashAlg::kSha1);
  const std::size_t n = 1500;
  DeterministicRandom rnd(91);
  const Md master_old = rnd.random_md(math.width());
  const Md master_new = rnd.random_md(math.width());

  ModulationTree tree(ModulationTree::Config{HashAlg::kSha1, false});
  tree.build(
      n, [&](NodeId) { return rnd.random_md(math.width()); },
      [&](NodeId v) {
        return std::pair<Md, std::uint64_t>(rnd.random_md(math.width()),
                                            v - (n - 1));
      });

  std::vector<NodeId> leaves;
  for (std::size_t i = 0; i < 90; ++i) {
    leaves.push_back(static_cast<NodeId>(n - 1 + 16 * i));
  }

  ThreadPool pool(4);
  ASSERT_GT(pool.size(), 1u);
  const auto seq_info = tree.delete_many_info_for(leaves);
  const auto par_info = tree.delete_many_info_for(leaves, &pool);
  ASSERT_GE(seq_info.cut.size(), 64u);  // crosses plan's parallel threshold

  auto expect_same_path = [](const core::PathView& a, const core::PathView& b,
                             const char* what, std::size_t i) {
    EXPECT_EQ(a.nodes, b.nodes) << what << " " << i;
    EXPECT_EQ(a.links, b.links) << what << " " << i;
  };
  ASSERT_EQ(par_info.node_count, seq_info.node_count);
  ASSERT_EQ(par_info.targets.size(), seq_info.targets.size());
  for (std::size_t i = 0; i < seq_info.targets.size(); ++i) {
    expect_same_path(par_info.targets[i].path, seq_info.targets[i].path,
                     "target", i);
    EXPECT_EQ(par_info.targets[i].leaf_mod, seq_info.targets[i].leaf_mod) << i;
  }
  ASSERT_EQ(par_info.cut.size(), seq_info.cut.size());
  for (std::size_t i = 0; i < seq_info.cut.size(); ++i) {
    EXPECT_EQ(par_info.cut[i].node, seq_info.cut[i].node) << i;
    EXPECT_EQ(par_info.cut[i].link, seq_info.cut[i].link) << i;
    EXPECT_EQ(par_info.cut[i].is_leaf, seq_info.cut[i].is_leaf) << i;
    if (seq_info.cut[i].is_leaf) {
      EXPECT_EQ(par_info.cut[i].leaf_mod, seq_info.cut[i].leaf_mod) << i;
    }
  }
  ASSERT_EQ(par_info.hole_paths.size(), seq_info.hole_paths.size());
  for (std::size_t i = 0; i < seq_info.hole_paths.size(); ++i) {
    expect_same_path(par_info.hole_paths[i], seq_info.hole_paths[i], "hole",
                     i);
  }
  ASSERT_EQ(par_info.movers.size(), seq_info.movers.size());
  for (std::size_t i = 0; i < seq_info.movers.size(); ++i) {
    expect_same_path(par_info.movers[i].path, seq_info.movers[i].path,
                     "mover", i);
    EXPECT_EQ(par_info.movers[i].leaf_mod, seq_info.movers[i].leaf_mod) << i;
  }

  // Identically seeded randomness must yield byte-identical plans: every
  // random draw happens on the sequential spine, only the delta hashing
  // fans out to workers.
  DeterministicRandom rnd_seq(7), rnd_par(7);
  auto seq_plan =
      math.plan_delete_many(seq_info, master_old, master_new, rnd_seq);
  auto par_plan =
      math.plan_delete_many(par_info, master_old, master_new, rnd_par, &pool);
  ASSERT_TRUE(seq_plan.is_ok()) << seq_plan.status().to_string();
  ASSERT_TRUE(par_plan.is_ok()) << par_plan.status().to_string();
  EXPECT_EQ(par_plan.value().old_keys, seq_plan.value().old_keys);
  EXPECT_EQ(par_plan.value().commit.leaves, seq_plan.value().commit.leaves);
  EXPECT_EQ(par_plan.value().commit.deltas, seq_plan.value().commit.deltas);
  ASSERT_EQ(par_plan.value().commit.relocs.size(),
            seq_plan.value().commit.relocs.size());
  for (std::size_t i = 0; i < seq_plan.value().commit.relocs.size(); ++i) {
    const auto& a = par_plan.value().commit.relocs[i];
    const auto& b = seq_plan.value().commit.relocs[i];
    EXPECT_EQ(a.new_leaf_mod, b.new_leaf_mod) << i;
    EXPECT_EQ(a.has_new_link, b.has_new_link) << i;
    if (b.has_new_link) {
      EXPECT_EQ(a.new_link, b.new_link) << i;
    }
  }
}

}  // namespace
}  // namespace fgad
