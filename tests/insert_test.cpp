// Insertion (Section IV-E): splitting the first leaf of the deepest
// incomplete level keeps every existing key unchanged.
#include <gtest/gtest.h>

#include "support/harness.h"

namespace fgad::test {
namespace {

class InsertGrow : public ::testing::TestWithParam<std::size_t> {};

// Growing a tree from n to n + 8 items one insert at a time preserves all
// existing keys and contents at every step.
TEST_P(InsertGrow, PreservesExistingKeys) {
  const std::size_t n = GetParam();
  Harness h(HashAlg::kSha1, 100 + n);
  h.outsource(n);
  for (int i = 0; i < 8; ++i) {
    auto id = h.insert(payload_for(1000 + i));
    ASSERT_TRUE(id.is_ok());
    h.verify_all();
    if (::testing::Test::HasFailure()) return;
  }
  EXPECT_EQ(h.store().tree().leaf_count(), n + 8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, InsertGrow,
                         ::testing::Values(0, 1, 2, 3, 4, 7, 8, 15, 33));

// Insertion into the empty tree creates a single root leaf.
TEST(InsertShape, EmptyTreeMakesRootLeaf) {
  Harness h;
  h.outsource(0);
  ASSERT_TRUE(h.insert(payload_for(0)).is_ok());
  EXPECT_EQ(h.store().tree().node_count(), 1u);
  EXPECT_TRUE(h.store().tree().is_leaf(0));
  h.verify_all();
}

// Each insertion adds exactly two nodes and one leaf.
TEST(InsertShape, NodeCountGrowsByTwo) {
  Harness h(HashAlg::kSha1, 4);
  h.outsource(5);
  const std::size_t nodes = h.store().tree().node_count();
  ASSERT_TRUE(h.insert(payload_for(50)).is_ok());
  EXPECT_EQ(h.store().tree().node_count(), nodes + 2);
  EXPECT_EQ(h.store().tree().leaf_count(), 6u);
}

// The split point is the paper's: first leaf of the deepest incomplete
// level, i.e. heap slot (node_count-1)/2.
TEST(InsertShape, SplitsFirstShallowLeaf) {
  Harness h(HashAlg::kSha1, 4);
  h.outsource(4);  // perfect tree of 7 nodes; leaves 3,4,5,6
  EXPECT_EQ(h.store().tree().insert_parent(), 3u);
  ASSERT_TRUE(h.insert(payload_for(9)).is_ok());
  // Now 9 nodes; old leaf 3 became internal; next insert splits leaf 4.
  EXPECT_FALSE(h.store().tree().is_leaf(3));
  EXPECT_EQ(h.store().tree().insert_parent(), 4u);
}

// Interleaved inserts and deletes across many rounds.
TEST(InsertDeleteMix, Interleaved) {
  Harness h(HashAlg::kSha1, 17);
  h.outsource(10);
  Xoshiro256 rng(99);
  for (int round = 0; round < 40; ++round) {
    const auto ids = h.live_ids();
    if (!ids.empty() && rng.next_below(2) == 0) {
      ASSERT_TRUE(h.erase(ids[rng.next_below(ids.size())]));
    } else {
      ASSERT_TRUE(h.insert(payload_for(2000 + round)).is_ok());
    }
    h.verify_all();
    if (::testing::Test::HasFailure()) return;
  }
}

// Shrink to empty then grow again.
TEST(InsertDeleteMix, DrainAndRefill) {
  Harness h(HashAlg::kSha1, 23);
  h.outsource(3);
  for (std::uint64_t id : h.live_ids()) {
    ASSERT_TRUE(h.erase(id));
  }
  EXPECT_EQ(h.store().tree().node_count(), 0u);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(h.insert(payload_for(3000 + i)).is_ok());
  }
  h.verify_all();
  EXPECT_EQ(h.store().tree().leaf_count(), 5u);
}

// Stale insert point: commit against an outdated q is rejected.
TEST(InsertValidation, StaleInsertPoint) {
  Harness h(HashAlg::kSha1, 31);
  h.outsource(4);
  const core::InsertInfo info = h.store().insert_begin();
  auto plan = h.math().plan_insert(info, h.master().value(), h.rnd());
  ASSERT_TRUE(plan.is_ok());
  // Another insert lands first.
  ASSERT_TRUE(h.insert(payload_for(7)).is_ok());
  plan.value().commit.item_id = 424242;
  plan.value().commit.ciphertext = h.codec().seal(
      plan.value().item_key, payload_for(8), 424242, h.rnd());
  EXPECT_EQ(h.store().insert_commit(plan.value().commit).code(),
            Errc::kInvalidArgument);
  h.verify_all();
}

// Duplicate modulators in a commit are rejected when tracking is on.
TEST(InsertValidation, DuplicateModulatorRejected) {
  Harness h(HashAlg::kSha1, 37);
  h.outsource(4);
  const core::InsertInfo info = h.store().insert_begin();
  auto plan = h.math().plan_insert(info, h.master().value(), h.rnd());
  ASSERT_TRUE(plan.is_ok());
  auto commit = plan.value().commit;
  // Reuse an existing tree modulator as the new link.
  commit.left_link = h.store().tree().link_mod(1);
  commit.item_id = 5555;
  commit.ciphertext =
      h.codec().seal(plan.value().item_key, payload_for(1), 5555, h.rnd());
  EXPECT_EQ(h.store().insert_commit(commit).code(),
            Errc::kDuplicateModulator);
  h.verify_all();
}

// Insert positions: after a given item id, order is respected.
TEST(InsertOrder, InsertAfter) {
  Harness h(HashAlg::kSha1, 41);
  h.outsource(3);  // ids 0,1,2 in order
  const core::InsertInfo info = h.store().insert_begin();
  auto plan = h.math().plan_insert(info, h.master().value(), h.rnd());
  ASSERT_TRUE(plan.is_ok());
  plan.value().commit.item_id = 100;
  plan.value().commit.after_item_id = 0;
  plan.value().commit.ciphertext =
      h.codec().seal(plan.value().item_key, payload_for(100), 100, h.rnd());
  ASSERT_TRUE(h.store().insert_commit(plan.value().commit));
  const auto ids = h.store().items().ids_in_order();
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[1], 100u);
  EXPECT_EQ(ids[2], 1u);
  EXPECT_EQ(ids[3], 2u);
}

}  // namespace
}  // namespace fgad::test
