// Per-request cost accounting (DESIGN.md §19): the CostLedger, ScopedCost
// attribution, the server-timing trailer on V2 responses through both the
// synchronous and the group-commit (async) durable paths, and the audit
// log's fencing-term / commit-LSN stamps.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "cloud/recovery.h"
#include "cloud/server.h"
#include "net/transport.h"
#include "obs/cost.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "proto/messages.h"

namespace fgad {
namespace {

using client::Client;
using obs::CostKind;
using obs::CostLedger;

std::string fresh_state_dir(const std::string& name) {
  static std::atomic<int> counter{0};
  const std::string d = ::testing::TempDir() + "/" + name + "." +
                        std::to_string(::getpid()) + "." +
                        std::to_string(counter.fetch_add(1));
  ::mkdir(d.c_str(), 0755);
  return d;
}

/// Captures a FILE* sink in memory (POSIX open_memstream).
class MemSink {
 public:
  MemSink() : f_(open_memstream(&buf_, &len_)) {}
  ~MemSink() {
    if (f_ != nullptr) {
      std::fclose(f_);
    }
    free(buf_);
  }
  std::FILE* file() { return f_; }
  std::string text() {
    std::fflush(f_);
    return std::string(buf_, len_);
  }

 private:
  std::FILE* f_;
  char* buf_ = nullptr;
  std::size_t len_ = 0;
};

/// RAII: ledger on for the test, cleared and off afterwards.
struct LedgerOn {
  LedgerOn() {
    CostLedger::instance().clear();
    CostLedger::instance().set_enabled(true);
  }
  ~LedgerOn() {
    CostLedger::instance().clear();
    CostLedger::instance().set_enabled(false);
  }
};

std::uint64_t ns_of(const std::vector<proto::TimingEntry>& timings,
                    CostKind k) {
  for (const auto& t : timings) {
    if (t.kind == static_cast<std::uint8_t>(k)) {
      return t.ns;
    }
  }
  return 0;
}

// ---- ledger unit behavior --------------------------------------------------

TEST(CostAcct, DisabledLedgerIsNoOp) {
  CostLedger& ledger = CostLedger::instance();
  ledger.clear();
  ledger.set_enabled(false);
  ledger.add(42, CostKind::kApply, 1000);
  EXPECT_FALSE(ledger.take(42).any());
}

TEST(CostAcct, AddAccumulatesAndTakeRemoves) {
  LedgerOn on;
  CostLedger& ledger = CostLedger::instance();
  ledger.add(42, CostKind::kApply, 1000);
  ledger.add(42, CostKind::kApply, 500);
  ledger.add(42, CostKind::kWalAppend, 7);
  ledger.add(0, CostKind::kApply, 99);  // rid 0 = unattributed, dropped

  const auto row = ledger.take(42);
  EXPECT_EQ(row.ns[static_cast<std::size_t>(CostKind::kApply)], 1500u);
  EXPECT_EQ(row.ns[static_cast<std::size_t>(CostKind::kWalAppend)], 7u);
  // take() removed the row.
  EXPECT_FALSE(ledger.take(42).any());
}

TEST(CostAcct, AbandonedRowsEvictFifoAtCapacity) {
  LedgerOn on;
  CostLedger& ledger = CostLedger::instance();
  // Rows for rids a client never claims must not grow without bound.
  for (std::uint64_t rid = 1; rid <= CostLedger::kMaxEntries + 1; ++rid) {
    ledger.add(rid, CostKind::kApply, rid);
  }
  EXPECT_FALSE(ledger.take(1).any()) << "oldest row should be evicted";
  EXPECT_TRUE(ledger.take(2).any());
  EXPECT_TRUE(ledger.take(CostLedger::kMaxEntries + 1).any());
}

TEST(CostAcct, ScopedCostChargesTheActiveRequestId) {
  LedgerOn on;
  {
    obs::RequestScope scope(77);
    obs::ScopedCost cost(CostKind::kKeyDerive);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto row = CostLedger::instance().take(77);
  EXPECT_GE(row.ns[static_cast<std::size_t>(CostKind::kKeyDerive)],
            1'000'000u);

  // No active rid -> nothing charged anywhere.
  { obs::ScopedCost cost(CostKind::kKeyDerive); }
  EXPECT_FALSE(CostLedger::instance().take(0).any());
}

// ---- audit term/lsn stamps -------------------------------------------------

TEST(CostAcct, CommitContextIsThreadLocal) {
  obs::AuditLog::set_commit_context(5, 42);
  EXPECT_EQ(obs::AuditLog::commit_term(), 5u);
  EXPECT_EQ(obs::AuditLog::commit_lsn(), 42u);
  std::thread([] {
    EXPECT_EQ(obs::AuditLog::commit_term(), 0u);
    EXPECT_EQ(obs::AuditLog::commit_lsn(), 0u);
  }).join();
  obs::AuditLog::clear_commit_context();
  EXPECT_EQ(obs::AuditLog::commit_term(), 0u);
}

TEST(CostAcct, DurableDeletesStampTermAndLsn) {
  cloud::DurableServer::Options opts;
  opts.dir = fresh_state_dir("costacct_audit");
  auto opened = cloud::DurableServer::open(opts);
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
  auto durable = std::move(opened).value();

  net::DirectChannel ch(
      [&durable](BytesView req) { return durable->handle(req); });
  crypto::DeterministicRandom rnd{7};
  Client::Options copts;
  copts.tag_mutations = true;
  Client client(ch, rnd, copts);

  auto fh = client.outsource(9, 8, [](std::size_t i) {
    return Bytes(16, static_cast<std::uint8_t>(i));
  });
  ASSERT_TRUE(fh.is_ok());
  auto ids = client.list_items(fh.value());
  ASSERT_TRUE(ids.is_ok());

  MemSink audit;
  obs::AuditLog::instance().set_sink(audit.file());
  ASSERT_TRUE(client.erase_item(fh.value(),
                                proto::ItemRef::id(ids.value().front())));
  obs::AuditLog::instance().set_sink(nullptr);

  // Every audit line of a WAL-committed deletion carries the fencing
  // term (a fresh primary bootstraps to 1) and the record's LSN.
  const std::string text = audit.text();
  ASSERT_NE(text.find("audit"), std::string::npos) << text;
  EXPECT_NE(text.find(" term=1 "), std::string::npos) << text;
  EXPECT_NE(text.find(" lsn="), std::string::npos) << text;
}

TEST(CostAcct, InMemoryDeletesOmitTermAndLsn) {
  // Without a durable commit there is no term/LSN; the line must stay
  // byte-identical to the pre-§19 format (obs_test pins it exactly).
  cloud::CloudServer server{cloud::CloudServer::Options{}};
  net::DirectChannel ch([&server](BytesView req) { return server.handle(req); });
  crypto::DeterministicRandom rnd{8};
  Client client(ch, rnd, Client::Options{});

  auto fh = client.outsource(3, 4, [](std::size_t i) {
    return Bytes(16, static_cast<std::uint8_t>(i));
  });
  ASSERT_TRUE(fh.is_ok());
  auto ids = client.list_items(fh.value());
  ASSERT_TRUE(ids.is_ok());

  MemSink audit;
  obs::AuditLog::instance().set_sink(audit.file());
  ASSERT_TRUE(client.erase_item(fh.value(),
                                proto::ItemRef::id(ids.value().front())));
  obs::AuditLog::instance().set_sink(nullptr);

  const std::string text = audit.text();
  ASSERT_NE(text.find("audit"), std::string::npos);
  EXPECT_EQ(text.find(" term="), std::string::npos) << text;
  EXPECT_EQ(text.find(" lsn="), std::string::npos) << text;
}

// ---- the server-timing trailer, end to end ---------------------------------

TEST(CostAcct, V2ResponseCarriesServerTimingTrailer) {
  LedgerOn on;
  cloud::DurableServer::Options opts;
  opts.dir = fresh_state_dir("costacct_trailer");
  auto opened = cloud::DurableServer::open(opts);
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
  auto durable = std::move(opened).value();

  net::DirectChannel ch(
      [&durable](BytesView req) { return durable->handle(req); });
  crypto::DeterministicRandom rnd{11};
  Client::Options copts;
  copts.tag_mutations = true;
  Client client(ch, rnd, copts);

  auto fh = client.outsource(4, 16, [](std::size_t i) {
    return Bytes(32, static_cast<std::uint8_t>(i));
  });
  ASSERT_TRUE(fh.is_ok());
  auto ids = client.list_items(fh.value());
  ASSERT_TRUE(ids.is_ok());

  // One traced operation = one rid (the durable dedup table would treat
  // a second mutation under the same rid as a resend).
  obs::trace_begin(obs::generate_request_id());
  ASSERT_TRUE(client.erase_item(fh.value(),
                                proto::ItemRef::id(ids.value().front())));
  obs::trace_stop();

  const auto& timings = client.last_server_timing();
  ASSERT_FALSE(timings.empty());
  // The synchronous durable path always pays a WAL append, an inline
  // fsync, and the apply; total covers dispatch -> response.
  EXPECT_GT(ns_of(timings, CostKind::kWalAppend), 0u);
  EXPECT_GT(ns_of(timings, CostKind::kFsyncShare), 0u);
  EXPECT_GT(ns_of(timings, CostKind::kApply), 0u);
  const std::uint64_t total = ns_of(timings, CostKind::kTotal);
  ASSERT_GT(total, 0u);

  // The parts must account for the total: nothing big is unattributed
  // (>= 50% guards against scheduler noise in CI; in practice ~95%+),
  // and no part is double-counted past the total by more than 10%.
  std::uint64_t parts = 0;
  for (const auto& t : timings) {
    const auto k = static_cast<CostKind>(t.kind);
    if (k != CostKind::kTotal && k != CostKind::kKeyDerive) {
      parts += t.ns;
    }
  }
  EXPECT_GE(parts, total / 2) << "parts " << parts << " total " << total;
  EXPECT_LE(parts, total + total / 10)
      << "parts " << parts << " total " << total;
}

TEST(CostAcct, V1AndUntaggedResponsesCarryNoTrailer) {
  LedgerOn on;
  cloud::DurableServer::Options opts;
  opts.dir = fresh_state_dir("costacct_v1");
  auto opened = cloud::DurableServer::open(opts);
  ASSERT_TRUE(opened.is_ok());
  auto durable = std::move(opened).value();

  // V1-tagged mutation (tag_mutations without a trace): the response
  // must be the V1 echo — same envelope, no timing table.
  net::DirectChannel ch(
      [&durable](BytesView req) { return durable->handle(req); });
  crypto::DeterministicRandom rnd{12};
  Client::Options copts;
  copts.tag_mutations = true;
  Client client(ch, rnd, copts);
  auto fh = client.outsource(5, 4, [](std::size_t i) {
    return Bytes(16, static_cast<std::uint8_t>(i));
  });
  ASSERT_TRUE(fh.is_ok());
  EXPECT_TRUE(client.last_server_timing().empty());

  // Hand-rolled check on the raw frames: a V1 request gets a V1 reply.
  proto::StatReq stat;
  stat.file_id = fh.value().id;
  const Bytes v1 = proto::seal_tagged(1234, stat.to_frame());
  const Bytes resp = durable->handle(v1);
  const auto rtag = proto::open_tagged(resp);
  ASSERT_TRUE(rtag.has_value());
  EXPECT_FALSE(rtag->v2);
  EXPECT_TRUE(rtag->timings.empty());

  // An untagged request gets an untagged reply.
  const Bytes plain_resp = durable->handle(stat.to_frame());
  EXPECT_FALSE(proto::open_tagged(plain_resp).has_value());
}

TEST(CostAcct, GroupCommitPathAttributesSharesAndQueueWait) {
  LedgerOn on;
  cloud::DurableServer::Options opts;
  opts.dir = fresh_state_dir("costacct_async");
  opts.wal_sync_ms = 2;  // group-commit window: fsync amortized per batch
  auto opened = cloud::DurableServer::open(opts);
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
  auto durable = std::move(opened).value();

  // The reactor's async path: respond via the group committer, exactly
  // like tools/fgad_server wires it.
  net::DirectChannel ch([&durable](BytesView req) {
    std::promise<Bytes> p;
    durable->handle_async(Bytes(req.begin(), req.end()),
                          [&p](Bytes resp) { p.set_value(std::move(resp)); });
    return p.get_future().get();
  });
  crypto::DeterministicRandom rnd{13};
  Client::Options copts;
  copts.tag_mutations = true;
  Client client(ch, rnd, copts);

  auto fh = client.outsource(6, 8, [](std::size_t i) {
    return Bytes(16, static_cast<std::uint8_t>(i));
  });
  ASSERT_TRUE(fh.is_ok());
  auto ids = client.list_items(fh.value());
  ASSERT_TRUE(ids.is_ok());

  // One traced operation = one rid (the durable dedup table would treat
  // a second mutation under the same rid as a resend).
  obs::trace_begin(obs::generate_request_id());
  ASSERT_TRUE(client.erase_item(fh.value(),
                                proto::ItemRef::id(ids.value().front())));
  obs::trace_stop();

  const auto& timings = client.last_server_timing();
  ASSERT_FALSE(timings.empty());
  // The batch's fsync is charged as an amortized share, and the wait
  // between enqueue and flush pickup shows up as queue_wait.
  EXPECT_GT(ns_of(timings, CostKind::kFsyncShare), 0u);
  EXPECT_GT(ns_of(timings, CostKind::kQueueWait), 0u);
  EXPECT_GT(ns_of(timings, CostKind::kApply), 0u);
  EXPECT_GT(ns_of(timings, CostKind::kTotal), 0u);
}

}  // namespace
}  // namespace fgad
