// Observability subsystem (DESIGN.md §12): metrics registry and histogram
// math, request-id propagation through the tagged wire envelope, span
// tracing, the audit-log line format, and the HTTP scrape endpoint over a
// real socket. The registry hammer runs under TSan in CI.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "client/client.h"
#include "cloud/server.h"
#include "net/transport.h"
#include "obs/http.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "proto/messages.h"

namespace fgad {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Metrics;
using obs::Registry;

/// Captures a FILE* sink in memory (POSIX open_memstream).
class MemSink {
 public:
  MemSink() : f_(open_memstream(&buf_, &len_)) {}
  ~MemSink() {
    std::fclose(f_);
    std::free(buf_);
  }
  std::FILE* file() { return f_; }
  std::string text() {
    std::fflush(f_);
    return std::string(buf_, len_);
  }

 private:
  std::FILE* f_;
  char* buf_ = nullptr;
  std::size_t len_ = 0;
};

TEST(ObsMetrics, CounterCountsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, GaugeSetAddValue) {
  Gauge g;
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(ObsMetrics, DisableMakesInstrumentsNoops) {
  Counter c;
  Gauge g;
  Histogram h;
  Metrics::disable();
  c.inc(5);
  g.set(5);
  h.observe(5);
  {
    obs::ScopedTimer t(h);
    EXPECT_EQ(t.elapsed_ns(), 0u);  // clock not even read
  }
  Metrics::enable();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsHistogram, BucketLayoutIsMonotoneAndConsistent) {
  // Small values are exact.
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::bucket_of(v), v);
    EXPECT_EQ(Histogram::bucket_lower(v), v);
  }
  // bucket_lower inverts bucket_of on bucket boundaries, and bucket
  // indices never decrease with the value.
  for (std::size_t idx = 0; idx < Histogram::kBucketCount; ++idx) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lower(idx)), idx);
  }
  std::size_t prev = 0;
  for (std::uint64_t v = 1; v < (1u << 20); v = v * 2 + 3) {
    const std::size_t idx = Histogram::bucket_of(v);
    EXPECT_GE(idx, prev);
    EXPECT_LE(Histogram::bucket_lower(idx), v);
    prev = idx;
  }
}

TEST(ObsHistogram, QuantilesBoundedRelativeError) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  // Constant distribution: every quantile must land within one sub-bucket
  // (1/16 relative width) of the true value.
  const std::uint64_t v = 100'000;
  for (int i = 0; i < 1000; ++i) {
    h.observe(v);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 1000u * v);
  for (double p : {0.5, 0.95, 0.99}) {
    EXPECT_NEAR(h.quantile(p), static_cast<double>(v),
                static_cast<double>(v) / 8.0);
  }
  // Uniform 1..1000: p50 must sit near 500.
  Histogram u;
  for (std::uint64_t x = 1; x <= 1000; ++x) {
    u.observe(x);
  }
  EXPECT_NEAR(u.quantile(0.5), 500.0, 500.0 / 8.0);
  const auto s = u.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_LT(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99 + 1e-9);
}

TEST(ObsRegistry, StableAddressesAndRendering) {
  Registry& reg = Registry::instance();
  Counter& a = reg.counter("fgad_test_render_total");
  Counter& b = reg.counter("fgad_test_render_total");
  EXPECT_EQ(&a, &b);  // call sites may cache the reference forever
  a.reset();
  a.inc(3);
  reg.gauge("fgad_test_render_gauge").set(-5);
  Histogram& h = reg.histogram("fgad_test_render_ns");
  h.reset();
  h.observe(64);

  const std::string text = reg.render_text();
  EXPECT_NE(text.find("# TYPE fgad_test_render_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("fgad_test_render_total 3"), std::string::npos);
  EXPECT_NE(text.find("fgad_test_render_gauge -5"), std::string::npos);
  EXPECT_NE(text.find("fgad_test_render_ns{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("fgad_test_render_ns_count 1"), std::string::npos);

  const std::string json = reg.render_json();
  EXPECT_NE(json.find("\"fgad_test_render_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"fgad_test_render_ns\":{\"count\":1"),
            std::string::npos);
}

TEST(ObsJsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(obs::json_escape("plain_name"), "plain_name");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(obs::json_escape("\b\f"), "\\b\\f");
  EXPECT_EQ(obs::json_escape(std::string("a\x01z", 3)), "a\\u0001z");
}

// Round trip: a metric name containing every character class the escaper
// handles must come back out of render_json() in escaped form, and the
// raw (invalid-JSON-producing) bytes must not appear unescaped.
TEST(ObsJsonEscape, RenderJsonSurvivesHostileMetricNames) {
  Registry& reg = Registry::instance();
  const std::string evil = "fgad_test_evil\"name\\with\ncontrol";
  reg.counter(evil).inc(9);
  const std::string json = reg.render_json();
  EXPECT_NE(json.find("\"fgad_test_evil\\\"name\\\\with\\ncontrol\":9"),
            std::string::npos)
      << json;
  // No raw quote-in-name or raw newline may survive into the document.
  EXPECT_EQ(json.find("evil\"name"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

// Writers on every instrument kind race against renderers; run under TSan
// in CI. The final counts must be exact (no lost increments).
TEST(ObsRegistry, ConcurrentWritersAndRenderers) {
  Registry& reg = Registry::instance();
  Counter& c = reg.counter("fgad_test_hammer_total");
  Histogram& h = reg.histogram("fgad_test_hammer_ns");
  Gauge& g = reg.gauge("fgad_test_hammer_gauge");
  c.reset();
  h.reset();
  constexpr int kThreads = 4;
  constexpr int kIters = 20'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h, &g, t] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(static_cast<std::uint64_t>(i));
        g.set(t);
      }
    });
  }
  workers.emplace_back([&reg] {
    for (int i = 0; i < 50; ++i) {
      (void)reg.render_text();
      (void)reg.render_json();
    }
  });
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
}

// ---- request-id propagation on the wire ---------------------------------

TEST(ObsTaggedWire, SealSplitRoundtrip) {
  const Bytes inner = proto::StatReq{7}.to_frame();
  const Bytes tagged = proto::seal_tagged(0xabcdef0123456789ull, inner);
  ASSERT_EQ(tagged.size(), inner.size() + 10);

  const auto split = proto::split_tagged(tagged);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->first, 0xabcdef0123456789ull);
  EXPECT_EQ(Bytes(split->second.begin(), split->second.end()), inner);

  // Untagged frames do not split and are byte-identical to the seed
  // protocol: the tag is strictly additive.
  EXPECT_FALSE(proto::split_tagged(inner).has_value());
  EXPECT_EQ(proto::seal_message(proto::MsgType::kStatReq, BytesView(inner).
            subspan(2)), inner);
}

TEST(ObsTaggedWire, PeekTypeLooksThroughOneTagOnly) {
  const Bytes inner = proto::AccessReq{1, proto::ItemRef::id(2)}.to_frame();
  EXPECT_EQ(proto::peek_type(inner), proto::MsgType::kAccessReq);
  const Bytes tagged = proto::seal_tagged(42, inner);
  EXPECT_EQ(proto::peek_type(tagged), proto::MsgType::kAccessReq);
  // Nested tags are invalid, truncated frames yield nothing.
  EXPECT_FALSE(proto::peek_type(proto::seal_tagged(43, tagged)).has_value());
  EXPECT_FALSE(proto::peek_type(BytesView(tagged).first(9)).has_value());
  EXPECT_FALSE(proto::peek_type(BytesView()).has_value());
}

TEST(ObsTaggedWire, OpenMessageUnwrapsRequestId) {
  const Bytes inner = proto::StatReq{9}.to_frame();
  auto plain = proto::open_message(inner);
  ASSERT_TRUE(plain.is_ok());
  EXPECT_FALSE(plain.value().request_id.has_value());

  auto tagged = proto::open_message(proto::seal_tagged(0x1122, inner));
  ASSERT_TRUE(tagged.is_ok());
  EXPECT_EQ(tagged.value().type, proto::MsgType::kStatReq);
  ASSERT_TRUE(tagged.value().request_id.has_value());
  EXPECT_EQ(tagged.value().request_id.value(), 0x1122u);

  // Nested tag and truncated envelope are decode errors.
  EXPECT_FALSE(proto::open_message(
                   proto::seal_tagged(1, proto::seal_tagged(2, inner)))
                   .is_ok());
  const Bytes tag_only = proto::seal_tagged(3, inner);
  EXPECT_FALSE(proto::open_message(BytesView(tag_only).first(10)).is_ok());
}

TEST(ObsTaggedWire, RetryPredicateSeesThroughTag) {
  const Bytes access = proto::AccessReq{1, proto::ItemRef::id(0)}.to_frame();
  const Bytes del = proto::DeleteBeginReq{1, proto::ItemRef::id(0)}.to_frame();
  EXPECT_TRUE(proto::retryable_request(access));
  EXPECT_TRUE(proto::retryable_request(proto::seal_tagged(5, access)));
  EXPECT_FALSE(proto::retryable_request(del));
  EXPECT_FALSE(proto::retryable_request(proto::seal_tagged(5, del)));
}

TEST(ObsServerRid, ResponseEchoesRequestTag) {
  cloud::CloudServer server;
  const Bytes req = proto::StatReq{1}.to_frame();

  // Untagged request -> untagged response (legacy peers see no change).
  const Bytes plain_resp = server.handle(req);
  EXPECT_FALSE(proto::split_tagged(plain_resp).has_value());

  // Tagged request -> response tagged with the same id, even for errors
  // (StatReq on a missing file fails but must stay correlated).
  const std::uint64_t rid = 0xfeedface12345678ull;
  const Bytes resp = server.handle(proto::seal_tagged(rid, req));
  const auto split = proto::split_tagged(resp);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->first, rid);
  EXPECT_EQ(Bytes(split->second.begin(), split->second.end()), plain_resp);
}

// ---- audit log -----------------------------------------------------------

TEST(ObsAudit, LineFormatOkAndError) {
  MemSink sink;
  obs::AuditLog::instance().set_sink(sink.file());
  obs::AuditLog::Entry e;
  e.op = "delete_commit";
  e.request_id = 0x00a1b2c3d4e5f607ull;
  e.file_id = 3;
  e.item = 42;
  e.path_len = 5;
  e.cut_size = 4;
  obs::AuditLog::instance().record(e, Status::ok());
  obs::AuditLog::instance().record(
      e, Status(Error(Errc::kNotFound, "no such item")));
  obs::AuditLog::instance().set_sink(nullptr);

  const std::string text = sink.text();
  EXPECT_NE(text.find("audit ts="), std::string::npos);
  EXPECT_NE(text.find("rid=00a1b2c3d4e5f607 op=delete_commit file=3 item=42 "
                      "path_len=5 cut=4 outcome=ok"),
            std::string::npos);
  EXPECT_NE(text.find("outcome=error err=NOT_FOUND msg=\"no such item\""),
            std::string::npos);
  // Exactly two single-line records.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(ObsAudit, SilentWithoutSink) {
  // Default state: recording must be a no-op (and not crash).
  ASSERT_FALSE(obs::AuditLog::instance().on());
  obs::AuditLog::instance().record(obs::AuditLog::Entry{}, Status::ok());
}

// ---- span tracing --------------------------------------------------------

TEST(ObsTrace, SpanTreeDumpAndLifecycle) {
  EXPECT_FALSE(obs::trace_active());
  { obs::Span idle("not_collected"); }  // no-op without an active trace

  obs::trace_begin(0x77);
  EXPECT_TRUE(obs::trace_active());
  EXPECT_EQ(obs::current_request_id(), 0x77u);
  {
    obs::Span outer("outer_op");
    obs::Span inner("inner_step");
  }
  MemSink sink;
  obs::trace_dump(sink.file());
  const std::string text = sink.text();
  EXPECT_NE(text.find("trace rid=0000000000000077 spans=2"),
            std::string::npos);
  EXPECT_NE(text.find("outer_op"), std::string::npos);
  // Nested span is indented two extra columns under its parent.
  EXPECT_NE(text.find("    inner_step"), std::string::npos);

  // Dump ends the trace and clears the thread's request id.
  EXPECT_FALSE(obs::trace_active());
  EXPECT_EQ(obs::current_request_id(), 0u);
  MemSink again;
  obs::trace_dump(again.file());
  EXPECT_TRUE(again.text().empty());
}

TEST(ObsTrace, RequestScopeRestoresPreviousId) {
  EXPECT_EQ(obs::current_request_id(), 0u);
  {
    obs::RequestScope outer(11);
    EXPECT_EQ(obs::current_request_id(), 11u);
    {
      obs::RequestScope inner(22);
      EXPECT_EQ(obs::current_request_id(), 22u);
    }
    EXPECT_EQ(obs::current_request_id(), 11u);
  }
  EXPECT_EQ(obs::current_request_id(), 0u);
  EXPECT_NE(obs::generate_request_id(), 0u);
  EXPECT_NE(obs::generate_request_id(), obs::generate_request_id());
}

// ---- HTTP scrape endpoint ------------------------------------------------

std::string http_get(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) {
      break;
    }
    resp.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  return resp;
}

TEST(ObsHttp, ServesMetricsHealthzAndErrors) {
  Registry::instance().counter("fgad_test_http_total").inc();
  auto server = obs::MetricsHttpServer::create(0);
  ASSERT_TRUE(server.is_ok()) << server.status().to_string();
  const std::uint16_t port = server.value()->port();
  ASSERT_NE(port, 0);

  const std::string metrics =
      http_get(port, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("fgad_test_http_total"), std::string::npos);

  const std::string json =
      http_get(port, "GET /metrics.json?x=1 HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(json.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);

  const std::string health =
      http_get(port, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  EXPECT_NE(http_get(port, "GET /nope HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 404 Not Found"),
            std::string::npos);
  EXPECT_NE(http_get(port, "POST /metrics HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 405 Method Not Allowed"),
            std::string::npos);

  server.value()->stop();
}

// ---- full-stack correlation ---------------------------------------------

// A traced client deletion produces (a) a client span tree and (b) server
// audit lines, both carrying the same request id — the PR's acceptance
// scenario, run over the in-process channel.
TEST(ObsEndToEnd, TraceAndAuditShareRequestId) {
  cloud::CloudServer server;
  net::DirectChannel ch([&server](BytesView req) {
    return server.handle(req);
  });
  crypto::DeterministicRandom rnd(99);
  client::Client client(ch, rnd);
  auto fh = client.outsource(1, 8, [](std::size_t i) {
    return Bytes(16, static_cast<std::uint8_t>(i));
  });
  ASSERT_TRUE(fh.is_ok()) << fh.status().to_string();

  MemSink audit;
  obs::AuditLog::instance().set_sink(audit.file());
  const std::uint64_t rid = obs::generate_request_id();
  obs::trace_begin(rid);
  ASSERT_TRUE(client.erase_item(fh.value(), proto::ItemRef::id(3)).is_ok());
  MemSink trace;
  obs::trace_dump(trace.file());
  obs::AuditLog::instance().set_sink(nullptr);

  char rid_hex[32];
  std::snprintf(rid_hex, sizeof(rid_hex), "%016llx",
                static_cast<unsigned long long>(rid));

  const std::string trace_text = trace.text();
  EXPECT_NE(trace_text.find(std::string("trace rid=") + rid_hex),
            std::string::npos);
  EXPECT_NE(trace_text.find("client:erase_item"), std::string::npos);
  EXPECT_NE(trace_text.find("delete_begin_req"), std::string::npos);
  EXPECT_NE(trace_text.find("delete_commit_req"), std::string::npos);

  const std::string audit_text = audit.text();
  EXPECT_NE(audit_text.find(std::string("rid=") + rid_hex +
                            " op=delete_begin"),
            std::string::npos);
  EXPECT_NE(audit_text.find(std::string("rid=") + rid_hex +
                            " op=delete_commit"),
            std::string::npos);
  EXPECT_NE(audit_text.find("outcome=ok"), std::string::npos);
}

}  // namespace
}  // namespace fgad
