// Forward privacy of deleted data (Theorem 2, case i): an adversary who
// holds the FULL server history (every tree snapshot, every ciphertext) and
// compromises the client AFTER deletion (learning the current master key)
// still cannot decrypt a deleted item.
#include <gtest/gtest.h>

#include "client/client.h"
#include "cloud/server.h"
#include "core/tree.h"
#include "support/harness.h"

namespace fgad {
namespace {

using client::Client;
using cloud::CloudServer;
using core::ClientMath;
using core::ModulationTree;
using core::NodeId;
using crypto::Md;
using crypto::SystemRandom;
using test::payload_for;

struct Adversary {
  // Everything a server-side attacker accumulates over time.
  std::vector<Bytes> tree_snapshots;  // serialized modulation trees
  Bytes victim_ciphertext;
  std::uint64_t victim_item_id = 0;
  // Post-deletion client compromise:
  Md stolen_master_key;  // the NEW master key K'

  // Tries every key derivable from a snapshot under the stolen key.
  bool try_recover(const core::ItemCodec& codec, const ClientMath& math) const {
    for (const Bytes& blob : tree_snapshots) {
      proto::Reader r(blob);
      auto tree = ModulationTree::deserialize(
          r, ModulationTree::Config{crypto::HashAlg::kSha1, false});
      if (!tree.is_ok()) continue;
      const ModulationTree& t = tree.value();
      for (NodeId v = 0; v < t.node_count(); ++v) {
        if (!t.is_leaf(v)) continue;
        const Md key =
            math.derive_key(stolen_master_key, t.path_to(v), t.leaf_mod(v));
        if (codec.open(key, victim_ciphertext).is_ok()) {
          return true;  // recovery succeeded: the scheme is broken
        }
      }
    }
    return false;
  }
};

class SecurityTest : public ::testing::Test {
 protected:
  SecurityTest()
      : channel_([this](BytesView req) { return server_.handle(req); }),
        client_(channel_, rnd_) {}

  Bytes snapshot_tree() {
    auto blob = server_.fetch_tree(1);
    EXPECT_TRUE(blob.is_ok());
    return std::move(blob).value();
  }

  CloudServer server_;
  SystemRandom rnd_;
  net::DirectChannel channel_;
  Client client_;
};

TEST_F(SecurityTest, DeletedItemUnrecoverableFromFullHistory) {
  auto fh = client_.outsource(1, 32,
                              [](std::size_t i) { return payload_for(i); });
  ASSERT_TRUE(fh.is_ok());

  Adversary adv;
  // Attacker controls the server the whole time: snapshot before deletion.
  adv.tree_snapshots.push_back(snapshot_tree());
  {
    const auto* file = server_.file(1);
    auto slot = file->items().find(13);
    ASSERT_TRUE(slot.has_value());
    adv.victim_ciphertext = file->items().at(*slot).ciphertext;
    adv.victim_item_id = 13;
  }

  // The client deletes item 13.
  ASSERT_TRUE(client_.erase_item(fh.value(), proto::ItemRef::id(13)));

  // Attacker snapshots again and then compromises the client device,
  // obtaining the post-deletion master key.
  adv.tree_snapshots.push_back(snapshot_tree());
  adv.stolen_master_key = fh.value().key.value();

  EXPECT_FALSE(adv.try_recover(client_.codec(), client_.math()));
}

TEST_F(SecurityTest, SurvivingItemsRemainAccessibleToOwner) {
  auto fh = client_.outsource(1, 16,
                              [](std::size_t i) { return payload_for(i); });
  ASSERT_TRUE(fh.is_ok());
  ASSERT_TRUE(client_.erase_item(fh.value(), proto::ItemRef::id(5)));
  for (std::uint64_t i = 0; i < 16; ++i) {
    if (i == 5) continue;
    auto got = client_.access(fh.value(), proto::ItemRef::id(i));
    ASSERT_TRUE(got.is_ok()) << i;
    EXPECT_EQ(got.value(), payload_for(i));
  }
}

// A sequence of deletions: every deleted item stays dead against the final
// stolen key and all snapshots.
TEST_F(SecurityTest, MultipleDeletionsAllStayDead) {
  auto fh = client_.outsource(1, 20,
                              [](std::size_t i) { return payload_for(i); });
  ASSERT_TRUE(fh.is_ok());

  std::vector<Adversary> victims;
  std::vector<Bytes> all_snapshots;
  all_snapshots.push_back(snapshot_tree());

  for (std::uint64_t target : {3u, 17u, 0u, 9u}) {
    Adversary adv;
    const auto* file = server_.file(1);
    auto slot = file->items().find(target);
    ASSERT_TRUE(slot.has_value());
    adv.victim_ciphertext = file->items().at(*slot).ciphertext;
    adv.victim_item_id = target;
    victims.push_back(std::move(adv));
    ASSERT_TRUE(client_.erase_item(fh.value(), proto::ItemRef::id(target)));
    all_snapshots.push_back(snapshot_tree());
  }

  for (Adversary& adv : victims) {
    adv.tree_snapshots = all_snapshots;
    adv.stolen_master_key = fh.value().key.value();
    EXPECT_FALSE(adv.try_recover(client_.codec(), client_.math()))
        << "item " << adv.victim_item_id << " recoverable!";
  }
}

// Sanity check of the attack harness itself: *with* the correct (old) key
// the adversary's procedure does recover the item — so the negative results
// above are meaningful.
TEST_F(SecurityTest, AttackHarnessRecoversWithOldKey) {
  auto fh = client_.outsource(1, 8,
                              [](std::size_t i) { return payload_for(i); });
  ASSERT_TRUE(fh.is_ok());

  Adversary adv;
  adv.tree_snapshots.push_back(snapshot_tree());
  const auto* file = server_.file(1);
  auto slot = file->items().find(2);
  ASSERT_TRUE(slot.has_value());
  adv.victim_ciphertext = file->items().at(*slot).ciphertext;
  // "Compromise" the client BEFORE deletion: steal the current key.
  adv.stolen_master_key = fh.value().key.value();
  EXPECT_TRUE(adv.try_recover(client_.codec(), client_.math()));
}

// Dropping a whole file through the meta-less path: after drop, the server
// state is gone; the handle key is wiped locally.
TEST_F(SecurityTest, DropFileWipesHandle) {
  auto fh = client_.outsource(1, 4,
                              [](std::size_t i) { return payload_for(i); });
  ASSERT_TRUE(fh.is_ok());
  ASSERT_TRUE(client_.drop_file(fh.value()));
  EXPECT_TRUE(fh.value().key.empty());
  EXPECT_FALSE(server_.has_file(1));
}

}  // namespace
}  // namespace fgad
