// Adversarial server behaviour (threat model: attacker fully controls the
// server). The client must reject every manipulated response — Theorem 2,
// case ii, plus ciphertext tampering and self-inconsistent messages.
#include <gtest/gtest.h>

#include "client/client.h"
#include "cloud/server.h"
#include "net/transport.h"
#include "support/harness.h"

namespace fgad {
namespace {

using client::Client;
using cloud::CloudServer;
using crypto::SystemRandom;
using test::payload_for;

class AdversaryTest : public ::testing::Test {
 protected:
  AdversaryTest()
      : channel_([this](BytesView req) { return server_.handle(req); }),
        client_(channel_, rnd_) {}

  void outsource(std::size_t n) {
    auto fh = client_.outsource(1, n,
                                [](std::size_t i) { return payload_for(i); });
    ASSERT_TRUE(fh.is_ok());
    fh_ = std::move(fh).value();
  }

  CloudServer server_{cloud::CloudServer::Options{
      /*track_duplicates=*/false}};  // a malicious server runs no checks
  SystemRandom rnd_;
  net::DirectChannel channel_;
  Client client_;
  Client::FileHandle fh_;
};

// The server answers a delete for item k with MT(k') of a different leaf
// (trying to trick the client into deleting k' while keeping k derivable).
// The returned path cannot decrypt the target ciphertext -> reject.
TEST_F(AdversaryTest, WrongLeafDeleteInfoRejected) {
  outsource(16);
  server_.tamper_delete_info = [this](core::DeleteInfo& info) {
    // Keep the victim's ciphertext/id but substitute another leaf's MT.
    const auto* file = server_.file(1);
    auto slot = file->items().find(9);
    ASSERT_TRUE(slot.has_value());
    auto other = file->delete_begin(*slot);
    ASSERT_TRUE(other.is_ok());
    const Bytes ct = info.ciphertext;
    const std::uint64_t id = info.item_id;
    info = std::move(other).value();
    info.ciphertext = ct;
    info.item_id = id;
  };
  const Status st = client_.erase_item(fh_, proto::ItemRef::id(3));
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::kTamperDetected);
  // Nothing was deleted.
  server_.tamper_delete_info = nullptr;
  EXPECT_TRUE(client_.access(fh_, proto::ItemRef::id(3)).is_ok());
  EXPECT_TRUE(client_.access(fh_, proto::ItemRef::id(9)).is_ok());
}

// Figure 7's attack: the server clones path modulators onto a sibling
// branch so the deleted key would stay derivable. The clone necessarily
// duplicates a modulator inside MT(k); the client must notice.
TEST_F(AdversaryTest, ClonedPathModulatorsRejected) {
  outsource(16);
  server_.tamper_delete_info = [](core::DeleteInfo& info) {
    ASSERT_GE(info.cut.size(), 2u);
    info.cut[1].link = info.path.links[1];  // duplicate on sibling edge
  };
  const Status st = client_.erase_item(fh_, proto::ItemRef::id(5));
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::kDuplicateModulator);
}

// Duplicates hidden in the balancing branch are caught too (our check spans
// the entire response, strictly stronger than the paper's MT(k)-only rule).
TEST_F(AdversaryTest, DuplicateInBalancingBranchRejected) {
  outsource(16);
  server_.tamper_delete_info = [](core::DeleteInfo& info) {
    if (info.has_balance && !info.t_path.links.empty()) {
      info.s_leaf_mod = info.t_path.links[0];
    }
  };
  const Status st = client_.erase_item(fh_, proto::ItemRef::id(2));
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::kDuplicateModulator);
}

// A node reported twice with conflicting modulators (path vs balancing
// branch) is a self-inconsistent response.
TEST_F(AdversaryTest, ConflictingNodeValuesRejected) {
  outsource(16);
  SystemRandom rnd;
  server_.tamper_delete_info = [&rnd](core::DeleteInfo& info) {
    // t's path shares its prefix with P(k) when k is deep-right; force a
    // conflict by rewriting a shared-prefix link only in t_path.
    if (info.has_balance && !info.t_path.links.empty() &&
        info.t_path.nodes[1] == info.path.nodes[1]) {
      info.t_path.links[0] = rnd.random_md(20);
    } else if (info.has_balance) {
      // Otherwise conflict the t-leaf itself if it also appears in the cut.
      info.t_leaf_mod = rnd.random_md(20);
    }
  };
  // Delete the last leaf's neighbour so P(k) and P(t) share their prefix.
  const Status st = client_.erase_item(fh_, proto::ItemRef::id(15));
  EXPECT_FALSE(st.is_ok());
}

// Corrupted ciphertext in the delete response.
TEST_F(AdversaryTest, CorruptedCiphertextRejected) {
  outsource(8);
  server_.tamper_delete_info = [](core::DeleteInfo& info) {
    info.ciphertext[info.ciphertext.size() / 2] ^= 0x40;
  };
  const Status st = client_.erase_item(fh_, proto::ItemRef::id(1));
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::kTamperDetected);
}

// Wrong item id echoed (counter mismatch).
TEST_F(AdversaryTest, CounterMismatchRejected) {
  outsource(8);
  server_.tamper_delete_info = [this](core::DeleteInfo& info) {
    const auto* file = server_.file(1);
    auto slot = file->items().find(2);
    ASSERT_TRUE(slot.has_value());
    // Swap in another item's ciphertext wholesale (id still the victim's):
    // the record decrypts fine but carries the wrong counter.
    info.ciphertext = file->items().at(*slot).ciphertext;
    auto other = file->delete_begin(*slot);
    ASSERT_TRUE(other.is_ok());
    info.path = other.value().path;
    info.leaf_mod = other.value().leaf_mod;
    info.cut = other.value().cut;
  };
  const Status st = client_.erase_item(fh_, proto::ItemRef::id(6));
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::kTamperDetected);
}

// Access-path tampering: a modified link modulator breaks decryption.
TEST_F(AdversaryTest, AccessPathTamperRejected) {
  outsource(8);
  SystemRandom rnd;
  server_.tamper_access_info = [&rnd](core::AccessInfo& info) {
    if (!info.path.links.empty()) {
      info.path.links[0] = rnd.random_md(20);
    }
  };
  const auto got = client_.access(fh_, proto::ItemRef::id(3));
  EXPECT_FALSE(got.is_ok());
  EXPECT_EQ(got.code(), Errc::kIntegrityMismatch);
}

// Access ciphertext substitution: right path, wrong item.
TEST_F(AdversaryTest, AccessSubstitutionRejected) {
  outsource(8);
  server_.tamper_access_info = [this](core::AccessInfo& info) {
    const auto* file = server_.file(1);
    auto slot = file->items().find((info.item_id + 1) % 8);
    ASSERT_TRUE(slot.has_value());
    info.ciphertext = file->items().at(*slot).ciphertext;
  };
  const auto got = client_.access(fh_, proto::ItemRef::id(0));
  EXPECT_FALSE(got.is_ok());
}

// Malformed path geometry in an insert response.
TEST_F(AdversaryTest, MalformedInsertInfoRejected) {
  outsource(4);
  server_.tamper_insert_info = [](core::InsertInfo& info) {
    ASSERT_GT(info.q_path.nodes.size(), 1u);
    info.q_path.nodes.front() = 1;  // path no longer starts at the root
  };
  const auto got = client_.insert(fh_, to_bytes("x"));
  EXPECT_FALSE(got.is_ok());
  EXPECT_EQ(got.code(), Errc::kTamperDetected);
}

// Malformed delete path geometry.
TEST_F(AdversaryTest, MalformedDeletePathRejected) {
  outsource(8);
  server_.tamper_delete_info = [](core::DeleteInfo& info) {
    info.path.nodes[0] = 1;  // not rooted
  };
  const Status st = client_.erase_item(fh_, proto::ItemRef::id(1));
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::kTamperDetected);
}

// Cut geometry violation: cut nodes must be the path siblings.
TEST_F(AdversaryTest, WrongCutGeometryRejected) {
  outsource(8);
  server_.tamper_delete_info = [](core::DeleteInfo& info) {
    info.cut[0].node = info.path.nodes[1];  // not the sibling
  };
  const Status st = client_.erase_item(fh_, proto::ItemRef::id(1));
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::kTamperDetected);
}

// After any rejected tampering attempt, the honest state still works.
TEST_F(AdversaryTest, RejectionLeavesFileUsable) {
  outsource(8);
  server_.tamper_delete_info = [](core::DeleteInfo& info) {
    info.ciphertext[0] ^= 1;
  };
  EXPECT_FALSE(client_.erase_item(fh_, proto::ItemRef::id(1)).is_ok());
  server_.tamper_delete_info = nullptr;
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(client_.access(fh_, proto::ItemRef::id(i)).is_ok()) << i;
  }
  EXPECT_TRUE(client_.erase_item(fh_, proto::ItemRef::id(1)).is_ok());
}

}  // namespace
}  // namespace fgad
