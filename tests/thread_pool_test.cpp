// ThreadPool: exact coverage of index ranges, worker-index validity, reuse
// across many jobs, exception propagation, and degenerate sizes. The pool
// underpins the parallel derivation/sealing engine, so these invariants are
// what BatchDeriver's byte-identical guarantee rests on.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace fgad {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    ThreadPool pool(threads);
    ASSERT_EQ(pool.size(), threads);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                          std::size_t{7}, std::size_t{64}, std::size_t{1000},
                          std::size_t{4096}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(n, [&](std::size_t begin, std::size_t end,
                               std::size_t worker) {
        ASSERT_LT(worker, pool.size());
        ASSERT_LE(begin, end);
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                     << " threads, n = " << n;
      }
    }
  }
}

TEST(ThreadPool, ChunksAreContiguousAndOrderedWithinWorker) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(10000, /*grain=*/100,
                    [&](std::size_t begin, std::size_t end, std::size_t) {
                      std::uint64_t local = 0;
                      for (std::size_t i = begin; i < end; ++i) {
                        local += i;
                      }
                      sum.fetch_add(local, std::memory_order_relaxed);
                    });
  EXPECT_EQ(sum.load(), 10000ull * 9999ull / 2);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::size_t> count{0};
    const std::size_t n = 17 + static_cast<std::size_t>(round % 5) * 97;
    pool.parallel_for(n, [&](std::size_t begin, std::size_t end, std::size_t) {
      count.fetch_add(end - begin, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), n) << "round " << round;
  }
}

TEST(ThreadPool, SizeOnePoolRunsInlineWithSingleChunk) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for(100, [&](std::size_t begin, std::size_t end,
                             std::size_t worker) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(worker, 0u);
    chunks.emplace_back(begin, end);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{0, 100}));
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<std::size_t> completed{0};
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [&](std::size_t begin, std::size_t end, std::size_t) {
                          for (std::size_t i = begin; i < end; ++i) {
                            if (i == 500) {
                              throw std::runtime_error("boom");
                            }
                            completed.fetch_add(1, std::memory_order_relaxed);
                          }
                        }),
      std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(64, [&](std::size_t begin, std::size_t end, std::size_t) {
    count.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(7), 7u);
  EXPECT_EQ(ThreadPool::resolve_threads(0), ThreadPool::default_threads());
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

}  // namespace
}  // namespace fgad
