// BatchDeriver equivalence: the parallel subtree-partitioned derivation and
// the parallel seal/unseal passes must be byte-identical to the scalar
// reference (ClientMath::derive_all_keys / per-leaf derive_key /
// ItemCodec::seal) at every thread count — including trees small enough to
// hit the serial cutoff and trees with leaves on two levels.
#include <gtest/gtest.h>

#include "core/batch_derive.h"
#include "core/client_math.h"
#include "core/outsource.h"
#include "core/tree.h"
#include "crypto/random.h"
#include "support/harness.h"

namespace fgad {
namespace {

using core::BatchDeriver;
using core::ClientMath;
using core::ItemCodec;
using core::NodeId;
using crypto::DeterministicRandom;
using crypto::HashAlg;
using crypto::Md;

struct RandomTree {
  std::vector<Md> links;
  std::vector<Md> leaf_mods;
  Md master;
};

RandomTree make_tree(std::size_t n, std::size_t width, std::uint64_t seed) {
  DeterministicRandom rnd(seed);
  RandomTree t;
  t.master = rnd.random_md(width);
  t.links.resize(core::node_count_for(n));
  for (NodeId v = 1; v < t.links.size(); ++v) {
    t.links[v] = rnd.random_md(width);
  }
  t.leaf_mods.resize(n);
  for (auto& m : t.leaf_mods) {
    m = rnd.random_md(width);
  }
  return t;
}

BatchDeriver make_deriver(HashAlg alg, std::size_t threads,
                          std::size_t min_parallel_nodes = 1) {
  BatchDeriver::Options opts;
  opts.threads = threads;
  // Tiny cutoff so even small test trees exercise the parallel path.
  opts.min_parallel_nodes = min_parallel_nodes;
  return BatchDeriver(alg, opts);
}

TEST(BatchDerive, MatchesScalarDeriveAllKeysAtEveryThreadCount) {
  for (HashAlg alg : {HashAlg::kSha1, HashAlg::kSha256}) {
    ClientMath math(alg);
    for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                          std::size_t{5}, std::size_t{13}, std::size_t{64},
                          std::size_t{100}, std::size_t{1000},
                          std::size_t{4097}}) {
      const RandomTree t = make_tree(n, math.width(), 1000 + n);
      const std::vector<Md> want =
          math.derive_all_keys(t.master, t.links, t.leaf_mods);
      for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}}) {
        const BatchDeriver deriver = make_deriver(alg, threads);
        const std::vector<Md> got =
            deriver.derive_all_keys(t.master, t.links, t.leaf_mods);
        ASSERT_EQ(got, want) << "n=" << n << " threads=" << threads;
      }
    }
  }
}

TEST(BatchDerive, MatchesPerLeafScalarDeriveKey) {
  ClientMath math(HashAlg::kSha1);
  const std::size_t n = 777;  // leaves on two levels
  const RandomTree t = make_tree(n, math.width(), 7);

  core::ModulationTree tree(core::ModulationTree::Config{HashAlg::kSha1,
                                                         false});
  tree.build(
      n, [&](NodeId v) { return t.links[v]; },
      [&](NodeId v) {
        return std::pair<Md, std::uint64_t>(t.leaf_mods[v - (n - 1)],
                                            v - (n - 1));
      });

  const BatchDeriver deriver = make_deriver(HashAlg::kSha1, 4);
  const std::vector<Md> keys =
      deriver.derive_all_keys(t.master, t.links, t.leaf_mods);
  ASSERT_EQ(keys.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId leaf = static_cast<NodeId>(n - 1 + i);
    const Md want =
        math.derive_key(t.master, tree.path_to(leaf), tree.leaf_mod(leaf));
    ASSERT_EQ(keys[i], want) << "leaf index " << i;
  }
}

TEST(BatchDerive, EmptyTree) {
  const BatchDeriver deriver = make_deriver(HashAlg::kSha1, 4);
  EXPECT_TRUE(deriver.derive_all_keys(Md::zero(20), {}, {}).empty());
}

TEST(BatchDerive, SealAllMatchesSequentialSealBitForBit) {
  const std::size_t n = 513;
  ClientMath math(HashAlg::kSha1);
  const RandomTree t = make_tree(n, math.width(), 99);
  const std::vector<Md> keys =
      math.derive_all_keys(t.master, t.links, t.leaf_mods);

  // Reference: the seed's sequential loop — seal() draws each IV from rnd.
  ItemCodec codec(HashAlg::kSha1);
  DeterministicRandom seq_rnd(4242);
  std::vector<Bytes> want(n);
  for (std::size_t i = 0; i < n; ++i) {
    want[i] = codec.seal(keys[i], test::payload_for(i), 1000 + i, seq_rnd);
  }

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    // Pre-draw IVs in item order from an identically seeded source: the
    // stream consumed matches the sequential loop, so ciphertexts must too.
    DeterministicRandom rnd(4242);
    Bytes ivs(n * crypto::kAesBlockSize);
    for (std::size_t i = 0; i < n; ++i) {
      rnd.fill(std::span<std::uint8_t>(ivs.data() + i * crypto::kAesBlockSize,
                                       crypto::kAesBlockSize));
    }
    const BatchDeriver deriver = make_deriver(HashAlg::kSha1, threads);
    std::vector<std::uint64_t> sizes(n);
    const std::vector<Bytes> got = deriver.seal_all(
        keys, [](std::size_t i) { return test::payload_for(i); }, 1000, ivs,
        sizes);
    ASSERT_EQ(got, want) << "threads=" << threads;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(sizes[i], test::payload_for(i).size());
    }
  }
}

TEST(BatchDerive, OpenAllRoundTripsAndDetectsTampering) {
  const std::size_t n = 301;
  ClientMath math(HashAlg::kSha1);
  ItemCodec codec(HashAlg::kSha1);
  const RandomTree t = make_tree(n, math.width(), 55);
  const std::vector<Md> keys =
      math.derive_all_keys(t.master, t.links, t.leaf_mods);
  DeterministicRandom rnd(1);
  std::vector<Bytes> sealed(n);
  for (std::size_t i = 0; i < n; ++i) {
    sealed[i] = codec.seal(keys[i], test::payload_for(i), i, rnd);
  }

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const BatchDeriver deriver = make_deriver(HashAlg::kSha1, threads);
    std::vector<BatchDeriver::OpenTask> tasks(n);
    for (std::size_t i = 0; i < n; ++i) {
      tasks[i] = BatchDeriver::OpenTask{i, sealed[i], i};
    }
    auto opened = deriver.open_all(keys, tasks);
    ASSERT_TRUE(opened.is_ok());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(opened.value()[i], test::payload_for(i));
    }

    // Corrupt one ciphertext: the pass reports an integrity error.
    Bytes bad = sealed[n / 2];
    bad[bad.size() / 2] ^= 0x40;
    tasks[n / 2].sealed = bad;
    auto corrupted = deriver.open_all(keys, tasks);
    ASSERT_FALSE(corrupted.is_ok());
    EXPECT_EQ(corrupted.error().code, Errc::kIntegrityMismatch);
    tasks[n / 2].sealed = sealed[n / 2];

    // Wrong expected counter: tamper detection.
    tasks[7].expect_r = 999'999;
    auto mismatched = deriver.open_all(keys, tasks);
    ASSERT_FALSE(mismatched.is_ok());
    EXPECT_EQ(mismatched.error().code, Errc::kTamperDetected);
    tasks[7].expect_r = 7;
  }
}

TEST(BatchDerive, OutsourcerBuildIsThreadCountInvariant) {
  // The whole built file (tree modulators + every ciphertext) must be
  // byte-identical across thread counts, and identical to the seed's
  // sequential construction order.
  auto build_with = [&](std::size_t threads) {
    DeterministicRandom rnd(77);
    core::Outsourcer out(HashAlg::kSha1, /*track_duplicates=*/false, threads);
    crypto::MasterKey master(Md::zero(20));
    {
      DeterministicRandom krnd(5);
      master = crypto::MasterKey::generate(krnd, 20);
    }
    std::uint64_t counter = 100;
    return out.build(
        master, 600, [](std::size_t i) { return test::payload_for(i); },
        counter, rnd);
  };
  const core::OutsourcedFile base = build_with(1);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const core::OutsourcedFile got = build_with(threads);
    ASSERT_EQ(got.items.size(), base.items.size());
    for (std::size_t i = 0; i < base.items.size(); ++i) {
      ASSERT_EQ(got.items[i].item_id, base.items[i].item_id);
      ASSERT_EQ(got.items[i].ciphertext, base.items[i].ciphertext)
          << "item " << i << " differs at " << threads << " threads";
      ASSERT_EQ(got.items[i].plain_size, base.items[i].plain_size);
    }
    ASSERT_EQ(got.tree.node_count(), base.tree.node_count());
    for (NodeId v = 1; v < base.tree.node_count(); ++v) {
      ASSERT_EQ(got.tree.link_mod(v), base.tree.link_mod(v));
    }
  }
}

}  // namespace
}  // namespace fgad
