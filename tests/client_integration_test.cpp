// End-to-end client/server integration over all three transports.
#include <gtest/gtest.h>

#include <memory>

#include "client/client.h"
#include "cloud/server.h"
#include "net/inmemory.h"
#include "net/tcp.h"
#include "support/harness.h"

namespace fgad {
namespace {

using client::Client;
using cloud::CloudServer;
using crypto::SystemRandom;
using test::payload_for;

// Assembles server + chosen transport + client and runs the same scenario.
class Stack {
 public:
  enum class Transport { kDirect, kPipe, kTcp };

  explicit Stack(Transport t) : transport_(t) {
    switch (t) {
      case Transport::kDirect:
        channel_ = std::make_unique<net::DirectChannel>(
            [this](BytesView req) { return server_.handle(req); });
        break;
      case Transport::kPipe:
        pump_ = std::make_unique<net::ServerPump>(
            pipe_, [this](BytesView req) { return server_.handle(req); });
        channel_ = std::make_unique<net::PipeChannel>(pipe_);
        break;
      case Transport::kTcp:
        auto created = net::TcpServer::create(
            0, [this](BytesView req) { return server_.handle(req); });
        EXPECT_TRUE(created.is_ok()) << created.status().to_string();
        tcp_server_ = std::move(created).value();
        auto ch = net::TcpChannel::connect("127.0.0.1", tcp_server_->port());
        EXPECT_TRUE(ch.is_ok()) << ch.status().to_string();
        channel_ = std::move(ch).value();
        break;
    }
    client_ = std::make_unique<Client>(*channel_, rnd_);
  }

  ~Stack() {
    client_.reset();
    channel_.reset();
    if (pump_) pump_->stop();
    if (tcp_server_) tcp_server_->stop();
  }

  Client& client() { return *client_; }
  CloudServer& server() { return server_; }

 private:
  Transport transport_;
  CloudServer server_;
  SystemRandom rnd_;
  net::Pipe pipe_;
  std::unique_ptr<net::ServerPump> pump_;
  std::unique_ptr<net::TcpServer> tcp_server_;
  std::unique_ptr<net::RpcChannel> channel_;
  std::unique_ptr<Client> client_;
};

class Transports
    : public ::testing::TestWithParam<Stack::Transport> {};

TEST_P(Transports, FullLifecycle) {
  Stack stack(GetParam());
  Client& c = stack.client();

  // Outsource 12 items.
  std::vector<Bytes> items;
  for (int i = 0; i < 12; ++i) items.push_back(payload_for(i));
  auto fh = c.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());

  // Access every item.
  for (std::uint64_t i = 0; i < 12; ++i) {
    auto got = c.access(fh.value(), proto::ItemRef::id(i));
    ASSERT_TRUE(got.is_ok()) << i;
    EXPECT_EQ(got.value(), items[i]);
  }

  // Modify one.
  ASSERT_TRUE(c.modify(fh.value(), 4, to_bytes("modified content")));
  EXPECT_EQ(to_string(c.access(fh.value(), proto::ItemRef::id(4)).value()),
            "modified content");

  // Insert two.
  auto id_a = c.insert(fh.value(), to_bytes("inserted A"));
  ASSERT_TRUE(id_a.is_ok());
  auto id_b = c.insert(fh.value(), to_bytes("inserted B"), /*after=*/3);
  ASSERT_TRUE(id_b.is_ok());
  EXPECT_EQ(to_string(c.access(fh.value(), proto::ItemRef::id(id_a.value()))
                          .value()),
            "inserted A");

  // Order check: B sits right after item 3.
  auto ids = c.list_items(fh.value());
  ASSERT_TRUE(ids.is_ok());
  const auto pos3 = std::find(ids.value().begin(), ids.value().end(), 3u);
  ASSERT_NE(pos3, ids.value().end());
  EXPECT_EQ(*(pos3 + 1), id_b.value());

  // Assured deletion of items 0 and 7.
  ASSERT_TRUE(c.erase_item(fh.value(), proto::ItemRef::id(0)));
  ASSERT_TRUE(c.erase_item(fh.value(), proto::ItemRef::id(7)));
  EXPECT_EQ(c.access(fh.value(), proto::ItemRef::id(0)).code(),
            Errc::kNotFound);

  // Everything else is intact.
  for (std::uint64_t i : {1u, 2u, 3u, 4u, 5u, 6u, 8u, 9u, 10u, 11u}) {
    auto got = c.access(fh.value(), proto::ItemRef::id(i));
    ASSERT_TRUE(got.is_ok()) << i;
  }

  // Whole-file fetch matches.
  auto fetched = c.fetch_all(fh.value());
  ASSERT_TRUE(fetched.is_ok());
  EXPECT_EQ(fetched.value().items.size(), 12u);  // 12 + 2 - 2

  // Drop the file.
  ASSERT_TRUE(c.drop_file(fh.value()));
  EXPECT_TRUE(fh.value().key.empty());
}

INSTANTIATE_TEST_SUITE_P(All, Transports,
                         ::testing::Values(Stack::Transport::kDirect,
                                           Stack::Transport::kPipe,
                                           Stack::Transport::kTcp));

TEST(ClientIntegration, AccessByOrdinal) {
  Stack stack(Stack::Transport::kDirect);
  Client& c = stack.client();
  std::vector<Bytes> items = {to_bytes("first"), to_bytes("second"),
                              to_bytes("third")};
  auto fh = c.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());
  EXPECT_EQ(to_string(c.access(fh.value(), proto::ItemRef::ordinal(1)).value()),
            "second");
}

TEST(ClientIntegration, EmptyFileGrows) {
  Stack stack(Stack::Transport::kDirect);
  Client& c = stack.client();
  auto fh = c.outsource(1, std::span<const Bytes>{});
  ASSERT_TRUE(fh.is_ok());
  auto id = c.insert(fh.value(), to_bytes("lonely"));
  ASSERT_TRUE(id.is_ok());
  EXPECT_EQ(to_string(c.access(fh.value(), proto::ItemRef::id(id.value()))
                          .value()),
            "lonely");
  ASSERT_TRUE(c.erase_item(fh.value(), proto::ItemRef::id(id.value())));
  EXPECT_EQ(c.access(fh.value(), proto::ItemRef::id(id.value())).code(),
            Errc::kNotFound);
}

TEST(ClientIntegration, MasterKeyRotatesOnDelete) {
  Stack stack(Stack::Transport::kDirect);
  Client& c = stack.client();
  std::vector<Bytes> items = {to_bytes("a"), to_bytes("b"), to_bytes("c")};
  auto fh = c.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());
  const crypto::Md before = fh.value().key.value();
  ASSERT_TRUE(c.erase_item(fh.value(), proto::ItemRef::id(1)));
  EXPECT_NE(fh.value().key.value(), before);
}

TEST(ClientIntegration, CounterIsGloballyUnique) {
  Stack stack(Stack::Transport::kDirect);
  Client& c = stack.client();
  std::vector<Bytes> items = {to_bytes("a"), to_bytes("b")};
  auto f1 = c.outsource(1, items);
  auto f2 = c.outsource(2, items);
  ASSERT_TRUE(f1.is_ok());
  ASSERT_TRUE(f2.is_ok());
  // File 2's ids continue after file 1's.
  auto ids2 = c.list_items(f2.value());
  ASSERT_TRUE(ids2.is_ok());
  EXPECT_EQ(ids2.value(), (std::vector<std::uint64_t>{2, 3}));
  auto id = c.insert(f1.value(), to_bytes("x"));
  ASSERT_TRUE(id.is_ok());
  EXPECT_EQ(id.value(), 4u);
}

TEST(ClientIntegration, ManyOperationsStayConsistent) {
  Stack stack(Stack::Transport::kDirect);
  Client& c = stack.client();
  std::vector<Bytes> items;
  for (int i = 0; i < 40; ++i) items.push_back(payload_for(i));
  auto fh = c.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());
  Xoshiro256 rng(2024);
  std::vector<std::uint64_t> live;
  for (std::uint64_t i = 0; i < 40; ++i) live.push_back(i);
  for (int round = 0; round < 60; ++round) {
    if (!live.empty() && rng.next_below(2) == 0) {
      const std::size_t idx = rng.next_below(live.size());
      ASSERT_TRUE(c.erase_item(fh.value(), proto::ItemRef::id(live[idx])));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      auto id = c.insert(fh.value(), payload_for(500 + round));
      ASSERT_TRUE(id.is_ok());
      live.push_back(id.value());
    }
  }
  for (std::uint64_t id : live) {
    ASSERT_TRUE(c.access(fh.value(), proto::ItemRef::id(id)).is_ok()) << id;
  }
  auto ids = c.list_items(fh.value());
  ASSERT_TRUE(ids.is_ok());
  EXPECT_EQ(ids.value().size(), live.size());
}

TEST(ClientIntegration, ComputeTimerAdvances) {
  Stack stack(Stack::Transport::kDirect);
  Client& c = stack.client();
  std::vector<Bytes> items(8, to_bytes("payload"));
  auto fh = c.outsource(1, items);
  ASSERT_TRUE(fh.is_ok());
  const double after_outsource = c.compute_timer().total_seconds();
  EXPECT_GT(after_outsource, 0.0);
  ASSERT_TRUE(c.erase_item(fh.value(), proto::ItemRef::ordinal(0)));
  EXPECT_GT(c.compute_timer().total_seconds(), after_outsource);
}

TEST(ClientIntegration, CommOverheadIsLogarithmic) {
  // Counting channel around a direct stack: deletion bytes at n=64 vs
  // n=4096 should grow like log n (factor ~2), not like n (factor 64).
  auto run = [](std::size_t n) -> std::uint64_t {
    CloudServer server;
    net::DirectChannel direct(
        [&server](BytesView req) { return server.handle(req); });
    net::CountingChannel counting(direct);
    SystemRandom rnd;
    Client c(counting, rnd);
    auto fh = c.outsource(1, n, [](std::size_t i) { return payload_for(i); });
    EXPECT_TRUE(fh.is_ok());
    counting.reset();
    EXPECT_TRUE(c.erase_item(fh.value(), proto::ItemRef::ordinal(n / 2)));
    return counting.total_bytes();
  };
  const std::uint64_t small = run(64);
  const std::uint64_t big = run(4096);
  EXPECT_GT(big, small);
  EXPECT_LT(big, small * 4);  // logarithmic, not linear
}

}  // namespace
}  // namespace fgad
