// Section V two-level key management: meta modulation tree + control key.
#include <gtest/gtest.h>

#include "cloud/server.h"
#include "fskeys/meta.h"
#include "support/harness.h"

namespace fgad::fskeys {
namespace {

using client::Client;
using cloud::CloudServer;
using crypto::Md;
using crypto::SystemRandom;
using test::payload_for;

constexpr std::uint64_t kMetaId = 1000;

class FsKeysTest : public ::testing::Test {
 protected:
  FsKeysTest()
      : channel_([this](BytesView req) { return server_.handle(req); }),
        client_(channel_, rnd_),
        fs_(client_, kMetaId) {
    EXPECT_TRUE(fs_.init());
  }

  std::vector<Bytes> make_items(int n, int base = 0) {
    std::vector<Bytes> items;
    for (int i = 0; i < n; ++i) items.push_back(payload_for(base + i));
    return items;
  }

  CloudServer server_;
  SystemRandom rnd_;
  net::DirectChannel channel_;
  Client client_;
  FileSystemClient fs_;
};

TEST_F(FsKeysTest, CreateAndAccessMultipleFiles) {
  ASSERT_TRUE(fs_.create_file(1, make_items(5, 0)));
  ASSERT_TRUE(fs_.create_file(2, make_items(3, 100)));
  EXPECT_EQ(fs_.file_count(), 2u);
  EXPECT_EQ(fs_.access(1, proto::ItemRef::ordinal(2)).value(),
            payload_for(2));
  EXPECT_EQ(fs_.access(2, proto::ItemRef::ordinal(0)).value(),
            payload_for(100));
  EXPECT_EQ(fs_.access(9, proto::ItemRef::ordinal(0)).code(),
            Errc::kNotFound);
}

TEST_F(FsKeysTest, DuplicateFileRejected) {
  ASSERT_TRUE(fs_.create_file(1, make_items(2)));
  EXPECT_EQ(fs_.create_file(1, make_items(2)).code(), Errc::kInvalidArgument);
}

TEST_F(FsKeysTest, InsertAndModifyThroughMeta) {
  ASSERT_TRUE(fs_.create_file(1, make_items(4)));
  auto id = fs_.insert(1, to_bytes("new item"));
  ASSERT_TRUE(id.is_ok());
  EXPECT_EQ(to_string(fs_.access(1, proto::ItemRef::id(id.value())).value()),
            "new item");
  ASSERT_TRUE(fs_.modify(1, id.value(), to_bytes("edited")));
  EXPECT_EQ(to_string(fs_.access(1, proto::ItemRef::id(id.value())).value()),
            "edited");
}

TEST_F(FsKeysTest, EraseItemRotatesControlKey) {
  ASSERT_TRUE(fs_.create_file(1, make_items(6)));
  const Md control_before = fs_.control_key().value();
  ASSERT_TRUE(fs_.erase_item(1, proto::ItemRef::ordinal(2)));
  // The meta-tree rotation changes the control key (delete + insert).
  EXPECT_NE(fs_.control_key().value(), control_before);
  // The remaining items are reachable; the deleted one is gone.
  EXPECT_EQ(fs_.access(1, proto::ItemRef::id(2)).code(), Errc::kNotFound);
  EXPECT_TRUE(fs_.access(1, proto::ItemRef::id(1)).is_ok());
  EXPECT_TRUE(fs_.access(1, proto::ItemRef::id(5)).is_ok());
}

TEST_F(FsKeysTest, EraseItemAcrossFilesKeepsOthersWorking) {
  ASSERT_TRUE(fs_.create_file(1, make_items(4, 0)));
  ASSERT_TRUE(fs_.create_file(2, make_items(4, 50)));
  ASSERT_TRUE(fs_.erase_item(1, proto::ItemRef::ordinal(0)));
  ASSERT_TRUE(fs_.erase_item(2, proto::ItemRef::ordinal(3)));
  EXPECT_TRUE(fs_.access(1, proto::ItemRef::ordinal(0)).is_ok());
  EXPECT_TRUE(fs_.access(2, proto::ItemRef::ordinal(0)).is_ok());
}

TEST_F(FsKeysTest, DeleteFileKillsAllItems) {
  ASSERT_TRUE(fs_.create_file(1, make_items(4)));
  ASSERT_TRUE(fs_.create_file(2, make_items(4, 80)));
  ASSERT_TRUE(fs_.delete_file(1));
  EXPECT_EQ(fs_.file_count(), 1u);
  EXPECT_EQ(fs_.access(1, proto::ItemRef::ordinal(0)).code(),
            Errc::kNotFound);
  EXPECT_TRUE(fs_.access(2, proto::ItemRef::ordinal(1)).is_ok());
  EXPECT_FALSE(server_.has_file(1));
}

TEST_F(FsKeysTest, RebuildIndexFromControlKeyOnly) {
  ASSERT_TRUE(fs_.create_file(1, make_items(3, 0)));
  ASSERT_TRUE(fs_.create_file(7, make_items(2, 40)));
  // Simulate index loss (e.g. a fresh device that carries only the control
  // key): rebuild the non-secret file_id -> meta-entry map from the cloud.
  ASSERT_TRUE(fs_.rebuild_index());
  EXPECT_EQ(fs_.file_count(), 2u);
  EXPECT_EQ(fs_.access(7, proto::ItemRef::ordinal(1)).value(),
            payload_for(41));
}

// The DESIGN.md Section 6 argument: after an item deletion, an adversary
// with (a) a pre-deletion snapshot of the meta tree + the file's ciphertext
// and (b) the post-deletion control key cannot recover the file's OLD
// master key — because the meta update is delete+insert, not re-encrypt.
TEST_F(FsKeysTest, OldMasterKeyUnrecoverableAfterItemErase) {
  ASSERT_TRUE(fs_.create_file(1, make_items(8)));

  // Server-side attacker snapshots the meta tree and the victim ciphertext.
  auto meta_blob_before = server_.fetch_tree(kMetaId);
  ASSERT_TRUE(meta_blob_before.is_ok());
  std::vector<Bytes> meta_entry_cts_before;
  {
    const auto* meta_file = server_.file(kMetaId);
    for (auto slot = meta_file->items().first();
         slot != cloud::ItemStore::kNoSlot;
         slot = meta_file->items().next_of(slot)) {
      meta_entry_cts_before.push_back(meta_file->items().at(slot).ciphertext);
    }
  }
  Bytes victim_ct;
  {
    const auto* file = server_.file(1);
    auto slot = file->items().find(3);
    ASSERT_TRUE(slot.has_value());
    victim_ct = file->items().at(*slot).ciphertext;
  }

  ASSERT_TRUE(fs_.erase_item(1, proto::ItemRef::id(3)));

  // Post-deletion compromise: the attacker learns the NEW control key.
  const Md stolen_control = fs_.control_key().value();

  // Attack: derive every meta data key from the pre-deletion meta tree
  // under the stolen control key, try to open every old meta entry, and —
  // if any opens — use the recovered master key on the victim ciphertext.
  proto::Reader r(meta_blob_before.value());
  auto old_meta = core::ModulationTree::deserialize(
      r, core::ModulationTree::Config{crypto::HashAlg::kSha1, false});
  ASSERT_TRUE(old_meta.is_ok());
  const auto& tree = old_meta.value();
  bool recovered_any = false;
  for (core::NodeId v = 0; v < tree.node_count(); ++v) {
    if (!tree.is_leaf(v)) continue;
    const Md key = client_.math().derive_key(stolen_control, tree.path_to(v),
                                             tree.leaf_mod(v));
    for (const Bytes& ct : meta_entry_cts_before) {
      auto opened = client_.codec().open(key, ct);
      if (!opened.is_ok()) continue;
      // Recovered *some* meta entry plaintext: does it hold a master key
      // that decrypts the victim?
      proto::Reader er(opened.value().plaintext);
      er.u64();
      const Md master = er.md();
      if (!er.ok()) continue;
      const auto* file = server_.file(1);
      for (auto slot = file->items().first();
           slot != cloud::ItemStore::kNoSlot;
           slot = file->items().next_of(slot)) {
        (void)slot;
      }
      // Try the stolen master key against the victim via the pre-deletion
      // file tree paths: if the meta entry was the file's OLD key, the
      // victim decrypts and the scheme is broken.
      recovered_any = true;
      (void)master;
    }
  }
  EXPECT_FALSE(recovered_any)
      << "pre-deletion meta entry decryptable with post-deletion control key";
  (void)victim_ct;
}

// Contrast test: a NAIVE modify-in-place meta update (re-encrypt the new
// master key under the SAME meta data key) would leave the old snapshot
// decryptable — demonstrating why rotate-by-delete+insert is required.
TEST_F(FsKeysTest, NaiveModifyWouldBeInsecure) {
  ASSERT_TRUE(fs_.create_file(1, make_items(4)));
  // Read the meta entry's data key the way the client would.
  const auto* meta_file = server_.file(kMetaId);
  auto slot = meta_file->items().first();
  ASSERT_NE(slot, cloud::ItemStore::kNoSlot);
  const auto& rec = meta_file->items().at(slot);
  const Md meta_key = client_.math().derive_key(
      fs_.control_key().value(), meta_file->tree().path_to(rec.leaf),
      meta_file->tree().leaf_mod(rec.leaf));
  const Bytes old_entry_ct = rec.ciphertext;  // attacker snapshot

  // Naive flow: the control key never changes, the entry is re-encrypted
  // under the same meta data key. The old snapshot then still opens with a
  // key derivable from the *current* control key:
  auto opened = client_.codec().open(meta_key, old_entry_ct);
  ASSERT_TRUE(opened.is_ok());
  // ...revealing the file's master key outright.
  proto::Reader er(opened.value().plaintext);
  EXPECT_EQ(er.u64(), 1u);
  EXPECT_EQ(er.md().size(), 20u);
  // This is exactly the leak our delete+insert rotation closes (previous
  // test): after erase_item, no pre-deletion entry opens under the new
  // control key.
}

}  // namespace
}  // namespace fgad::fskeys
