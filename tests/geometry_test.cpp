// Heap-array tree geometry (node_id.h).
#include <gtest/gtest.h>

#include "core/node_id.h"

namespace fgad::core {
namespace {

TEST(Geometry, RootAndChildren) {
  EXPECT_EQ(root_id(), 0u);
  EXPECT_TRUE(is_root(0));
  EXPECT_FALSE(is_root(1));
  EXPECT_EQ(left_child(0), 1u);
  EXPECT_EQ(right_child(0), 2u);
  EXPECT_EQ(left_child(3), 7u);
  EXPECT_EQ(right_child(3), 8u);
}

TEST(Geometry, ParentInvertsChildren) {
  for (NodeId v = 0; v < 1000; ++v) {
    EXPECT_EQ(parent_of(left_child(v)), v);
    EXPECT_EQ(parent_of(right_child(v)), v);
  }
}

TEST(Geometry, Siblings) {
  EXPECT_EQ(sibling_of(1), 2u);
  EXPECT_EQ(sibling_of(2), 1u);
  EXPECT_EQ(sibling_of(7), 8u);
  EXPECT_EQ(sibling_of(8), 7u);
  for (NodeId v = 1; v < 1000; ++v) {
    EXPECT_EQ(sibling_of(sibling_of(v)), v);
    EXPECT_EQ(parent_of(sibling_of(v)), parent_of(v));
  }
}

TEST(Geometry, LeafPredicate) {
  // 7 nodes: internal 0,1,2; leaves 3..6.
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_FALSE(is_leaf_in(v, 7)) << v;
  }
  for (NodeId v = 3; v < 7; ++v) {
    EXPECT_TRUE(is_leaf_in(v, 7)) << v;
  }
  // Single node tree: root is a leaf.
  EXPECT_TRUE(is_leaf_in(0, 1));
}

TEST(Geometry, LeafAndNodeCounts) {
  EXPECT_EQ(node_count_for(0), 0u);
  EXPECT_EQ(node_count_for(1), 1u);
  EXPECT_EQ(node_count_for(4), 7u);
  EXPECT_EQ(node_count_for(5), 9u);
  for (std::size_t n = 0; n < 500; ++n) {
    EXPECT_EQ(leaf_count_of(node_count_for(n)), n);
  }
}

TEST(Geometry, LeavesAreExactlyTheTail) {
  // In a heap of 2n-1 nodes the leaves are exactly ids >= n-1.
  for (std::size_t n = 1; n < 200; ++n) {
    const std::size_t nodes = node_count_for(n);
    for (NodeId v = 0; v < nodes; ++v) {
      EXPECT_EQ(is_leaf_in(v, nodes), v >= n - 1) << "n=" << n << " v=" << v;
    }
  }
}

TEST(Geometry, Depth) {
  EXPECT_EQ(depth_of(0), 0u);
  EXPECT_EQ(depth_of(1), 1u);
  EXPECT_EQ(depth_of(2), 1u);
  EXPECT_EQ(depth_of(3), 2u);
  EXPECT_EQ(depth_of(6), 2u);
  EXPECT_EQ(depth_of(7), 3u);
  // Depth grows logarithmically.
  EXPECT_EQ(depth_of((1u << 20) - 1), 20u);
}

TEST(Geometry, AncestorPredicate) {
  EXPECT_TRUE(is_ancestor_or_self(0, 0));
  EXPECT_TRUE(is_ancestor_or_self(0, 12345));
  EXPECT_TRUE(is_ancestor_or_self(1, 3));
  EXPECT_TRUE(is_ancestor_or_self(1, 4));
  EXPECT_FALSE(is_ancestor_or_self(1, 5));
  EXPECT_FALSE(is_ancestor_or_self(2, 3));
  EXPECT_FALSE(is_ancestor_or_self(3, 1));
}

TEST(Geometry, EveryInternalNodeHasTwoChildrenInOddHeaps) {
  // With an odd node count, no node has exactly one child — the paper's
  // "each internal node having two children" invariant.
  for (std::size_t n = 1; n < 100; ++n) {
    const std::size_t nodes = node_count_for(n);
    for (NodeId v = 0; v < nodes; ++v) {
      if (!is_leaf_in(v, nodes)) {
        EXPECT_LT(right_child(v), nodes) << "n=" << n << " v=" << v;
      }
    }
  }
}

}  // namespace
}  // namespace fgad::core
