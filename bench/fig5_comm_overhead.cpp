// Figure 5 reproduction: communication overhead (KB) for deleting,
// inserting, or accessing a data item vs. number of data items (log scale).
//
// Paper metric: all information the client sends or receives for one
// operation, excluding the data item itself on access. Expected shape: all
// three curves grow logarithmically in n; delete is the most expensive,
// access/insert much lower.
#include "support/sweep.h"

int main() {
  using namespace fgad::bench;
  std::printf("=== Figure 5: communication overhead per operation (KB) ===\n");
  std::printf("item size 16 B (payload excluded from the metric); "
              "samples/point = %zu; max n = %zu\n\n",
              sample_count(), max_n());
  std::printf("%12s %14s %14s %14s\n", "n", "delete (KB)", "insert (KB)",
              "access (KB)");
  BenchJson json("fig5_comm_overhead");
  json.meta().set("item_bytes", 16);
  for (std::size_t n : sweep_sizes()) {
    const SweepPoint p =
        run_sweep_point(n, fgad::crypto::HashAlg::kSha1, sample_count());
    std::printf("%12zu %14.3f %14.3f %14.3f\n", p.n, p.delete_bytes / 1024.0,
                p.insert_bytes / 1024.0, p.access_bytes / 1024.0);
    std::fflush(stdout);
    auto& row = json.row();
    row
        .set("n", p.n)
        .set("delete_bytes", p.delete_bytes)
        .set("insert_bytes", p.insert_bytes)
        .set("access_bytes", p.access_bytes);
    p.emit_latencies(row);
  }
  std::printf("\nexpected: logarithmic growth in n for all three curves "
              "(paper Fig. 5)\n");
  return 0;
}
