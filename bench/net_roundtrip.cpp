// Loopback TCP RPC round-trip latency and throughput.
//
// Measures the hardened transport itself (DESIGN.md §11), independent of
// the scheme: echo round-trips across payload sizes (framing + syscall
// cost), a real protocol operation (access) over TCP, and the overhead the
// retry layer adds on the happy path (it should be ~zero — one mutex and a
// predicate check per call). Emits BENCH_net_roundtrip.json.
#include <memory>

#include "net/retry.h"
#include "net/tcp.h"
#include "proto/messages.h"
#include "support/bench_util.h"

namespace {

using namespace fgad::bench;

double echo_roundtrip_us(fgad::net::RpcChannel& ch, std::size_t payload_size,
                         std::size_t reps, LatencyRecorder* lat = nullptr) {
  const fgad::Bytes payload(payload_size, 0x5a);
  fgad::Stopwatch sw;
  for (std::size_t i = 0; i < reps; ++i) {
    fgad::Stopwatch op;
    auto resp = ch.roundtrip(payload);
    if (!resp || resp.value().size() != payload_size) std::abort();
    if (lat != nullptr) lat->record_ns(op.elapsed_ns());
  }
  return sw.elapsed_seconds() * 1e6 / static_cast<double>(reps);
}

}  // namespace

int main() {
  const std::size_t reps = std::max<std::size_t>(sample_count(), 50);
  std::printf("=== Transport: loopback TCP round-trip (reps = %zu) ===\n\n",
              reps);
  fgad::bench::BenchJson json("net_roundtrip");
  json.meta().set("reps", reps);

  // Echo server: isolates framing + socket cost from protocol work.
  auto echo = fgad::net::TcpServer::create(0, [](fgad::BytesView req) {
    return fgad::Bytes(req.begin(), req.end());
  });
  if (!echo) {
    std::fprintf(stderr, "tcp server failed: %s\n",
                 echo.status().to_string().c_str());
    return 1;
  }
  const std::uint16_t echo_port = echo.value()->port();

  std::printf("%-22s %14s %14s\n", "case", "latency us", "MB/s");
  for (const std::size_t size : {64ul, 4096ul, 65536ul, 1048576ul}) {
    auto ch = fgad::net::TcpChannel::connect("127.0.0.1", echo_port);
    if (!ch) return 1;
    echo_roundtrip_us(*ch.value(), size, 5);  // warm-up
    LatencyRecorder lat;
    const double us = echo_roundtrip_us(*ch.value(), size, reps, &lat);
    // Payload crosses the wire twice per round-trip.
    const double mbps = 2.0 * static_cast<double>(size) / us;
    std::printf("echo %-17s %14.2f %14.1f\n", human_bytes(
        static_cast<double>(size)).c_str(), us, mbps);
    auto& row = json.row();
    row.set("case", "echo")
        .set("payload_bytes", size)
        .set("latency_us", us)
        .set("throughput_mbps", mbps);
    lat.emit(row, "echo");
  }

  // Same echo path through RetryChannel: happy-path decoration overhead.
  {
    const std::size_t size = 4096;
    fgad::net::RetryChannel::Options opts;
    opts.retryable = [](fgad::BytesView frame) {
      return fgad::proto::retryable_request(frame);
    };
    fgad::net::RetryChannel ch(
        fgad::net::tcp_dialer("127.0.0.1", echo_port), opts);
    echo_roundtrip_us(ch, size, 5);
    LatencyRecorder lat;
    const double us = echo_roundtrip_us(ch, size, reps, &lat);
    std::printf("echo+retry %-11s %14.2f %14.1f\n",
                human_bytes(static_cast<double>(size)).c_str(), us,
                2.0 * static_cast<double>(size) / us);
    auto& row = json.row();
    row.set("case", "echo_retry")
        .set("payload_bytes", size)
        .set("latency_us", us)
        .set("throughput_mbps", 2.0 * static_cast<double>(size) / us);
    lat.emit(row, "echo");
  }
  echo.value()->stop();

  // A real protocol operation end-to-end over TCP.
  {
    Stack stack;  // direct stack builds the file natively
    const std::size_t n = std::min<std::size_t>(max_n(), 10'000);
    stack.build_file(1, n, small_item);
    auto tcp = fgad::net::TcpServer::create(0, [&stack](fgad::BytesView req) {
      return stack.server.handle(req);
    });
    if (!tcp) return 1;
    auto ch = fgad::net::TcpChannel::connect("127.0.0.1",
                                             tcp.value()->port());
    if (!ch) return 1;
    fgad::client::Client client(*ch.value(), stack.rnd);
    LatencyRecorder lat;
    fgad::Stopwatch sw;
    for (std::size_t i = 0; i < reps; ++i) {
      LatencyRecorder::Timed t(lat);
      auto got = client.access(stack.fh,
                               fgad::proto::ItemRef::id((i * 37) % n));
      if (!got) std::abort();
    }
    const double us = sw.elapsed_seconds() * 1e6 / static_cast<double>(reps);
    std::printf("access (n=%zu) %8s %14.2f %14s\n", n, "", us, "-");
    auto& row = json.row();
    row.set("case", "access").set("n", n).set("latency_us", us);
    lat.emit(row, "access");
    tcp.value()->stop();
  }

  std::printf("\nexpected: sub-ms echo latency on loopback; retry layer "
              "within noise of plain TCP.\n");
  return 0;
}
