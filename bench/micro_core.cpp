// Ablation A4: google-benchmark micro suite for the core primitives —
// chain steps, key derivation by depth, delete planning by tree size, item
// sealing by payload size. These are the constants behind Figures 5/6.
// Unless the caller passes its own --benchmark_out, results are also written
// to BENCH_micro_core.json (google-benchmark's native JSON format).
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/batch_derive.h"
#include "core/client_math.h"
#include "core/item_codec.h"
#include "core/outsource.h"
#include "core/tree.h"
#include "crypto/random.h"
#include "crypto/secure_buffer.h"

namespace {

using namespace fgad;
using core::BatchDeriver;
using core::ClientMath;
using core::ItemCodec;
using core::ModulationTree;
using core::ModulatedHashChain;
using core::NodeId;
using crypto::DeterministicRandom;
using crypto::HashAlg;
using crypto::MasterKey;
using crypto::Md;

void BM_ChainStep(benchmark::State& state) {
  const auto alg = static_cast<HashAlg>(state.range(0));
  ModulatedHashChain chain(alg);
  DeterministicRandom rnd(1);
  Md cur = rnd.random_md(chain.width());
  const Md x = rnd.random_md(chain.width());
  for (auto _ : state) {
    cur = chain.step(cur, x);
    benchmark::DoNotOptimize(cur);
  }
}
BENCHMARK(BM_ChainStep)
    ->Arg(static_cast<int>(HashAlg::kSha1))
    ->Arg(static_cast<int>(HashAlg::kSha256));

void BM_ChainEvalByDepth(benchmark::State& state) {
  ModulatedHashChain chain(HashAlg::kSha1);
  DeterministicRandom rnd(2);
  const Md k = rnd.random_md(20);
  std::vector<Md> mods(static_cast<std::size_t>(state.range(0)));
  for (auto& m : mods) m = rnd.random_md(20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.eval(k, mods));
  }
}
BENCHMARK(BM_ChainEvalByDepth)->RangeMultiplier(2)->Range(4, 32);

struct TreeFixture {
  explicit TreeFixture(std::size_t n)
      : rnd(n),
        math(HashAlg::kSha1),
        tree(ModulationTree::Config{HashAlg::kSha1, false}),
        master(MasterKey::generate(rnd, 20)) {
    tree.build(
        n, [&](NodeId) { return rnd.random_md(20); },
        [&](NodeId v) {
          return std::pair<Md, std::uint64_t>(rnd.random_md(20), v);
        });
  }
  DeterministicRandom rnd;
  ClientMath math;
  ModulationTree tree;
  MasterKey master;
};

void BM_DeriveKeyByTreeSize(benchmark::State& state) {
  TreeFixture f(static_cast<std::size_t>(state.range(0)));
  const NodeId leaf = f.tree.last_leaf();
  const auto path = f.tree.path_to(leaf);
  const Md leaf_mod = f.tree.leaf_mod(leaf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.math.derive_key(f.master.value(), path, leaf_mod));
  }
}
BENCHMARK(BM_DeriveKeyByTreeSize)->RangeMultiplier(16)->Range(1 << 6, 1 << 22);

void BM_PlanDeleteByTreeSize(benchmark::State& state) {
  TreeFixture f(static_cast<std::size_t>(state.range(0)));
  const NodeId leaf =
      static_cast<NodeId>(f.tree.node_count() / 2 + 1);  // some deep leaf
  const auto info = f.tree.delete_info_for(f.tree.is_leaf(leaf)
                                               ? leaf
                                               : f.tree.last_leaf());
  const MasterKey fresh = MasterKey::generate(f.rnd, 20);
  for (auto _ : state) {
    auto plan =
        f.math.plan_delete(info, f.master.value(), fresh.value(), f.rnd);
    if (!plan) {
      state.SkipWithError("plan_delete failed");
      return;
    }
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanDeleteByTreeSize)
    ->RangeMultiplier(16)
    ->Range(1 << 6, 1 << 22);

void BM_DeriveAllKeys(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  DeterministicRandom rnd(3);
  ClientMath math(HashAlg::kSha1);
  const Md k = rnd.random_md(20);
  std::vector<Md> links(fgad::core::node_count_for(n));
  for (std::size_t v = 1; v < links.size(); ++v) links[v] = rnd.random_md(20);
  std::vector<Md> leaf_mods(n);
  for (auto& m : leaf_mods) m = rnd.random_md(20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math.derive_all_keys(k, links, leaf_mods));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DeriveAllKeys)->Arg(1 << 10)->Arg(1 << 14);

// The parallel bulk engine against the scalar BM_DeriveAllKeys above:
// same derivation, partitioned across a thread pool. Args are
// (n, threads); threads = 1 is the inline seed-identical path.
void BM_BatchDeriveAllKeys(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t threads = static_cast<std::size_t>(state.range(1));
  DeterministicRandom rnd(3);
  const Md k = rnd.random_md(20);
  std::vector<Md> links(fgad::core::node_count_for(n));
  for (std::size_t v = 1; v < links.size(); ++v) links[v] = rnd.random_md(20);
  std::vector<Md> leaf_mods(n);
  for (auto& m : leaf_mods) m = rnd.random_md(20);
  BatchDeriver::Options opts;
  opts.threads = threads;
  const BatchDeriver deriver(HashAlg::kSha1, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deriver.derive_all_keys(k, links, leaf_mods));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BatchDeriveAllKeys)
    ->ArgsProduct({{1 << 14, 1 << 18}, {1, 2, 4, 8}});

void BM_SealByPayload(benchmark::State& state) {
  ItemCodec codec(HashAlg::kSha1);
  DeterministicRandom rnd(4);
  const Md key = rnd.random_md(20);
  const Bytes m(static_cast<std::size_t>(state.range(0)), 0x5a);
  std::uint64_t r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.seal(key, m, r++, rnd));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SealByPayload)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_OpenByPayload(benchmark::State& state) {
  ItemCodec codec(HashAlg::kSha1);
  DeterministicRandom rnd(5);
  const Md key = rnd.random_md(20);
  const Bytes m(static_cast<std::size_t>(state.range(0)), 0x5a);
  const Bytes sealed = codec.seal(key, m, 1, rnd);
  for (auto _ : state) {
    auto opened = codec.open(key, sealed);
    benchmark::DoNotOptimize(opened);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OpenByPayload)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_TreePathTo(benchmark::State& state) {
  TreeFixture f(static_cast<std::size_t>(state.range(0)));
  const NodeId leaf = f.tree.last_leaf();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tree.path_to(leaf));
  }
}
BENCHMARK(BM_TreePathTo)->Arg(1 << 10)->Arg(1 << 20);

void BM_TreeDeleteInfo(benchmark::State& state) {
  TreeFixture f(static_cast<std::size_t>(state.range(0)));
  const NodeId leaf = f.tree.last_leaf() - 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.tree.delete_info_for(f.tree.is_leaf(leaf) ? leaf
                                                    : f.tree.last_leaf()));
  }
}
BENCHMARK(BM_TreeDeleteInfo)->Arg(1 << 10)->Arg(1 << 20);

}  // namespace

// BENCHMARK_MAIN, plus default JSON output (BENCH_micro_core.json) when the
// caller did not request its own --benchmark_out destination.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_core.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_argc = static_cast<int>(args.size());
  benchmark::Initialize(&args_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
