# Benchmark targets (included from the top-level CMakeLists so that
# ${CMAKE_BINARY_DIR}/bench contains ONLY runnable binaries — the canonical
# way to run every experiment is: for b in build/bench/*; do $b; done).

function(fgad_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE fgad)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

fgad_bench(table1_complexity)
fgad_bench(table2_deletion_overhead)
fgad_bench(fig5_comm_overhead)
fgad_bench(fig6_comp_overhead)
fgad_bench(table3_wholefile)
fgad_bench(ablation_hash)
fgad_bench(ablation_transport)
fgad_bench(net_roundtrip)
fgad_bench(ablation_two_level)

fgad_bench(micro_core)
target_link_libraries(micro_core PRIVATE benchmark::benchmark)
fgad_bench(ablation_integrity)
fgad_bench(obs_overhead)
fgad_bench(wal_overhead)
fgad_bench(net_concurrency)
fgad_bench(replication_overhead)
