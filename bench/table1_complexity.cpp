// Table I reproduction: asymptotic complexity comparison, with empirical
// growth factors measured on the running system to back the claimed
// exponents.
//
//   solution         client storage   comm/comp for deletion
//   master-key       O(1)             O(n)
//   individual-key   O(n)             O(1)
//   our work         O(1)             O(log n)
//
// Measurement: one deletion at n1 = 2^10 and n2 = 2^16 (64x). An O(1) cost
// stays ~flat, an O(log n) cost grows by ~log(n2)/log(n1) = 1.6x, an O(n)
// cost grows by ~64x.
#include "baselines/individual_key.h"
#include "baselines/master_key.h"
#include "support/bench_util.h"

namespace {

using namespace fgad::bench;
using fgad::crypto::HashAlg;

struct Measured {
  double storage;  // bytes
  double comm;     // bytes for one deletion
  LatencyRecorder lat;  // wall-clock of that deletion (single sample)
};

Measured measure_master_key(std::size_t n) {
  Stack stack;
  fgad::baselines::MasterKeySolution sol(stack.channel, stack.rnd,
                                         HashAlg::kSha1, 1);
  sol.outsource(n, small_item);
  stack.channel.reset();
  Measured m;
  {
    LatencyRecorder::Timed t(m.lat);
    sol.erase_item(n / 2);
  }
  m.storage = static_cast<double>(sol.client_storage_bytes());
  m.comm = static_cast<double>(stack.channel.total_bytes());
  return m;
}

Measured measure_individual_key(std::size_t n) {
  Stack stack;
  fgad::baselines::IndividualKeySolution sol(stack.channel, stack.rnd,
                                             HashAlg::kSha1, 2);
  sol.outsource(n, small_item);
  stack.channel.reset();
  Measured m;
  {
    LatencyRecorder::Timed t(m.lat);
    sol.erase_item(n / 2);
  }
  m.storage = static_cast<double>(sol.client_storage_bytes());
  m.comm = static_cast<double>(stack.channel.total_bytes());
  return m;
}

Measured measure_ours(std::size_t n) {
  Stack stack;
  stack.build_file(1, n, small_item);
  stack.channel.reset();
  Measured m;
  {
    LatencyRecorder::Timed t(m.lat);
    stack.client.erase_item(stack.fh, fgad::proto::ItemRef::id(n / 2));
  }
  m.storage = static_cast<double>(stack.client.math().width());
  m.comm = static_cast<double>(stack.channel.total_bytes());
  return m;
}

const char* classify(double factor) {
  if (factor < 1.3) return "O(1)";
  if (factor < 8.0) return "O(log n)";
  return "O(n)";
}

}  // namespace

int main() {
  const std::size_t n1 = 1 << 10;
  const std::size_t n2 = 1 << 16;

  std::printf("=== Table I: complexity comparison ===\n\n");
  std::printf("%-16s %-16s %-26s\n", "solution", "client storage",
              "comm/comp for deletion");
  std::printf("%-16s %-16s %-26s\n", "master-key", "O(1)", "O(n)");
  std::printf("%-16s %-16s %-26s\n", "individual-key", "O(n)", "O(1)");
  std::printf("%-16s %-16s %-26s\n", "our work", "O(1)", "O(log n)");

  std::printf("\nempirical growth for one deletion, n: %zu -> %zu (%zux):\n\n",
              n1, n2, n2 / n1);
  std::printf("%-16s %14s %14s %10s %12s %14s %14s %10s %12s\n", "solution",
              "comm@n1", "comm@n2", "factor", "class", "storage@n1",
              "storage@n2", "factor", "class");

  struct Row {
    const char* name;
    Measured a, b;
  };
  const Row rows[] = {
      {"master-key", measure_master_key(n1), measure_master_key(n2)},
      {"individual-key", measure_individual_key(n1),
       measure_individual_key(n2)},
      {"our work", measure_ours(n1), measure_ours(n2)},
  };
  BenchJson json("table1_complexity");
  json.meta().set("n1", n1).set("n2", n2);
  for (const Row& r : rows) {
    const double comm_factor = r.b.comm / r.a.comm;
    const double sto_factor = r.b.storage / r.a.storage;
    std::printf("%-16s %14s %14s %9.2fx %12s %14s %14s %9.2fx %12s\n", r.name,
                human_bytes(r.a.comm).c_str(), human_bytes(r.b.comm).c_str(),
                comm_factor, classify(comm_factor),
                human_bytes(r.a.storage).c_str(),
                human_bytes(r.b.storage).c_str(), sto_factor,
                classify(sto_factor));
    auto& row = json.row();
    row.set("solution", r.name)
        .set("comm_bytes_n1", r.a.comm)
        .set("comm_bytes_n2", r.b.comm)
        .set("comm_factor", comm_factor)
        .set("comm_class", classify(comm_factor))
        .set("storage_bytes_n1", r.a.storage)
        .set("storage_bytes_n2", r.b.storage)
        .set("storage_factor", sto_factor)
        .set("storage_class", classify(sto_factor));
    r.a.lat.emit(row, "delete_n1");
    r.b.lat.emit(row, "delete_n2");
  }
  std::printf("\nexpected: the empirical classes match the analytic table "
              "above (paper Table I).\n");
  return 0;
}
