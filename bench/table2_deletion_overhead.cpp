// Table II reproduction: experimental comparison of the three two-party
// solutions for ONE deletion in a file of n items of 4 KB each.
//
//   paper (n = 10^5):            storage      comm        computation
//     master-key                 16 B         391 MB      5.5 min (incl. WAN)
//     individual-key             1.53 MB      ~0          ~0
//     key modulation (ours)      16 B         1.61 KB     0.24 ms
//
// We measure the same three columns (client key storage, client
// bytes sent+received for the deletion, client CPU time for the deletion).
// Absolute times differ from the paper (no WAN, modern AES-NI), but the
// orderings and orders of magnitude must match.
#include <chrono>
#include <memory>
#include <thread>

#include "baselines/individual_key.h"
#include "baselines/master_key.h"
#include "net/tcp.h"
#include "support/bench_util.h"

namespace {

// Per-roundtrip latency model. The paper's Table II measures deletion in a
// WAN deployment (its master-key row is "5.5 min incl. WAN"); what bulk
// deletion changes is the number of round trips (2 instead of 2m), and a
// zero-latency transport hides exactly that term. This decorator charges a
// fixed one-way-pair delay per roundtrip on top of the real TCP wire —
// both comparison modes pay it identically. FGAD_TABLE2_RTT_US picks the
// modeled RTT (default 200 us, a conservative intra-datacenter figure far
// below the paper's WAN; 0 = raw loopback).
class RttChannel final : public fgad::net::RpcChannel {
 public:
  RttChannel(fgad::net::RpcChannel& inner, std::size_t rtt_us)
      : inner_(inner), rtt_us_(rtt_us) {}

  fgad::Result<fgad::Bytes> roundtrip(fgad::BytesView request) override {
    delay();
    return inner_.roundtrip(request);
  }

  fgad::Result<std::vector<fgad::Bytes>> roundtrip_batch(
      const std::vector<fgad::Bytes>& requests) override {
    delay();  // a pipelined batch shares one round trip
    return inner_.roundtrip_batch(requests);
  }

 private:
  void delay() const {
    if (rtt_us_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(rtt_us_));
    }
  }

  fgad::net::RpcChannel& inner_;
  std::size_t rtt_us_;
};

// Two-party stack over loopback TCP (the repo's real wire transport), used
// for the batched-vs-sequential comparison below, with the modeled RTT
// stacked on top (see RttChannel).
struct TcpStack {
  fgad::cloud::CloudServer server;
  std::unique_ptr<fgad::net::TcpServer> tcp;
  std::unique_ptr<fgad::net::TcpChannel> wire;
  fgad::net::CountingChannel channel;
  RttChannel rtt;
  fgad::crypto::DeterministicRandom rnd;
  fgad::client::Client client;
  fgad::client::Client::FileHandle fh;

  TcpStack(fgad::crypto::HashAlg alg, std::uint64_t seed, std::size_t rtt_us)
      : server(fgad::cloud::CloudServer::Options{/*track_duplicates=*/false,
                                                 /*enable_integrity=*/false}),
        tcp(make_server(server)),
        wire(make_channel(*tcp)),
        channel(*wire),
        rtt(channel, rtt_us),
        rnd(seed),
        client(rtt, rnd, fgad::client::Client::Options{alg}) {}
  ~TcpStack() {
    if (tcp) {
      tcp->stop();
    }
  }

  static std::unique_ptr<fgad::net::TcpServer> make_server(
      fgad::cloud::CloudServer& s) {
    auto r = fgad::net::TcpServer::create(
        0, [&s](fgad::BytesView req) { return s.handle(req); });
    if (!r) {
      std::fprintf(stderr, "tcp server failed to start: %s\n",
                   r.status().to_string().c_str());
      std::abort();
    }
    return std::move(r.value());
  }
  static std::unique_ptr<fgad::net::TcpChannel> make_channel(
      fgad::net::TcpServer& tcp) {
    auto r = fgad::net::TcpChannel::connect("127.0.0.1", tcp.port());
    if (!r) {
      std::fprintf(stderr, "tcp connect failed: %s\n",
                   r.status().to_string().c_str());
      std::abort();
    }
    return std::move(r.value());
  }

  /// Builds a file of n items natively (bypassing the wire for setup).
  void build_file(std::uint64_t file_id, std::size_t n,
                  const std::function<fgad::Bytes(std::size_t)>& item_at) {
    fgad::core::Outsourcer out(client.math().alg(),
                               /*track_duplicates=*/false);
    fh.id = file_id;
    fh.key = fgad::crypto::MasterKey::generate(rnd, client.math().width());
    std::uint64_t counter = client.counter();
    auto built = out.build(fh.key, n, item_at, counter, rnd);
    client.set_counter(counter);
    std::vector<fgad::cloud::FileStore::IngestItem> items;
    items.reserve(built.items.size());
    for (auto& it : built.items) {
      items.push_back(fgad::cloud::FileStore::IngestItem{
          it.item_id, std::move(it.ciphertext), it.plain_size});
    }
    built.items.clear();
    built.items.shrink_to_fit();
    auto st =
        server.outsource(file_id, std::move(built.tree), std::move(items));
    if (!st) {
      std::fprintf(stderr, "bench setup failed: %s\n", st.to_string().c_str());
      std::abort();
    }
  }
};

}  // namespace

int main() {
  using namespace fgad::bench;
  using fgad::crypto::HashAlg;

  const std::size_t n = env_size("FGAD_TABLE2_N", 100'000);
  std::printf("=== Table II: deletion overhead comparison (n = %zu items x 4 "
              "KB) ===\n\n",
              n);
  std::printf("%-18s %16s %18s %18s\n", "solution", "client storage",
              "comm overhead", "computation");
  BenchJson json("table2_deletion_overhead");
  json.meta().set("n", n).set("item_bytes", 4096);

  // --- master-key solution (Section III-A) --------------------------------
  {
    Stack stack;
    fgad::baselines::MasterKeySolution sol(stack.channel, stack.rnd,
                                           HashAlg::kSha1, 1);
    if (!sol.outsource(n, item_4k)) {
      std::fprintf(stderr, "master-key outsource failed\n");
      return 1;
    }
    stack.channel.reset();
    sol.compute_timer().reset();
    LatencyRecorder lat;
    {
      LatencyRecorder::Timed t(lat);
      if (!sol.erase_item(n / 2)) {
        std::fprintf(stderr, "master-key delete failed\n");
        return 1;
      }
    }
    std::printf("%-18s %16s %18s %18s\n", "master-key",
                human_bytes(static_cast<double>(sol.client_storage_bytes()))
                    .c_str(),
                human_bytes(static_cast<double>(stack.channel.total_bytes()))
                    .c_str(),
                human_time(sol.compute_timer().total_seconds()).c_str());
    auto& row = json.row();
    row.set("solution", "master-key")
        .set("storage_bytes", sol.client_storage_bytes())
        .set("comm_bytes", stack.channel.total_bytes())
        .set("compute_seconds", sol.compute_timer().total_seconds());
    lat.emit(row, "delete");
  }

  // --- individual-key solution (Section III-B) -----------------------------
  {
    Stack stack;
    fgad::baselines::IndividualKeySolution sol(stack.channel, stack.rnd,
                                               HashAlg::kSha1, 2);
    if (!sol.outsource(n, item_4k)) {
      std::fprintf(stderr, "individual-key outsource failed\n");
      return 1;
    }
    stack.channel.reset();
    sol.compute_timer().reset();
    LatencyRecorder lat;
    {
      LatencyRecorder::Timed t(lat);
      if (!sol.erase_item(n / 2)) {
        std::fprintf(stderr, "individual-key delete failed\n");
        return 1;
      }
    }
    std::printf("%-18s %16s %18s %18s\n", "individual-key",
                human_bytes(static_cast<double>(sol.client_storage_bytes()))
                    .c_str(),
                human_bytes(static_cast<double>(stack.channel.total_bytes()))
                    .c_str(),
                human_time(sol.compute_timer().total_seconds()).c_str());
    auto& row = json.row();
    row.set("solution", "individual-key")
        .set("storage_bytes", sol.client_storage_bytes())
        .set("comm_bytes", stack.channel.total_bytes())
        .set("compute_seconds", sol.compute_timer().total_seconds());
    lat.emit(row, "delete");
  }

  // --- our work: key modulation -------------------------------------------
  {
    Stack stack;
    stack.build_file(1, n, item_4k);
    stack.channel.reset();
    stack.client.compute_timer().reset();
    LatencyRecorder lat;
    {
      LatencyRecorder::Timed t(lat);
      if (!stack.client.erase_item(stack.fh,
                                   fgad::proto::ItemRef::id(n / 2))) {
        std::fprintf(stderr, "key-modulation delete failed\n");
        return 1;
      }
    }
    // Per the paper's metric, the data item itself is not overhead; the
    // delete exchange carries the target ciphertext once for verification.
    const std::uint64_t overhead_bytes =
        stack.channel.total_bytes() - stack.client.codec().sealed_size(4096);
    std::printf("%-18s %16s %18s %18s\n", "our work",
                human_bytes(static_cast<double>(
                                stack.client.math().width()))
                    .c_str(),
                human_bytes(static_cast<double>(overhead_bytes)).c_str(),
                human_time(stack.client.compute_timer().total_seconds())
                    .c_str());
    auto& row = json.row();
    row.set("solution", "key-modulation")
        .set("storage_bytes", stack.client.math().width())
        .set("comm_bytes", overhead_bytes)
        .set("compute_seconds",
             stack.client.compute_timer().total_seconds());
    lat.emit(row, "delete");
  }

  // --- merged-cut batched deletion vs sequential ---------------------------
  //
  // m deletions of one file: sequentially (m begin/commit exchanges, m key
  // rotations) vs the merged-cut bulk path (ONE exchange, ONE rotation,
  // one delta bundle covering the union of the sibling cuts). Both stacks
  // are seeded identically, so they hold byte-identical files and the two
  // modes delete the same item ids, over the same loopback-TCP wire with
  // the same modeled RTT (see RttChannel above: round trips are what
  // batching buys, so the transport must charge for them).
  const std::size_t rtt_us = env_size("FGAD_TABLE2_RTT_US", 200);
  json.meta().set("rtt_us", rtt_us);
  std::printf("\nbatched vs sequential over loopback TCP + %zu us modeled "
              "RTT per round trip\n",
              rtt_us);
  std::printf("%-26s %10s %14s %14s %10s\n", "batched deletion", "m",
              "wall", "comm overhead", "speedup");
  TcpStack seq_stack(HashAlg::kSha1, /*seed=*/3, rtt_us);
  TcpStack bulk_stack(HashAlg::kSha1, /*seed=*/3, rtt_us);
  seq_stack.build_file(1, n, item_4k);
  bulk_stack.build_file(1, n, item_4k);
  fgad::Xoshiro256 id_rng(42);
  std::vector<std::uint64_t> used;  // ids deleted so far (both stacks)
  auto draw_ids = [&](std::size_t m) {
    std::vector<std::uint64_t> ids;
    while (ids.size() < m) {
      const std::uint64_t id = id_rng.next_below(n);
      bool dup = std::find(used.begin(), used.end(), id) != used.end();
      if (!dup) {
        used.push_back(id);
        ids.push_back(id);
      }
    }
    return ids;
  };
  for (const std::size_t m : {std::size_t{1}, std::size_t{16},
                              std::size_t{256}}) {
    if (m > n / 2) {
      continue;
    }
    const std::vector<std::uint64_t> ids = draw_ids(m);

    seq_stack.channel.reset();
    seq_stack.client.compute_timer().reset();
    fgad::Stopwatch seq_sw;
    for (const std::uint64_t id : ids) {
      if (!seq_stack.client.erase_item(seq_stack.fh,
                                       fgad::proto::ItemRef::id(id))) {
        std::fprintf(stderr, "sequential delete failed (m=%zu)\n", m);
        return 1;
      }
    }
    const double seq_wall = seq_sw.elapsed_seconds();
    const double seq_compute = seq_stack.client.compute_timer().total_seconds();
    const std::uint64_t seq_bytes = seq_stack.channel.total_bytes();

    std::vector<fgad::proto::ItemRef> refs;
    refs.reserve(m);
    for (const std::uint64_t id : ids) {
      refs.push_back(fgad::proto::ItemRef::id(id));
    }
    bulk_stack.channel.reset();
    bulk_stack.client.compute_timer().reset();
    fgad::Stopwatch bulk_sw;
    if (!bulk_stack.client.erase_items(bulk_stack.fh, refs)) {
      std::fprintf(stderr, "batched delete failed (m=%zu)\n", m);
      return 1;
    }
    const double bulk_wall = bulk_sw.elapsed_seconds();
    const double bulk_compute =
        bulk_stack.client.compute_timer().total_seconds();
    const std::uint64_t bulk_bytes = bulk_stack.channel.total_bytes();
    const double speedup = bulk_wall > 0 ? seq_wall / bulk_wall : 0;

    std::printf("%-26s %10zu %14s %14s %9s\n",
                ("key-modulation-seq-m" + std::to_string(m)).c_str(), m,
                human_time(seq_wall).c_str(),
                human_bytes(static_cast<double>(seq_bytes)).c_str(), "");
    char spd[32];
    std::snprintf(spd, sizeof(spd), "%.1fx", speedup);
    std::printf("%-26s %10zu %14s %14s %9s\n",
                ("key-modulation-batched-m" + std::to_string(m)).c_str(), m,
                human_time(bulk_wall).c_str(),
                human_bytes(static_cast<double>(bulk_bytes)).c_str(), spd);

    json.row()
        .set("solution", "key-modulation-seq-m" + std::to_string(m))
        .set("m", m)
        .set("wall_seconds", seq_wall)
        .set("comm_bytes", seq_bytes)
        .set("compute_seconds", seq_compute);
    json.row()
        .set("solution", "key-modulation-batched-m" + std::to_string(m))
        .set("m", m)
        .set("wall_seconds", bulk_wall)
        .set("comm_bytes", bulk_bytes)
        .set("compute_seconds", bulk_compute)
        .set("speedup_vs_sequential", speedup);
    if (m == 256 && speedup < 2.0) {
      std::fprintf(stderr,
                   "WARNING: batched m=256 speedup %.2fx below the 2x "
                   "acceptance floor\n",
                   speedup);
    }
  }

  std::printf("\nexpected shape (paper Table II): master-key moves hundreds "
              "of MB and burns CPU-minutes;\nindividual-key is O(1) per "
              "delete but stores %s of keys; ours stores one key and moves "
              "~KB in sub-ms.\n",
              human_bytes(static_cast<double>(n) * 16).c_str());
  return 0;
}
