// Table II reproduction: experimental comparison of the three two-party
// solutions for ONE deletion in a file of n items of 4 KB each.
//
//   paper (n = 10^5):            storage      comm        computation
//     master-key                 16 B         391 MB      5.5 min (incl. WAN)
//     individual-key             1.53 MB      ~0          ~0
//     key modulation (ours)      16 B         1.61 KB     0.24 ms
//
// We measure the same three columns (client key storage, client
// bytes sent+received for the deletion, client CPU time for the deletion).
// Absolute times differ from the paper (no WAN, modern AES-NI), but the
// orderings and orders of magnitude must match.
#include "baselines/individual_key.h"
#include "baselines/master_key.h"
#include "support/bench_util.h"

int main() {
  using namespace fgad::bench;
  using fgad::crypto::HashAlg;

  const std::size_t n = env_size("FGAD_TABLE2_N", 100'000);
  std::printf("=== Table II: deletion overhead comparison (n = %zu items x 4 "
              "KB) ===\n\n",
              n);
  std::printf("%-18s %16s %18s %18s\n", "solution", "client storage",
              "comm overhead", "computation");
  BenchJson json("table2_deletion_overhead");
  json.meta().set("n", n).set("item_bytes", 4096);

  // --- master-key solution (Section III-A) --------------------------------
  {
    Stack stack;
    fgad::baselines::MasterKeySolution sol(stack.channel, stack.rnd,
                                           HashAlg::kSha1, 1);
    if (!sol.outsource(n, item_4k)) {
      std::fprintf(stderr, "master-key outsource failed\n");
      return 1;
    }
    stack.channel.reset();
    sol.compute_timer().reset();
    LatencyRecorder lat;
    {
      LatencyRecorder::Timed t(lat);
      if (!sol.erase_item(n / 2)) {
        std::fprintf(stderr, "master-key delete failed\n");
        return 1;
      }
    }
    std::printf("%-18s %16s %18s %18s\n", "master-key",
                human_bytes(static_cast<double>(sol.client_storage_bytes()))
                    .c_str(),
                human_bytes(static_cast<double>(stack.channel.total_bytes()))
                    .c_str(),
                human_time(sol.compute_timer().total_seconds()).c_str());
    auto& row = json.row();
    row.set("solution", "master-key")
        .set("storage_bytes", sol.client_storage_bytes())
        .set("comm_bytes", stack.channel.total_bytes())
        .set("compute_seconds", sol.compute_timer().total_seconds());
    lat.emit(row, "delete");
  }

  // --- individual-key solution (Section III-B) -----------------------------
  {
    Stack stack;
    fgad::baselines::IndividualKeySolution sol(stack.channel, stack.rnd,
                                               HashAlg::kSha1, 2);
    if (!sol.outsource(n, item_4k)) {
      std::fprintf(stderr, "individual-key outsource failed\n");
      return 1;
    }
    stack.channel.reset();
    sol.compute_timer().reset();
    LatencyRecorder lat;
    {
      LatencyRecorder::Timed t(lat);
      if (!sol.erase_item(n / 2)) {
        std::fprintf(stderr, "individual-key delete failed\n");
        return 1;
      }
    }
    std::printf("%-18s %16s %18s %18s\n", "individual-key",
                human_bytes(static_cast<double>(sol.client_storage_bytes()))
                    .c_str(),
                human_bytes(static_cast<double>(stack.channel.total_bytes()))
                    .c_str(),
                human_time(sol.compute_timer().total_seconds()).c_str());
    auto& row = json.row();
    row.set("solution", "individual-key")
        .set("storage_bytes", sol.client_storage_bytes())
        .set("comm_bytes", stack.channel.total_bytes())
        .set("compute_seconds", sol.compute_timer().total_seconds());
    lat.emit(row, "delete");
  }

  // --- our work: key modulation -------------------------------------------
  {
    Stack stack;
    stack.build_file(1, n, item_4k);
    stack.channel.reset();
    stack.client.compute_timer().reset();
    LatencyRecorder lat;
    {
      LatencyRecorder::Timed t(lat);
      if (!stack.client.erase_item(stack.fh,
                                   fgad::proto::ItemRef::id(n / 2))) {
        std::fprintf(stderr, "key-modulation delete failed\n");
        return 1;
      }
    }
    // Per the paper's metric, the data item itself is not overhead; the
    // delete exchange carries the target ciphertext once for verification.
    const std::uint64_t overhead_bytes =
        stack.channel.total_bytes() - stack.client.codec().sealed_size(4096);
    std::printf("%-18s %16s %18s %18s\n", "our work",
                human_bytes(static_cast<double>(
                                stack.client.math().width()))
                    .c_str(),
                human_bytes(static_cast<double>(overhead_bytes)).c_str(),
                human_time(stack.client.compute_timer().total_seconds())
                    .c_str());
    auto& row = json.row();
    row.set("solution", "key-modulation")
        .set("storage_bytes", stack.client.math().width())
        .set("comm_bytes", overhead_bytes)
        .set("compute_seconds",
             stack.client.compute_timer().total_seconds());
    lat.emit(row, "delete");
  }

  std::printf("\nexpected shape (paper Table II): master-key moves hundreds "
              "of MB and burns CPU-minutes;\nindividual-key is O(1) per "
              "delete but stores %s of keys; ours stores one key and moves "
              "~KB in sub-ms.\n",
              human_bytes(static_cast<double>(n) * 16).c_str());
  return 0;
}
