// Figure 6 reproduction: client computation overhead (ms) for deleting,
// accessing, or inserting a data item vs. number of data items (log scale).
//
// Paper metric: the time the client spends computing for one operation
// (key derivation, delta computation, encryption/decryption), excluding
// transport. Expected shape: logarithmic growth; delete < 0.3 ms even at
// n = 10^7 on the paper's 2012-era desktop.
#include "support/sweep.h"

int main() {
  using namespace fgad::bench;
  std::printf("=== Figure 6: client computation overhead per operation (ms) "
              "===\n");
  std::printf("item size 16 B; samples/point = %zu; max n = %zu\n\n",
              sample_count(), max_n());
  std::printf("%12s %14s %14s %14s\n", "n", "delete (ms)", "insert (ms)",
              "access (ms)");
  BenchJson json("fig6_comp_overhead");
  json.meta().set("item_bytes", 16);
  for (std::size_t n : sweep_sizes()) {
    const SweepPoint p =
        run_sweep_point(n, fgad::crypto::HashAlg::kSha1, sample_count());
    std::printf("%12zu %14.4f %14.4f %14.4f\n", p.n, p.delete_comp * 1e3,
                p.insert_comp * 1e3, p.access_comp * 1e3);
    std::fflush(stdout);
    auto& row = json.row();
    row
        .set("n", p.n)
        .set("delete_seconds", p.delete_comp)
        .set("insert_seconds", p.insert_comp)
        .set("access_seconds", p.access_comp);
    p.emit_latencies(row);
  }
  std::printf("\nexpected: logarithmic growth in n for all three curves "
              "(paper Fig. 6)\n");
  return 0;
}
