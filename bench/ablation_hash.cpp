// Ablation A1: hash function / modulator width.
//
// The paper fixes SHA-1 (160-bit modulators). This ablation swaps in
// SHA-256 (256-bit modulators) and quantifies the cost: communication grows
// with the modulator width (~60%), computation by SHA-256's per-call cost.
// Security margin grows correspondingly. DESIGN.md calls this choice out.
#include "support/sweep.h"

int main() {
  using namespace fgad::bench;
  using fgad::crypto::HashAlg;

  const std::size_t n = std::min<std::size_t>(max_n(), 100'000);
  const std::size_t samples = sample_count();
  std::printf("=== Ablation A1: chain hash function (n = %zu) ===\n\n", n);
  std::printf("%-10s %14s %14s %14s %14s\n", "hash", "delete KB",
              "access KB", "delete ms", "access ms");
  BenchJson json("ablation_hash");
  json.meta().set("n", n);
  for (HashAlg alg : {HashAlg::kSha1, HashAlg::kSha256}) {
    const SweepPoint p = run_sweep_point(n, alg, samples);
    std::printf("%-10s %14.3f %14.3f %14.4f %14.4f\n",
                fgad::crypto::hash_alg_name(alg), p.delete_bytes / 1024.0,
                p.access_bytes / 1024.0, p.delete_comp * 1e3,
                p.access_comp * 1e3);
    auto& row = json.row();
    row.set("hash", fgad::crypto::hash_alg_name(alg))
        .set("delete_bytes", p.delete_bytes)
        .set("access_bytes", p.access_bytes)
        .set("delete_seconds", p.delete_comp)
        .set("access_seconds", p.access_comp);
    p.emit_latencies(row);
  }
  std::printf("\nexpected: SHA-256 costs ~1.6x the bytes (32- vs 20-byte "
              "modulators) at comparable ms; both stay O(log n).\n");
  return 0;
}
