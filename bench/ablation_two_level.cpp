// Ablation A3: Section V two-level key management vs. single-level.
//
// With the meta modulation tree the client holds ONE control key for m
// files instead of m master keys, at the price of extra work per item
// deletion: fetch the master key from the meta tree, rotate the meta entry
// (assured delete + insert). Expected: per-delete cost grows from
// O(log n) to O(log n + log m) — a constant-factor increase, while client
// key storage drops from m keys to 1.
#include "fskeys/meta.h"
#include "support/bench_util.h"

int main() {
  using namespace fgad::bench;

  const std::size_t n = std::min<std::size_t>(max_n(), 10'000);
  const std::size_t m_files = env_size("FGAD_TWO_LEVEL_FILES", 32);
  const std::size_t reps = 64;

  std::printf("=== Ablation A3: two-level (Section V) vs single-level keys "
              "===\n");
  std::printf("m = %zu files x n = %zu items each\n\n", m_files, n);
  std::printf("%-14s %16s %14s %14s %16s\n", "mode", "client keys",
              "delete KB", "delete ms", "delete wall ms");
  BenchJson json("ablation_two_level");
  json.meta().set("n", n).set("files", m_files).set("reps", reps);

  // --- single-level: client keeps one master key per file ------------------
  {
    Stack stack;
    std::vector<fgad::client::Client::FileHandle> handles;
    for (std::size_t f = 0; f < m_files; ++f) {
      stack.build_file(f + 1, n, small_item);
      handles.push_back(std::move(stack.fh));
    }
    stack.channel.reset();
    stack.client.compute_timer().reset();
    fgad::Stopwatch sw;
    LatencyRecorder lat;
    for (std::size_t i = 0; i < reps; ++i) {
      LatencyRecorder::Timed t(lat);
      auto& fh = handles[i % m_files];
      // File f holds ids [f*n, (f+1)*n); walk each file front-to-back.
      const std::uint64_t id = (i % m_files) * n + (i / m_files);
      auto st = stack.client.erase_item(fh, fgad::proto::ItemRef::id(id));
      if (!st) {
        std::fprintf(stderr, "single-level delete failed: %s\n",
                     st.to_string().c_str());
        return 1;
      }
    }
    const double wall = sw.elapsed_ms() / reps;
    std::printf("%-14s %16zu %14.3f %14.4f %16.4f\n", "single-level",
                m_files,
                static_cast<double>(stack.channel.total_bytes()) / reps /
                    1024.0,
                stack.client.compute_timer().total_ms() / reps, wall);
    auto& row = json.row();
    row.set("mode", "single-level")
        .set("client_keys", m_files)
        .set("delete_bytes",
             static_cast<double>(stack.channel.total_bytes()) / reps)
        .set("delete_compute_ms",
             stack.client.compute_timer().total_ms() / reps)
        .set("delete_wall_ms", wall);
    lat.emit(row, "delete");
  }

  // --- two-level: one control key; master keys in the meta tree ------------
  {
    Stack stack;
    fgad::fskeys::FileSystemClient fs(stack.client, 9999);
    if (!fs.init()) {
      std::fprintf(stderr, "meta init failed\n");
      return 1;
    }
    std::vector<std::uint64_t> first_ids(m_files);
    for (std::size_t f = 0; f < m_files; ++f) {
      first_ids[f] = stack.client.counter();
      auto st = fs.create_file(f + 1, n, small_item);
      if (!st) {
        std::fprintf(stderr, "create_file failed: %s\n",
                     st.to_string().c_str());
        return 1;
      }
    }
    stack.channel.reset();
    stack.client.compute_timer().reset();
    fgad::Stopwatch sw;
    LatencyRecorder lat;
    for (std::size_t i = 0; i < reps; ++i) {
      LatencyRecorder::Timed t(lat);
      const std::size_t f = i % m_files;
      auto st = fs.erase_item(
          f + 1, fgad::proto::ItemRef::id(first_ids[f] + i / m_files));
      if (!st) {
        std::fprintf(stderr, "two-level delete failed: %s\n",
                     st.to_string().c_str());
        return 1;
      }
    }
    const double wall = sw.elapsed_ms() / reps;
    std::printf("%-14s %16d %14.3f %14.4f %16.4f\n", "two-level", 1,
                static_cast<double>(stack.channel.total_bytes()) / reps /
                    1024.0,
                stack.client.compute_timer().total_ms() / reps, wall);
    auto& row = json.row();
    row.set("mode", "two-level")
        .set("client_keys", 1)
        .set("delete_bytes",
             static_cast<double>(stack.channel.total_bytes()) / reps)
        .set("delete_compute_ms",
             stack.client.compute_timer().total_ms() / reps)
        .set("delete_wall_ms", wall);
    lat.emit(row, "delete");
  }

  std::printf("\nexpected: two-level stores 1 key instead of %zu, costing a "
              "small constant factor per deletion\n(one meta access + one "
              "meta delete + one meta insert on top of the file-tree "
              "delete).\n",
              m_files);
  return 0;
}
