// Instrumentation overhead: cost of the obs layer on the hottest path.
//
// The observability subsystem (DESIGN.md §12) promises to be near-free:
// every counter/histogram touch first checks one relaxed atomic flag, so
// `Metrics::disable()` reduces instrumentation to a predictable branch.
// This bench quantifies both sides on the single hottest instrumented
// loop — per-item key derivation (chain eval + step counters) — by
// interleaving metrics-enabled and metrics-disabled rounds over the same
// pre-extracted paths and comparing median ns/op. Target: < 2% overhead
// (recorded in BENCH_obs_overhead.json meta as `overhead_pct`).
#include <vector>

#include "core/client_math.h"
#include "core/tree.h"
#include "obs/cost.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "support/bench_util.h"

namespace {

using namespace fgad::bench;
using fgad::core::ModulationTree;
using fgad::core::PathView;
using fgad::crypto::Md;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main() {
  const std::size_t n = std::min<std::size_t>(max_n(), 65'536);
  const std::size_t rounds = 14;  // 7 enabled + 7 disabled, interleaved
  std::printf("=== Observability overhead on key derivation (n = %zu) ===\n\n",
              n);

  // Build a modulation tree directly (no wire, no server) and pre-extract
  // every leaf's path so the measured loop is pure chain evaluation — the
  // instrumented hot path — with zero setup noise.
  fgad::crypto::DeterministicRandom rnd(42);
  const fgad::core::ClientMath math(fgad::crypto::HashAlg::kSha1);
  const std::size_t width = math.width();
  const Md master = rnd.random_md(width);

  ModulationTree tree(ModulationTree::Config{fgad::crypto::HashAlg::kSha1,
                                             /*track_duplicates=*/false});
  tree.build(
      n, [&rnd, width](fgad::core::NodeId) { return rnd.random_md(width); },
      [&rnd, width](fgad::core::NodeId v) {
        return std::make_pair(rnd.random_md(width),
                              static_cast<std::uint64_t>(v));
      });

  struct Leaf {
    PathView path;
    Md leaf_mod;
  };
  std::vector<Leaf> leaves;
  const std::size_t want = std::min<std::size_t>(n, 4096);
  for (std::uint64_t id : sample_ids(n, want, /*seed=*/7)) {
    const auto v = static_cast<fgad::core::NodeId>(tree.node_count() - n + id);
    leaves.push_back(Leaf{tree.path_to(v), tree.leaf_mod(v)});
  }

  std::uint8_t sink = 0;  // defeats dead-code elimination
  auto run_round = [&]() {
    fgad::Stopwatch sw;
    for (const Leaf& leaf : leaves) {
      const Md key = math.derive_key(master, leaf.path, leaf.leaf_mod);
      sink ^= key.data()[0];
    }
    return sw.elapsed_seconds() * 1e9 / static_cast<double>(leaves.size());
  };

  run_round();  // warm-up (also primes caches either way)

  BenchJson json("obs_overhead");
  std::vector<double> enabled_ns;
  std::vector<double> disabled_ns;
  for (std::size_t r = 0; r < rounds; ++r) {
    const bool on = (r % 2) == 0;  // interleave to cancel thermal drift
    if (on) {
      fgad::obs::Metrics::enable();
    } else {
      fgad::obs::Metrics::disable();
    }
    const double ns = run_round();
    (on ? enabled_ns : disabled_ns).push_back(ns);
    json.row().set("round", r).set("metrics", on ? "enabled" : "disabled")
        .set("ns_per_op", ns);
  }
  fgad::obs::Metrics::enable();

  const double on_ns = median(enabled_ns);
  const double off_ns = median(disabled_ns);
  const double overhead_pct = 100.0 * (on_ns - off_ns) / off_ns;
  std::printf("  metrics disabled: %10.1f ns/derive (median of %zu rounds)\n",
              off_ns, disabled_ns.size());
  std::printf("  metrics enabled:  %10.1f ns/derive (median of %zu rounds)\n",
              on_ns, enabled_ns.size());
  std::printf("  overhead: %+.2f%% (target < 2%%)%s\n", overhead_pct,
              sink == 0xff ? " " : "");

  json.meta()
      .set("n", n)
      .set("ops_per_round", leaves.size())
      .set("rounds", rounds)
      .set("disabled_ns_per_op", off_ns)
      .set("enabled_ns_per_op", on_ns)
      .set("overhead_pct", overhead_pct)
      .set("target_pct", 2.0);

  // Flight recorder record() cost (DESIGN.md §14): one relaxed fetch-add
  // plus five relaxed stores when metrics are on; one relaxed load and a
  // branch when off. Measured the same interleaved way.
  auto& fr = fgad::obs::FlightRecorder::instance();
  fr.configure(4096);
  constexpr std::size_t kRecords = 200'000;
  auto record_round = [&fr]() {
    fgad::Stopwatch sw;
    for (std::size_t i = 0; i < kRecords; ++i) {
      fr.record(fgad::obs::FrEvent::kMark, i, i, i);
    }
    return sw.elapsed_seconds() * 1e9 / static_cast<double>(kRecords);
  };
  record_round();  // warm-up
  std::vector<double> rec_on;
  std::vector<double> rec_off;
  for (std::size_t r = 0; r < rounds; ++r) {
    const bool on = (r % 2) == 0;
    if (on) {
      fgad::obs::Metrics::enable();
    } else {
      fgad::obs::Metrics::disable();
    }
    (on ? rec_on : rec_off).push_back(record_round());
  }
  fgad::obs::Metrics::enable();
  const double rec_on_ns = median(rec_on);
  const double rec_off_ns = median(rec_off);
  std::printf("\n  flight recorder record(): %.1f ns enabled, %.1f ns "
              "disabled\n", rec_on_ns, rec_off_ns);
  json.row()
      .set("op", "flight_record")
      .set("metrics", "enabled")
      .set("ns_per_op", rec_on_ns);
  json.row()
      .set("op", "flight_record")
      .set("metrics", "disabled")
      .set("ns_per_op", rec_off_ns);

  // Windowed telemetry (DESIGN.md §17): the rotation ticker snapshots every
  // instrument once per interval on its own thread, so the hot path itself
  // is untouched — writers still land on the same relaxed atomics. Measure
  // the derive loop with the ticker rotating at 10 ms (100× the production
  // 1 s cadence, a deliberately pessimistic stress) against ticker stopped.
  auto& win = fgad::obs::WindowedRegistry::instance();
  {
    fgad::obs::WindowedRegistry::Options wopts;
    wopts.interval_ns = 10'000'000;  // 10 ms
    wopts.slots = 64;
    win.configure(wopts);
  }
  std::vector<double> tick_on;
  std::vector<double> tick_off;
  for (std::size_t r = 0; r < rounds; ++r) {
    const bool on = (r % 2) == 0;
    if (on) {
      win.start();
    }
    const double ns = run_round();
    if (on) {
      win.stop();
    }
    (on ? tick_on : tick_off).push_back(ns);
  }
  const double tick_on_ns = median(tick_on);
  const double tick_off_ns = median(tick_off);
  const double windowed_pct = 100.0 * (tick_on_ns - tick_off_ns) / tick_off_ns;
  std::printf("\n  windowed rotation @10ms: %.1f ns/derive vs %.1f stopped "
              "(%+.2f%%, target < 3%%)\n",
              tick_on_ns, tick_off_ns, windowed_pct);
  json.row()
      .set("op", "windowed_derive")
      .set("ticker", "running")
      .set("ns_per_op", tick_on_ns);
  json.row()
      .set("op", "windowed_derive")
      .set("ticker", "stopped")
      .set("ns_per_op", tick_off_ns);

  // Sampling profiler (DESIGN.md §17): SIGPROF at the default 997 µs fires
  // ~1 kHz of signal + backtrace() work across the whole process. Same
  // interleaved derive loop, profiler armed vs disarmed.
  std::vector<double> prof_on;
  std::vector<double> prof_off;
  for (std::size_t r = 0; r < rounds; ++r) {
    const bool on = (r % 2) == 0;
    if (on) {
      fgad::obs::Profiler::instance().start({});
    }
    const double ns = run_round();
    if (on) {
      fgad::obs::Profiler::instance().stop();
    }
    (on ? prof_on : prof_off).push_back(ns);
  }
  const double prof_on_ns = median(prof_on);
  const double prof_off_ns = median(prof_off);
  const double profiler_pct = 100.0 * (prof_on_ns - prof_off_ns) / prof_off_ns;
  std::printf("  profiler @997us:         %.1f ns/derive vs %.1f stopped "
              "(%+.2f%%, target < 3%%)\n",
              prof_on_ns, prof_off_ns, profiler_pct);
  json.row()
      .set("op", "profiled_derive")
      .set("profiler", "on")
      .set("ns_per_op", prof_on_ns);
  json.row()
      .set("op", "profiled_derive")
      .set("profiler", "off")
      .set("ns_per_op", prof_off_ns);

  json.meta()
      .set("windowed_overhead_pct", windowed_pct)
      .set("profiler_overhead_pct", profiler_pct)
      .set("enabled_target_pct", 3.0);

  // Request tracing (DESIGN.md §19): tracing is opt-in per request
  // (`fgad --trace`), so the fleet steady state is a tracing-capable
  // binary with no trace active — there a Span is one thread-local load
  // and a branch, and that dormant cost is what must stay near zero on
  // the hot path (target < 3%, interleaved span-wrapped vs bare rounds).
  // The active per-span cost (two raw counter reads plus a vector push;
  // obs::now_ticks) is reported in absolute ns instead of a percentage:
  // a traced request carries a handful of spans, so its self-distortion
  // is spans x that — sub-microsecond against request latencies that
  // start in the tens of microseconds.
  auto span_round = [&]() {
    fgad::Stopwatch sw;
    for (const Leaf& leaf : leaves) {
      fgad::obs::Span span("derive_key");
      const Md key = math.derive_key(master, leaf.path, leaf.leaf_mod);
      sink ^= key.data()[0];
    }
    return sw.elapsed_seconds() * 1e9 / static_cast<double>(leaves.size());
  };
  span_round();  // warm-up
  std::vector<double> span_dormant;
  std::vector<double> span_bare;
  for (std::size_t r = 0; r < rounds; ++r) {
    const bool wrapped = (r % 2) == 0;
    (wrapped ? span_dormant : span_bare)
        .push_back(wrapped ? span_round() : run_round());
  }
  std::vector<double> span_active;
  for (std::size_t r = 0; r < rounds / 2; ++r) {
    fgad::obs::trace_begin(0xB0B0CAFEu);
    span_active.push_back(span_round());
    fgad::obs::trace_stop();
  }
  const double span_dormant_ns = median(span_dormant);
  const double span_bare_ns = median(span_bare);
  const double span_active_ns = median(span_active) - span_dormant_ns;
  const double tracing_pct =
      100.0 * (span_dormant_ns - span_bare_ns) / span_bare_ns;
  std::printf("\n  tracing dormant: %.1f ns/derive vs %.1f bare (%+.2f%%, "
              "target < 3%%)\n",
              span_dormant_ns, span_bare_ns, tracing_pct);
  std::printf("  tracing active:  +%.1f ns per recorded span\n",
              span_active_ns);
  json.row()
      .set("op", "traced_derive")
      .set("tracing", "dormant")
      .set("ns_per_op", span_dormant_ns);
  json.row()
      .set("op", "traced_derive")
      .set("tracing", "none")
      .set("ns_per_op", span_bare_ns);
  json.row()
      .set("op", "traced_derive")
      .set("tracing", "active")
      .set("ns_per_op", median(span_active));

  // Per-request cost accounting (DESIGN.md §19): ScopedCost charges the
  // scope's elapsed time to the active rid's ledger row. The client hot
  // path runs with the ledger disabled (it only turns on under --trace),
  // where a ScopedCost is one relaxed atomic load and the clock is never
  // read — that dormant cost carries the < 3% target. Enabled (the
  // server's steady state, wrapping microsecond-scale WAL/fsync/apply
  // regions, a handful per request), the absolute per-scope price is
  // what matters and is reported in ns.
  auto cost_round = [&]() {
    fgad::Stopwatch sw;
    for (const Leaf& leaf : leaves) {
      fgad::obs::ScopedCost cost(fgad::obs::CostKind::kKeyDerive);
      const Md key = math.derive_key(master, leaf.path, leaf.leaf_mod);
      sink ^= key.data()[0];
    }
    return sw.elapsed_seconds() * 1e9 / static_cast<double>(leaves.size());
  };
  cost_round();  // warm-up
  auto& ledger = fgad::obs::CostLedger::instance();
  ledger.set_enabled(false);
  std::vector<double> cost_dormant;
  std::vector<double> cost_bare;
  for (std::size_t r = 0; r < rounds; ++r) {
    const bool wrapped = (r % 2) == 0;
    (wrapped ? cost_dormant : cost_bare)
        .push_back(wrapped ? cost_round() : run_round());
  }
  std::vector<double> cost_active;
  {
    fgad::obs::RequestScope rid_scope(0xB0B0CAFEu);
    ledger.set_enabled(true);
    for (std::size_t r = 0; r < rounds / 2; ++r) {
      cost_active.push_back(cost_round());
      (void)ledger.take(0xB0B0CAFEu);  // keep the table from growing
    }
    ledger.set_enabled(false);
  }
  const double cost_dormant_ns = median(cost_dormant);
  const double cost_bare_ns = median(cost_bare);
  const double cost_active_ns = median(cost_active) - cost_dormant_ns;
  const double cost_pct =
      100.0 * (cost_dormant_ns - cost_bare_ns) / cost_bare_ns;
  std::printf("  cost dormant:    %.1f ns/derive vs %.1f bare (%+.2f%%, "
              "target < 3%%)\n",
              cost_dormant_ns, cost_bare_ns, cost_pct);
  std::printf("  cost active:     +%.1f ns per charged scope\n",
              cost_active_ns);
  json.row()
      .set("op", "cost_derive")
      .set("accounting", "dormant")
      .set("ns_per_op", cost_dormant_ns);
  json.row()
      .set("op", "cost_derive")
      .set("accounting", "none")
      .set("ns_per_op", cost_bare_ns);
  json.row()
      .set("op", "cost_derive")
      .set("accounting", "active")
      .set("ns_per_op", median(cost_active));

  json.meta()
      .set("tracing_overhead_pct", tracing_pct)
      .set("cost_overhead_pct", cost_pct)
      .set("span_active_ns", span_active_ns)
      .set("cost_active_ns", cost_active_ns);
  return 0;
}
