// Table III reproduction: whole-file access overhead.
//
// When the client fetches an entire file, the scheme's extra cost is
// (a) transferring the modulation tree and (b) deriving all data keys.
// Fetching and AES-decrypting the file itself is the baseline expense of
// any encrypted store, so the paper reports ratios:
//   comm ratio = tree bytes / file bytes           (expected < 1%)
//   comp ratio = key-derivation time / decrypt time (expected < 0.3%)
// both ~flat in n. Item size 4 KB.
//
// For n <= 10^4 we run the full wire protocol (Client::fetch_all). For the
// larger points the 4 KB x n file would not fit in memory twice, so we
// measure the identical computations in a streaming fashion: the tree and
// keys are the real structures; ciphertexts are produced and decrypted one
// at a time. The ratios are unaffected (documented in EXPERIMENTS.md).
#include "support/bench_util.h"

namespace {

using namespace fgad::bench;
using fgad::Bytes;
using fgad::core::ClientMath;
using fgad::core::ItemCodec;
using fgad::core::ModulationTree;
using fgad::core::NodeId;
using fgad::core::Outsourcer;
using fgad::crypto::HashAlg;
using fgad::crypto::MasterKey;
using fgad::crypto::Md;

struct Row {
  std::size_t n;
  double comm_ratio;
  double comp_ratio;
  double tree_bytes;
  double file_bytes;
  const char* mode;
};

Row measure_protocol(std::size_t n) {
  Stack stack(HashAlg::kSha1, n);
  stack.build_file(1, n, item_4k);
  auto fetched = stack.client.fetch_all(stack.fh);
  if (!fetched) {
    std::fprintf(stderr, "fetch_all failed: %s\n",
                 fetched.status().to_string().c_str());
    std::abort();
  }
  Row row{};
  row.n = n;
  row.tree_bytes = static_cast<double>(fetched.value().tree_bytes);
  row.file_bytes = static_cast<double>(fetched.value().file_bytes);
  row.comm_ratio = row.tree_bytes / row.file_bytes;
  row.comp_ratio =
      fetched.value().key_derive_seconds / fetched.value().decrypt_seconds;
  row.mode = "protocol";
  return row;
}

Row measure_streaming(std::size_t n) {
  fgad::crypto::DeterministicRandom rnd(n);
  ClientMath math(HashAlg::kSha1);
  ItemCodec codec(HashAlg::kSha1);
  const std::size_t w = math.width();
  MasterKey master = MasterKey::generate(rnd, w);

  // Real modulator arrays for a tree of n leaves.
  const std::size_t nodes = fgad::core::node_count_for(n);
  std::vector<Md> links(nodes);
  for (NodeId v = 1; v < nodes; ++v) {
    links[v] = rnd.random_md(w);
  }
  std::vector<Md> leaf_mods(n);
  for (auto& m : leaf_mods) {
    m = rnd.random_md(w);
  }

  // Numerator timing: derive every data key from the tree (one DFS pass,
  // identical to Client::fetch_all's derivation).
  fgad::Stopwatch sw;
  const std::vector<Md> keys = math.derive_all_keys(master.value(), links,
                                                    leaf_mods);
  const double derive_s = sw.elapsed_seconds();

  // Denominator timing: AES-decrypt the n sealed 4 KB items (sealing is
  // setup, not timed).
  const Bytes payload = item_4k(1);
  double decrypt_s = 0;
  double file_bytes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Bytes sealed = codec.seal(keys[i], payload, i, rnd);
    file_bytes += static_cast<double>(sealed.size());
    fgad::Stopwatch d;
    auto opened = codec.open(keys[i], sealed);
    decrypt_s += d.elapsed_seconds();
    if (!opened) {
      std::fprintf(stderr, "stream decrypt failed\n");
      std::abort();
    }
  }

  ModulationTree tree(ModulationTree::Config{HashAlg::kSha1, false});
  tree.build(
      n, [&](NodeId v) { return links[v]; },
      [&](NodeId v) {
        return std::pair<Md, std::uint64_t>(leaf_mods[v - (n - 1)], v);
      });

  Row row{};
  row.n = n;
  row.tree_bytes = static_cast<double>(tree.serialized_size());
  row.file_bytes = file_bytes;
  row.comm_ratio = row.tree_bytes / file_bytes;
  row.comp_ratio = derive_s / decrypt_s;
  row.mode = "streaming";
  return row;
}

}  // namespace

int main() {
  std::printf("=== Table III: whole-file access overhead (4 KB items) ===\n\n");
  std::printf("%10s %12s %12s %14s %14s %12s\n", "n", "comm ratio",
              "comp ratio", "tree bytes", "file bytes", "mode");

  const std::size_t cap = std::min<std::size_t>(max_n(), 1'000'000);
  for (std::size_t n = 1'000; n <= cap; n *= 10) {
    const Row row = n <= 10'000 ? measure_protocol(n) : measure_streaming(n);
    std::printf("%10zu %11.4f%% %11.4f%% %14s %14s %12s\n", row.n,
                row.comm_ratio * 100.0, row.comp_ratio * 100.0,
                human_bytes(row.tree_bytes).c_str(),
                human_bytes(row.file_bytes).c_str(), row.mode);
    std::fflush(stdout);
  }
  std::printf("\nexpected (paper Table III): comm ratio < 1%%, comp ratio < "
              "0.3%%, both roughly flat in n.\n");
  return 0;
}
