// Table III reproduction: whole-file access overhead.
//
// When the client fetches an entire file, the scheme's extra cost is
// (a) transferring the modulation tree and (b) deriving all data keys.
// Fetching and AES-decrypting the file itself is the baseline expense of
// any encrypted store, so the paper reports ratios:
//   comm ratio = tree bytes / file bytes           (expected < 1%)
//   comp ratio = key-derivation time / decrypt time (expected < 0.3%)
// both ~flat in n. Item size 4 KB.
//
// For n <= 10^4 we run the full wire protocol (Client::fetch_all). For the
// larger points the 4 KB x n file would not fit in memory twice, so we
// measure the identical computations in a streaming fashion: the tree and
// keys are the real structures; ciphertexts are produced and decrypted one
// at a time. The ratios are unaffected (documented in EXPERIMENTS.md).
//
// A second sweep exercises the parallel bulk engine (BatchDeriver +
// ThreadPool): whole-file outsource (derive + seal) and whole-file fetch
// (derive + open) at FGAD_SWEEP_N items across thread counts {1, 2, 4, 8},
// reporting wall-clock seconds and speedup over the 1-thread run. Output is
// byte-identical at every thread count (see DESIGN.md Section 10), so this
// measures pure scheduling gain; on a single-core host expect ~1.0x.
#include "core/batch_derive.h"
#include "support/bench_util.h"

namespace {

using namespace fgad::bench;
using fgad::Bytes;
using fgad::core::ClientMath;
using fgad::core::ItemCodec;
using fgad::core::ModulationTree;
using fgad::core::NodeId;
using fgad::core::Outsourcer;
using fgad::crypto::HashAlg;
using fgad::crypto::MasterKey;
using fgad::crypto::Md;

struct Row {
  std::size_t n;
  double comm_ratio;
  double comp_ratio;
  double tree_bytes;
  double file_bytes;
  const char* mode;
};

Row measure_protocol(std::size_t n, LatencyRecorder& lat) {
  Stack stack(HashAlg::kSha1, n);
  stack.build_file(1, n, item_4k);
  LatencyRecorder::Timed t(lat);
  auto fetched = stack.client.fetch_all(stack.fh);
  if (!fetched) {
    std::fprintf(stderr, "fetch_all failed: %s\n",
                 fetched.status().to_string().c_str());
    std::abort();
  }
  Row row{};
  row.n = n;
  row.tree_bytes = static_cast<double>(fetched.value().tree_bytes);
  row.file_bytes = static_cast<double>(fetched.value().file_bytes);
  row.comm_ratio = row.tree_bytes / row.file_bytes;
  row.comp_ratio =
      fetched.value().key_derive_seconds / fetched.value().decrypt_seconds;
  row.mode = "protocol";
  return row;
}

Row measure_streaming(std::size_t n) {
  fgad::crypto::DeterministicRandom rnd(n);
  ClientMath math(HashAlg::kSha1);
  ItemCodec codec(HashAlg::kSha1);
  const std::size_t w = math.width();
  MasterKey master = MasterKey::generate(rnd, w);

  // Real modulator arrays for a tree of n leaves.
  const std::size_t nodes = fgad::core::node_count_for(n);
  std::vector<Md> links(nodes);
  for (NodeId v = 1; v < nodes; ++v) {
    links[v] = rnd.random_md(w);
  }
  std::vector<Md> leaf_mods(n);
  for (auto& m : leaf_mods) {
    m = rnd.random_md(w);
  }

  // Numerator timing: derive every data key from the tree (one DFS pass,
  // identical to Client::fetch_all's derivation).
  fgad::Stopwatch sw;
  const std::vector<Md> keys = math.derive_all_keys(master.value(), links,
                                                    leaf_mods);
  const double derive_s = sw.elapsed_seconds();

  // Denominator timing: AES-decrypt the n sealed 4 KB items (sealing is
  // setup, not timed).
  const Bytes payload = item_4k(1);
  double decrypt_s = 0;
  double file_bytes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Bytes sealed = codec.seal(keys[i], payload, i, rnd);
    file_bytes += static_cast<double>(sealed.size());
    fgad::Stopwatch d;
    auto opened = codec.open(keys[i], sealed);
    decrypt_s += d.elapsed_seconds();
    if (!opened) {
      std::fprintf(stderr, "stream decrypt failed\n");
      std::abort();
    }
  }

  ModulationTree tree(ModulationTree::Config{HashAlg::kSha1, false});
  tree.build(
      n, [&](NodeId v) { return links[v]; },
      [&](NodeId v) {
        return std::pair<Md, std::uint64_t>(leaf_mods[v - (n - 1)], v);
      });

  Row row{};
  row.n = n;
  row.tree_bytes = static_cast<double>(tree.serialized_size());
  row.file_bytes = file_bytes;
  row.comm_ratio = row.tree_bytes / file_bytes;
  row.comp_ratio = derive_s / decrypt_s;
  row.mode = "streaming";
  return row;
}

struct ThreadRow {
  std::size_t threads;
  double outsource_seconds;  // derive + seal the whole file
  double fetch_seconds;      // derive + open the whole file
};

// Whole-file outsource + fetch of n 16 B items through the parallel bulk
// engine at a given thread count. Native structures (no wire) so the
// measurement isolates the derive/seal/open computation the engine
// parallelizes.
ThreadRow measure_threads(std::size_t n, std::size_t threads) {
  using fgad::core::BatchDeriver;
  fgad::crypto::DeterministicRandom rnd(n);
  fgad::core::ClientMath math(HashAlg::kSha1);
  MasterKey master = MasterKey::generate(rnd, math.width());
  Outsourcer out(HashAlg::kSha1, /*track_duplicates=*/false, threads);

  std::uint64_t counter = 0;
  fgad::Stopwatch sw;
  auto built = out.build(master, n, small_item, counter, rnd);
  ThreadRow row{};
  row.threads = threads;
  row.outsource_seconds = sw.elapsed_seconds();

  const std::size_t nodes = built.tree.node_count();
  std::vector<Md> links(nodes);
  for (NodeId v = 1; v < nodes; ++v) {
    links[v] = built.tree.link_mod(v);
  }
  std::vector<Md> leaf_mods(n);
  for (std::size_t i = 0; i < n; ++i) {
    leaf_mods[i] = built.tree.leaf_mod(static_cast<NodeId>(n - 1 + i));
  }
  BatchDeriver deriver(HashAlg::kSha1, BatchDeriver::Options{threads});
  std::vector<BatchDeriver::OpenTask> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks[i] = BatchDeriver::OpenTask{i, built.items[i].ciphertext,
                                      built.items[i].item_id};
  }

  sw.reset();
  const std::vector<Md> keys =
      deriver.derive_all_keys(master.value(), links, leaf_mods);
  auto opened = deriver.open_all(keys, tasks);
  row.fetch_seconds = sw.elapsed_seconds();
  if (!opened) {
    std::fprintf(stderr, "thread-sweep fetch failed: %s\n",
                 opened.status().to_string().c_str());
    std::abort();
  }
  return row;
}

}  // namespace

int main() {
  std::printf("=== Table III: whole-file access overhead (4 KB items) ===\n\n");
  std::printf("%10s %12s %12s %14s %14s %12s\n", "n", "comm ratio",
              "comp ratio", "tree bytes", "file bytes", "mode");

  BenchJson json("table3_wholefile");
  const std::size_t cap = std::min<std::size_t>(max_n(), 1'000'000);
  for (std::size_t n = 1'000; n <= cap; n *= 10) {
    LatencyRecorder lat;
    const Row row =
        n <= 10'000 ? measure_protocol(n, lat) : measure_streaming(n);
    std::printf("%10zu %11.4f%% %11.4f%% %14s %14s %12s\n", row.n,
                row.comm_ratio * 100.0, row.comp_ratio * 100.0,
                human_bytes(row.tree_bytes).c_str(),
                human_bytes(row.file_bytes).c_str(), row.mode);
    std::fflush(stdout);
    auto& jrow = json.row();
    jrow.set("kind", "overhead")
        .set("n", row.n)
        .set("comm_ratio", row.comm_ratio)
        .set("comp_ratio", row.comp_ratio)
        .set("tree_bytes", row.tree_bytes)
        .set("file_bytes", row.file_bytes)
        .set("mode", row.mode);
    if (lat.count() > 0) {
      lat.emit(jrow, "fetch_all");
    }
  }
  std::printf("\nexpected (paper Table III): comm ratio < 1%%, comp ratio < "
              "0.3%%, both roughly flat in n.\n");

  // --- parallel bulk-engine thread sweep ---------------------------------
  const std::size_t sweep_n = std::min<std::size_t>(
      env_size("FGAD_SWEEP_N", std::size_t{1} << 18), max_n());
  std::printf("\n=== Parallel bulk engine: whole-file outsource + fetch "
              "(n = %zu, 16 B items) ===\n",
              sweep_n);
  std::printf("host hardware_concurrency = %u\n\n",
              std::thread::hardware_concurrency());
  std::printf("%8s %16s %16s %12s %12s\n", "threads", "outsource (s)",
              "fetch (s)", "outsrc spd", "fetch spd");
  json.meta()
      .set("sweep_n", sweep_n)
      .set("hardware_concurrency", std::thread::hardware_concurrency());
  double base_outsource = 0;
  double base_fetch = 0;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    const ThreadRow r = measure_threads(sweep_n, threads);
    if (threads == 1) {
      base_outsource = r.outsource_seconds;
      base_fetch = r.fetch_seconds;
    }
    const double so = base_outsource / r.outsource_seconds;
    const double sf = base_fetch / r.fetch_seconds;
    std::printf("%8zu %16.3f %16.3f %11.2fx %11.2fx\n", r.threads,
                r.outsource_seconds, r.fetch_seconds, so, sf);
    std::fflush(stdout);
    json.row()
        .set("kind", "thread_sweep")
        .set("threads", r.threads)
        .set("n", sweep_n)
        .set("outsource_seconds", r.outsource_seconds)
        .set("fetch_seconds", r.fetch_seconds)
        .set("outsource_speedup", so)
        .set("fetch_speedup", sf);
  }
  std::printf("\nexpected: near-linear speedup up to the physical core "
              "count; output is byte-identical at every thread count.\n");
  return 0;
}
