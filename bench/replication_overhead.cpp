// Replication tax (DESIGN.md §18): per-mutation latency of the paper's
// delete / insert operations against a DurableServer in three replication
// configurations —
//
//   single       no replication; fsync-per-ACK (the PR-4 baseline)
//   repl-async   WAL shipped to a loopback-TCP backup, ACK after local fsync
//   repl-sync    ACK additionally gated on the backup's durable ReplAck
//
// The backup is a real second DurableServer behind a TCP loopback server,
// so the sync row pays genuine wire framing + a second fsync on the
// follower. The headline number is sync_over_single_p95: the ship round
// trip overlaps the local fsync (the GroupCommitter gate runs after the
// flush), so the target on loopback is <= 2x the single-node p95. That
// overlap needs a second core — on a single-CPU host the primary's and
// follower's apply+fsync serialize through the scheduler and ~2x plus
// context-switch overhead is the physical floor (meta records cores so
// readers can tell which regime a snapshot was taken in).
//
// As with wal_overhead, TMPDIR is often tmpfs in CI: absolute latencies
// are a lower bound for real disks, the mode *ratios* are the portable
// result.
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cloud/recovery.h"
#include "cloud/replica.h"
#include "core/outsource.h"
#include "net/tcp.h"
#include "support/bench_util.h"

namespace fgad::bench {
namespace {

struct Mode {
  const char* name;
  bool replicate;
  cloud::ReplAckMode ack;
};

constexpr Mode kModes[] = {
    {"single", false, cloud::ReplAckMode::kOff},
    {"repl-async", true, cloud::ReplAckMode::kAsync},
    {"repl-sync", true, cloud::ReplAckMode::kSync},
};

std::string fresh_dir(const char* mode, const char* side) {
  const char* base = std::getenv("TMPDIR");
  std::string d = (base != nullptr && *base != '\0') ? base : "/tmp";
  d += "/fgad_repl_bench_" + std::string(mode) + "_" + side + "." +
       std::to_string(::getpid());
  ::mkdir(d.c_str(), 0755);
  return d;
}

void remove_dir(const std::string& dir) {
  for (int epoch = 0; epoch < 8; ++epoch) {
    char name[64];
    std::snprintf(name, sizeof(name), "checkpoint-%06d.ckpt", epoch);
    ::unlink((dir + "/" + name).c_str());
    std::snprintf(name, sizeof(name), "wal-%06d.log", epoch);
    ::unlink((dir + "/" + name).c_str());
  }
  ::rmdir(dir.c_str());
}

Result<std::unique_ptr<cloud::DurableServer>> open_node(
    const std::string& dir, cloud::ReplRole role) {
  cloud::DurableServer::Options dopts;
  dopts.dir = dir;
  dopts.wal_sync_ms = 0;         // fsync before every ACK
  dopts.checkpoint_every_n = 0;  // measure the log + ship, not checkpoints
  dopts.role = role;
  dopts.server = cloud::CloudServer::Options{/*track_duplicates=*/false,
                                             /*enable_integrity=*/false};
  return cloud::DurableServer::open(dopts);
}

void run() {
  const std::size_t n = std::min<std::size_t>(max_n(), 4096);
  const std::size_t samples = sample_count();
  BenchJson json("replication_overhead");
  json.meta()
      .set("n", n)
      .set("item_bytes", 16)
      .set("cores", std::thread::hardware_concurrency())
      .set("note",
           "backup behind real TCP loopback; sync gates the ACK on the "
           "follower's durable ReplAck; the <=2x sync target assumes >=2 "
           "cores so the follower overlaps the local fsync");

  std::printf(
      "Replication overhead: %zu-item file, %zu insert+delete pairs/mode\n\n",
      n, samples);
  std::printf("%-12s %10s %10s %10s %12s %10s %10s %10s\n", "mode", "del p50",
              "del p95", "del p99", "", "ins p50", "ins p95", "ins p99");

  double single_p95_us = 0;
  double sync_p95_us = 0;

  for (const Mode& mode : kModes) {
    const std::string pdir = fresh_dir(mode.name, "primary");
    const std::string bdir = fresh_dir(mode.name, "backup");

    // Follower first: a real DurableServer on its own state dir, served
    // over genuine loopback TCP so the ship path pays wire framing.
    std::unique_ptr<cloud::DurableServer> backup;
    std::unique_ptr<net::TcpServer> backup_srv;
    if (mode.replicate) {
      auto b = open_node(bdir, cloud::ReplRole::kBackup);
      if (!b) {
        std::fprintf(stderr, "backup open failed: %s\n",
                     b.status().to_string().c_str());
        std::abort();
      }
      backup = std::move(b).value();
      auto srv = net::TcpServer::create(0, [&backup](BytesView req) {
        return backup->handle(req);
      });
      if (!srv) {
        std::fprintf(stderr, "backup tcp server failed: %s\n",
                     srv.status().to_string().c_str());
        std::abort();
      }
      backup_srv = std::move(srv).value();
    }

    auto p = open_node(pdir, cloud::ReplRole::kPrimary);
    if (!p) {
      std::fprintf(stderr, "primary open failed: %s\n",
                   p.status().to_string().c_str());
      std::abort();
    }
    std::unique_ptr<cloud::DurableServer> primary = std::move(p).value();

    std::shared_ptr<cloud::Replicator> repl;
    if (mode.replicate) {
      cloud::Replicator::Options ropts;
      ropts.mode = mode.ack;
      const std::uint16_t port = backup_srv->port();
      repl = std::make_shared<cloud::Replicator>(
          [port]() -> Result<std::unique_ptr<net::RpcChannel>> {
            auto ch = net::TcpChannel::connect("127.0.0.1", port);
            if (!ch) {
              return ch.error();
            }
            return std::unique_ptr<net::RpcChannel>(std::move(ch).value());
          },
          ropts);
      primary->attach_replicator(repl, mode.ack);
    }

    net::DirectChannel channel(
        [&primary](BytesView req) { return primary->handle(req); });
    crypto::DeterministicRandom rnd(7);
    client::Client::Options copts;
    copts.alg = crypto::HashAlg::kSha1;
    copts.tag_mutations = true;  // production durable-mode configuration
    client::Client client(channel, rnd, copts);

    // Build the base file natively (setup is not the measured operation).
    client::Client::FileHandle fh;
    {
      core::Outsourcer out(copts.alg, /*track_duplicates=*/false);
      fh.id = 1;
      fh.key = crypto::MasterKey::generate(rnd, client.math().width());
      std::uint64_t counter = 0;
      auto built = out.build(fh.key, n, small_item, counter, rnd);
      client.set_counter(counter);
      std::vector<cloud::FileStore::IngestItem> items;
      items.reserve(built.items.size());
      for (auto& it : built.items) {
        items.push_back(cloud::FileStore::IngestItem{
            it.item_id, std::move(it.ciphertext), it.plain_size});
      }
      auto st = primary->server().outsource(fh.id, std::move(built.tree),
                                            std::move(items));
      if (!st) {
        std::fprintf(stderr, "bench setup failed: %s\n",
                     st.to_string().c_str());
        std::abort();
      }
    }
    // The natively-built file bypassed the WAL, so the backup could never
    // catch up by log shipping alone; one checkpoint makes the primary's
    // position durable and the first ship falls back to a snapshot.
    if (auto st = primary->checkpoint(); !st) {
      std::fprintf(stderr, "checkpoint failed: %s\n", st.to_string().c_str());
      std::abort();
    }

    // Warmup: the natively-built file forces the first post-checkpoint
    // ship down the snapshot path — do one unmeasured pair so that
    // one-time image transfer never lands inside a sample, then wait for
    // the stream to reach steady state.
    {
      auto r = client.insert(fh, small_item(n));
      if (r) {
        (void)client.erase_item(fh, proto::ItemRef::id(r.value()));
      }
      if (repl) {
        for (int spin = 0; spin < 2000 && repl->acked_lsn() < primary->last_lsn();
             ++spin) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    }

    // Measured loop: insert one item, then delete it — file size stays n.
    LatencyRecorder del_lat;
    LatencyRecorder ins_lat;
    Stopwatch wall;
    for (std::size_t i = 0; i < samples; ++i) {
      std::uint64_t id = 0;
      {
        LatencyRecorder::Timed t(ins_lat);
        auto r = client.insert(fh, small_item(n + i));
        if (!r) {
          std::fprintf(stderr, "insert failed: %s\n",
                       r.status().to_string().c_str());
          std::abort();
        }
        id = r.value();
      }
      {
        LatencyRecorder::Timed t(del_lat);
        auto st = client.erase_item(fh, proto::ItemRef::id(id));
        if (!st) {
          std::fprintf(stderr, "delete failed: %s\n", st.to_string().c_str());
          std::abort();
        }
      }
    }
    const double seconds = wall.elapsed_seconds();

    std::printf(
        "%-12s %9.1fus %9.1fus %9.1fus %12s %8.1fus %8.1fus %8.1fus\n",
        mode.name, del_lat.quantile_us(0.50), del_lat.quantile_us(0.95),
        del_lat.quantile_us(0.99), "", ins_lat.quantile_us(0.50),
        ins_lat.quantile_us(0.95), ins_lat.quantile_us(0.99));

    if (std::string(mode.name) == "single") {
      single_p95_us = del_lat.quantile_us(0.95);
    } else if (std::string(mode.name) == "repl-sync") {
      sync_p95_us = del_lat.quantile_us(0.95);
    }

    auto& row = json.row();
    row.set("mode", mode.name)
        .set("replicated", mode.replicate ? 1 : 0)
        .set("ack_mode", cloud::repl_ack_mode_name(mode.ack))
        .set("n", n)
        .set("pairs", samples)
        .set("mutations_per_s",
             seconds > 0 ? 2.0 * static_cast<double>(samples) / seconds : 0.0);
    del_lat.emit(row, "delete");
    ins_lat.emit(row, "insert");
    if (mode.replicate && repl) {
      row.set("acked_lsn", repl->acked_lsn())
          .set("primary_lsn", primary->last_lsn());
    }

    // Teardown in dependency order: shipper before the follower it dials.
    if (repl) {
      repl->stop();
    }
    primary.reset();
    backup_srv.reset();
    backup.reset();
    remove_dir(pdir);
    remove_dir(bdir);
  }

  // The headline ratio the CI perf gate watches: sync-mode deletion p95
  // over the single-node fsync baseline, both on loopback. Target <= 2x —
  // the follower round trip overlaps the local fsync, it does not stack.
  const double ratio =
      single_p95_us > 0 ? sync_p95_us / single_p95_us : 0.0;
  std::printf("\nsync/single delete p95 ratio: %.2fx (target <= 2x)\n", ratio);
  json.meta()
      .set("single_delete_p95_us", single_p95_us)
      .set("sync_delete_p95_us", sync_p95_us)
      .set("sync_over_single_p95", ratio);
}

}  // namespace
}  // namespace fgad::bench

int main() {
  fgad::bench::run();
  return 0;
}
