// Durability tax of the WAL (DESIGN.md §13): per-mutation latency of the
// paper's delete / insert operations against a DurableServer in its three
// sync modes —
//
//   off      enable_wal = false   checkpoint-only durability (no log)
//   fsync    --wal-sync-ms 0      fsync before every ACK (strict)
//   group    --wal-sync-ms 2      group commit, 2 ms window
//
// Reported per mode: p50/p95/p99 latency for erase_item and insert through
// the real wire protocol, plus mean throughput. The state directory lives
// in $TMPDIR, so on a tmpfs the fsync numbers are a lower bound for real
// disks — the *relative* cost of the modes is the portable result.
//
// Caveat: this bench drives ONE client, so group commit shows its worst
// face — every mutation waits out the sync window alone. The window only
// pays off when concurrent clients share a flush; read the group row as
// "latency ceiling per mutation", not as typical latency.
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "cloud/recovery.h"
#include "core/outsource.h"
#include "obs/metrics.h"
#include "support/bench_util.h"

namespace fgad::bench {
namespace {

struct Mode {
  const char* name;
  bool enable_wal;
  int sync_ms;
};

constexpr Mode kModes[] = {
    {"off", false, 0},
    {"fsync", true, 0},
    {"group-2ms", true, 2},
};

std::string fresh_dir(const char* mode) {
  const char* base = std::getenv("TMPDIR");
  std::string d = (base != nullptr && *base != '\0') ? base : "/tmp";
  d += "/fgad_wal_bench_" + std::string(mode) + "." +
       std::to_string(::getpid());
  ::mkdir(d.c_str(), 0755);
  return d;
}

void remove_dir(const std::string& dir) {
  for (const char* f : {"checkpoint-000000.ckpt", "checkpoint-000001.ckpt",
                        "checkpoint-000002.ckpt", "wal-000000.log",
                        "wal-000001.log", "wal-000002.log"}) {
    ::unlink((dir + "/" + f).c_str());
  }
  ::rmdir(dir.c_str());
}

void run() {
  const std::size_t n = std::min<std::size_t>(max_n(), 4096);
  const std::size_t samples = sample_count();
  BenchJson json("wal_overhead");
  json.meta().set("n", n).set("item_bytes", 16).set(
      "note", "latency through the wire protocol; state dir in TMPDIR");

  std::printf("WAL overhead: %zu-item file, %zu delete+insert pairs/mode\n\n",
              n, samples);
  std::printf("%-10s %10s %10s %10s %12s %10s %10s %10s\n", "mode",
              "del p50", "del p95", "del p99", "", "ins p50", "ins p95",
              "ins p99");

  for (const Mode& mode : kModes) {
    const std::string dir = fresh_dir(mode.name);
    cloud::DurableServer::Options dopts;
    dopts.dir = dir;
    dopts.enable_wal = mode.enable_wal;
    dopts.wal_sync_ms = mode.sync_ms;
    dopts.checkpoint_every_n = 0;  // measure the log, not checkpoints
    dopts.server = cloud::CloudServer::Options{/*track_duplicates=*/false,
                                               /*enable_integrity=*/false};
    auto opened = cloud::DurableServer::open(dopts);
    if (!opened) {
      std::fprintf(stderr, "cannot open state dir %s: %s\n", dir.c_str(),
                   opened.status().to_string().c_str());
      std::abort();
    }
    cloud::DurableServer& ds = *opened.value();

    net::DirectChannel channel([&ds](BytesView req) { return ds.handle(req); });
    crypto::DeterministicRandom rnd(7);
    client::Client::Options copts;
    copts.alg = crypto::HashAlg::kSha1;
    copts.tag_mutations = true;  // production durable-mode configuration
    client::Client client(channel, rnd, copts);

    // Build the base file natively (setup is not the measured operation),
    // then checkpoint so the measured mutations start from durable state.
    client::Client::FileHandle fh;
    {
      core::Outsourcer out(copts.alg, /*track_duplicates=*/false);
      fh.id = 1;
      fh.key = crypto::MasterKey::generate(rnd, client.math().width());
      std::uint64_t counter = 0;
      auto built = out.build(fh.key, n, small_item, counter, rnd);
      client.set_counter(counter);
      std::vector<cloud::FileStore::IngestItem> items;
      items.reserve(built.items.size());
      for (auto& it : built.items) {
        items.push_back(cloud::FileStore::IngestItem{
            it.item_id, std::move(it.ciphertext), it.plain_size});
      }
      auto st = ds.server().outsource(fh.id, std::move(built.tree),
                                      std::move(items));
      if (!st) {
        std::fprintf(stderr, "bench setup failed: %s\n",
                     st.to_string().c_str());
        std::abort();
      }
    }
    if (auto st = ds.checkpoint(); !st) {
      std::fprintf(stderr, "checkpoint failed: %s\n", st.to_string().c_str());
      std::abort();
    }

    // Measured loop: insert one item, then delete it — file size stays n,
    // each iteration costs one insert commit + one delete commit.
    LatencyRecorder del_lat;
    LatencyRecorder ins_lat;
    Stopwatch wall;
    for (std::size_t i = 0; i < samples; ++i) {
      std::uint64_t id = 0;
      {
        LatencyRecorder::Timed t(ins_lat);
        auto r = client.insert(fh, small_item(n + i));
        if (!r) {
          std::fprintf(stderr, "insert failed: %s\n",
                       r.status().to_string().c_str());
          std::abort();
        }
        id = r.value();
      }
      {
        LatencyRecorder::Timed t(del_lat);
        auto st = client.erase_item(fh, proto::ItemRef::id(id));
        if (!st) {
          std::fprintf(stderr, "delete failed: %s\n",
                       st.to_string().c_str());
          std::abort();
        }
      }
    }
    const double seconds = wall.elapsed_seconds();

    std::printf("%-10s %9.1fus %9.1fus %9.1fus %12s %8.1fus %8.1fus %8.1fus\n",
                mode.name, del_lat.quantile_us(0.50),
                del_lat.quantile_us(0.95), del_lat.quantile_us(0.99), "",
                ins_lat.quantile_us(0.50), ins_lat.quantile_us(0.95),
                ins_lat.quantile_us(0.99));

    auto& row = json.row();
    row.set("mode", mode.name)
        .set("wal", mode.enable_wal ? 1 : 0)
        .set("sync_ms", mode.sync_ms)
        .set("n", n)
        .set("pairs", samples)
        .set("mutations_per_s",
             seconds > 0 ? 2.0 * static_cast<double>(samples) / seconds : 0.0);
    del_lat.emit(row, "delete");
    ins_lat.emit(row, "insert");

    opened.value().reset();
    remove_dir(dir);
  }

  // The durability instrumentation (DESIGN.md §14) watched the same run
  // from the inside: embed the registry's WAL histograms in the meta
  // block so a snapshot records both the black-box and white-box view.
  // Meta is informational — bench_compare only gates on rows.
  const auto append_snap =
      obs::Registry::instance().histogram("fgad_wal_append_ns").snapshot();
  const auto fsync_snap =
      obs::Registry::instance().histogram("fgad_wal_fsync_ns").snapshot();
  json.meta()
      .set("registry_wal_append_count", append_snap.count)
      .set("registry_wal_append_p50_ns", append_snap.p50)
      .set("registry_wal_append_p95_ns", append_snap.p95)
      .set("registry_wal_append_p99_ns", append_snap.p99)
      .set("registry_wal_fsync_count", fsync_snap.count)
      .set("registry_wal_fsync_p50_ns", fsync_snap.p50)
      .set("registry_wal_fsync_p95_ns", fsync_snap.p95)
      .set("registry_wal_fsync_p99_ns", fsync_snap.p99);
}

}  // namespace
}  // namespace fgad::bench

int main() {
  fgad::bench::run();
  return 0;
}
