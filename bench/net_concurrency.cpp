// Reactor-server concurrency sweep (DESIGN.md §15): throughput and batch
// latency of pipelined mutations against the epoll reactor + cross-
// connection WAL group commit, over real loopback sockets.
//
// Sweep: {1, 8, 64, 256} concurrent client connections, each keeping a
// pipeline of `depth` tagged KvPut mutations in flight, crossed with the
// WAL modes
//
//   fsync    enable_wal, wal_sync_ms 0   group committer fsyncs each batch
//   nosync   enable_wal, wal_sync_ms -1  log written, never fsynced
//   off      enable_wal = false          no log at all
//
// plus one baseline row: a single connection, pipeline depth 1, fsync mode
// — the classic fsync-per-ACK configuration every mutation used to pay.
// The headline number is meta.speedup_64_fsync: 64-client fsync throughput
// over that baseline, which the group committer should carry well past 5x
// by amortizing one fsync over a cross-connection batch (watch
// meta.*_commit_batch_mean climb with the client count).
//
// Clients speak raw tagged KvPut frames (client-side crypto is measured
// elsewhere); the server is the production stack: DurableServer behind a
// reactor TcpServer via handle_async. State dir in $TMPDIR — on tmpfs the
// fsync cost is a lower bound for real disks; the *relative* scaling with
// client count is the portable result.
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cloud/recovery.h"
#include "net/tcp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/bench_util.h"

namespace fgad::bench {
namespace {

struct Mode {
  const char* name;
  bool enable_wal;
  int sync_ms;
};

constexpr Mode kModes[] = {
    {"fsync", true, 0},
    {"nosync", true, -1},
    {"off", false, 0},
};

std::string fresh_dir(const char* tag) {
  const char* base = std::getenv("TMPDIR");
  std::string d = (base != nullptr && *base != '\0') ? base : "/tmp";
  d += "/fgad_netc_bench_" + std::string(tag) + "." + std::to_string(::getpid());
  ::mkdir(d.c_str(), 0755);
  return d;
}

void remove_dir(const std::string& dir) {
  for (const char* f : {"checkpoint-000000.ckpt", "checkpoint-000001.ckpt",
                        "wal-000000.log", "wal-000001.log"}) {
    ::unlink((dir + "/" + f).c_str());
  }
  ::rmdir(dir.c_str());
}

Bytes tagged_put(std::uint64_t key, BytesView value) {
  proto::KvPutReq put;
  put.table = 1;
  put.key = key;
  put.value = Bytes(value.begin(), value.end());
  return proto::seal_tagged(obs::generate_request_id(), put.to_frame());
}

struct RunResult {
  double seconds = 0;
  std::size_t mutations = 0;
  LatencyRecorder batch_lat;  // one sample per roundtrip_batch call
  bool ok = true;
};

/// `clients` threads, each pipelining `depth`-frame batches until it has
/// sent `per_client` mutations. Returns merged latencies and wall time
/// from the moment every connection is up.
RunResult run_config(std::uint16_t port, std::size_t clients,
                     std::size_t depth, std::size_t per_client) {
  RunResult res;
  res.mutations = clients * per_client;

  std::vector<std::unique_ptr<net::TcpChannel>> chans(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    auto conn = net::TcpChannel::connect("127.0.0.1", port);
    if (!conn) {
      std::fprintf(stderr, "connect %zu failed: %s\n", c,
                   conn.status().to_string().c_str());
      res.ok = false;
      return res;
    }
    chans[c] = std::move(conn).value();
  }

  std::mutex merge_mu;
  std::atomic<bool> failed{false};
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const Bytes payload = small_item(c);
      std::uint64_t key = c * 1'000'000;
      std::size_t sent = 0;
      while (sent < per_client && !failed.load(std::memory_order_relaxed)) {
        const std::size_t n = std::min(depth, per_client - sent);
        std::vector<Bytes> frames;
        frames.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          frames.push_back(tagged_put(key++, payload));
        }
        Stopwatch sw;
        Result<std::vector<Bytes>> resp = chans[c]->roundtrip_batch(frames);
        const std::uint64_t ns = sw.elapsed_ns();
        if (!resp || resp.value().size() != n) {
          std::fprintf(stderr, "client %zu batch failed: %s\n", c,
                       resp.status().to_string().c_str());
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        {
          std::lock_guard<std::mutex> lock(merge_mu);
          res.batch_lat.record_ns(ns);
        }
        sent += n;
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  res.seconds = wall.elapsed_seconds();
  res.ok = !failed.load();
  return res;
}

void run() {
  const std::size_t depth = 16;
  const std::size_t max_clients =
      std::max<std::size_t>(1, env_size("FGAD_MAX_CLIENTS", 256));
  // Mutations per client per config; rounded up to whole batches.
  const std::size_t per_client =
      ((std::max<std::size_t>(sample_count(), depth) + depth - 1) / depth) *
      depth;

  BenchJson json("net_concurrency");
  json.meta()
      .set("depth", depth)
      .set("per_client_mutations", per_client)
      .set("item_bytes", 16)
      .set("note",
           "tagged KvPut frames over loopback TCP; reactor + group commit; "
           "state dir in TMPDIR");

  std::printf(
      "net concurrency: pipeline depth %zu, %zu mutations/client\n\n",
      depth, per_client);
  std::printf("%-8s %8s %7s %12s %12s %12s %12s\n", "mode", "clients",
              "depth", "mut/s", "batch p50", "batch p95", "batch p99");

  double baseline_thr = 0;   // fsync, 1 client, depth 1
  double fsync64_thr = 0;    // fsync, 64 clients, depth 16

  for (const Mode& mode : kModes) {
    const std::string dir = fresh_dir(mode.name);
    cloud::DurableServer::Options dopts;
    dopts.dir = dir;
    dopts.enable_wal = mode.enable_wal;
    dopts.wal_sync_ms = mode.sync_ms;
    dopts.checkpoint_every_n = 0;  // measure the log, not checkpoints
    dopts.server = cloud::CloudServer::Options{/*track_duplicates=*/false,
                                               /*enable_integrity=*/false};
    auto opened = cloud::DurableServer::open(dopts);
    if (!opened) {
      std::fprintf(stderr, "cannot open state dir %s: %s\n", dir.c_str(),
                   opened.status().to_string().c_str());
      std::abort();
    }
    cloud::DurableServer& ds = *opened.value();

    net::TcpServer::Options sopts;
    sopts.max_workers = 512;
    sopts.io_timeout_ms = 120000;
    auto server = net::TcpServer::create(
        0,
        net::TcpServer::AsyncHandler(
            [&ds](Bytes req, net::TcpServer::Respond respond) {
              ds.handle_async(std::move(req),
                              [respond = std::move(respond)](Bytes resp) {
                                respond(std::move(resp));
                              });
            }),
        sopts);
    if (!server) {
      std::fprintf(stderr, "server start failed: %s\n",
                   server.status().to_string().c_str());
      std::abort();
    }

    auto& commit_hist =
        obs::Registry::instance().histogram("fgad_wal_commit_batch_size");

    struct Config {
      std::size_t clients;
      std::size_t depth;
      bool baseline;
    };
    std::vector<Config> configs;
    if (mode.enable_wal && mode.sync_ms == 0) {
      configs.push_back({1, 1, true});  // fsync-per-ACK baseline
    }
    for (std::size_t c : {std::size_t{1}, std::size_t{8}, std::size_t{64},
                          std::size_t{256}}) {
      if (c <= max_clients) {
        configs.push_back({c, depth, false});
      }
    }

    for (const Config& cfg : configs) {
      const double hist_sum0 = commit_hist.sum();
      const std::uint64_t hist_cnt0 = commit_hist.count();
      RunResult r = run_config(server.value()->port(), cfg.clients, cfg.depth,
                               cfg.baseline ? std::min<std::size_t>(
                                                  per_client, 64)
                                            : per_client);
      if (!r.ok) {
        std::abort();
      }
      const double thr =
          r.seconds > 0 ? static_cast<double>(r.mutations) / r.seconds : 0;
      const double batches =
          static_cast<double>(commit_hist.count() - hist_cnt0);
      const double batch_mean =
          batches > 0 ? (commit_hist.sum() - hist_sum0) / batches : 0;

      const char* label = cfg.baseline ? "fsync*" : mode.name;
      std::printf("%-8s %8zu %7zu %12.0f %10.1fus %10.1fus %10.1fus\n",
                  label, cfg.clients, cfg.depth, thr,
                  r.batch_lat.quantile_us(0.50), r.batch_lat.quantile_us(0.95),
                  r.batch_lat.quantile_us(0.99));

      auto& row = json.row();
      row.set("mode", mode.name)
          .set("baseline", cfg.baseline ? 1 : 0)
          .set("clients", cfg.clients)
          .set("depth", cfg.depth)
          .set("mutations", r.mutations)
          .set("mutations_per_s", thr)
          .set("wal_commit_batch_mean", batch_mean)
          .set("wal_fsyncs", batches);
      r.batch_lat.emit(row, "batch");

      if (cfg.baseline) {
        baseline_thr = thr;
      }
      if (!cfg.baseline && mode.enable_wal && mode.sync_ms == 0 &&
          cfg.clients == 64) {
        fsync64_thr = thr;
      }
    }

    server.value()->stop();
    opened.value().reset();
    remove_dir(dir);
  }

  json.meta()
      .set("baseline_fsync_per_ack_mut_s", baseline_thr)
      .set("fsync_64c_mut_s", fsync64_thr)
      .set("speedup_64_fsync",
           baseline_thr > 0 ? fsync64_thr / baseline_thr : 0.0)
      .set("registry_group_commits",
           obs::Registry::instance()
               .counter("fgad_wal_group_commits_total")
               .value())
      .set("registry_accept_backoffs",
           obs::Registry::instance()
               .counter("fgad_tcp_accept_backoffs_total")
               .value());
  if (baseline_thr > 0 && fsync64_thr > 0) {
    std::printf("\n64-client fsync speedup over fsync-per-ACK baseline: "
                "%.1fx\n",
                fsync64_thr / baseline_thr);
  }
}

}  // namespace
}  // namespace fgad::bench

int main() {
  fgad::bench::run();
  return 0;
}
