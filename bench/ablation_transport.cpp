// Ablation A2: transport stack.
//
// The measured scheme costs (bytes, client CPU) are transport-independent;
// what the transport changes is wall-clock latency per operation. This
// ablation runs the same operation mix over the in-process DirectChannel,
// the threaded in-memory pipe, and real loopback TCP — quantifying how much
// of an operation's end-to-end time is protocol vs. plumbing.
#include <memory>

#include "net/inmemory.h"
#include "net/tcp.h"
#include "support/bench_util.h"

namespace {

using namespace fgad::bench;

struct RunResult {
  double delete_wall_ms;
  double access_wall_ms;
  double delete_kb;
  LatencyRecorder delete_lat;
  LatencyRecorder access_lat;
};

RunResult run(fgad::net::RpcChannel& ch, std::size_t n, std::uint64_t seed) {
  fgad::net::CountingChannel counting(ch);
  fgad::crypto::DeterministicRandom rnd(seed);
  fgad::client::Client client(counting, rnd);

  auto fh = client.outsource(1, n, small_item);
  if (!fh) {
    std::fprintf(stderr, "outsource failed: %s\n",
                 fh.status().to_string().c_str());
    std::abort();
  }

  const std::size_t reps = 200;
  RunResult out{};

  fgad::Stopwatch sw;
  for (std::size_t i = 0; i < reps; ++i) {
    LatencyRecorder::Timed t(out.access_lat);
    auto got = client.access(fh.value(),
                             fgad::proto::ItemRef::id((i * 37) % n));
    if (!got) std::abort();
  }
  out.access_wall_ms = sw.elapsed_ms() / reps;

  counting.reset();
  sw.reset();
  for (std::size_t i = 0; i < reps; ++i) {
    LatencyRecorder::Timed t(out.delete_lat);
    auto st = client.erase_item(fh.value(),
                                fgad::proto::ItemRef::id((i * 41) % n));
    if (!st) std::abort();
  }
  out.delete_wall_ms = sw.elapsed_ms() / reps;
  out.delete_kb =
      static_cast<double>(counting.total_bytes()) / reps / 1024.0;
  return out;
}

}  // namespace

int main() {
  const std::size_t n = std::min<std::size_t>(max_n(), 10'000);
  std::printf("=== Ablation A2: transport stack (n = %zu) ===\n\n", n);
  std::printf("%-12s %16s %16s %14s\n", "transport", "delete wall ms",
              "access wall ms", "delete KB");
  fgad::bench::BenchJson json("ablation_transport");
  json.meta().set("n", n);
  const auto record = [&json](const char* transport, const RunResult& r) {
    auto& row = json.row();
    row.set("transport", transport)
        .set("delete_wall_ms", r.delete_wall_ms)
        .set("access_wall_ms", r.access_wall_ms)
        .set("delete_bytes", r.delete_kb * 1024.0);
    r.access_lat.emit(row, "access");
    r.delete_lat.emit(row, "delete");
  };

  // In-process direct dispatch.
  {
    fgad::cloud::CloudServer server;
    fgad::net::DirectChannel ch(
        [&server](fgad::BytesView req) { return server.handle(req); });
    const RunResult r = run(ch, n, 1);
    std::printf("%-12s %16.4f %16.4f %14.3f\n", "direct", r.delete_wall_ms,
                r.access_wall_ms, r.delete_kb);
    record("direct", r);
  }
  // Threaded in-memory pipe.
  {
    fgad::cloud::CloudServer server;
    fgad::net::Pipe pipe;
    fgad::net::ServerPump pump(
        pipe, [&server](fgad::BytesView req) { return server.handle(req); });
    fgad::net::PipeChannel ch(pipe);
    const RunResult r = run(ch, n, 2);
    std::printf("%-12s %16.4f %16.4f %14.3f\n", "pipe", r.delete_wall_ms,
                r.access_wall_ms, r.delete_kb);
    record("pipe", r);
    pump.stop();
  }
  // Loopback TCP.
  {
    fgad::cloud::CloudServer server;
    auto tcp_result = fgad::net::TcpServer::create(
        0, [&server](fgad::BytesView req) { return server.handle(req); });
    if (!tcp_result) {
      std::fprintf(stderr, "tcp server failed to start: %s\n",
                   tcp_result.status().to_string().c_str());
      return 1;
    }
    fgad::net::TcpServer& tcp = *tcp_result.value();
    auto ch = fgad::net::TcpChannel::connect("127.0.0.1", tcp.port());
    if (!ch) {
      std::fprintf(stderr, "tcp connect failed\n");
      return 1;
    }
    const RunResult r = run(*ch.value(), n, 3);
    std::printf("%-12s %16.4f %16.4f %14.3f\n", "tcp", r.delete_wall_ms,
                r.access_wall_ms, r.delete_kb);
    record("tcp", r);
    tcp.stop();
  }

  std::printf("\nexpected: identical bytes across transports; wall time "
              "direct < pipe < tcp, all far below a WAN RTT.\n");
  return 0;
}
