// Ablation A5: cost of the integrity substrate (PDP/PoR layer).
//
// Measures (a) per-operation overhead the hash tree adds on the server
// (delete/insert wall time with integrity on vs off), (b) audit proof size
// and verification cost vs n, and (c) the client-side root-tracking cost of
// a verified deletion. Expected: O(log n) proof sizes, microsecond-level
// maintenance — integrity is cheap relative to the deletion exchange.
#include "integrity/audit.h"
#include "support/bench_util.h"

namespace {

using namespace fgad::bench;
using fgad::BytesView;

double deletes_per_ms(bool integrity_on, std::size_t n, LatencyRecorder& lat) {
  fgad::cloud::CloudServer server{fgad::cloud::CloudServer::Options{
      /*track_duplicates=*/false, integrity_on}};
  fgad::net::DirectChannel ch(
      [&server](fgad::BytesView req) { return server.handle(req); });
  fgad::crypto::DeterministicRandom rnd(n);
  fgad::client::Client client(ch, rnd);
  auto fh = client.outsource(1, n, small_item);
  if (!fh) std::abort();
  const std::size_t reps = 300;
  fgad::Stopwatch sw;
  for (std::size_t i = 0; i < reps; ++i) {
    LatencyRecorder::Timed t(lat);
    if (!client.erase_item(fh.value(), fgad::proto::ItemRef::id(i * 3))) {
      std::abort();
    }
  }
  return sw.elapsed_ms() / reps;
}

}  // namespace

int main() {
  const std::size_t n = std::min<std::size_t>(max_n(), 100'000);
  std::printf("=== Ablation A5: integrity substrate cost (n = %zu) ===\n\n",
              n);

  std::printf("server-side hash-tree maintenance (end-to-end delete wall "
              "time):\n");
  LatencyRecorder off_lat;
  LatencyRecorder on_lat;
  const double off = deletes_per_ms(false, n, off_lat);
  const double on = deletes_per_ms(true, n, on_lat);
  std::printf("  integrity off: %.4f ms/delete\n", off);
  std::printf("  integrity on:  %.4f ms/delete  (+%.1f%%)\n", on,
              100.0 * (on - off) / off);
  BenchJson json("ablation_integrity");
  auto& meta = json.meta();
  meta.set("n", n)
      .set("delete_ms_integrity_off", off)
      .set("delete_ms_integrity_on", on);
  off_lat.emit(meta, "delete_integrity_off");
  on_lat.emit(meta, "delete_integrity_on");

  std::printf("\naudit proof size and verification vs n:\n");
  std::printf("%12s %16s %18s %20s\n", "n", "proof bytes", "verify us",
              "tracked delete ms");
  for (std::size_t sweep_n : {1'000ull, 10'000ull, 100'000ull}) {
    if (sweep_n > max_n()) break;
    Stack stack;  // integrity disabled in Stack; use a dedicated server
    fgad::cloud::CloudServer server{
        fgad::cloud::CloudServer::Options{false, true}};
    fgad::net::DirectChannel ch(
        [&server](fgad::BytesView req) { return server.handle(req); });
    fgad::net::CountingChannel counting(ch);
    fgad::crypto::DeterministicRandom rnd(sweep_n);
    fgad::client::Client client(counting, rnd,
                                fgad::client::Client::Options{});
    auto fh = client.outsource(1, sweep_n, small_item);
    if (!fh) return 1;

    fgad::integrity::Auditor auditor(counting, fgad::crypto::HashAlg::kSha1,
                                     1);
    {
      const auto* file = server.file(1);
      std::vector<std::pair<std::uint64_t, BytesView>> items;
      std::vector<const fgad::Bytes*> keep;
      for (std::uint64_t i = 0; i < sweep_n; ++i) {
        keep.push_back(
            &file->items().at(*file->items().find(i)).ciphertext);
        items.emplace_back(i, BytesView(*keep.back()));
      }
      auditor.init_from_items(items);
    }

    // Proof size: one single-item audit through the counting channel.
    counting.reset();
    const std::uint64_t ids[] = {sweep_n / 2};
    fgad::Stopwatch sw;
    if (!auditor.audit_items(ids)) return 1;
    const double verify_us = sw.elapsed_ms() * 1e3;
    const double proof_bytes = static_cast<double>(counting.total_bytes()) -
                               static_cast<double>(
                                   client.codec().sealed_size(16));

    // Tracked (verified) deletion: auditor pre-verification + the deletion.
    fgad::Stopwatch dsw;
    LatencyRecorder dlat;
    const std::size_t dreps = 50;
    for (std::size_t i = 0; i < dreps; ++i) {
      LatencyRecorder::Timed t(dlat);
      const std::uint64_t id = i * 7 + 1;
      if (!auditor.before_delete(id)) return 1;
      if (!client.erase_item(fh.value(), fgad::proto::ItemRef::id(id))) {
        return 1;
      }
    }
    std::printf("%12zu %16.0f %18.2f %20.4f\n", static_cast<std::size_t>(sweep_n),
                proof_bytes, verify_us, dsw.elapsed_ms() / dreps);
    auto& row = json.row();
    row.set("n", static_cast<std::size_t>(sweep_n))
        .set("proof_bytes", proof_bytes)
        .set("verify_us", verify_us)
        .set("tracked_delete_ms", dsw.elapsed_ms() / dreps);
    dlat.emit(row, "tracked_delete");
  }
  std::printf("\nexpected: proof bytes and times grow logarithmically; the "
              "hash-tree maintenance adds only a small constant factor to "
              "deletion.\n");
  return 0;
}
