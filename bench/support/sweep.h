// Shared n-sweep used by the Figure 5 (communication) and Figure 6
// (computation) benches: for each file size n, measure the average
// per-operation cost of delete, insert, and access through the real wire
// protocol, exactly as the paper does ("we perform the operation on each
// data item once and take the average" — we sample FGAD_SAMPLES items,
// which preserves the average for the log-scaling figures).
#pragma once

#include "support/bench_util.h"

namespace fgad::bench {

struct SweepPoint {
  std::size_t n;
  // Communication overhead per operation, in bytes (sent + received).
  double delete_bytes;
  double insert_bytes;
  double access_bytes;  // excluding the item ciphertext, per the paper
  // Client computation per operation, in seconds.
  double delete_comp;
  double insert_comp;
  double access_comp;
  // End-to-end wall-clock per operation (compute + transport), exact
  // quantiles over the sampled reps.
  LatencyRecorder delete_lat;
  LatencyRecorder insert_lat;
  LatencyRecorder access_lat;

  /// Adds the per-op quantile columns to a BenchJson row.
  void emit_latencies(BenchJson::Obj& row) const {
    access_lat.emit(row, "access");
    insert_lat.emit(row, "insert");
    delete_lat.emit(row, "delete");
  }
};

inline SweepPoint run_sweep_point(std::size_t n, crypto::HashAlg alg,
                                  std::size_t samples) {
  Stack stack(alg, /*seed=*/n);
  stack.build_file(1, n, small_item);

  SweepPoint point{};
  point.n = n;
  const std::size_t item_ct_size =
      stack.client.codec().sealed_size(small_item(0).size());

  // --- access ---------------------------------------------------------
  {
    const std::size_t reps = std::min<std::size_t>(samples, n);
    const auto ids = sample_ids(n, reps, n * 3 + 1);
    stack.channel.reset();
    stack.client.compute_timer().reset();
    for (std::uint64_t id : ids) {
      LatencyRecorder::Timed t(point.access_lat);
      auto got = stack.client.access(stack.fh, proto::ItemRef::id(id));
      if (!got) {
        std::fprintf(stderr, "access failed: %s\n",
                     got.status().to_string().c_str());
        std::abort();
      }
    }
    point.access_bytes =
        static_cast<double>(stack.channel.total_bytes()) / reps -
        static_cast<double>(item_ct_size);
    point.access_comp = stack.client.compute_timer().total_seconds() / reps;
  }

  // --- insert (always lands at the same spot; a few reps suffice) -------
  {
    const std::size_t reps = 16;
    stack.channel.reset();
    stack.client.compute_timer().reset();
    for (std::size_t i = 0; i < reps; ++i) {
      LatencyRecorder::Timed t(point.insert_lat);
      auto id = stack.client.insert(stack.fh, small_item(n + i));
      if (!id) {
        std::fprintf(stderr, "insert failed\n");
        std::abort();
      }
    }
    point.insert_bytes =
        static_cast<double>(stack.channel.total_bytes()) / reps;
    point.insert_comp = stack.client.compute_timer().total_seconds() / reps;
  }

  // --- delete -----------------------------------------------------------
  {
    const std::size_t reps = std::min<std::size_t>(samples, n);
    // Sample distinct victims (an id can only be deleted once).
    Xoshiro256 rng(n * 5 + 7);
    std::vector<bool> used(n, false);
    std::vector<std::uint64_t> victims;
    victims.reserve(reps);
    while (victims.size() < reps) {
      const std::uint64_t id = rng.next_below(n);
      if (!used[id]) {
        used[id] = true;
        victims.push_back(id);
      }
    }
    stack.channel.reset();
    stack.client.compute_timer().reset();
    for (std::uint64_t id : victims) {
      LatencyRecorder::Timed t(point.delete_lat);
      auto st = stack.client.erase_item(stack.fh, proto::ItemRef::id(id));
      if (!st) {
        std::fprintf(stderr, "delete failed: %s\n", st.to_string().c_str());
        std::abort();
      }
    }
    // Like access, the paper's overhead metric excludes the data item
    // itself; the delete exchange carries the target ciphertext once (for
    // the client's verify step), so subtract it.
    point.delete_bytes =
        static_cast<double>(stack.channel.total_bytes()) / reps -
        static_cast<double>(item_ct_size);
    point.delete_comp = stack.client.compute_timer().total_seconds() / reps;
  }

  return point;
}

inline std::vector<std::size_t> sweep_sizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t n = 10; n <= max_n(); n *= 10) {
    sizes.push_back(n);
  }
  return sizes;
}

}  // namespace fgad::bench
