// Shared benchmark scaffolding for the paper-reproduction harnesses.
//
// Each bench binary regenerates one table or figure of the paper. They all
// build the two-party stack natively (Outsourcer -> CloudServer) so setup
// cost does not pollute the measured operations, then drive the measured
// operations through the real wire protocol behind a CountingChannel.
//
// Environment knobs:
//   FGAD_MAX_N  — caps the largest n in sweeps (default: paper scale, 1e7)
//   FGAD_SAMPLES — operations averaged per data point (default 200)
#pragma once

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "client/client.h"
#include "cloud/server.h"
#include "common/stopwatch.h"
#include "core/outsource.h"
#include "net/transport.h"

namespace fgad::bench {

inline std::size_t env_size(const char* name, std::size_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return def;
  }
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

inline std::size_t max_n() {
  return env_size("FGAD_MAX_N", 10'000'000);
}

inline std::size_t sample_count() {
  return env_size("FGAD_SAMPLES", 200);
}

/// Deterministic small payload (the sweep benches measure protocol
/// overhead, which excludes item payloads; see the paper's metric note).
inline Bytes small_item(std::size_t i) {
  Bytes b(16, 0);
  for (int k = 0; k < 8; ++k) {
    b[static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(i >> (8 * k));
  }
  return b;
}

/// 4 KB payload (Table II / Table III use the paper's item size).
inline Bytes item_4k(std::size_t i) {
  Bytes b(4096, static_cast<std::uint8_t>(i * 131 + 7));
  for (int k = 0; k < 8; ++k) {
    b[static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(i >> (8 * k));
  }
  return b;
}

/// A fully assembled two-party stack with byte counting.
struct Stack {
  cloud::CloudServer server;
  net::DirectChannel direct;
  net::CountingChannel channel;
  crypto::DeterministicRandom rnd;
  client::Client client;
  client::Client::FileHandle fh;

  explicit Stack(crypto::HashAlg alg = crypto::HashAlg::kSha1,
                 std::uint64_t seed = 1)
      : server(cloud::CloudServer::Options{/*track_duplicates=*/false,
                                           /*enable_integrity=*/false}),
        direct([this](BytesView req) { return server.handle(req); }),
        channel(direct),
        rnd(seed),
        client(channel, rnd, client::Client::Options{alg}) {}

  /// Builds a file of n items natively (bypassing the wire for setup).
  void build_file(std::uint64_t file_id, std::size_t n,
                  const std::function<Bytes(std::size_t)>& item_at) {
    core::Outsourcer out(client.math().alg(), /*track_duplicates=*/false);
    fh.id = file_id;
    fh.key = crypto::MasterKey::generate(rnd, client.math().width());
    std::uint64_t counter = client.counter();
    auto built = out.build(fh.key, n, item_at, counter, rnd);
    client.set_counter(counter);
    std::vector<cloud::FileStore::IngestItem> items;
    items.reserve(built.items.size());
    for (auto& it : built.items) {
      items.push_back(cloud::FileStore::IngestItem{
          it.item_id, std::move(it.ciphertext), it.plain_size});
    }
    built.items.clear();
    built.items.shrink_to_fit();
    auto st = server.outsource(file_id, std::move(built.tree),
                               std::move(items));
    if (!st) {
      std::fprintf(stderr, "bench setup failed: %s\n",
                   st.to_string().c_str());
      std::abort();
    }
  }
};

/// Picks `count` pseudo-random live item ids from [0, n).
inline std::vector<std::uint64_t> sample_ids(std::size_t n, std::size_t count,
                                             std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ids.push_back(rng.next_below(n));
  }
  return ids;
}

inline std::string human_bytes(double b) {
  char buf[64];
  if (b >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / (1024.0 * 1024.0 * 1024.0));
  } else if (b >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", b / (1024.0 * 1024.0));
  } else if (b >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", b);
  }
  return buf;
}

// ---- machine-readable results -------------------------------------------
//
// Every bench binary, in addition to its human-readable table, writes
// BENCH_<name>.json (into $FGAD_BENCH_JSON_DIR, default the working
// directory) so results can be diffed, plotted, and regression-checked
// without scraping stdout. Format:
//
//   { "bench": "<name>", "schema": 1,
//     "meta": { ...free-form run parameters... },
//     "rows": [ { ...one object per table row... }, ... ] }
//
// Values are numbers or strings; rows need not share a column set.
class BenchJson {
 public:
  /// One JSON object ({"k": v, ...}) built by chained set() calls.
  class Obj {
   public:
    template <typename T>
    Obj& set(const std::string& key, const T& value) {
      fields_.emplace_back(key, encode(value));
      return *this;
    }

   private:
    friend class BenchJson;

    static std::string encode(double v) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      return buf;
    }
    template <typename T>
      requires std::is_integral_v<T>
    static std::string encode(T v) {
      char buf[32];
      if constexpr (std::is_signed_v<T>) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
      } else {
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
      }
      return buf;
    }
    static std::string encode(const std::string& v) {
      std::string out = "\"";
      for (char c : v) {
        if (c == '"' || c == '\\') {
          out.push_back('\\');
          out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
      }
      out.push_back('"');
      return out;
    }
    static std::string encode(const char* v) { return encode(std::string(v)); }

    std::string to_json() const {
      std::string out = "{";
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out += ", ";
        out += encode(fields_[i].first) + ": " + fields_[i].second;
      }
      out += "}";
      return out;
    }

    std::vector<std::pair<std::string, std::string>> fields_;
  };

  explicit BenchJson(std::string name) : name_(std::move(name)) {
    meta_.set("max_n", max_n()).set("samples", sample_count());
  }
  ~BenchJson() { write(); }
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  /// Run-level parameters recorded once per file.
  Obj& meta() { return meta_; }
  /// Appends and returns a fresh result row.
  Obj& row() { return rows_.emplace_back(); }

  /// Writes BENCH_<name>.json; called automatically on destruction.
  void write() {
    if (written_) return;
    written_ = true;
    std::string dir = ".";
    if (const char* d = std::getenv("FGAD_BENCH_JSON_DIR");
        d != nullptr && *d != '\0') {
      dir = d;
    }
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": %s,\n  \"schema\": 1,\n  \"meta\": %s,\n"
                    "  \"rows\": [\n",
                 Obj::encode(name_).c_str(), meta_.to_json().c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    %s%s\n", rows_[i].to_json().c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  std::string name_;
  Obj meta_;
  std::vector<Obj> rows_;
  bool written_ = false;
};

// ---- per-operation latency quantiles ------------------------------------
//
// The sweeps report averages (matching the paper's tables); the recorder
// adds exact p50/p95/p99 per operation on top, timed with the same
// common/stopwatch.h clock the averages use. Samples are kept raw and
// sorted on demand — bench rep counts are small, exactness beats bucketing.
class LatencyRecorder {
 public:
  void record_ns(std::uint64_t ns) { samples_.push_back(ns); }
  void reset() { samples_.clear(); }
  std::size_t count() const { return samples_.size(); }

  /// Exact p-th quantile (nearest-rank) in microseconds; 0 when empty.
  double quantile_us(double p) const {
    if (samples_.empty()) {
      return 0.0;
    }
    std::vector<std::uint64_t> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    const double ns = static_cast<double>(sorted[lo]) +
                      frac * (static_cast<double>(sorted[hi]) -
                              static_cast<double>(sorted[lo]));
    return ns / 1e3;
  }

  /// Writes <prefix>_p50_us / _p95_us / _p99_us / _samples into a row.
  void emit(BenchJson::Obj& row, const std::string& prefix) const {
    row.set(prefix + "_p50_us", quantile_us(0.50))
        .set(prefix + "_p95_us", quantile_us(0.95))
        .set(prefix + "_p99_us", quantile_us(0.99))
        .set(prefix + "_samples", count());
  }

  /// RAII: times one operation into the recorder.
  class Timed {
   public:
    explicit Timed(LatencyRecorder& r) : r_(r) {}
    ~Timed() { r_.record_ns(sw_.elapsed_ns()); }
    Timed(const Timed&) = delete;
    Timed& operator=(const Timed&) = delete;

   private:
    LatencyRecorder& r_;
    Stopwatch sw_;
  };

 private:
  std::vector<std::uint64_t> samples_;
};

inline std::string human_time(double seconds) {
  char buf[64];
  if (seconds >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f ns", seconds * 1e9);
  }
  return buf;
}

}  // namespace fgad::bench
