// Plain-data views exchanged between the cloud server and the client.
//
// These structs carry exactly the information the paper's protocol sends
// over the wire for each operation:
//   * AccessInfo  — P(k) modulators + ciphertext (Section IV-E, access);
//   * DeleteInfo  — MT(k) = P(k) + the sibling cut C, the target
//                   ciphertext, and the balancing branch P(t) (IV-C, IV-D);
//   * DeleteCommit — {delta(c) | c in C} plus the balancing modulators;
//   * InsertInfo / InsertCommit — the split-leaf insertion exchange (IV-E).
//
// They are protocol-layer agnostic: proto/messages.cpp serializes them, the
// native CloudServer API passes them by value.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "core/node_id.h"
#include "crypto/digest.h"

namespace fgad::core {

using crypto::Md;

/// A root-to-target path. nodes[0] is the root; links[i-1] is the link
/// modulator on edge (nodes[i-1], nodes[i]), so links.size()+1 == nodes.size().
struct PathView {
  std::vector<NodeId> nodes;
  std::vector<Md> links;

  std::size_t depth() const { return links.size(); }
  NodeId target() const { return nodes.back(); }

  /// Structural sanity: non-empty, rooted, consecutive parent/child pairs.
  bool well_formed() const;
};

/// One node of the (n-1)-cut C: the sibling of a path node, carrying its own
/// link modulator and, when it is a leaf, its leaf modulator.
struct CutEntry {
  NodeId node = kNoNode;
  Md link;      // modulator on (parent(node), node)
  bool is_leaf = false;
  Md leaf_mod;  // meaningful iff is_leaf
};

struct AccessInfo {
  PathView path;  // P(k)
  Md leaf_mod;    // leaf modulator of k
  std::uint64_t item_id = 0;
  Bytes ciphertext;
};

struct DeleteInfo {
  PathView path;               // P(k)
  Md leaf_mod;                 // leaf modulator of k
  std::vector<CutEntry> cut;   // C, ordered by path depth (cut[i] is the
                               // sibling of path.nodes[i+1])
  std::uint64_t item_id = 0;
  Bytes ciphertext;            // target item, for the client's verify step

  // Balancing branch (absent when the tree has a single leaf).
  bool has_balance = false;
  PathView t_path;  // P(t), t = last leaf (largest node id)
  Md t_leaf_mod;
  Md s_link;        // link modulator on (parent(t), sibling(t))
  Md s_leaf_mod;    // leaf modulator of sibling(t)
};

struct DeleteCommit {
  NodeId leaf = kNoNode;       // k
  std::vector<Md> deltas;      // delta(c), aligned with the canonical cut
                               // order (sibling of path node at depth i+1)

  bool has_balance = false;
  Md promoted_leaf_mod;  // new leaf modulator for the surviving sibling
                         // promoted into p's slot (Eq. 8)
  bool has_step2 = false;
  Md t_new_link;         // fresh random link modulator for (parent(k), t)
  Md t_new_leaf_mod;     // computed leaf modulator for t at k's slot (Eq. 9)
};

/// Server view for merged-cut bulk deletion of m leaves of one file
/// (DESIGN.md §16). Carries enough for the client to *independently*
/// recompute the merged cut and the relocation geometry from
/// (node_count, target leaves) and cross-check every modulator.
struct DeleteManyInfo {
  std::uint64_t node_count = 0;  // N, pre-deletion

  struct Target {
    PathView path;  // P(d), root to the deleted leaf
    Md leaf_mod;
    std::uint64_t item_id = 0;
    Bytes ciphertext;  // for the client's verify step
  };
  std::vector<Target> targets;  // sorted by leaf id ascending, distinct

  /// Merged cut, node ids ascending (matches core::merged_cut_nodes).
  std::vector<CutEntry> cut;

  /// Paths to relocation holes that are NOT deleted leaves (formerly
  /// internal slots), hole-ascending. Holes that are deleted leaves already
  /// have their paths in `targets`.
  std::vector<PathView> hole_paths;

  struct Mover {
    PathView path;  // path to the surviving tail leaf being relocated
    Md leaf_mod;
  };
  std::vector<Mover> movers;  // node ids ascending (core::bulk_geometry)
};

/// Client commit for merged-cut bulk deletion: ONE fresh master key K'
/// covers all m targets; one delta per merged-cut node plus one relocation
/// record per hole.
struct DeleteManyCommit {
  std::vector<NodeId> leaves;  // deleted leaves, ascending, distinct
  std::vector<Md> deltas;      // aligned with merged_cut_nodes(N, leaves)

  struct Reloc {
    Md new_leaf_mod;  // Eq. 8 pattern (hole keeps its link) or Eq. 9
    bool has_new_link = false;  // true iff the hole is a deleted slot
    Md new_link;                // fresh random link (Eq. 9 pattern)
  };
  std::vector<Reloc> relocs;  // aligned with bulk_geometry holes, ascending
};

struct InsertInfo {
  bool empty_tree = false;
  PathView q_path;  // path to q, the leaf to split (empty when empty_tree)
  Md q_leaf_mod;
};

struct InsertCommit {
  bool empty_tree = false;
  Md root_leaf_mod;  // when creating the very first leaf

  NodeId q = kNoNode;  // the split leaf (echoed for validation)
  Md left_link;        // x_{p,t'}: link to the re-homed old leaf
  Md right_link;       // x_{p,e}: link to the new leaf e
  Md moved_leaf_mod;   // recomputed leaf modulator keeping q's key unchanged
  Md new_leaf_mod;     // x_e

  std::uint64_t item_id = 0;  // the globally unique counter value r
  Bytes ciphertext;           // {m . r, H(m . r)} under the new data key
  std::uint64_t plain_size = 0;  // stored with the ciphertext for
                                 // byte-offset addressing

  /// File-order placement: insert after this item id, or kAppend for the
  /// end of the file.
  static constexpr std::uint64_t kAppend = ~std::uint64_t{0};
  std::uint64_t after_item_id = kAppend;
};

}  // namespace fgad::core
