#include "core/bulk_geometry.h"

#include <algorithm>
#include <cstdint>
#include <unordered_set>

namespace fgad::core {

std::vector<NodeId> merged_cut_nodes(std::size_t node_count,
                                     std::span<const NodeId> leaves) {
  std::vector<NodeId> cut;
  if (leaves.empty() || node_count == 0) return cut;
  // Ancestor-or-self closure of the deleted leaves (contains the root for
  // any non-empty leaf set). A flat byte map over the node range makes the
  // membership tests during the walk-up and the sibling probes below plain
  // array reads — measurably cheaper than a hash set at bulk sizes, and
  // the zero-fill is a single memset.
  std::vector<std::uint8_t> in_anc(node_count, 0);
  std::vector<NodeId> anc;
  anc.reserve(leaves.size() * 2 + 64);
  for (NodeId d : leaves) {
    NodeId v = d;
    // Walk up until we hit a node already in the closure (shared tail).
    while (v < node_count && !in_anc[v]) {
      in_anc[v] = 1;
      anc.push_back(v);
      if (v == root_id()) break;
      v = parent_of(v);
    }
  }
  cut.reserve(anc.size());
  for (NodeId a : anc) {
    if (a == root_id()) continue;
    const NodeId s = sibling_of(a);
    // Siblings that are themselves ancestors of a deleted leaf are not cut
    // nodes — their deltas would double-modulate the region below them.
    if (s >= node_count || !in_anc[s]) cut.push_back(s);
  }
  std::sort(cut.begin(), cut.end());
  return cut;
}

BulkGeometry bulk_geometry(std::size_t node_count,
                           std::span<const NodeId> leaves) {
  BulkGeometry geo;
  const std::size_t m = leaves.size();
  const std::size_t n = leaf_count_of(node_count);
  if (m == 0 || m > n) return geo;
  if (m == n) {
    geo.new_node_count = 0;  // tree vanishes; no relocation needed
    return geo;
  }
  geo.new_node_count = node_count - 2 * m;
  const std::size_t new_leaf_begin = leaf_count_of(geo.new_node_count) - 1;
  const std::unordered_set<NodeId> dset(leaves.begin(), leaves.end());
  // Holes: final leaf slots [n'-1, N') that don't already hold a surviving
  // leaf — formerly internal slots (< old first leaf) or deleted slots.
  // Built in O(m): slots [n'-1, min(N', n-1)) were all internal before the
  // shrink, and the only other candidates are the deleted leaves below N'.
  // The two groups straddle old_leaf_begin, so appending them in order
  // keeps the holes ascending without scanning all n' slots.
  const std::size_t old_leaf_begin = leaf_count_of(node_count) - 1;
  const NodeId internal_end = static_cast<NodeId>(
      std::min<std::size_t>(geo.new_node_count, old_leaf_begin));
  for (NodeId h = new_leaf_begin; h < internal_end; ++h) {
    geo.holes.push_back(h);
  }
  std::vector<NodeId> deleted_in_range;
  for (NodeId d : leaves) {
    if (d >= old_leaf_begin && d < geo.new_node_count) {
      deleted_in_range.push_back(d);
    }
  }
  std::sort(deleted_in_range.begin(), deleted_in_range.end());
  geo.holes.insert(geo.holes.end(), deleted_in_range.begin(),
                   deleted_in_range.end());
  // Movers: surviving leaves in the chopped tail [N', N). When the tree
  // shrinks below the old leaf line (m > n/2), slots [N', n-1) were internal
  // and are simply chopped — only slots >= old_leaf_begin can hold leaves.
  const NodeId tail_begin =
      static_cast<NodeId>(std::max(geo.new_node_count, old_leaf_begin));
  for (NodeId v = tail_begin; v < node_count; ++v) {
    if (!dset.contains(v)) geo.movers.push_back(v);
  }
  return geo;
}

}  // namespace fgad::core
