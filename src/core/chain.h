// Modulated hash chain — the paper's key modulation function F (Section IV-A).
//
//   F(K, <x_1..x_l>) = H( ... H( H(K ^ x_1) ^ x_2 ) ... ^ x_l )
//
// with the recursive form
//
//   F(K, empty)   = K
//   F(K, M^(i))   = H( F(K, M^(i-1)) ^ x_i ).
//
// Lemma 1 (the heart of the scheme): changing the master key K -> K' while
// replacing a single modulator x_i by
//
//   x_i' = x_i ^ F(K, M^(i-1)) ^ F(K', M^(i-1))
//
// leaves the chain output unchanged. adjusted_modulator() computes that
// substitution from the two prefix values.
#pragma once

#include <vector>

#include "crypto/digest.h"
#include "crypto/hasher.h"

namespace fgad::core {

using crypto::HashAlg;
using crypto::Md;

/// An ordered modulator list M (root-to-leaf order in the tree).
using ModList = std::vector<Md>;

class ModulatedHashChain {
 public:
  explicit ModulatedHashChain(HashAlg alg) : hasher_(alg) {}

  HashAlg alg() const noexcept { return hasher_.alg(); }
  std::size_t width() const noexcept { return hasher_.size(); }

  /// One chain step: H(prev ^ x).
  Md step(const Md& prev, const Md& x) const {
    Md buf = prev;
    buf ^= x;
    return hasher_.hash(buf.bytes());
  }

  /// F(K, mods).
  Md eval(const Md& master, std::span<const Md> mods) const;

  /// All prefix values F(K, M^(i)) for i = 0..l (l+1 entries; entry 0 is K).
  std::vector<Md> prefixes(const Md& master, std::span<const Md> mods) const;

  /// Lemma 1 substitution: the new value x_i' that keeps the chain output
  /// unchanged when the prefix value before position i changes from
  /// `old_prefix` = F(K, M^(i-1)) to `new_prefix` = F(K', M^(i-1)).
  static Md adjusted_modulator(const Md& x_i, const Md& old_prefix,
                               const Md& new_prefix) {
    Md out = x_i;
    out ^= old_prefix;
    out ^= new_prefix;
    return out;
  }

 private:
  crypto::Hasher hasher_;
};

}  // namespace fgad::core
