#include "core/outsource.h"

namespace fgad::core {

OutsourcedFile Outsourcer::build(
    const crypto::MasterKey& master, std::size_t n_items,
    const std::function<Bytes(std::size_t)>& item_at, std::uint64_t& counter,
    crypto::RandomSource& rnd) const {
  const std::size_t w = math_.width();
  OutsourcedFile out{
      ModulationTree(ModulationTree::Config{math_.alg(), track_duplicates_}),
      {}};
  if (n_items == 0) {
    return out;
  }

  const std::size_t nodes = node_count_for(n_items);
  const std::size_t first_leaf = n_items - 1;

  // Draw all modulators first (links for nodes 1..2n-2, one leaf modulator
  // per leaf), then every IV in item order — the exact stream a sequential
  // seal loop would consume, so the build is reproducible at any thread
  // count.
  std::vector<crypto::Md> links(nodes);
  for (NodeId v = 1; v < nodes; ++v) {
    links[v] = rnd.random_md(w);
  }
  std::vector<crypto::Md> leaf_mods(n_items);
  for (auto& m : leaf_mods) {
    m = rnd.random_md(w);
  }

  const std::vector<crypto::Md> keys =
      deriver_.derive_all_keys(master.value(), links, leaf_mods);

  Bytes ivs(n_items * crypto::kAesBlockSize);
  for (std::size_t i = 0; i < n_items; ++i) {
    rnd.fill(std::span<std::uint8_t>(ivs.data() + i * crypto::kAesBlockSize,
                                     crypto::kAesBlockSize));
  }

  std::vector<std::uint64_t> plain_sizes(n_items);
  std::vector<Bytes> sealed =
      deriver_.seal_all(keys, item_at, counter, ivs, plain_sizes);

  out.items.reserve(n_items);
  for (std::size_t i = 0; i < n_items; ++i) {
    out.items.push_back(OutsourcedFile::Item{counter++, std::move(sealed[i]),
                                             plain_sizes[i]});
  }

  out.tree.build(
      n_items, [&](NodeId v) { return links[v]; },
      [&](NodeId v) {
        const std::size_t i = v - first_leaf;
        return std::pair<crypto::Md, std::uint64_t>(leaf_mods[i], i);
      });
  return out;
}

}  // namespace fgad::core
