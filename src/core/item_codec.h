// Data-item sealing: {m . r, H(m . r)}_k  (Section IV-B of the paper).
//
// Every plaintext item m gets the client's globally unique counter value r
// appended (so no two sealed items are ever identical), then its hash, and
// the whole record is encrypted with AES-128 under the item's data key.
// open() reverses the process and verifies the embedded hash — the check the
// client uses to detect a wrong or stale MT(k) during access and deletion.
//
// Wire layout of a sealed item:
//   iv[16] || AES-CBC( m || r(8, LE) || H(m || r) )
#pragma once

#include "common/result.h"
#include "crypto/aes.h"
#include "crypto/digest.h"
#include "crypto/hasher.h"
#include "crypto/random.h"

namespace fgad::core {

class ItemCodec {
 public:
  explicit ItemCodec(crypto::HashAlg alg) : hasher_(alg) {}

  crypto::HashAlg alg() const { return hasher_.alg(); }

  /// Seals plaintext `m` with unique counter `r` under data key `key`
  /// (a chain output; the AES key is its first 16 bytes).
  Bytes seal(const crypto::Md& key, BytesView m, std::uint64_t r,
             crypto::RandomSource& rnd) const;

  /// Like seal(), but with a caller-supplied IV (kAesBlockSize bytes).
  /// The parallel bulk engine pre-draws IVs in item order so concurrent
  /// sealing stays byte-identical to the sequential loop.
  Bytes seal_with_iv(const crypto::Md& key, BytesView m, std::uint64_t r,
                     BytesView iv) const;

  struct Opened {
    Bytes plaintext;
    std::uint64_t r = 0;
  };

  /// Opens a sealed item; fails with kIntegrityMismatch when the key is
  /// wrong or the ciphertext was tampered with.
  Result<Opened> open(const crypto::Md& key, BytesView sealed) const;

  /// Exact sealed size for a plaintext of `m_size` bytes.
  std::size_t sealed_size(std::size_t m_size) const {
    return crypto::kAesBlockSize +
           crypto::AesCbc::ciphertext_size(m_size + 8 + hasher_.size());
  }

 private:
  crypto::Hasher hasher_;
  crypto::AesCbc aes_;
};

}  // namespace fgad::core
