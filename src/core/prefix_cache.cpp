#include "core/prefix_cache.h"

namespace fgad::core {

Md PrefixCache::derive_key(const ModulatedHashChain& chain, const Md& master,
                           const PathView& path, const Md& leaf_mod) {
  // Find the deepest path node whose prefix value is cached. nodes[0] is
  // the root, whose prefix is the master key itself (never cached).
  const std::size_t depth = path.depth();  // == links.size()
  std::size_t start = depth;
  auto it = map_.end();
  while (start > 0) {
    it = map_.find(path.nodes[start]);
    if (it != map_.end()) {
      break;
    }
    --start;
  }

  Md cur;
  if (start == 0) {
    cur = master;
    ++misses_;
  } else {
    cur = it->second;
    ++hits_;
    steps_saved_ += start;
  }
  // Hash the missing suffix, caching each node's prefix along the way.
  for (std::size_t i = start; i < depth; ++i) {
    cur = chain.step(cur, path.links[i]);
    map_.emplace(path.nodes[i + 1], cur);
  }
  return chain.step(cur, leaf_mod);
}

}  // namespace fgad::core
