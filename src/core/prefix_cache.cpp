#include "core/prefix_cache.h"

#include "obs/metrics.h"

namespace fgad::core {

Md PrefixCache::derive_key(const ModulatedHashChain& chain, const Md& master,
                           const PathView& path, const Md& leaf_mod) {
  // Find the deepest path node whose prefix value is cached. nodes[0] is
  // the root, whose prefix is the master key itself (never cached).
  const std::size_t depth = path.depth();  // == links.size()
  std::size_t start = depth;
  auto it = map_.end();
  while (start > 0) {
    it = map_.find(path.nodes[start]);
    if (it != map_.end()) {
      break;
    }
    --start;
  }

  static obs::Counter& cache_hits =
      obs::Registry::instance().counter("fgad_prefix_cache_hits_total");
  static obs::Counter& cache_misses =
      obs::Registry::instance().counter("fgad_prefix_cache_misses_total");
  static obs::Counter& cache_steps_saved =
      obs::Registry::instance().counter("fgad_prefix_cache_steps_saved_total");
  Md cur;
  if (start == 0) {
    cur = master;
    ++misses_;
    cache_misses.inc();
  } else {
    cur = it->second;
    ++hits_;
    steps_saved_ += start;
    cache_hits.inc();
    cache_steps_saved.inc(start);
  }
  // Hash the missing suffix, caching each node's prefix along the way.
  for (std::size_t i = start; i < depth; ++i) {
    cur = chain.step(cur, path.links[i]);
    map_.emplace(path.nodes[i + 1], cur);
  }
  return chain.step(cur, leaf_mod);
}

}  // namespace fgad::core
