#include "core/client_math.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/bulk_geometry.h"

namespace fgad::core {

namespace {

// Key for per-node modulator consistency maps: a node may carry both a link
// modulator (edge from its parent) and a leaf modulator; track them apart.
enum class Kind : std::uint8_t { kLink, kLeaf };

struct Slot {
  NodeId node;
  Kind kind;
  bool operator==(const Slot&) const = default;
};

struct SlotHash {
  std::size_t operator()(const Slot& s) const noexcept {
    return std::hash<std::uint64_t>()(s.node * 2 +
                                      (s.kind == Kind::kLeaf ? 1 : 0));
  }
};

using ModMap = std::unordered_map<Slot, Md, SlotHash>;

// Records `value` for `slot`; fails if the same slot was already seen with a
// conflicting value (a self-inconsistent server response).
Status put(ModMap& map, NodeId node, Kind kind, const Md& value) {
  auto [it, inserted] = map.emplace(Slot{node, kind}, value);
  if (!inserted && it->second != value) {
    return Status(Errc::kTamperDetected,
                  "delete info: node reported with conflicting modulators");
  }
  return Status::ok();
}

// Flat modulator ledger for the bulk verifier. A DeleteManyInfo for m
// targets mentions O(m log n) modulators, most of them several times
// (overlapping root paths); per-mention hash-map churn dominated the whole
// verification at m = 256. Instead, per-slot consistency is a direct-index
// lookup (slots are bounded by 2 * node_count, and the slot table is
// touched once per mention), and pairwise distinctness sorts the unique
// values by a 64-bit prehash so full value compares happen only within
// hash-equal runs.
class ModLedger {
 public:
  explicit ModLedger(std::uint64_t node_count)
      : first_seen_(2 * node_count, nullptr) {}

  // Records `value` for the slot; fails if the slot was already seen with
  // a conflicting value (a self-inconsistent server response).
  Status add(NodeId node, Kind kind, const Md& value) {
    const std::uint64_t slot = node * 2 + (kind == Kind::kLeaf ? 1 : 0);
    const Md*& seen = first_seen_[slot];
    if (seen == nullptr) {
      seen = &value;
      unique_.push_back(&value);
      return Status::ok();
    }
    if (*seen != value) {
      return Status(Errc::kTamperDetected,
                    "delete info: node reported with conflicting modulators");
    }
    return Status::ok();  // consistent duplicate mention
  }

  // Pairwise distinctness across every distinct slot's value.
  Status check_distinct() const {
    std::vector<std::pair<std::uint64_t, const Md*>> by_hash;
    by_hash.reserve(unique_.size());
    const Md::Hasher hash;
    for (const Md* v : unique_) {
      by_hash.emplace_back(hash(*v), v);
    }
    std::sort(by_hash.begin(), by_hash.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first < b.first;
                return *a.second < *b.second;
              });
    for (std::size_t i = 1; i < by_hash.size(); ++i) {
      if (by_hash[i].first == by_hash[i - 1].first &&
          *by_hash[i].second == *by_hash[i - 1].second) {
        return Status(Errc::kDuplicateModulator,
                      "delete many info: modulators are not pairwise distinct");
      }
    }
    return Status::ok();
  }

 private:
  std::vector<const Md*> first_seen_;  // slot -> first recorded value
  std::vector<const Md*> unique_;      // distinct slots, in mention order
};

}  // namespace

ModList ClientMath::mods_of(const PathView& path, const Md& leaf_mod) {
  ModList mods = path.links;
  mods.push_back(leaf_mod);
  return mods;
}

Md ClientMath::derive_key(const Md& master, const PathView& path,
                          const Md& leaf_mod) const {
  Md cur = master;
  for (const Md& x : path.links) {
    cur = chain_.step(cur, x);
  }
  return chain_.step(cur, leaf_mod);
}

Status ClientMath::verify_delete_info(const DeleteInfo& info) const {
  const std::size_t w = width();
  if (!info.path.well_formed()) {
    return Status(Errc::kTamperDetected, "delete info: malformed path");
  }
  if (info.cut.size() != info.path.depth()) {
    return Status(Errc::kTamperDetected, "delete info: cut size mismatch");
  }
  if (info.leaf_mod.size() != w) {
    return Status(Errc::kTamperDetected, "delete info: bad leaf modulator");
  }

  ModMap map;
  for (std::size_t i = 0; i + 1 < info.path.nodes.size(); ++i) {
    if (info.path.links[i].size() != w) {
      return Status(Errc::kTamperDetected, "delete info: bad link width");
    }
    if (auto st = put(map, info.path.nodes[i + 1], Kind::kLink,
                      info.path.links[i]);
        !st) {
      return st;
    }
  }
  if (auto st = put(map, info.path.target(), Kind::kLeaf, info.leaf_mod);
      !st) {
    return st;
  }
  for (std::size_t i = 0; i < info.cut.size(); ++i) {
    const CutEntry& e = info.cut[i];
    if (e.node != sibling_of(info.path.nodes[i + 1])) {
      return Status(Errc::kTamperDetected, "delete info: cut geometry wrong");
    }
    if (e.link.size() != w || (e.is_leaf && e.leaf_mod.size() != w)) {
      return Status(Errc::kTamperDetected, "delete info: bad cut modulator");
    }
    if (auto st = put(map, e.node, Kind::kLink, e.link); !st) {
      return st;
    }
    if (e.is_leaf) {
      if (auto st = put(map, e.node, Kind::kLeaf, e.leaf_mod); !st) {
        return st;
      }
    }
  }

  if (info.has_balance) {
    if (!info.t_path.well_formed() || info.t_path.depth() == 0) {
      return Status(Errc::kTamperDetected,
                    "delete info: malformed balancing path");
    }
    if (info.t_leaf_mod.size() != w || info.s_link.size() != w ||
        info.s_leaf_mod.size() != w) {
      return Status(Errc::kTamperDetected,
                    "delete info: bad balancing modulators");
    }
    for (std::size_t i = 0; i + 1 < info.t_path.nodes.size(); ++i) {
      if (info.t_path.links[i].size() != w) {
        return Status(Errc::kTamperDetected, "delete info: bad link width");
      }
      if (auto st = put(map, info.t_path.nodes[i + 1], Kind::kLink,
                        info.t_path.links[i]);
          !st) {
        return st;
      }
    }
    const NodeId t = info.t_path.target();
    const NodeId s = sibling_of(t);
    if (auto st = put(map, t, Kind::kLeaf, info.t_leaf_mod); !st) {
      return st;
    }
    if (auto st = put(map, s, Kind::kLink, info.s_link); !st) {
      return st;
    }
    if (auto st = put(map, s, Kind::kLeaf, info.s_leaf_mod); !st) {
      return st;
    }
  }

  // The paper's client check: all modulators in MT(k) must be pairwise
  // distinct; a server that clones a path to keep a deleted key derivable
  // necessarily produces a duplicate (Theorem 2, case ii).
  std::unordered_set<Md, Md::Hasher> seen;
  seen.reserve(map.size());
  for (const auto& [slot, value] : map) {
    if (!seen.insert(value).second) {
      return Status(Errc::kDuplicateModulator,
                    "delete info: modulators are not pairwise distinct");
    }
  }
  return Status::ok();
}

Result<ClientMath::DeletePlan> ClientMath::plan_delete(
    const DeleteInfo& info, const Md& master_old, const Md& master_new,
    crypto::RandomSource& rnd) const {
  if (auto st = verify_delete_info(info); !st) {
    return Error(st.error());
  }
  if (master_old.size() != width() || master_new.size() != width()) {
    return Error(Errc::kInvalidArgument, "plan_delete: bad master key width");
  }

  const std::size_t l = info.path.depth();
  const std::vector<Md> pre_old = chain_.prefixes(master_old, info.path.links);
  const std::vector<Md> pre_new = chain_.prefixes(master_new, info.path.links);

  DeletePlan plan;
  plan.old_key = chain_.step(pre_old[l], info.leaf_mod);

  // The paper's footnote to Theorem 2: if by (astronomically unlikely)
  // coincidence F(K', M_k) == F(K, M_k), the client must pick another K'.
  if (chain_.step(pre_new[l], info.leaf_mod) == plan.old_key) {
    return Error(Errc::kInvalidArgument,
                 "plan_delete: new master key collides; pick another");
  }

  DeleteCommit& commit = plan.commit;
  commit.leaf = info.path.target();
  commit.deltas.reserve(l);
  std::unordered_map<NodeId, Md> delta_of;  // cut node -> delta(c)
  delta_of.reserve(l);
  for (std::size_t i = 0; i < l; ++i) {
    // M_c = <x_1 .. x_i-1, y_i>: the path prefix plus the cut link (Eq. 5).
    const Md& y = info.cut[i].link;
    Md delta = chain_.step(pre_old[i], y);
    delta ^= chain_.step(pre_new[i], y);
    commit.deltas.push_back(delta);
    delta_of.emplace(info.cut[i].node, delta);
  }

  if (!info.has_balance) {
    return plan;
  }
  commit.has_balance = true;

  // Post-adjustment value of the link modulator on edge (parent, child):
  // Eq. (6) XORs delta(parent) into both child links of every internal cut
  // node, so the edge changed iff its upper endpoint is in the cut.
  const auto post_link = [&](NodeId parent, const Md& link) {
    auto it = delta_of.find(parent);
    if (it == delta_of.end()) {
      return link;
    }
    Md v = link;
    v ^= it->second;
    return v;
  };
  // Eq. (7): a leaf cut node's leaf modulator absorbs its own delta.
  const auto post_leaf = [&](NodeId leaf, const Md& mod) {
    auto it = delta_of.find(leaf);
    if (it == delta_of.end()) {
      return mod;
    }
    Md v = mod;
    v ^= it->second;
    return v;
  };

  // Walk P(t) in the post-adjustment state under K'. By the cancellation
  // property (Lemma 1 applied along the unique cut crossing), these prefix
  // values equal the pre-adjustment ones under K below the cut, which is
  // exactly what Eqs. (8)-(9) rely on.
  const PathView& tp = info.t_path;
  const std::size_t j = tp.depth();
  std::vector<Md> tpre(j + 1);
  tpre[0] = master_new;
  for (std::size_t i = 0; i < j; ++i) {
    tpre[i + 1] =
        chain_.step(tpre[i], post_link(tp.nodes[i], tp.links[i]));
  }
  const Md& prefix_p = tpre[j - 1];  // F(K', M_p), p = parent of t
  const Md& prefix_t = tpre[j];      // F(K', M_p + <x_{p,t}>)

  const NodeId k = info.path.target();
  const NodeId t = tp.target();
  const NodeId s = sibling_of(t);
  const NodeId p = parent_of(t);

  const Md t_leaf_post = post_leaf(t, info.t_leaf_mod);
  const Md s_link_post = post_link(p, info.s_link);
  const Md s_leaf_post = post_leaf(s, info.s_leaf_mod);

  // Balancing Step 1 (Eq. 8): promote the surviving sibling of the last
  // pair into the parent slot, folding the removed link into its leaf
  // modulator so its data key is unchanged.
  if (k == t) {
    // The deleted leaf is t itself; s survives.
    Md promoted = prefix_p;
    promoted ^= chain_.step(prefix_p, s_link_post);
    promoted ^= s_leaf_post;
    commit.promoted_leaf_mod = promoted;
    return plan;
  }
  if (k == s) {
    // The deleted leaf is t's sibling; t survives and is promoted.
    Md promoted = prefix_p;
    promoted ^= prefix_t;
    promoted ^= t_leaf_post;
    commit.promoted_leaf_mod = promoted;
    return plan;
  }

  // General case: s is promoted (Step 1) and t is re-homed into k's slot
  // with a fresh link modulator (Step 2, Eq. 9).
  {
    Md promoted = prefix_p;
    promoted ^= chain_.step(prefix_p, s_link_post);
    promoted ^= s_leaf_post;
    commit.promoted_leaf_mod = promoted;
  }
  commit.has_step2 = true;
  // Fresh random link modulator for (parent(k), t), then Eq. 9: the new
  // leaf modulator that preserves t's data key at its new position. The
  // prefix to parent(k) under K' is pre_new[l-1]; P(k)'s own links are never
  // delta-adjusted (cut nodes hang off the path), so no post-transform is
  // needed there.
  commit.t_new_link = rnd.random_md(width());
  const Md b_prime = chain_.step(pre_new[l - 1], commit.t_new_link);
  Md t_new_leaf = b_prime;
  t_new_leaf ^= prefix_t;
  t_new_leaf ^= t_leaf_post;
  commit.t_new_leaf_mod = t_new_leaf;
  return plan;
}

Status ClientMath::verify_delete_many_info(const DeleteManyInfo& info) const {
  const std::size_t w = width();
  const std::size_t m = info.targets.size();
  const std::uint64_t nc = info.node_count;
  if (m == 0) {
    return Status(Errc::kTamperDetected, "delete many info: no targets");
  }
  if (nc == 0 || nc % 2 == 0) {
    return Status(Errc::kTamperDetected, "delete many info: bad node count");
  }
  if (m > leaf_count_of(nc)) {
    return Status(Errc::kTamperDetected,
                  "delete many info: more targets than leaves");
  }

  ModLedger ledger(nc);
  const auto put_path = [&](const PathView& path) -> Status {
    for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
      if (path.links[i].size() != w) {
        return Status(Errc::kTamperDetected,
                      "delete many info: bad link width");
      }
      if (auto st = ledger.add(path.nodes[i + 1], Kind::kLink, path.links[i]);
          !st) {
        return st;
      }
    }
    return Status::ok();
  };

  std::vector<NodeId> leaves;
  leaves.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const DeleteManyInfo::Target& t = info.targets[i];
    const NodeId d = t.path.well_formed() ? t.path.target() : kNoNode;
    if (d == kNoNode || !is_leaf_in(d, nc) || d >= nc) {
      return Status(Errc::kTamperDetected,
                    "delete many info: malformed target path");
    }
    if (i > 0 && d <= leaves.back()) {
      return Status(Errc::kTamperDetected,
                    "delete many info: targets not strictly ascending");
    }
    if (t.leaf_mod.size() != w) {
      return Status(Errc::kTamperDetected,
                    "delete many info: bad leaf modulator");
    }
    if (auto st = put_path(t.path); !st) {
      return st;
    }
    if (auto st = ledger.add(d, Kind::kLeaf, t.leaf_mod); !st) {
      return st;
    }
    leaves.push_back(d);
  }

  // The client recomputes the merged cut itself; the server's entries must
  // match it node for node.
  const std::vector<NodeId> expect_cut = merged_cut_nodes(nc, leaves);
  if (info.cut.size() != expect_cut.size()) {
    return Status(Errc::kTamperDetected, "delete many info: cut size mismatch");
  }
  for (std::size_t i = 0; i < info.cut.size(); ++i) {
    const CutEntry& e = info.cut[i];
    if (e.node != expect_cut[i] || e.is_leaf != is_leaf_in(e.node, nc)) {
      return Status(Errc::kTamperDetected,
                    "delete many info: cut geometry wrong");
    }
    if (e.link.size() != w || (e.is_leaf && e.leaf_mod.size() != w)) {
      return Status(Errc::kTamperDetected,
                    "delete many info: bad cut modulator");
    }
    if (auto st = ledger.add(e.node, Kind::kLink, e.link); !st) {
      return st;
    }
    if (e.is_leaf) {
      if (auto st = ledger.add(e.node, Kind::kLeaf, e.leaf_mod); !st) {
        return st;
      }
    }
  }

  // Relocation geometry: holes that are not deleted slots need their own
  // paths; every mover needs path + leaf modulator, in ascending order.
  const BulkGeometry geo = bulk_geometry(nc, leaves);
  const std::unordered_set<NodeId> dset(leaves.begin(), leaves.end());
  std::vector<NodeId> expect_holes;
  for (NodeId h : geo.holes) {
    if (!dset.contains(h)) {
      expect_holes.push_back(h);
    }
  }
  if (info.hole_paths.size() != expect_holes.size()) {
    return Status(Errc::kTamperDetected,
                  "delete many info: hole path count mismatch");
  }
  for (std::size_t i = 0; i < expect_holes.size(); ++i) {
    const PathView& path = info.hole_paths[i];
    if (!path.well_formed() || path.target() != expect_holes[i]) {
      return Status(Errc::kTamperDetected,
                    "delete many info: malformed hole path");
    }
    if (auto st = put_path(path); !st) {
      return st;
    }
  }
  if (info.movers.size() != geo.movers.size()) {
    return Status(Errc::kTamperDetected,
                  "delete many info: mover count mismatch");
  }
  for (std::size_t i = 0; i < geo.movers.size(); ++i) {
    const DeleteManyInfo::Mover& mv = info.movers[i];
    if (!mv.path.well_formed() || mv.path.target() != geo.movers[i]) {
      return Status(Errc::kTamperDetected,
                    "delete many info: malformed mover path");
    }
    if (mv.leaf_mod.size() != w) {
      return Status(Errc::kTamperDetected,
                    "delete many info: bad mover leaf modulator");
    }
    if (auto st = put_path(mv.path); !st) {
      return st;
    }
    if (auto st = ledger.add(geo.movers[i], Kind::kLeaf, mv.leaf_mod); !st) {
      return st;
    }
  }

  // Per-slot consistency was enforced on every add; what remains is
  // pairwise distinctness across the whole bundle (Theorem 2's client
  // check, applied to the union of all supplied branches).
  return ledger.check_distinct();
}

Result<ClientMath::DeleteManyPlan> ClientMath::plan_delete_many(
    const DeleteManyInfo& info, const Md& master_old, const Md& master_new,
    crypto::RandomSource& rnd, ThreadPool* pool) const {
  if (auto st = verify_delete_many_info(info); !st) {
    return Error(st.error());
  }
  if (master_old.size() != width() || master_new.size() != width()) {
    return Error(Errc::kInvalidArgument,
                 "plan_delete_many: bad master key width");
  }

  std::vector<NodeId> leaves;
  leaves.reserve(info.targets.size());
  for (const DeleteManyInfo::Target& t : info.targets) {
    leaves.push_back(t.path.target());
  }

  // Link modulator of every node mentioned anywhere in the bundle (verify
  // already proved consistency across overlapping branches). Sized up
  // front: rehashing a map this large costs more than the hashing below.
  const std::size_t mention_bound =
      (info.targets.size() + info.hole_paths.size() + info.movers.size()) *
          (depth_of(static_cast<NodeId>(info.node_count - 1)) + 1) +
      info.cut.size();
  std::unordered_map<NodeId, Md> link_of;
  link_of.reserve(mention_bound);
  const auto absorb_path = [&](const PathView& path) {
    for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
      link_of.emplace(path.nodes[i + 1], path.links[i]);
    }
  };
  for (const DeleteManyInfo::Target& t : info.targets) {
    absorb_path(t.path);
  }
  for (const PathView& p : info.hole_paths) {
    absorb_path(p);
  }
  for (const DeleteManyInfo::Mover& mv : info.movers) {
    absorb_path(mv.path);
  }
  for (const CutEntry& e : info.cut) {
    link_of.emplace(e.node, e.link);
  }

  // Memoized pre-adjustment prefixes. Queried only at nodes on deleted
  // leaves' paths (A-nodes), whose edges are never delta-adjusted, so the
  // raw links are correct under both keys.
  std::unordered_map<NodeId, Md> pre_old_of{{root_id(), master_old}};
  std::unordered_map<NodeId, Md> pre_new_of{{root_id(), master_new}};
  pre_old_of.reserve(mention_bound);
  pre_new_of.reserve(mention_bound);
  const auto plain_prefix = [&](std::unordered_map<NodeId, Md>& memo,
                                NodeId v) -> Md {
    std::vector<NodeId> pending;
    NodeId cur = v;
    while (!memo.contains(cur)) {
      pending.push_back(cur);
      cur = parent_of(cur);
    }
    for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
      const Md step = chain_.step(memo.at(parent_of(*it)), link_of.at(*it));
      memo.emplace(*it, step);
    }
    return memo.at(v);
  };

  DeleteManyPlan plan;
  plan.old_keys.reserve(info.targets.size());
  DeleteManyCommit& commit = plan.commit;
  commit.leaves = leaves;

  // Per-item wrong-leaf check (the paper's footnote to Theorem 2, applied
  // to every target): one shared K' must miss ALL m targets.
  for (const DeleteManyInfo::Target& t : info.targets) {
    const NodeId d = t.path.target();
    const Md old_key = chain_.step(plain_prefix(pre_old_of, d), t.leaf_mod);
    if (chain_.step(plain_prefix(pre_new_of, d), t.leaf_mod) == old_key) {
      return Error(Errc::kInvalidArgument,
                   "plan_delete_many: new master key collides; pick another");
    }
    plan.old_keys.push_back(old_key);
  }

  // One delta per merged-cut node (Eq. 5 with M_c = path prefix to
  // parent(c) plus the cut link). parent(c) is always an A-node. The
  // prefix walks share the memo tables and stay sequential; the two chain
  // steps per cut node are independent of each other, so with a pool they
  // fan out across workers (each worker gets its own hash context — the
  // EVP context inside ModulatedHashChain is not shareable).
  struct CutPrefix {
    Md pre_old;
    Md pre_new;
  };
  std::vector<CutPrefix> cut_prefix;
  cut_prefix.reserve(info.cut.size());
  for (const CutEntry& e : info.cut) {
    const NodeId p = parent_of(e.node);
    cut_prefix.push_back(
        CutPrefix{plain_prefix(pre_old_of, p), plain_prefix(pre_new_of, p)});
  }
  commit.deltas.resize(info.cut.size());
  const auto delta_range = [&](std::size_t begin, std::size_t end,
                               const ModulatedHashChain& chain) {
    for (std::size_t i = begin; i < end; ++i) {
      Md delta = chain.step(cut_prefix[i].pre_old, info.cut[i].link);
      delta ^= chain.step(cut_prefix[i].pre_new, info.cut[i].link);
      commit.deltas[i] = delta;
    }
  };
  if (pool != nullptr && pool->size() > 1 && info.cut.size() >= 64) {
    std::vector<ModulatedHashChain> chains;
    chains.reserve(pool->size());
    for (std::size_t i = 0; i < pool->size(); ++i) {
      chains.emplace_back(alg());
    }
    pool->parallel_for(info.cut.size(), /*grain=*/32,
                       [&](std::size_t begin, std::size_t end,
                           std::size_t worker) {
                         delta_range(begin, end, chains[worker]);
                       });
  } else {
    delta_range(0, info.cut.size(), chain_);
  }
  std::unordered_map<NodeId, Md> delta_of;
  delta_of.reserve(info.cut.size());
  for (std::size_t i = 0; i < info.cut.size(); ++i) {
    delta_of.emplace(info.cut[i].node, commit.deltas[i]);
  }

  // Post-adjustment transforms, as in plan_delete: an edge changed iff its
  // upper endpoint is an internal cut node; a cut leaf absorbs its delta.
  const auto post_link = [&](NodeId parent, const Md& link) {
    auto it = delta_of.find(parent);
    if (it == delta_of.end()) {
      return link;
    }
    Md v = link;
    v ^= it->second;
    return v;
  };
  const auto post_leaf = [&](NodeId leaf, const Md& mod) {
    auto it = delta_of.find(leaf);
    if (it == delta_of.end()) {
      return mod;
    }
    Md v = mod;
    v ^= it->second;
    return v;
  };

  // Post-adjustment prefixes under K' (the state every relocation formula
  // is evaluated in). By the single-cut-crossing cancellation these equal
  // the pre-adjustment values under K below each surviving leaf's cut node.
  std::unordered_map<NodeId, Md> post_new_of{{root_id(), master_new}};
  post_new_of.reserve(mention_bound);
  const auto post_prefix = [&](NodeId v) -> Md {
    std::vector<NodeId> pending;
    NodeId cur = v;
    while (!post_new_of.contains(cur)) {
      pending.push_back(cur);
      cur = parent_of(cur);
    }
    for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
      const NodeId p = parent_of(*it);
      const Md step =
          chain_.step(post_new_of.at(p), post_link(p, link_of.at(*it)));
      post_new_of.emplace(*it, step);
    }
    return post_new_of.at(v);
  };

  // Relocations: refill hole i with mover i. A hole that is a deleted slot
  // gets a fresh random link (Eq. 9 pattern); a formerly internal hole
  // keeps its existing (possibly delta-adjusted) link (Eq. 8 pattern).
  // Either way the mover's data key is preserved:
  //   H(target_prefix ^ new_leaf_mod) = H(mover_prefix ^ mover_leaf_post).
  const BulkGeometry geo = bulk_geometry(info.node_count, leaves);
  const std::unordered_set<NodeId> dset(leaves.begin(), leaves.end());
  commit.relocs.reserve(geo.holes.size());
  for (std::size_t i = 0; i < geo.holes.size(); ++i) {
    const NodeId h = geo.holes[i];
    const NodeId v = geo.movers[i];
    const Md mover_prefix = post_prefix(v);
    const Md mover_leaf_post = post_leaf(v, info.movers[i].leaf_mod);
    DeleteManyCommit::Reloc rl;
    Md target_prefix;
    if (dset.contains(h)) {
      rl.has_new_link = true;
      rl.new_link = rnd.random_md(width());
      target_prefix = chain_.step(post_prefix(parent_of(h)), rl.new_link);
    } else {
      target_prefix = post_prefix(h);
    }
    Md new_mod = target_prefix;
    new_mod ^= mover_prefix;
    new_mod ^= mover_leaf_post;
    rl.new_leaf_mod = new_mod;
    commit.relocs.push_back(std::move(rl));
  }
  return plan;
}

Result<ClientMath::InsertPlan> ClientMath::plan_insert(
    const InsertInfo& info, const Md& master,
    crypto::RandomSource& rnd) const {
  const std::size_t w = width();
  if (master.size() != w) {
    return Error(Errc::kInvalidArgument, "plan_insert: bad master key width");
  }
  InsertPlan plan;
  if (info.empty_tree) {
    plan.commit.empty_tree = true;
    plan.commit.root_leaf_mod = rnd.random_md(w);
    plan.item_key = chain_.step(master, plan.commit.root_leaf_mod);
    return plan;
  }
  if (!info.q_path.well_formed()) {
    return Error(Errc::kTamperDetected, "insert info: malformed path");
  }
  if (info.q_leaf_mod.size() != w) {
    return Error(Errc::kTamperDetected, "insert info: bad leaf modulator");
  }
  for (const Md& x : info.q_path.links) {
    if (x.size() != w) {
      return Error(Errc::kTamperDetected, "insert info: bad link width");
    }
  }

  InsertCommit& c = plan.commit;
  c.q = info.q_path.target();
  c.left_link = rnd.random_md(w);
  c.right_link = rnd.random_md(w);
  c.new_leaf_mod = rnd.random_md(w);

  // A = F(K, M_q minus the leaf modulator).
  const Md a = chain_.eval(master, info.q_path.links);
  // Keep q's data key unchanged after it moves under the new internal node:
  // x_t'' = F(K, M^-) ^ F(K, M^- + <x_left>) ^ x_t  (Section IV-E).
  Md moved = a;
  moved ^= chain_.step(a, c.left_link);
  moved ^= info.q_leaf_mod;
  c.moved_leaf_mod = moved;

  // Data key of the new leaf e.
  plan.item_key = chain_.step(chain_.step(a, c.right_link), c.new_leaf_mod);
  return plan;
}

std::vector<Md> ClientMath::derive_all_keys(const Md& master,
                                            std::span<const Md> link_mods,
                                            std::span<const Md> leaf_mods) const {
  const std::size_t nodes = link_mods.size();
  const std::size_t n = leaf_count_of(nodes);
  std::vector<Md> keys;
  if (nodes == 0) {
    return keys;
  }
  // Heap order is topological: every parent index precedes its children, so
  // one linear pass computes F(K, prefix) for all nodes, hashing each node
  // exactly once (2n-1 hashes for n keys instead of n log n).
  std::vector<Md> prefix(nodes);
  prefix[0] = master;
  for (NodeId v = 1; v < nodes; ++v) {
    prefix[v] = chain_.step(prefix[parent_of(v)], link_mods[v]);
  }
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(chain_.step(prefix[n - 1 + i], leaf_mods[i]));
  }
  return keys;
}

}  // namespace fgad::core
