#include "core/client_math.h"

#include <unordered_map>
#include <unordered_set>

namespace fgad::core {

namespace {

// Key for per-node modulator consistency maps: a node may carry both a link
// modulator (edge from its parent) and a leaf modulator; track them apart.
enum class Kind : std::uint8_t { kLink, kLeaf };

struct Slot {
  NodeId node;
  Kind kind;
  bool operator==(const Slot&) const = default;
};

struct SlotHash {
  std::size_t operator()(const Slot& s) const noexcept {
    return std::hash<std::uint64_t>()(s.node * 2 +
                                      (s.kind == Kind::kLeaf ? 1 : 0));
  }
};

using ModMap = std::unordered_map<Slot, Md, SlotHash>;

// Records `value` for `slot`; fails if the same slot was already seen with a
// conflicting value (a self-inconsistent server response).
Status put(ModMap& map, NodeId node, Kind kind, const Md& value) {
  auto [it, inserted] = map.emplace(Slot{node, kind}, value);
  if (!inserted && it->second != value) {
    return Status(Errc::kTamperDetected,
                  "delete info: node reported with conflicting modulators");
  }
  return Status::ok();
}

}  // namespace

ModList ClientMath::mods_of(const PathView& path, const Md& leaf_mod) {
  ModList mods = path.links;
  mods.push_back(leaf_mod);
  return mods;
}

Md ClientMath::derive_key(const Md& master, const PathView& path,
                          const Md& leaf_mod) const {
  Md cur = master;
  for (const Md& x : path.links) {
    cur = chain_.step(cur, x);
  }
  return chain_.step(cur, leaf_mod);
}

Status ClientMath::verify_delete_info(const DeleteInfo& info) const {
  const std::size_t w = width();
  if (!info.path.well_formed()) {
    return Status(Errc::kTamperDetected, "delete info: malformed path");
  }
  if (info.cut.size() != info.path.depth()) {
    return Status(Errc::kTamperDetected, "delete info: cut size mismatch");
  }
  if (info.leaf_mod.size() != w) {
    return Status(Errc::kTamperDetected, "delete info: bad leaf modulator");
  }

  ModMap map;
  for (std::size_t i = 0; i + 1 < info.path.nodes.size(); ++i) {
    if (info.path.links[i].size() != w) {
      return Status(Errc::kTamperDetected, "delete info: bad link width");
    }
    if (auto st = put(map, info.path.nodes[i + 1], Kind::kLink,
                      info.path.links[i]);
        !st) {
      return st;
    }
  }
  if (auto st = put(map, info.path.target(), Kind::kLeaf, info.leaf_mod);
      !st) {
    return st;
  }
  for (std::size_t i = 0; i < info.cut.size(); ++i) {
    const CutEntry& e = info.cut[i];
    if (e.node != sibling_of(info.path.nodes[i + 1])) {
      return Status(Errc::kTamperDetected, "delete info: cut geometry wrong");
    }
    if (e.link.size() != w || (e.is_leaf && e.leaf_mod.size() != w)) {
      return Status(Errc::kTamperDetected, "delete info: bad cut modulator");
    }
    if (auto st = put(map, e.node, Kind::kLink, e.link); !st) {
      return st;
    }
    if (e.is_leaf) {
      if (auto st = put(map, e.node, Kind::kLeaf, e.leaf_mod); !st) {
        return st;
      }
    }
  }

  if (info.has_balance) {
    if (!info.t_path.well_formed() || info.t_path.depth() == 0) {
      return Status(Errc::kTamperDetected,
                    "delete info: malformed balancing path");
    }
    if (info.t_leaf_mod.size() != w || info.s_link.size() != w ||
        info.s_leaf_mod.size() != w) {
      return Status(Errc::kTamperDetected,
                    "delete info: bad balancing modulators");
    }
    for (std::size_t i = 0; i + 1 < info.t_path.nodes.size(); ++i) {
      if (info.t_path.links[i].size() != w) {
        return Status(Errc::kTamperDetected, "delete info: bad link width");
      }
      if (auto st = put(map, info.t_path.nodes[i + 1], Kind::kLink,
                        info.t_path.links[i]);
          !st) {
        return st;
      }
    }
    const NodeId t = info.t_path.target();
    const NodeId s = sibling_of(t);
    if (auto st = put(map, t, Kind::kLeaf, info.t_leaf_mod); !st) {
      return st;
    }
    if (auto st = put(map, s, Kind::kLink, info.s_link); !st) {
      return st;
    }
    if (auto st = put(map, s, Kind::kLeaf, info.s_leaf_mod); !st) {
      return st;
    }
  }

  // The paper's client check: all modulators in MT(k) must be pairwise
  // distinct; a server that clones a path to keep a deleted key derivable
  // necessarily produces a duplicate (Theorem 2, case ii).
  std::unordered_set<Md, Md::Hasher> seen;
  seen.reserve(map.size());
  for (const auto& [slot, value] : map) {
    if (!seen.insert(value).second) {
      return Status(Errc::kDuplicateModulator,
                    "delete info: modulators are not pairwise distinct");
    }
  }
  return Status::ok();
}

Result<ClientMath::DeletePlan> ClientMath::plan_delete(
    const DeleteInfo& info, const Md& master_old, const Md& master_new,
    crypto::RandomSource& rnd) const {
  if (auto st = verify_delete_info(info); !st) {
    return Error(st.error());
  }
  if (master_old.size() != width() || master_new.size() != width()) {
    return Error(Errc::kInvalidArgument, "plan_delete: bad master key width");
  }

  const std::size_t l = info.path.depth();
  const std::vector<Md> pre_old = chain_.prefixes(master_old, info.path.links);
  const std::vector<Md> pre_new = chain_.prefixes(master_new, info.path.links);

  DeletePlan plan;
  plan.old_key = chain_.step(pre_old[l], info.leaf_mod);

  // The paper's footnote to Theorem 2: if by (astronomically unlikely)
  // coincidence F(K', M_k) == F(K, M_k), the client must pick another K'.
  if (chain_.step(pre_new[l], info.leaf_mod) == plan.old_key) {
    return Error(Errc::kInvalidArgument,
                 "plan_delete: new master key collides; pick another");
  }

  DeleteCommit& commit = plan.commit;
  commit.leaf = info.path.target();
  commit.deltas.reserve(l);
  std::unordered_map<NodeId, Md> delta_of;  // cut node -> delta(c)
  delta_of.reserve(l);
  for (std::size_t i = 0; i < l; ++i) {
    // M_c = <x_1 .. x_i-1, y_i>: the path prefix plus the cut link (Eq. 5).
    const Md& y = info.cut[i].link;
    Md delta = chain_.step(pre_old[i], y);
    delta ^= chain_.step(pre_new[i], y);
    commit.deltas.push_back(delta);
    delta_of.emplace(info.cut[i].node, delta);
  }

  if (!info.has_balance) {
    return plan;
  }
  commit.has_balance = true;

  // Post-adjustment value of the link modulator on edge (parent, child):
  // Eq. (6) XORs delta(parent) into both child links of every internal cut
  // node, so the edge changed iff its upper endpoint is in the cut.
  const auto post_link = [&](NodeId parent, const Md& link) {
    auto it = delta_of.find(parent);
    if (it == delta_of.end()) {
      return link;
    }
    Md v = link;
    v ^= it->second;
    return v;
  };
  // Eq. (7): a leaf cut node's leaf modulator absorbs its own delta.
  const auto post_leaf = [&](NodeId leaf, const Md& mod) {
    auto it = delta_of.find(leaf);
    if (it == delta_of.end()) {
      return mod;
    }
    Md v = mod;
    v ^= it->second;
    return v;
  };

  // Walk P(t) in the post-adjustment state under K'. By the cancellation
  // property (Lemma 1 applied along the unique cut crossing), these prefix
  // values equal the pre-adjustment ones under K below the cut, which is
  // exactly what Eqs. (8)-(9) rely on.
  const PathView& tp = info.t_path;
  const std::size_t j = tp.depth();
  std::vector<Md> tpre(j + 1);
  tpre[0] = master_new;
  for (std::size_t i = 0; i < j; ++i) {
    tpre[i + 1] =
        chain_.step(tpre[i], post_link(tp.nodes[i], tp.links[i]));
  }
  const Md& prefix_p = tpre[j - 1];  // F(K', M_p), p = parent of t
  const Md& prefix_t = tpre[j];      // F(K', M_p + <x_{p,t}>)

  const NodeId k = info.path.target();
  const NodeId t = tp.target();
  const NodeId s = sibling_of(t);
  const NodeId p = parent_of(t);

  const Md t_leaf_post = post_leaf(t, info.t_leaf_mod);
  const Md s_link_post = post_link(p, info.s_link);
  const Md s_leaf_post = post_leaf(s, info.s_leaf_mod);

  // Balancing Step 1 (Eq. 8): promote the surviving sibling of the last
  // pair into the parent slot, folding the removed link into its leaf
  // modulator so its data key is unchanged.
  if (k == t) {
    // The deleted leaf is t itself; s survives.
    Md promoted = prefix_p;
    promoted ^= chain_.step(prefix_p, s_link_post);
    promoted ^= s_leaf_post;
    commit.promoted_leaf_mod = promoted;
    return plan;
  }
  if (k == s) {
    // The deleted leaf is t's sibling; t survives and is promoted.
    Md promoted = prefix_p;
    promoted ^= prefix_t;
    promoted ^= t_leaf_post;
    commit.promoted_leaf_mod = promoted;
    return plan;
  }

  // General case: s is promoted (Step 1) and t is re-homed into k's slot
  // with a fresh link modulator (Step 2, Eq. 9).
  {
    Md promoted = prefix_p;
    promoted ^= chain_.step(prefix_p, s_link_post);
    promoted ^= s_leaf_post;
    commit.promoted_leaf_mod = promoted;
  }
  commit.has_step2 = true;
  // Fresh random link modulator for (parent(k), t), then Eq. 9: the new
  // leaf modulator that preserves t's data key at its new position. The
  // prefix to parent(k) under K' is pre_new[l-1]; P(k)'s own links are never
  // delta-adjusted (cut nodes hang off the path), so no post-transform is
  // needed there.
  commit.t_new_link = rnd.random_md(width());
  const Md b_prime = chain_.step(pre_new[l - 1], commit.t_new_link);
  Md t_new_leaf = b_prime;
  t_new_leaf ^= prefix_t;
  t_new_leaf ^= t_leaf_post;
  commit.t_new_leaf_mod = t_new_leaf;
  return plan;
}

Result<ClientMath::InsertPlan> ClientMath::plan_insert(
    const InsertInfo& info, const Md& master,
    crypto::RandomSource& rnd) const {
  const std::size_t w = width();
  if (master.size() != w) {
    return Error(Errc::kInvalidArgument, "plan_insert: bad master key width");
  }
  InsertPlan plan;
  if (info.empty_tree) {
    plan.commit.empty_tree = true;
    plan.commit.root_leaf_mod = rnd.random_md(w);
    plan.item_key = chain_.step(master, plan.commit.root_leaf_mod);
    return plan;
  }
  if (!info.q_path.well_formed()) {
    return Error(Errc::kTamperDetected, "insert info: malformed path");
  }
  if (info.q_leaf_mod.size() != w) {
    return Error(Errc::kTamperDetected, "insert info: bad leaf modulator");
  }
  for (const Md& x : info.q_path.links) {
    if (x.size() != w) {
      return Error(Errc::kTamperDetected, "insert info: bad link width");
    }
  }

  InsertCommit& c = plan.commit;
  c.q = info.q_path.target();
  c.left_link = rnd.random_md(w);
  c.right_link = rnd.random_md(w);
  c.new_leaf_mod = rnd.random_md(w);

  // A = F(K, M_q minus the leaf modulator).
  const Md a = chain_.eval(master, info.q_path.links);
  // Keep q's data key unchanged after it moves under the new internal node:
  // x_t'' = F(K, M^-) ^ F(K, M^- + <x_left>) ^ x_t  (Section IV-E).
  Md moved = a;
  moved ^= chain_.step(a, c.left_link);
  moved ^= info.q_leaf_mod;
  c.moved_leaf_mod = moved;

  // Data key of the new leaf e.
  plan.item_key = chain_.step(chain_.step(a, c.right_link), c.new_leaf_mod);
  return plan;
}

std::vector<Md> ClientMath::derive_all_keys(const Md& master,
                                            std::span<const Md> link_mods,
                                            std::span<const Md> leaf_mods) const {
  const std::size_t nodes = link_mods.size();
  const std::size_t n = leaf_count_of(nodes);
  std::vector<Md> keys;
  if (nodes == 0) {
    return keys;
  }
  // Heap order is topological: every parent index precedes its children, so
  // one linear pass computes F(K, prefix) for all nodes, hashing each node
  // exactly once (2n-1 hashes for n keys instead of n log n).
  std::vector<Md> prefix(nodes);
  prefix[0] = master;
  for (NodeId v = 1; v < nodes; ++v) {
    prefix[v] = chain_.step(prefix[parent_of(v)], link_mods[v]);
  }
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(chain_.step(prefix[n - 1 + i], leaf_mods[i]));
  }
  return keys;
}

}  // namespace fgad::core
