// Parallel bulk key-derivation & sealing engine (whole-file operations).
//
// The modulation tree's prefix values form a heap-ordered recurrence
// (prefix[v] = H(prefix[parent(v)] ^ link[v])), which is embarrassingly
// parallel below any fixed level: the subtrees rooted at level L are
// independent once their roots' prefixes are known. BatchDeriver exploits
// that:
//
//   1. the top of the tree (every node above and including level L) is
//      derived sequentially on the calling thread — at most O(threads)
//      nodes;
//   2. each level-L subtree is handed to a ThreadPool worker, which walks
//      its per-level contiguous node ranges with a worker-local
//      ModulatedHashChain (OpenSSL EVP contexts are not shareable across
//      threads — see DESIGN.md Section 10's thread-local-Hasher rule);
//   3. sealing / unsealing of the items rides the same pool in a second
//      parallel_for, with a worker-local ItemCodec per chunk.
//
// Hash outputs are deterministic, so the derived keys are byte-identical
// to the scalar ClientMath::derive_all_keys at every thread count; sealing
// is byte-identical too because IVs are pre-drawn in item order by the
// caller instead of inside the loop. `threads = 1` runs everything inline
// on the caller — exactly the seed code path.
#pragma once

#include <functional>
#include <memory>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/chain.h"
#include "core/item_codec.h"
#include "core/node_id.h"

namespace fgad::core {

class BatchDeriver {
 public:
  struct Options {
    std::size_t threads = 0;  // 0 = hardware_concurrency; 1 = fully serial
    // Below this many tree nodes the parallel path is not worth the
    // fork/join; the scalar pass runs instead (output is identical).
    std::size_t min_parallel_nodes = 1 << 12;
    // Minimum items per seal/open chunk (AES work per item is larger than
    // one hash, so chunks can be finer than derivation's).
    std::size_t seal_grain = 64;
  };

  explicit BatchDeriver(HashAlg alg) : BatchDeriver(alg, Options{}) {}
  BatchDeriver(HashAlg alg, Options opts);

  HashAlg alg() const noexcept { return alg_; }
  std::size_t threads() const noexcept { return pool_ ? pool_->size() : 1; }
  const Options& options() const noexcept { return opts_; }
  /// The underlying pool (null when fully serial), for callers that want
  /// to fan other batch work out over the same workers.
  ThreadPool* pool() const noexcept { return pool_.get(); }

  /// Derives all n data keys of a serialized whole tree, indexed by
  /// leaf node id - (n-1). Byte-identical to ClientMath::derive_all_keys.
  std::vector<Md> derive_all_keys(const Md& master,
                                  std::span<const Md> link_mods,
                                  std::span<const Md> leaf_mods) const;

  /// Seals item i (supplied by `item_at`, which must be thread-safe when
  /// threads > 1) under keys[i] with counter first_r + i and the pre-drawn
  /// IV ivs[i] (kAesBlockSize bytes each, drawn in item order so output
  /// matches a sequential ItemCodec::seal loop bit-for-bit). When
  /// `plain_sizes` is non-empty (size n), it receives each plaintext's size.
  std::vector<Bytes> seal_all(std::span<const Md> keys,
                              const std::function<Bytes(std::size_t)>& item_at,
                              std::uint64_t first_r,
                              std::span<const std::uint8_t> ivs,
                              std::span<std::uint64_t> plain_sizes = {}) const;

  /// One unsealing work unit: `key_index` selects the data key, `expect_r`
  /// is the counter value the record must carry (0-cost uniqueness check).
  struct OpenTask {
    std::size_t key_index = 0;
    BytesView sealed;
    std::uint64_t expect_r = 0;
  };

  /// Opens every task in parallel. On failure returns the error of the
  /// lowest-indexed failing task (deterministic regardless of scheduling),
  /// with the same codes/messages a sequential open loop produces.
  Result<std::vector<Bytes>> open_all(std::span<const Md> keys,
                                      std::span<const OpenTask> tasks) const;

 private:
  // Derives prefix values (and leaf keys) for the subtree rooted at `s`,
  // walking its per-level contiguous node ranges.
  static void derive_subtree(const ModulatedHashChain& chain, NodeId s,
                             std::span<const Md> link_mods,
                             std::span<const Md> leaf_mods,
                             std::span<Md> prefix, std::span<Md> keys);

  HashAlg alg_;
  Options opts_;
  std::unique_ptr<ThreadPool> pool_;  // null when threads == 1
};

}  // namespace fgad::core
