// Pure geometry of merged-cut bulk deletion (DESIGN.md §16).
//
// Deleting a set D of m leaves from a left-complete tree in ONE operation
// needs two pieces of arithmetic that the client and the server must agree
// on exactly (the client recomputes both to validate the server's view):
//
//   * the *merged cut*: the union of the m per-leaf sibling cuts,
//     deduplicated, minus any cut node that is itself an ancestor of another
//     deleted leaf. Equivalently: the frontier of the deleted region — every
//     node c with sibling(c) on some deleted leaf's path and no deleted leaf
//     inside subtree(c). |cut| <= m * log(n/m) instead of m * log n.
//
//   * the *relocation plan* restoring left-completeness: after removing m
//     leaves the tree shrinks from N to N' = N - 2m nodes. Final leaf slots
//     that were internal nodes or deleted leaves ("holes") are refilled by
//     the surviving leaves that lived in the chopped tail [N', N)
//     ("movers"), paired index-wise in ascending node order. For m = 1 this
//     degenerates to the paper's Section IV-D balancing (Step 1 promote +
//     Step 2 re-home).
//
// Both functions take the leaf set sorted ascending and distinct; callers
// validate that before asking for geometry.
#pragma once

#include <span>
#include <vector>

#include "core/node_id.h"

namespace fgad::core {

/// Merged cut of `leaves` in a tree of `node_count` nodes, node ids
/// ascending (for m = 1 this equals the canonical per-depth cut order,
/// since path-node ids strictly increase with depth).
std::vector<NodeId> merged_cut_nodes(std::size_t node_count,
                                     std::span<const NodeId> leaves);

struct BulkGeometry {
  std::size_t new_node_count = 0;  // N' = N - 2m (0 when every leaf dies)
  /// Final leaf slots that need a relocated leaf, ascending: formerly
  /// internal nodes whose children were chopped, plus deleted slots that
  /// survive as slots.
  std::vector<NodeId> holes;
  /// Surviving leaves in the chopped tail [N', N), ascending. Always the
  /// same length as `holes`; holes[i] is refilled by movers[i].
  std::vector<NodeId> movers;
};

BulkGeometry bulk_geometry(std::size_t node_count,
                           std::span<const NodeId> leaves);

}  // namespace fgad::core
