// Client-side computations of the key-modulation scheme.
//
// Everything here runs on the client: it is the only party holding the
// master key K. Given the server-supplied views (DeleteInfo / InsertInfo),
// ClientMath
//   * enforces the paper's security checks (MT(k) modulators pairwise
//     distinct, per-node consistency across overlapping branches);
//   * derives data keys k = F(K, M_k);
//   * plans deletions: delta(c) = F(K,M_c) ^ F(K',M_c) for the cut (Eq. 5)
//     plus the balancing modulators (Eqs. 8-9), all evaluated in the
//     post-adjustment state under K' (see DESIGN.md Section 5);
//   * plans insertions (Section IV-E).
//
// ClientMath is stateless apart from the reusable hash context; the caller
// owns keys and randomness.
#pragma once

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/chain.h"
#include "core/views.h"
#include "crypto/random.h"

namespace fgad::core {

class ClientMath {
 public:
  explicit ClientMath(HashAlg alg) : chain_(alg) {}

  const ModulatedHashChain& chain() const { return chain_; }
  HashAlg alg() const { return chain_.alg(); }
  std::size_t width() const { return chain_.width(); }

  /// The full modulator list M_k of a leaf: path links then leaf modulator.
  static ModList mods_of(const PathView& path, const Md& leaf_mod);

  /// Data key for a leaf given its path view.
  Md derive_key(const Md& master, const PathView& path,
                const Md& leaf_mod) const;

  /// Security check on a server-supplied DeleteInfo: structural sanity,
  /// per-node consistency between P(k), C, and the balancing branch, and
  /// pairwise distinctness of all modulators (Theorem 2's client check).
  Status verify_delete_info(const DeleteInfo& info) const;

  /// Computes the DeleteCommit for `info` given the old and new master
  /// keys (`rnd` supplies the fresh link modulator for balancing Step 2).
  /// Fails with kInvalidArgument if K' collides such that
  /// F(K',M_k) == F(K,M_k) (the paper's "pick a different K'" case) and
  /// with kTamperDetected / kDuplicateModulator if verification fails.
  /// On success also returns the (now dead) data key of the deleted item,
  /// which callers use for the pre-delete decrypt-verify step.
  struct DeletePlan {
    DeleteCommit commit;
    Md old_key;  // F(K, M_k): used to verify the target ciphertext
  };
  Result<DeletePlan> plan_delete(const DeleteInfo& info, const Md& master_old,
                                 const Md& master_new,
                                 crypto::RandomSource& rnd) const;

  /// Security check on a server-supplied DeleteManyInfo: recomputes the
  /// merged cut and relocation geometry from (node_count, target leaves)
  /// and cross-checks the server's view against them, plus the usual
  /// per-node consistency and pairwise-distinctness checks over the whole
  /// bundle (overlapping branches of different targets must agree).
  Status verify_delete_many_info(const DeleteManyInfo& info) const;

  /// Computes the DeleteManyCommit for `info` under ONE fresh master key:
  /// one delta per merged-cut node (Eq. 5 on the cut frontier) and one
  /// relocation record per hole (Eqs. 8-9 generalized; `rnd` supplies a
  /// fresh link modulator per deleted-slot hole, drawn in hole order).
  /// Fails with kInvalidArgument if F(K',M_d) == F(K,M_d) for ANY target
  /// (the per-item wrong-leaf check; pick another K'). Also returns every
  /// target's (now dead) data key for the pre-delete decrypt-verify step.
  /// An optional pool fans the per-cut-node delta hashing out across
  /// workers; the plan is byte-identical with and without it (all random
  /// draws and output ordering stay sequential).
  struct DeleteManyPlan {
    DeleteManyCommit commit;
    std::vector<Md> old_keys;  // aligned with info.targets
  };
  Result<DeleteManyPlan> plan_delete_many(const DeleteManyInfo& info,
                                          const Md& master_old,
                                          const Md& master_new,
                                          crypto::RandomSource& rnd,
                                          ThreadPool* pool = nullptr) const;

  /// Computes the InsertCommit scaffolding (fresh modulators + the moved
  /// leaf's recomputed modulator) and the new item's data key. The caller
  /// encrypts the item and fills in ciphertext / item id / position.
  struct InsertPlan {
    InsertCommit commit;  // ciphertext & item_id left empty
    Md item_key;          // data key for the new item
  };
  Result<InsertPlan> plan_insert(const InsertInfo& info, const Md& master,
                                 crypto::RandomSource& rnd) const;

  /// Re-derives all n data keys from a serialized whole tree in one DFS,
  /// sharing prefix computations (used for whole-file access, Table III).
  /// Returns keys indexed by leaf node id - (n-1).
  std::vector<Md> derive_all_keys(const Md& master,
                                  std::span<const Md> link_mods,
                                  std::span<const Md> leaf_mods) const;

 private:
  ModulatedHashChain chain_;
};

}  // namespace fgad::core
