// Heap-array geometry of the modulation tree.
//
// The paper's modulation tree is always *left-complete* (the balancing
// algorithm of Section IV-D restores completeness after every deletion, and
// Section IV-E's insertion fills the leftmost slot of the shallowest
// incomplete level). A left-complete binary tree with n leaves is exactly
// the shape of a binary heap with 2n-1 nodes:
//
//   * node ids are array indices 0 .. 2n-2, root is 0;
//   * children of i are 2i+1 and 2i+2; parent of i is (i-1)/2;
//   * node i is a leaf iff 2i+1 >= node_count; leaves are ids >= n-1;
//   * the paper's "last leaf t at the last level" is id 2n-2;
//   * the paper's insertion point (first leaf of the deepest incomplete
//     level) is the parent of the two appended slots, (node_count-1)/2.
//
// These free functions centralize that arithmetic.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fgad::core {

using NodeId = std::uint64_t;

inline constexpr NodeId kNoNode = ~NodeId{0};

constexpr NodeId root_id() noexcept { return 0; }
constexpr bool is_root(NodeId v) noexcept { return v == 0; }
constexpr NodeId parent_of(NodeId v) noexcept { return (v - 1) / 2; }
constexpr NodeId left_child(NodeId v) noexcept { return 2 * v + 1; }
constexpr NodeId right_child(NodeId v) noexcept { return 2 * v + 2; }

/// Sibling of a non-root node.
constexpr NodeId sibling_of(NodeId v) noexcept {
  return (v % 2 == 1) ? v + 1 : v - 1;
}

/// True iff v is a leaf in a tree of `node_count` nodes.
constexpr bool is_leaf_in(NodeId v, std::size_t node_count) noexcept {
  return left_child(v) >= node_count;
}

/// Leaf count of a tree with `node_count` nodes (node_count is 0 or odd).
constexpr std::size_t leaf_count_of(std::size_t node_count) noexcept {
  return (node_count + 1) / 2;
}

/// Node count of a tree with n leaves.
constexpr std::size_t node_count_for(std::size_t n_leaves) noexcept {
  return n_leaves == 0 ? 0 : 2 * n_leaves - 1;
}

/// Depth of node v (root has depth 0).
constexpr unsigned depth_of(NodeId v) noexcept {
  unsigned d = 0;
  while (v != 0) {
    v = parent_of(v);
    ++d;
  }
  return d;
}

/// True iff `anc` is an ancestor of `v` (or equal to it).
constexpr bool is_ancestor_or_self(NodeId anc, NodeId v) noexcept {
  while (v > anc) {
    v = parent_of(v);
  }
  return v == anc;
}

}  // namespace fgad::core
