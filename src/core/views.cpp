#include "core/views.h"

namespace fgad::core {

bool PathView::well_formed() const {
  if (nodes.empty() || nodes.front() != root_id()) {
    return false;
  }
  if (links.size() + 1 != nodes.size()) {
    return false;
  }
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i] == 0 || parent_of(nodes[i]) != nodes[i - 1]) {
      return false;
    }
  }
  return true;
}

}  // namespace fgad::core
