// Path-prefix cache for single-item key derivation.
//
// A data key is k = F(K, M_k) = a root-to-leaf chain walk of O(log n)
// hashes. Paths share prefixes — every access through the same subtree
// recomputes the same upper-chain values — so the client keeps a per-file
// map NodeId -> F(K, M^(i)) (the chain value *at* that path node, before
// any leaf modulator). derive_key() walks the supplied path bottom-up to
// the deepest cached ancestor, then hashes only the missing suffix,
// caching every value it computes: repeated access/modify of an item costs
// O(1) hashes amortized (just the leaf-modulator step after a full hit),
// and even cold accesses get cheaper as the cache warms across the tree.
//
// Correctness rules (enforced by the owner, client::Client):
//   * the cache is bound to one (file, master key) epoch — invalidate() on
//     every deletion re-key;
//   * any structural mutation (insert split, delete balancing move)
//     relocates leaves and rewrites modulators, so invalidate() then too;
//   * a stale entry can never silently corrupt data: a wrong derived key
//     fails ItemCodec::open()'s embedded-hash check, so the failure mode
//     is a detected integrity error, not wrong plaintext.
//
// Not thread-safe; each client session owns its own cache.
#pragma once

#include <unordered_map>

#include "core/chain.h"
#include "core/views.h"

namespace fgad::core {

class PrefixCache {
 public:
  /// Data key for a leaf given its path view; equivalent to
  /// ClientMath::derive_key(master, path, leaf_mod), byte for byte.
  Md derive_key(const ModulatedHashChain& chain, const Md& master,
                const PathView& path, const Md& leaf_mod);

  /// Drops every cached prefix. Call on re-key (deletion) and on any
  /// structural tree change (insert/delete/balance).
  void invalidate() {
    map_.clear();
  }

  std::size_t size() const { return map_.size(); }

  // Hit/miss counters (a "hit" is a derive that found at least one cached
  // ancestor; a full hit costs exactly one hash).
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t hash_steps_saved() const { return steps_saved_; }

 private:
  std::unordered_map<NodeId, Md> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t steps_saved_ = 0;
};

}  // namespace fgad::core
