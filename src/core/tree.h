// Server-side modulation tree (Section IV-B of the paper).
//
// A left-complete binary tree stored as a heap array (see node_id.h for the
// geometry). Each non-root node carries a *link modulator* (on the edge from
// its parent); each leaf additionally carries a *leaf modulator* and a
// reference to the stored ciphertext (an opaque item slot owned by the cloud
// layer's ItemStore).
//
// The tree is pure server state: it never sees the master key. Mutations are
// driven by client-computed commits:
//   * apply_delete — modulator-adjustment (Eqs. 6-7) + balancing (IV-D);
//   * apply_insert — leaf split (IV-E).
// Both return the leaf moves the cloud layer needs to keep its
// item -> leaf back-pointers consistent.
//
// Optional duplicate tracking maintains a hash set of every modulator value
// in the tree so the server can implement the paper's "inform the client to
// re-perform the operation with a different modulator" rule. It costs memory
// proportional to the tree, so huge benchmark instances may disable it; the
// *client-side* distinctness check on MT(k) — the one Theorem 2's proof
// relies on — is always active regardless.
#pragma once

#include <functional>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/node_id.h"
#include "core/views.h"
#include "crypto/digest.h"
#include "proto/wire.h"

namespace fgad::core {

using crypto::HashAlg;

class ModulationTree {
 public:
  struct Config {
    HashAlg alg = HashAlg::kSha1;
    bool track_duplicates = true;
  };

  /// An item whose leaf changed position; the owner must update its
  /// item -> leaf mapping.
  struct LeafMove {
    std::uint64_t item_slot;
    NodeId new_leaf;
  };

  struct DeleteOutcome {
    std::uint64_t removed_item_slot;  // ciphertext to discard
    std::vector<LeafMove> moves;
  };

  struct DeleteManyOutcome {
    /// Ciphertexts to discard, aligned with the commit's leaf list.
    std::vector<std::uint64_t> removed_item_slots;
    std::vector<LeafMove> moves;
    /// Old-node -> new-node pairs for the relocated leaves, hole-ascending.
    /// The integrity layer uses these to rebuild its hash tree from the
    /// pre-deletion node hashes without re-hashing any ciphertext.
    struct LeafReloc {
      NodeId from;
      NodeId to;
    };
    std::vector<LeafReloc> leaf_relocations;
  };

  struct InsertOutcome {
    NodeId new_leaf;                  // where the new item lives
    std::vector<LeafMove> moves;      // the split leaf's item, if re-homed
  };

  ModulationTree() : ModulationTree(Config{}) {}
  explicit ModulationTree(Config cfg);

  HashAlg alg() const { return cfg_.alg; }
  std::size_t node_count() const { return link_.size(); }
  std::size_t leaf_count() const { return leaf_count_of(node_count()); }
  bool empty() const { return link_.empty(); }

  bool valid_node(NodeId v) const { return v < node_count(); }
  bool is_leaf(NodeId v) const {
    return valid_node(v) && is_leaf_in(v, node_count());
  }

  /// Link modulator on (parent(v), v); v must be a valid non-root node.
  const crypto::Md& link_mod(NodeId v) const;
  /// Leaf modulator of leaf v.
  const crypto::Md& leaf_mod(NodeId v) const;
  /// Item slot stored at leaf v.
  std::uint64_t item_slot(NodeId v) const;

  /// The last leaf t (largest node id); tree must be non-empty.
  NodeId last_leaf() const { return static_cast<NodeId>(node_count() - 1); }

  /// The leaf the next insertion will split: (node_count-1)/2.
  NodeId insert_parent() const;

  // -- Bulk construction -----------------------------------------------

  /// Builds a fresh tree with n leaves. `link_gen(v)` supplies the link
  /// modulator of node v (v >= 1); `leaf_gen(v)` supplies (leaf modulator,
  /// item slot) for leaf v. Replaces any existing contents.
  void build(std::size_t n_leaves,
             const std::function<crypto::Md(NodeId)>& link_gen,
             const std::function<std::pair<crypto::Md, std::uint64_t>(NodeId)>&
                 leaf_gen);

  // -- Protocol-side extraction ------------------------------------------

  /// P(v): root-to-v path with link modulators.
  PathView path_to(NodeId v) const;

  /// The sibling cut C for leaf k, in canonical (depth) order.
  std::vector<CutEntry> cut_for(NodeId k) const;

  /// Assembles the full DeleteInfo for leaf k (ciphertext and item id are
  /// filled in by the cloud layer).
  DeleteInfo delete_info_for(NodeId k) const;

  /// The merged cut for a set of leaves (ascending, distinct), node ids
  /// ascending. For a single leaf this is cut_for(k) reordered by node id —
  /// which equals depth order, since path node ids grow with depth.
  std::vector<CutEntry> cut_for_many(std::span<const NodeId> leaves) const;

  /// Assembles the DeleteManyInfo for a set of leaves (ascending, distinct;
  /// item ids and ciphertexts are filled in by the cloud layer). An
  /// optional pool parallelizes the per-target/hole/mover path extraction;
  /// the result is identical with and without it.
  DeleteManyInfo delete_many_info_for(std::span<const NodeId> leaves,
                                      ThreadPool* pool = nullptr) const;

  /// Assembles the InsertInfo for the next insertion.
  InsertInfo insert_info() const;

  // -- Mutations (apply client commits) ----------------------------------

  /// Applies a deletion commit for a leaf. Validates shape; with duplicate
  /// tracking on, rejects commits that would introduce duplicate modulator
  /// values (the client then re-runs with fresh randomness).
  Result<DeleteOutcome> apply_delete(const DeleteCommit& commit);

  /// Applies a merged-cut bulk deletion commit: one delta bundle, one
  /// relocation set, all-or-nothing (every shape/width/duplicate check runs
  /// before the first mutation). See DESIGN.md §16.
  Result<DeleteManyOutcome> apply_delete_many(const DeleteManyCommit& commit);

  /// Applies an insertion commit. `item_slot` is the cloud-layer slot where
  /// the new ciphertext was stored.
  Result<InsertOutcome> apply_insert(const InsertCommit& commit,
                                     std::uint64_t item_slot);

  /// Re-points a leaf at a different item slot (used when a persisted file
  /// is reloaded and the item store renumbers its slots).
  void set_item_slot(NodeId v, std::uint64_t item_slot) {
    leaf_rec(v).item_slot = item_slot;
  }

  /// Replaces the leaf modulator of a leaf (test/tamper hook).
  void set_leaf_mod(NodeId v, crypto::Md m);
  /// Replaces a link modulator (test/tamper hook).
  void set_link_mod(NodeId v, crypto::Md m);

  // -- Duplicate bookkeeping ---------------------------------------------

  bool track_duplicates() const { return cfg_.track_duplicates; }
  /// True iff `m` already appears somewhere in the tree (only meaningful
  /// with tracking enabled).
  bool contains_value(const crypto::Md& m) const;

  // -- Persistence --------------------------------------------------------

  void serialize(proto::Writer& w) const;
  /// Like serialize(), but each leaf's item_slot is passed through
  /// `slot_remap` first. FileStore uses this to write file-order positions
  /// instead of live slot numbers, making the persisted image canonical:
  /// save(load(save(x))) is byte-identical to save(x) no matter how the
  /// in-memory slot layout fragmented (DESIGN.md §13).
  void serialize(proto::Writer& w,
                 const std::function<std::uint64_t(std::uint64_t)>&
                     slot_remap) const;
  static Result<ModulationTree> deserialize(proto::Reader& r, Config cfg);

  /// Serialized size in bytes (the "fetch the entire modulation tree"
  /// communication cost of Table III).
  std::size_t serialized_size() const;

  /// Estimated resident memory (diagnostics).
  std::size_t memory_bytes() const;

 private:
  struct LeafRec {
    crypto::Md leaf_mod;
    std::uint64_t item_slot = 0;
  };

  static constexpr std::uint32_t kNoLeafRef = ~std::uint32_t{0};

  const LeafRec& leaf_rec(NodeId v) const;
  LeafRec& leaf_rec(NodeId v);
  std::uint32_t alloc_leaf_rec(crypto::Md mod, std::uint64_t item_slot);
  void free_leaf_rec(std::uint32_t ref);

  // Duplicate-set maintenance (no-ops when tracking is off).
  void dup_add(const crypto::Md& m);
  void dup_remove(const crypto::Md& m);
  bool dup_would_collide(const crypto::Md& m) const;

  // XORs delta into a tracked modulator in place.
  void xor_mod(crypto::Md& target, const crypto::Md& delta);

  Config cfg_;
  std::size_t width_;                    // modulator width in bytes
  std::vector<crypto::Md> link_;         // [0] unused
  std::vector<std::uint32_t> leaf_ref_;  // node -> leaves_ index or kNoLeafRef
  std::vector<LeafRec> leaves_;
  std::vector<std::uint32_t> free_leaf_refs_;
  std::unordered_set<crypto::Md, crypto::Md::Hasher> values_;
};

}  // namespace fgad::core
