#include "core/item_codec.h"

#include <array>
#include <cstring>

namespace fgad::core {

using crypto::kAesBlockSize;

Bytes ItemCodec::seal(const crypto::Md& key, BytesView m, std::uint64_t r,
                      crypto::RandomSource& rnd) const {
  std::array<std::uint8_t, kAesBlockSize> iv;
  rnd.fill(iv);  // fresh IV
  return seal_with_iv(key, m, r, BytesView(iv.data(), iv.size()));
}

Bytes ItemCodec::seal_with_iv(const crypto::Md& key, BytesView m,
                              std::uint64_t r, BytesView iv) const {
  Bytes record;
  record.reserve(m.size() + 8 + hasher_.size());
  record.insert(record.end(), m.begin(), m.end());
  for (int i = 0; i < 8; ++i) {
    record.push_back(static_cast<std::uint8_t>(r >> (8 * i)));
  }
  const crypto::Md h = hasher_.hash(record);  // H(m || r)
  record.insert(record.end(), h.bytes().begin(), h.bytes().end());

  Bytes out(iv.begin(), iv.end());
  const Bytes ct = aes_.encrypt(crypto::aes_key_from(key), iv, record);
  append(out, ct);
  return out;
}

Result<ItemCodec::Opened> ItemCodec::open(const crypto::Md& key,
                                          BytesView sealed) const {
  if (sealed.size() < kAesBlockSize * 2) {
    return Error(Errc::kDecodeError, "item: sealed record too short");
  }
  const BytesView iv = sealed.subspan(0, kAesBlockSize);
  const BytesView ct = sealed.subspan(kAesBlockSize);
  Result<Bytes> dec = aes_.decrypt(crypto::aes_key_from(key), iv, ct);
  if (!dec) {
    return Error(Errc::kIntegrityMismatch, "item: decryption failed");
  }
  Bytes record = std::move(dec).value();
  const std::size_t hlen = hasher_.size();
  if (record.size() < 8 + hlen) {
    return Error(Errc::kIntegrityMismatch, "item: record too short");
  }
  const std::size_t body_len = record.size() - hlen;
  const crypto::Md expect =
      hasher_.hash(BytesView(record.data(), body_len));  // H(m || r)
  const bool match =
      std::equal(record.begin() + static_cast<std::ptrdiff_t>(body_len),
                 record.end(), expect.bytes().begin(), expect.bytes().end());
  if (!match) {
    return Error(Errc::kIntegrityMismatch, "item: hash mismatch");
  }
  Opened out;
  std::uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<std::uint64_t>(record[body_len - 8 + i]) << (8 * i);
  }
  out.r = r;
  out.plaintext.assign(record.begin(),
                       record.begin() + static_cast<std::ptrdiff_t>(body_len - 8));
  return out;
}

}  // namespace fgad::core
