#include "core/chain.h"

namespace fgad::core {

Md ModulatedHashChain::eval(const Md& master, std::span<const Md> mods) const {
  Md cur = master;
  for (const Md& x : mods) {
    cur = step(cur, x);
  }
  return cur;
}

std::vector<Md> ModulatedHashChain::prefixes(const Md& master,
                                             std::span<const Md> mods) const {
  std::vector<Md> out;
  out.reserve(mods.size() + 1);
  out.push_back(master);
  for (const Md& x : mods) {
    out.push_back(step(out.back(), x));
  }
  return out;
}

}  // namespace fgad::core
