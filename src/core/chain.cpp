#include "core/chain.h"

#include "obs/metrics.h"

namespace fgad::core {

namespace {
// One shared counter of F(K,M) chain steps across every chain instance —
// incremented once per call with the batch size, not per step, so the
// hot loop stays untouched.
obs::Counter& chain_steps() {
  static obs::Counter& c =
      obs::Registry::instance().counter("fgad_chain_steps_total");
  return c;
}
}  // namespace

Md ModulatedHashChain::eval(const Md& master, std::span<const Md> mods) const {
  chain_steps().inc(mods.size());
  Md cur = master;
  for (const Md& x : mods) {
    cur = step(cur, x);
  }
  return cur;
}

std::vector<Md> ModulatedHashChain::prefixes(const Md& master,
                                             std::span<const Md> mods) const {
  chain_steps().inc(mods.size());
  std::vector<Md> out;
  out.reserve(mods.size() + 1);
  out.push_back(master);
  for (const Md& x : mods) {
    out.push_back(step(out.back(), x));
  }
  return out;
}

}  // namespace fgad::core
