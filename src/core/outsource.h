// Bulk outsourcing: client-side construction of a fresh modulation tree and
// the sealed items for an entire file (Section IV-B setup).
//
// The client picks the master key and every modulator, derives all data keys
// in one linear pass (heap order makes parents precede children), seals each
// item with its key and a unique counter value, and ships tree + ciphertexts
// to the cloud. Item i of the input is assigned to leaf (n-1)+i.
#pragma once

#include <functional>

#include "core/client_math.h"
#include "core/item_codec.h"
#include "core/tree.h"
#include "crypto/random.h"
#include "crypto/secure_buffer.h"

namespace fgad::core {

struct OutsourcedFile {
  ModulationTree tree;  // tree.item_slot(leaf) indexes into `items`
  struct Item {
    std::uint64_t item_id;  // the unique counter value r
    Bytes ciphertext;
    std::uint64_t plain_size;  // stored server-side for offset addressing
  };
  std::vector<Item> items;  // in file order (item i at leaf n-1+i)
};

class Outsourcer {
 public:
  Outsourcer(crypto::HashAlg alg, bool track_duplicates)
      : math_(alg), codec_(alg), track_duplicates_(track_duplicates) {}

  /// Builds the server-side state for `items` under `master`. `counter` is
  /// the client's global unique counter; it is advanced by items.size().
  /// `item_at(i)` supplies plaintext item i (a callback so benchmark setups
  /// can generate items without materializing the whole file).
  OutsourcedFile build(const crypto::MasterKey& master, std::size_t n_items,
                       const std::function<Bytes(std::size_t)>& item_at,
                       std::uint64_t& counter, crypto::RandomSource& rnd) const;

  const ClientMath& math() const { return math_; }
  const ItemCodec& codec() const { return codec_; }

 private:
  ClientMath math_;
  ItemCodec codec_;
  bool track_duplicates_;
};

}  // namespace fgad::core
