// Bulk outsourcing: client-side construction of a fresh modulation tree and
// the sealed items for an entire file (Section IV-B setup).
//
// The client picks the master key and every modulator, derives all data keys
// (one linear pass at 1 thread; independent level-L subtrees in parallel
// otherwise — see core/batch_derive.h), seals each item with its key and a
// unique counter value, and ships tree + ciphertexts to the cloud. Item i of
// the input is assigned to leaf (n-1)+i. The built output is byte-identical
// at every thread count: modulators and IVs are drawn from `rnd` in the
// same order regardless, and derivation/sealing are deterministic.
#pragma once

#include <functional>

#include "core/batch_derive.h"
#include "core/client_math.h"
#include "core/item_codec.h"
#include "core/tree.h"
#include "crypto/random.h"
#include "crypto/secure_buffer.h"

namespace fgad::core {

struct OutsourcedFile {
  ModulationTree tree;  // tree.item_slot(leaf) indexes into `items`
  struct Item {
    std::uint64_t item_id;  // the unique counter value r
    Bytes ciphertext;
    std::uint64_t plain_size;  // stored server-side for offset addressing
  };
  std::vector<Item> items;  // in file order (item i at leaf n-1+i)
};

class Outsourcer {
 public:
  /// `threads` = parallelism of derivation + sealing (0 picks
  /// hardware_concurrency, 1 runs the seed's inline sequential pass).
  /// `item_at` callbacks must be thread-safe when threads != 1.
  Outsourcer(crypto::HashAlg alg, bool track_duplicates,
             std::size_t threads = 0)
      : math_(alg),
        codec_(alg),
        deriver_(alg, BatchDeriver::Options{threads}),
        track_duplicates_(track_duplicates) {}

  /// Builds the server-side state for `items` under `master`. `counter` is
  /// the client's global unique counter; it is advanced by items.size().
  /// `item_at(i)` supplies plaintext item i (a callback so benchmark setups
  /// can generate items without materializing the whole file).
  OutsourcedFile build(const crypto::MasterKey& master, std::size_t n_items,
                       const std::function<Bytes(std::size_t)>& item_at,
                       std::uint64_t& counter, crypto::RandomSource& rnd) const;

  const ClientMath& math() const { return math_; }
  const ItemCodec& codec() const { return codec_; }
  const BatchDeriver& deriver() const { return deriver_; }

 private:
  ClientMath math_;
  ItemCodec codec_;
  BatchDeriver deriver_;
  bool track_duplicates_;
};

}  // namespace fgad::core
