#include "core/batch_derive.h"

#include <algorithm>

#include "obs/metrics.h"

namespace fgad::core {

namespace {
// Target subtrees per worker. Left-complete trees make left subtrees up to
// one level deeper than right ones, so hand out several per worker and let
// the pool's chunk cursor balance the difference.
constexpr std::size_t kSubtreesPerWorker = 4;
}  // namespace

BatchDeriver::BatchDeriver(HashAlg alg, Options opts)
    : alg_(alg), opts_(opts) {
  const std::size_t threads = ThreadPool::resolve_threads(opts.threads);
  if (threads > 1) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
}

void BatchDeriver::derive_subtree(const ModulatedHashChain& chain, NodeId s,
                                  std::span<const Md> link_mods,
                                  std::span<const Md> leaf_mods,
                                  std::span<Md> prefix, std::span<Md> keys) {
  const std::size_t nodes = link_mods.size();
  const std::size_t first_leaf = leaf_mods.size() - 1;  // n - 1
  // Descendants of s at relative depth k occupy the contiguous id range
  // [ (s+1)*2^k - 1, (s+1)*2^k - 1 + 2^k ), clipped to the tree.
  for (unsigned k = 1;; ++k) {
    const NodeId lo = ((s + 1) << k) - 1;
    if (lo >= nodes) {
      return;
    }
    const NodeId hi = std::min<NodeId>(nodes, lo + (NodeId{1} << k));
    for (NodeId v = lo; v < hi; ++v) {
      prefix[v] = chain.step(prefix[parent_of(v)], link_mods[v]);
      if (is_leaf_in(v, nodes)) {
        keys[v - first_leaf] = chain.step(prefix[v], leaf_mods[v - first_leaf]);
      }
    }
  }
}

std::vector<Md> BatchDeriver::derive_all_keys(
    const Md& master, std::span<const Md> link_mods,
    std::span<const Md> leaf_mods) const {
  static obs::Counter& derives =
      obs::Registry::instance().counter("fgad_batch_derives_total");
  static obs::Counter& keys_derived =
      obs::Registry::instance().counter("fgad_batch_keys_derived_total");
  static obs::Histogram& derive_ns =
      obs::Registry::instance().histogram("fgad_batch_derive_ns");
  obs::ScopedTimer timer(derive_ns);
  derives.inc();
  const std::size_t nodes = link_mods.size();
  const std::size_t n = leaf_count_of(nodes);
  keys_derived.inc(n);
  std::vector<Md> keys;
  if (nodes == 0) {
    return keys;
  }

  ModulatedHashChain chain(alg_);
  if (pool_ == nullptr || nodes < opts_.min_parallel_nodes) {
    // Scalar pass, identical to ClientMath::derive_all_keys.
    std::vector<Md> prefix(nodes);
    prefix[0] = master;
    for (NodeId v = 1; v < nodes; ++v) {
      prefix[v] = chain.step(prefix[parent_of(v)], link_mods[v]);
    }
    keys.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      keys.push_back(chain.step(prefix[n - 1 + i], leaf_mods[i]));
    }
    return keys;
  }

  std::vector<Md> prefix(nodes);
  keys.resize(n);
  prefix[0] = master;
  if (is_leaf_in(0, nodes)) {
    keys[0] = chain.step(prefix[0], leaf_mods[0]);
  }

  // Pick the partition level L: enough level-L subtrees to keep every
  // worker busy, as long as that level exists.
  const std::size_t target = pool_->size() * kSubtreesPerWorker;
  unsigned level = 0;
  while ((std::size_t{1} << level) < target &&
         (std::size_t{1} << (level + 1)) - 1 < nodes) {
    ++level;
  }
  const NodeId first_root = (NodeId{1} << level) - 1;
  const NodeId end_root =
      std::min<NodeId>(nodes, (NodeId{1} << (level + 1)) - 1);

  // Sequential top: every node above and including level L (O(threads)).
  const std::size_t first_leaf = n - 1;
  for (NodeId v = 1; v < end_root; ++v) {
    prefix[v] = chain.step(prefix[parent_of(v)], link_mods[v]);
    if (is_leaf_in(v, nodes)) {
      keys[v - first_leaf] = chain.step(prefix[v], leaf_mods[v - first_leaf]);
    }
  }

  // Independent subtrees: each worker walks its subtrees with its own
  // chain (thread-local EVP context).
  std::span<Md> prefix_span(prefix);
  std::span<Md> keys_span(keys);
  static obs::Histogram& subtree_ns =
      obs::Registry::instance().histogram("fgad_batch_subtree_ns");
  pool_->parallel_for(
      end_root - first_root,
      [&](std::size_t begin, std::size_t end, std::size_t /*worker*/) {
        ModulatedHashChain local(alg_);
        for (std::size_t i = begin; i < end; ++i) {
          obs::ScopedTimer st(subtree_ns);
          derive_subtree(local, first_root + i, link_mods, leaf_mods,
                         prefix_span, keys_span);
        }
      });
  return keys;
}

std::vector<Bytes> BatchDeriver::seal_all(
    std::span<const Md> keys, const std::function<Bytes(std::size_t)>& item_at,
    std::uint64_t first_r, std::span<const std::uint8_t> ivs,
    std::span<std::uint64_t> plain_sizes) const {
  const std::size_t n = keys.size();
  std::vector<Bytes> out(n);
  const auto work = [&](std::size_t begin, std::size_t end,
                        std::size_t /*worker*/) {
    ItemCodec codec(alg_);
    for (std::size_t i = begin; i < end; ++i) {
      const BytesView iv(ivs.data() + i * crypto::kAesBlockSize,
                         crypto::kAesBlockSize);
      const Bytes m = item_at(i);
      if (!plain_sizes.empty()) {
        plain_sizes[i] = m.size();
      }
      out[i] = codec.seal_with_iv(keys[i], m, first_r + i, iv);
    }
  };
  if (pool_ == nullptr) {
    work(0, n, 0);
  } else {
    pool_->parallel_for(n, opts_.seal_grain, work);
  }
  return out;
}

Result<std::vector<Bytes>> BatchDeriver::open_all(
    std::span<const Md> keys, std::span<const OpenTask> tasks) const {
  const std::size_t n = tasks.size();
  std::vector<Bytes> out(n);
  // 0 = ok, 1 = integrity failure, 2 = counter mismatch. A task failing
  // does not stop the pass; the lowest-indexed failure wins afterwards so
  // the reported error is deterministic under any scheduling.
  std::vector<std::uint8_t> verdict(n, 0);
  const auto work = [&](std::size_t begin, std::size_t end,
                        std::size_t /*worker*/) {
    ItemCodec codec(alg_);
    for (std::size_t i = begin; i < end; ++i) {
      auto opened = codec.open(keys[tasks[i].key_index], tasks[i].sealed);
      if (!opened) {
        verdict[i] = 1;
        continue;
      }
      if (opened.value().r != tasks[i].expect_r) {
        verdict[i] = 2;
        continue;
      }
      out[i] = std::move(opened.value().plaintext);
    }
  };
  if (pool_ == nullptr) {
    work(0, n, 0);
  } else {
    pool_->parallel_for(n, opts_.seal_grain, work);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (verdict[i] == 1) {
      return Error(Errc::kIntegrityMismatch,
                   "batch open: item failed integrity check");
    }
    if (verdict[i] == 2) {
      return Error(Errc::kTamperDetected, "batch open: counter value mismatch");
    }
  }
  return out;
}

}  // namespace fgad::core
