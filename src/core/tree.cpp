#include "core/tree.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "core/bulk_geometry.h"
#include "obs/metrics.h"

namespace fgad::core {

using crypto::Md;

ModulationTree::ModulationTree(Config cfg)
    : cfg_(cfg), width_(crypto::digest_size(cfg.alg)) {}

const Md& ModulationTree::link_mod(NodeId v) const {
  if (!valid_node(v) || is_root(v)) {
    throw std::out_of_range("ModulationTree::link_mod: bad node");
  }
  return link_[v];
}

const Md& ModulationTree::leaf_mod(NodeId v) const {
  return leaf_rec(v).leaf_mod;
}

std::uint64_t ModulationTree::item_slot(NodeId v) const {
  return leaf_rec(v).item_slot;
}

NodeId ModulationTree::insert_parent() const {
  if (empty()) {
    throw std::logic_error("ModulationTree::insert_parent: empty tree");
  }
  return static_cast<NodeId>((node_count() - 1) / 2);
}

const ModulationTree::LeafRec& ModulationTree::leaf_rec(NodeId v) const {
  if (!is_leaf(v) || leaf_ref_[v] == kNoLeafRef) {
    throw std::out_of_range("ModulationTree::leaf_rec: not a leaf");
  }
  return leaves_[leaf_ref_[v]];
}

ModulationTree::LeafRec& ModulationTree::leaf_rec(NodeId v) {
  return const_cast<LeafRec&>(
      static_cast<const ModulationTree*>(this)->leaf_rec(v));
}

std::uint32_t ModulationTree::alloc_leaf_rec(Md mod, std::uint64_t item_slot) {
  if (!free_leaf_refs_.empty()) {
    const std::uint32_t ref = free_leaf_refs_.back();
    free_leaf_refs_.pop_back();
    leaves_[ref] = LeafRec{mod, item_slot};
    return ref;
  }
  leaves_.push_back(LeafRec{mod, item_slot});
  return static_cast<std::uint32_t>(leaves_.size() - 1);
}

void ModulationTree::free_leaf_rec(std::uint32_t ref) {
  leaves_[ref] = LeafRec{};
  free_leaf_refs_.push_back(ref);
}

void ModulationTree::dup_add(const Md& m) {
  if (cfg_.track_duplicates) {
    values_.insert(m);
  }
}

void ModulationTree::dup_remove(const Md& m) {
  if (cfg_.track_duplicates) {
    values_.erase(m);
  }
}

bool ModulationTree::dup_would_collide(const Md& m) const {
  return cfg_.track_duplicates && values_.count(m) != 0;
}

bool ModulationTree::contains_value(const Md& m) const {
  return values_.count(m) != 0;
}

void ModulationTree::xor_mod(Md& target, const Md& delta) {
  dup_remove(target);
  target ^= delta;
  dup_add(target);
}

void ModulationTree::build(
    std::size_t n_leaves, const std::function<Md(NodeId)>& link_gen,
    const std::function<std::pair<Md, std::uint64_t>(NodeId)>& leaf_gen) {
  link_.clear();
  leaf_ref_.clear();
  leaves_.clear();
  free_leaf_refs_.clear();
  values_.clear();
  if (n_leaves == 0) {
    return;
  }
  const std::size_t nodes = node_count_for(n_leaves);
  link_.resize(nodes);
  leaf_ref_.assign(nodes, kNoLeafRef);
  leaves_.reserve(n_leaves);
  for (NodeId v = 1; v < nodes; ++v) {
    link_[v] = link_gen(v);
    dup_add(link_[v]);
  }
  for (NodeId v = n_leaves - 1; v < nodes; ++v) {
    auto [mod, slot] = leaf_gen(v);
    dup_add(mod);
    leaf_ref_[v] = alloc_leaf_rec(mod, slot);
  }
}

PathView ModulationTree::path_to(NodeId v) const {
  if (!valid_node(v)) {
    throw std::out_of_range("ModulationTree::path_to: bad node");
  }
  PathView path;
  NodeId cur = v;
  while (!is_root(cur)) {
    path.nodes.push_back(cur);
    path.links.push_back(link_[cur]);
    cur = parent_of(cur);
  }
  path.nodes.push_back(root_id());
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

std::vector<CutEntry> ModulationTree::cut_for(NodeId k) const {
  if (!is_leaf(k)) {
    throw std::out_of_range("ModulationTree::cut_for: not a leaf");
  }
  // Collect path nodes below the root, then emit siblings top-down.
  std::vector<NodeId> below_root;
  for (NodeId cur = k; !is_root(cur); cur = parent_of(cur)) {
    below_root.push_back(cur);
  }
  std::reverse(below_root.begin(), below_root.end());
  std::vector<CutEntry> cut;
  cut.reserve(below_root.size());
  for (NodeId v : below_root) {
    const NodeId c = sibling_of(v);
    CutEntry e;
    e.node = c;
    e.link = link_[c];
    e.is_leaf = is_leaf(c);
    if (e.is_leaf) {
      e.leaf_mod = leaf_rec(c).leaf_mod;
    }
    cut.push_back(e);
  }
  return cut;
}

DeleteInfo ModulationTree::delete_info_for(NodeId k) const {
  if (!is_leaf(k)) {
    throw std::out_of_range("ModulationTree::delete_info_for: not a leaf");
  }
  DeleteInfo info;
  info.path = path_to(k);
  info.leaf_mod = leaf_rec(k).leaf_mod;
  info.cut = cut_for(k);
  if (leaf_count() > 1) {
    info.has_balance = true;
    const NodeId t = last_leaf();
    info.t_path = path_to(t);
    info.t_leaf_mod = leaf_rec(t).leaf_mod;
    const NodeId s = sibling_of(t);
    info.s_link = link_[s];
    info.s_leaf_mod = leaf_rec(s).leaf_mod;
  }
  return info;
}

std::vector<CutEntry> ModulationTree::cut_for_many(
    std::span<const NodeId> leaves) const {
  for (NodeId d : leaves) {
    if (!is_leaf(d)) {
      throw std::out_of_range("ModulationTree::cut_for_many: not a leaf");
    }
  }
  const std::vector<NodeId> nodes = merged_cut_nodes(node_count(), leaves);
  std::vector<CutEntry> cut;
  cut.reserve(nodes.size());
  for (NodeId c : nodes) {
    CutEntry e;
    e.node = c;
    e.link = link_[c];
    e.is_leaf = is_leaf(c);
    if (e.is_leaf) {
      e.leaf_mod = leaf_rec(c).leaf_mod;
    }
    cut.push_back(e);
  }
  return cut;
}

DeleteManyInfo ModulationTree::delete_many_info_for(
    std::span<const NodeId> leaves, ThreadPool* pool) const {
  DeleteManyInfo info;
  info.node_count = node_count();
  info.cut = cut_for_many(leaves);
  const BulkGeometry geo = bulk_geometry(node_count(), leaves);
  const std::unordered_set<NodeId> dset(leaves.begin(), leaves.end());
  std::vector<NodeId> survivor_holes;
  for (NodeId h : geo.holes) {
    if (!dset.contains(h)) {
      survivor_holes.push_back(h);
    }
  }
  // Path extraction is one independent tree walk per target/hole/mover —
  // at bulk sizes it dominates this function, so fan it out when a pool is
  // available (path_to and leaf_rec are read-only).
  info.targets.resize(leaves.size());
  info.hole_paths.resize(survivor_holes.size());
  info.movers.resize(geo.movers.size());
  const std::size_t total =
      leaves.size() + survivor_holes.size() + geo.movers.size();
  const auto fill_range = [&](std::size_t begin, std::size_t end,
                              std::size_t /*worker*/) {
    for (std::size_t i = begin; i < end; ++i) {
      if (i < leaves.size()) {
        DeleteManyInfo::Target& t = info.targets[i];
        t.path = path_to(leaves[i]);
        t.leaf_mod = leaf_rec(leaves[i]).leaf_mod;  // throws if not a leaf
      } else if (i < leaves.size() + survivor_holes.size()) {
        const std::size_t j = i - leaves.size();
        info.hole_paths[j] = path_to(survivor_holes[j]);
      } else {
        const std::size_t j = i - leaves.size() - survivor_holes.size();
        DeleteManyInfo::Mover& mv = info.movers[j];
        mv.path = path_to(geo.movers[j]);
        mv.leaf_mod = leaf_rec(geo.movers[j]).leaf_mod;
      }
    }
  };
  if (pool != nullptr && pool->size() > 1 && total >= 64) {
    pool->parallel_for(total, /*grain=*/16, fill_range);
  } else {
    fill_range(0, total, 0);
  }
  return info;
}

InsertInfo ModulationTree::insert_info() const {
  InsertInfo info;
  if (empty()) {
    info.empty_tree = true;
    return info;
  }
  const NodeId q = insert_parent();
  info.q_path = path_to(q);
  info.q_leaf_mod = leaf_rec(q).leaf_mod;
  return info;
}

Result<ModulationTree::DeleteOutcome> ModulationTree::apply_delete(
    const DeleteCommit& commit) {
  static obs::Counter& applies =
      obs::Registry::instance().counter("fgad_tree_apply_delete_total");
  static obs::Counter& balances =
      obs::Registry::instance().counter("fgad_tree_balance_total");
  static obs::Histogram& apply_ns =
      obs::Registry::instance().histogram("fgad_tree_apply_delete_ns");
  obs::ScopedTimer timer(apply_ns);
  applies.inc();
  if (commit.has_balance) {
    balances.inc();
  }
  const NodeId d = commit.leaf;
  if (!is_leaf(d)) {
    return Error(Errc::kInvalidArgument, "apply_delete: target is not a leaf");
  }
  const unsigned depth = depth_of(d);
  if (commit.deltas.size() != depth) {
    return Error(Errc::kInvalidArgument, "apply_delete: wrong delta count");
  }
  const bool expect_balance = leaf_count() > 1;
  if (commit.has_balance != expect_balance) {
    return Error(Errc::kInvalidArgument, "apply_delete: balance flag mismatch");
  }
  for (const Md& delta : commit.deltas) {
    if (delta.size() != width_) {
      return Error(Errc::kInvalidArgument, "apply_delete: bad delta width");
    }
  }

  const std::size_t nodes = node_count();
  const NodeId last = static_cast<NodeId>(nodes - 1);
  bool expect_step2 = false;
  if (expect_balance) {
    expect_step2 = (d != last && d != last - 1);
    if (commit.has_step2 != expect_step2) {
      return Error(Errc::kInvalidArgument, "apply_delete: step2 flag mismatch");
    }
    if (commit.promoted_leaf_mod.size() != width_) {
      return Error(Errc::kInvalidArgument,
                   "apply_delete: bad promoted leaf modulator");
    }
    if (expect_step2 && (commit.t_new_link.size() != width_ ||
                         commit.t_new_leaf_mod.size() != width_)) {
      return Error(Errc::kInvalidArgument,
                   "apply_delete: bad step-2 modulators");
    }
    // Best-effort duplicate pre-check on the client-supplied fresh values.
    // Delta-adjusted values are one-way-function outputs; a collision there
    // has probability ~2^-(8*width) and would be caught by the client's
    // MT(k) distinctness check on the next operation touching it.
    std::vector<const Md*> incoming{&commit.promoted_leaf_mod};
    if (expect_step2) {
      incoming.push_back(&commit.t_new_link);
      incoming.push_back(&commit.t_new_leaf_mod);
    }
    for (std::size_t i = 0; i < incoming.size(); ++i) {
      if (dup_would_collide(*incoming[i])) {
        return Error(Errc::kDuplicateModulator,
                     "apply_delete: commit modulator duplicates tree value");
      }
      for (std::size_t j = i + 1; j < incoming.size(); ++j) {
        if (*incoming[i] == *incoming[j]) {
          return Error(Errc::kDuplicateModulator,
                       "apply_delete: commit modulators not distinct");
        }
      }
    }
  }

  // Step A: modulator adjustment on the cut (Eqs. 6 and 7).
  {
    std::vector<NodeId> below_root;
    for (NodeId cur = d; !is_root(cur); cur = parent_of(cur)) {
      below_root.push_back(cur);
    }
    std::reverse(below_root.begin(), below_root.end());
    for (std::size_t i = 0; i < below_root.size(); ++i) {
      const NodeId c = sibling_of(below_root[i]);
      const Md& delta = commit.deltas[i];
      if (is_leaf(c)) {
        xor_mod(leaf_rec(c).leaf_mod, delta);
      } else {
        xor_mod(link_[left_child(c)], delta);
        xor_mod(link_[right_child(c)], delta);
      }
    }
  }

  DeleteOutcome outcome;
  outcome.removed_item_slot = leaf_rec(d).item_slot;

  // Step B: remove the deleted leaf and rebalance (Section IV-D).
  if (nodes == 1) {
    dup_remove(leaf_rec(d).leaf_mod);
    free_leaf_rec(leaf_ref_[d]);
    link_.clear();
    leaf_ref_.clear();
    return outcome;
  }

  const NodeId p_slot = parent_of(last);

  // Drop the deleted leaf's record.
  dup_remove(leaf_rec(d).leaf_mod);
  free_leaf_rec(leaf_ref_[d]);
  leaf_ref_[d] = kNoLeafRef;

  if (!expect_step2) {
    // The deleted leaf is t or t's sibling; the survivor is promoted into
    // the parent slot (balancing Step 1 only).
    const NodeId survivor = (d == last) ? last - 1 : last;
    const std::uint32_t ref = leaf_ref_[survivor];
    dup_remove(leaves_[ref].leaf_mod);
    leaves_[ref].leaf_mod = commit.promoted_leaf_mod;
    dup_add(leaves_[ref].leaf_mod);
    leaf_ref_[p_slot] = ref;
    outcome.moves.push_back(LeafMove{leaves_[ref].item_slot, p_slot});
  } else {
    // Step 1: promote s (= last-1) into the parent slot.
    const std::uint32_t ref_s = leaf_ref_[last - 1];
    dup_remove(leaves_[ref_s].leaf_mod);
    leaves_[ref_s].leaf_mod = commit.promoted_leaf_mod;
    dup_add(leaves_[ref_s].leaf_mod);
    leaf_ref_[p_slot] = ref_s;
    outcome.moves.push_back(LeafMove{leaves_[ref_s].item_slot, p_slot});

    // Step 2: move t (= last) into the deleted slot with a fresh link
    // modulator and the client-computed leaf modulator (Eq. 9).
    const std::uint32_t ref_t = leaf_ref_[last];
    dup_remove(leaves_[ref_t].leaf_mod);
    leaves_[ref_t].leaf_mod = commit.t_new_leaf_mod;
    dup_add(leaves_[ref_t].leaf_mod);
    leaf_ref_[d] = ref_t;
    dup_remove(link_[d]);
    link_[d] = commit.t_new_link;
    dup_add(link_[d]);
    outcome.moves.push_back(LeafMove{leaves_[ref_t].item_slot, d});
  }

  // Shrink away the last two slots.
  dup_remove(link_[last - 1]);
  dup_remove(link_[last]);
  link_.resize(nodes - 2);
  leaf_ref_.resize(nodes - 2);
  return outcome;
}

Result<ModulationTree::DeleteManyOutcome> ModulationTree::apply_delete_many(
    const DeleteManyCommit& commit) {
  static obs::Counter& applies =
      obs::Registry::instance().counter("fgad_tree_apply_delete_many_total");
  static obs::Counter& deleted =
      obs::Registry::instance().counter("fgad_tree_bulk_deleted_leaves_total");
  static obs::Histogram& apply_ns =
      obs::Registry::instance().histogram("fgad_tree_apply_delete_many_ns");
  obs::ScopedTimer timer(apply_ns);
  applies.inc();

  const std::vector<NodeId>& dl = commit.leaves;
  const std::size_t m = dl.size();
  if (m == 0) {
    return Error(Errc::kInvalidArgument, "apply_delete_many: empty leaf set");
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (!is_leaf(dl[i])) {
      return Error(Errc::kInvalidArgument,
                   "apply_delete_many: target is not a leaf");
    }
    if (i > 0 && dl[i] <= dl[i - 1]) {
      return Error(Errc::kInvalidArgument,
                   "apply_delete_many: leaves not strictly ascending");
    }
  }
  const std::size_t nodes = node_count();
  const std::vector<NodeId> cut = merged_cut_nodes(nodes, dl);
  if (commit.deltas.size() != cut.size()) {
    return Error(Errc::kInvalidArgument, "apply_delete_many: wrong delta count");
  }
  for (const Md& delta : commit.deltas) {
    if (delta.size() != width_) {
      return Error(Errc::kInvalidArgument, "apply_delete_many: bad delta width");
    }
  }
  const BulkGeometry geo = bulk_geometry(nodes, dl);
  if (commit.relocs.size() != geo.holes.size()) {
    return Error(Errc::kInvalidArgument,
                 "apply_delete_many: wrong relocation count");
  }
  const std::unordered_set<NodeId> dset(dl.begin(), dl.end());
  for (std::size_t i = 0; i < commit.relocs.size(); ++i) {
    const DeleteManyCommit::Reloc& rl = commit.relocs[i];
    if (rl.has_new_link != dset.contains(geo.holes[i])) {
      return Error(Errc::kInvalidArgument,
                   "apply_delete_many: relocation link flag mismatch");
    }
    if (rl.new_leaf_mod.size() != width_ ||
        (rl.has_new_link && rl.new_link.size() != width_)) {
      return Error(Errc::kInvalidArgument,
                   "apply_delete_many: bad relocation modulator width");
    }
  }
  // Best-effort duplicate pre-check on the client-supplied fresh values
  // (same contract as apply_delete: delta-adjusted collisions are ~2^-(8w)
  // and caught by the client's MT(k) distinctness check later).
  {
    std::vector<const Md*> incoming;
    incoming.reserve(2 * commit.relocs.size());
    for (const DeleteManyCommit::Reloc& rl : commit.relocs) {
      incoming.push_back(&rl.new_leaf_mod);
      if (rl.has_new_link) {
        incoming.push_back(&rl.new_link);
      }
    }
    std::unordered_set<Md, Md::Hasher> fresh;
    fresh.reserve(incoming.size());
    for (const Md* v : incoming) {
      if (dup_would_collide(*v)) {
        return Error(Errc::kDuplicateModulator,
                     "apply_delete_many: commit modulator duplicates tree value");
      }
      if (!fresh.insert(*v).second) {
        return Error(Errc::kDuplicateModulator,
                     "apply_delete_many: commit modulators not distinct");
      }
    }
  }

  // All checks passed; mutate. Step A: one delta per merged-cut node
  // (Eqs. 6-7 applied to the cut frontier).
  for (std::size_t i = 0; i < cut.size(); ++i) {
    const NodeId c = cut[i];
    const Md& delta = commit.deltas[i];
    if (is_leaf(c)) {
      xor_mod(leaf_rec(c).leaf_mod, delta);
    } else {
      xor_mod(link_[left_child(c)], delta);
      xor_mod(link_[right_child(c)], delta);
    }
  }

  // Step B: drop every deleted leaf's record.
  DeleteManyOutcome outcome;
  outcome.removed_item_slots.reserve(m);
  for (NodeId d : dl) {
    outcome.removed_item_slots.push_back(leaf_rec(d).item_slot);
    dup_remove(leaf_rec(d).leaf_mod);
    free_leaf_rec(leaf_ref_[d]);
    leaf_ref_[d] = kNoLeafRef;
  }
  deleted.inc(m);

  if (geo.new_node_count == 0) {
    link_.clear();
    leaf_ref_.clear();
    return outcome;
  }

  // Step C: relocate tail leaves into the holes (generalized IV-D).
  for (std::size_t i = 0; i < geo.holes.size(); ++i) {
    const NodeId h = geo.holes[i];
    const NodeId v = geo.movers[i];
    const DeleteManyCommit::Reloc& rl = commit.relocs[i];
    const std::uint32_t ref = leaf_ref_[v];
    dup_remove(leaves_[ref].leaf_mod);
    leaves_[ref].leaf_mod = rl.new_leaf_mod;
    dup_add(leaves_[ref].leaf_mod);
    leaf_ref_[h] = ref;
    leaf_ref_[v] = kNoLeafRef;
    if (rl.has_new_link) {
      dup_remove(link_[h]);
      link_[h] = rl.new_link;
      dup_add(link_[h]);
    }
    outcome.moves.push_back(LeafMove{leaves_[ref].item_slot, h});
    outcome.leaf_relocations.push_back(DeleteManyOutcome::LeafReloc{v, h});
  }

  // Step D: chop the tail (chopped slots include formerly internal nodes
  // when the tree shrank below the old leaf line).
  for (NodeId v = geo.new_node_count; v < nodes; ++v) {
    dup_remove(link_[v]);
  }
  link_.resize(geo.new_node_count);
  leaf_ref_.resize(geo.new_node_count);
  return outcome;
}

Result<ModulationTree::InsertOutcome> ModulationTree::apply_insert(
    const InsertCommit& commit, std::uint64_t item_slot) {
  static obs::Counter& applies =
      obs::Registry::instance().counter("fgad_tree_apply_insert_total");
  static obs::Histogram& apply_ns =
      obs::Registry::instance().histogram("fgad_tree_apply_insert_ns");
  obs::ScopedTimer timer(apply_ns);
  applies.inc();
  if (commit.empty_tree) {
    if (!empty()) {
      return Error(Errc::kInvalidArgument,
                   "apply_insert: tree not empty for first insert");
    }
    if (commit.root_leaf_mod.size() != width_) {
      return Error(Errc::kInvalidArgument, "apply_insert: bad root leaf mod");
    }
    link_.resize(1);  // slot 0 exists; its link entry is unused
    leaf_ref_.assign(1, kNoLeafRef);
    dup_add(commit.root_leaf_mod);
    leaf_ref_[0] = alloc_leaf_rec(commit.root_leaf_mod, item_slot);
    return InsertOutcome{root_id(), {}};
  }

  if (empty()) {
    return Error(Errc::kInvalidArgument, "apply_insert: tree is empty");
  }
  const NodeId q = insert_parent();
  if (commit.q != q) {
    return Error(Errc::kInvalidArgument, "apply_insert: stale insert point");
  }
  const std::array<const Md*, 4> incoming{&commit.left_link,
                                          &commit.right_link,
                                          &commit.moved_leaf_mod,
                                          &commit.new_leaf_mod};
  for (const Md* m : incoming) {
    if (m->size() != width_) {
      return Error(Errc::kInvalidArgument, "apply_insert: bad modulator width");
    }
  }
  for (std::size_t i = 0; i < incoming.size(); ++i) {
    if (dup_would_collide(*incoming[i])) {
      return Error(Errc::kDuplicateModulator,
                   "apply_insert: modulator duplicates tree value");
    }
    for (std::size_t j = i + 1; j < incoming.size(); ++j) {
      if (*incoming[i] == *incoming[j]) {
        return Error(Errc::kDuplicateModulator,
                     "apply_insert: modulators not distinct");
      }
    }
  }

  const NodeId left = static_cast<NodeId>(node_count());
  const NodeId right = left + 1;

  const std::uint32_t old_ref = leaf_ref_[q];
  dup_remove(leaves_[old_ref].leaf_mod);
  leaves_[old_ref].leaf_mod = commit.moved_leaf_mod;
  dup_add(leaves_[old_ref].leaf_mod);

  const std::uint32_t new_ref = alloc_leaf_rec(commit.new_leaf_mod, item_slot);
  dup_add(commit.new_leaf_mod);

  link_.push_back(commit.left_link);
  link_.push_back(commit.right_link);
  dup_add(commit.left_link);
  dup_add(commit.right_link);
  leaf_ref_.push_back(old_ref);
  leaf_ref_.push_back(new_ref);
  leaf_ref_[q] = kNoLeafRef;

  InsertOutcome out;
  out.new_leaf = right;
  out.moves.push_back(LeafMove{leaves_[old_ref].item_slot, left});
  return out;
}

void ModulationTree::set_leaf_mod(NodeId v, Md m) {
  LeafRec& rec = leaf_rec(v);
  dup_remove(rec.leaf_mod);
  rec.leaf_mod = m;
  dup_add(rec.leaf_mod);
}

void ModulationTree::set_link_mod(NodeId v, Md m) {
  if (!valid_node(v) || is_root(v)) {
    throw std::out_of_range("ModulationTree::set_link_mod: bad node");
  }
  dup_remove(link_[v]);
  link_[v] = m;
  dup_add(link_[v]);
}

void ModulationTree::serialize(proto::Writer& w) const {
  serialize(w, {});
}

void ModulationTree::serialize(
    proto::Writer& w,
    const std::function<std::uint64_t(std::uint64_t)>& slot_remap) const {
  w.u8(static_cast<std::uint8_t>(cfg_.alg));
  w.u64(node_count());
  for (NodeId v = 1; v < node_count(); ++v) {
    w.raw(link_[v].bytes());
  }
  const std::size_t n = leaf_count();
  for (NodeId v = n == 0 ? 0 : n - 1; v < node_count(); ++v) {
    const LeafRec& rec = leaf_rec(v);
    w.raw(rec.leaf_mod.bytes());
    w.u64(slot_remap ? slot_remap(rec.item_slot) : rec.item_slot);
  }
}

Result<ModulationTree> ModulationTree::deserialize(proto::Reader& r,
                                                   Config cfg) {
  const auto alg = static_cast<HashAlg>(r.u8());
  if (alg != HashAlg::kSha1 && alg != HashAlg::kSha256) {
    return Error(Errc::kDecodeError, "tree: unknown hash algorithm");
  }
  cfg.alg = alg;
  ModulationTree tree(cfg);
  const std::uint64_t nodes = r.u64();
  if (nodes != 0 && nodes % 2 == 0) {
    return Error(Errc::kDecodeError, "tree: node count must be odd");
  }
  const std::size_t width = crypto::digest_size(alg);
  if (nodes == 0) {
    if (!r.ok()) return Error(Errc::kDecodeError, "tree: truncated");
    return tree;
  }
  // Bound the claimed size by the bytes actually present BEFORE allocating:
  // (nodes-1) link modulators plus one (modulator + u64 slot) per leaf.
  // The cap check comes first so `need` cannot overflow.
  if (!r.ok() || nodes > (std::uint64_t{1} << 40)) {
    return Error(Errc::kDecodeError, "tree: implausible node count");
  }
  const std::uint64_t need =
      (nodes - 1) * width + leaf_count_of(nodes) * (width + 8);
  if (r.remaining() < need) {
    return Error(Errc::kDecodeError, "tree: truncated");
  }
  std::vector<Md> links(nodes);
  for (NodeId v = 1; v < nodes; ++v) {
    const Bytes b = r.raw(width);
    if (!r.ok()) return Error(Errc::kDecodeError, "tree: truncated links");
    links[v] = Md(b);
  }
  const std::size_t n = leaf_count_of(nodes);
  std::vector<std::pair<Md, std::uint64_t>> leaves(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Bytes b = r.raw(width);
    const std::uint64_t slot = r.u64();
    if (!r.ok()) return Error(Errc::kDecodeError, "tree: truncated leaves");
    leaves[i] = {Md(b), slot};
  }
  tree.build(
      n, [&](NodeId v) { return links[v]; },
      [&](NodeId v) { return leaves[v - (n - 1)]; });
  return tree;
}

std::size_t ModulationTree::serialized_size() const {
  const std::size_t nodes = node_count();
  if (nodes == 0) {
    return 1 + 8;
  }
  return 1 + 8 + (nodes - 1) * width_ + leaf_count() * (width_ + 8);
}

std::size_t ModulationTree::memory_bytes() const {
  std::size_t total = link_.capacity() * sizeof(Md) +
                      leaf_ref_.capacity() * sizeof(std::uint32_t) +
                      leaves_.capacity() * sizeof(LeafRec) +
                      free_leaf_refs_.capacity() * sizeof(std::uint32_t);
  if (cfg_.track_duplicates) {
    total += values_.size() * (sizeof(Md) + 2 * sizeof(void*));
  }
  return total;
}

}  // namespace fgad::core
