#include "baselines/master_key.h"

namespace fgad::baselines {

namespace proto = fgad::proto;
using proto::MsgType;

namespace {
constexpr std::uint32_t kChunk = 1024;  // items per batch message

Result<Bytes> expect(net::RpcChannel& ch, BytesView frame, MsgType type) {
  auto resp = ch.roundtrip(frame);
  if (!resp) return resp;
  auto env = proto::open_message(resp.value());
  if (!env) return env.error();
  if (env.value().type == MsgType::kError) {
    proto::Reader r(env.value().payload);
    auto err = proto::ErrorMsg::from(r);
    if (!err) return Error(Errc::kDecodeError, "baseline: bad error frame");
    return Error(err.value().code, err.value().message);
  }
  if (env.value().type != type) {
    return Error(Errc::kDecodeError, "baseline: unexpected response");
  }
  return std::move(env.value().payload);
}
}  // namespace

MasterKeySolution::MasterKeySolution(net::RpcChannel& channel,
                                     crypto::RandomSource& rnd,
                                     crypto::HashAlg alg, std::uint64_t table)
    : channel_(channel), rnd_(rnd), alg_(alg), table_(table), codec_(alg) {
  Bytes key(kKeyBytes);
  rnd_.fill(key);
  master_ = crypto::SecureBuffer(std::move(key));
}

crypto::Md MasterKeySolution::item_key(const crypto::SecureBuffer& master,
                                       std::uint64_t index) const {
  return crypto::Prf(alg_, master.view()).derive(index);
}

Status MasterKeySolution::kv_store(std::uint64_t key, Bytes value) {
  proto::KvPutReq req;
  req.table = table_;
  req.key = key;
  req.value = std::move(value);
  return expect(channel_, req.to_frame(), MsgType::kKvPutResp).status();
}

Result<Bytes> MasterKeySolution::kv_fetch(std::uint64_t key) {
  proto::KvGetReq req;
  req.table = table_;
  req.key = key;
  auto payload = expect(channel_, req.to_frame(), MsgType::kKvGetResp);
  if (!payload) return payload.error();
  proto::Reader r(payload.value());
  auto resp = proto::KvGetResp::from(r);
  if (!resp) return resp.error();
  if (!resp.value().found) {
    return Error(Errc::kNotFound, "baseline: item missing");
  }
  return std::move(resp.value().value);
}

Status MasterKeySolution::outsource(
    std::size_t n_items, const std::function<Bytes(std::size_t)>& item_at) {
  n_ = n_items;
  std::size_t i = 0;
  while (i < n_items) {
    proto::KvPutBatchReq batch;
    batch.table = table_;
    const std::size_t end = std::min<std::size_t>(i + kChunk, n_items);
    batch.entries.reserve(end - i);
    {
      CumulativeTimer::Section sec(compute_timer_);
      for (; i < end; ++i) {
        batch.entries.push_back(proto::KvGetRangeResp::Entry{
            i, codec_.seal(item_key(master_, i), item_at(i), counter_++,
                           rnd_)});
      }
    }
    if (auto st =
            expect(channel_, batch.to_frame(), MsgType::kKvPutBatchResp);
        !st) {
      return st.status();
    }
  }
  return Status::ok();
}

Result<Bytes> MasterKeySolution::access(std::uint64_t index) {
  if (index >= n_) {
    return Error(Errc::kNotFound, "baseline: index out of range");
  }
  auto ct = kv_fetch(index);
  if (!ct) return ct.error();
  CumulativeTimer::Section sec(compute_timer_);
  auto opened = codec_.open(item_key(master_, index), ct.value());
  if (!opened) {
    return Error(Errc::kIntegrityMismatch, "baseline: item failed check");
  }
  return std::move(opened.value().plaintext);
}

Status MasterKeySolution::erase_item(std::uint64_t index) {
  if (index >= n_) {
    return Status(Errc::kNotFound, "baseline: index out of range");
  }
  // Pick the replacement master key up front; re-encrypt as we stream so
  // peak client memory stays at one chunk.
  Bytes fresh_bytes(kKeyBytes);
  rnd_.fill(fresh_bytes);
  crypto::SecureBuffer fresh(std::move(fresh_bytes));

  std::uint64_t old_idx = 0;   // index in the old keyspace
  std::uint64_t new_idx = 0;   // index in the new keyspace
  while (old_idx < n_) {
    // Fetch a chunk of ciphertexts.
    proto::KvGetRangeReq rreq;
    rreq.table = table_;
    rreq.start_key = old_idx;
    rreq.max_count = kChunk;
    auto payload = expect(channel_, rreq.to_frame(), MsgType::kKvGetRangeResp);
    if (!payload) return payload.status();
    proto::Reader r(payload.value());
    auto range = proto::KvGetRangeResp::from(r);
    if (!range) return range.status();
    if (range.value().entries.empty()) {
      return Status(Errc::kIoError, "baseline: server returned no items");
    }

    proto::KvPutBatchReq batch;
    batch.table = table_;
    {
      CumulativeTimer::Section sec(compute_timer_);
      for (auto& e : range.value().entries) {
        old_idx = e.key + 1;
        if (e.key == index) {
          continue;  // the deleted item is simply not re-encrypted
        }
        auto opened = codec_.open(item_key(master_, e.key), e.value);
        if (!opened) {
          return Status(Errc::kIntegrityMismatch,
                        "baseline: stored item failed check");
        }
        batch.entries.push_back(proto::KvGetRangeResp::Entry{
            new_idx,
            codec_.seal(item_key(fresh, new_idx), opened.value().plaintext,
                        opened.value().r, rnd_)});
        ++new_idx;
      }
    }
    if (!batch.entries.empty()) {
      if (auto st =
              expect(channel_, batch.to_frame(), MsgType::kKvPutBatchResp);
          !st) {
        return st.status();
      }
    }
  }

  // Drop the now-stale last slot and install the new key.
  proto::KvDeleteReq dreq;
  dreq.table = table_;
  dreq.key = n_ - 1;
  if (auto st = expect(channel_, dreq.to_frame(), MsgType::kKvDeleteResp);
      !st) {
    return st.status();
  }
  master_ = std::move(fresh);  // old K is cleansed by the move
  --n_;
  return Status::ok();
}

}  // namespace fgad::baselines
