// Individual-key baseline (Section III-B of the paper).
//
// The client keeps one independent key per item. Deletion is O(1): wipe the
// key locally and ask the server to discard the ciphertext — even a server
// that keeps the ciphertext can never decrypt it. The cost is client
// storage: n keys, which for 4 KB items rivals the data itself (Table II's
// 1.53 MB for a single 10^5-item file).
#pragma once

#include <functional>

#include "common/stopwatch.h"
#include "core/item_codec.h"
#include "crypto/secure_buffer.h"
#include "net/transport.h"
#include "proto/messages.h"

namespace fgad::baselines {

class IndividualKeySolution {
 public:
  static constexpr std::size_t kKeyBytes = 16;

  IndividualKeySolution(net::RpcChannel& channel, crypto::RandomSource& rnd,
                        crypto::HashAlg alg, std::uint64_t table);

  Status outsource(std::size_t n_items,
                   const std::function<Bytes(std::size_t)>& item_at);

  Result<Bytes> access(std::uint64_t index);

  /// O(1) deletion: wipes key `index` and issues one tiny delete request.
  Status erase_item(std::uint64_t index);

  std::size_t item_count() const { return live_; }

  /// The paper's client-storage metric: n keys of 16 bytes.
  std::size_t client_storage_bytes() const { return keys_.size() * kKeyBytes; }

  bool key_alive(std::uint64_t index) const {
    return index < alive_.size() && alive_[index];
  }

  CumulativeTimer& compute_timer() { return compute_timer_; }

 private:
  net::RpcChannel& channel_;
  crypto::RandomSource& rnd_;
  std::uint64_t table_;
  core::ItemCodec codec_;
  std::vector<crypto::Md> keys_;  // wiped individually on delete
  std::vector<bool> alive_;
  std::size_t live_ = 0;
  std::uint64_t counter_ = 0;
  CumulativeTimer compute_timer_;
};

}  // namespace fgad::baselines
