#include "baselines/individual_key.h"

namespace fgad::baselines {

namespace proto = fgad::proto;
using proto::MsgType;

namespace {
constexpr std::uint32_t kChunk = 1024;

Result<Bytes> expect(net::RpcChannel& ch, BytesView frame, MsgType type) {
  auto resp = ch.roundtrip(frame);
  if (!resp) return resp;
  auto env = proto::open_message(resp.value());
  if (!env) return env.error();
  if (env.value().type == MsgType::kError) {
    proto::Reader r(env.value().payload);
    auto err = proto::ErrorMsg::from(r);
    if (!err) return Error(Errc::kDecodeError, "baseline: bad error frame");
    return Error(err.value().code, err.value().message);
  }
  if (env.value().type != type) {
    return Error(Errc::kDecodeError, "baseline: unexpected response");
  }
  return std::move(env.value().payload);
}
}  // namespace

IndividualKeySolution::IndividualKeySolution(net::RpcChannel& channel,
                                             crypto::RandomSource& rnd,
                                             crypto::HashAlg alg,
                                             std::uint64_t table)
    : channel_(channel), rnd_(rnd), table_(table), codec_(alg) {}

Status IndividualKeySolution::outsource(
    std::size_t n_items, const std::function<Bytes(std::size_t)>& item_at) {
  keys_.resize(n_items);
  alive_.assign(n_items, true);
  live_ = n_items;
  std::size_t i = 0;
  while (i < n_items) {
    proto::KvPutBatchReq batch;
    batch.table = table_;
    const std::size_t end = std::min<std::size_t>(i + kChunk, n_items);
    batch.entries.reserve(end - i);
    {
      CumulativeTimer::Section sec(compute_timer_);
      for (; i < end; ++i) {
        keys_[i] = rnd_.random_md(kKeyBytes);
        batch.entries.push_back(proto::KvGetRangeResp::Entry{
            i, codec_.seal(keys_[i], item_at(i), counter_++, rnd_)});
      }
    }
    if (auto st =
            expect(channel_, batch.to_frame(), MsgType::kKvPutBatchResp);
        !st) {
      return st.status();
    }
  }
  return Status::ok();
}

Result<Bytes> IndividualKeySolution::access(std::uint64_t index) {
  if (!key_alive(index)) {
    return Error(Errc::kNotFound, "baseline: item deleted or out of range");
  }
  proto::KvGetReq req;
  req.table = table_;
  req.key = index;
  auto payload = expect(channel_, req.to_frame(), MsgType::kKvGetResp);
  if (!payload) return payload.error();
  proto::Reader r(payload.value());
  auto resp = proto::KvGetResp::from(r);
  if (!resp) return resp.error();
  if (!resp.value().found) {
    return Error(Errc::kNotFound, "baseline: item missing on server");
  }
  CumulativeTimer::Section sec(compute_timer_);
  auto opened = codec_.open(keys_[index], resp.value().value);
  if (!opened) {
    return Error(Errc::kIntegrityMismatch, "baseline: item failed check");
  }
  return std::move(opened.value().plaintext);
}

Status IndividualKeySolution::erase_item(std::uint64_t index) {
  if (!key_alive(index)) {
    return Status(Errc::kNotFound, "baseline: item deleted or out of range");
  }
  {
    // The security-critical step: permanently destroy the item key. The
    // ciphertext is undecryptable from this point on, whether or not the
    // server honors the delete request.
    CumulativeTimer::Section sec(compute_timer_);
    keys_[index].cleanse();
    alive_[index] = false;
    --live_;
  }
  proto::KvDeleteReq req;
  req.table = table_;
  req.key = index;
  return expect(channel_, req.to_frame(), MsgType::kKvDeleteResp).status();
}

}  // namespace fgad::baselines
