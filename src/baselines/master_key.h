// Master-key baseline (Section III-A of the paper).
//
// The client keeps ONE master key K and derives each item's key as
// PRF(K, i). Deleting any single item forces the client to: fetch every
// remaining ciphertext, decrypt it, permanently delete K, pick a fresh K',
// re-encrypt everything under PRF(K', i'), and re-upload — O(n)
// communication and computation per deletion. This is the baseline whose
// pain motivates key modulation; Table II measures it head-to-head.
//
// Server side is a plain blob table (the scheme has no modulation tree).
#pragma once

#include <functional>

#include "common/stopwatch.h"
#include "core/item_codec.h"
#include "crypto/prf.h"
#include "crypto/secure_buffer.h"
#include "net/transport.h"
#include "proto/messages.h"

namespace fgad::baselines {

class MasterKeySolution {
 public:
  static constexpr std::size_t kKeyBytes = 16;

  MasterKeySolution(net::RpcChannel& channel, crypto::RandomSource& rnd,
                    crypto::HashAlg alg, std::uint64_t table);

  /// Encrypts and uploads n items.
  Status outsource(std::size_t n_items,
                   const std::function<Bytes(std::size_t)>& item_at);

  /// Fetches and decrypts item `index` (current indexing).
  Result<Bytes> access(std::uint64_t index);

  /// Deletes item `index`: O(n) fetch + re-encrypt + re-upload.
  Status erase_item(std::uint64_t index);

  std::size_t item_count() const { return n_; }

  /// The paper's client-storage metric: one 16-byte master key.
  std::size_t client_storage_bytes() const { return kKeyBytes; }

  CumulativeTimer& compute_timer() { return compute_timer_; }

 private:
  crypto::Md item_key(const crypto::SecureBuffer& master,
                      std::uint64_t index) const;
  Result<Bytes> kv_fetch(std::uint64_t key);
  Status kv_store(std::uint64_t key, Bytes value);

  net::RpcChannel& channel_;
  crypto::RandomSource& rnd_;
  crypto::HashAlg alg_;
  std::uint64_t table_;
  core::ItemCodec codec_;
  crypto::SecureBuffer master_;  // K (16 bytes)
  std::size_t n_ = 0;
  std::uint64_t counter_ = 0;
  CumulativeTimer compute_timer_;
};

}  // namespace fgad::baselines
