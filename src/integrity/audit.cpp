#include "integrity/audit.h"

#include <map>
#include <set>

namespace fgad::integrity {

namespace proto = fgad::proto;
using core::depth_of;
using core::parent_of;
using core::sibling_of;
using proto::MsgType;

Auditor::Auditor(net::RpcChannel& channel, crypto::HashAlg alg,
                 std::uint64_t file_id)
    : channel_(channel),
      hasher_(alg),
      file_id_(file_id),
      root_(Md::zero(crypto::digest_size(alg))) {}

void Auditor::init_from_items(
    std::span<const std::pair<std::uint64_t, BytesView>> items) {
  std::vector<Md> hashes;
  hashes.reserve(items.size());
  for (const auto& [id, ct] : items) {
    hashes.push_back(leaf_hash(hasher_, id, ct));
  }
  init_from_leaf_hashes(hashes);
}

void Auditor::init_from_leaf_hashes(std::span<const Md> leaf_hashes) {
  HashTree tree(hasher_.alg());
  tree.build(leaf_hashes);
  root_ = tree.root();
  nodes_ = tree.node_count();
}

Result<std::vector<Auditor::VerifiedEntry>> Auditor::query(
    bool by_leaf, std::span<const std::uint64_t> targets, bool include_ct,
    std::vector<Bytes>* cts_out) {
  proto::AuditReq req;
  req.file_id = file_id_;
  req.by_leaf = by_leaf;
  req.include_ciphertext = include_ct;
  req.targets.assign(targets.begin(), targets.end());

  auto resp_bytes = channel_.roundtrip(req.to_frame());
  if (!resp_bytes) {
    return resp_bytes.error();
  }
  auto env = proto::open_message(resp_bytes.value());
  if (!env) {
    return env.error();
  }
  if (env.value().type == MsgType::kError) {
    proto::Reader r(env.value().payload);
    auto err = proto::ErrorMsg::from(r);
    if (!err) return Error(Errc::kDecodeError, "audit: malformed error");
    return Error(err.value().code, err.value().message);
  }
  if (env.value().type != MsgType::kAuditResp) {
    return Error(Errc::kDecodeError, "audit: unexpected response");
  }
  proto::Reader r(env.value().payload);
  auto resp = proto::AuditResp::from(r);
  if (!resp) {
    return resp.error();
  }
  if (resp.value().entries.size() != targets.size()) {
    return Error(Errc::kTamperDetected, "audit: wrong entry count");
  }

  std::vector<VerifiedEntry> out;
  out.reserve(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    auto& e = resp.value().entries[i];
    // Positional binding: the entry must answer the target we asked about.
    if (by_leaf ? (e.leaf != targets[i]) : (e.item_id != targets[i])) {
      return Error(Errc::kTamperDetected, "audit: entry/target mismatch");
    }
    if (e.leaf >= nodes_ || !core::is_leaf_in(e.leaf, nodes_)) {
      return Error(Errc::kTamperDetected, "audit: leaf out of range");
    }
    MerkleProof proof{e.leaf, e.siblings};
    if (!verify_proof(hasher_, root_, e.leaf_hash, proof)) {
      return Error(Errc::kTamperDetected, "audit: membership proof invalid");
    }
    if (include_ct) {
      if (!e.has_ciphertext ||
          leaf_hash(hasher_, e.item_id, e.ciphertext) != e.leaf_hash) {
        return Error(Errc::kTamperDetected,
                     "audit: ciphertext does not match committed hash");
      }
      if (cts_out != nullptr) {
        cts_out->push_back(std::move(e.ciphertext));
      }
    }
    out.push_back(VerifiedEntry{e.item_id, e.leaf, e.leaf_hash,
                                std::move(e.siblings)});
  }
  return out;
}

Status Auditor::audit_items(std::span<const std::uint64_t> ids) {
  return query(/*by_leaf=*/false, ids, /*include_ct=*/true, nullptr).status();
}

Status Auditor::audit_random(std::size_t k, crypto::RandomSource& rnd) {
  const std::size_t n = leaf_count();
  if (n == 0) {
    return Status::ok();
  }
  const std::size_t first_leaf = n - 1;
  std::vector<std::uint64_t> leaves;
  leaves.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    leaves.push_back(first_leaf + rnd.random_u64() % n);
  }
  return query(/*by_leaf=*/true, leaves, /*include_ct=*/true, nullptr)
      .status();
}

Result<Bytes> Auditor::fetch_verified(std::uint64_t item_id) {
  std::vector<Bytes> cts;
  const std::uint64_t ids[] = {item_id};
  auto entries = query(/*by_leaf=*/false, ids, /*include_ct=*/true, &cts);
  if (!entries) {
    return entries.error();
  }
  return std::move(cts[0]);
}

Status Auditor::before_modify(std::uint64_t item_id,
                              BytesView new_ciphertext) {
  const std::uint64_t ids[] = {item_id};
  auto entries = query(false, ids, false, nullptr);
  if (!entries) {
    return entries.status();
  }
  const VerifiedEntry& e = entries.value()[0];
  root_ = fold_proof(hasher_, e.leaf,
                     leaf_hash(hasher_, item_id, new_ciphertext), e.siblings);
  return Status::ok();
}

Status Auditor::before_insert(std::uint64_t new_item_id,
                              BytesView new_ciphertext) {
  const Md new_h = leaf_hash(hasher_, new_item_id, new_ciphertext);
  if (nodes_ == 0) {
    root_ = new_h;
    nodes_ = 1;
    return Status::ok();
  }
  const NodeId q = static_cast<NodeId>((nodes_ - 1) / 2);
  const std::uint64_t leaves[] = {q};
  auto entries = query(true, leaves, false, nullptr);
  if (!entries) {
    return entries.status();
  }
  const VerifiedEntry& e = entries.value()[0];
  // q becomes internal over (old q hash, new leaf hash); its root path
  // siblings are unchanged.
  const Md q_internal = internal_hash(hasher_, e.leaf_hash, new_h);
  root_ = fold_proof(hasher_, q, q_internal, e.siblings);
  nodes_ += 2;
  return Status::ok();
}

Status Auditor::before_delete(std::uint64_t item_id) {
  if (nodes_ == 0) {
    return Status(Errc::kNotFound, "audit: empty file");
  }
  // Locate the victim leaf.
  const std::uint64_t ids[] = {item_id};
  auto victim = query(false, ids, false, nullptr);
  if (!victim) {
    return victim.status();
  }
  const NodeId d = victim.value()[0].leaf;

  if (nodes_ == 1) {
    root_ = Md::zero(hasher_.size());
    nodes_ = 0;
    return Status::ok();
  }

  const NodeId last = static_cast<NodeId>(nodes_ - 1);
  const NodeId p_slot = parent_of(last);

  if (d == last || d == last - 1) {
    // Survivor is promoted into the parent slot; its old proof's first
    // sibling was the deleted leaf, the rest is exactly the parent's path.
    const NodeId survivor = (d == last) ? last - 1 : last;
    const std::uint64_t leaves[] = {survivor};
    auto entries = query(true, leaves, false, nullptr);
    if (!entries) {
      return entries.status();
    }
    const VerifiedEntry& s = entries.value()[0];
    root_ = fold_proof(
        hasher_, p_slot, s.leaf_hash,
        std::span<const Md>(s.siblings.data() + 1, s.siblings.size() - 1));
    nodes_ -= 2;
    return Status::ok();
  }

  // General case: s = last-1 promotes into p_slot, t = last re-homes into
  // d's slot. Verify all three proofs, then re-evaluate the root over the
  // union of the two changed paths using only verified sibling hashes.
  const std::uint64_t leaves[] = {d, last - 1, last};
  auto entries = query(true, leaves, false, nullptr);
  if (!entries) {
    return entries.status();
  }
  const VerifiedEntry& ed = entries.value()[0];
  const VerifiedEntry& es = entries.value()[1];
  const VerifiedEntry& et = entries.value()[2];
  if (ed.item_id != item_id) {
    return Status(Errc::kTamperDetected, "audit: victim leaf re-bound");
  }

  // Old sibling hashes harvested from the verified proofs.
  std::map<NodeId, Md> old_sib;
  const auto harvest = [&](const VerifiedEntry& e) {
    NodeId v = e.leaf;
    old_sib.emplace(v, e.leaf_hash);
    for (const Md& s : e.siblings) {
      old_sib.emplace(sibling_of(v), s);
      v = parent_of(v);
    }
  };
  harvest(ed);
  harvest(es);
  harvest(et);

  // New values at the two changed slots (tree shrinks by 2 first).
  std::map<NodeId, Md> fresh;
  fresh[p_slot] = es.leaf_hash;  // s promoted
  fresh[d] = et.leaf_hash;       // t re-homed
  std::set<NodeId, std::greater<NodeId>> pending{p_slot, d};
  while (!pending.empty()) {
    const NodeId u = *pending.begin();
    pending.erase(pending.begin());
    if (core::is_root(u)) {
      root_ = fresh[u];
      nodes_ -= 2;
      return Status::ok();
    }
    const NodeId sib = sibling_of(u);
    pending.erase(sib);  // if both children changed, combine them once
    const Md* sib_val = nullptr;
    if (auto it = fresh.find(sib); it != fresh.end()) {
      sib_val = &it->second;
    } else if (auto it2 = old_sib.find(sib); it2 != old_sib.end()) {
      sib_val = &it2->second;
    } else {
      return Status(Errc::kTamperDetected,
                    "audit: proof coverage incomplete");
    }
    const NodeId p = parent_of(u);
    fresh[p] = (u % 2 == 1) ? internal_hash(hasher_, fresh[u], *sib_val)
                            : internal_hash(hasher_, *sib_val, fresh[u]);
    pending.insert(p);
  }
  return Status(Errc::kTamperDetected, "audit: root evaluation failed");
}

}  // namespace fgad::integrity
