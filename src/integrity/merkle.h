// Merkle hash tree over the stored ciphertexts — the integrity substrate.
//
// The paper delegates storage/access integrity to the PDP/PoR line of work
// ([1] Shacham-Waters, [2] Erway et al., [4] Ateniese et al.): "we assume
// the correct return of requested item is enforced by another branch of
// research". This module supplies that branch for our system: a dynamic
// Merkle tree with the SAME heap geometry as the modulation tree, so every
// structural mutation (leaf split on insert, balancing move on delete) maps
// one-to-one onto hash-tree updates.
//
//   leaf hash      = H(0x00 || item_id || ciphertext)   (computed client-side)
//   internal hash  = H(0x01 || left || right)
//
// The server maintains the tree and serves O(log n) membership proofs; the
// client tracks the root across its own mutations (integrity/audit.h), so a
// server that drops, rolls back, or substitutes any ciphertext is caught by
// the next audit or verified fetch.
#pragma once

#include <vector>

#include "core/node_id.h"
#include "crypto/digest.h"
#include "crypto/hasher.h"

namespace fgad::integrity {

using core::NodeId;
using crypto::Md;

/// Domain-separated leaf hash H(0x00 || item_id(8LE) || ciphertext).
Md leaf_hash(const crypto::Hasher& hasher, std::uint64_t item_id,
             BytesView ciphertext);

/// Domain-separated internal hash H(0x01 || left || right).
Md internal_hash(const crypto::Hasher& hasher, const Md& left,
                 const Md& right);

/// A membership proof: the sibling hashes on the leaf's root path,
/// bottom-up.
struct MerkleProof {
  NodeId leaf = core::kNoNode;
  std::vector<Md> siblings;
};

/// Recomputes the root implied by (leaf position, leaf hash, siblings).
Md fold_proof(const crypto::Hasher& hasher, NodeId leaf, const Md& leaf_h,
              std::span<const Md> siblings);

/// True iff the proof binds `leaf_h` at `proof.leaf` under `root`.
bool verify_proof(const crypto::Hasher& hasher, const Md& root,
                  const Md& leaf_h, const MerkleProof& proof);

/// Server-side dynamic Merkle tree (heap-array layout; see core/node_id.h).
class HashTree {
 public:
  explicit HashTree(crypto::HashAlg alg);

  std::size_t node_count() const { return hash_.size(); }
  std::size_t leaf_count() const { return core::leaf_count_of(hash_.size()); }
  bool empty() const { return hash_.empty(); }
  bool is_leaf(NodeId v) const {
    return v < hash_.size() && core::is_leaf_in(v, hash_.size());
  }

  /// Root of the tree; Md::zero(width) for the empty tree.
  Md root() const;

  /// Rebuilds from leaf hashes (leaf i of n lands at node n-1+i).
  void build(std::span<const Md> leaf_hashes);

  /// Membership proof for a leaf.
  MerkleProof prove(NodeId leaf) const;

  const Md& node_hash(NodeId v) const { return hash_[v]; }

  // ---- mutations mirroring the modulation tree -----------------------------

  /// Replaces a leaf hash (item modification).
  void set_leaf(NodeId leaf, const Md& h);

  /// Leaf split on insert: the old leaf q = (node_count-1)/2 moves to its
  /// new left child, `new_h` becomes the right child. First insert into an
  /// empty tree creates the root leaf.
  void append_pair(const Md& new_h);

  /// Mirrors the deletion balancing move: drops leaf d, promotes the
  /// surviving last-pair sibling into the parent slot, and (when d is not
  /// in the last pair) re-homes the last leaf into d's slot.
  void delete_leaf(NodeId d);

 private:
  void bubble_up(NodeId v);

  crypto::Hasher hasher_;
  std::size_t width_;
  std::vector<Md> hash_;
};

}  // namespace fgad::integrity
