#include "integrity/merkle.h"

#include <stdexcept>

namespace fgad::integrity {

using core::is_root;
using core::left_child;
using core::parent_of;
using core::sibling_of;

Md leaf_hash(const crypto::Hasher& hasher, std::uint64_t item_id,
             BytesView ciphertext) {
  Bytes prefix(9);
  prefix[0] = 0x00;
  for (int i = 0; i < 8; ++i) {
    prefix[1 + i] = static_cast<std::uint8_t>(item_id >> (8 * i));
  }
  return hasher.hash2(prefix, ciphertext);
}

Md internal_hash(const crypto::Hasher& hasher, const Md& left,
                 const Md& right) {
  Bytes buf;
  buf.reserve(1 + left.size() + right.size());
  buf.push_back(0x01);
  append(buf, left.bytes());
  append(buf, right.bytes());
  return hasher.hash(buf);
}

Md fold_proof(const crypto::Hasher& hasher, NodeId leaf, const Md& leaf_h,
              std::span<const Md> siblings) {
  Md cur = leaf_h;
  NodeId node = leaf;
  for (const Md& sib : siblings) {
    // Odd ids are left children in the heap layout.
    cur = (node % 2 == 1) ? internal_hash(hasher, cur, sib)
                          : internal_hash(hasher, sib, cur);
    node = parent_of(node);
  }
  return cur;
}

bool verify_proof(const crypto::Hasher& hasher, const Md& root,
                  const Md& leaf_h, const MerkleProof& proof) {
  if (proof.leaf == core::kNoNode ||
      proof.siblings.size() != core::depth_of(proof.leaf)) {
    return false;
  }
  return fold_proof(hasher, proof.leaf, leaf_h, proof.siblings) == root;
}

HashTree::HashTree(crypto::HashAlg alg)
    : hasher_(alg), width_(crypto::digest_size(alg)) {}

Md HashTree::root() const {
  return hash_.empty() ? Md::zero(width_) : hash_[0];
}

void HashTree::build(std::span<const Md> leaf_hashes) {
  const std::size_t n = leaf_hashes.size();
  hash_.assign(core::node_count_for(n), Md());
  if (n == 0) {
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    hash_[n - 1 + i] = leaf_hashes[i];
  }
  for (NodeId v = n - 1; v-- > 0;) {
    hash_[v] =
        internal_hash(hasher_, hash_[left_child(v)], hash_[left_child(v) + 1]);
  }
}

MerkleProof HashTree::prove(NodeId leaf) const {
  if (!is_leaf(leaf)) {
    throw std::out_of_range("HashTree::prove: not a leaf");
  }
  MerkleProof proof;
  proof.leaf = leaf;
  for (NodeId v = leaf; !is_root(v); v = parent_of(v)) {
    proof.siblings.push_back(hash_[sibling_of(v)]);
  }
  return proof;
}

void HashTree::bubble_up(NodeId v) {
  while (!is_root(v)) {
    v = parent_of(v);
    hash_[v] =
        internal_hash(hasher_, hash_[left_child(v)], hash_[left_child(v) + 1]);
  }
}

void HashTree::set_leaf(NodeId leaf, const Md& h) {
  if (!is_leaf(leaf)) {
    throw std::out_of_range("HashTree::set_leaf: not a leaf");
  }
  hash_[leaf] = h;
  bubble_up(leaf);
}

void HashTree::append_pair(const Md& new_h) {
  if (hash_.empty()) {
    hash_.push_back(new_h);
    return;
  }
  const NodeId q = static_cast<NodeId>((hash_.size() - 1) / 2);
  const Md moved = hash_[q];
  hash_.push_back(moved);
  hash_.push_back(new_h);
  hash_[q] = internal_hash(hasher_, moved, new_h);
  bubble_up(q);
}

void HashTree::delete_leaf(NodeId d) {
  if (!is_leaf(d)) {
    throw std::out_of_range("HashTree::delete_leaf: not a leaf");
  }
  const std::size_t nodes = hash_.size();
  if (nodes == 1) {
    hash_.clear();
    return;
  }
  const NodeId last = static_cast<NodeId>(nodes - 1);
  const NodeId p_slot = parent_of(last);
  if (d == last || d == last - 1) {
    const Md survivor = hash_[d == last ? last - 1 : last];
    hash_.resize(nodes - 2);
    hash_[p_slot] = survivor;
    bubble_up(p_slot);
  } else {
    const Md s_hash = hash_[last - 1];
    const Md t_hash = hash_[last];
    hash_.resize(nodes - 2);
    hash_[p_slot] = s_hash;
    hash_[d] = t_hash;
    bubble_up(d);
    bubble_up(p_slot);
  }
}

}  // namespace fgad::integrity
