// Client-side integrity verification: possession audits, authenticated
// fetches, and trustless root tracking across the client's own mutations.
//
// The Auditor is initialized from the client's OWN ciphertexts at outsource
// time (no trust in the server), after which it mirrors the hash tree's
// *shape* (a single node count) plus the 20/32-byte root. Before each
// mutation the application calls the matching before_* method: the Auditor
// fetches the O(log n) membership proofs it needs, verifies them against
// the current root, and rolls the root forward to the post-mutation value.
// A server that drops, rolls back, or substitutes any ciphertext can no
// longer produce valid proofs — audits and verified fetches fail closed.
//
// This implements the "correct return of requested item" guarantee the
// paper outsources to the PDP/PoR literature (its refs [1], [2], [4]),
// specialized to our tree geometry so deletion balancing and insertion
// splits are verifiable with nothing but sibling hashes.
#pragma once

#include "crypto/random.h"
#include "integrity/merkle.h"
#include "net/transport.h"
#include "proto/messages.h"

namespace fgad::integrity {

class Auditor {
 public:
  Auditor(net::RpcChannel& channel, crypto::HashAlg alg,
          std::uint64_t file_id);

  /// Trustless initialization from the client's own sealed items, in file
  /// order (item i sits at leaf n-1+i after outsourcing).
  void init_from_items(
      std::span<const std::pair<std::uint64_t, BytesView>> items);
  void init_from_leaf_hashes(std::span<const Md> leaf_hashes);

  const Md& expected_root() const { return root_; }
  std::size_t leaf_count() const { return core::leaf_count_of(nodes_); }

  /// Spot-check possession of the given items (fetching and re-hashing the
  /// ciphertexts). Fails closed on any missing/forged proof.
  Status audit_items(std::span<const std::uint64_t> ids);

  /// Random spot check of `k` live leaves.
  Status audit_random(std::size_t k, crypto::RandomSource& rnd);

  /// Fetches one ciphertext with a verified membership proof.
  Result<Bytes> fetch_verified(std::uint64_t item_id);

  // ---- root tracking: call BEFORE performing the mutation ----------------

  /// The item will be re-encrypted to `new_ciphertext` (same id, same leaf).
  Status before_modify(std::uint64_t item_id, BytesView new_ciphertext);

  /// A new item will be inserted (leaf split at the canonical position).
  Status before_insert(std::uint64_t new_item_id, BytesView new_ciphertext);

  /// The item will be assuredly deleted (balancing move mirrored).
  Status before_delete(std::uint64_t item_id);

 private:
  struct VerifiedEntry {
    std::uint64_t item_id;
    NodeId leaf;
    Md leaf_hash;
    std::vector<Md> siblings;
  };

  Result<std::vector<VerifiedEntry>> query(bool by_leaf,
                                           std::span<const std::uint64_t> targets,
                                           bool include_ct,
                                           std::vector<Bytes>* cts_out);

  net::RpcChannel& channel_;
  crypto::Hasher hasher_;
  std::uint64_t file_id_;
  Md root_;
  std::size_t nodes_ = 0;
};

}  // namespace fgad::integrity
