#include "proto/messages.h"

namespace fgad::proto {

using core::AccessInfo;
using core::CutEntry;
using core::DeleteCommit;
using core::DeleteInfo;
using core::InsertCommit;
using core::InsertInfo;
using core::PathView;

namespace {
Bytes frame(MsgType t, Writer&& w) {
  return seal_message(t, std::move(w).take());
}

Error decode_error(const char* what) {
  return Error(Errc::kDecodeError, what);
}
}  // namespace

Bytes seal_message(MsgType type, BytesView payload) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(type));
  w.raw(payload);
  return std::move(w).take();
}

bool is_idempotent(MsgType t) {
  switch (t) {
    case MsgType::kAccessReq:
    case MsgType::kFetchTreeReq:
    case MsgType::kFetchItemsReq:
    case MsgType::kListItemsReq:
    case MsgType::kStatReq:
    case MsgType::kAuditReq:
    case MsgType::kKvGetReq:
    case MsgType::kKvGetRangeReq:
    case MsgType::kPxAccessReq:
    case MsgType::kPxListFilesReq:
      return true;
    default:
      return false;
  }
}

Bytes seal_tagged(std::uint64_t request_id, BytesView inner_frame) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(MsgType::kTaggedEnvelope));
  w.u64(request_id);
  w.raw(inner_frame);
  return std::move(w).take();
}

Bytes seal_tagged_v2(std::uint64_t request_id, std::uint64_t span_id,
                     std::uint64_t parent_span_id,
                     const std::vector<TimingEntry>& timings,
                     BytesView inner_frame) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(MsgType::kTaggedEnvelopeV2));
  w.u64(request_id);
  w.u64(span_id);
  w.u64(parent_span_id);
  w.u8(static_cast<std::uint8_t>(
      timings.size() > 255 ? 255 : timings.size()));
  std::size_t n = 0;
  for (const TimingEntry& t : timings) {
    if (n++ == 255) {
      break;
    }
    w.u8(t.kind);
    w.u64(t.ns);
  }
  w.raw(inner_frame);
  return std::move(w).take();
}

namespace {
std::uint64_t read_le64(BytesView b, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(b[off + i]) << (8 * i);
  }
  return v;
}
}  // namespace

std::optional<TaggedInfo> open_tagged(BytesView framed) {
  // u16 tag type + u64 request id is the shortest shared prefix.
  if (framed.size() < 2 + 8 + 2) {
    return std::nullopt;
  }
  const auto t = static_cast<std::uint16_t>(
      framed[0] | static_cast<std::uint16_t>(framed[1]) << 8);
  TaggedInfo info;
  if (static_cast<MsgType>(t) == MsgType::kTaggedEnvelope) {
    info.request_id = read_le64(framed, 2);
    info.inner = framed.subspan(10);
    return info;
  }
  if (static_cast<MsgType>(t) != MsgType::kTaggedEnvelopeV2) {
    return std::nullopt;
  }
  // u16 | rid u64 | span u64 | parent u64 | u8 count | count×9 | inner.
  if (framed.size() < 2 + 8 + 8 + 8 + 1 + 2) {
    return std::nullopt;
  }
  info.v2 = true;
  info.request_id = read_le64(framed, 2);
  info.span_id = read_le64(framed, 10);
  info.parent_span_id = read_le64(framed, 18);
  const std::size_t count = framed[26];
  std::size_t off = 27;
  if (framed.size() < off + count * 9 + 2) {
    return std::nullopt;
  }
  info.timings.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    info.timings.push_back(
        TimingEntry{framed[off], read_le64(framed, off + 1)});
    off += 9;
  }
  info.inner = framed.subspan(off);
  return info;
}

std::optional<std::pair<std::uint64_t, BytesView>> split_tagged(
    BytesView framed) {
  if (auto info = open_tagged(framed)) {
    return std::make_pair(info->request_id, info->inner);
  }
  return std::nullopt;
}

std::optional<MsgType> peek_type(BytesView framed) {
  if (auto tag = split_tagged(framed)) {
    framed = tag->second;
  }
  if (framed.size() < 2) {
    return std::nullopt;
  }
  const auto t = static_cast<std::uint16_t>(
      framed[0] | static_cast<std::uint16_t>(framed[1]) << 8);
  if (static_cast<MsgType>(t) == MsgType::kTaggedEnvelope ||
      static_cast<MsgType>(t) == MsgType::kTaggedEnvelopeV2) {
    return std::nullopt;  // nested tags are invalid
  }
  return static_cast<MsgType>(t);
}

bool is_mutating(MsgType t) {
  switch (t) {
    case MsgType::kOutsourceReq:
    case MsgType::kModifyReq:
    case MsgType::kInsertCommitReq:
    case MsgType::kDeleteCommitReq:
    case MsgType::kDeleteManyCommitReq:
    case MsgType::kDropFileReq:
    case MsgType::kKvPutReq:
    case MsgType::kKvDeleteReq:
    case MsgType::kKvPutBatchReq:
      return true;
    default:
      return false;
  }
}

bool retryable_request(BytesView framed) {
  const auto t = peek_type(framed);
  if (!t.has_value()) {
    return false;
  }
  if (is_idempotent(*t)) {
    return true;
  }
  // A tagged mutation carries its request id as an idempotency token: the
  // durable server dedups it, so a resend of the identical frame is
  // applied at most once and replays the original response.
  return is_mutating(*t) && split_tagged(framed).has_value();
}

Result<Envelope> open_message(BytesView framed) {
  Reader r(framed);
  std::uint16_t t = r.u16();
  if (!r.ok()) {
    return decode_error("message too short");
  }
  Envelope env;
  if (static_cast<MsgType>(t) == MsgType::kTaggedEnvelope ||
      static_cast<MsgType>(t) == MsgType::kTaggedEnvelopeV2) {
    const auto info = open_tagged(framed);
    if (!info.has_value()) {
      return decode_error("tagged envelope: truncated");
    }
    Reader inner(info->inner);
    t = inner.u16();
    if (!inner.ok()) {
      return decode_error("tagged envelope: truncated");
    }
    if (static_cast<MsgType>(t) == MsgType::kTaggedEnvelope ||
        static_cast<MsgType>(t) == MsgType::kTaggedEnvelopeV2) {
      return decode_error("tagged envelope: nested tag");
    }
    env.request_id = info->request_id;
    env.type = static_cast<MsgType>(t);
    env.payload = inner.raw(inner.remaining());
    return env;
  }
  env.type = static_cast<MsgType>(t);
  env.payload = r.raw(r.remaining());
  return env;
}

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kError: return "error";
    case MsgType::kOutsourceReq: return "outsource_req";
    case MsgType::kOutsourceResp: return "outsource_resp";
    case MsgType::kAccessReq: return "access_req";
    case MsgType::kAccessResp: return "access_resp";
    case MsgType::kModifyReq: return "modify_req";
    case MsgType::kModifyResp: return "modify_resp";
    case MsgType::kInsertBeginReq: return "insert_begin_req";
    case MsgType::kInsertBeginResp: return "insert_begin_resp";
    case MsgType::kInsertCommitReq: return "insert_commit_req";
    case MsgType::kInsertCommitResp: return "insert_commit_resp";
    case MsgType::kDeleteBeginReq: return "delete_begin_req";
    case MsgType::kDeleteBeginResp: return "delete_begin_resp";
    case MsgType::kDeleteCommitReq: return "delete_commit_req";
    case MsgType::kDeleteCommitResp: return "delete_commit_resp";
    case MsgType::kDeleteManyBeginReq: return "delete_many_begin_req";
    case MsgType::kDeleteManyBeginResp: return "delete_many_begin_resp";
    case MsgType::kDeleteManyCommitReq: return "delete_many_commit_req";
    case MsgType::kDeleteManyCommitResp: return "delete_many_commit_resp";
    case MsgType::kFetchTreeReq: return "fetch_tree_req";
    case MsgType::kFetchTreeResp: return "fetch_tree_resp";
    case MsgType::kFetchItemsReq: return "fetch_items_req";
    case MsgType::kFetchItemsResp: return "fetch_items_resp";
    case MsgType::kListItemsReq: return "list_items_req";
    case MsgType::kListItemsResp: return "list_items_resp";
    case MsgType::kDropFileReq: return "drop_file_req";
    case MsgType::kDropFileResp: return "drop_file_resp";
    case MsgType::kStatReq: return "stat_req";
    case MsgType::kStatResp: return "stat_resp";
    case MsgType::kKvPutReq: return "kv_put_req";
    case MsgType::kKvPutResp: return "kv_put_resp";
    case MsgType::kKvGetReq: return "kv_get_req";
    case MsgType::kKvGetResp: return "kv_get_resp";
    case MsgType::kKvDeleteReq: return "kv_delete_req";
    case MsgType::kKvDeleteResp: return "kv_delete_resp";
    case MsgType::kKvGetRangeReq: return "kv_get_range_req";
    case MsgType::kKvGetRangeResp: return "kv_get_range_resp";
    case MsgType::kKvPutBatchReq: return "kv_put_batch_req";
    case MsgType::kKvPutBatchResp: return "kv_put_batch_resp";
    case MsgType::kPxCreateFileReq: return "px_create_file_req";
    case MsgType::kPxCreateFileResp: return "px_create_file_resp";
    case MsgType::kPxAccessReq: return "px_access_req";
    case MsgType::kPxAccessResp: return "px_access_resp";
    case MsgType::kPxInsertReq: return "px_insert_req";
    case MsgType::kPxInsertResp: return "px_insert_resp";
    case MsgType::kPxEraseReq: return "px_erase_req";
    case MsgType::kPxEraseResp: return "px_erase_resp";
    case MsgType::kPxModifyReq: return "px_modify_req";
    case MsgType::kPxModifyResp: return "px_modify_resp";
    case MsgType::kPxDeleteFileReq: return "px_delete_file_req";
    case MsgType::kPxDeleteFileResp: return "px_delete_file_resp";
    case MsgType::kPxListFilesReq: return "px_list_files_req";
    case MsgType::kPxListFilesResp: return "px_list_files_resp";
    case MsgType::kAuditReq: return "audit_req";
    case MsgType::kAuditResp: return "audit_resp";
    case MsgType::kTaggedEnvelope: return "tagged_envelope";
    case MsgType::kTaggedEnvelopeV2: return "tagged_envelope_v2";
    case MsgType::kReplAppend: return "repl_append";
    case MsgType::kReplAck: return "repl_ack";
    case MsgType::kReplSnapshot: return "repl_snapshot";
    case MsgType::kReplHeartbeat: return "repl_heartbeat";
  }
  return "unknown";
}

void encode_path(Writer& w, const PathView& p) {
  w.u32(static_cast<std::uint32_t>(p.nodes.size()));
  for (core::NodeId v : p.nodes) {
    w.u64(v);
  }
  for (const auto& m : p.links) {
    w.md(m);
  }
}

Result<PathView> decode_path(Reader& r) {
  const std::uint32_t n = r.u32();
  // Each node encodes to >= 8 bytes; bound the claim by what is present so
  // hostile counts cannot trigger huge allocations.
  if (!r.ok() || n == 0 || n > (1u << 26) || n > r.remaining() / 8 + 1) {
    return decode_error("path: bad node count");
  }
  PathView p;
  p.nodes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    p.nodes.push_back(r.u64());
  }
  p.links.reserve(n - 1);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    p.links.push_back(r.md());
  }
  if (!r.ok()) {
    return decode_error("path: truncated");
  }
  return p;
}

void encode_delete_info(Writer& w, const DeleteInfo& info) {
  encode_path(w, info.path);
  w.md(info.leaf_mod);
  w.u32(static_cast<std::uint32_t>(info.cut.size()));
  for (const CutEntry& e : info.cut) {
    w.u64(e.node);
    w.md(e.link);
    w.u8(e.is_leaf ? 1 : 0);
    if (e.is_leaf) {
      w.md(e.leaf_mod);
    }
  }
  w.u64(info.item_id);
  w.bytes(info.ciphertext);
  w.u8(info.has_balance ? 1 : 0);
  if (info.has_balance) {
    encode_path(w, info.t_path);
    w.md(info.t_leaf_mod);
    w.md(info.s_link);
    w.md(info.s_leaf_mod);
  }
}

Result<DeleteInfo> decode_delete_info(Reader& r) {
  DeleteInfo info;
  auto path = decode_path(r);
  if (!path) return path.error();
  info.path = std::move(path).value();
  info.leaf_mod = r.md();
  const std::uint32_t nc = r.u32();
  if (!r.ok() || nc > (1u << 26) || nc > r.remaining() / 9 + 1) {
    return decode_error("delete info: bad cut count");
  }
  info.cut.reserve(nc);
  for (std::uint32_t i = 0; i < nc; ++i) {
    CutEntry e;
    e.node = r.u64();
    e.link = r.md();
    e.is_leaf = r.u8() != 0;
    if (e.is_leaf) {
      e.leaf_mod = r.md();
    }
    info.cut.push_back(std::move(e));
  }
  info.item_id = r.u64();
  info.ciphertext = r.bytes();
  info.has_balance = r.u8() != 0;
  if (info.has_balance) {
    auto tp = decode_path(r);
    if (!tp) return tp.error();
    info.t_path = std::move(tp).value();
    info.t_leaf_mod = r.md();
    info.s_link = r.md();
    info.s_leaf_mod = r.md();
  }
  if (!r.ok()) {
    return decode_error("delete info: truncated");
  }
  return info;
}

void encode_delete_commit(Writer& w, const DeleteCommit& c) {
  w.u64(c.leaf);
  w.u32(static_cast<std::uint32_t>(c.deltas.size()));
  for (const auto& d : c.deltas) {
    w.md(d);
  }
  w.u8(c.has_balance ? 1 : 0);
  if (c.has_balance) {
    w.md(c.promoted_leaf_mod);
    w.u8(c.has_step2 ? 1 : 0);
    if (c.has_step2) {
      w.md(c.t_new_link);
      w.md(c.t_new_leaf_mod);
    }
  }
}

Result<DeleteCommit> decode_delete_commit(Reader& r) {
  DeleteCommit c;
  c.leaf = r.u64();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > (1u << 26) || n > r.remaining()) {
    return decode_error("delete commit: bad delta count");
  }
  c.deltas.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    c.deltas.push_back(r.md());
  }
  c.has_balance = r.u8() != 0;
  if (c.has_balance) {
    c.promoted_leaf_mod = r.md();
    c.has_step2 = r.u8() != 0;
    if (c.has_step2) {
      c.t_new_link = r.md();
      c.t_new_leaf_mod = r.md();
    }
  }
  if (!r.ok()) {
    return decode_error("delete commit: truncated");
  }
  return c;
}

void encode_delete_many_info(Writer& w, const core::DeleteManyInfo& info) {
  w.u64(info.node_count);
  w.u32(static_cast<std::uint32_t>(info.targets.size()));
  for (const auto& t : info.targets) {
    encode_path(w, t.path);
    w.md(t.leaf_mod);
    w.u64(t.item_id);
    w.bytes(t.ciphertext);
  }
  w.u32(static_cast<std::uint32_t>(info.cut.size()));
  for (const CutEntry& e : info.cut) {
    w.u64(e.node);
    w.md(e.link);
    w.u8(e.is_leaf ? 1 : 0);
    if (e.is_leaf) {
      w.md(e.leaf_mod);
    }
  }
  w.u32(static_cast<std::uint32_t>(info.hole_paths.size()));
  for (const PathView& p : info.hole_paths) {
    encode_path(w, p);
  }
  w.u32(static_cast<std::uint32_t>(info.movers.size()));
  for (const auto& mv : info.movers) {
    encode_path(w, mv.path);
    w.md(mv.leaf_mod);
  }
}

Result<core::DeleteManyInfo> decode_delete_many_info(Reader& r) {
  core::DeleteManyInfo info;
  info.node_count = r.u64();
  const std::uint32_t nt = r.u32();
  // Every target carries at least a 1-node path (12 bytes) plus a
  // modulator; bound the claim by the bytes present.
  if (!r.ok() || nt == 0 || nt > (1u << 26) || nt > r.remaining() / 12 + 1) {
    return decode_error("delete many info: bad target count");
  }
  info.targets.reserve(nt);
  for (std::uint32_t i = 0; i < nt; ++i) {
    core::DeleteManyInfo::Target t;
    auto path = decode_path(r);
    if (!path) return path.error();
    t.path = std::move(path).value();
    t.leaf_mod = r.md();
    t.item_id = r.u64();
    t.ciphertext = r.bytes();
    if (!r.ok()) return decode_error("delete many info: truncated target");
    info.targets.push_back(std::move(t));
  }
  const std::uint32_t nc = r.u32();
  if (!r.ok() || nc > (1u << 26) || nc > r.remaining() / 9 + 1) {
    return decode_error("delete many info: bad cut count");
  }
  info.cut.reserve(nc);
  for (std::uint32_t i = 0; i < nc; ++i) {
    CutEntry e;
    e.node = r.u64();
    e.link = r.md();
    e.is_leaf = r.u8() != 0;
    if (e.is_leaf) {
      e.leaf_mod = r.md();
    }
    info.cut.push_back(std::move(e));
  }
  const std::uint32_t nh = r.u32();
  if (!r.ok() || nh > (1u << 26) || nh > r.remaining() / 12 + 1) {
    return decode_error("delete many info: bad hole path count");
  }
  info.hole_paths.reserve(nh);
  for (std::uint32_t i = 0; i < nh; ++i) {
    auto path = decode_path(r);
    if (!path) return path.error();
    info.hole_paths.push_back(std::move(path).value());
  }
  const std::uint32_t nm = r.u32();
  if (!r.ok() || nm > (1u << 26) || nm > r.remaining() / 12 + 1) {
    return decode_error("delete many info: bad mover count");
  }
  info.movers.reserve(nm);
  for (std::uint32_t i = 0; i < nm; ++i) {
    core::DeleteManyInfo::Mover mv;
    auto path = decode_path(r);
    if (!path) return path.error();
    mv.path = std::move(path).value();
    mv.leaf_mod = r.md();
    info.movers.push_back(std::move(mv));
  }
  if (!r.ok()) {
    return decode_error("delete many info: truncated");
  }
  return info;
}

void encode_delete_many_commit(Writer& w, const core::DeleteManyCommit& c) {
  w.u32(static_cast<std::uint32_t>(c.leaves.size()));
  for (core::NodeId v : c.leaves) {
    w.u64(v);
  }
  w.u32(static_cast<std::uint32_t>(c.deltas.size()));
  for (const auto& d : c.deltas) {
    w.md(d);
  }
  w.u32(static_cast<std::uint32_t>(c.relocs.size()));
  for (const auto& rl : c.relocs) {
    w.md(rl.new_leaf_mod);
    w.u8(rl.has_new_link ? 1 : 0);
    if (rl.has_new_link) {
      w.md(rl.new_link);
    }
  }
}

Result<core::DeleteManyCommit> decode_delete_many_commit(Reader& r) {
  core::DeleteManyCommit c;
  const std::uint32_t nl = r.u32();
  if (!r.ok() || nl == 0 || nl > (1u << 26) || nl > r.remaining() / 8 + 1) {
    return decode_error("delete many commit: bad leaf count");
  }
  c.leaves.reserve(nl);
  for (std::uint32_t i = 0; i < nl; ++i) {
    c.leaves.push_back(r.u64());
  }
  const std::uint32_t nd = r.u32();
  if (!r.ok() || nd > (1u << 26) || nd > r.remaining()) {
    return decode_error("delete many commit: bad delta count");
  }
  c.deltas.reserve(nd);
  for (std::uint32_t i = 0; i < nd; ++i) {
    c.deltas.push_back(r.md());
  }
  const std::uint32_t nr = r.u32();
  if (!r.ok() || nr > (1u << 26) || nr > r.remaining()) {
    return decode_error("delete many commit: bad relocation count");
  }
  c.relocs.reserve(nr);
  for (std::uint32_t i = 0; i < nr; ++i) {
    core::DeleteManyCommit::Reloc rl;
    rl.new_leaf_mod = r.md();
    rl.has_new_link = r.u8() != 0;
    if (rl.has_new_link) {
      rl.new_link = r.md();
    }
    c.relocs.push_back(std::move(rl));
  }
  if (!r.ok()) {
    return decode_error("delete many commit: truncated");
  }
  return c;
}

void encode_insert_info(Writer& w, const InsertInfo& info) {
  w.u8(info.empty_tree ? 1 : 0);
  if (!info.empty_tree) {
    encode_path(w, info.q_path);
    w.md(info.q_leaf_mod);
  }
}

Result<InsertInfo> decode_insert_info(Reader& r) {
  InsertInfo info;
  info.empty_tree = r.u8() != 0;
  if (!info.empty_tree) {
    auto p = decode_path(r);
    if (!p) return p.error();
    info.q_path = std::move(p).value();
    info.q_leaf_mod = r.md();
  }
  if (!r.ok()) {
    return decode_error("insert info: truncated");
  }
  return info;
}

void encode_insert_commit(Writer& w, const InsertCommit& c) {
  w.u8(c.empty_tree ? 1 : 0);
  if (c.empty_tree) {
    w.md(c.root_leaf_mod);
  } else {
    w.u64(c.q);
    w.md(c.left_link);
    w.md(c.right_link);
    w.md(c.moved_leaf_mod);
    w.md(c.new_leaf_mod);
  }
  w.u64(c.item_id);
  w.bytes(c.ciphertext);
  w.u64(c.plain_size);
  w.u64(c.after_item_id);
}

Result<InsertCommit> decode_insert_commit(Reader& r) {
  InsertCommit c;
  c.empty_tree = r.u8() != 0;
  if (c.empty_tree) {
    c.root_leaf_mod = r.md();
  } else {
    c.q = r.u64();
    c.left_link = r.md();
    c.right_link = r.md();
    c.moved_leaf_mod = r.md();
    c.new_leaf_mod = r.md();
  }
  c.item_id = r.u64();
  c.ciphertext = r.bytes();
  c.plain_size = r.u64();
  c.after_item_id = r.u64();
  if (!r.ok()) {
    return decode_error("insert commit: truncated");
  }
  return c;
}

void encode_access_info(Writer& w, const AccessInfo& info) {
  encode_path(w, info.path);
  w.md(info.leaf_mod);
  w.u64(info.item_id);
  w.bytes(info.ciphertext);
}

Result<AccessInfo> decode_access_info(Reader& r) {
  AccessInfo info;
  auto p = decode_path(r);
  if (!p) return p.error();
  info.path = std::move(p).value();
  info.leaf_mod = r.md();
  info.item_id = r.u64();
  info.ciphertext = r.bytes();
  if (!r.ok()) {
    return decode_error("access info: truncated");
  }
  return info;
}

// ---- per-message frames -----------------------------------------------------

Bytes ErrorMsg::to_frame() const {
  Writer w;
  w.u16(static_cast<std::uint16_t>(code));
  w.str(message);
  return frame(MsgType::kError, std::move(w));
}

Result<ErrorMsg> ErrorMsg::from(Reader& r) {
  ErrorMsg m;
  m.code = static_cast<Errc>(r.u16());
  m.message = r.str();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

void encode_item_ref(Writer& w, const ItemRef& ref) {
  w.u8(static_cast<std::uint8_t>(ref.kind));
  w.u64(ref.value);
}

Result<ItemRef> decode_item_ref(Reader& r) {
  ItemRef ref;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(RefKind::kByteOffset)) {
    return decode_error("item ref: unknown kind");
  }
  ref.kind = static_cast<RefKind>(kind);
  ref.value = r.u64();
  if (!r.ok()) return decode_error("item ref: truncated");
  return ref;
}

Bytes OutsourceReq::to_frame() const {
  Writer w;
  w.u64(file_id);
  w.bytes(tree_blob);
  w.u64(items.size());
  for (const Item& it : items) {
    w.u64(it.item_id);
    w.bytes(it.ciphertext);
    w.u64(it.plain_size);
  }
  return frame(MsgType::kOutsourceReq, std::move(w));
}

Result<OutsourceReq> OutsourceReq::from(Reader& r) {
  OutsourceReq m;
  m.file_id = r.u64();
  m.tree_blob = r.bytes();
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > (1ull << 32) || n > r.remaining() / 12 + 1) {
    return decode_error("outsource: bad item count");
  }
  m.items.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Item it;
    it.item_id = r.u64();
    it.ciphertext = r.bytes();
    it.plain_size = r.u64();
    if (!r.ok()) return decode_error("outsource: truncated items");
    m.items.push_back(std::move(it));
  }
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes AccessReq::to_frame() const {
  Writer w;
  w.u64(file_id);
  encode_item_ref(w, ref);
  return frame(MsgType::kAccessReq, std::move(w));
}

Result<AccessReq> AccessReq::from(Reader& r) {
  AccessReq m;
  m.file_id = r.u64();
  auto ref = decode_item_ref(r);
  if (!ref) return ref.error();
  m.ref = ref.value();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes AccessResp::to_frame() const {
  Writer w;
  encode_access_info(w, info);
  return frame(MsgType::kAccessResp, std::move(w));
}

Result<AccessResp> AccessResp::from(Reader& r) {
  auto info = decode_access_info(r);
  if (!info) return info.error();
  if (auto st = r.finish(); !st) return Error(st.error());
  return AccessResp{std::move(info).value()};
}

Bytes ModifyReq::to_frame() const {
  Writer w;
  w.u64(file_id);
  w.u64(item_id);
  w.bytes(ciphertext);
  w.u64(plain_size);
  return frame(MsgType::kModifyReq, std::move(w));
}

Result<ModifyReq> ModifyReq::from(Reader& r) {
  ModifyReq m;
  m.file_id = r.u64();
  m.item_id = r.u64();
  m.ciphertext = r.bytes();
  m.plain_size = r.u64();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes InsertBeginReq::to_frame() const {
  Writer w;
  w.u64(file_id);
  return frame(MsgType::kInsertBeginReq, std::move(w));
}

Result<InsertBeginReq> InsertBeginReq::from(Reader& r) {
  InsertBeginReq m;
  m.file_id = r.u64();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes InsertBeginResp::to_frame() const {
  Writer w;
  encode_insert_info(w, info);
  return frame(MsgType::kInsertBeginResp, std::move(w));
}

Result<InsertBeginResp> InsertBeginResp::from(Reader& r) {
  auto info = decode_insert_info(r);
  if (!info) return info.error();
  if (auto st = r.finish(); !st) return Error(st.error());
  return InsertBeginResp{std::move(info).value()};
}

Bytes InsertCommitReq::to_frame() const {
  Writer w;
  w.u64(file_id);
  encode_insert_commit(w, commit);
  return frame(MsgType::kInsertCommitReq, std::move(w));
}

Result<InsertCommitReq> InsertCommitReq::from(Reader& r) {
  InsertCommitReq m;
  m.file_id = r.u64();
  auto c = decode_insert_commit(r);
  if (!c) return c.error();
  m.commit = std::move(c).value();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes DeleteBeginReq::to_frame() const {
  Writer w;
  w.u64(file_id);
  encode_item_ref(w, ref);
  return frame(MsgType::kDeleteBeginReq, std::move(w));
}

Result<DeleteBeginReq> DeleteBeginReq::from(Reader& r) {
  DeleteBeginReq m;
  m.file_id = r.u64();
  auto ref = decode_item_ref(r);
  if (!ref) return ref.error();
  m.ref = ref.value();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes DeleteBeginResp::to_frame() const {
  Writer w;
  encode_delete_info(w, info);
  return frame(MsgType::kDeleteBeginResp, std::move(w));
}

Result<DeleteBeginResp> DeleteBeginResp::from(Reader& r) {
  auto info = decode_delete_info(r);
  if (!info) return info.error();
  if (auto st = r.finish(); !st) return Error(st.error());
  return DeleteBeginResp{std::move(info).value()};
}

Bytes DeleteCommitReq::to_frame() const {
  Writer w;
  w.u64(file_id);
  encode_delete_commit(w, commit);
  return frame(MsgType::kDeleteCommitReq, std::move(w));
}

Result<DeleteCommitReq> DeleteCommitReq::from(Reader& r) {
  DeleteCommitReq m;
  m.file_id = r.u64();
  auto c = decode_delete_commit(r);
  if (!c) return c.error();
  m.commit = std::move(c).value();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes DeleteManyBeginReq::to_frame() const {
  Writer w;
  w.u64(file_id);
  w.u32(static_cast<std::uint32_t>(refs.size()));
  for (const ItemRef& ref : refs) {
    encode_item_ref(w, ref);
  }
  return frame(MsgType::kDeleteManyBeginReq, std::move(w));
}

Result<DeleteManyBeginReq> DeleteManyBeginReq::from(Reader& r) {
  DeleteManyBeginReq m;
  m.file_id = r.u64();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n == 0 || n > (1u << 26) || n > r.remaining() / 9 + 1) {
    return decode_error("delete many begin: bad ref count");
  }
  m.refs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto ref = decode_item_ref(r);
    if (!ref) return ref.error();
    m.refs.push_back(ref.value());
  }
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes DeleteManyBeginResp::to_frame() const {
  Writer w;
  encode_delete_many_info(w, info);
  return frame(MsgType::kDeleteManyBeginResp, std::move(w));
}

Result<DeleteManyBeginResp> DeleteManyBeginResp::from(Reader& r) {
  auto info = decode_delete_many_info(r);
  if (!info) return info.error();
  if (auto st = r.finish(); !st) return Error(st.error());
  return DeleteManyBeginResp{std::move(info).value()};
}

Bytes DeleteManyCommitReq::to_frame() const {
  Writer w;
  w.u64(file_id);
  encode_delete_many_commit(w, commit);
  return frame(MsgType::kDeleteManyCommitReq, std::move(w));
}

Result<DeleteManyCommitReq> DeleteManyCommitReq::from(Reader& r) {
  DeleteManyCommitReq m;
  m.file_id = r.u64();
  auto c = decode_delete_many_commit(r);
  if (!c) return c.error();
  m.commit = std::move(c).value();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes FetchTreeReq::to_frame() const {
  Writer w;
  w.u64(file_id);
  return frame(MsgType::kFetchTreeReq, std::move(w));
}

Result<FetchTreeReq> FetchTreeReq::from(Reader& r) {
  FetchTreeReq m;
  m.file_id = r.u64();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes FetchTreeResp::to_frame() const {
  Writer w;
  w.bytes(tree_blob);
  return frame(MsgType::kFetchTreeResp, std::move(w));
}

Result<FetchTreeResp> FetchTreeResp::from(Reader& r) {
  FetchTreeResp m;
  m.tree_blob = r.bytes();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes FetchItemsReq::to_frame() const {
  Writer w;
  w.u64(file_id);
  w.u64(start_ordinal);
  w.u32(max_count);
  return frame(MsgType::kFetchItemsReq, std::move(w));
}

Result<FetchItemsReq> FetchItemsReq::from(Reader& r) {
  FetchItemsReq m;
  m.file_id = r.u64();
  m.start_ordinal = r.u64();
  m.max_count = r.u32();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes FetchItemsResp::to_frame() const {
  Writer w;
  w.u64(items.size());
  for (const Entry& e : items) {
    w.u64(e.item_id);
    w.u64(e.leaf);
    w.bytes(e.ciphertext);
  }
  w.u8(more ? 1 : 0);
  return frame(MsgType::kFetchItemsResp, std::move(w));
}

Result<FetchItemsResp> FetchItemsResp::from(Reader& r) {
  FetchItemsResp m;
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > (1ull << 32) || n > r.remaining() / 20 + 1) {
    return decode_error("fetch items: bad count");
  }
  m.items.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Entry e;
    e.item_id = r.u64();
    e.leaf = r.u64();
    e.ciphertext = r.bytes();
    if (!r.ok()) return decode_error("fetch items: truncated");
    m.items.push_back(std::move(e));
  }
  m.more = r.u8() != 0;
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes ListItemsReq::to_frame() const {
  Writer w;
  w.u64(file_id);
  return frame(MsgType::kListItemsReq, std::move(w));
}

Result<ListItemsReq> ListItemsReq::from(Reader& r) {
  ListItemsReq m;
  m.file_id = r.u64();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes ListItemsResp::to_frame() const {
  Writer w;
  w.u64(ids.size());
  for (std::uint64_t id : ids) {
    w.u64(id);
  }
  return frame(MsgType::kListItemsResp, std::move(w));
}

Result<ListItemsResp> ListItemsResp::from(Reader& r) {
  ListItemsResp m;
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > (1ull << 32) || n > r.remaining() / 8 + 1) {
    return decode_error("list items: bad count");
  }
  m.ids.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    m.ids.push_back(r.u64());
  }
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes DropFileReq::to_frame() const {
  Writer w;
  w.u64(file_id);
  return frame(MsgType::kDropFileReq, std::move(w));
}

Result<DropFileReq> DropFileReq::from(Reader& r) {
  DropFileReq m;
  m.file_id = r.u64();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes StatReq::to_frame() const {
  Writer w;
  w.u64(file_id);
  return frame(MsgType::kStatReq, std::move(w));
}

Result<StatReq> StatReq::from(Reader& r) {
  StatReq m;
  m.file_id = r.u64();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes StatResp::to_frame() const {
  Writer w;
  w.u64(n_items);
  w.u64(node_count);
  w.u64(tree_bytes);
  return frame(MsgType::kStatResp, std::move(w));
}

Result<StatResp> StatResp::from(Reader& r) {
  StatResp m;
  m.n_items = r.u64();
  m.node_count = r.u64();
  m.tree_bytes = r.u64();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes AuditReq::to_frame() const {
  Writer w;
  w.u64(file_id);
  w.u8(by_leaf ? 1 : 0);
  w.u8(include_ciphertext ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(targets.size()));
  for (std::uint64_t t : targets) {
    w.u64(t);
  }
  return frame(MsgType::kAuditReq, std::move(w));
}

Result<AuditReq> AuditReq::from(Reader& r) {
  AuditReq m;
  m.file_id = r.u64();
  m.by_leaf = r.u8() != 0;
  m.include_ciphertext = r.u8() != 0;
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > (1u << 22) || n > r.remaining() / 8 + 1) {
    return decode_error("audit: bad target count");
  }
  m.targets.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    m.targets.push_back(r.u64());
  }
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes AuditResp::to_frame() const {
  Writer w;
  w.md(root);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const Entry& e : entries) {
    w.u64(e.item_id);
    w.u64(e.leaf);
    w.u8(e.has_ciphertext ? 1 : 0);
    if (e.has_ciphertext) {
      w.bytes(e.ciphertext);
    }
    w.md(e.leaf_hash);
    w.u8(static_cast<std::uint8_t>(e.siblings.size()));
    for (const auto& s : e.siblings) {
      w.md(s);
    }
  }
  return frame(MsgType::kAuditResp, std::move(w));
}

Result<AuditResp> AuditResp::from(Reader& r) {
  AuditResp m;
  m.root = r.md();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > (1u << 22) || n > r.remaining() / 20 + 1) {
    return decode_error("audit: bad entry count");
  }
  m.entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Entry e;
    e.item_id = r.u64();
    e.leaf = r.u64();
    e.has_ciphertext = r.u8() != 0;
    if (e.has_ciphertext) {
      e.ciphertext = r.bytes();
    }
    e.leaf_hash = r.md();
    const std::uint8_t ns = r.u8();
    e.siblings.reserve(ns);
    for (std::uint8_t s = 0; s < ns; ++s) {
      e.siblings.push_back(r.md());
    }
    if (!r.ok()) return decode_error("audit: truncated entries");
    m.entries.push_back(std::move(e));
  }
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes KvPutReq::to_frame() const {
  Writer w;
  w.u64(table);
  w.u64(key);
  w.bytes(value);
  return frame(MsgType::kKvPutReq, std::move(w));
}

Result<KvPutReq> KvPutReq::from(Reader& r) {
  KvPutReq m;
  m.table = r.u64();
  m.key = r.u64();
  m.value = r.bytes();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes KvGetReq::to_frame() const {
  Writer w;
  w.u64(table);
  w.u64(key);
  return frame(MsgType::kKvGetReq, std::move(w));
}

Result<KvGetReq> KvGetReq::from(Reader& r) {
  KvGetReq m;
  m.table = r.u64();
  m.key = r.u64();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes KvGetResp::to_frame() const {
  Writer w;
  w.u8(found ? 1 : 0);
  w.bytes(value);
  return frame(MsgType::kKvGetResp, std::move(w));
}

Result<KvGetResp> KvGetResp::from(Reader& r) {
  KvGetResp m;
  m.found = r.u8() != 0;
  m.value = r.bytes();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes KvDeleteReq::to_frame() const {
  Writer w;
  w.u64(table);
  w.u64(key);
  return frame(MsgType::kKvDeleteReq, std::move(w));
}

Result<KvDeleteReq> KvDeleteReq::from(Reader& r) {
  KvDeleteReq m;
  m.table = r.u64();
  m.key = r.u64();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes KvGetRangeReq::to_frame() const {
  Writer w;
  w.u64(table);
  w.u64(start_key);
  w.u32(max_count);
  return frame(MsgType::kKvGetRangeReq, std::move(w));
}

Result<KvGetRangeReq> KvGetRangeReq::from(Reader& r) {
  KvGetRangeReq m;
  m.table = r.u64();
  m.start_key = r.u64();
  m.max_count = r.u32();
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes KvGetRangeResp::to_frame() const {
  Writer w;
  w.u64(entries.size());
  for (const Entry& e : entries) {
    w.u64(e.key);
    w.bytes(e.value);
  }
  w.u8(more ? 1 : 0);
  return frame(MsgType::kKvGetRangeResp, std::move(w));
}

Result<KvGetRangeResp> KvGetRangeResp::from(Reader& r) {
  KvGetRangeResp m;
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > (1ull << 32) || n > r.remaining() / 12 + 1) {
    return decode_error("kv range: bad count");
  }
  m.entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Entry e;
    e.key = r.u64();
    e.value = r.bytes();
    if (!r.ok()) return decode_error("kv range: truncated");
    m.entries.push_back(std::move(e));
  }
  m.more = r.u8() != 0;
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes KvPutBatchReq::to_frame() const {
  Writer w;
  w.u64(table);
  w.u64(entries.size());
  for (const auto& e : entries) {
    w.u64(e.key);
    w.bytes(e.value);
  }
  return frame(MsgType::kKvPutBatchReq, std::move(w));
}

Result<KvPutBatchReq> KvPutBatchReq::from(Reader& r) {
  KvPutBatchReq m;
  m.table = r.u64();
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > (1ull << 32) || n > r.remaining() / 12 + 1) {
    return decode_error("kv batch: bad count");
  }
  m.entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    KvGetRangeResp::Entry e;
    e.key = r.u64();
    e.value = r.bytes();
    if (!r.ok()) return decode_error("kv batch: truncated");
    m.entries.push_back(std::move(e));
  }
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes ReplAppend::to_frame() const {
  Writer w;
  w.u64(term);
  w.u64(prev_lsn);
  w.u64(records.size());
  for (const auto& rec : records) {
    w.u64(rec.lsn);
    w.bytes(rec.request);
  }
  return frame(MsgType::kReplAppend, std::move(w));
}

Result<ReplAppend> ReplAppend::from(Reader& r) {
  ReplAppend m;
  m.term = r.u64();
  m.prev_lsn = r.u64();
  const std::uint64_t n = r.u64();
  if (!r.ok() || n > (1ull << 32) || n > r.remaining() / 12 + 1) {
    return decode_error("repl append: bad record count");
  }
  m.records.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ReplRecord rec;
    rec.lsn = r.u64();
    rec.request = r.bytes();
    if (!r.ok()) return decode_error("repl append: truncated record");
    m.records.push_back(std::move(rec));
  }
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes ReplAck::to_frame() const {
  Writer w;
  w.u64(term);
  w.u64(last_lsn);
  w.u8(static_cast<std::uint8_t>(code));
  return frame(MsgType::kReplAck, std::move(w));
}

Result<ReplAck> ReplAck::from(Reader& r) {
  ReplAck m;
  m.term = r.u64();
  m.last_lsn = r.u64();
  const std::uint8_t code = r.u8();
  if (!r.ok() || code > static_cast<std::uint8_t>(Code::kNeedSnapshot)) {
    return decode_error("repl ack: bad code");
  }
  m.code = static_cast<Code>(code);
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes ReplSnapshot::to_frame() const {
  Writer w;
  w.u64(term);
  w.u64(last_lsn);
  w.bytes(image);
  w.bytes(dedup);
  return frame(MsgType::kReplSnapshot, std::move(w));
}

Result<ReplSnapshot> ReplSnapshot::from(Reader& r) {
  ReplSnapshot m;
  m.term = r.u64();
  m.last_lsn = r.u64();
  m.image = r.bytes();
  m.dedup = r.bytes();
  if (!r.ok()) return decode_error("repl snapshot: truncated");
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes ReplHeartbeat::to_frame() const {
  Writer w;
  w.u64(term);
  w.u64(last_lsn);
  return frame(MsgType::kReplHeartbeat, std::move(w));
}

Result<ReplHeartbeat> ReplHeartbeat::from(Reader& r) {
  ReplHeartbeat m;
  m.term = r.u64();
  m.last_lsn = r.u64();
  if (!r.ok()) return decode_error("repl heartbeat: truncated");
  if (auto st = r.finish(); !st) return Error(st.error());
  return m;
}

Bytes empty_frame(MsgType type) {
  return seal_message(type, BytesView());
}

}  // namespace fgad::proto
