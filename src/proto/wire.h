// Bounds-checked binary wire codec (little-endian).
//
// Every protocol message and persisted structure is encoded through Writer /
// Reader so byte counts are exact and decoding malformed input fails softly
// (Reader switches to an error state instead of reading out of bounds).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/digest.h"

namespace fgad::proto {

class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);

  /// Length-prefixed (u32) byte string.
  void bytes(BytesView b);

  /// Raw bytes, no length prefix.
  void raw(BytesView b);

  /// Length-prefixed digest/modulator value (u8 size + bytes).
  void md(const crypto::Md& m);

  void str(std::string_view s);

  const Bytes& data() const& { return buf_; }
  Bytes&& take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes bytes();
  Bytes raw(std::size_t n);
  crypto::Md md();
  std::string str();

  bool ok() const { return ok_; }
  bool at_end() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// OK if the reader consumed everything without under-run.
  Status finish() const;

 private:
  bool need(std::size_t n);

  BytesView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace fgad::proto
