#include "proto/wire.h"

namespace fgad::proto {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::bytes(BytesView b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b);
}

void Writer::raw(BytesView b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Writer::md(const crypto::Md& m) {
  u8(static_cast<std::uint8_t>(m.size()));
  raw(m.bytes());
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

bool Reader::need(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::u8() {
  if (!need(1)) return 0;
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  if (!need(2)) return 0;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  if (!need(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  if (!need(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Bytes Reader::bytes() {
  const std::uint32_t n = u32();
  return raw(n);
}

Bytes Reader::raw(std::size_t n) {
  if (!need(n)) return {};
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

crypto::Md Reader::md() {
  const std::uint8_t n = u8();
  if (n > crypto::Md::kCapacity) {
    ok_ = false;
    return {};
  }
  if (!need(n)) return {};
  crypto::Md m{BytesView(data_.data() + pos_, n)};
  pos_ += n;
  return m;
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  if (!need(n)) return {};
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

Status Reader::finish() const {
  if (!ok_) {
    return Status(Errc::kDecodeError, "wire: truncated or malformed message");
  }
  if (pos_ != data_.size()) {
    return Status(Errc::kDecodeError, "wire: trailing bytes");
  }
  return Status::ok();
}

}  // namespace fgad::proto
