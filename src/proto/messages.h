// Protocol messages between the client and the cloud server.
//
// Transport-agnostic: a message is (type, payload) sealed into one framed
// byte string. Multi-round operations follow the paper's exchanges:
//
//   delete:  DeleteBeginReq -> DeleteBeginResp{MT(k) + balancing branch}
//            DeleteCommitReq{deltas + balancing mods} -> DeleteCommitResp
//   insert:  InsertBeginReq -> InsertBeginResp{P(q)}
//            InsertCommitReq{new mods + ciphertext} -> InsertCommitResp
//   access:  AccessReq -> AccessResp{P(k) + ciphertext}
//   modify:  ModifyReq{re-encrypted ciphertext} -> ModifyResp
//
// The Kv* family is a plain blob table used by the baseline solutions of
// Section III (they have no modulation tree; the server is just storage).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/views.h"
#include "proto/wire.h"

namespace fgad::proto {

enum class MsgType : std::uint16_t {
  kError = 0,
  kOutsourceReq = 1,
  kOutsourceResp = 2,
  kAccessReq = 3,
  kAccessResp = 4,
  kModifyReq = 5,
  kModifyResp = 6,
  kInsertBeginReq = 7,
  kInsertBeginResp = 8,
  kInsertCommitReq = 9,
  kInsertCommitResp = 10,
  kDeleteBeginReq = 11,
  kDeleteBeginResp = 12,
  kDeleteCommitReq = 13,
  kDeleteCommitResp = 14,
  kFetchTreeReq = 15,
  kFetchTreeResp = 16,
  kFetchItemsReq = 17,
  kFetchItemsResp = 18,
  kListItemsReq = 19,
  kListItemsResp = 20,
  kDropFileReq = 21,
  kDropFileResp = 22,
  kStatReq = 23,
  kStatResp = 24,
  // Merged-cut bulk deletion (DESIGN.md §16): m items of one file, one
  // fresh master key, one delta bundle, one commit round trip.
  kDeleteManyBeginReq = 25,
  kDeleteManyBeginResp = 26,
  kDeleteManyCommitReq = 27,
  kDeleteManyCommitResp = 28,
  kKvPutReq = 30,
  kKvPutResp = 31,
  kKvGetReq = 32,
  kKvGetResp = 33,
  kKvDeleteReq = 34,
  kKvDeleteResp = 35,
  kKvGetRangeReq = 36,
  kKvGetRangeResp = 37,
  kKvPutBatchReq = 38,
  kKvPutBatchResp = 39,
  // Local key-proxy protocol (Section V: a proxy holds the control key and
  // acts on users' behalf). Message structs live in fskeys/proxy.h.
  kPxCreateFileReq = 60,
  kPxCreateFileResp = 61,
  kPxAccessReq = 62,
  kPxAccessResp = 63,
  kPxInsertReq = 64,
  kPxInsertResp = 65,
  kPxEraseReq = 66,
  kPxEraseResp = 67,
  kPxModifyReq = 68,
  kPxModifyResp = 69,
  kPxDeleteFileReq = 70,
  kPxDeleteFileResp = 71,
  kPxListFilesReq = 72,
  kPxListFilesResp = 73,
  // Integrity (PDP/PoR substrate): membership-proof queries.
  kAuditReq = 80,
  kAuditResp = 81,
  // Observability (DESIGN.md §12): wraps any other frame with a
  // client-generated request id for cross-party log/trace correlation.
  // Layout: u16 kTaggedEnvelope | u64 request_id | inner frame (u16 type +
  // payload). Untagged frames are unchanged on the wire, so peers that
  // never tag see byte-identical traffic.
  kTaggedEnvelope = 90,
  // Distributed tracing (DESIGN.md §19): like kTaggedEnvelope but also
  // carries the sender's span context and, on responses, a server-timing
  // trailer. Layout: u16 kTaggedEnvelopeV2 | u64 request_id | u64 span_id
  // | u64 parent_span_id | u8 n_timing | n_timing × (u8 kind | u64 ns) |
  // inner frame. Requests set n_timing = 0; a server response echoes the
  // request id, sets span_id to the request's span_id, and appends one
  // timing entry per cost-ledger bucket (obs::CostKind). Old-tagged and
  // untagged traffic is untouched on the wire.
  kTaggedEnvelopeV2 = 91,

  // Primary–backup WAL replication (DESIGN.md §18). These flow only on the
  // server-to-server replication link; a plain CloudServer rejects them.
  kReplAppend = 100,
  kReplAck = 101,
  kReplSnapshot = 102,
  kReplHeartbeat = 103,
};

/// Frames a payload with its message type (u16 prefix).
Bytes seal_message(MsgType type, BytesView payload);

/// Wraps an already-sealed frame in a kTaggedEnvelope carrying
/// `request_id` (see MsgType::kTaggedEnvelope).
Bytes seal_tagged(std::uint64_t request_id, BytesView inner_frame);

/// One server-timing trailer entry on a kTaggedEnvelopeV2 response.
/// `kind` is a stable wire code (obs::CostKind ordinal), `ns` the
/// attributed nanoseconds.
struct TimingEntry {
  std::uint8_t kind = 0;
  std::uint64_t ns = 0;
};

/// Fully decoded kTaggedEnvelope / kTaggedEnvelopeV2 header. V1 frames
/// decode with zero span ids and no timings.
struct TaggedInfo {
  std::uint64_t request_id = 0;
  std::uint64_t span_id = 0;         // sender's active span (0 = none)
  std::uint64_t parent_span_id = 0;  // its parent (0 = root)
  bool v2 = false;                   // arrived as kTaggedEnvelopeV2
  std::vector<TimingEntry> timings;  // responses only; empty on requests
  BytesView inner;
};

/// Wraps an already-sealed frame in a kTaggedEnvelopeV2 carrying the
/// request id, the sender's span context, and (for responses) a
/// server-timing trailer.
Bytes seal_tagged_v2(std::uint64_t request_id, std::uint64_t span_id,
                     std::uint64_t parent_span_id,
                     const std::vector<TimingEntry>& timings,
                     BytesView inner_frame);

/// Decodes either tagged envelope version; nullopt for untagged frames,
/// truncated headers, or a V2 header whose timing table overruns the
/// frame.
std::optional<TaggedInfo> open_tagged(BytesView framed);

/// If `framed` is a tagged envelope (either version), returns
/// {request_id, inner frame view}; nullopt for untagged or too-short
/// frames.
std::optional<std::pair<std::uint64_t, BytesView>> split_tagged(
    BytesView framed);

/// Peeks the message type of a sealed frame, looking through one tagged
/// envelope; nullopt on frames too short to carry a type.
std::optional<MsgType> peek_type(BytesView framed);

/// Human-readable snake_case name of a message type ("access_req", ...);
/// "unknown" for unassigned values.
const char* msg_type_name(MsgType t);

/// True for read-only request types that are safe to resend after a
/// transport failure (access, audit, fetches, stats, kv reads) even
/// without an idempotency token (DESIGN.md §11).
bool is_idempotent(MsgType t);

/// True for request types that mutate server state (outsource, modify,
/// insert/delete commits, drop, kv writes). These are the RPCs the
/// durability layer WAL-logs and deduplicates (DESIGN.md §13).
bool is_mutating(MsgType t);

/// Retry predicate over a sealed request frame (peeks the u16 type);
/// false on malformed frames. Read-only requests always retry. A mutating
/// request retries only when it is wrapped in a tagged envelope: the
/// request id doubles as an idempotency token — a durable server
/// (cloud::DurableServer) replays the cached response instead of applying
/// the mutation twice, so resending after a timeout, reset, or server
/// crash converges to exactly-once application (DESIGN.md §13). Untagged
/// mutations keep the old never-resend behavior.
bool retryable_request(BytesView framed);

struct Envelope {
  MsgType type;
  Bytes payload;
  /// Present when the frame arrived wrapped in a kTaggedEnvelope;
  /// open_message unwraps the tag transparently.
  std::optional<std::uint64_t> request_id;
};
Result<Envelope> open_message(BytesView framed);

// ---- shared sub-encoders -------------------------------------------------

void encode_path(Writer& w, const core::PathView& p);
Result<core::PathView> decode_path(Reader& r);

void encode_delete_info(Writer& w, const core::DeleteInfo& info);
Result<core::DeleteInfo> decode_delete_info(Reader& r);

void encode_delete_commit(Writer& w, const core::DeleteCommit& c);
Result<core::DeleteCommit> decode_delete_commit(Reader& r);

void encode_delete_many_info(Writer& w, const core::DeleteManyInfo& info);
Result<core::DeleteManyInfo> decode_delete_many_info(Reader& r);

void encode_delete_many_commit(Writer& w, const core::DeleteManyCommit& c);
Result<core::DeleteManyCommit> decode_delete_many_commit(Reader& r);

void encode_insert_info(Writer& w, const core::InsertInfo& info);
Result<core::InsertInfo> decode_insert_info(Reader& r);

void encode_insert_commit(Writer& w, const core::InsertCommit& c);
Result<core::InsertCommit> decode_insert_commit(Reader& r);

void encode_access_info(Writer& w, const core::AccessInfo& info);
Result<core::AccessInfo> decode_access_info(Reader& r);

// ---- messages --------------------------------------------------------------

struct ErrorMsg {
  Errc code = Errc::kIoError;
  std::string message;
  Bytes to_frame() const;
  static Result<ErrorMsg> from(Reader& r);
};

/// Item addressing (paper Section IV-C): by unique record id r, by ordinal
/// position in file order, or by byte offset into the plaintext file (the
/// server scans the items, accumulating their stored plaintext sizes, until
/// the offset falls inside one — footnote 2 of the paper).
enum class RefKind : std::uint8_t {
  kId = 0,
  kOrdinal = 1,
  kByteOffset = 2,
};

struct ItemRef {
  RefKind kind = RefKind::kId;
  std::uint64_t value = 0;

  static ItemRef id(std::uint64_t v) { return ItemRef{RefKind::kId, v}; }
  static ItemRef ordinal(std::uint64_t v) {
    return ItemRef{RefKind::kOrdinal, v};
  }
  static ItemRef byte_offset(std::uint64_t v) {
    return ItemRef{RefKind::kByteOffset, v};
  }
};
void encode_item_ref(Writer& w, const ItemRef& ref);
Result<ItemRef> decode_item_ref(Reader& r);

struct OutsourceReq {
  std::uint64_t file_id = 0;
  Bytes tree_blob;  // serialized ModulationTree (leaf item_slot = item index)
  struct Item {
    std::uint64_t item_id;
    Bytes ciphertext;
    std::uint64_t plain_size;
  };
  std::vector<Item> items;
  Bytes to_frame() const;
  static Result<OutsourceReq> from(Reader& r);
};

struct AccessReq {
  std::uint64_t file_id = 0;
  ItemRef ref;
  Bytes to_frame() const;
  static Result<AccessReq> from(Reader& r);
};

struct AccessResp {
  core::AccessInfo info;
  Bytes to_frame() const;
  static Result<AccessResp> from(Reader& r);
};

struct ModifyReq {
  std::uint64_t file_id = 0;
  std::uint64_t item_id = 0;
  Bytes ciphertext;
  std::uint64_t plain_size = 0;
  Bytes to_frame() const;
  static Result<ModifyReq> from(Reader& r);
};

struct InsertBeginReq {
  std::uint64_t file_id = 0;
  Bytes to_frame() const;
  static Result<InsertBeginReq> from(Reader& r);
};

struct InsertBeginResp {
  core::InsertInfo info;
  Bytes to_frame() const;
  static Result<InsertBeginResp> from(Reader& r);
};

struct InsertCommitReq {
  std::uint64_t file_id = 0;
  core::InsertCommit commit;
  Bytes to_frame() const;
  static Result<InsertCommitReq> from(Reader& r);
};

struct DeleteBeginReq {
  std::uint64_t file_id = 0;
  ItemRef ref;
  Bytes to_frame() const;
  static Result<DeleteBeginReq> from(Reader& r);
};

struct DeleteBeginResp {
  core::DeleteInfo info;
  Bytes to_frame() const;
  static Result<DeleteBeginResp> from(Reader& r);
};

struct DeleteCommitReq {
  std::uint64_t file_id = 0;
  core::DeleteCommit commit;
  Bytes to_frame() const;
  static Result<DeleteCommitReq> from(Reader& r);
};

struct DeleteManyBeginReq {
  std::uint64_t file_id = 0;
  std::vector<ItemRef> refs;  // >= 1, must resolve to distinct items
  Bytes to_frame() const;
  static Result<DeleteManyBeginReq> from(Reader& r);
};

struct DeleteManyBeginResp {
  core::DeleteManyInfo info;
  Bytes to_frame() const;
  static Result<DeleteManyBeginResp> from(Reader& r);
};

struct DeleteManyCommitReq {
  std::uint64_t file_id = 0;
  core::DeleteManyCommit commit;
  Bytes to_frame() const;
  static Result<DeleteManyCommitReq> from(Reader& r);
};

struct FetchTreeReq {
  std::uint64_t file_id = 0;
  Bytes to_frame() const;
  static Result<FetchTreeReq> from(Reader& r);
};

struct FetchTreeResp {
  Bytes tree_blob;
  Bytes to_frame() const;
  static Result<FetchTreeResp> from(Reader& r);
};

struct FetchItemsReq {
  std::uint64_t file_id = 0;
  std::uint64_t start_ordinal = 0;
  std::uint32_t max_count = 0;  // 0 = all
  Bytes to_frame() const;
  static Result<FetchItemsReq> from(Reader& r);
};

struct FetchItemsResp {
  struct Entry {
    std::uint64_t item_id;
    core::NodeId leaf;
    Bytes ciphertext;
  };
  std::vector<Entry> items;
  bool more = false;
  Bytes to_frame() const;
  static Result<FetchItemsResp> from(Reader& r);
};

struct ListItemsReq {
  std::uint64_t file_id = 0;
  Bytes to_frame() const;
  static Result<ListItemsReq> from(Reader& r);
};

struct ListItemsResp {
  std::vector<std::uint64_t> ids;  // file order
  Bytes to_frame() const;
  static Result<ListItemsResp> from(Reader& r);
};

struct DropFileReq {
  std::uint64_t file_id = 0;
  Bytes to_frame() const;
  static Result<DropFileReq> from(Reader& r);
};

struct StatReq {
  std::uint64_t file_id = 0;
  Bytes to_frame() const;
  static Result<StatReq> from(Reader& r);
};

struct StatResp {
  std::uint64_t n_items = 0;
  std::uint64_t node_count = 0;
  std::uint64_t tree_bytes = 0;
  Bytes to_frame() const;
  static Result<StatResp> from(Reader& r);
};

// ---- integrity audits --------------------------------------------------------

struct AuditReq {
  std::uint64_t file_id = 0;
  bool by_leaf = false;  // targets are leaf node ids instead of item ids
  bool include_ciphertext = false;
  std::vector<std::uint64_t> targets;
  Bytes to_frame() const;
  static Result<AuditReq> from(Reader& r);
};

struct AuditResp {
  crypto::Md root;  // the server's claimed root (informational)
  struct Entry {
    std::uint64_t item_id = 0;
    std::uint64_t leaf = 0;
    bool has_ciphertext = false;
    Bytes ciphertext;
    crypto::Md leaf_hash;
    std::vector<crypto::Md> siblings;  // bottom-up membership proof
  };
  std::vector<Entry> entries;
  Bytes to_frame() const;
  static Result<AuditResp> from(Reader& r);
};

// ---- Kv blob table (baseline substrate) -----------------------------------

struct KvPutReq {
  std::uint64_t table = 0;
  std::uint64_t key = 0;
  Bytes value;
  Bytes to_frame() const;
  static Result<KvPutReq> from(Reader& r);
};

struct KvGetReq {
  std::uint64_t table = 0;
  std::uint64_t key = 0;
  Bytes to_frame() const;
  static Result<KvGetReq> from(Reader& r);
};

struct KvGetResp {
  bool found = false;
  Bytes value;
  Bytes to_frame() const;
  static Result<KvGetResp> from(Reader& r);
};

struct KvDeleteReq {
  std::uint64_t table = 0;
  std::uint64_t key = 0;
  Bytes to_frame() const;
  static Result<KvDeleteReq> from(Reader& r);
};

struct KvGetRangeReq {
  std::uint64_t table = 0;
  std::uint64_t start_key = 0;
  std::uint32_t max_count = 0;
  Bytes to_frame() const;
  static Result<KvGetRangeReq> from(Reader& r);
};

struct KvGetRangeResp {
  struct Entry {
    std::uint64_t key;
    Bytes value;
  };
  std::vector<Entry> entries;
  bool more = false;
  Bytes to_frame() const;
  static Result<KvGetRangeResp> from(Reader& r);
};

struct KvPutBatchReq {
  std::uint64_t table = 0;
  std::vector<KvGetRangeResp::Entry> entries;
  Bytes to_frame() const;
  static Result<KvPutBatchReq> from(Reader& r);
};

// ---- primary–backup replication (DESIGN.md §18) ---------------------------
//
// The primary streams its WAL to the follower as ReplAppend batches; every
// replication request is answered by a ReplAck (or an ErrorMsg carrying
// kStaleTerm when fencing rejects the sender). ReplSnapshot ships a full
// checkpoint image when the follower is too far behind for log shipping.

/// One WAL record: the LSN the primary assigned plus the original client
/// request frame (tagged envelope included, so the follower's RidDedup
/// table stays byte-identical to the primary's).
struct ReplRecord {
  std::uint64_t lsn = 0;
  Bytes request;
};

struct ReplAppend {
  std::uint64_t term = 0;      // sender's fencing term
  std::uint64_t prev_lsn = 0;  // lsn immediately before records[0]
  std::vector<ReplRecord> records;
  Bytes to_frame() const;
  static Result<ReplAppend> from(Reader& r);
};

struct ReplAck {
  /// Follower asks for a full checkpoint ship when log records alone
  /// cannot bridge the gap between its last LSN and the primary's stream.
  enum class Code : std::uint8_t { kOk = 0, kNeedSnapshot = 1 };
  std::uint64_t term = 0;      // receiver's fencing term
  std::uint64_t last_lsn = 0;  // receiver's highest durable lsn
  Code code = Code::kOk;
  Bytes to_frame() const;
  static Result<ReplAck> from(Reader& r);
};

struct ReplSnapshot {
  std::uint64_t term = 0;
  std::uint64_t last_lsn = 0;  // lsn the image is consistent through
  Bytes image;                 // CloudServer::save bytes
  Bytes dedup;                 // RidDedup::serialize bytes
  Bytes to_frame() const;
  static Result<ReplSnapshot> from(Reader& r);
};

struct ReplHeartbeat {
  std::uint64_t term = 0;
  std::uint64_t last_lsn = 0;  // sender's highest assigned lsn
  Bytes to_frame() const;
  static Result<ReplHeartbeat> from(Reader& r);
};

/// Empty-payload response frame for the given type.
Bytes empty_frame(MsgType type);

}  // namespace fgad::proto
