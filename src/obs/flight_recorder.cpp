#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace fgad::obs {

namespace {

// ---- async-signal-safe formatting ------------------------------------------
//
// The crash path cannot use stdio or allocate, so dump lines are built
// with these helpers into stack buffers and written with write(2).

std::size_t fmt_str(char* out, std::size_t cap, const char* s) {
  std::size_t n = 0;
  while (s[n] != '\0' && n + 1 < cap) {
    out[n] = s[n];
    ++n;
  }
  out[n] = '\0';
  return n;
}

std::size_t fmt_u64_dec(char* out, std::size_t cap, std::uint64_t v) {
  char tmp[24];
  std::size_t len = 0;
  do {
    tmp[len++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  std::size_t n = 0;
  while (len > 0 && n + 1 < cap) {
    out[n++] = tmp[--len];
  }
  out[n] = '\0';
  return n;
}

std::size_t fmt_u64_hex16(char* out, std::size_t cap, std::uint64_t v) {
  static const char kHex[] = "0123456789abcdef";
  std::size_t n = 0;
  for (int shift = 60; shift >= 0 && n + 1 < cap; shift -= 4) {
    out[n++] = kHex[(v >> shift) & 0xf];
  }
  out[n] = '\0';
  return n;
}

/// Appends into a bounded line buffer; silently truncates when full.
struct LineBuf {
  char buf[320];
  std::size_t len = 0;

  void str(const char* s) { len += fmt_str(buf + len, sizeof(buf) - len, s); }
  void dec(std::uint64_t v) {
    len += fmt_u64_dec(buf + len, sizeof(buf) - len, v);
  }
  void hex(std::uint64_t v) {
    len += fmt_u64_hex16(buf + len, sizeof(buf) - len, v);
  }
  void write_to(int fd) {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) {
          continue;
        }
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }
};

std::uint64_t wall_clock_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

const char* fr_event_name(FrEvent e) {
  switch (e) {
    case FrEvent::kRpcStart:
      return "rpc-start";
    case FrEvent::kRpcEnd:
      return "rpc-end";
    case FrEvent::kWalAppend:
      return "wal-append";
    case FrEvent::kWalFsync:
      return "wal-fsync";
    case FrEvent::kCheckpointBegin:
      return "checkpoint-begin";
    case FrEvent::kCheckpointCommit:
      return "checkpoint-commit";
    case FrEvent::kRecoveryBegin:
      return "recovery-begin";
    case FrEvent::kRecoveryEnd:
      return "recovery-end";
    case FrEvent::kRetryDial:
      return "retry-dial";
    case FrEvent::kRetryResend:
      return "retry-resend";
    case FrEvent::kRetryExhausted:
      return "retry-exhausted";
    case FrEvent::kFaultInjected:
      return "fault-injected";
    case FrEvent::kCrashPoint:
      return "crash-point";
    case FrEvent::kFsckFail:
      return "fsck-fail";
    case FrEvent::kDedupHit:
      return "dedup-hit";
    case FrEvent::kMark:
      return "mark";
    case FrEvent::kGroupCommitFlush:
      return "group-commit";
    case FrEvent::kSloBreach:
      return "slo-breach";
    case FrEvent::kReplShip:
      return "repl-ship";
    case FrEvent::kReplSnapshotShip:
      return "repl-snapshot";
    case FrEvent::kReplRoleChange:
      return "repl-role-change";
    case FrEvent::kSpanDropped:
      return "span-dropped";
  }
  return "unknown";
}

// ---- ring storage ----------------------------------------------------------

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder fr;
  return fr;
}

namespace {

/// Retired rings stay reachable until process exit so a writer that
/// raced a configure() never touches freed memory (and LeakSanitizer
/// sees them as live).
std::mutex& retired_mu() {
  static std::mutex mu;
  return mu;
}

}  // namespace

FlightRecorder::FlightRecorder() { configure(kDefaultCapacity); }

void FlightRecorder::configure(std::size_t capacity) {
  std::size_t cap = 8;
  while (cap < capacity && cap < (std::size_t{1} << 28)) {
    cap <<= 1;
  }
  auto* ring = new Ring(cap);
  // Every ring ever allocated stays reachable here until process exit so
  // a writer that raced this configure() never touches freed memory
  // (and LeakSanitizer sees them as live).
  static std::vector<Ring*>* rings = new std::vector<Ring*>();
  {
    std::lock_guard<std::mutex> lock(retired_mu());
    rings->push_back(ring);
  }
  ring_.store(ring, std::memory_order_release);
  next_.store(0, std::memory_order_release);
}

Status FlightRecorder::set_dump_dir(const std::string& dir) {
  if (dir.size() >= kMaxDumpDir) {
    return Status(Errc::kInvalidArgument, "flight recorder dir too long");
  }
  dump_dir_len_.store(0, std::memory_order_release);
  for (std::size_t i = 0; i < dir.size(); ++i) {
    dump_dir_[i] = dir[i];
  }
  dump_dir_[dir.size()] = '\0';
  dump_dir_len_.store(dir.size(), std::memory_order_release);
  return Status::ok();
}

void FlightRecorder::record(FrEvent type, std::uint64_t rid, std::uint64_t a,
                            std::uint64_t b) {
  if (!enabled()) {
    return;
  }
  Ring* ring = ring_.load(std::memory_order_acquire);
  if (ring == nullptr) {
    return;
  }
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = ring->slots[seq & ring->mask];
  s.pub.store(0, std::memory_order_relaxed);  // invalidate during rewrite
  s.ts_ns.store(now_ns(), std::memory_order_relaxed);
  s.rid.store(rid, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.type.store(static_cast<std::uint16_t>(type), std::memory_order_relaxed);
  s.pub.store(seq + 1, std::memory_order_release);
}

std::size_t FlightRecorder::capacity() const {
  Ring* ring = ring_.load(std::memory_order_acquire);
  return ring == nullptr ? 0 : ring->mask + 1;
}

std::uint64_t FlightRecorder::recorded() const {
  return next_.load(std::memory_order_acquire);
}

std::uint64_t FlightRecorder::dropped() const {
  const std::uint64_t n = recorded();
  const std::uint64_t cap = capacity();
  return n > cap ? n - cap : 0;
}

std::vector<FlightRecorder::Event> FlightRecorder::snapshot() const {
  std::vector<Event> out;
  Ring* ring = ring_.load(std::memory_order_acquire);
  if (ring == nullptr) {
    return out;
  }
  const std::uint64_t n = next_.load(std::memory_order_acquire);
  const std::uint64_t cap = ring->mask + 1;
  const std::uint64_t start = n > cap ? n - cap : 0;
  out.reserve(static_cast<std::size_t>(n - start));
  for (std::uint64_t seq = start; seq < n; ++seq) {
    const Slot& s = ring->slots[seq & ring->mask];
    if (s.pub.load(std::memory_order_acquire) != seq + 1) {
      continue;  // torn by a racing writer (or overwritten mid-scan)
    }
    Event e;
    e.seq = seq;
    e.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
    e.rid = s.rid.load(std::memory_order_relaxed);
    e.a = s.a.load(std::memory_order_relaxed);
    e.b = s.b.load(std::memory_order_relaxed);
    e.type = static_cast<FrEvent>(s.type.load(std::memory_order_relaxed));
    out.push_back(e);
  }
  return out;
}

void FlightRecorder::dump_fd(int fd, const char* reason) const {
  Ring* ring = ring_.load(std::memory_order_acquire);
  const std::uint64_t n = next_.load(std::memory_order_acquire);
  const std::uint64_t cap = ring == nullptr ? 0 : ring->mask + 1;
  const std::uint64_t start = n > cap ? n - cap : 0;
  {
    LineBuf h;
    h.str("# fgad-flight-recorder v1 reason=");
    h.str(reason);
    h.str(" pid=");
    h.dec(static_cast<std::uint64_t>(::getpid()));
    h.str(" recorded=");
    h.dec(n);
    h.str(" dropped=");
    h.dec(n > cap ? n - cap : 0);
    h.str(" capacity=");
    h.dec(cap);
    h.str("\n");
    h.write_to(fd);
  }
  if (ring == nullptr) {
    return;
  }
  for (std::uint64_t seq = start; seq < n; ++seq) {
    const Slot& s = ring->slots[seq & ring->mask];
    if (s.pub.load(std::memory_order_acquire) != seq + 1) {
      continue;
    }
    LineBuf l;
    l.str("seq=");
    l.dec(seq);
    l.str(" ts_ns=");
    l.dec(s.ts_ns.load(std::memory_order_relaxed));
    l.str(" type=");
    l.str(fr_event_name(
        static_cast<FrEvent>(s.type.load(std::memory_order_relaxed))));
    l.str(" rid=");
    l.hex(s.rid.load(std::memory_order_relaxed));
    l.str(" a=");
    l.dec(s.a.load(std::memory_order_relaxed));
    l.str(" b=");
    l.dec(s.b.load(std::memory_order_relaxed));
    l.str("\n");
    l.write_to(fd);
  }
}

bool FlightRecorder::dump_to_path(const char* path, const char* reason) const {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return false;
  }
  dump_fd(fd, reason);
  ::close(fd);
  return true;
}

bool FlightRecorder::dump_auto(const char* reason, char* path_out,
                               std::size_t path_cap) const {
  const std::size_t dir_len = dump_dir_len_.load(std::memory_order_acquire);
  if (dir_len == 0) {
    return false;
  }
  char path[kMaxDumpDir + 128];
  std::size_t n = 0;
  for (std::size_t i = 0; i < dir_len; ++i) {
    path[n++] = dump_dir_[i];
  }
  n += fmt_str(path + n, sizeof(path) - n, "/flightrecorder-");
  n += fmt_str(path + n, sizeof(path) - n, reason);
  n += fmt_str(path + n, sizeof(path) - n, "-");
  n += fmt_u64_dec(path + n, sizeof(path) - n,
                   static_cast<std::uint64_t>(::getpid()));
  n += fmt_str(path + n, sizeof(path) - n, "-");
  n += fmt_u64_dec(path + n, sizeof(path) - n, wall_clock_ns());
  n += fmt_str(path + n, sizeof(path) - n, ".dump");
  if (!dump_to_path(path, reason)) {
    return false;
  }
  if (path_out != nullptr && path_cap > 0) {
    fmt_str(path_out, path_cap, path);
  }
  return true;
}

std::string FlightRecorder::render_json() const {
  const std::vector<Event> events = snapshot();
  std::string out = "{\"capacity\":" + std::to_string(capacity()) +
                    ",\"recorded\":" + std::to_string(recorded()) +
                    ",\"dropped\":" + std::to_string(dropped()) +
                    ",\"events\":[";
  bool first = true;
  char hex[20];
  for (const Event& e : events) {
    if (!first) {
      out += ",";
    }
    first = false;
    fmt_u64_hex16(hex, sizeof(hex), e.rid);
    out += "{\"seq\":" + std::to_string(e.seq) +
           ",\"ts_ns\":" + std::to_string(e.ts_ns) + ",\"type\":\"" +
           fr_event_name(e.type) + "\",\"rid\":\"" + hex +
           "\",\"a\":" + std::to_string(e.a) +
           ",\"b\":" + std::to_string(e.b) + "}";
  }
  out += "]}";
  return out;
}

void FlightRecorder::publish_metrics() const {
  Registry& reg = Registry::instance();
  reg.gauge("fgad_flight_recorder_capacity")
      .set(static_cast<std::int64_t>(capacity()));
  reg.gauge("fgad_flight_recorder_recorded")
      .set(static_cast<std::int64_t>(recorded()));
  reg.gauge("fgad_flight_recorder_dropped")
      .set(static_cast<std::int64_t>(dropped()));
}

// ---- crash / on-demand dump signal handlers --------------------------------

namespace {

void log_dump_line(const char* prefix, const char* path) {
  LineBuf l;
  l.str(prefix);
  l.str(path);
  l.str("\n");
  l.write_to(2);
}

void crash_signal_handler(int sig) {
  const char* reason = sig == SIGSEGV  ? "sigsegv"
                       : sig == SIGBUS ? "sigbus"
                       : sig == SIGABRT ? "sigabrt"
                                        : "signal";
  char path[FlightRecorder::kMaxDumpDir + 128];
  if (FlightRecorder::instance().dump_auto(reason, path, sizeof(path))) {
    log_dump_line("flight recorder dump: ", path);
  }
  // Hand the signal back to the default action so the crash still
  // produces a core / the expected termination status.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void sigusr2_handler(int) {
  char path[FlightRecorder::kMaxDumpDir + 128];
  if (FlightRecorder::instance().dump_auto("sigusr2", path, sizeof(path))) {
    log_dump_line("flight recorder dump: ", path);
  }
}

}  // namespace

void FlightRecorder::install_crash_handlers() {
  static std::atomic<bool> installed{false};
  if (installed.exchange(true)) {
    return;
  }
  instance();  // force singleton construction outside any signal context
  struct sigaction sa {};
  sa.sa_handler = crash_signal_handler;
  sa.sa_flags = SA_NODEFER;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
  struct sigaction su {};
  su.sa_handler = sigusr2_handler;
  su.sa_flags = SA_RESTART;
  sigemptyset(&su.sa_mask);
  ::sigaction(SIGUSR2, &su, nullptr);
}

}  // namespace fgad::obs
