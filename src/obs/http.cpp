#include "obs/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/slo.h"
#include "obs/stitch.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace fgad::obs {

namespace {

/// Blocking-with-timeout read of one byte chunk; false on error/timeout.
bool read_some(int fd, std::string& buf, int timeout_ms) {
  pollfd p{fd, POLLIN, 0};
  const int rc = ::poll(&p, 1, timeout_ms);
  if (rc <= 0) {
    return false;
  }
  char tmp[2048];
  const ssize_t r = ::recv(fd, tmp, sizeof(tmp), 0);
  if (r <= 0) {
    return false;
  }
  buf.append(tmp, static_cast<std::size_t>(r));
  return true;
}

bool write_all(int fd, const std::string& data, int timeout_ms) {
  std::size_t off = 0;
  while (off < data.size()) {
    pollfd p{fd, POLLOUT, 0};
    if (::poll(&p, 1, timeout_ms) <= 0) {
      return false;
    }
    const ssize_t w =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (w <= 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

std::string http_response(int code, const char* status,
                          const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + status +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// Value of `key=` in a query string ("" when absent).
std::string query_param(const std::string& query, const char* key) {
  const std::string prefix = std::string(key) + "=";
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t end = query.find('&', pos);
    if (end == std::string::npos) {
      end = query.size();
    }
    if (query.compare(pos, prefix.size(), prefix) == 0) {
      return query.substr(pos + prefix.size(), end - pos - prefix.size());
    }
    pos = end + 1;
  }
  return "";
}

/// One-shot HTTP GET against a peer metrics endpoint; "" on any error.
/// Used by the stitched-trace path to fetch the follower's /clock and
/// /trace.json — plain blocking sockets with a short budget so a dead
/// peer degrades the response to local-only instead of hanging it.
std::string peer_http_get(const std::string& host, std::uint16_t port,
                          const std::string& path, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return "";
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  if (!write_all(fd, req, timeout_ms)) {
    ::close(fd);
    return "";
  }
  std::string resp;
  while (read_some(fd, resp, timeout_ms)) {
    if (resp.size() > 16 * 1024 * 1024) {
      break;  // runaway peer
    }
  }
  ::close(fd);
  if (resp.find("HTTP/1.1 200") != 0) {
    return "";
  }
  const std::size_t body = resp.find("\r\n\r\n");
  return body == std::string::npos ? "" : resp.substr(body + 4);
}

/// Estimates (peer_clock - local_clock) from a few /clock round trips;
/// invalid when the peer is unreachable.
OffsetEstimate sample_peer_offset(const std::string& host,
                                  std::uint16_t port, int timeout_ms) {
  std::vector<ClockSample> samples;
  for (int i = 0; i < 5; ++i) {
    ClockSample s;
    s.local_send_ns = now_ns();
    const std::string body = peer_http_get(host, port, "/clock", timeout_ms);
    s.local_recv_ns = now_ns();
    const std::size_t pos = body.find("\"now_ns\":");
    if (pos == std::string::npos) {
      continue;
    }
    s.peer_ns = std::strtoull(body.c_str() + pos + 9, nullptr, 10);
    samples.push_back(s);
  }
  return best_offset(samples);
}

/// "60", "60s", "5m", "1h" -> seconds; fallback on empty/garbage.
std::uint64_t parse_window_s(const std::string& v, std::uint64_t fallback) {
  if (v.empty()) {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || n == 0) {
    return fallback;
  }
  std::uint64_t mult = 1;
  if (*end == 'm') {
    mult = 60;
  } else if (*end == 'h') {
    mult = 3600;
  }
  return static_cast<std::uint64_t>(n) * mult;
}

}  // namespace

Result<std::unique_ptr<MetricsHttpServer>> MetricsHttpServer::create(
    std::uint16_t port, Options opts) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Error(Errc::kIoError, "metrics http: socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return Error(Errc::kIoError, "metrics http: bind/listen failed: " + why);
  }
  socklen_t len = sizeof(addr);
  std::uint16_t bound = port;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    bound = ntohs(addr.sin_port);
  }
  return std::unique_ptr<MetricsHttpServer>(
      new MetricsHttpServer(fd, bound, opts));
}

MetricsHttpServer::MetricsHttpServer(int listen_fd, std::uint16_t port,
                                     Options opts)
    : listen_fd_(listen_fd), port_(port), opts_(opts) {
  thread_ = std::thread([this] { serve_loop(); });
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::set_stitch_peer(const std::string& host,
                                        std::uint16_t port) {
  std::lock_guard<std::mutex> lock(stitch_mu_);
  stitch_host_ = host;
  stitch_port_ = port;
}

void MetricsHttpServer::stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::serve_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && !stopping_.load()) {
        continue;
      }
      return;  // listener shut down
    }
    serve_one(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::serve_one(int fd) {
  static Counter& requests =
      Registry::instance().counter("fgad_metrics_http_requests_total");
  // Read until the end of the request head; bodies are ignored (GET only).
  std::string req;
  while (req.find("\r\n\r\n") == std::string::npos) {
    if (req.size() > 8192 || !read_some(fd, req, opts_.io_timeout_ms)) {
      return;
    }
  }
  requests.inc();
  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t m_end = req.find(' ');
  const std::size_t p_end =
      m_end == std::string::npos ? std::string::npos : req.find(' ', m_end + 1);
  if (m_end == std::string::npos || p_end == std::string::npos) {
    write_all(fd, http_response(400, "Bad Request", "text/plain", "bad\n"),
              opts_.io_timeout_ms);
    return;
  }
  const std::string method = req.substr(0, m_end);
  std::string path = req.substr(m_end + 1, p_end - m_end - 1);
  std::string query;
  if (const std::size_t q = path.find('?'); q != std::string::npos) {
    query = path.substr(q + 1);
    path.resize(q);
  }
  if (method != "GET") {
    write_all(fd,
              http_response(405, "Method Not Allowed", "text/plain",
                            "GET only\n"),
              opts_.io_timeout_ms);
    return;
  }
  std::string resp;
  if (path == "/metrics") {
    FlightRecorder::instance().publish_metrics();
    resp = http_response(200, "OK", "text/plain; version=0.0.4",
                         Registry::instance().render_text());
  } else if (path == "/metrics.json") {
    FlightRecorder::instance().publish_metrics();
    resp = http_response(200, "OK", "application/json",
                         Registry::instance().render_json());
  } else if (path == "/flightrecorder.json") {
    resp = http_response(200, "OK", "application/json",
                         FlightRecorder::instance().render_json());
  } else if (path == "/traces.json") {
    std::string body = "{\"rids\":[";
    bool first = true;
    for (std::uint64_t rid : TraceStore::instance().rids()) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%s\"%016" PRIx64 "\"",
                    first ? "" : ",", rid);
      body += buf;
      first = false;
    }
    body += "]}";
    resp = http_response(200, "OK", "application/json", body);
  } else if (path == "/clock") {
    // Steady-clock probe for NTP-style peer offset estimation
    // (obs/stitch.h). Kept tiny so the RTT — the estimate's error bound
    // — is dominated by the network, not rendering.
    char buf[48];
    std::snprintf(buf, sizeof(buf), "{\"now_ns\":%llu}",
                  static_cast<unsigned long long>(now_ns()));
    resp = http_response(200, "OK", "application/json", buf);
  } else if (path == "/trace.json") {
    // /trace.json?rid=<16-hex-digit id from /traces.json or a CLI trace>
    // With a stitch peer configured, the peer's segment for the same rid
    // is fetched (&local=1 stops it from stitching in turn) and merged
    // skew-corrected into the local document, one pid lane per process.
    std::uint64_t rid = 0;
    const std::string rid_hex = query_param(query, "rid");
    if (!rid_hex.empty()) {
      rid = std::strtoull(rid_hex.c_str(), nullptr, 16);
    }
    std::string body = TraceStore::instance().get(rid);
    std::string peer_host;
    std::uint16_t peer_port = 0;
    {
      std::lock_guard<std::mutex> lock(stitch_mu_);
      peer_host = stitch_host_;
      peer_port = stitch_port_;
    }
    if (!body.empty() && peer_port != 0 &&
        query_param(query, "local").empty()) {
      const OffsetEstimate off =
          sample_peer_offset(peer_host, peer_port, opts_.io_timeout_ms);
      const std::string peer_doc = peer_http_get(
          peer_host, peer_port, "/trace.json?rid=" + rid_hex + "&local=1",
          opts_.io_timeout_ms);
      if (off.valid && !peer_doc.empty()) {
        body = trace_stitch(body, peer_doc, off.offset_ns, /*pid_delta=*/1);
      }
    }
    resp = body.empty()
               ? http_response(404, "Not Found", "text/plain",
                               "no trace for that rid\n")
               : http_response(200, "OK", "application/json", body);
  } else if (path == "/vars.json") {
    // Windowed view of every instrument plus the SLO tracker's burn
    // rates, spliced into one document: {...,"slo":{...}}.
    const std::uint64_t window_s =
        parse_window_s(query_param(query, "window"), 60);
    std::string body = WindowedRegistry::instance().render_vars_json(window_s);
    if (!body.empty() && body.back() == '}') {
      body.pop_back();
      body += ",\"slo\":" + SloTracker::instance().render_json() + "}";
    }
    resp = http_response(200, "OK", "application/json", body);
  } else if (path == "/healthz") {
    // Pure liveness: the process is up and the serve loop is turning.
    resp = http_response(200, "OK", "text/plain", "ok\n");
  } else if (path == "/readyz") {
    // Readiness: 503 with reasons while recovery replay, a shutdown
    // checkpoint, or sustained SLO overload blocks serving.
    Readiness& r = Readiness::instance();
    std::string body = r.render_json();
    // Replicated nodes splice in role/term/lag so an operator (or the
    // failover smoke harness) can tell primary from backup with one
    // probe. Keyed on the gauge's *existence* — a non-replicated server
    // never registers it and keeps the plain document.
    const Gauge* role = nullptr;
    const Gauge* term = nullptr;
    const Gauge* lag_bytes = nullptr;
    const Gauge* lag_records = nullptr;
    for (const auto& [name, g] : Registry::instance().all_gauges()) {
      if (name == "fgad_repl_role") role = g;
      else if (name == "fgad_repl_term") term = g;
      else if (name == "fgad_repl_lag_bytes") lag_bytes = g;
      else if (name == "fgad_repl_lag_records") lag_records = g;
    }
    if (role != nullptr && !body.empty() && body.back() == '}') {
      body.pop_back();
      body += std::string(",\"repl\":{\"role\":\"") +
              (role->value() != 0 ? "primary" : "backup") +
              "\",\"term\":" + std::to_string(term ? term->value() : 0) +
              ",\"lag_bytes\":" +
              std::to_string(lag_bytes ? lag_bytes->value() : 0) +
              ",\"lag_records\":" +
              std::to_string(lag_records ? lag_records->value() : 0) + "}}";
    }
    resp = r.ready()
               ? http_response(200, "OK", "application/json", body)
               : http_response(503, "Service Unavailable", "application/json",
                               body);
  } else if (path == "/profile") {
    // Blocking capture: this server handles one connection at a time,
    // so a capture parks the scrape endpoint for `seconds`. Cap it.
    double seconds = 1.0;
    const std::string v = query_param(query, "seconds");
    if (!v.empty()) {
      seconds = std::strtod(v.c_str(), nullptr);
    }
    if (seconds <= 0) {
      seconds = 1.0;
    }
    if (seconds > 30) {
      seconds = 30;
    }
    Profiler::Options popts;
    popts.wall = query_param(query, "mode") == "wall";
    const std::string body = Profiler::capture_folded(seconds, popts);
    resp = body.compare(0, 8, "# error:") == 0
               ? http_response(503, "Service Unavailable", "text/plain", body)
               : http_response(200, "OK", "text/plain", body);
  } else {
    resp = http_response(404, "Not Found", "text/plain", "not found\n");
  }
  write_all(fd, resp, opts_.io_timeout_ms);
}

}  // namespace fgad::obs
