#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <vector>

#include "common/fsio.h"
#include "obs/metrics.h"

namespace fgad::obs {

namespace {

struct SpanRecord {
  const char* name;
  std::uint32_t depth;
  std::uint64_t start_ns;  // relative to trace start
  std::uint64_t dur_ns;
};

struct TraceState {
  std::uint64_t rid = 0;
  bool collecting = false;
  std::uint32_t depth = 0;
  std::uint64_t t0_ns = 0;
  std::vector<SpanRecord> spans;
};

TraceState& state() {
  thread_local TraceState s;
  return s;
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t current_request_id() { return state().rid; }

std::uint64_t generate_request_id() {
  static std::atomic<std::uint64_t> seq{0};
  std::uint64_t x = now_ns() ^ (seq.fetch_add(1, std::memory_order_relaxed)
                                << 32);
  std::uint64_t id = splitmix64(x);
  return id == 0 ? 1 : id;  // 0 means "no request id"
}

RequestScope::RequestScope(std::uint64_t rid) : prev_(state().rid) {
  state().rid = rid;
}

RequestScope::~RequestScope() { state().rid = prev_; }

void trace_begin(std::uint64_t rid) {
  TraceState& s = state();
  s.rid = rid;
  s.collecting = true;
  s.depth = 0;
  s.t0_ns = now_ns();
  s.spans.clear();
}

bool trace_active() { return state().collecting; }

void trace_dump(std::FILE* out) {
  TraceState& s = state();
  if (!s.collecting) {
    return;
  }
  const std::uint64_t total_ns = now_ns() - s.t0_ns;
  std::fprintf(out, "trace rid=%016llx spans=%zu total=%.3fms\n",
               static_cast<unsigned long long>(s.rid), s.spans.size(),
               static_cast<double>(total_ns) / 1e6);
  for (const SpanRecord& r : s.spans) {
    std::fprintf(out, "  %*s%-*s +%9.3fms %9.3fms\n",
                 static_cast<int>(2 * r.depth), "",
                 static_cast<int>(36 - 2 * (r.depth > 18 ? 18 : r.depth)),
                 r.name, static_cast<double>(r.start_ns) / 1e6,
                 static_cast<double>(r.dur_ns) / 1e6);
  }
  s.collecting = false;
  s.depth = 0;
  s.rid = 0;
  s.spans.clear();
  s.spans.shrink_to_fit();
}

namespace {

/// One "X" (complete) trace event. ts/dur are microseconds as doubles —
/// the resolution Chrome's trace-event format expects.
void append_chrome_event(std::string& out, std::uint64_t rid,
                         const char* name, std::uint32_t depth,
                         std::uint64_t start_ns, std::uint64_t dur_ns,
                         bool first) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                "\"dur\":%.3f,\"pid\":1,\"tid\":1,"
                "\"args\":{\"rid\":\"%016" PRIx64 "\",\"depth\":%u}}",
                first ? "" : ",", name,
                static_cast<double>(start_ns) / 1e3,
                static_cast<double>(dur_ns) / 1e3, rid, depth);
  out += buf;
}

}  // namespace

std::string trace_render_chrome_json() {
  TraceState& s = state();
  if (!s.collecting) {
    return "";
  }
  const std::uint64_t now = now_ns() - s.t0_ns;
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& r : s.spans) {
    // A span still open when we render (dur recorded as 0 but started
    // earlier) keeps dur 0 — Perfetto shows it as instantaneous, which is
    // honest about what we measured.
    append_chrome_event(out, s.rid, r.name, r.depth, r.start_ns, r.dur_ns,
                        first);
    first = false;
  }
  // A synthetic root spanning the whole trace so the viewer shows total
  // wall time even when the first span started late.
  append_chrome_event(out, s.rid, "trace", 0, 0, now, first);
  out += "]}";
  return out;
}

Status trace_export_json(const std::string& path) {
  TraceState& s = state();
  if (!s.collecting) {
    return Status(Errc::kInvalidArgument, "trace export: no active trace");
  }
  const std::string json = trace_render_chrome_json();
  trace_stop();
  return fsio::atomic_write_file(
      path, BytesView(reinterpret_cast<const std::uint8_t*>(json.data()),
                      json.size()));
}

void trace_stop() {
  TraceState& s = state();
  if (!s.collecting) {
    return;
  }
  s.collecting = false;
  s.depth = 0;
  s.rid = 0;
  s.spans.clear();
  s.spans.shrink_to_fit();
}

// ---- TraceStore ------------------------------------------------------------

TraceStore& TraceStore::instance() {
  static TraceStore ts;
  return ts;
}

void TraceStore::set_capacity(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = n;
  while (order_.size() > capacity_) {
    by_rid_.erase(order_.front());
    order_.pop_front();
  }
}

bool TraceStore::capture_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_ > 0;
}

void TraceStore::put(std::uint64_t rid, std::string trace_json) {
  if (rid == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) {
    return;
  }
  const auto it = by_rid_.find(rid);
  if (it != by_rid_.end()) {
    it->second = std::move(trace_json);  // refresh; order unchanged
    return;
  }
  while (order_.size() >= capacity_) {
    by_rid_.erase(order_.front());
    order_.pop_front();
  }
  order_.push_back(rid);
  by_rid_.emplace(rid, std::move(trace_json));
}

std::string TraceStore::get(std::uint64_t rid) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_rid_.find(rid);
  return it == by_rid_.end() ? std::string() : it->second;
}

std::vector<std::uint64_t> TraceStore::rids() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::uint64_t>(order_.begin(), order_.end());
}

Span::Span(const char* name) : index_(kInactive) {
  TraceState& s = state();
  if (!s.collecting) {
    return;
  }
  index_ = s.spans.size();
  s.spans.push_back(SpanRecord{name, s.depth, now_ns() - s.t0_ns, 0});
  ++s.depth;
}

Span::~Span() {
  if (index_ == kInactive) {
    return;
  }
  TraceState& s = state();
  if (index_ < s.spans.size()) {
    SpanRecord& r = s.spans[index_];
    r.dur_ns = now_ns() - s.t0_ns - r.start_ns;
  }
  if (s.depth > 0) {
    --s.depth;
  }
}

}  // namespace fgad::obs
