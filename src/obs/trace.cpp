#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <vector>

#include "obs/metrics.h"

namespace fgad::obs {

namespace {

struct SpanRecord {
  const char* name;
  std::uint32_t depth;
  std::uint64_t start_ns;  // relative to trace start
  std::uint64_t dur_ns;
};

struct TraceState {
  std::uint64_t rid = 0;
  bool collecting = false;
  std::uint32_t depth = 0;
  std::uint64_t t0_ns = 0;
  std::vector<SpanRecord> spans;
};

TraceState& state() {
  thread_local TraceState s;
  return s;
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t current_request_id() { return state().rid; }

std::uint64_t generate_request_id() {
  static std::atomic<std::uint64_t> seq{0};
  std::uint64_t x = now_ns() ^ (seq.fetch_add(1, std::memory_order_relaxed)
                                << 32);
  std::uint64_t id = splitmix64(x);
  return id == 0 ? 1 : id;  // 0 means "no request id"
}

RequestScope::RequestScope(std::uint64_t rid) : prev_(state().rid) {
  state().rid = rid;
}

RequestScope::~RequestScope() { state().rid = prev_; }

void trace_begin(std::uint64_t rid) {
  TraceState& s = state();
  s.rid = rid;
  s.collecting = true;
  s.depth = 0;
  s.t0_ns = now_ns();
  s.spans.clear();
}

bool trace_active() { return state().collecting; }

void trace_dump(std::FILE* out) {
  TraceState& s = state();
  if (!s.collecting) {
    return;
  }
  const std::uint64_t total_ns = now_ns() - s.t0_ns;
  std::fprintf(out, "trace rid=%016llx spans=%zu total=%.3fms\n",
               static_cast<unsigned long long>(s.rid), s.spans.size(),
               static_cast<double>(total_ns) / 1e6);
  for (const SpanRecord& r : s.spans) {
    std::fprintf(out, "  %*s%-*s +%9.3fms %9.3fms\n",
                 static_cast<int>(2 * r.depth), "",
                 static_cast<int>(36 - 2 * (r.depth > 18 ? 18 : r.depth)),
                 r.name, static_cast<double>(r.start_ns) / 1e6,
                 static_cast<double>(r.dur_ns) / 1e6);
  }
  s.collecting = false;
  s.depth = 0;
  s.rid = 0;
  s.spans.clear();
  s.spans.shrink_to_fit();
}

Span::Span(const char* name) : index_(kInactive) {
  TraceState& s = state();
  if (!s.collecting) {
    return;
  }
  index_ = s.spans.size();
  s.spans.push_back(SpanRecord{name, s.depth, now_ns() - s.t0_ns, 0});
  ++s.depth;
}

Span::~Span() {
  if (index_ == kInactive) {
    return;
  }
  TraceState& s = state();
  if (index_ < s.spans.size()) {
    SpanRecord& r = s.spans[index_];
    r.dur_ns = now_ns() - s.t0_ns - r.start_ns;
  }
  if (s.depth > 0) {
    --s.depth;
  }
}

}  // namespace fgad::obs
