#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <vector>

#include "common/fsio.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/stitch.h"

namespace fgad::obs {

namespace {

// Span times are raw now_ticks() deltas (converted to ns only at render
// time via ticks_to_ns) so the per-span cost is two cheap counter reads,
// not two vDSO clock_gettime calls — see obs::now_ticks().
struct SpanRecord {
  const char* name;
  std::uint32_t depth;
  std::uint64_t start_ticks;  // relative to trace start
  std::uint64_t dur_ticks;
  std::uint64_t id;      // random-seeded sequence, globally scoped by rid
  std::uint64_t parent;  // 0 = root (or the wire-carried remote parent)
};

struct TraceState {
  std::uint64_t rid = 0;
  bool collecting = false;
  std::uint32_t depth = 0;  // count of currently open spans
  std::uint64_t t0_ns = 0;
  std::uint64_t t0_ticks = 0;
  std::uint64_t id_seq = 0;          // splitmix state for span ids
  std::uint64_t parent_span_id = 0;  // remote parent for depth-0 spans
  std::uint64_t cur_parent = 0;      // innermost open span id (or remote)
  std::vector<SpanRecord> spans;
};

const char* g_process_label = "proc";  // set once at startup

TraceState& state() {
  thread_local TraceState s;
  return s;
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t current_request_id() { return state().rid; }

std::uint64_t generate_request_id() {
  static std::atomic<std::uint64_t> seq{0};
  std::uint64_t x = now_ns() ^ (seq.fetch_add(1, std::memory_order_relaxed)
                                << 32);
  std::uint64_t id = splitmix64(x);
  return id == 0 ? 1 : id;  // 0 means "no request id"
}

RequestScope::RequestScope(std::uint64_t rid) : prev_(state().rid) {
  state().rid = rid;
}

RequestScope::~RequestScope() { state().rid = prev_; }

void trace_begin(std::uint64_t rid, std::uint64_t parent_span_id) {
  calibrate_tick_clock();  // one-shot; puts the spin in setup, not a span
  TraceState& s = state();
  s.rid = rid;
  s.collecting = true;
  s.depth = 0;
  s.t0_ns = now_ns();
  s.t0_ticks = now_ticks();
  // Span ids are a splitmix64 walk from a random per-trace seed: as
  // collision-resistant across processes as per-span random draws, but
  // without a clock read and an atomic fetch-add on every span.
  s.id_seq = generate_request_id();
  s.parent_span_id = parent_span_id;
  s.cur_parent = parent_span_id;
  s.spans.clear();
}

bool trace_active() { return state().collecting; }

std::uint64_t trace_current_span_id() {
  TraceState& s = state();
  if (!s.collecting || s.depth == 0) {
    return 0;
  }
  return s.cur_parent;
}

void trace_set_process_label(const char* label) {
  if (label != nullptr && *label != '\0') {
    g_process_label = label;
  }
}

void trace_dump(std::FILE* out) {
  TraceState& s = state();
  if (!s.collecting) {
    return;
  }
  const std::uint64_t total_ns = now_ns() - s.t0_ns;
  std::fprintf(out, "trace rid=%016llx spans=%zu total=%.3fms\n",
               static_cast<unsigned long long>(s.rid), s.spans.size(),
               static_cast<double>(total_ns) / 1e6);
  for (const SpanRecord& r : s.spans) {
    std::fprintf(out, "  %*s%-*s +%9.3fms %9.3fms\n",
                 static_cast<int>(2 * r.depth), "",
                 static_cast<int>(36 - 2 * (r.depth > 18 ? 18 : r.depth)),
                 r.name, static_cast<double>(ticks_to_ns(r.start_ticks)) / 1e6,
                 static_cast<double>(ticks_to_ns(r.dur_ticks)) / 1e6);
  }
  s.collecting = false;
  s.depth = 0;
  s.rid = 0;
  s.parent_span_id = 0;
  s.cur_parent = 0;
  s.spans.clear();
  s.spans.shrink_to_fit();
}

namespace {

/// One "X" (complete) trace event. ts/dur are microseconds as doubles —
/// the resolution Chrome's trace-event format expects. Span/parent ids
/// ride in args (hex, to match the rid) so stitched documents keep the
/// cross-process parent links.
void append_chrome_event(std::string& out, std::uint64_t rid,
                         const char* name, std::uint32_t depth,
                         std::uint64_t start_ns, std::uint64_t dur_ns,
                         std::uint64_t span_id, std::uint64_t parent_id,
                         bool first) {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "%s{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                "\"dur\":%.3f,\"pid\":1,\"tid\":1,"
                "\"args\":{\"rid\":\"%016" PRIx64 "\",\"depth\":%u,"
                "\"span\":\"%016" PRIx64 "\",\"parent\":\"%016" PRIx64
                "\"}}",
                first ? "" : ",", name,
                static_cast<double>(start_ns) / 1e3,
                static_cast<double>(dur_ns) / 1e3, rid, depth, span_id,
                parent_id);
  out += buf;
}

}  // namespace

std::string trace_render_chrome_json() {
  TraceState& s = state();
  if (!s.collecting) {
    return "";
  }
  const std::uint64_t now = now_ns() - s.t0_ns;
  // The meta object records the rid, the absolute local-clock trace start
  // (the base the stitcher needs to translate timelines — see
  // obs/stitch.h) and this process's lane label.
  char head[192];
  std::snprintf(head, sizeof(head),
                "{\"displayTimeUnit\":\"ms\",\"meta\":{\"rid\":\"%016" PRIx64
                "\",\"t0_ns\":%llu,\"proc\":\"%s\"},\"traceEvents\":[",
                s.rid, static_cast<unsigned long long>(s.t0_ns),
                g_process_label);
  std::string out = head;
  char pname[128];
  std::snprintf(pname, sizeof(pname),
                "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,"
                "\"args\":{\"name\":\"%s\"}}",
                g_process_label);
  out += pname;
  for (const SpanRecord& r : s.spans) {
    // A span still open when we render (dur recorded as 0 but started
    // earlier) keeps dur 0 — Perfetto shows it as instantaneous, which is
    // honest about what we measured.
    append_chrome_event(out, s.rid, r.name, r.depth,
                        ticks_to_ns(r.start_ticks), ticks_to_ns(r.dur_ticks),
                        r.id, r.parent, /*first=*/false);
  }
  // A synthetic root spanning the whole trace so the viewer shows total
  // wall time even when the first span started late.
  append_chrome_event(out, s.rid, "trace", 0, 0, now, 0, s.parent_span_id,
                      /*first=*/false);
  out += "]}";
  return out;
}

Status trace_export_json(const std::string& path) {
  TraceState& s = state();
  if (!s.collecting) {
    return Status(Errc::kInvalidArgument, "trace export: no active trace");
  }
  const std::string json = trace_render_chrome_json();
  trace_stop();
  return fsio::atomic_write_file(
      path, BytesView(reinterpret_cast<const std::uint8_t*>(json.data()),
                      json.size()));
}

void trace_stop() {
  TraceState& s = state();
  if (!s.collecting) {
    return;
  }
  s.collecting = false;
  s.depth = 0;
  s.rid = 0;
  s.parent_span_id = 0;
  s.cur_parent = 0;
  s.spans.clear();
  s.spans.shrink_to_fit();
}

// ---- TraceStore ------------------------------------------------------------

TraceStore& TraceStore::instance() {
  static TraceStore ts;
  return ts;
}

namespace {

Counter& trace_dropped_counter() {
  static Counter& c =
      Registry::instance().counter("fgad_trace_dropped_total");
  return c;
}

void note_trace_dropped(std::uint64_t rid) {
  // The trace was evicted before anyone read it — flight-record the rid
  // so "why is /trace.json?rid= empty" is answerable post-hoc.
  FlightRecorder::instance().record(FrEvent::kSpanDropped, rid);
  trace_dropped_counter().inc();
}

}  // namespace

void TraceStore::set_capacity(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = n;
  while (order_.size() > capacity_) {
    note_trace_dropped(order_.front());
    by_rid_.erase(order_.front());
    order_.pop_front();
  }
}

bool TraceStore::capture_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_ > 0;
}

void TraceStore::put(std::uint64_t rid, std::string trace_json) {
  if (rid == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) {
    return;
  }
  const auto it = by_rid_.find(rid);
  if (it != by_rid_.end()) {
    // Same rid, same process, same clock: accumulate the new document's
    // events into the stored timeline (offset 0, same pid lane). A
    // multi-RPC trace — delete_begin then delete_commit under one rid —
    // thus renders as one contiguous server-side timeline.
    it->second = trace_stitch(it->second, trace_json, /*offset_ns=*/0,
                              /*pid_delta=*/0);
    return;
  }
  while (order_.size() >= capacity_) {
    note_trace_dropped(order_.front());
    by_rid_.erase(order_.front());
    order_.pop_front();
  }
  order_.push_back(rid);
  by_rid_.emplace(rid, std::move(trace_json));
}

void TraceStore::append_event(std::uint64_t rid, const char* name,
                              std::uint64_t abs_start_ns,
                              std::uint64_t dur_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_rid_.find(rid);
  if (it == by_rid_.end()) {
    return;
  }
  std::string& doc = it->second;
  const std::size_t end = doc.rfind("]}");
  if (end == std::string::npos) {
    return;
  }
  const std::uint64_t t0 = trace_doc_t0_ns(doc);
  const double ts_us =
      static_cast<double>(static_cast<std::int64_t>(abs_start_ns) -
                          static_cast<std::int64_t>(t0)) /
      1e3;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ",{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                "\"pid\":1,\"tid\":2,\"args\":{\"rid\":\"%016" PRIx64
                "\"}}",
                name, ts_us, static_cast<double>(dur_ns) / 1e3, rid);
  doc.insert(end, buf);
}

std::string TraceStore::get(std::uint64_t rid) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_rid_.find(rid);
  return it == by_rid_.end() ? std::string() : it->second;
}

std::vector<std::uint64_t> TraceStore::rids() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::uint64_t>(order_.begin(), order_.end());
}

Span::Span(const char* name) : index_(kInactive) {
  TraceState& s = state();
  if (!s.collecting) {
    return;
  }
  index_ = s.spans.size();
  std::uint64_t id = splitmix64(s.id_seq);
  if (id == 0) {
    id = 1;  // 0 is the "root / no parent" sentinel
  }
  s.spans.push_back(
      SpanRecord{name, s.depth, now_ticks() - s.t0_ticks, 0, id,
                 s.cur_parent});
  // Parent tracking is restore-on-destroy instead of an open-span stack:
  // each Span remembers the parent it displaced, so even out-of-order
  // destruction unwinds to a consistent state.
  parent_restore_ = s.cur_parent;
  s.cur_parent = id;
  ++s.depth;
}

Span::~Span() {
  if (index_ == kInactive) {
    return;
  }
  TraceState& s = state();
  if (index_ < s.spans.size()) {
    SpanRecord& r = s.spans[index_];
    r.dur_ticks = now_ticks() - s.t0_ticks - r.start_ticks;
  }
  s.cur_parent = parent_restore_;
  if (s.depth > 0) {
    --s.depth;
  }
}

}  // namespace fgad::obs
