// Forensic flight recorder (DESIGN.md §14).
//
// A process-wide, fixed-size ring buffer of recent structured events —
// RPC start/end, WAL append/fsync LSNs, checkpoint begin/commit, retry
// redials, injected faults, crash-point firings — kept cheap enough to
// stay on in production and dumped when something dies so a post-mortem
// can reconstruct the exact sequence that preceded the failure.
//
// Design constraints, in order:
//   1. record() is lock-free and allocation-free: one relaxed fetch-add
//      claims a slot, relaxed stores fill it, a release store of the
//      sequence number publishes it. Concurrent writers never block; a
//      reader that races a wrapping writer detects the torn slot by its
//      sequence number and skips it.
//   2. Dumping must work from a crashing process: dump_fd() and
//      dump_auto() use only async-signal-safe calls (loads, write(2),
//      open(2), clock_gettime) and format numbers by hand — no malloc,
//      no stdio, no locks. That is what lets the SIGSEGV/SIGABRT/SIGBUS
//      handlers produce evidence on the way down.
//   3. Everything respects the obs::Metrics kill switch, so the recorder
//      adds nothing to a metrics-disabled run beyond one relaxed load.
//
// Dump format (text, one event per line, oldest first, parseable as
// key=value fields):
//
//   # fgad-flight-recorder v1 reason=sigsegv pid=123 recorded=900
//   #   dropped=388 capacity=512
//   seq=389 ts_ns=171819 type=wal-append rid=00a1b2c3d4e5f607 a=17 b=96
//
// `a` and `b` are event-specific (see FrEvent): the WAL LSN and record
// bytes for kWalAppend, the checkpoint epoch for kCheckpoint*, the
// attempt number for kRetry*, and so on.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace fgad::obs {

enum class FrEvent : std::uint16_t {
  kRpcStart = 0,     // a = message type ordinal
  kRpcEnd = 1,       // a = message type ordinal, b = duration ns
  kWalAppend = 2,    // a = LSN, b = record bytes
  kWalFsync = 3,     // a = durable byte offset, b = fsync duration ns
  kCheckpointBegin = 4,   // a = new epoch
  kCheckpointCommit = 5,  // a = new epoch, b = checkpoint bytes
  kRecoveryBegin = 6,     // a = newest checkpoint epoch found
  kRecoveryEnd = 7,       // a = records replayed, b = records skipped
  kRetryDial = 8,         // a = attempt number
  kRetryResend = 9,       // a = attempt number
  kRetryExhausted = 10,   // a = attempts made
  kFaultInjected = 11,    // a = fault kind (FaultInjectingChannel order)
  kCrashPoint = 12,       // a = CrashSite ordinal
  kFsckFail = 13,
  kDedupHit = 14,
  kMark = 15,             // free-form test/tooling marker
  kGroupCommitFlush = 16,  // a = commit batch size, b = fsync duration ns
  kSloBreach = 17,         // a = objective index, b = short burn ×1000
  kReplShip = 18,          // a = records shipped, b = follower acked lsn
  kReplSnapshotShip = 19,  // a = image bytes, b = snapshot last lsn
  kReplRoleChange = 20,    // a = new role (0 backup, 1 primary), b = term
  kSpanDropped = 21,       // rid = evicted trace's rid (TraceStore eviction)
};

/// Stable short name ("wal-append", ...) for dump lines and JSON.
const char* fr_event_name(FrEvent e);

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;
  static constexpr std::size_t kMaxDumpDir = 512;

  static FlightRecorder& instance();

  /// One published event, as read back by snapshot().
  struct Event {
    std::uint64_t seq = 0;
    std::uint64_t ts_ns = 0;
    std::uint64_t rid = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    FrEvent type = FrEvent::kMark;
  };

  /// Resizes the ring (rounded up to a power of two, min 8) and resets
  /// the recorded/dropped accounting. Concurrent record() calls stay
  /// safe — a ring that might still have in-flight writers is retired,
  /// not freed, until process exit. Intended for startup and tests.
  void configure(std::size_t capacity);

  /// Directory for dump_auto() files ("" disables automatic dumps).
  /// Stored in a fixed buffer so the crash handler needs no allocation;
  /// paths longer than kMaxDumpDir-1 are rejected.
  Status set_dump_dir(const std::string& dir);
  bool dump_dir_set() const {
    return dump_dir_len_.load(std::memory_order_acquire) > 0;
  }

  /// The hot path: claims a slot and publishes one event. Near-free when
  /// obs metrics are disabled.
  void record(FrEvent type, std::uint64_t rid, std::uint64_t a = 0,
              std::uint64_t b = 0);

  std::size_t capacity() const;
  /// Events ever recorded (monotone).
  std::uint64_t recorded() const;
  /// Events overwritten by wraparound (recorded - capacity, floored at 0).
  std::uint64_t dropped() const;

  /// Copies the currently readable events, oldest first, skipping slots
  /// torn by a racing writer. Not signal-safe (allocates).
  std::vector<Event> snapshot() const;

  /// Async-signal-safe text dump of the ring to `fd` (format above).
  /// `reason` must be a literal or otherwise signal-safe C string.
  void dump_fd(int fd, const char* reason) const;

  /// Opens `path` (O_CREAT|O_TRUNC) and dump_fd()s into it. Signal-safe.
  /// Returns false when the file cannot be opened.
  bool dump_to_path(const char* path, const char* reason) const;

  /// Writes "<dump_dir>/flightrecorder-<reason>-<pid>-<unix_ns>.dump".
  /// Signal-safe; no-op returning false when no dump dir is set. On
  /// success copies the path into `path_out` (if non-null, capacity
  /// `path_cap`) for logging by the caller.
  bool dump_auto(const char* reason, char* path_out = nullptr,
                 std::size_t path_cap = 0) const;

  /// {"capacity":..,"recorded":..,"dropped":..,"events":[...]}; served at
  /// GET /flightrecorder.json. Not signal-safe.
  std::string render_json() const;

  /// Refreshes fgad_flight_recorder_{capacity,recorded,dropped} gauges in
  /// the metrics registry (called before every exposition render).
  void publish_metrics() const;

  /// Installs SIGSEGV/SIGABRT/SIGBUS handlers that dump_auto("sig...")
  /// to stderr-logged files and then re-raise with the default action,
  /// and a SIGUSR2 handler that dumps on demand. Idempotent.
  static void install_crash_handlers();

 private:
  FlightRecorder();

  struct Slot {
    // pub holds seq+1 with release ordering once the slot is readable;
    // 0 while empty or mid-write.
    std::atomic<std::uint64_t> pub{0};
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<std::uint64_t> rid{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<std::uint16_t> type{0};
  };

  /// Ring + its mask published as one pointer so a writer can never pair
  /// a stale ring with a fresh mask (or vice versa) across configure().
  struct Ring {
    explicit Ring(std::size_t cap) : mask(cap - 1), slots(new Slot[cap]) {}
    const std::size_t mask;  // capacity - 1 (capacity is 2^k)
    std::unique_ptr<Slot[]> slots;
  };

  std::atomic<Ring*> ring_{nullptr};
  std::atomic<std::uint64_t> next_{0};

  char dump_dir_[kMaxDumpDir] = {};
  std::atomic<std::size_t> dump_dir_len_{0};
};

}  // namespace fgad::obs
