#include "obs/slo.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace fgad::obs {

namespace {

const char* kind_name(SloTracker::Kind k) {
  switch (k) {
    case SloTracker::Kind::kLatency:
      return "latency";
    case SloTracker::Kind::kErrorRatio:
      return "error_ratio";
    case SloTracker::Kind::kGaugeAbove:
      return "gauge_above";
  }
  return "?";
}

void append_f(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

/// Fraction of window samples strictly worse than threshold_ns, from the
/// merged bucket counts. A bucket whose lower bound is at or above the
/// threshold counts fully; the bucket containing the threshold counts
/// pro-rata by linear interpolation (same model the quantile kernel
/// uses), so a threshold mid-bucket does not jump between 0 and 1.
double bad_fraction(const Histogram::Snapshot& s, std::uint64_t threshold_ns) {
  if (s.count == 0 || s.buckets.empty()) {
    return 0;
  }
  const std::size_t t_idx = Histogram::bucket_of(threshold_ns);
  double bad = 0;
  for (std::size_t i = t_idx; i < s.buckets.size(); ++i) {
    if (s.buckets[i] == 0) {
      continue;
    }
    if (i == t_idx) {
      const double lo = static_cast<double>(Histogram::bucket_lower(i));
      const double hi =
          i + 1 < s.buckets.size()
              ? static_cast<double>(Histogram::bucket_lower(i + 1))
              : lo * 2;
      const double over =
          hi <= lo ? 0
                   : std::clamp(
                         (hi - static_cast<double>(threshold_ns)) / (hi - lo),
                         0.0, 1.0);
      bad += static_cast<double>(s.buckets[i]) * over;
    } else {
      bad += static_cast<double>(s.buckets[i]);
    }
  }
  return bad / static_cast<double>(s.count);
}

}  // namespace

SloTracker& SloTracker::instance() {
  static SloTracker t;
  return t;
}

void SloTracker::configure(std::vector<Objective> objectives) {
  std::lock_guard<std::mutex> lock(mu_);
  states_.clear();
  states_.reserve(objectives.size());
  for (Objective& o : objectives) {
    State st;
    st.obj = std::move(o);
    states_.push_back(std::move(st));
  }
  overloaded_ = false;
  Readiness::instance().set("overloaded", false);
}

void SloTracker::add(Objective objective) {
  std::lock_guard<std::mutex> lock(mu_);
  State st;
  st.obj = std::move(objective);
  states_.push_back(std::move(st));
}

void SloTracker::clear() {
  configure({});
}

std::size_t SloTracker::objective_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_.size();
}

void SloTracker::set_overload_evals(std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  overload_evals_ = n == 0 ? 1 : n;
}

void SloTracker::attach() {
  WindowedRegistry::instance().set_tick_hook([] {
    SloTracker::instance().evaluate();
  });
}

double SloTracker::burn_over_window(const Objective& obj,
                                    std::uint64_t window_s) const {
  const WindowedRegistry& w = WindowedRegistry::instance();
  switch (obj.kind) {
    case Kind::kLatency: {
      const auto hw = w.histogram_window(obj.metric, window_s);
      if (!hw || hw->delta.count == 0) {
        return 0;
      }
      const double budget = std::max(1e-9, 1.0 - obj.target_quantile);
      return bad_fraction(hw->delta, obj.threshold_ns) / budget;
    }
    case Kind::kErrorRatio: {
      const auto err = w.counter_window(obj.metric, window_s);
      const auto total = w.counter_window(obj.total_metric, window_s);
      if (!err || !total || total->delta == 0) {
        return 0;
      }
      const double ratio = static_cast<double>(err->delta) /
                           static_cast<double>(total->delta);
      return ratio / std::max(1e-12, obj.max_error_rate);
    }
    case Kind::kGaugeAbove: {
      const auto gw = w.gauge_window(obj.metric, window_s);
      if (!gw) {
        return 0;
      }
      return gw->avg / std::max(1e-12, static_cast<double>(obj.threshold_ns));
    }
  }
  return 0;
}

void SloTracker::evaluate() {
  static Counter& breaches_total =
      Registry::instance().counter("fgad_slo_breaches_total");
  std::lock_guard<std::mutex> lock(mu_);
  bool any_sustained = false;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    State& st = states_[i];
    st.short_burn = burn_over_window(st.obj, st.obj.short_window_s);
    st.long_burn = burn_over_window(st.obj, st.obj.long_window_s);
    const bool now_breached = st.short_burn > st.obj.burn_threshold &&
                              st.long_burn > st.obj.burn_threshold;
    if (now_breached) {
      ++st.consecutive;
      if (!st.breached) {
        // Breach edge: count it once and leave a forensic breadcrumb
        // (a = objective index, b = short burn in milli-units).
        ++st.breaches;
        breaches_total.inc();
        Registry::instance()
            .counter("fgad_slo_" + st.obj.name + "_breaches_total")
            .inc();
        FlightRecorder::instance().record(
            FrEvent::kSloBreach, /*rid=*/0, /*a=*/i,
            /*b=*/static_cast<std::uint64_t>(st.short_burn * 1000.0));
      }
    } else {
      st.consecutive = 0;
    }
    st.breached = now_breached;
    if (st.consecutive >= overload_evals_) {
      any_sustained = true;
    }
  }
  if (any_sustained != overloaded_) {
    overloaded_ = any_sustained;
    if (any_sustained) {
      std::string reason = "slo burn over threshold:";
      for (const State& st : states_) {
        if (st.consecutive >= overload_evals_) {
          reason += " " + st.obj.name;
        }
      }
      Readiness::instance().set("overloaded", true, reason);
    } else {
      Readiness::instance().set("overloaded", false);
    }
  }
}

std::optional<SloTracker::ObjectiveStatus> SloTracker::status(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const State& st : states_) {
    if (st.obj.name == name) {
      return ObjectiveStatus{st.obj.name, st.short_burn, st.long_burn,
                             st.breached,  st.breaches,  st.consecutive};
    }
  }
  return std::nullopt;
}

std::vector<SloTracker::ObjectiveStatus> SloTracker::all_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObjectiveStatus> out;
  out.reserve(states_.size());
  for (const State& st : states_) {
    out.push_back(ObjectiveStatus{st.obj.name, st.short_burn, st.long_burn,
                                  st.breached, st.breaches, st.consecutive});
  }
  return out;
}

bool SloTracker::overloaded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overloaded_;
}

std::string SloTracker::render_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"objectives\":[";
  bool first = true;
  for (const State& st : states_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(st.obj.name) + "\",\"kind\":\"";
    out += kind_name(st.obj.kind);
    out += "\",\"metric\":\"" + json_escape(st.obj.metric) +
           "\",\"short_burn\":";
    append_f(out, st.short_burn);
    out += ",\"long_burn\":";
    append_f(out, st.long_burn);
    out += ",\"burn_threshold\":";
    append_f(out, st.obj.burn_threshold);
    out += st.breached ? ",\"breached\":true" : ",\"breached\":false";
    out += ",\"breaches\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(st.breaches));
    out += buf;
    out += "}";
  }
  out += overloaded_ ? "],\"overloaded\":true}" : "],\"overloaded\":false}";
  return out;
}

namespace {

std::vector<std::string_view> split_colon(std::string_view s) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(':', start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool parse_f(std::string_view s, double& out) {
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && p == s.data() + s.size();
}

bool parse_u(std::string_view s, std::uint64_t& out) {
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && p == s.data() + s.size();
}

}  // namespace

Result<SloTracker::Objective> SloTracker::parse(std::string_view spec) {
  const auto parts = split_colon(spec);
  auto err = [&](const char* what) {
    return Result<Objective>(
        Errc::kInvalidArgument,
        std::string("bad --slo spec '") + std::string(spec) + "': " + what);
  };
  if (parts.size() < 3 || parts[0].empty()) {
    return err("want name:kind:...");
  }
  Objective o;
  o.name = std::string(parts[0]);
  const std::string_view kind = parts[1];
  if (kind == "latency") {
    // name:latency:<hist>:<quantile>:<threshold_ns>[:burn]
    if (parts.size() < 5 || parts.size() > 6) {
      return err("latency wants name:latency:hist:quantile:threshold_ns[:burn]");
    }
    o.kind = Kind::kLatency;
    o.metric = std::string(parts[2]);
    if (!parse_f(parts[3], o.target_quantile) || o.target_quantile <= 0 ||
        o.target_quantile >= 1) {
      return err("quantile must be in (0,1)");
    }
    if (!parse_u(parts[4], o.threshold_ns) || o.threshold_ns == 0) {
      return err("threshold_ns must be a positive integer");
    }
    if (parts.size() == 6 && !parse_f(parts[5], o.burn_threshold)) {
      return err("burn must be a number");
    }
  } else if (kind == "error_ratio") {
    // name:error_ratio:<err_counter>:<total_counter>:<max_rate>[:burn]
    if (parts.size() < 5 || parts.size() > 6) {
      return err(
          "error_ratio wants name:error_ratio:err:total:max_rate[:burn]");
    }
    o.kind = Kind::kErrorRatio;
    o.metric = std::string(parts[2]);
    o.total_metric = std::string(parts[3]);
    if (!parse_f(parts[4], o.max_error_rate) || o.max_error_rate <= 0) {
      return err("max_rate must be positive");
    }
    if (parts.size() == 6 && !parse_f(parts[5], o.burn_threshold)) {
      return err("burn must be a number");
    }
  } else if (kind == "gauge_above") {
    // name:gauge_above:<gauge>:<threshold>[:burn]
    if (parts.size() < 4 || parts.size() > 5) {
      return err("gauge_above wants name:gauge_above:gauge:threshold[:burn]");
    }
    o.kind = Kind::kGaugeAbove;
    o.metric = std::string(parts[2]);
    if (!parse_u(parts[3], o.threshold_ns) || o.threshold_ns == 0) {
      return err("threshold must be a positive integer");
    }
    if (parts.size() == 5 && !parse_f(parts[4], o.burn_threshold)) {
      return err("burn must be a number");
    }
  } else {
    return err("kind must be latency|error_ratio|gauge_above");
  }
  return o;
}

std::vector<SloTracker::Objective> SloTracker::default_server_objectives() {
  std::vector<Objective> out;
  {
    Objective o;
    o.name = "delete_commit_p99";
    o.kind = Kind::kLatency;
    o.metric = "fgad_server_delete_commit_ns";
    o.target_quantile = 0.99;
    o.threshold_ns = 5'000'000;  // 5 ms — the paper's tail-latency story
    out.push_back(std::move(o));
  }
  {
    Objective o;
    o.name = "access_p99";
    o.kind = Kind::kLatency;
    o.metric = "fgad_server_access_ns";
    o.target_quantile = 0.99;
    o.threshold_ns = 5'000'000;
    out.push_back(std::move(o));
  }
  {
    Objective o;
    o.name = "rpc_errors";
    o.kind = Kind::kErrorRatio;
    o.metric = "fgad_server_rpc_errors_total";
    o.total_metric = "fgad_server_rpcs_total";
    o.max_error_rate = 0.001;  // 0.1%
    out.push_back(std::move(o));
  }
  {
    // Reactor backpressure: any sustained window where connections sit
    // paused (avg >= 1) burns the objective and feeds the overload
    // readiness signal.
    Objective o;
    o.name = "reactor_backpressure";
    o.kind = Kind::kGaugeAbove;
    o.metric = "fgad_net_backpressure_paused";
    o.threshold_ns = 1;
    out.push_back(std::move(o));
  }
  {
    // Replication lag: staged-but-unacked bytes on the primary. Sitting
    // above 16 MiB for a sustained window means the follower is not
    // keeping up — in async ack mode that is exactly the volume a
    // failover would lose, so it burns toward the overload signal. The
    // gauge reads 0 on non-replicated deployments (objective is inert).
    Objective o;
    o.name = "repl_lag";
    o.kind = Kind::kGaugeAbove;
    o.metric = "fgad_repl_lag_bytes";
    o.threshold_ns = 16ull * 1024 * 1024;
    out.push_back(std::move(o));
  }
  return out;
}

}  // namespace fgad::obs
