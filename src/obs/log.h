// Leveled structured (key=value) logging plus the deletion audit log
// (DESIGN.md §12).
//
// Log lines are single-line key=value records:
//
//   ts=1722945600.123456 level=warn event=slow_op op=delete_commit
//   rid=00a1b2... dur_ms=153.2
//
// The audit log is a separate, always-structured stream recording every
// deletion-relevant RPC the server commits or rejects — deletion
// *evidence* as a first-class output:
//
//   audit ts=1722945600.123456 rid=00a1b2c3d4e5f607 op=delete_commit
//   file=3 item=42 path_len=5 cut=4 outcome=ok
//
// Both sinks default to off (nullptr) so library users and tests stay
// silent; fgad_server turns them on.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

#include "common/result.h"

namespace fgad::obs {

enum class Level : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

const char* level_name(Level l);
/// Parses "debug"/"info"/"warn"/"error"/"off"; defaults to kInfo.
Level parse_level(std::string_view s);

/// Builder for the key=value tail of a log line. Values with spaces,
/// quotes, or '=' are double-quoted with minimal escaping.
class Kv {
 public:
  Kv& u64(const char* key, std::uint64_t v);
  Kv& i64(const char* key, std::int64_t v);
  Kv& dbl(const char* key, double v);
  Kv& hex64(const char* key, std::uint64_t v);  // zero-padded 16-digit hex
  Kv& str(const char* key, std::string_view v);
  const std::string& text() const { return out_; }

 private:
  std::string out_;
};

class Logger {
 public:
  static Logger& instance();

  void set_level(Level l) { level_.store(static_cast<int>(l)); }
  Level level() const { return static_cast<Level>(level_.load()); }
  bool should(Level l) const { return l >= level() && sink() != nullptr; }

  /// nullptr silences the logger (the default).
  void set_sink(std::FILE* f) { sink_.store(f); }
  std::FILE* sink() const { return sink_.load(); }

  /// Ops slower than this emit a warn-level `slow_op` line (and count in
  /// fgad_slow_ops_total). 0 disables.
  void set_slow_op_threshold_ns(std::uint64_t ns) {
    slow_op_ns_.store(ns, std::memory_order_relaxed);
  }
  std::uint64_t slow_op_threshold_ns() const {
    return slow_op_ns_.load(std::memory_order_relaxed);
  }

  /// Writes one line: ts=... level=... event=<event> <kv>. Thread-safe.
  void log(Level l, const char* event, const Kv& kv = Kv());

  /// Reports a finished operation; logs `slow_op` when over threshold.
  /// `rid` of 0 is omitted from the line.
  void slow_op(const char* op, std::uint64_t dur_ns, std::uint64_t rid = 0);

 private:
  Logger() = default;

  std::atomic<int> level_{static_cast<int>(Level::kInfo)};
  std::atomic<std::FILE*> sink_{nullptr};
  std::atomic<std::uint64_t> slow_op_ns_{0};
  std::mutex mu_;
};

/// The deletion audit log. One line per delete/insert/re-key RPC.
class AuditLog {
 public:
  static AuditLog& instance();

  /// nullptr disables (the default). The sink is not owned.
  void set_sink(std::FILE* f) { sink_.store(f); }
  bool on() const { return sink_.load() != nullptr; }

  struct Entry {
    const char* op = "";
    std::uint64_t request_id = 0;  // 0 = untagged request
    std::uint64_t file_id = 0;
    std::uint64_t item = 0;
    std::size_t path_len = 0;
    std::size_t cut_size = 0;
    // Fencing term + commit LSN of the mutation (DESIGN.md §18/§19),
    // stamped by the durability layer via set_commit_context() so a
    // deletion's audit line is attributable to one primary incarnation
    // after a failover. 0/0 = not under a durable commit (the fields are
    // then omitted from the line, keeping pre-§19 output byte-identical).
    std::uint64_t term = 0;
    std::uint64_t lsn = 0;
  };
  /// Thread-safe; near-free when the sink is off.
  void record(const Entry& e, const Status& outcome);

  /// Thread-local commit context: the durability layer brackets each
  /// apply with the mutation's fencing term and WAL LSN; audit call
  /// sites deeper in the server pick them up via commit_term()/
  /// commit_lsn() without any signature plumbing.
  static void set_commit_context(std::uint64_t term, std::uint64_t lsn);
  static void clear_commit_context();
  static std::uint64_t commit_term();
  static std::uint64_t commit_lsn();

 private:
  AuditLog() = default;

  std::atomic<std::FILE*> sink_{nullptr};
  std::mutex mu_;
};

}  // namespace fgad::obs
