#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

namespace fgad::obs {

Profiler& Profiler::instance() {
  static Profiler p;
  return p;
}

void Profiler::on_sigprof(int /*sig*/) {
  // Preserve errno: the interrupted code may be between a syscall and
  // its errno check.
  const int saved_errno = errno;
  Profiler& p = instance();
  if (p.active_.load(std::memory_order_relaxed)) {
    p.record_current_stack();
  }
  errno = saved_errno;
}

void Profiler::record_current_stack() {
  void* buf[kMaxDepth + 4];
  const int n = backtrace(buf, kMaxDepth + 4);
  // Drop the handler's own frames: record_current_stack, on_sigprof,
  // and the kernel signal trampoline.
  constexpr int kSkip = 3;
  if (n <= kSkip) {
    return;
  }
  const std::uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= max_samples_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Sample& s = samples_[idx];
  const std::uint32_t depth =
      std::min<std::uint32_t>(static_cast<std::uint32_t>(n - kSkip),
                              kMaxDepth);
  for (std::uint32_t i = 0; i < depth; ++i) {
    s.pcs[i] = buf[kSkip + i];
  }
  s.pub.store(depth + 1, std::memory_order_release);
}

Status Profiler::start(Options opts) {
  if (active_.load(std::memory_order_acquire)) {
    return Status(Errc::kInvalidArgument, "profiler already running");
  }
  if (opts.max_samples == 0 || opts.interval_us == 0) {
    return Status(Errc::kInvalidArgument,
                  "profiler needs max_samples > 0 and interval_us > 0");
  }

  // Pre-warm backtrace(): its first call may dlopen libgcc, which
  // allocates — unacceptable inside the signal handler.
  void* warm[4];
  (void)backtrace(warm, 4);

  samples_ = std::make_unique<Sample[]>(opts.max_samples);
  max_samples_ = opts.max_samples;
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  wall_timer_ = opts.wall;

  const int sig = opts.wall ? SIGALRM : SIGPROF;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &Profiler::on_sigprof;
  sa.sa_flags = SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(sig, &sa, nullptr) != 0) {
    return Status(Errc::kIoError, "sigaction failed");
  }
  handler_installed_ = true;

  active_.store(true, std::memory_order_release);

  struct itimerval it;
  it.it_interval.tv_sec = static_cast<time_t>(opts.interval_us / 1'000'000);
  it.it_interval.tv_usec =
      static_cast<suseconds_t>(opts.interval_us % 1'000'000);
  it.it_value = it.it_interval;
  if (setitimer(opts.wall ? ITIMER_REAL : ITIMER_PROF, &it, nullptr) != 0) {
    active_.store(false, std::memory_order_release);
    return Status(Errc::kIoError, "setitimer failed");
  }
  return Status::ok();
}

void Profiler::stop() {
  if (!active_.load(std::memory_order_acquire)) {
    return;
  }
  struct itimerval off;
  std::memset(&off, 0, sizeof(off));
  setitimer(wall_timer_ ? ITIMER_REAL : ITIMER_PROF, &off, nullptr);
  // A signal may already be pending; the handler checks active_ and
  // bails, and record_current_stack() is safe against readers anyway.
  active_.store(false, std::memory_order_release);
}

bool Profiler::running() const {
  return active_.load(std::memory_order_acquire);
}

std::uint64_t Profiler::sample_count() const {
  const std::uint64_t n = next_.load(std::memory_order_relaxed);
  return std::min<std::uint64_t>(n, max_samples_);
}

std::uint64_t Profiler::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

namespace {

/// Best-effort frame name: demangled symbol, raw symbol, or the address.
std::string frame_name(void* pc) {
  Dl_info info;
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string out(demangled);
      std::free(demangled);
      // Folded-stack field separators must not appear inside a frame.
      std::replace(out.begin(), out.end(), ';', ',');
      return out;
    }
    if (demangled != nullptr) {
      std::free(demangled);
    }
    return info.dli_sname;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(
                    reinterpret_cast<std::uintptr_t>(pc)));
  return buf;
}

}  // namespace

std::string Profiler::folded() const {
  const std::uint64_t published = sample_count();
  // Group identical raw stacks first, then symbolize each unique pc
  // once — symbolization dominates, and real profiles repeat stacks.
  std::map<std::vector<void*>, std::uint64_t> groups;
  for (std::uint64_t i = 0; i < published; ++i) {
    const Sample& s = samples_[i];
    const std::uint32_t pub = s.pub.load(std::memory_order_acquire);
    if (pub == 0) {
      continue;  // claimed but not yet published
    }
    const std::uint32_t depth = pub - 1;
    std::vector<void*> key(s.pcs, s.pcs + depth);
    ++groups[key];
  }

  std::map<void*, std::string> names;
  std::string out;
  for (const auto& [stack, count] : groups) {
    // backtrace() is leaf-first; folded format is root-first.
    for (std::size_t i = stack.size(); i-- > 0;) {
      auto it = names.find(stack[i]);
      if (it == names.end()) {
        it = names.emplace(stack[i], frame_name(stack[i])).first;
      }
      out += it->second;
      out += i == 0 ? ' ' : ';';
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(count));
    out += buf;
    out += '\n';
  }
  return out;
}

std::string Profiler::capture_folded(double seconds, Options opts) {
  Profiler& p = instance();
  const Status st = p.start(opts);
  if (!st.is_ok()) {
    return "# error: " + st.to_string() + "\n";
  }
  if (seconds < 0.01) seconds = 0.01;
  if (seconds > 60) seconds = 60;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(seconds * 1000)));
  p.stop();
  std::string out = p.folded();
  if (out.empty()) {
    // An idle process under ITIMER_PROF accrues no CPU time and thus no
    // signals; say so instead of returning an empty 200 body.
    out = "# no samples (process idle during capture)\n";
  }
  return out;
}

}  // namespace fgad::obs
